#include "common/strings.h"

#include <gtest/gtest.h>

namespace kc {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(SplitTest, NoSeparator) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitTest, EmptyInput) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  x y\t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(EqualsIgnoreCaseTest, Basic) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(ToUpperTest, Basic) {
  EXPECT_EQ(ToUpper("aBc9_x"), "ABC9_X");
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -2e3 "), -2000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(ParseInt64Test, ValidInputs) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64(" -7 "), -7);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("x").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

}  // namespace
}  // namespace kc
