// Proves the allocation-free fast path: steady-state Predict/Update on
// every bundled filter performs ZERO heap allocations (the workspace +
// inline-storage contract of docs/PERF.md), and exercises the SmallBuf
// inline/heap boundary directly.

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fleet/pool.h"
#include "fleet/sharded_server.h"
#include "fleet/thread_pool.h"
#include "kalman/ekf.h"
#include "kalman/imm.h"
#include "kalman/kalman_filter.h"
#include "kalman/model.h"
#include "kalman/ukf.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "net/message.h"
#include "obs/audit.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "suppression/policies.h"

namespace {

std::atomic<long> g_news{0};

}  // namespace

// Counting global allocator. Covers the plain, array, sized, and nothrow
// forms so no allocation path escapes the counters.
void* operator new(std::size_t size) {
  ++g_news;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  ++g_news;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace kc {
namespace {

long AllocCount() { return g_news.load(); }

// ------------------------------------------------------------ filter loops

/// Runs `steps` Predict/Update cycles and returns the number of heap
/// allocations they performed.
template <typename Filter>
long CountFilterAllocs(Filter& filter, size_t obs_dim, int steps) {
  Rng rng(42);
  Vector z(obs_dim);
  // Warmup: first cycles size the workspace and reserve containers.
  for (int i = 0; i < 5; ++i) {
    for (size_t d = 0; d < obs_dim; ++d) z[d] = rng.Gaussian();
    filter.Predict();
    EXPECT_TRUE(filter.Update(z).ok());
  }
  long before = AllocCount();
  for (int i = 0; i < steps; ++i) {
    for (size_t d = 0; d < obs_dim; ++d) z[d] = rng.Gaussian();
    filter.Predict();
    filter.Update(z).ok();
  }
  return AllocCount() - before;
}

TEST(ZeroAllocTest, KalmanFilterAllBundledModels) {
  StateSpaceModel models[] = {
      MakeRandomWalkModel(0.1, 0.25),
      MakeConstantVelocityModel(1.0, 0.1, 0.25),
      MakeConstantAccelerationModel(1.0, 0.05, 0.25),
      MakeConstantVelocity2DModel(1.0, 0.1, 0.25),
      MakeConstantAcceleration2DModel(1.0, 0.05, 0.25),
      MakeConstantJerk2DModel(1.0, 0.01, 0.25),
  };
  for (const StateSpaceModel& model : models) {
    size_t n = model.state_dim();
    KalmanFilter kf(model, Vector(n), Matrix::ScalarDiagonal(n, 1.0));
    EXPECT_EQ(CountFilterAllocs(kf, model.obs_dim(), 200), 0)
        << "model " << model.name;
  }
}

TEST(ZeroAllocTest, KalmanFilterStandardForm) {
  StateSpaceModel model = MakeConstantVelocityModel(1.0, 0.1, 0.25);
  KalmanFilter kf(model, Vector(2), Matrix::ScalarDiagonal(2, 1.0),
                  KalmanFilter::UpdateForm::kStandard);
  EXPECT_EQ(CountFilterAllocs(kf, 1, 200), 0);
}

TEST(ZeroAllocTest, ExtendedKalmanFilter) {
  NonlinearModel model = MakeCoordinatedTurnModel(1.0, 0.01, 0.05, 1e-4, 0.25);
  Vector x0(5);
  x0[2] = 5.0;
  ExtendedKalmanFilter ekf(model, x0, Matrix::ScalarDiagonal(5, 1.0));
  EXPECT_EQ(CountFilterAllocs(ekf, 2, 200), 0);
}

TEST(ZeroAllocTest, UnscentedKalmanFilter) {
  NonlinearModel model = MakeCoordinatedTurnModel(1.0, 0.01, 0.05, 1e-4, 0.25);
  Vector x0(5);
  x0[2] = 5.0;
  UnscentedKalmanFilter ukf(model, x0, Matrix::ScalarDiagonal(5, 1.0));
  EXPECT_EQ(CountFilterAllocs(ukf, 2, 200), 0);
}

TEST(ZeroAllocTest, Imm) {
  std::vector<KalmanFilter> filters;
  filters.emplace_back(MakeRandomWalkModel(0.01, 0.25), Vector{0.0},
                       Matrix{{1.0}});
  filters.emplace_back(MakeRandomWalkModel(4.0, 0.25), Vector{0.0},
                       Matrix{{1.0}});
  Imm imm(std::move(filters), Matrix{{0.95, 0.05}, {0.05, 0.95}},
          Vector{0.5, 0.5});
  EXPECT_EQ(CountFilterAllocs(imm, 1, 200), 0);
}

TEST(ZeroAllocTest, KalmanPredictorSuppressedTicks) {
  KalmanPredictor::Config config;
  config.model = MakeConstantVelocityModel(1.0, 0.1, 0.25);
  config.outlier_gate_prob = 0.999;  // Exercise the gate's scratch path.
  KalmanPredictor predictor(std::move(config));
  Reading first;
  first.value = Vector{0.0};
  predictor.Init(first);

  Rng rng(7);
  auto tick = [&](int64_t seq) {
    Reading z;
    z.seq = seq;
    z.time = static_cast<double>(seq);
    z.value = Vector{rng.Gaussian(0.0, 0.3)};
    predictor.Tick();
    predictor.ObserveLocal(z);
    // The per-tick contract check a source performs between corrections.
    Vector err = predictor.Target() - predictor.Predict();
    return err.NormInf();
  };
  for (int64_t s = 1; s <= 5; ++s) tick(s);
  long before = AllocCount();
  double acc = 0.0;
  for (int64_t s = 6; s <= 205; ++s) acc += tick(s);
  EXPECT_EQ(AllocCount() - before, 0) << "accumulated drift " << acc;
}

TEST(ZeroAllocTest, InstrumentedSuppressedTicksStayAllocationFree) {
  // The serving path with telemetry bound: counter Incs, a histogram
  // Record of the innovation, and a (runtime-disabled) trace span per
  // tick. All metric storage is preallocated at registration, so the
  // instrumented steady state must still be zero-alloc.
  obs::MetricRegistry registry;  // Cold path: registration may allocate.
  KalmanPredictor::Config config;
  config.model = MakeConstantVelocityModel(1.0, 0.1, 0.25);
  config.outlier_gate_prob = 0.999;
  KalmanPredictor predictor(std::move(config));
  predictor.BindMetrics(&registry);
  obs::Counter* decisions = registry.GetCounter("kc.agent.decisions");
  obs::Counter* suppressed = registry.GetCounter("kc.agent.suppressed");
  obs::Histogram* innovation = registry.GetHistogram(
      "kc.agent.innovation", obs::Buckets::Exponential(1e-3, 4.0, 12));

  Reading first;
  first.value = Vector{0.0};
  predictor.Init(first);

  Rng rng(7);
  auto tick = [&](int64_t seq) {
    KC_TRACE_SCOPE("alloc_test.tick");  // Default-off: one load + branch.
    Reading z;
    z.seq = seq;
    z.time = static_cast<double>(seq);
    z.value = Vector{rng.Gaussian(0.0, 0.3)};
    predictor.Tick();
    predictor.ObserveLocal(z);
    Vector err = predictor.Target() - predictor.Predict();
    double e = err.NormInf();
    decisions->Inc();
    innovation->Record(e);
    suppressed->Inc();
    return e;
  };
  for (int64_t s = 1; s <= 5; ++s) tick(s);
  long before = AllocCount();
  double acc = 0.0;
  for (int64_t s = 6; s <= 205; ++s) acc += tick(s);
  EXPECT_EQ(AllocCount() - before, 0) << "accumulated drift " << acc;
  EXPECT_EQ(decisions->value(), 205);
  EXPECT_EQ(innovation->count(), 205);
}

TEST(ZeroAllocTest, RecorderAndHealthSuppressedTicksStayAllocationFree) {
  // The full observability stack of this PR bound to the serving path:
  // flight-recorder Record()s plus watchdog feeds per tick, with metrics
  // behind both. Ring slots and chi-square bands are sized on the cold
  // path (ForSource), so the instrumented steady state must be zero-alloc
  // — including the ticks where a NIS window completes and is evaluated.
  obs::MetricRegistry registry;
  obs::FlightRecorder recorder(64);
  obs::HealthMonitor health;  // Default config: nis_window 32.
  recorder.BindMetrics(&registry);
  health.BindMetrics(&registry);
  health.BindRecorder(&recorder);
  obs::SourceRecorder* ring = recorder.ForSource(0);
  obs::SourceHealth* entry = health.ForSource(0, /*obs_dim=*/1);

  KalmanPredictor::Config config;
  config.model = MakeConstantVelocityModel(1.0, 0.1, 0.25);
  config.outlier_gate_prob = 0.999;
  KalmanPredictor predictor(std::move(config));
  Reading first;
  first.value = Vector{0.0};
  predictor.Init(first);

  Rng rng(7);
  auto tick = [&](int64_t seq) {
    Reading z;
    z.seq = seq;
    z.time = static_cast<double>(seq);
    z.value = Vector{rng.Gaussian(0.0, 0.3)};
    predictor.Tick();
    predictor.ObserveLocal(z);
    Vector err = predictor.Target() - predictor.Predict();
    double e = err.NormInf();
    ring->Record(seq, obs::RecorderEventKind::kSuppress, seq, e);
    entry->OnTick();
    // In-band NIS (window sum == dof): the evaluated windows stay clean,
    // so the hot loop also covers the no-transition Recombine path.
    entry->OnNis(1.0);
    entry->OnDecision(/*suppressed=*/true);
    return e;
  };
  for (int64_t s = 1; s <= 5; ++s) tick(s);
  long before = AllocCount();
  double acc = 0.0;
  for (int64_t s = 6; s <= 325; ++s) acc += tick(s);  // 320 ticks: 10 windows.
  EXPECT_EQ(AllocCount() - before, 0) << "accumulated drift " << acc;
  EXPECT_EQ(ring->total_recorded(), 325u);  // Ring wrapped many times over.
  EXPECT_GT(entry->nis_windows(), 5);
  EXPECT_EQ(entry->state(), obs::HealthState::kOk);
  EXPECT_EQ(registry.GetCounter("kc.recorder.events")->value(), 325);
}

TEST(ZeroAllocTest, AuditedSuppressedTicksStayAllocationFree) {
  // The precision auditor's hot path on top of the full observability
  // stack: every tick computes the contract error and feeds Sample(),
  // with metrics, the flight recorder, and the watchdog all bound. The
  // loop spans many SLO window closes (window 16, 320 audited ticks), so
  // the windowed state machine — transitions included — must also be
  // allocation-free.
  obs::MetricRegistry registry;
  obs::FlightRecorder recorder(64);
  obs::HealthMonitor health;
  recorder.BindMetrics(&registry);
  health.BindMetrics(&registry);
  health.ForSource(0, /*obs_dim=*/1);
  obs::AuditConfig audit_config;
  audit_config.sample_every = 1;
  audit_config.slo_window_ticks = 16;
  obs::PrecisionAuditor auditor(audit_config);
  auditor.BindMetrics(&registry);
  auditor.BindRecorder(&recorder);
  auditor.BindHealth(&health);
  obs::SourceAudit* audit = auditor.ForSource(0);  // Cold path.

  KalmanPredictor::Config config;
  config.model = MakeConstantVelocityModel(1.0, 0.1, 0.25);
  config.outlier_gate_prob = 0.999;
  KalmanPredictor predictor(std::move(config));
  Reading first;
  first.value = Vector{0.0};
  predictor.Init(first);

  Rng rng(7);
  auto tick = [&](int64_t seq) {
    Reading z;
    z.seq = seq;
    z.time = static_cast<double>(seq);
    z.value = Vector{rng.Gaussian(0.0, 0.3)};
    predictor.Tick();
    predictor.ObserveLocal(z);
    Vector err = predictor.Target() - predictor.Predict();
    double e = err.NormInf();
    audit->Sample(seq, e, /*bound=*/0.5, /*staleness_ticks=*/0,
                  /*degraded=*/false);
    return e;
  };
  for (int64_t s = 1; s <= 5; ++s) tick(s);
  long before = AllocCount();
  double acc = 0.0;
  for (int64_t s = 6; s <= 325; ++s) acc += tick(s);
  EXPECT_EQ(AllocCount() - before, 0) << "accumulated drift " << acc;
  EXPECT_EQ(audit->samples(), 325);
  EXPECT_GT(audit->windows(), 10);
  EXPECT_EQ(registry.GetCounter("kc.audit.samples")->value(), 325);
}

TEST(ZeroAllocTest, PooledFleetTickSteadyStateIsAllocationFree) {
  // The SoA hot loop at fleet scale in miniature: one pool, many slots,
  // each tick a batched PredictAll sweep plus gated per-slot updates.
  // Slabs and the shared workspace are sized at Acquire/first use, so the
  // steady state must be zero-alloc — the property BM_FleetTick_1M's
  // sources/sec rests on.
  StateSpaceModel model = MakeConstantVelocityModel(1.0, 0.1, 0.25);
  FilterPool pool(model, KalmanFilter::UpdateForm::kJoseph);
  constexpr int kSlots = 32;
  std::vector<int32_t> slots;
  std::vector<Vector> zs(kSlots, Vector(1));
  std::vector<double> nis(kSlots);
  for (int i = 0; i < kSlots; ++i) {
    slots.push_back(pool.Acquire(i));
    pool.ResetSlot(slots.back(), Vector(2), Matrix::ScalarDiagonal(2, 1.0));
  }
  Rng rng(42);
  auto tick = [&] {
    for (int i = 0; i < kSlots; ++i) zs[i][0] = rng.Gaussian(0.0, 0.3);
    pool.PredictAll();
    pool.GateBatch(slots.data(), zs.data(), kSlots, nis.data());
    pool.UpdateBatch(slots.data(), zs.data(), kSlots);
  };
  for (int t = 0; t < 5; ++t) tick();
  long before = AllocCount();
  for (int t = 0; t < 200; ++t) tick();
  EXPECT_EQ(AllocCount() - before, 0);
  EXPECT_EQ(pool.num_active(), static_cast<size_t>(kSlots));
}

TEST(ZeroAllocTest, ParallelVectorizedSweepSteadyStateIsAllocationFree) {
  // The phase-1 parallel sweep end to end: a sharded server's pools swept
  // through a ThreadPool with the SIMD lane kernels on. Everything the
  // sweep touches is preallocated — the flattened SweepUnit list reuses
  // its capacity, the thread pool recycles its dispatch batches, and the
  // batch kernels run out of registers and stack lanes — so the steady
  // state must be zero-alloc on every thread (the global counting
  // allocator sees worker-thread allocations too).
  ShardedServer server(4);
  KalmanPredictor::Config config;
  config.model = MakeConstantVelocityModel(1.0, 0.1, 0.25);
  for (int32_t id = 0; id < 64; ++id) {
    size_t shard = server.ShardOf(id);
    ASSERT_TRUE(server
                    .RegisterSource(id, std::make_unique<PooledKalmanPredictor>(
                                            config, server.shard_pools(shard)))
                    .ok());
    Message init;
    init.source_id = id;
    init.type = MessageType::kInit;
    init.seq = 0;
    init.wire_seq = 0;
    init.payload = {0.5, static_cast<double>(id)};  // delta, value.
    ASSERT_TRUE(server.OnMessage(init).ok());
  }
  ThreadPool workers(4);
  server.SetSimdEnabled(true);
  for (int t = 0; t < 5; ++t) server.SweepPools(&workers);  // Warmup.
  long before = AllocCount();
  for (int t = 0; t < 200; ++t) server.SweepPools(&workers);
  EXPECT_EQ(AllocCount() - before, 0);
}

TEST(ZeroAllocTest, PooledPredictorSuppressedTicksStayAllocationFree) {
  // The pooled drop-in under the same protocol loop the per-object
  // KalmanPredictor test above runs: gate, suppressed ticks, contract
  // checks. Pooling must not reintroduce allocations the per-object path
  // already eliminated.
  FilterPoolSet pools;
  KalmanPredictor::Config config;
  config.model = MakeConstantVelocityModel(1.0, 0.1, 0.25);
  config.outlier_gate_prob = 0.999;
  PooledKalmanPredictor predictor(config, &pools);
  Reading first;
  first.value = Vector{0.0};
  predictor.Init(first);

  Rng rng(7);
  auto tick = [&](int64_t seq) {
    Reading z;
    z.seq = seq;
    z.time = static_cast<double>(seq);
    z.value = Vector{rng.Gaussian(0.0, 0.3)};
    pools.PredictAll();  // The shard's batched sweep.
    predictor.Tick();
    predictor.ObserveLocal(z);
    Vector err = predictor.Target() - predictor.Predict();
    return err.NormInf();
  };
  for (int64_t s = 1; s <= 5; ++s) tick(s);
  long before = AllocCount();
  double acc = 0.0;
  for (int64_t s = 6; s <= 205; ++s) acc += tick(s);
  EXPECT_EQ(AllocCount() - before, 0) << "accumulated drift " << acc;
}

// ----------------------------------------------------------- SmallBuf edges

TEST(SmallBufTest, VectorInlineUpToCapacityThenSpills) {
  Vector v8(Vector::kInlineCap);
  EXPECT_TRUE(v8.data().is_inline());
  Vector v9(Vector::kInlineCap + 1);
  EXPECT_FALSE(v9.data().is_inline());
}

TEST(SmallBufTest, MatrixInlineUpToCapacityThenSpills) {
  Matrix m8(8, 8);
  EXPECT_TRUE(m8.data().is_inline());
  Matrix m9(9, 9);
  EXPECT_FALSE(m9.data().is_inline());
}

TEST(SmallBufTest, ResizeAcrossBoundaryPreservesNothingButWorks) {
  Vector v(8);
  for (size_t i = 0; i < 8; ++i) v[i] = static_cast<double>(i);
  v.ResizeUninit(9);  // Inline -> heap.
  EXPECT_FALSE(v.data().is_inline());
  EXPECT_EQ(v.size(), 9u);
  for (size_t i = 0; i < 9; ++i) v[i] = static_cast<double>(10 + i);
  v.ResizeUninit(4);  // Heap -> inline.
  EXPECT_TRUE(v.data().is_inline());
  EXPECT_EQ(v.size(), 4u);
}

TEST(SmallBufTest, InlineCopyAndMoveDoNotAllocate) {
  Vector a{1.0, 2.0, 3.0};
  long before = AllocCount();
  Vector copied = a;
  Vector moved = std::move(copied);
  Vector assigned;
  assigned = a;
  EXPECT_EQ(AllocCount() - before, 0);
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_DOUBLE_EQ(moved[2], 3.0);
  EXPECT_DOUBLE_EQ(assigned[0], 1.0);
}

TEST(SmallBufTest, HeapMoveStealsStorage) {
  Vector big(12);
  for (size_t i = 0; i < 12; ++i) big[i] = static_cast<double>(i);
  const double* storage = big.data().data();
  long before = AllocCount();
  Vector moved = std::move(big);
  EXPECT_EQ(AllocCount() - before, 0);  // Pointer steal, no copy.
  EXPECT_EQ(moved.data().data(), storage);
  EXPECT_EQ(moved.size(), 12u);
  EXPECT_DOUBLE_EQ(moved[11], 11.0);
}

TEST(SmallBufTest, HeapCopyIsDeep) {
  Vector big(12);
  for (size_t i = 0; i < 12; ++i) big[i] = static_cast<double>(i);
  Vector copied = big;
  EXPECT_NE(copied.data().data(), big.data().data());
  EXPECT_TRUE(copied == big);
  copied[0] = -1.0;
  EXPECT_DOUBLE_EQ(big[0], 0.0);
}

TEST(SmallBufTest, SelfAssignmentIsSafe) {
  Vector inl{1.0, 2.0};
  Vector& inl_ref = inl;
  inl = inl_ref;
  EXPECT_EQ(inl.size(), 2u);
  EXPECT_DOUBLE_EQ(inl[1], 2.0);

  Vector heap(12);
  heap[7] = 7.0;
  Vector& heap_ref = heap;
  heap = heap_ref;
  EXPECT_EQ(heap.size(), 12u);
  EXPECT_DOUBLE_EQ(heap[7], 7.0);
}

TEST(SmallBufTest, MatrixSpillRoundTripsThroughKernels) {
  // 9x9 spills to heap; the kernels must still be correct there (they are
  // only allocation-free inside the inline envelope).
  Matrix a(9, 9);
  for (size_t r = 0; r < 9; ++r) {
    for (size_t c = 0; c < 9; ++c) a(r, c) = static_cast<double>(r * 9 + c);
  }
  Matrix id = Matrix::Identity(9);
  Matrix out = a * id;
  EXPECT_FALSE(out.data().is_inline());
  EXPECT_TRUE(AlmostEqual(out, a));
  EXPECT_TRUE(AlmostEqual(a.Transposed().Transposed(), a));
}

TEST(SmallBufTest, VectorToStdVectorConversion) {
  Vector v{1.0, 2.0, 3.0};
  std::vector<double> buf = v.data();
  ASSERT_EQ(buf.size(), 3u);
  EXPECT_DOUBLE_EQ(buf[1], 2.0);
}

}  // namespace
}  // namespace kc
