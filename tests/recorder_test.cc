// Flight recorder: ring semantics, deterministic dumps, metric wiring,
// and the end-to-end "black box" contract — a fault-injected link leaves
// a causally ordered gap -> resync -> recovery trail in the dump.

#include "obs/recorder.h"

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kalman/model.h"
#include "obs/metrics.h"
#include "server/simulation.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace kc {
namespace obs {
namespace {

TEST(SourceRecorderTest, RingKeepsNewestEventsOldestFirst) {
  FlightRecorder recorder(/*capacity_per_source=*/4);
  SourceRecorder* ring = recorder.ForSource(7);
  ASSERT_NE(ring, nullptr);
  EXPECT_EQ(ring->capacity(), 4u);
  EXPECT_EQ(ring->source_id(), 7);

  for (int64_t t = 0; t < 10; ++t) {
    ring->Record(t, RecorderEventKind::kSuppress, /*seq=*/t,
                 /*value=*/static_cast<double>(t) * 0.5);
  }
  EXPECT_EQ(ring->total_recorded(), 10u);  // Monotonic, not capped.

  std::vector<RecorderEvent> events = ring->Snapshot();
  ASSERT_EQ(events.size(), 4u);  // Ring retains capacity.
  // The four newest, oldest-first, every field intact.
  for (size_t i = 0; i < events.size(); ++i) {
    int64_t t = static_cast<int64_t>(6 + i);
    EXPECT_EQ(events[i].tick, t);
    EXPECT_EQ(events[i].seq, t);
    EXPECT_DOUBLE_EQ(events[i].value, static_cast<double>(t) * 0.5);
    EXPECT_EQ(events[i].source_id, 7);
    EXPECT_EQ(events[i].kind, RecorderEventKind::kSuppress);
  }
}

TEST(SourceRecorderTest, ForSourceReturnsStablePointer) {
  FlightRecorder recorder(8);
  SourceRecorder* first = recorder.ForSource(3);
  first->Record(1, RecorderEventKind::kInit);
  EXPECT_EQ(recorder.ForSource(3), first);  // Same ring, not a reset.
  EXPECT_EQ(first->total_recorded(), 1u);
  EXPECT_EQ(recorder.Find(3), first);
  EXPECT_EQ(recorder.Find(99), nullptr);
}

TEST(SourceRecorderTest, MetricsCountRecordsAndEvictions) {
  FlightRecorder recorder(/*capacity_per_source=*/2);
  MetricRegistry registry;
  recorder.BindMetrics(&registry);
  SourceRecorder* ring = recorder.ForSource(0);

  ring->Record(0, RecorderEventKind::kInit);
  ring->Record(1, RecorderEventKind::kSuppress);
  ring->Record(2, RecorderEventKind::kSuppress);  // Evicts the INIT.
  EXPECT_EQ(registry.GetCounter("kc.recorder.events")->value(), 3);
  EXPECT_EQ(registry.GetCounter("kc.recorder.evicted")->value(), 1);

  // Binding after registration retrofits existing rings too.
  FlightRecorder late(2);
  SourceRecorder* early_ring = late.ForSource(5);
  MetricRegistry late_registry;
  late.BindMetrics(&late_registry);
  early_ring->Record(0, RecorderEventKind::kHeartbeat);
  EXPECT_EQ(late_registry.GetCounter("kc.recorder.events")->value(), 1);
}

TEST(FlightRecorderTest, EveryKindHasAName) {
  for (size_t k = 0; k < kNumRecorderEventKinds; ++k) {
    const char* name = RecorderEventKindName(static_cast<RecorderEventKind>(k));
    EXPECT_STRNE(name, "?") << "kind " << k;
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

TEST(FlightRecorderTest, DumpsAreDeterministicAndIdOrdered) {
  FlightRecorder recorder(4);
  // Register out of id order; dumps must come back ascending.
  recorder.ForSource(9)->Record(10, RecorderEventKind::kWireGap, /*seq=*/5,
                                /*value=*/2.0);
  recorder.ForSource(2)->Record(3, RecorderEventKind::kInit, /*seq=*/0,
                                /*value=*/0.25);

  std::vector<int32_t> ids = recorder.SourceIds();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 2);
  EXPECT_EQ(ids[1], 9);

  std::string text = recorder.DumpText();
  EXPECT_EQ(text, recorder.DumpText());  // Bit-identical on repeat.
  size_t at2 = text.find("source 2 flight recorder");
  size_t at9 = text.find("source 9 flight recorder");
  ASSERT_NE(at2, std::string::npos);
  ASSERT_NE(at9, std::string::npos);
  EXPECT_LT(at2, at9);
  EXPECT_NE(text.find("INIT"), std::string::npos);
  EXPECT_NE(text.find("WIRE_GAP"), std::string::npos);

  std::string json = recorder.DumpJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("{\"tick\":3,\"source\":2,\"event\":\"INIT\","
                      "\"seq\":0,\"value\":0.25}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"tick\":10,\"source\":9,\"event\":\"WIRE_GAP\","
                      "\"seq\":5,\"value\":2}"),
            std::string::npos);
  // Unknown sources dump gracefully.
  EXPECT_EQ(recorder.DumpJson(42), "{\"source\":42,\"events\":[]}");
  EXPECT_NE(recorder.DumpText(42).find("no events"), std::string::npos);
}

// ------------------------------------------------------------- end to end

LinkConfig BlackBoxConfig() {
  LinkConfig config;
  config.ticks = 400;
  config.delta = 0.5;
  config.seed = 17;
  config.agent.heartbeat_every = 4;
  config.flight_recorder_capacity = 4096;  // Retain the whole story.
  // A mid-run partition guarantees wire-seq gaps; recovery heals them.
  config.channel.seed = 23;
  config.channel.faults.partition_start = 100;
  config.channel.faults.partition_length = 12;
  config.recovery.enabled = true;
  config.recovery.suspect_after_silent_ticks = 6;
  config.recovery.backoff_initial_ticks = 2;
  config.recovery.backoff_max_ticks = 16;
  return config;
}

TEST(FlightRecorderTest, BlackBoxRecordsCausallyOrderedRecovery) {
  RandomWalkGenerator::Config gen_config;
  gen_config.step_sigma = 1.0;
  RandomWalkGenerator generator(gen_config);
  KalmanPredictor::Config kalman;
  kalman.model = MakeRandomWalkModel(1.0, 0.25);
  KalmanPredictor prototype(kalman);

  LinkConfig config = BlackBoxConfig();
  LinkReport report = RunLink(generator, prototype, config);

  // The partition really did damage and recovery really did run.
  ASSERT_GT(report.gaps + report.agent.heartbeats, 0);
  ASSERT_GT(report.resyncs_requested, 0);
  ASSERT_FALSE(report.black_box.empty());

  // The black box tells the story in causal order: the replica notices
  // the damage (gap or quarantine), asks for help, and is let out of
  // quarantine once the resync lands.
  size_t gap = report.black_box.find("WIRE_GAP");
  if (gap == std::string::npos) {
    // Heartbeat silence can trip quarantine before any data gap is seen.
    gap = report.black_box.find("QUARANTINE_ENTER");
  }
  size_t request = report.black_box.find("RESYNC_REQUEST", gap);
  size_t served = report.black_box.find("RESYNC_SERVED", request);
  size_t exit_at = report.black_box.find("QUARANTINE_EXIT", request);
  ASSERT_NE(gap, std::string::npos) << report.black_box;
  ASSERT_NE(request, std::string::npos) << report.black_box;
  ASSERT_NE(served, std::string::npos) << report.black_box;
  ASSERT_NE(exit_at, std::string::npos) << report.black_box;
  EXPECT_LT(gap, request);
  EXPECT_LT(request, served);
  EXPECT_LT(request, exit_at);

  // Healthy protocol traffic is in there too — the trail has context.
  EXPECT_NE(report.black_box.find("INIT"), std::string::npos);

  // Determinism: the identical config replays to the identical black box.
  RandomWalkGenerator generator2(gen_config);
  LinkReport replay = RunLink(generator2, prototype, config);
  EXPECT_EQ(report.black_box, replay.black_box);
}

TEST(FlightRecorderTest, CleanLinkBlackBoxHasNoRecoveryEvents) {
  RandomWalkGenerator::Config gen_config;
  RandomWalkGenerator generator(gen_config);
  KalmanPredictor::Config kalman;
  kalman.model = MakeRandomWalkModel(1.0, 0.25);
  KalmanPredictor prototype(kalman);

  LinkConfig config;
  config.ticks = 200;
  config.delta = 0.5;
  config.flight_recorder_capacity = 64;
  LinkReport report = RunLink(generator, prototype, config);

  ASSERT_FALSE(report.black_box.empty());
  EXPECT_EQ(report.black_box.find("WIRE_GAP"), std::string::npos);
  EXPECT_EQ(report.black_box.find("RESYNC_REQUEST"), std::string::npos);
  EXPECT_EQ(report.black_box.find("QUARANTINE"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace kc
