// The windowed metric time-series store: counter deltas, gauge samples,
// true windowed histogram percentiles, ring eviction, and the
// deterministic JSON/text exports the HTTP endpoint serves.

#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace kc {
namespace obs {
namespace {

TEST(TimeSeriesTest, CounterSeriesCarriesWindowDeltas) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("kc.x.messages");
  TimeSeriesStore store;
  c->Inc(3);
  store.Capture(registry, /*tick=*/10);
  c->Inc(5);
  store.Capture(registry, 20);
  store.Capture(registry, 30);  // Quiet window.
  std::vector<SeriesPoint> points = store.Points("kc.x.messages.delta");
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].tick, 10);
  EXPECT_DOUBLE_EQ(points[0].value, 3.0);
  EXPECT_EQ(points[1].tick, 20);
  EXPECT_DOUBLE_EQ(points[1].value, 5.0);
  EXPECT_DOUBLE_EQ(points[2].value, 0.0);
}

TEST(TimeSeriesTest, GaugeSeriesSamplesTheBoundaryValue) {
  MetricRegistry registry;
  Gauge* g = registry.GetGauge("kc.x.level");
  TimeSeriesStore store;
  g->Set(4.5);
  store.Capture(registry, 1);
  g->Set(-2.0);
  store.Capture(registry, 2);
  std::vector<SeriesPoint> points = store.Points("kc.x.level.last");
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].value, 4.5);
  EXPECT_DOUBLE_EQ(points[1].value, -2.0);
}

TEST(TimeSeriesTest, HistogramSeriesAreWindowedNotLifetime) {
  MetricRegistry registry;
  Histogram* h =
      registry.GetHistogram("kc.x.lat", Buckets::Linear(1.0, 1.0, 4));
  TimeSeriesStore store;
  // Window 1: all fast (bucket <= 1).
  for (int i = 0; i < 10; ++i) h->Record(0.5);
  store.Capture(registry, 100);
  // Window 2: all slow (bucket <= 4). A lifetime p50 would still sit in
  // the fast bucket; the windowed p50 must move to the slow one.
  for (int i = 0; i < 10; ++i) h->Record(3.5);
  store.Capture(registry, 200);

  std::vector<SeriesPoint> count = store.Points("kc.x.lat.count_delta");
  ASSERT_EQ(count.size(), 2u);
  EXPECT_DOUBLE_EQ(count[0].value, 10.0);
  EXPECT_DOUBLE_EQ(count[1].value, 10.0);
  std::vector<SeriesPoint> p50 = store.Points("kc.x.lat.p50");
  ASSERT_EQ(p50.size(), 2u);
  EXPECT_LE(p50[0].value, 1.0);
  EXPECT_GT(p50[1].value, 3.0);
  EXPECT_LE(p50[1].value, 4.0);
  // p99 of the slow window also lands in the slow bucket.
  std::vector<SeriesPoint> p99 = store.Points("kc.x.lat.p99");
  EXPECT_GT(p99[1].value, p50[1].value - 1.0);
}

TEST(TimeSeriesTest, RingEvictsOldestAtCapacity) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("kc.x.n");
  TimeSeriesConfig config;
  config.capacity = 4;
  TimeSeriesStore store(config);
  MetricRegistry meta;
  store.BindMetrics(&meta);
  for (int64_t t = 1; t <= 6; ++t) {
    c->Inc();
    store.Capture(registry, t * 10);
  }
  std::vector<SeriesPoint> points = store.Points("kc.x.n.delta");
  ASSERT_EQ(points.size(), 4u);  // Two oldest evicted.
  EXPECT_EQ(points.front().tick, 30);
  EXPECT_EQ(points.back().tick, 60);
  EXPECT_EQ(store.captures(), 6);
  EXPECT_EQ(meta.GetCounter("kc.ts.captures")->value(), 6);
  EXPECT_EQ(meta.GetCounter("kc.ts.evicted_points")->value(), 2);
  EXPECT_DOUBLE_EQ(meta.GetGauge("kc.ts.series")->value(), 1.0);
}

TEST(TimeSeriesTest, WallClockMetricsAreExcludedByDefault) {
  MetricRegistry registry;
  registry.GetHistogram("kc.time.step", Buckets::Linear(1.0, 1.0, 2),
                        /*wall_clock=*/true)
      ->Record(1.5);
  registry.GetCounter("kc.x.steady")->Inc();
  TimeSeriesStore store;
  store.Capture(registry, 1);
  EXPECT_EQ(store.Points("kc.time.step.p50").size(), 0u);
  EXPECT_EQ(store.Points("kc.x.steady.delta").size(), 1u);

  TimeSeriesConfig config;
  config.include_wall_clock = true;
  TimeSeriesStore with_wall(config);
  with_wall.Capture(registry, 1);
  EXPECT_EQ(with_wall.Points("kc.time.step.p50").size(), 1u);
}

TEST(TimeSeriesTest, SeriesNamesAreSortedAndStable) {
  MetricRegistry registry;
  registry.GetGauge("kc.b.g")->Set(1.0);
  registry.GetCounter("kc.a.c")->Inc();
  TimeSeriesStore store;
  store.Capture(registry, 1);
  EXPECT_EQ(store.SeriesNames(),
            (std::vector<std::string>{"kc.a.c.delta", "kc.b.g.last"}));
  EXPECT_EQ(store.num_series(), 2u);
  EXPECT_TRUE(store.Points("kc.unknown").empty());
}

TEST(TimeSeriesTest, ExportJsonGolden) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("kc.a.c");
  TimeSeriesConfig config;
  config.capacity = 8;
  TimeSeriesStore store(config);
  c->Inc(2);
  store.Capture(registry, 5);
  c->Inc(1);
  store.Capture(registry, 6);
  EXPECT_EQ(store.ExportJson(),
            "{\"capacity\":8,\"captures\":2,\"series\":["
            "{\"name\":\"kc.a.c.delta\",\"points\":[[5,2],[6,1]]}]}");
  // Renders are repeatable byte for byte.
  EXPECT_EQ(store.ExportJson(), store.ExportJson());
}

TEST(TimeSeriesTest, ExportsHonorThePrefixFilter) {
  MetricRegistry registry;
  registry.GetCounter("kc.audit.samples")->Inc(4);
  registry.GetGauge("kc.server.sources")->Set(9.0);
  TimeSeriesStore store;
  store.Capture(registry, 7);

  std::string scoped = store.ExportJson("kc.audit");
  EXPECT_NE(scoped.find("kc.audit.samples.delta"), std::string::npos);
  EXPECT_EQ(scoped.find("kc.server.sources"), std::string::npos);

  std::string text = store.ExportText("kc.server");
  EXPECT_EQ(text.find("kc.audit"), std::string::npos);
  EXPECT_NE(text.find("kc.server.sources.last"), std::string::npos);
  EXPECT_NE(text.find("n=1 last=9 @ tick 7"), std::string::npos);

  // An unmatched prefix renders the empty document, not an error.
  EXPECT_EQ(store.ExportText("nope"), "");
  EXPECT_EQ(store.ExportJson("nope"),
            "{\"capacity\":64,\"captures\":1,\"series\":[]}");
}

TEST(TimeSeriesTest, ZeroCapacityIsClampedToOne) {
  TimeSeriesConfig config;
  config.capacity = 0;
  TimeSeriesStore store(config);
  EXPECT_EQ(store.capacity(), 1u);
  MetricRegistry registry;
  Counter* c = registry.GetCounter("kc.x");
  c->Inc();
  store.Capture(registry, 1);
  c->Inc();
  store.Capture(registry, 2);
  std::vector<SeriesPoint> points = store.Points("kc.x.delta");
  ASSERT_EQ(points.size(), 1u);  // Only the newest point survives.
  EXPECT_EQ(points[0].tick, 2);
}

}  // namespace
}  // namespace obs
}  // namespace kc
