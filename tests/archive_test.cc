#include "server/archive.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "server/server.h"
#include "suppression/policies.h"

namespace kc {
namespace {

TEST(TickArchiveTest, RecordsAndSizes) {
  TickArchive archive(4);
  EXPECT_TRUE(archive.empty());
  EXPECT_EQ(archive.capacity(), 4u);
  archive.Record(1.0, 10.0, 0.5);
  archive.Record(2.0, 11.0, 0.5);
  EXPECT_EQ(archive.size(), 2u);
  EXPECT_DOUBLE_EQ(archive.oldest_time(), 1.0);
  EXPECT_DOUBLE_EQ(archive.newest_time(), 2.0);
}

TEST(TickArchiveTest, RingEvictsOldest) {
  TickArchive archive(3);
  for (int i = 1; i <= 5; ++i) {
    archive.Record(static_cast<double>(i), static_cast<double>(10 * i), 0.1);
  }
  EXPECT_EQ(archive.size(), 3u);
  EXPECT_EQ(archive.total_recorded(), 5);
  EXPECT_DOUBLE_EQ(archive.oldest_time(), 3.0);
  EXPECT_DOUBLE_EQ(archive.newest_time(), 5.0);
  auto all = archive.Range(0.0, 100.0);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0].value, 30.0);
  EXPECT_DOUBLE_EQ(all[2].value, 50.0);
}

TEST(TickArchiveTest, RangeBoundariesInclusive) {
  TickArchive archive(10);
  for (int i = 1; i <= 5; ++i) {
    archive.Record(static_cast<double>(i), static_cast<double>(i), 0.1);
  }
  auto range = archive.Range(2.0, 4.0);
  ASSERT_EQ(range.size(), 3u);
  EXPECT_DOUBLE_EQ(range.front().time, 2.0);
  EXPECT_DOUBLE_EQ(range.back().time, 4.0);
  EXPECT_TRUE(archive.Range(6.0, 9.0).empty());
}

TEST(TickArchiveTest, AggregatesWithBounds) {
  TickArchive archive(10);
  archive.Record(1.0, 10.0, 0.5);
  archive.Record(2.0, 20.0, 1.0);
  archive.Record(3.0, 15.0, 0.25);

  auto sum = archive.Aggregate(AggregateKind::kSum, 0.0, 10.0);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum->value, 45.0);
  EXPECT_DOUBLE_EQ(sum->bound, 1.75);

  auto avg = archive.Aggregate(AggregateKind::kAvg, 0.0, 10.0);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg->value, 15.0);
  EXPECT_NEAR(avg->bound, 1.75 / 3.0, 1e-12);

  auto mn = archive.Aggregate(AggregateKind::kMin, 0.0, 10.0);
  ASSERT_TRUE(mn.ok());
  EXPECT_DOUBLE_EQ(mn->value, 10.0);
  EXPECT_DOUBLE_EQ(mn->bound, 1.0);

  auto mx = archive.Aggregate(AggregateKind::kMax, 0.0, 10.0);
  ASSERT_TRUE(mx.ok());
  EXPECT_DOUBLE_EQ(mx->value, 20.0);

  auto latest = archive.Aggregate(AggregateKind::kValue, 0.0, 10.0);
  ASSERT_TRUE(latest.ok());
  EXPECT_DOUBLE_EQ(latest->value, 15.0);
  EXPECT_DOUBLE_EQ(latest->bound, 0.25);
}

TEST(TickArchiveTest, EmptyRangeAggregateFails) {
  TickArchive archive(4);
  archive.Record(1.0, 1.0, 0.1);
  EXPECT_FALSE(archive.Aggregate(AggregateKind::kAvg, 5.0, 9.0).ok());
}

TEST(ServerArchiveTest, DisabledByDefault) {
  StreamServer server;
  EXPECT_FALSE(server.Archive(0).ok());
}

TEST(ServerArchiveTest, RecordsScalarViewsPerTick) {
  StreamServer server;
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  server.EnableArchiving(100);

  Message init;
  init.source_id = 0;
  init.type = MessageType::kInit;
  init.seq = 0;
  init.payload = {0.5, 7.0};
  ASSERT_TRUE(server.OnMessage(init).ok());

  for (int i = 0; i < 10; ++i) server.Tick();
  auto archive = server.Archive(0);
  ASSERT_TRUE(archive.ok());
  EXPECT_EQ((*archive)->size(), 10u);
  auto points = (*archive)->Range(0.0, 1e9);
  for (const auto& p : points) {
    EXPECT_DOUBLE_EQ(p.value, 7.0);
    EXPECT_DOUBLE_EQ(p.bound, 0.5);
  }

  auto hist = server.HistoricalAggregate(0, AggregateKind::kAvg, 0.0, 1e9);
  ASSERT_TRUE(hist.ok());
  EXPECT_DOUBLE_EQ(hist->value, 7.0);
  EXPECT_DOUBLE_EQ(hist->bound, 0.5);
}

TEST(ServerArchiveTest, SkipsUninitializedAndPlanarSources) {
  StreamServer server;
  server.EnableArchiving(10);
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  KalmanPredictor::Config planar;
  planar.model = MakeConstantVelocity2DModel(1.0, 0.1, 1.0);
  ASSERT_TRUE(
      server.RegisterSource(1, std::make_unique<KalmanPredictor>(planar)).ok());

  server.Tick();  // Source 0 uninitialized, source 1 planar: no archives.
  EXPECT_FALSE(server.Archive(0).ok());
  EXPECT_FALSE(server.Archive(1).ok());
}

TEST(ServerArchiveTest, HistoricalQueryThroughTheQueryLanguage) {
  StreamServer server;
  server.EnableArchiving(1000);
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  Message init;
  init.source_id = 0;
  init.type = MessageType::kInit;
  init.seq = 0;
  init.payload = {0.5, 2.0};
  ASSERT_TRUE(server.OnMessage(init).ok());

  // Ticks 1..5 record value 2.0; then a correction to 8.0; ticks 6..10
  // record 8.0.
  for (int i = 0; i < 5; ++i) server.Tick();
  Message corr;
  corr.source_id = 0;
  corr.type = MessageType::kCorrection;
  corr.seq = 5;
  corr.payload = {0.5, 8.0};
  ASSERT_TRUE(server.OnMessage(corr).ok());
  for (int i = 0; i < 5; ++i) server.Tick();

  auto spec = ParseQuery("SELECT AVG(s0) FROM 1 TO 10");
  ASSERT_TRUE(spec.ok()) << spec.status();
  auto result = server.EvaluateSpec(*spec, "hist_avg");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->value, 5.0);  // Five 2s and five 8s.
  EXPECT_DOUBLE_EQ(result->bound, 0.5);

  auto max_spec = ParseQuery("SELECT MAX(s0) FROM 1 TO 10 WHEN > 7");
  ASSERT_TRUE(max_spec.ok());
  auto max_result = server.EvaluateSpec(*max_spec, "hist_max");
  ASSERT_TRUE(max_result.ok());
  EXPECT_DOUBLE_EQ(max_result->value, 8.0);
  ASSERT_TRUE(max_result->trigger.has_value());
  EXPECT_EQ(*max_result->trigger, TriggerState::kYes);

  // Out-of-archive range fails cleanly.
  auto empty = ParseQuery("SELECT AVG(s0) FROM 500 TO 600");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(server.EvaluateSpec(*empty, "none").ok());
}

TEST(ServerArchiveTest, SlidingWindowQueryAnchorsToNow) {
  StreamServer server;
  server.EnableArchiving(1000);
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  Message init;
  init.source_id = 0;
  init.type = MessageType::kInit;
  init.seq = 0;
  init.payload = {0.5, 1.0};
  ASSERT_TRUE(server.OnMessage(init).ok());
  for (int i = 0; i < 5; ++i) server.Tick();  // Value 1 for ticks 1..5.
  Message corr;
  corr.source_id = 0;
  corr.type = MessageType::kCorrection;
  corr.seq = 5;
  corr.payload = {0.5, 11.0};
  ASSERT_TRUE(server.OnMessage(corr).ok());
  for (int i = 0; i < 5; ++i) server.Tick();  // Value 11 for ticks 6..10.

  auto spec = ParseQuery("SELECT AVG(s0) LAST 5");
  ASSERT_TRUE(spec.ok());
  auto result = server.EvaluateSpec(*spec, "w");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->value, 11.0);  // Only the recent window.

  // Advance and the window slides with "now" (no more records, range
  // empties out eventually).
  auto wide = ParseQuery("SELECT AVG(s0) LAST 10");
  ASSERT_TRUE(wide.ok());
  auto wide_result = server.EvaluateSpec(*wide, "w10");
  ASSERT_TRUE(wide_result.ok());
  EXPECT_DOUBLE_EQ(wide_result->value, 6.0);  // Five 1s + five 11s.
}

TEST(ServerArchiveTest, HistoricalAggregateUnknownSourceFails) {
  StreamServer server;
  server.EnableArchiving(10);
  EXPECT_FALSE(
      server.HistoricalAggregate(42, AggregateKind::kAvg, 0.0, 1.0).ok());
}

}  // namespace
}  // namespace kc
