#include "streams/trace.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "streams/generators.h"
#include "streams/noise.h"

namespace kc {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(MaterializeTest, CountAndDeterminism) {
  RandomWalkGenerator gen(RandomWalkGenerator::Config{});
  auto a = Materialize(gen, 100, 42);
  auto b = Materialize(gen, 100, 42);
  ASSERT_EQ(a.size(), 100u);
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].truth.value == b[i].truth.value);
  }
}

TEST(TraceCsvTest, RoundTripScalar) {
  NoiseConfig noise;
  noise.gaussian_sigma = 0.5;
  NoisyStream gen(
      std::make_unique<RandomWalkGenerator>(RandomWalkGenerator::Config{}),
      noise);
  auto trace = Materialize(gen, 64, 7);
  std::string path = TempPath("scalar_trace.csv");
  ASSERT_TRUE(SaveTraceCsv(path, trace).ok());

  auto loaded = LoadTraceCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ((*loaded)[i].truth.seq, trace[i].truth.seq);
    EXPECT_DOUBLE_EQ((*loaded)[i].truth.time, trace[i].truth.time);
    EXPECT_DOUBLE_EQ((*loaded)[i].truth.scalar(), trace[i].truth.scalar());
    EXPECT_DOUBLE_EQ((*loaded)[i].measured.scalar(), trace[i].measured.scalar());
  }
  std::remove(path.c_str());
}

TEST(TraceCsvTest, RoundTripPlanar) {
  Vehicle2DGenerator gen(Vehicle2DGenerator::Config{});
  auto trace = Materialize(gen, 32, 3);
  std::string path = TempPath("planar_trace.csv");
  ASSERT_TRUE(SaveTraceCsv(path, trace).ok());
  auto loaded = LoadTraceCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 32u);
  EXPECT_EQ((*loaded)[0].truth.value.size(), 2u);
  EXPECT_DOUBLE_EQ((*loaded)[10].truth.value[1], trace[10].truth.value[1]);
  std::remove(path.c_str());
}

TEST(TraceCsvTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(LoadTraceCsv(TempPath("does_not_exist.csv")).ok());
}

TEST(TraceCsvTest, LoadRejectsMalformedHeader) {
  std::string path = TempPath("bad_header.csv");
  {
    std::ofstream out(path);
    out << "seq,time,only_one_value\n";
  }
  EXPECT_FALSE(LoadTraceCsv(path).ok());
  std::remove(path.c_str());
}

TEST(TraceCsvTest, LoadRejectsBadRow) {
  std::string path = TempPath("bad_row.csv");
  {
    std::ofstream out(path);
    out << "seq,time,truth_0,meas_0\n";
    out << "0,0.0,1.0\n";  // Missing a field.
  }
  EXPECT_FALSE(LoadTraceCsv(path).ok());
  std::remove(path.c_str());
}

TEST(TraceCsvTest, LoadRejectsNonNumeric) {
  std::string path = TempPath("bad_value.csv");
  {
    std::ofstream out(path);
    out << "seq,time,truth_0,meas_0\n";
    out << "0,0.0,abc,1.0\n";
  }
  EXPECT_FALSE(LoadTraceCsv(path).ok());
  std::remove(path.c_str());
}

TEST(ReplayGeneratorTest, ReplaysExactly) {
  RandomWalkGenerator gen(RandomWalkGenerator::Config{});
  auto trace = Materialize(gen, 50, 5);
  ReplayGenerator replay(trace, "walk_replay");
  EXPECT_EQ(replay.name(), "walk_replay");
  EXPECT_EQ(replay.size(), 50u);
  replay.Reset(0);
  for (size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(replay.Next().truth.value == trace[i].truth.value);
  }
}

TEST(ReplayGeneratorTest, ClampsAtEnd) {
  RandomWalkGenerator gen(RandomWalkGenerator::Config{});
  auto trace = Materialize(gen, 5, 5);
  ReplayGenerator replay(trace, "short");
  replay.Reset(0);
  for (int i = 0; i < 5; ++i) replay.Next();
  EXPECT_TRUE(replay.exhausted());
  EXPECT_TRUE(replay.Next().truth.value == trace.back().truth.value);
}

TEST(ReplayGeneratorTest, ResetRewinds) {
  RandomWalkGenerator gen(RandomWalkGenerator::Config{});
  auto trace = Materialize(gen, 10, 5);
  ReplayGenerator replay(trace, "rewind");
  replay.Reset(0);
  double first = replay.Next().truth.scalar();
  replay.Next();
  replay.Reset(123);  // Seed ignored for replays.
  EXPECT_DOUBLE_EQ(replay.Next().truth.scalar(), first);
}

TEST(ReplayGeneratorTest, DimsFromTrace) {
  Vehicle2DGenerator gen(Vehicle2DGenerator::Config{});
  ReplayGenerator replay(Materialize(gen, 4, 1), "veh");
  EXPECT_EQ(replay.dims(), 2u);
}

}  // namespace
}  // namespace kc
