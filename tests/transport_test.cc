// SocketChannel loopback tests: the real UDP/TCP transport must honor the
// same send/advance contract, the same byte accounting, and the same
// recovery behaviour as the simulated Channel — that is what lets every
// experiment in the suite speak for a deployed system.

#include "net/transport.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <vector>

#include <chrono>
#include <string>
#include <thread>

#include "common/rng.h"
#include "common/status.h"
#include "fleet/sharded_fleet.h"
#include "net/channel.h"
#include "net/codec.h"
#include "net/message.h"
#include "server/split_deploy.h"
#include "streams/generators.h"
#include "suppression/agent.h"
#include "suppression/policies.h"
#include "suppression/replica.h"

namespace kc {
namespace {

Message MakeMessage(MessageType type, int64_t seq, size_t payload_doubles) {
  Message msg;
  msg.source_id = 5;
  msg.type = type;
  msg.seq = seq;
  msg.wire_seq = seq;
  msg.time = static_cast<double>(seq) * 0.25;
  if (IsUplinkType(type)) {
    msg.flow_id = CausalFlowId(msg.source_id, msg.wire_seq);
  }
  msg.payload.assign(payload_doubles, 3.5);
  return msg;
}

Reading MakeReading(int64_t seq, double value) {
  Reading r;
  r.seq = seq;
  r.time = static_cast<double>(seq);
  r.value = Vector({value});
  return r;
}

KalmanPredictor::Config TestKalman() {
  KalmanPredictor::Config config;
  config.model = MakeRandomWalkModel(0.1, 0.5);
  config.sync_mode = KalmanPredictor::SyncMode::kMeasurement;
  return config;
}

struct UdpPair {
  std::unique_ptr<SocketChannel> rx;
  std::unique_ptr<SocketChannel> tx;
};

UdpPair MakeUdpPair() {
  auto rx = SocketChannel::UdpBind("127.0.0.1", 0);
  EXPECT_TRUE(rx.ok()) << rx.status();
  auto tx = SocketChannel::UdpConnect("127.0.0.1", (*rx)->port());
  EXPECT_TRUE(tx.ok()) << tx.status();
  return {std::move(*rx), std::move(*tx)};
}

struct TcpPair {
  std::unique_ptr<TcpListener> listener;
  std::unique_ptr<SocketChannel> client;
  std::unique_ptr<SocketChannel> server;
};

TcpPair MakeTcpPair() {
  auto listener = TcpListener::Listen("127.0.0.1", 0);
  EXPECT_TRUE(listener.ok()) << listener.status();
  auto client = SocketChannel::TcpConnect("127.0.0.1", (*listener)->port());
  EXPECT_TRUE(client.ok()) << client.status();
  auto server = (*listener)->Accept(/*timeout_ms=*/2000);
  EXPECT_TRUE(server.ok()) << server.status();
  return {std::move(*listener), std::move(*client), std::move(*server)};
}

/// Polls `rx` until `expected` messages have been delivered (bounded wait;
/// loopback is fast but asynchronous).
void DrainUntil(SocketChannel* rx, int64_t expected) {
  for (int i = 0; i < 200 && rx->stats().messages_delivered < expected; ++i) {
    rx->Poll(/*timeout_ms=*/25);
  }
}

TEST(UdpTransportTest, RoundTripWithBothEndAccounting) {
  UdpPair link = MakeUdpPair();
  std::vector<Message> got;
  link.rx->SetReceiver([&got](const Message& m) { got.push_back(m); });

  std::vector<Message> sent;
  for (int64_t i = 0; i < 50; ++i) {
    Message m = MakeMessage(MessageType::kCorrection, i, 2);
    sent.push_back(m);
    ASSERT_TRUE(link.tx->Send(m).ok());
  }
  DrainUntil(link.rx.get(), 50);

  ASSERT_EQ(got.size(), sent.size());
  int64_t expected_bytes = 0;
  for (size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].seq, sent[i].seq);
    EXPECT_EQ(got[i].wire_seq, sent[i].wire_seq);
    EXPECT_EQ(got[i].type, sent[i].type);
    EXPECT_EQ(got[i].flow_id, sent[i].flow_id) << "reconstructed flow id";
    EXPECT_EQ(got[i].payload, sent[i].payload);
    expected_bytes += static_cast<int64_t>(sent[i].SizeBytes());
  }
  // The parity contract: sender books == simulated-channel send books,
  // receiver books mirror them exactly on a lossless loopback.
  EXPECT_EQ(link.tx->stats().messages_sent, 50);
  EXPECT_EQ(link.tx->stats().bytes_sent, expected_bytes);
  EXPECT_EQ(link.rx->stats().messages_delivered, 50);
  EXPECT_EQ(link.rx->stats().bytes_delivered, expected_bytes);
  size_t corr = static_cast<size_t>(MessageType::kCorrection);
  EXPECT_EQ(link.tx->stats().by_type_bytes_sent[corr], expected_bytes);
  EXPECT_EQ(link.rx->stats().by_type_bytes_delivered[corr], expected_bytes);
  EXPECT_EQ(link.rx->frames_rejected(), 0);
}

TEST(UdpTransportTest, SendOnReceiveOnlyChannelFailsCleanly) {
  UdpPair link = MakeUdpPair();
  Status s = link.rx->Send(MakeMessage(MessageType::kHeartbeat, 0, 0));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(link.rx->stats().messages_sent, 0);
}

TEST(UdpTransportTest, GarbageAndTruncatedDatagramsRejectedNotFatal) {
  UdpPair link = MakeUdpPair();
  int delivered = 0;
  link.rx->SetReceiver([&delivered](const Message&) { ++delivered; });

  // Raw socket lobbing junk at the receiver's port.
  int junk_fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(junk_fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(link.rx->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);

  uint8_t junk[32];
  std::memset(junk, 0xEE, sizeof(junk));
  ASSERT_GT(::sendto(junk_fd, junk, sizeof(junk), 0,
                     reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // A truncated-but-valid-prefix frame: the length prefix promises more
  // body than the datagram carries.
  std::vector<uint8_t> frame =
      codec::Encode(MakeMessage(MessageType::kFullSync, 9, 4));
  ASSERT_GT(::sendto(junk_fd, frame.data(), frame.size() - 10, 0,
                     reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ::close(junk_fd);

  // A good frame after the junk must still get through.
  ASSERT_TRUE(link.tx->Send(MakeMessage(MessageType::kCorrection, 1, 1)).ok());
  DrainUntil(link.rx.get(), 1);

  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(link.rx->frames_rejected(), 2);
  EXPECT_EQ(link.rx->stats().messages_delivered, 1);
  EXPECT_TRUE(link.rx->last_error().ok());
}

TEST(TcpTransportTest, FullDuplexRoundTrip) {
  TcpPair link = MakeTcpPair();
  std::vector<int64_t> at_server, at_client;
  link.server->SetReceiver(
      [&at_server](const Message& m) { at_server.push_back(m.seq); });
  link.client->SetReceiver(
      [&at_client](const Message& m) { at_client.push_back(m.seq); });

  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        link.client->Send(MakeMessage(MessageType::kResyncRequest, i, 1))
            .ok());
    ASSERT_TRUE(
        link.server->Send(MakeMessage(MessageType::kSetBound, 100 + i, 1))
            .ok());
  }
  DrainUntil(link.server.get(), 20);
  DrainUntil(link.client.get(), 20);

  ASSERT_EQ(at_server.size(), 20u);
  ASSERT_EQ(at_client.size(), 20u);
  for (int64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(at_server[i], i);          // Stream order preserved.
    EXPECT_EQ(at_client[i], 100 + i);
  }
  EXPECT_EQ(link.client->stats().bytes_sent,
            link.server->stats().bytes_delivered);
  EXPECT_EQ(link.server->stats().bytes_sent,
            link.client->stats().bytes_delivered);
}

TEST(TcpTransportTest, ReassemblesFragmentedFrames) {
  TcpPair link = MakeTcpPair();
  std::vector<Message> got;
  link.server->SetReceiver([&got](const Message& m) { got.push_back(m); });

  // Two frames dribbled across the stream one byte at a time, straddling
  // every possible boundary the reassembler must handle.
  std::vector<uint8_t> bytes;
  codec::EncodeFrame(MakeMessage(MessageType::kSetBound, 7, 3), &bytes);
  codec::EncodeFrame(MakeMessage(MessageType::kResyncRequest, 8, 0), &bytes);
  for (uint8_t b : bytes) {
    ASSERT_EQ(::send(link.client->fd(), &b, 1, 0), 1);
    link.server->Poll(/*timeout_ms=*/5);
  }
  DrainUntil(link.server.get(), 2);

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].seq, 7);
  EXPECT_EQ(got[0].payload.size(), 3u);
  EXPECT_EQ(got[1].seq, 8);
  EXPECT_TRUE(link.server->last_error().ok());
}

TEST(TcpTransportTest, GarbageOnStreamPoisonsConnection) {
  TcpPair link = MakeTcpPair();
  link.server->SetReceiver([](const Message&) {});

  // One good frame, then bytes that cannot start a frame (body_len far
  // over the cap). Stream framing is unrecoverable from that point.
  ASSERT_TRUE(
      link.client->Send(MakeMessage(MessageType::kSetBound, 1, 1)).ok());
  uint8_t junk[16];
  std::memset(junk, 0xFF, sizeof(junk));
  ASSERT_EQ(::send(link.client->fd(), junk, sizeof(junk), 0),
            static_cast<ssize_t>(sizeof(junk)));

  DrainUntil(link.server.get(), 1);
  for (int i = 0; i < 20 && link.server->last_error().ok(); ++i) {
    link.server->Poll(/*timeout_ms=*/25);
  }

  EXPECT_EQ(link.server->stats().messages_delivered, 1);
  EXPECT_FALSE(link.server->last_error().ok());
  EXPECT_TRUE(link.server->peer_closed());
  EXPECT_GE(link.server->frames_rejected(), 1);
  // A poisoned channel refuses further sends with its error.
  EXPECT_FALSE(link.server->Send(MakeMessage(MessageType::kSetBound, 2, 0))
                   .ok());
}

TEST(TcpTransportTest, TickBarriersBypassAccounting) {
  TcpPair link = MakeTcpPair();
  std::vector<int64_t> ticks;
  link.client->SetTickSink([&ticks](int64_t t) { ticks.push_back(t); });
  std::vector<int64_t> seqs;
  link.client->SetReceiver([&seqs](const Message& m) { seqs.push_back(m.seq); });

  ASSERT_TRUE(link.server->SendTickBarrier(41).ok());
  ASSERT_TRUE(link.server->Send(MakeMessage(MessageType::kSetBound, 9, 1)).ok());
  ASSERT_TRUE(link.server->SendTickBarrier(42).ok());
  DrainUntil(link.client.get(), 1);
  for (int i = 0; i < 20 && ticks.size() < 2; ++i) {
    link.client->Poll(/*timeout_ms=*/25);
  }

  EXPECT_EQ(ticks, (std::vector<int64_t>{41, 42}));
  EXPECT_EQ(seqs, (std::vector<int64_t>{9}));
  // Barriers are transport metadata: neither end's NetworkStats moved
  // for them.
  EXPECT_EQ(link.server->stats().messages_sent, 1);
  EXPECT_EQ(link.client->stats().messages_delivered, 1);
  EXPECT_EQ(link.server->stats().bytes_sent,
            link.client->stats().bytes_delivered);
  // And UDP channels refuse them.
  UdpPair udp = MakeUdpPair();
  EXPECT_EQ(udp.tx->SendTickBarrier(1).code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Telemetry control plane: the uncharged escape frames distributed
// telemetry rides on (clock probes, snapshots, black-box pulls).

TEST(TcpTransportTest, ClockPingAutoPongRoundTrip) {
  TcpPair link = MakeTcpPair();
  link.server->SetReceiver([](const Message&) {});
  std::vector<std::pair<int64_t, int64_t>> pongs;
  link.client->SetClockPongSink([&pongs](int64_t t0, int64_t peer_ns) {
    pongs.emplace_back(t0, peer_ns);
  });

  // The transport answers pings itself (no application drain in the
  // round trip, so queueing delay cannot masquerade as clock offset).
  ASSERT_TRUE(link.client->SendClockPing(123456789).ok());
  for (int i = 0; i < 40 && pongs.empty(); ++i) {
    link.server->Poll(/*timeout_ms=*/25);
    link.client->Poll(/*timeout_ms=*/25);
  }
  ASSERT_EQ(pongs.size(), 1u);
  EXPECT_EQ(pongs[0].first, 123456789);  // t0 echoed for RTT pairing.
  EXPECT_GT(pongs[0].second, 0);         // The peer's clock reading.

  // The whole exchange is transport metadata: neither side's books moved.
  EXPECT_EQ(link.client->stats().messages_sent, 0);
  EXPECT_EQ(link.client->stats().bytes_sent, 0);
  EXPECT_EQ(link.client->stats().messages_delivered, 0);
  EXPECT_EQ(link.server->stats().messages_sent, 0);
  EXPECT_EQ(link.server->stats().messages_delivered, 0);
}

TEST(TcpTransportTest, SnapshotFramesDeliverBytesUncharged) {
  TcpPair link = MakeTcpPair();
  std::vector<std::vector<uint8_t>> got;
  link.server->SetSnapshotSink([&got](const uint8_t* data, size_t size) {
    got.emplace_back(data, data + size);
  });

  std::vector<uint8_t> payload = {0x4B, 0x01, 0x00, 0xFF, 0x80, 0x7F};
  ASSERT_TRUE(
      link.client->SendTelemetrySnapshot(payload.data(), payload.size()).ok());
  for (int i = 0; i < 40 && got.empty(); ++i) {
    link.server->Poll(/*timeout_ms=*/25);
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], payload);  // Opaque to the transport, byte-exact.
  EXPECT_EQ(link.client->stats().messages_sent, 0);
  EXPECT_EQ(link.server->stats().messages_delivered, 0);
  EXPECT_EQ(link.server->stats().bytes_delivered, 0);

  // Degenerate sizes are refused at the send API, not on the wire.
  EXPECT_EQ(link.client->SendTelemetrySnapshot(payload.data(), 0).code(),
            StatusCode::kInvalidArgument);
  // And UDP channels have no control stream to carry them.
  UdpPair udp = MakeUdpPair();
  EXPECT_EQ(
      udp.tx->SendTelemetrySnapshot(payload.data(), payload.size()).code(),
      StatusCode::kFailedPrecondition);
}

TEST(TcpTransportTest, BlackboxPullRoundTrip) {
  TcpPair link = MakeTcpPair();
  // Server asks; client answers with the flight-recorder dump.
  std::vector<int64_t> requests;
  link.client->SetBlackboxRequestSink(
      [&requests](int64_t source_id) { requests.push_back(source_id); });
  std::vector<std::pair<int64_t, std::string>> dumps;
  link.server->SetBlackboxDumpSink(
      [&dumps](int64_t source_id, std::string dump) {
        dumps.emplace_back(source_id, std::move(dump));
      });

  ASSERT_TRUE(link.server->SendBlackboxRequest(42).ok());
  for (int i = 0; i < 40 && requests.empty(); ++i) {
    link.client->Poll(/*timeout_ms=*/25);
  }
  ASSERT_EQ(requests, (std::vector<int64_t>{42}));
  ASSERT_TRUE(link.client->SendBlackboxDump(42, "ring: tick 7 SUPPRESS").ok());
  for (int i = 0; i < 40 && dumps.empty(); ++i) {
    link.server->Poll(/*timeout_ms=*/25);
  }
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps[0].first, 42);
  EXPECT_EQ(dumps[0].second, "ring: tick 7 SUPPRESS");
  // An empty dump still travels (the id alone is the 8-byte payload).
  ASSERT_TRUE(link.client->SendBlackboxDump(7, "").ok());
  for (int i = 0; i < 40 && dumps.size() < 2; ++i) {
    link.server->Poll(/*timeout_ms=*/25);
  }
  ASSERT_EQ(dumps.size(), 2u);
  EXPECT_EQ(dumps[1].first, 7);
  EXPECT_TRUE(dumps[1].second.empty());
  EXPECT_EQ(link.server->stats().messages_sent, 0);
  EXPECT_EQ(link.server->stats().messages_delivered, 0);
}

TEST(TcpTransportTest, TornEscapeFrameReassemblesByteByByte) {
  TcpPair link = MakeTcpPair();
  std::vector<std::vector<uint8_t>> got;
  link.server->SetSnapshotSink([&got](const uint8_t* data, size_t size) {
    got.emplace_back(data, data + size);
  });

  // A snapshot escape frame: 0x00 0x11 len:u64le payload. Trickle it one
  // byte at a time; the stream parser must wait for the whole frame and
  // fire the sink exactly once.
  std::vector<uint8_t> payload = {0xAA, 0xBB, 0xCC};
  std::vector<uint8_t> frame = {0x00, 0x11};
  uint64_t len = payload.size();
  for (int i = 0; i < 8; ++i) {
    frame.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  for (size_t i = 0; i < frame.size(); ++i) {
    ASSERT_EQ(::send(link.client->fd(), frame.data() + i, 1, 0), 1);
    link.server->Poll(/*timeout_ms=*/10);
    if (i + 1 < frame.size()) {
      EXPECT_TRUE(got.empty()) << "fired after " << i + 1 << " bytes";
    }
  }
  for (int i = 0; i < 40 && got.empty(); ++i) {
    link.server->Poll(/*timeout_ms=*/25);
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], payload);
  EXPECT_TRUE(link.server->last_error().ok());
}

TEST(TcpTransportTest, OversizedEscapePayloadPoisonsStream) {
  TcpPair link = MakeTcpPair();
  link.server->SetReceiver([](const Message&) {});
  // A declared payload over the 4 MiB cap cannot be skipped (stream
  // framing is lost), so the connection is poisoned on the header alone.
  std::vector<uint8_t> frame = {0x00, 0x11};
  uint64_t len = (4u << 20) + 1;
  for (int i = 0; i < 8; ++i) {
    frame.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
  ASSERT_EQ(::send(link.client->fd(), frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  for (int i = 0; i < 40 && link.server->last_error().ok(); ++i) {
    link.server->Poll(/*timeout_ms=*/25);
  }
  EXPECT_FALSE(link.server->last_error().ok());
  EXPECT_GE(link.server->frames_rejected(), 1);
}

TEST(TcpTransportTest, UnknownEscapeOpcodePoisonsStream) {
  TcpPair link = MakeTcpPair();
  link.server->SetReceiver([](const Message&) {});
  uint8_t frame[10] = {0x00, 0x7F, 0, 0, 0, 0, 0, 0, 0, 0};
  ASSERT_EQ(::send(link.client->fd(), frame, sizeof(frame), 0),
            static_cast<ssize_t>(sizeof(frame)));
  for (int i = 0; i < 40 && link.server->last_error().ok(); ++i) {
    link.server->Poll(/*timeout_ms=*/25);
  }
  EXPECT_FALSE(link.server->last_error().ok());
}

TEST(UdpTransportTest, MalformedEscapeDatagramsRejectedNotFatal) {
  UdpPair link = MakeUdpPair();
  std::vector<Message> got;
  link.rx->SetReceiver([&got](const Message& m) { got.push_back(m); });

  // Truncated escape header, unknown opcode, and a variable frame whose
  // size disagrees with its declared length — each is one rejected
  // datagram, none is fatal (datagram framing self-heals).
  const uint8_t torn[5] = {0x00, 0x02, 1, 2, 3};
  ASSERT_EQ(::send(link.tx->fd(), torn, sizeof(torn), 0), 5);
  const uint8_t unknown[10] = {0x00, 0x7F, 0, 0, 0, 0, 0, 0, 0, 0};
  ASSERT_EQ(::send(link.tx->fd(), unknown, sizeof(unknown), 0), 10);
  uint8_t short_pong[10] = {0x00, 0x10, 16, 0, 0, 0, 0, 0, 0, 0};
  ASSERT_EQ(::send(link.tx->fd(), short_pong, sizeof(short_pong), 0), 10);
  for (int i = 0; i < 40 && link.rx->frames_rejected() < 3; ++i) {
    link.rx->Poll(/*timeout_ms=*/25);
  }
  EXPECT_EQ(link.rx->frames_rejected(), 3);
  EXPECT_TRUE(link.rx->last_error().ok());

  // The channel still delivers real traffic afterwards.
  ASSERT_TRUE(link.tx->Send(MakeMessage(MessageType::kCorrection, 1, 1)).ok());
  DrainUntil(link.rx.get(), 1);
  EXPECT_EQ(got.size(), 1u);
}

TEST(UdpTransportTest, SendTimestampLogRecordsFlowStampedSends) {
  UdpPair link = MakeUdpPair();
  link.rx->SetReceiver([](const Message&) {});
  link.tx->EnableSendTimestampLog(/*capacity=*/4);

  // Six flow-stamped uplink sends against a capacity of four: the two
  // oldest records are evicted and counted, the rest drain in order.
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        link.tx->Send(MakeMessage(MessageType::kCorrection, i, 1)).ok());
  }
  // Control traffic without a flow id is never logged.
  ASSERT_TRUE(link.tx->Send(MakeMessage(MessageType::kSetBound, 9, 1)).ok());

  std::vector<obs::WireSendRecord> records;
  link.tx->DrainSendTimestamps(&records);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(link.tx->send_log_dropped(), 2);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].flow_id,
              CausalFlowId(5, static_cast<int64_t>(i) + 2));
    EXPECT_EQ(records[i].type,
              static_cast<uint8_t>(MessageType::kCorrection));
    EXPECT_GT(records[i].send_ns, 0);
    if (i > 0) EXPECT_GE(records[i].send_ns, records[i - 1].send_ns);
  }
  // Draining empties the log; the next drain returns nothing new.
  link.tx->DrainSendTimestamps(&records);
  EXPECT_EQ(records.size(), 4u);
}

// ---------------------------------------------------------------------------
// Backend parity: the same agent workload over a simulated Channel and
// over a socket pair must produce identical NetworkStats books and an
// identical replica state.

TEST(BackendParityTest, SimulatedAndSocketBooksAgree) {
  Channel sim;  // Lossless, zero latency: the protocol's home turf.
  UdpPair sock = MakeUdpPair();

  ServerReplica sim_replica(0, std::make_unique<KalmanPredictor>(TestKalman()));
  ServerReplica sock_replica(0,
                             std::make_unique<KalmanPredictor>(TestKalman()));
  sim.SetReceiver([&sim_replica](const Message& m) {
    Status s = sim_replica.OnMessage(m);
    ASSERT_TRUE(s.ok()) << s;
  });
  sock.rx->SetReceiver([&sock_replica](const Message& m) {
    Status s = sock_replica.OnMessage(m);
    ASSERT_TRUE(s.ok()) << s;
  });

  AgentConfig agent_config;
  agent_config.delta = 0.4;
  agent_config.heartbeat_every = 5;
  agent_config.full_sync_every = 7;
  SourceAgent sim_agent(0, std::make_unique<KalmanPredictor>(TestKalman()),
                        agent_config, &sim);
  SourceAgent sock_agent(0, std::make_unique<KalmanPredictor>(TestKalman()),
                         agent_config, sock.tx.get());

  Rng rng(314);
  double value = 0.0;
  for (int64_t t = 0; t < 400; ++t) {
    value += rng.Gaussian(0.0, 0.4);
    Reading r = MakeReading(t, value);
    sim_replica.Tick();
    sock_replica.Tick();
    ASSERT_TRUE(sim_agent.Offer(r).ok());
    ASSERT_TRUE(sock_agent.Offer(r).ok());
    // The simulated channel delivers inside Send; match that timing by
    // draining the loopback before the next tick (lossless, so every
    // sent message arrives).
    DrainUntil(sock.rx.get(), sock.tx->stats().messages_sent);
  }

  // Identical decisions on both backends...
  EXPECT_EQ(sock_agent.stats().corrections, sim_agent.stats().corrections);
  EXPECT_EQ(sock_agent.stats().suppressed, sim_agent.stats().suppressed);
  // ...identical send-side books...
  const NetworkStats& a = sim.stats();
  const NetworkStats& b = sock.tx->stats();
  EXPECT_EQ(b.messages_sent, a.messages_sent);
  EXPECT_EQ(b.bytes_sent, a.bytes_sent);
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    EXPECT_EQ(b.by_type_sent[i], a.by_type_sent[i]) << "type " << i;
    EXPECT_EQ(b.by_type_bytes_sent[i], a.by_type_bytes_sent[i]) << "type "
                                                                << i;
  }
  // ...identical delivery books on the lossless loopback...
  const NetworkStats& d = sock.rx->stats();
  EXPECT_EQ(d.messages_delivered, a.messages_delivered);
  EXPECT_EQ(d.bytes_delivered, a.bytes_delivered);
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    EXPECT_EQ(d.by_type[i], a.by_type[i]) << "type " << i;
    EXPECT_EQ(d.by_type_bytes_delivered[i], a.by_type_bytes_delivered[i])
        << "type " << i;
  }
  // ...and an identical replica at the end of it.
  ASSERT_TRUE(sim_replica.initialized());
  ASSERT_TRUE(sock_replica.initialized());
  EXPECT_EQ(sock_replica.messages_applied(), sim_replica.messages_applied());
  EXPECT_EQ(sock_replica.Value()[0], sim_replica.Value()[0]);
}

// ---------------------------------------------------------------------------
// The headline e2e: genuine kernel-level UDP loss (socket buffer overflow)
// must drive the PR 4 recovery protocol across a real TCP control link.

TEST(RecoveryOverSocketsTest, RealDropsTriggerResyncAndHeal) {
  UdpPair uplink = MakeUdpPair();
  // Shrink the receive buffer so an undrained burst genuinely overflows
  // in the kernel — real loss, not injected loss.
  ASSERT_TRUE(uplink.rx->SetRecvBufferBytes(2048).ok());
  TcpPair control = MakeTcpPair();

  ServerReplica replica(0, std::make_unique<KalmanPredictor>(TestKalman()));
  ReplicaRecoveryConfig recovery;
  recovery.enabled = true;
  recovery.max_gap_events = 1;
  recovery.backoff_initial_ticks = 2;
  recovery.backoff_max_ticks = 8;
  replica.SetRecovery(recovery);
  uplink.rx->SetReceiver([&replica](const Message& m) {
    Status s = replica.OnMessage(m);
    (void)s;  // CORRECTION-before-resync is expected under loss.
  });
  replica.SetControlSender([&control](const Message& m) {
    Status s = control.server->Send(m);
    (void)s;
  });

  AgentConfig agent_config;
  agent_config.delta = 1e-6;  // Every reading ships: maximal burst rate.
  SourceAgent agent(0, std::make_unique<KalmanPredictor>(TestKalman()),
                    agent_config, uplink.tx.get());
  control.client->SetReceiver([&agent](const Message& m) {
    Status s = agent.OnControl(m);
    ASSERT_TRUE(s.ok()) << s;
  });

  Rng rng(77);
  double value = 0.0;
  int64_t seq = 0;
  auto step = [&](bool drain_uplink) {
    value += rng.Gaussian(0.0, 1.0);
    replica.Tick();
    if (drain_uplink) uplink.rx->Poll(/*timeout_ms=*/2);
    control.client->AdvanceTick();
    ASSERT_TRUE(agent.Offer(MakeReading(seq, value)).ok());
    ++seq;
  };

  // Phase 1: healthy lockstep.
  for (int i = 0; i < 30; ++i) step(/*drain_uplink=*/true);
  ASSERT_TRUE(replica.initialized());
  ASSERT_FALSE(replica.desynced());

  // Phase 2: the receiver stalls while the source keeps bursting — the
  // tiny kernel buffer overflows and datagrams are genuinely dropped.
  for (int i = 0; i < 400; ++i) step(/*drain_uplink=*/false);

  // Phase 3: the receiver comes back; gap detection must fire, a resync
  // must cross the TCP control link, and the replica must heal.
  bool saw_desync = false;
  for (int i = 0; i < 100; ++i) {
    step(/*drain_uplink=*/true);
    saw_desync = saw_desync || replica.desynced();
    if (saw_desync && !replica.desynced()) break;
  }

  EXPECT_LT(uplink.rx->stats().messages_delivered,
            uplink.tx->stats().messages_sent)
      << "the kernel should have dropped datagrams";
  EXPECT_GT(replica.gaps(), 0) << "wire-seq gap detection";
  EXPECT_TRUE(saw_desync);
  EXPECT_GT(replica.resyncs_requested(), 0);
  EXPECT_GT(agent.stats().resyncs_served, 0)
      << "RESYNC_REQUEST crossed the real TCP control link";
  EXPECT_FALSE(replica.desynced()) << "replica healed after FULL_SYNC";
  EXPECT_TRUE(uplink.rx->last_error().ok());
}


// ---------------------------------------------------------------------------
// Fleet transport seam: a ShardedFleet whose uplinks are real UDP loopback
// sockets must keep books identical to the simulated backend.
// ---------------------------------------------------------------------------

// A Channel whose wire is a kernel UDP loopback socket pair. The fleet's
// Config::uplink_factory seam sees an ordinary Channel; every message
// actually crosses a datagram socket. Books are read from the outer
// (Channel) accounting seam only — the inner SocketChannels' own books
// are unused.
class UdpLoopbackChannel final : public Channel {
 public:
  static std::unique_ptr<UdpLoopbackChannel> Make() {
    auto rx = SocketChannel::UdpBind("127.0.0.1", 0);
    EXPECT_TRUE(rx.ok()) << rx.status();
    auto tx = SocketChannel::UdpConnect("127.0.0.1", (*rx)->port());
    EXPECT_TRUE(tx.ok()) << tx.status();
    return std::unique_ptr<UdpLoopbackChannel>(
        new UdpLoopbackChannel(std::move(*tx), std::move(*rx)));
  }

  Status Send(const Message& msg) override {
    if (!has_receiver()) {
      return Status::FailedPrecondition("channel has no receiver");
    }
    AccountSend(msg);
    return tx_->Send(msg);
  }

  void AdvanceTick() override { rx_->Poll(/*timeout_ms=*/0); }

  /// Loopback delivery is same-process but still asynchronous relative
  /// to the fleet's step loop: wait out the last datagrams in flight.
  void DrainAll() {
    for (int i = 0;
         i < 400 && stats().messages_delivered < stats().messages_sent; ++i) {
      rx_->Poll(/*timeout_ms=*/5);
    }
  }

 private:
  UdpLoopbackChannel(std::unique_ptr<SocketChannel> tx,
                     std::unique_ptr<SocketChannel> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {
    rx_->SetReceiver([this](const Message& msg) { Deliver(msg); });
  }

  std::unique_ptr<SocketChannel> tx_;
  std::unique_ptr<SocketChannel> rx_;
};

void AddSeamSources(ShardedFleet& fleet, int n) {
  for (int i = 0; i < n; ++i) {
    RandomWalkGenerator::Config walk;
    walk.start = 5.0 * i;
    walk.step_sigma = 0.2 + 0.05 * (i % 4);
    fleet.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                    std::make_unique<KalmanPredictor>(TestKalman()),
                    /*delta=*/0.4 + 0.1 * (i % 3));
  }
}

TEST(FleetSocketSeamTest, ShardedFleetBooksMatchSimulatedBackend) {
  constexpr int kSources = 8;
  constexpr size_t kTicks = 200;
  ShardedFleet::Config base;
  base.agent_base.heartbeat_every = 5;
  base.agent_base.full_sync_every = 16;

  ShardedFleet sim(base);

  ShardedFleet::Config sock_config = base;
  std::vector<UdpLoopbackChannel*> links;
  sock_config.uplink_factory =
      [&links](int32_t, const Channel::Config&) -> std::unique_ptr<Channel> {
    auto link = UdpLoopbackChannel::Make();
    links.push_back(link.get());
    return link;
  };
  ShardedFleet sock(sock_config);

  AddSeamSources(sim, kSources);
  AddSeamSources(sock, kSources);
  ASSERT_TRUE(sim.Run(kTicks).ok());
  ASSERT_TRUE(sock.Run(kTicks).ok());
  for (UdpLoopbackChannel* link : links) link->DrainAll();

  // Agent decisions depend only on local state here (no recovery, no
  // control feedback), so the send books must match message for message
  // and byte for byte; after the drain the delivery books must too.
  NetworkStats sim_net = sim.TotalNetworkStats();
  NetworkStats sock_net = sock.TotalNetworkStats();
  EXPECT_GT(sock_net.messages_sent, 0);
  EXPECT_EQ(sim_net.SentLine(), sock_net.SentLine());
  EXPECT_EQ(sim_net.DeliveredLine(), sock_net.DeliveredLine());
}

// ---------------------------------------------------------------------------
// Split-process deployment drivers (in one process, two roles on two
// threads): the client's send books and the server's delivery books must
// agree exactly on a lossless loopback.
// ---------------------------------------------------------------------------

TEST(SplitDeployTest, ClientAndServerBooksAgreeOverLoopback) {
  SplitConfig config;
  config.host = "127.0.0.1";
  config.port = 39117;
  config.ticks = 60;
  config.num_sources = 3;
  config.deltas = {0.3, 0.5, 0.7};
  config.agent_base.heartbeat_every = 5;
  config.agent_base.full_sync_every = 16;
  config.accept_timeout_ms = 10000;

  auto make_generator = [](int32_t id) -> std::unique_ptr<StreamGenerator> {
    RandomWalkGenerator::Config walk;
    walk.start = 5.0 * id;
    walk.step_sigma = 0.25;
    return std::make_unique<RandomWalkGenerator>(walk);
  };
  auto make_predictor = [](int32_t) -> std::unique_ptr<Predictor> {
    return std::make_unique<KalmanPredictor>(TestKalman());
  };

  StatusOr<SplitServerReport> server_report = Status::Internal("not run");
  std::thread server([&] {
    server_report = RunSplitServer(config, make_predictor);
  });
  // The server needs a moment to listen; connection-refused retries are
  // harmless (the client fails before sending anything).
  StatusOr<SplitClientReport> client_report = Status::Internal("not run");
  for (int attempt = 0; attempt < 100; ++attempt) {
    client_report = RunSplitClient(config, make_generator, make_predictor);
    if (client_report.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.join();
  ASSERT_TRUE(client_report.ok()) << client_report.status();
  ASSERT_TRUE(server_report.ok()) << server_report.status();

  EXPECT_EQ(server_report->ticks, 60);
  EXPECT_EQ(server_report->initialized, 3);
  EXPECT_EQ(server_report->frames_rejected, 0);
  EXPECT_GT(client_report->uplink.messages_sent, 0);
  // Lossless loopback under lockstep flow control: delivery books equal
  // send books, count for count and byte for byte, per type.
  const NetworkStats& sent = client_report->uplink;
  const NetworkStats& got = server_report->uplink;
  EXPECT_EQ(sent.messages_sent, got.messages_delivered);
  EXPECT_EQ(sent.bytes_sent, got.bytes_delivered);
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    EXPECT_EQ(sent.by_type_sent[i], got.by_type[i]) << "type " << i;
    EXPECT_EQ(sent.by_type_bytes_sent[i], got.by_type_bytes_delivered[i])
        << "type " << i;
  }
}

}  // namespace
}  // namespace kc
