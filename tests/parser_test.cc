#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/lexer.h"

namespace kc {
namespace {

TEST(LexerTest, TokenizesAllKinds) {
  auto tokens = Tokenize("SELECT avg(s1, 2) WHEN > 4.5");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 11u);  // Including End.
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "AVG");  // Uppercased keyword.
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kLParen);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[3].text, "s1");
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kComma);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[5].number, 2.0);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kRParen);
  EXPECT_EQ((*tokens)[7].text, "WHEN");
  EXPECT_EQ((*tokens)[8].kind, TokenKind::kGreater);
  EXPECT_DOUBLE_EQ((*tokens)[9].number, 4.5);
  EXPECT_EQ((*tokens)[10].kind, TokenKind::kEnd);
}

TEST(LexerTest, NumbersWithSignsAndExponents) {
  auto tokens = Tokenize("-3.5e-2 +7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, -0.035);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 7.0);
}

TEST(LexerTest, RejectsGarbageCharacters) {
  EXPECT_FALSE(Tokenize("SELECT @foo").ok());
  EXPECT_FALSE(Tokenize("SELECT ;").ok());
}

TEST(LexerTest, RejectsMalformedNumber) {
  EXPECT_FALSE(Tokenize("-").ok());
  EXPECT_FALSE(Tokenize(".").ok());
}

TEST(ParserTest, MinimalValueQuery) {
  auto spec = ParseQuery("SELECT VALUE(s3)");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->kind, AggregateKind::kValue);
  ASSERT_EQ(spec->sources.size(), 1u);
  EXPECT_EQ(spec->sources[0], 3);
  EXPECT_DOUBLE_EQ(spec->within, 0.0);
  EXPECT_EQ(spec->every, 1);
  EXPECT_FALSE(spec->threshold.has_value());
}

TEST(ParserTest, FullAggregateQuery) {
  auto spec =
      ParseQuery("select avg(s0, s1, s2) within 0.5 every 10");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->kind, AggregateKind::kAvg);
  EXPECT_EQ(spec->sources, (std::vector<int32_t>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(spec->within, 0.5);
  EXPECT_EQ(spec->every, 10);
}

TEST(ParserTest, ThresholdQueries) {
  auto spec = ParseQuery("SELECT MAX(s0, s1) WHEN > 40 WITHIN 0.25");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->kind, AggregateKind::kMax);
  ASSERT_TRUE(spec->threshold.has_value());
  EXPECT_DOUBLE_EQ(*spec->threshold, 40.0);
  EXPECT_TRUE(spec->above);

  spec = ParseQuery("SELECT MIN(s0) WHEN < -5");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->above);
  EXPECT_DOUBLE_EQ(*spec->threshold, -5.0);
}

TEST(ParserTest, ClausesInAnyOrder) {
  auto spec = ParseQuery("SELECT SUM(s1, s2) EVERY 5 WITHIN 2 WHEN > 0");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->every, 5);
  EXPECT_DOUBLE_EQ(spec->within, 2.0);
  EXPECT_TRUE(spec->threshold.has_value());
}

TEST(ParserTest, BareIntegerSources) {
  auto spec = ParseQuery("SELECT SUM(0, 1, 2)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->sources, (std::vector<int32_t>{0, 1, 2}));
}

TEST(ParserTest, RejectsSyntaxErrors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("AVG(s1)").ok());              // Missing SELECT.
  EXPECT_FALSE(ParseQuery("SELECT AVG s1").ok());        // Missing parens.
  EXPECT_FALSE(ParseQuery("SELECT AVG()").ok());         // Empty sources.
  EXPECT_FALSE(ParseQuery("SELECT AVG(s1,)").ok());      // Trailing comma.
  EXPECT_FALSE(ParseQuery("SELECT FOO(s1)").ok());       // Unknown aggregate.
  EXPECT_FALSE(ParseQuery("SELECT AVG(s1) garbage").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(s1) WITHIN").ok());  // Missing number.
  EXPECT_FALSE(ParseQuery("SELECT AVG(s1) WHEN 5").ok());  // Missing direction.
}

TEST(ParserTest, RejectsSemanticErrors) {
  EXPECT_FALSE(ParseQuery("SELECT VALUE(s1, s2)").ok());  // VALUE is unary.
  EXPECT_FALSE(ParseQuery("SELECT AVG(s1) WITHIN -2").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(s1) EVERY 2.5").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(s1) EVERY 0").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(x9)").ok());   // Bad source name.
  EXPECT_FALSE(ParseQuery("SELECT AVG(-3)").ok());   // Negative id.
  EXPECT_FALSE(ParseQuery("SELECT AVG(1.5)").ok());  // Fractional id.
}

TEST(ParserTest, HistoricalQueries) {
  auto spec = ParseQuery("SELECT AVG(s2) FROM 100 TO 200");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_TRUE(spec->IsHistorical());
  EXPECT_DOUBLE_EQ(*spec->from_time, 100.0);
  EXPECT_DOUBLE_EQ(*spec->to_time, 200.0);

  spec = ParseQuery("SELECT MAX(s0) FROM 0 TO 50 WHEN > 10 WITHIN 0.5");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_TRUE(spec->IsHistorical());
  EXPECT_TRUE(spec->threshold.has_value());
}

TEST(ParserTest, HistoricalQueryErrors) {
  EXPECT_FALSE(ParseQuery("SELECT AVG(s0) FROM 100").ok());      // No TO.
  EXPECT_FALSE(ParseQuery("SELECT AVG(s0) FROM 200 TO 100").ok());  // Inverted.
  EXPECT_FALSE(ParseQuery("SELECT AVG(s0, s1) FROM 0 TO 10").ok());  // Multi.
  EXPECT_FALSE(ParseQuery("SELECT AVG(s0) TO 10").ok());         // TO alone.
}

TEST(ParserTest, SlidingWindowQueries) {
  auto spec = ParseQuery("SELECT AVG(s0) LAST 100");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_TRUE(spec->IsHistorical());
  ASSERT_TRUE(spec->last_ticks.has_value());
  EXPECT_EQ(*spec->last_ticks, 100);
  EXPECT_FALSE(spec->from_time.has_value());

  EXPECT_FALSE(ParseQuery("SELECT AVG(s0) LAST 0").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(s0) LAST 2.5").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(s0) LAST 10 FROM 0 TO 5").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(s0, s1) LAST 10").ok());  // Multi.

  auto round = ParseQuery(spec->ToString());
  ASSERT_TRUE(round.ok()) << spec->ToString();
  EXPECT_EQ(*round->last_ticks, 100);
}

TEST(ParserTest, HistoricalRoundTripsThroughToString) {
  auto spec = ParseQuery("SELECT MIN(s1) FROM 10 TO 20 WITHIN 2");
  ASSERT_TRUE(spec.ok());
  auto again = ParseQuery(spec->ToString());
  ASSERT_TRUE(again.ok()) << spec->ToString();
  EXPECT_DOUBLE_EQ(*again->from_time, 10.0);
  EXPECT_DOUBLE_EQ(*again->to_time, 20.0);
}

TEST(ParserTest, RoundTripsThroughSpecToString) {
  auto spec = ParseQuery("SELECT AVG(s0, s1) WHEN > 40 WITHIN 0.5 EVERY 10");
  ASSERT_TRUE(spec.ok());
  auto again = ParseQuery(spec->ToString());
  ASSERT_TRUE(again.ok()) << "ToString must stay parseable: "
                          << spec->ToString();
  EXPECT_EQ(again->kind, spec->kind);
  EXPECT_EQ(again->sources, spec->sources);
  EXPECT_DOUBLE_EQ(again->within, spec->within);
  EXPECT_EQ(again->every, spec->every);
  EXPECT_DOUBLE_EQ(*again->threshold, *spec->threshold);
}

}  // namespace
}  // namespace kc
