#include "fleet/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace kc {
namespace {

TEST(ThreadPoolTest, SequentialWhenSingleThreaded) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<size_t> order;
  pool.ParallelFor(5, [&order](size_t i) { order.push_back(i); });
  // No workers: runs inline, in index order.
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, RunsEveryItemExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, JoinIsABarrier) {
  // After ParallelFor returns, every body's writes must be visible to the
  // caller without further synchronization.
  ThreadPool pool(4);
  std::vector<int> out(257, 0);
  pool.ParallelFor(out.size(), [&out](size_t i) {
    out[i] = static_cast<int>(i) * 3;
  });
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  // Back-to-back batches must not leak items across generations (a
  // straggler from batch k must never claim an index of batch k+1).
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(7, [&sum](size_t i) {
      sum.fetch_add(static_cast<int>(i) + 1);
    });
    ASSERT_EQ(sum.load(), 28) << "round " << round;
  }
}

TEST(ThreadPoolTest, HandlesZeroAndOneItem) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, MoreItemsThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  const size_t n = 10000;
  pool.ParallelFor(n, [&sum](size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), static_cast<long>(n * (n - 1) / 2));
}

// ------------------------------------------------------- Range chunking

TEST(ThreadPoolTest, NumChunksIsAPureFunctionOfN) {
  // The deterministic chunk-count formula the sweep's bit-stability rests
  // on: clamp(n / kChunkItems, 1, kMaxChunks), zero for empty ranges, and
  // never a function of thread count or runtime state. These pins freeze
  // the formula — changing it changes which chunks exist and is a visible
  // (if still bit-identical) scheduling change.
  EXPECT_EQ(ThreadPool::NumChunks(0), 0u);
  EXPECT_EQ(ThreadPool::NumChunks(1), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(63), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(64), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(127), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(128), 2u);
  EXPECT_EQ(ThreadPool::NumChunks(64 * 1024), 1024u);
  EXPECT_EQ(ThreadPool::NumChunks(64 * 1024 + 1), 1024u);
  EXPECT_EQ(ThreadPool::NumChunks(100000000), 1024u);
}

TEST(ThreadPoolTest, ParallelForRangesCoversExactlyOnce) {
  // Every index in [0, n) lands in exactly one range, and the partition
  // is the deterministic base/remainder split: the first (n % chunks)
  // chunks get one extra item. Checked across n values straddling the
  // chunking breakpoints, on a real multi-worker pool.
  ThreadPool pool(4);
  for (size_t n : {1u, 2u, 63u, 64u, 65u, 127u, 128u, 129u, 1000u, 4096u}) {
    std::vector<std::atomic<int>> hits(n);
    std::atomic<size_t> ranges{0};
    pool.ParallelForRanges(n, [&](size_t begin, size_t end) {
      ASSERT_LT(begin, end);
      ASSERT_LE(end, n);
      ranges.fetch_add(1);
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "n " << n << " item " << i;
    }
    EXPECT_EQ(ranges.load(), ThreadPool::NumChunks(n)) << "n " << n;
  }
}

TEST(ThreadPoolTest, ParallelForRangesZeroIsANoOp) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelForRanges(0, [&calls](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace kc
