// Filter-health watchdog: chi-square band registration, the
// breach/clean streak machine, both protocol-rate detectors, transition
// plumbing (metrics, recorder, anomaly sink), and the end-to-end
// contract — a mis-modeled stream is flagged DIVERGED while a
// well-modeled one stays OK.

#include "obs/health.h"

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "kalman/model.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "server/simulation.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/policies.h"

namespace kc {
namespace obs {
namespace {

/// Small windows so tests exercise the full escalate/recover cycle in a
/// handful of samples.
HealthConfig FastConfig() {
  HealthConfig config;
  config.nis_window = 4;
  config.windows_to_diverge = 3;
  config.windows_to_recover = 2;
  config.rate_window_ticks = 10;
  config.max_resync_rate = 0.1;
  return config;
}

/// Feeds one whole NIS window of identical samples.
void FeedWindow(SourceHealth* health, double nis, size_t window) {
  for (size_t i = 0; i < window; ++i) health->OnNis(nis);
}

TEST(HealthTest, ChiSquareBandScalesWithDof) {
  HealthMonitor monitor;  // Defaults: window 32, confidence 0.999.
  SourceHealth* scalar = monitor.ForSource(0, /*obs_dim=*/1);
  // The band for the window *sum* must bracket its expectation (= dof).
  EXPECT_LT(scalar->nis_sum_lo(), 32.0);
  EXPECT_GT(scalar->nis_sum_hi(), 32.0);
  EXPECT_GT(scalar->nis_sum_lo(), 0.0);
  // Higher-dimensional observations widen and shift the band upward.
  SourceHealth* planar = monitor.ForSource(1, /*obs_dim=*/2);
  EXPECT_GT(planar->nis_sum_lo(), scalar->nis_sum_lo());
  EXPECT_GT(planar->nis_sum_hi(), scalar->nis_sum_hi());
}

TEST(HealthTest, NisStreakMachineEscalatesThenRecovers) {
  HealthMonitor monitor(FastConfig());
  SourceHealth* health = monitor.ForSource(0, 1);
  ASSERT_EQ(health->state(), HealthState::kOk);

  // In-band window: sum 4 == dof, dead center. No state change.
  FeedWindow(health, 1.0, 4);
  EXPECT_EQ(health->state(), HealthState::kOk);
  EXPECT_EQ(health->nis_windows(), 1);
  EXPECT_EQ(health->nis_breaches(), 0);
  EXPECT_DOUBLE_EQ(health->last_window_mean_nis(), 1.0);

  // One breached window: SUSPECT, not yet DIVERGED.
  FeedWindow(health, 100.0, 4);
  EXPECT_EQ(health->state(), HealthState::kSuspect);
  EXPECT_EQ(health->nis_breaches(), 1);

  // Second consecutive breach: still suspect (diverge needs 3).
  FeedWindow(health, 100.0, 4);
  EXPECT_EQ(health->state(), HealthState::kSuspect);

  // Third: DIVERGED.
  FeedWindow(health, 100.0, 4);
  EXPECT_EQ(health->state(), HealthState::kDiverged);
  EXPECT_EQ(monitor.StateOf(0), HealthState::kDiverged);

  // One clean window is not enough to clear a diverged detector...
  FeedWindow(health, 1.0, 4);
  EXPECT_EQ(health->state(), HealthState::kDiverged);
  // ...two consecutive clean windows are.
  FeedWindow(health, 1.0, 4);
  EXPECT_EQ(health->state(), HealthState::kOk);
  EXPECT_EQ(health->nis_windows(), 6);
  EXPECT_EQ(health->nis_breaches(), 3);
}

TEST(HealthTest, UnderconfidentFilterBreachesTheLowSide) {
  // NIS pinned at zero means the filter claims far more uncertainty than
  // the stream shows — statistically inconsistent in the other direction.
  HealthMonitor monitor(FastConfig());
  SourceHealth* health = monitor.ForSource(0, 1);
  FeedWindow(health, 0.0, 4);
  EXPECT_EQ(health->nis_breaches(), 1);
  EXPECT_EQ(health->state(), HealthState::kSuspect);
}

TEST(HealthTest, ResyncStormTripsTheRateDetector) {
  HealthMonitor monitor(FastConfig());  // > 0.1 resyncs/tick breaches.
  SourceHealth* health = monitor.ForSource(0, 1);

  // 5 resyncs in a 10-tick window: rate 0.5.
  for (int t = 0; t < 10; ++t) {
    if (t % 2 == 0) health->OnResync();
    health->OnTick();
  }
  EXPECT_EQ(health->state(), HealthState::kSuspect);
  EXPECT_EQ(health->rate_breaches(), 1);

  // Quiet windows recover it.
  for (int t = 0; t < 20; ++t) health->OnTick();
  EXPECT_EQ(health->state(), HealthState::kOk);
}

TEST(HealthTest, SuppressionCollapseTripsTheRateDetector) {
  HealthConfig config = FastConfig();
  config.max_resync_rate = 0.0;      // Isolate the suppression check.
  config.min_suppression_rate = 0.5;
  HealthMonitor monitor(config);
  SourceHealth* health = monitor.ForSource(0, 1);

  // Every decision a send: suppression rate 0, below the 0.5 floor.
  for (int t = 0; t < 10; ++t) {
    health->OnDecision(/*suppressed=*/false);
    health->OnTick();
  }
  EXPECT_EQ(health->state(), HealthState::kSuspect);

  // A healthy mix stays clean and recovers the detector.
  for (int t = 0; t < 20; ++t) {
    health->OnDecision(/*suppressed=*/true);
    health->OnTick();
  }
  EXPECT_EQ(health->state(), HealthState::kOk);
}

TEST(HealthTest, AnomalySinkFiresOnWorseningTransitionsOnly) {
  HealthMonitor monitor(FastConfig());
  std::vector<std::pair<HealthState, HealthState>> fired;
  monitor.SetAnomalySink(
      [&fired](int32_t source_id, HealthState from, HealthState to) {
        EXPECT_EQ(source_id, 0);
        fired.emplace_back(from, to);
      });
  SourceHealth* health = monitor.ForSource(0, 1);

  FeedWindow(health, 100.0, 4);  // OK -> SUSPECT: fires.
  FeedWindow(health, 100.0, 4);  // SUSPECT -> SUSPECT: no transition.
  FeedWindow(health, 100.0, 4);  // SUSPECT -> DIVERGED: fires.
  FeedWindow(health, 1.0, 4);    // Still DIVERGED: nothing.
  FeedWindow(health, 1.0, 4);    // DIVERGED -> OK: improvement, silent.

  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], std::make_pair(HealthState::kOk, HealthState::kSuspect));
  EXPECT_EQ(fired[1],
            std::make_pair(HealthState::kSuspect, HealthState::kDiverged));
}

TEST(HealthTest, TransitionsLandInMetricsAndRecorder) {
  HealthMonitor monitor(FastConfig());
  MetricRegistry registry;
  monitor.BindMetrics(&registry);
  FlightRecorder recorder(32);
  monitor.BindRecorder(&recorder);
  SourceHealth* health = monitor.ForSource(0, 1);

  EXPECT_EQ(registry.GetGauge("kc.health.sources_ok")->value(), 1.0);

  FeedWindow(health, 100.0, 4);
  FeedWindow(health, 100.0, 4);
  FeedWindow(health, 100.0, 4);  // Now DIVERGED.

  EXPECT_EQ(registry.GetGauge("kc.health.sources_ok")->value(), 0.0);
  EXPECT_EQ(registry.GetGauge("kc.health.sources_diverged")->value(), 1.0);
  EXPECT_EQ(registry.GetCounter("kc.health.nis_windows")->value(), 3);
  EXPECT_EQ(registry.GetCounter("kc.health.nis_breaches")->value(), 3);
  EXPECT_EQ(registry.GetCounter("kc.health.transitions")->value(), 2);

  // The black box carries the state-machine trail.
  std::string dump = recorder.DumpText(0);
  size_t suspect = dump.find("HEALTH_SUSPECT");
  size_t diverged = dump.find("HEALTH_DIVERGED");
  ASSERT_NE(suspect, std::string::npos) << dump;
  ASSERT_NE(diverged, std::string::npos) << dump;
  EXPECT_LT(suspect, diverged);
}

TEST(HealthTest, UnknownSourcesReadOkAndSummaryIsIdOrdered) {
  HealthMonitor monitor(FastConfig());
  EXPECT_EQ(monitor.StateOf(123), HealthState::kOk);
  EXPECT_TRUE(monitor.SummaryLine(123).empty());

  FeedWindow(monitor.ForSource(8, 1), 100.0, 4);
  monitor.ForSource(1, 1);
  std::string summary = monitor.SummaryText();
  size_t at1 = summary.find("source    1  OK");
  size_t at8 = summary.find("source    8  SUSPECT");
  ASSERT_NE(at1, std::string::npos) << summary;
  ASSERT_NE(at8, std::string::npos) << summary;
  EXPECT_LT(at1, at8);
  EXPECT_EQ(summary, monitor.SummaryText());  // Deterministic.
}

// ------------------------------------------------------------- end to end

/// Random walk with Gaussian sensor noise — the textbook stream a scalar
/// Kalman random-walk model is exact for.
std::unique_ptr<StreamGenerator> NoisyWalk() {
  RandomWalkGenerator::Config walk;
  walk.step_sigma = 1.0;
  NoiseConfig noise;
  noise.gaussian_sigma = 0.5;
  return std::make_unique<NoisyStream>(
      std::make_unique<RandomWalkGenerator>(walk), noise);
}

LinkConfig HealthLinkConfig() {
  LinkConfig config;
  config.ticks = 3000;
  config.delta = 0.75;
  config.seed = 5;
  config.health = true;
  return config;
}

TEST(HealthTest, WellModeledStreamStaysOk) {
  auto generator = NoisyWalk();
  KalmanPredictor::Config kalman;
  // Exact model: process var 1.0^2, obs var 0.5^2.
  kalman.model = MakeRandomWalkModel(1.0, 0.25);
  KalmanPredictor prototype(kalman);

  LinkReport report = RunLink(*generator, prototype, HealthLinkConfig());
  EXPECT_EQ(report.health, HealthState::kOk) << report.health_summary;
  EXPECT_NE(report.health_summary.find("source    0  OK"), std::string::npos)
      << report.health_summary;
}

TEST(HealthTest, MisModeledStreamIsFlaggedDiverged) {
  auto generator = NoisyWalk();
  KalmanPredictor::Config kalman;
  // Wrong process noise: the filter believes the stream barely moves, so
  // its innovations are far outside its own claimed uncertainty.
  kalman.model = MakeRandomWalkModel(1e-6, 0.25);
  KalmanPredictor prototype(kalman);

  LinkReport report = RunLink(*generator, prototype, HealthLinkConfig());
  EXPECT_EQ(report.health, HealthState::kDiverged) << report.health_summary;
  // The verdict also rides the one-line report.
  EXPECT_NE(report.ToString().find("health=DIVERGED"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace kc
