// Bit-identity pins for the lane-per-slot batch kernels: the SIMD lane
// type against the portable lane type against the scalar destination-
// passing kernels, at the raw-kernel level and through the full FilterPool
// protocol. These are the tests that make "vectorization is purely a
// performance knob" an enforced invariant rather than an intention.

#include "linalg/batch_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "fleet/pool.h"
#include "kalman/kalman_filter.h"
#include "kalman/model.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "streams/reading.h"
#include "suppression/policies.h"

namespace kc {
namespace {

constexpr size_t kLanes = batch::kLanes;

/// Deterministic value stream (xorshift) so every test input is pinned.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed | 1) {}
  double Uniform() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return static_cast<double>(state_ >> 11) * (1.0 / 9007199254740992.0);
  }
  double Centered() { return 2.0 * Uniform() - 1.0; }

 private:
  uint64_t state_;
};

/// A dim x dim model with structural zeros in F (the shared-branch skip)
/// and a dense-ish Q; symmetric positive P per slot.
struct BlockFixture {
  std::vector<double> f, q;          // Row-major dim x dim.
  std::vector<double> x_blk, p_blk;  // Lane-interleaved block slabs.

  BlockFixture(size_t dim, uint64_t seed) : dim_(dim) {
    Rng rng(seed);
    f.assign(dim * dim, 0.0);
    q.assign(dim * dim, 0.0);
    for (size_t r = 0; r < dim; ++r) {
      f[r * dim + r] = 1.0 + 0.1 * rng.Centered();
      if (r + 1 < dim) f[r * dim + r + 1] = 0.01;  // Off-diagonal coupling.
      // Everything else stays exactly 0.0: the F-side skip fires.
      for (size_t c = 0; c < dim; ++c) {
        q[r * dim + c] = (r == c) ? 0.01 + 0.001 * rng.Uniform() : 0.0;
      }
    }
    x_blk.assign(dim * kLanes, 0.0);
    p_blk.assign(dim * dim * kLanes, 0.0);
    for (size_t l = 0; l < kLanes; ++l) {
      for (size_t e = 0; e < dim; ++e) {
        x_blk[e * kLanes + l] = rng.Centered();
      }
      // P = diagonal + tiny symmetric off-diagonals; some exact zeros so
      // the per-lane data-dependent skip in tmp * F^T fires too.
      for (size_t r = 0; r < dim; ++r) {
        for (size_t c = r; c < dim; ++c) {
          double v;
          if (r == c) {
            v = 1.0 + rng.Uniform();
          } else if ((r + c + l) % 3 == 0) {
            v = 0.0;  // Exact zero: lanes disagree on the skip.
          } else {
            v = 0.05 * rng.Centered();
          }
          p_blk[(r * dim_ + c) * kLanes + l] = v;
          p_blk[(c * dim_ + r) * kLanes + l] = v;
        }
      }
    }
  }

  Vector XOf(size_t lane) const {
    Vector x(dim_);
    for (size_t e = 0; e < dim_; ++e) x[e] = x_blk[e * kLanes + lane];
    return x;
  }
  Matrix POf(size_t lane) const {
    Matrix p(dim_, dim_);
    for (size_t r = 0; r < dim_; ++r) {
      for (size_t c = 0; c < dim_; ++c) {
        p(r, c) = p_blk[(r * dim_ + c) * kLanes + lane];
      }
    }
    return p;
  }

 private:
  size_t dim_;
};

/// The scalar reference: exactly FilterPool::PredictScalarSlot /
/// KalmanFilter::Predict's kernel sequence on one (x, P).
void ScalarPredict(const std::vector<double>& f_raw,
                   const std::vector<double>& q_raw, size_t dim, Vector* x,
                   Matrix* p) {
  Matrix f(dim, dim), q(dim, dim);
  for (size_t i = 0; i < dim * dim; ++i) {
    f.data()[i] = f_raw[i];
    q.data()[i] = q_raw[i];
  }
  Vector fx;
  Matrix tmp, j1;
  MultiplyInto(f, *x, &fx);
  *x = fx;
  SandwichInto(f, *p, &tmp, &j1);
  AddInto(j1, q, p);
  p->Symmetrize();
}

// ---------------------------------------------------- Raw kernel identity

// Portable lanes vs the scalar kernel sequence, every dim, several steps:
// the core "cross-slot vectorization reorders nothing within a slot"
// claim, checked bit-for-bit per lane.
TEST(BatchKernels, PortableLanesMatchScalarKernelsEveryDim) {
  for (size_t dim = 1; dim <= batch::kMaxDim; ++dim) {
    BlockFixture fx(dim, 0x9000 + dim);
    batch::PredictBlockFn fn = batch::PortablePredictFn(dim);
    ASSERT_NE(fn, nullptr) << "dim " << dim;

    Vector x_ref[kLanes];
    Matrix p_ref[kLanes];
    for (size_t l = 0; l < kLanes; ++l) {
      x_ref[l] = fx.XOf(l);
      p_ref[l] = fx.POf(l);
    }
    for (int step = 0; step < 5; ++step) {
      fn(fx.f.data(), fx.q.data(), fx.x_blk.data(), fx.p_blk.data(),
         batch::kFullMask);
      for (size_t l = 0; l < kLanes; ++l) {
        ScalarPredict(fx.f, fx.q, dim, &x_ref[l], &p_ref[l]);
        Vector x_got = fx.XOf(l);
        Matrix p_got = fx.POf(l);
        for (size_t e = 0; e < dim; ++e) {
          ASSERT_EQ(x_ref[l][e], x_got[e])
              << "dim " << dim << " lane " << l << " step " << step;
        }
        for (size_t r = 0; r < dim; ++r) {
          for (size_t c = 0; c < dim; ++c) {
            ASSERT_EQ(p_ref[l](r, c), p_got(r, c))
                << "dim " << dim << " lane " << l << " step " << step;
          }
        }
      }
    }
  }
}

// SIMD lanes vs portable lanes on identical blocks, every dim. When AVX2
// is not compiled in the two function pointers coincide and this pins the
// trivial case.
TEST(BatchKernels, SimdLanesMatchPortableLanesEveryDim) {
  for (size_t dim = 1; dim <= batch::kMaxDim; ++dim) {
    BlockFixture simd_fx(dim, 0xA000 + dim);
    BlockFixture port_fx(dim, 0xA000 + dim);  // Same seed: same inputs.
    batch::PredictBlockFn simd_fn = batch::SimdPredictFn(dim);
    batch::PredictBlockFn port_fn = batch::PortablePredictFn(dim);
    ASSERT_NE(simd_fn, nullptr);
    ASSERT_NE(port_fn, nullptr);
    for (int step = 0; step < 8; ++step) {
      simd_fn(simd_fx.f.data(), simd_fx.q.data(), simd_fx.x_blk.data(),
              simd_fx.p_blk.data(), batch::kFullMask);
      port_fn(port_fx.f.data(), port_fx.q.data(), port_fx.x_blk.data(),
              port_fx.p_blk.data(), batch::kFullMask);
      ASSERT_EQ(simd_fx.x_blk, port_fx.x_blk) << "dim " << dim;
      ASSERT_EQ(simd_fx.p_blk, port_fx.p_blk) << "dim " << dim;
    }
  }
}

// The data-dependent zero-skip blend: -0.0 must skip (compare equal to
// zero), NaN must not skip — exactly like the scalar `av == 0.0` branch.
// Feed P entries that make tmp = F P carry -0.0 in some lanes by using a
// pure-diagonal F with a -0.0 P entry (tmp inherits P's signed zeros).
TEST(BatchKernels, BlendReproducesSignedZeroSkip) {
  const size_t dim = 2;
  for (bool simd : {false, true}) {
    std::vector<double> f = {1.0, 0.0, 0.0, 1.0};  // Identity.
    std::vector<double> q = {0.01, 0.0, 0.0, 0.01};
    std::vector<double> x_blk(dim * kLanes, 0.5);
    std::vector<double> p_blk(dim * dim * kLanes, 0.0);
    for (size_t l = 0; l < kLanes; ++l) {
      p_blk[(0 * dim + 0) * kLanes + l] = 1.0;
      p_blk[(1 * dim + 1) * kLanes + l] = 2.0;
      // Off-diagonals: +0.0, -0.0, small nonzero, -0.0 across lanes.
      double off = (l == 2) ? 0.125 : (l % 2 == 1 ? -0.0 : 0.0);
      p_blk[(0 * dim + 1) * kLanes + l] = off;
      p_blk[(1 * dim + 0) * kLanes + l] = off;
    }
    batch::PredictBlockFn fn =
        simd ? batch::SimdPredictFn(dim) : batch::PortablePredictFn(dim);
    fn(f.data(), q.data(), x_blk.data(), p_blk.data(), batch::kFullMask);

    for (size_t l = 0; l < kLanes; ++l) {
      Vector x{0.5, 0.5};
      Matrix p(dim, dim);
      p(0, 0) = 1.0;
      p(1, 1) = 2.0;
      double off = (l == 2) ? 0.125 : (l % 2 == 1 ? -0.0 : 0.0);
      p(0, 1) = off;
      p(1, 0) = off;
      ScalarPredict(f, q, dim, &x, &p);
      for (size_t r = 0; r < dim; ++r) {
        for (size_t c = 0; c < dim; ++c) {
          double got = p_blk[(r * dim + c) * kLanes + l];
          ASSERT_EQ(p(r, c), got) << "lane " << l << " simd " << simd;
          // Signed zeros must match bit-for-bit, not just compare equal.
          ASSERT_EQ(std::signbit(p(r, c)), std::signbit(got))
              << "lane " << l << " simd " << simd;
        }
      }
    }
  }
}

// Masked stores: every one of the 16 masks leaves unmasked lanes' slab
// memory EXACTLY as it was (sentinel-checked) and stores masked lanes'
// results, for both lane types.
TEST(BatchKernels, MaskedStoresTouchOnlyActiveLanes) {
  const size_t dim = 3;
  for (bool simd : {false, true}) {
    batch::PredictBlockFn fn =
        simd ? batch::SimdPredictFn(dim) : batch::PortablePredictFn(dim);
    for (unsigned mask = 0; mask <= batch::kFullMask; ++mask) {
      BlockFixture fx(dim, 0xB33F);
      // Plant sentinels in inactive lanes. The kernel computes on all
      // lanes, so inactive lanes must still hold finite values — use a
      // recognizable finite sentinel.
      const double kSentinel = 1234.5;
      for (size_t l = 0; l < kLanes; ++l) {
        if (mask & (1u << l)) continue;
        for (size_t e = 0; e < dim; ++e) fx.x_blk[e * kLanes + l] = kSentinel;
        for (size_t i = 0; i < dim * dim; ++i) {
          fx.p_blk[i * kLanes + l] = kSentinel;
        }
      }
      // Reference results for active lanes, from the same pre-state.
      Vector x_ref[kLanes];
      Matrix p_ref[kLanes];
      for (size_t l = 0; l < kLanes; ++l) {
        x_ref[l] = fx.XOf(l);
        p_ref[l] = fx.POf(l);
        ScalarPredict(fx.f, fx.q, dim, &x_ref[l], &p_ref[l]);
      }
      fn(fx.f.data(), fx.q.data(), fx.x_blk.data(), fx.p_blk.data(), mask);
      for (size_t l = 0; l < kLanes; ++l) {
        const bool active = (mask & (1u << l)) != 0;
        for (size_t e = 0; e < dim; ++e) {
          double got = fx.x_blk[e * kLanes + l];
          if (active) {
            ASSERT_EQ(x_ref[l][e], got) << "mask " << mask << " lane " << l;
          } else {
            ASSERT_EQ(kSentinel, got) << "mask " << mask << " lane " << l;
          }
        }
        for (size_t r = 0; r < dim; ++r) {
          for (size_t c = 0; c < dim; ++c) {
            double got = fx.p_blk[(r * dim + c) * kLanes + l];
            if (active) {
              ASSERT_EQ(p_ref[l](r, c), got)
                  << "mask " << mask << " lane " << l;
            } else {
              ASSERT_EQ(kSentinel, got) << "mask " << mask << " lane " << l;
            }
          }
        }
      }
    }
  }
}

// ------------------------------------------------- Pool-level equivalence

/// A valid model of any state dimension n (observing component 0).
StateSpaceModel MakeDimModel(size_t n) {
  StateSpaceModel model;
  model.f = Matrix::Identity(n);
  for (size_t i = 0; i + 1 < n; ++i) model.f(i, i + 1) = 0.01;
  model.q = Matrix::ScalarDiagonal(n, 0.01);
  model.h = Matrix(1, n);
  model.h(0, 0) = 1.0;
  model.r = Matrix{{0.04}};
  return model;
}

/// Drives two pools — one simd, one scalar — through an identical mixed
/// workload (sweeps, per-slot predicts, updates, gates, serialization)
/// and asserts every slot stays bit-identical throughout.
void DrivePoolSimdEquivalence(size_t dim, size_t slots,
                              KalmanFilter::UpdateForm form) {
  StateSpaceModel model = MakeDimModel(dim);
  FilterPool simd_pool(model, form);
  FilterPool scalar_pool(model, form);
  simd_pool.set_simd(true);
  scalar_pool.set_simd(false);

  Rng rng(0xC0FFEE ^ (dim << 8) ^ slots);
  Matrix p0 = Matrix::ScalarDiagonal(dim, 100.0);
  std::vector<int32_t> a_slots, b_slots;
  for (size_t i = 0; i < slots; ++i) {
    Vector x0(dim);
    for (size_t e = 0; e < dim; ++e) x0[e] = rng.Centered();
    int32_t sa = simd_pool.Acquire(static_cast<int32_t>(i));
    int32_t sb = scalar_pool.Acquire(static_cast<int32_t>(i));
    ASSERT_EQ(sa, sb);
    simd_pool.ResetSlot(sa, x0, p0);
    scalar_pool.ResetSlot(sb, x0, p0);
    a_slots.push_back(sa);
    b_slots.push_back(sb);
  }

  for (int t = 0; t < 30; ++t) {
    ASSERT_EQ(simd_pool.PredictAll(), scalar_pool.PredictAll());
    for (size_t i = 0; i < slots; ++i) {
      if ((t + static_cast<int>(i)) % 3 == 0) {
        Vector z{rng.Centered() * 3.0};
        ASSERT_EQ(simd_pool.GateSlot(a_slots[i], z),
                  scalar_pool.GateSlot(b_slots[i], z));
        ASSERT_TRUE(simd_pool.UpdateSlot(a_slots[i], z).ok());
        ASSERT_TRUE(scalar_pool.UpdateSlot(b_slots[i], z).ok());
        ASSERT_EQ(simd_pool.LastNisOf(a_slots[i]),
                  scalar_pool.LastNisOf(b_slots[i]));
      }
      if ((t + static_cast<int>(i)) % 7 == 0) {
        // Extra per-slot predicts: the single-lane-mask path.
        simd_pool.PredictSlot(a_slots[i]);
        scalar_pool.PredictSlot(b_slots[i]);
      }
      std::vector<double> sa = simd_pool.SerializeSlot(a_slots[i]);
      std::vector<double> sb = scalar_pool.SerializeSlot(b_slots[i]);
      ASSERT_EQ(sa, sb) << "dim " << dim << " slot " << i << " tick " << t;
    }
  }
}

// Full pool protocol, simd vs scalar, all dims, BOTH update forms, and
// slot counts that are not multiples of the lane width (remainder-block
// handling: 1, 2, 3, 5, 9 live lanes).
TEST(BatchKernels, PoolSimdOffMatchesOnEveryDimAndForm) {
  for (size_t dim = 1; dim <= batch::kMaxDim; ++dim) {
    DrivePoolSimdEquivalence(dim, /*slots=*/6,
                             KalmanFilter::UpdateForm::kJoseph);
    DrivePoolSimdEquivalence(dim, /*slots=*/6,
                             KalmanFilter::UpdateForm::kStandard);
  }
  for (size_t slots : {1u, 2u, 3u, 5u, 9u}) {
    DrivePoolSimdEquivalence(/*dim=*/2, slots,
                             KalmanFilter::UpdateForm::kJoseph);
  }
}

// The gate's three branches (accept, reject, forced accept) through the
// full PooledKalmanPredictor protocol, simd vs scalar: both predictors
// fed identical readings (with outlier bursts) must agree bit-for-bit on
// every externally visible value.
TEST(BatchKernels, PooledPredictorGateBranchesSimdInvariant) {
  KalmanPredictor::Config config;
  config.model = MakeDimModel(2);
  config.outlier_gate_prob = 0.99;
  config.outlier_gate_limit = 3;

  FilterPoolSet simd_pools;
  FilterPoolSet scalar_pools;
  simd_pools.set_simd(true);
  scalar_pools.set_simd(false);
  PooledKalmanPredictor a(config, &simd_pools);
  PooledKalmanPredictor b(config, &scalar_pools);

  Rng rng(0xFEED);
  Reading first;
  first.seq = 0;
  first.time = 0.0;
  first.value = Vector{0.0};
  a.Init(first);
  b.Init(first);

  int rejects_seen = 0;
  int forced_runs_seen = 0;
  for (int t = 1; t <= 160; ++t) {
    a.Tick();
    b.Tick();
    Reading r;
    r.seq = t;
    r.time = static_cast<double>(t);
    r.value = Vector{0.02 * rng.Centered()};
    if (t % 19 == 0) r.value[0] += 80.0;  // Isolated outlier: reject.
    if (t >= 60 && t < 60 + 2 * config.outlier_gate_limit) {
      r.value[0] += 80.0;  // Sustained run: exhausts the limit, forces.
      ++forced_runs_seen;
    }
    int64_t before = a.OutliersRejected();
    a.ObserveLocal(r);
    b.ObserveLocal(r);
    if (a.OutliersRejected() > before) ++rejects_seen;
    ASSERT_EQ(a.LastNis(), b.LastNis()) << t;
    ASSERT_EQ(a.OutliersRejected(), b.OutliersRejected()) << t;
    std::vector<double> fa = a.EncodeFullState();
    std::vector<double> fb = b.EncodeFullState();
    ASSERT_EQ(fa, fb) << t;
  }
  // The history actually exercised reject and forced-accept branches.
  EXPECT_GT(rejects_seen, 0);
  EXPECT_GT(forced_runs_seen, 0);
  EXPECT_GT(a.OutliersRejected(), 0);
}

// Chunked sweeps equal one whole sweep bit-for-bit, for every possible
// split point — the determinism half of the parallel-sweep contract
// (threads only ever change WHICH chunks run where, never their content).
TEST(BatchKernels, SweepBlocksAnyChunkingMatchesPredictAll) {
  const size_t dim = 3;
  StateSpaceModel model = MakeDimModel(dim);
  const size_t slots = 11;  // 3 blocks, last one partial.

  auto build = [&](FilterPool* pool) {
    Rng rng(0xD1CE);
    Matrix p0 = Matrix::ScalarDiagonal(dim, 50.0);
    for (size_t i = 0; i < slots; ++i) {
      Vector x0(dim);
      for (size_t e = 0; e < dim; ++e) x0[e] = rng.Centered();
      int32_t s = pool->Acquire(static_cast<int32_t>(i));
      pool->ResetSlot(s, x0, p0);
    }
    // A hole: freed slot in the middle block.
    pool->Release(5);
  };

  FilterPool whole(model, KalmanFilter::UpdateForm::kJoseph);
  build(&whole);
  ASSERT_EQ(whole.PredictAll(), slots - 1);

  for (size_t split = 0; split <= whole.num_blocks(); ++split) {
    FilterPool chunked(model, KalmanFilter::UpdateForm::kJoseph);
    build(&chunked);
    chunked.BeginSweep();
    size_t advanced = chunked.SweepBlocks(0, split);
    advanced += chunked.SweepBlocks(split, chunked.num_blocks());
    ASSERT_EQ(advanced, slots - 1) << "split " << split;
    for (size_t i = 0; i < slots; ++i) {
      if (i == 5) continue;
      auto s = static_cast<int32_t>(i);
      ASSERT_EQ(whole.SerializeSlot(s), chunked.SerializeSlot(s))
          << "split " << split << " slot " << i;
      ASSERT_EQ(whole.PredictEpochOf(s), chunked.PredictEpochOf(s));
    }
  }
}

}  // namespace
}  // namespace kc
