// The protocol contract, uniformly over every Predictor implementation:
// two replicas fed the same Init/Tick/correction sequence predict
// identically, Clone() produces equivalent fresh replicas, and state-sync
// policies are contract-exact immediately after a correction.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "suppression/ekf_policy.h"
#include "suppression/imm_policy.h"
#include "suppression/policies.h"
#include "suppression/ukf_policy.h"

namespace kc {
namespace {

/// A mildly nonlinear scalar model (tanh-saturated drift) so the UKF
/// policy can join the scalar protocol sweep.
NonlinearModel ScalarNonlinearModel() {
  NonlinearModel m;
  m.name = "saturating_drift";
  m.state_dim = 1;
  m.obs_dim = 1;
  m.f = [](const Vector& x) { return Vector{x[0] + 0.1 * std::tanh(x[0])}; };
  m.f_jacobian = [](const Vector& x) {
    double t = std::tanh(x[0]);
    return Matrix{{1.0 + 0.1 * (1.0 - t * t)}};
  };
  m.h = [](const Vector& x) { return x; };
  m.h_jacobian = [](const Vector&) { return Matrix::Identity(1); };
  m.q = Matrix{{0.1}};
  m.r = Matrix{{0.25}};
  return m;
}

std::unique_ptr<Predictor> MakeByName(const std::string& name) {
  if (name == "value_cache") return std::make_unique<ValueCachePredictor>(1);
  if (name == "linear") return std::make_unique<LinearPredictor>(1);
  if (name == "ewma") return std::make_unique<EwmaPredictor>(1, 0.5);
  if (name == "imm") return MakeTwoModeImmPredictor(0.01, 2.25, 0.25);
  if (name == "ekf") {
    EkfPredictor::Config config;
    config.model = ScalarNonlinearModel();
    config.init_state = [](const Vector& z) { return z; };
    return std::make_unique<EkfPredictor>(std::move(config));
  }
  if (name == "ukf") {
    UkfPredictor::Config config;
    config.model = ScalarNonlinearModel();
    config.init_state = [](const Vector& z) { return z; };
    return std::make_unique<UkfPredictor>(std::move(config));
  }
  if (name == "kalman" || name == "kalman_cov" || name == "kalman_meas" ||
      name == "kalman_gated") {
    KalmanPredictor::Config config;
    config.model = MakeRandomWalkModel(0.1, 0.25);
    config.adaptive = AdaptiveConfig{};
    if (name == "kalman_cov") {
      config.sync_mode = KalmanPredictor::SyncMode::kStateAndCov;
    } else if (name == "kalman_meas") {
      config.sync_mode = KalmanPredictor::SyncMode::kMeasurement;
    } else if (name == "kalman_gated") {
      config.outlier_gate_prob = 0.99;
    }
    return std::make_unique<KalmanPredictor>(std::move(config));
  }
  return nullptr;
}

Reading ScalarReading(int64_t seq, double value) {
  Reading r;
  r.seq = seq;
  r.time = static_cast<double>(seq);
  r.value = Vector{value};
  return r;
}

class ProtocolSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ProtocolSweepTest, ReplicasAgreeUnderArbitraryCadence) {
  auto client = MakeByName(GetParam());
  ASSERT_NE(client, nullptr);
  auto server = client->Clone();
  Reading first = ScalarReading(0, 1.0);
  client->Init(first);
  server->Init(first);

  Rng rng(11);
  double level = 1.0;
  for (int64_t i = 1; i <= 600; ++i) {
    level += rng.Gaussian(0.0, 0.5);
    Reading z = ScalarReading(i, level + rng.Gaussian(0.0, 0.3));
    client->Tick();
    server->Tick();
    client->ObserveLocal(z);
    // Irregular correction cadence, including bursts and droughts.
    bool correct = (i % 13 == 0) || (i % 7 == 3) || (i > 300 && i < 310);
    if (correct) {
      auto payload = client->EncodeCorrection(z);
      ASSERT_TRUE(client->ApplyCorrection(i, z.time, payload).ok());
      ASSERT_TRUE(server->ApplyCorrection(i, z.time, payload).ok());
    }
    ASSERT_NEAR(client->Predict()[0], server->Predict()[0], 1e-12)
        << GetParam() << " diverged at i=" << i;
  }
}

TEST_P(ProtocolSweepTest, CloneIsFreshAndEquivalent) {
  auto a = MakeByName(GetParam());
  ASSERT_NE(a, nullptr);
  // Mutate the original...
  a->Init(ScalarReading(0, 5.0));
  a->Tick();
  a->ObserveLocal(ScalarReading(1, 6.0));
  // ...then clone: the clone must behave like a brand-new instance.
  auto b = a->Clone();
  auto c = MakeByName(GetParam());
  Reading first = ScalarReading(0, 2.0);
  b->Init(first);
  c->Init(first);
  Rng rng(13);
  for (int64_t i = 1; i <= 100; ++i) {
    Reading z = ScalarReading(i, rng.Gaussian(2.0, 1.0));
    b->Tick();
    c->Tick();
    b->ObserveLocal(z);
    c->ObserveLocal(z);
    if (i % 9 == 0) {
      auto pb = b->EncodeCorrection(z);
      auto pc = c->EncodeCorrection(z);
      ASSERT_EQ(pb, pc) << GetParam();
      ASSERT_TRUE(b->ApplyCorrection(i, z.time, pb).ok());
      ASSERT_TRUE(c->ApplyCorrection(i, z.time, pc).ok());
    }
    ASSERT_NEAR(b->Predict()[0], c->Predict()[0], 1e-12) << GetParam();
  }
}

TEST_P(ProtocolSweepTest, StateSyncPoliciesAreContractExact) {
  const std::string name = GetParam();
  if (name == "kalman_meas") {
    GTEST_SKIP() << "measurement sync is deliberately inexact";
  }
  auto p = MakeByName(name);
  ASSERT_NE(p, nullptr);
  p->Init(ScalarReading(0, 0.0));
  Rng rng(17);
  for (int64_t i = 1; i <= 200; ++i) {
    Reading z = ScalarReading(i, rng.Gaussian(0.0, 3.0));
    p->Tick();
    p->ObserveLocal(z);
    auto payload = p->EncodeCorrection(z);
    ASSERT_TRUE(p->ApplyCorrection(i, z.time, payload).ok());
    ASSERT_NEAR(p->Target()[0], p->Predict()[0], 1e-9)
        << name << " not exact at i=" << i;
  }
}

TEST_P(ProtocolSweepTest, PredictIsStableWithoutNewInformation) {
  // Without corrections, repeated Predict() calls between ticks must be
  // pure (no hidden mutation from reading the prediction).
  auto p = MakeByName(GetParam());
  ASSERT_NE(p, nullptr);
  p->Init(ScalarReading(0, 4.0));
  p->Tick();
  Vector first = p->Predict();
  for (int k = 0; k < 5; ++k) {
    ASSERT_TRUE(AlmostEqual(p->Predict(), first, 0.0));
  }
}

INSTANTIATE_TEST_SUITE_P(AllScalarPolicies, ProtocolSweepTest,
                         ::testing::Values("value_cache", "linear", "ewma",
                                           "kalman", "kalman_cov",
                                           "kalman_meas", "kalman_gated",
                                           "imm", "ekf", "ukf"));

}  // namespace
}  // namespace kc
