#include "server/volatility.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "server/allocation.h"
#include "server/simulation.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace kc {
namespace {

TEST(VolatilityEstimatorTest, RequiresEnoughPoints) {
  TickArchive archive(100);
  EXPECT_FALSE(VolatilityEstimator::FromArchive(archive, 50).ok());
  archive.Record(1.0, 1.0, 0.1);
  archive.Record(2.0, 2.0, 0.1);
  EXPECT_FALSE(VolatilityEstimator::FromArchive(archive, 50).ok());
}

TEST(VolatilityEstimatorTest, RecoversKnownSigma) {
  TickArchive archive(10000);
  Rng rng(1);
  double v = 0.0;
  for (int t = 1; t <= 5000; ++t) {
    v += rng.Gaussian(0.0, 0.7);
    archive.Record(static_cast<double>(t), v, 0.1);
  }
  auto sigma = VolatilityEstimator::FromArchive(archive, 5000);
  ASSERT_TRUE(sigma.ok());
  EXPECT_NEAR(*sigma, 0.7, 0.05);
}

TEST(VolatilityEstimatorTest, ConstantSignalHasZeroVolatility) {
  TickArchive archive(100);
  for (int t = 1; t <= 50; ++t) {
    archive.Record(static_cast<double>(t), 3.0, 0.1);
  }
  auto sigma = VolatilityEstimator::FromArchive(archive, 50);
  ASSERT_TRUE(sigma.ok());
  EXPECT_DOUBLE_EQ(*sigma, 0.0);
}

TEST(VolatilityEstimatorTest, BatchWithFallbacks) {
  TickArchive good(100);
  Rng rng(2);
  double v = 0.0;
  for (int t = 1; t <= 50; ++t) {
    v += rng.Gaussian(0.0, 1.0);
    good.Record(static_cast<double>(t), v, 0.1);
  }
  TickArchive empty(100);
  auto estimates =
      VolatilityEstimator::FromArchives({&good, &empty, nullptr}, 50, 0.5);
  ASSERT_EQ(estimates.size(), 3u);
  EXPECT_GT(estimates[0], 0.5);
  EXPECT_DOUBLE_EQ(estimates[1], 0.5);
  EXPECT_DOUBLE_EQ(estimates[2], 0.5);
}

TEST(VolatilityEstimatorTest, RanksHeterogeneousFleetFromServerSideOnly) {
  // The server profiles its own archives and derives a variance-
  // proportional allocation — no client cooperation anywhere.
  Fleet fleet;
  fleet.server().EnableArchiving(10000);
  const double sigmas[3] = {0.1, 0.5, 2.0};
  for (int i = 0; i < 3; ++i) {
    RandomWalkGenerator::Config walk;
    walk.step_sigma = sigmas[i];
    fleet.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                    std::make_unique<ValueCachePredictor>(), 0.5);
  }
  ASSERT_TRUE(fleet.Run(3000).ok());

  std::vector<const TickArchive*> archives;
  for (int32_t id = 0; id < 3; ++id) {
    auto archive = fleet.server().Archive(id);
    ASSERT_TRUE(archive.ok());
    archives.push_back(*archive);
  }
  auto estimates = VolatilityEstimator::FromArchives(archives, 2000);
  // Ranking must match the true sigmas.
  EXPECT_LT(estimates[0], estimates[1]);
  EXPECT_LT(estimates[1], estimates[2]);

  // And the derived allocation gives the volatile source the most slack.
  auto bounds = AllocateBounds(AllocationPolicy::kVarianceProportional, 3.0,
                               estimates);
  EXPECT_GT(bounds[2], bounds[1]);
  EXPECT_GT(bounds[1], bounds[0]);
}

}  // namespace
}  // namespace kc
