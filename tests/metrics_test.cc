// Metric registry: registration semantics, hot-path recording exactness
// under the fleet thread pool, merge determinism, and exporter goldens.

#include "obs/metrics.h"

#include <atomic>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "fleet/thread_pool.h"
#include "obs/export.h"

namespace kc {
namespace obs {
namespace {

// ------------------------------------------------------------ registration

TEST(MetricRegistryTest, RegistrationReturnsStablePointers) {
  MetricRegistry registry;
  Counter* c1 = registry.GetCounter("kc.test.counter");
  Counter* c2 = registry.GetCounter("kc.test.counter");
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1, c2);  // Same metric, same handle.
  c1->Inc();
  c2->Inc(4);
  EXPECT_EQ(c1->value(), 5);

  Gauge* g = registry.GetGauge("kc.test.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(registry.GetGauge("kc.test.gauge"), g);

  Histogram* h =
      registry.GetHistogram("kc.test.hist", Buckets::Linear(1.0, 1.0, 3));
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(registry.GetHistogram("kc.test.hist", Buckets::Linear(9.0, 9.0, 2)),
            h);  // Layout fixed by first registration; later calls find it.
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricRegistryTest, KindMismatchReturnsNull) {
  MetricRegistry registry;
  ASSERT_NE(registry.GetCounter("kc.test.metric"), nullptr);
  EXPECT_EQ(registry.GetGauge("kc.test.metric"), nullptr);
  EXPECT_EQ(
      registry.GetHistogram("kc.test.metric", Buckets::Linear(0.0, 1.0, 2)),
      nullptr);
  // The original registration is untouched.
  EXPECT_NE(registry.GetCounter("kc.test.metric"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricRegistryTest, GaugeSetAndAdd) {
  MetricRegistry registry;
  Gauge* g = registry.GetGauge("kc.test.gauge");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
  g->Add(-1.0);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);
}

// -------------------------------------------------------------- histograms

TEST(HistogramTest, BucketPlacement) {
  MetricRegistry registry;
  // Bounds 1, 2, 3 plus the implicit overflow bucket.
  Histogram* h =
      registry.GetHistogram("kc.test.hist", Buckets::Linear(1.0, 1.0, 3));
  ASSERT_EQ(h->num_buckets(), 4u);
  h->Record(0.5);  // <= 1 -> bucket 0.
  h->Record(1.0);  // Bounds are inclusive upper limits -> bucket 0.
  h->Record(1.5);  // Bucket 1.
  h->Record(3.0);  // Bucket 2.
  h->Record(99.0);  // Overflow.
  EXPECT_EQ(h->bucket_count(0), 2);
  EXPECT_EQ(h->bucket_count(1), 1);
  EXPECT_EQ(h->bucket_count(2), 1);
  EXPECT_EQ(h->bucket_count(3), 1);
  EXPECT_EQ(h->count(), 5);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.5 + 3.0 + 99.0);
  EXPECT_DOUBLE_EQ(h->bucket_bound(2), 3.0);
  EXPECT_EQ(h->bucket_bound(3), std::numeric_limits<double>::infinity());
}

TEST(HistogramTest, ExponentialBucketLayout) {
  Buckets b = Buckets::Exponential(1.0, 2.0, 4);
  ASSERT_EQ(b.count, 4u);
  EXPECT_DOUBLE_EQ(b.bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(b.bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(b.bounds[2], 4.0);
  EXPECT_DOUBLE_EQ(b.bounds[3], 8.0);
  // Requests beyond the fixed storage clamp instead of allocating.
  EXPECT_EQ(Buckets::Exponential(1.0, 2.0, 1000).count, Buckets::kMaxBounds);
  EXPECT_EQ(Buckets::Linear(0.0, 1.0, 1000).count, Buckets::kMaxBounds);
}

// ------------------------------------------------------------------- merge

TEST(MetricRegistryTest, MergeFromSumsAndRegistersMissing) {
  MetricRegistry a;
  MetricRegistry b;
  a.GetCounter("kc.shared.counter")->Inc(3);
  b.GetCounter("kc.shared.counter")->Inc(4);
  b.GetCounter("kc.only_b.counter")->Inc(7);
  a.GetGauge("kc.shared.gauge")->Set(1.5);
  b.GetGauge("kc.shared.gauge")->Set(2.0);
  Histogram* ha =
      a.GetHistogram("kc.shared.hist", Buckets::Linear(1.0, 1.0, 2));
  Histogram* hb =
      b.GetHistogram("kc.shared.hist", Buckets::Linear(1.0, 1.0, 2));
  ha->Record(0.5);
  hb->Record(0.5);
  hb->Record(10.0);

  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("kc.shared.counter")->value(), 7);
  EXPECT_EQ(a.GetCounter("kc.only_b.counter")->value(), 7);
  // Gauges merge by summation: per-shard levels add up to the fleet total.
  EXPECT_DOUBLE_EQ(a.GetGauge("kc.shared.gauge")->value(), 3.5);
  EXPECT_EQ(ha->bucket_count(0), 2);
  EXPECT_EQ(ha->bucket_count(2), 1);
  EXPECT_EQ(ha->count(), 3);
  // `b` is read-only under MergeFrom.
  EXPECT_EQ(hb->count(), 2);
}

TEST(MetricRegistryTest, MergeSkipsKindConflicts) {
  MetricRegistry a;
  MetricRegistry b;
  a.GetCounter("kc.conflict")->Inc(1);
  b.GetGauge("kc.conflict")->Set(9.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("kc.conflict")->value(), 1);  // Unchanged.
}

TEST(MetricRegistryTest, MergeDropsConflictingHistogramLayouts) {
  MetricRegistry a;
  MetricRegistry b;
  Histogram* ha =
      a.GetHistogram("kc.layout", Buckets::Linear(1.0, 1.0, 2));
  Histogram* hb =
      b.GetHistogram("kc.layout", Buckets::Exponential(1.0, 2.0, 4));
  ha->Record(0.5);
  hb->Record(0.5);
  hb->Record(3.0);

  a.MergeFrom(b);
  // Bucket-by-bucket addition across disagreeing layouts would silently
  // misbin, so the remote row is dropped whole...
  EXPECT_EQ(ha->count(), 1);
  EXPECT_EQ(ha->bucket_count(0), 1);
  // ...and the drop is observable, not silent.
  std::vector<std::string> conflicts = a.Validate();
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_NE(conflicts[0].find("kc.layout"), std::string::npos);
  // Same layout described differently is still a conflict (bound lists
  // must agree exactly); same generator args are not.
  MetricRegistry c;
  c.GetHistogram("kc.layout", Buckets::Linear(1.0, 1.0, 2))->Record(9.0);
  a.MergeFrom(c);
  EXPECT_EQ(a.Validate().size(), 1u);  // No new conflict recorded.
  EXPECT_EQ(ha->count(), 2);
}

TEST(MetricRegistryTest, MergeCarriesWallClockFlagsToNewRows) {
  MetricRegistry a;
  MetricRegistry b;
  b.GetCounter("kc.wall.counter", /*wall_clock=*/true)->Inc(3);
  b.GetGauge("kc.wall.gauge", /*wall_clock=*/true)->Set(1.5);
  b.GetCounter("kc.sim.counter")->Inc(4);
  a.MergeFrom(b);

  for (const MetricRow& row : a.Rows()) {
    if (row.name == "kc.sim.counter") {
      EXPECT_FALSE(row.wall_clock);
    } else {
      EXPECT_TRUE(row.wall_clock) << row.name;
    }
  }
}

// ------------------------------------------------------ concurrent recording

// Recording is single-writer by contract (one arena per shard, one thread
// stepping each shard). This is the concurrency model the fleet executor
// actually runs: N threads each recording into their own arena, merged
// after the barrier. Totals must be exact.
TEST(MetricRegistryTest, PerThreadArenasMergeExactly) {
  constexpr size_t kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::unique_ptr<MetricRegistry>> arenas;
  for (size_t t = 0; t < kThreads; ++t) {
    arenas.push_back(std::make_unique<MetricRegistry>());
  }
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](size_t t) {
    Counter* c = arenas[t]->GetCounter("kc.test.counter");
    Histogram* h = arenas[t]->GetHistogram("kc.test.hist",
                                           Buckets::Exponential(1.0, 2.0, 8));
    for (int i = 0; i < kPerThread; ++i) {
      c->Inc();
      h->Record(static_cast<double>(t));  // Thread t -> one fixed bucket.
    }
  });
  MetricRegistry merged;
  for (const auto& arena : arenas) merged.MergeFrom(*arena);
  Counter* c = merged.GetCounter("kc.test.counter");
  Histogram* h = merged.GetHistogram("kc.test.hist",
                                     Buckets::Exponential(1.0, 2.0, 8));
  EXPECT_EQ(c->value(), static_cast<int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<int64_t>(kThreads) * kPerThread);
  int64_t total = 0;
  for (size_t i = 0; i < h->num_buckets(); ++i) total += h->bucket_count(i);
  EXPECT_EQ(total, h->count());
}

// Readers on other threads see torn-free (if possibly stale) values while
// the single writer records. Run under TSan by scripts/ci_tsan.sh.
TEST(MetricRegistryTest, ConcurrentReadsAreTornFree) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("kc.test.counter");
  constexpr int kIncs = 200000;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    int64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      int64_t v = c->value();
      // Single-writer counters are monotonic even mid-recording.
      EXPECT_GE(v, last);
      EXPECT_LE(v, kIncs);
      last = v;
    }
  });
  for (int i = 0; i < kIncs; ++i) c->Inc();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(c->value(), kIncs);
}

// --------------------------------------------------------------- exporters

/// A tiny fixed registry every exporter golden below renders.
void FillGolden(MetricRegistry* registry) {
  registry->GetCounter("kc.a.counter")->Inc(42);
  registry->GetGauge("kc.b.gauge")->Set(2.5);
  Histogram* h =
      registry->GetHistogram("kc.c.hist", Buckets::Linear(1.0, 1.0, 2));
  h->Record(0.5);
  h->Record(1.5);
  h->Record(9.0);
  registry->GetHistogram("kc.d.wall_us", Buckets::Linear(1.0, 1.0, 2),
                         /*wall_clock=*/true)
      ->Record(123.0);
}

TEST(ExportTest, TextGolden) {
  MetricRegistry registry;
  FillGolden(&registry);
  std::string expected =
      "kc.a.counter                             counter   42\n"
      "kc.b.gauge                               gauge     2.5\n"
      "kc.c.hist                                histogram "
      "count=3 sum=11 mean=3.66666667 p50=1.5 p90=2 p99=2\n"
      "                                           le 1: 1\n"
      "                                           le 2: 1\n"
      "                                           le +Inf: 1\n";
  EXPECT_EQ(ExportText(registry, /*include_wall_clock=*/false), expected);
}

TEST(ExportTest, JsonLinesGolden) {
  MetricRegistry registry;
  FillGolden(&registry);
  std::string expected =
      "{\"name\":\"kc.a.counter\",\"kind\":\"counter\",\"value\":42}\n"
      "{\"name\":\"kc.b.gauge\",\"kind\":\"gauge\",\"value\":2.5}\n"
      "{\"name\":\"kc.c.hist\",\"kind\":\"histogram\",\"count\":3,"
      "\"sum\":11,\"p50\":1.5,\"p90\":2,\"p99\":2,"
      "\"buckets\":[{\"le\":1,\"n\":1},{\"le\":2,\"n\":1},"
      "{\"le\":\"+Inf\",\"n\":1}]}\n";
  EXPECT_EQ(ExportJsonLines(registry, /*include_wall_clock=*/false), expected);
}

TEST(ExportTest, PrometheusGolden) {
  MetricRegistry registry;
  FillGolden(&registry);
  // Exposition-format spec: `_total` suffix on counters, HELP before TYPE
  // for every family, cumulative bucket counts.
  std::string expected =
      "# HELP kc_a_counter_total kalmancast metric kc.a.counter\n"
      "# TYPE kc_a_counter_total counter\n"
      "kc_a_counter_total 42\n"
      "# HELP kc_b_gauge kalmancast metric kc.b.gauge\n"
      "# TYPE kc_b_gauge gauge\n"
      "kc_b_gauge 2.5\n"
      "# HELP kc_c_hist kalmancast metric kc.c.hist\n"
      "# TYPE kc_c_hist histogram\n"
      "kc_c_hist_bucket{le=\"1\"} 1\n"
      "kc_c_hist_bucket{le=\"2\"} 2\n"
      "kc_c_hist_bucket{le=\"+Inf\"} 3\n"  // Cumulative.
      "kc_c_hist_sum 11\n"
      "kc_c_hist_count 3\n";
  EXPECT_EQ(ExportPrometheus(registry, /*include_wall_clock=*/false),
            expected);
}

TEST(ExportTest, PrometheusNameSanitization) {
  MetricRegistry registry;
  registry.GetCounter("kc.weird-name/with spaces")->Inc(1);
  std::string out = ExportPrometheus(registry, /*include_wall_clock=*/false);
  // Every illegal character maps to '_'; the original dotted name survives
  // only in the HELP text.
  EXPECT_NE(out.find("kc_weird_name_with_spaces_total 1\n"), std::string::npos);
  EXPECT_NE(out.find("# HELP kc_weird_name_with_spaces_total kalmancast "
                     "metric kc.weird-name/with spaces\n"),
            std::string::npos);
}

TEST(ExportTest, WallClockMetricsIncludedOnRequest) {
  MetricRegistry registry;
  FillGolden(&registry);
  std::string with = ExportText(registry, /*include_wall_clock=*/true);
  std::string without = ExportText(registry, /*include_wall_clock=*/false);
  EXPECT_NE(with.find("kc.d.wall_us"), std::string::npos);
  EXPECT_EQ(without.find("kc.d.wall_us"), std::string::npos);
}

// Every exporter must honour the wall-clock exclusion — one leaking format
// would break the deterministic-output contract its consumers pin on.
TEST(ExportTest, WallClockExclusionCoversEveryFormat) {
  MetricRegistry registry;
  FillGolden(&registry);
  const std::string json = ExportJsonLines(registry, false);
  const std::string prom = ExportPrometheus(registry, false);
  EXPECT_EQ(json.find("wall_us"), std::string::npos);
  EXPECT_EQ(prom.find("wall_us"), std::string::npos);
  EXPECT_NE(ExportJsonLines(registry, true).find("kc.d.wall_us"),
            std::string::npos);
  EXPECT_NE(ExportPrometheus(registry, true).find("kc_d_wall_us"),
            std::string::npos);
}

// JSON-lines round trip: parse each exported line back with a minimal
// scanner and check it reproduces the registry's rows — guarding against
// silent quoting/ordering regressions no golden string would survive.
TEST(ExportTest, JsonLinesParsesBack) {
  MetricRegistry registry;
  FillGolden(&registry);
  std::string out = ExportJsonLines(registry, /*include_wall_clock=*/false);

  auto field = [](const std::string& line, const std::string& key) {
    size_t at = line.find("\"" + key + "\":");
    EXPECT_NE(at, std::string::npos) << key << " missing in " << line;
    at += key.size() + 3;
    size_t end = line.find_first_of(",}", line[at] == '"'
                                              ? line.find('"', at + 1) + 1
                                              : at);
    std::string v = line.substr(at, end - at);
    if (!v.empty() && v.front() == '"') v = v.substr(1, v.size() - 2);
    return v;
  };

  std::vector<std::string> lines;
  std::istringstream is(out);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  std::vector<MetricRow> rows;
  for (const MetricRow& row : registry.Rows()) {
    if (!row.wall_clock) rows.push_back(row);
  }
  ASSERT_EQ(lines.size(), rows.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    ASSERT_FALSE(lines[i].empty());
    EXPECT_EQ(lines[i].front(), '{');
    EXPECT_EQ(lines[i].back(), '}');
    EXPECT_EQ(field(lines[i], "name"), rows[i].name);
    switch (rows[i].kind) {
      case MetricKind::kCounter:
        EXPECT_EQ(field(lines[i], "kind"), "counter");
        EXPECT_EQ(std::stoll(field(lines[i], "value")), rows[i].counter);
        break;
      case MetricKind::kGauge:
        EXPECT_EQ(field(lines[i], "kind"), "gauge");
        EXPECT_DOUBLE_EQ(std::stod(field(lines[i], "value")), rows[i].gauge);
        break;
      case MetricKind::kHistogram:
        EXPECT_EQ(field(lines[i], "kind"), "histogram");
        EXPECT_EQ(std::stoll(field(lines[i], "count")), rows[i].hist_count);
        EXPECT_DOUBLE_EQ(std::stod(field(lines[i], "sum")), rows[i].hist_sum);
        break;
    }
  }
}

// ------------------------------------------------------------- quantiles

TEST(HistogramQuantileTest, EmptyHistogramReturnsZero) {
  MetricRegistry registry;
  Histogram* h =
      registry.GetHistogram("kc.q.empty", Buckets::Linear(1.0, 1.0, 4));
  EXPECT_EQ(h->Quantile(0.5), 0.0);
  EXPECT_EQ(HistogramQuantile({1.0, 2.0}, {0, 0, 0}, 0.99), 0.0);
}

TEST(HistogramQuantileTest, InterpolatesLinearlyInsideBucket) {
  // 10 records in (0, 10]: rank q*10 interpolates from the bucket's lower
  // edge (0 for the first bucket).
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0}, {10, 0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0}, {10, 0}, 0.25), 2.5);
  // Second bucket (10, 20]: 4 below, rank 7 lands 3/6 into it.
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0, 20.0}, {4, 6, 0}, 0.7), 15.0);
}

TEST(HistogramQuantileTest, OverflowBucketClampsToLastBound) {
  // Everything beyond the last finite bound: the estimate cannot invent an
  // upper edge, so it reports the last bound (Prometheus convention).
  EXPECT_DOUBLE_EQ(HistogramQuantile({1.0, 2.0}, {0, 0, 5}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile({1.0, 2.0}, {1, 1, 8}, 0.99), 2.0);
}

TEST(HistogramQuantileTest, ClampsQOutsideUnitInterval) {
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0}, {10, 0}, -0.5),
                   HistogramQuantile({10.0}, {10, 0}, 0.0));
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0}, {10, 0}, 2.0),
                   HistogramQuantile({10.0}, {10, 0}, 1.0));
}

TEST(HistogramQuantileTest, MemberMatchesFreeFunction) {
  MetricRegistry registry;
  Histogram* h =
      registry.GetHistogram("kc.q.member", Buckets::Linear(1.0, 1.0, 4));
  for (double v : {0.5, 1.5, 1.7, 2.5, 3.5, 9.0}) h->Record(v);
  MetricRow row;
  for (const MetricRow& r : registry.Rows()) {
    if (r.name == "kc.q.member") row = r;
  }
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h->Quantile(q),
                     HistogramQuantile(row.hist_bounds, row.hist_counts, q));
  }
}

// --------------------------------------------------------- prefix filters

TEST(ExportTest, PrefixFiltersEveryFormat) {
  MetricRegistry registry;
  FillGolden(&registry);
  // Text/JSON/Prometheus all honour the same raw-dotted-name prefix.
  std::string text = ExportText(registry, /*include_wall_clock=*/false,
                                /*prefix=*/"kc.a");
  EXPECT_EQ(text,
            "kc.a.counter                             counter   42\n");
  std::string json = ExportJsonLines(registry, /*include_wall_clock=*/false,
                                     /*prefix=*/"kc.b");
  EXPECT_EQ(json, "{\"name\":\"kc.b.gauge\",\"kind\":\"gauge\","
                  "\"value\":2.5}\n");
  std::string prom = ExportPrometheus(registry, /*include_wall_clock=*/false,
                                      /*prefix=*/"kc.c");
  EXPECT_NE(prom.find("kc_c_hist_count 3\n"), std::string::npos);
  EXPECT_EQ(prom.find("kc_a_counter"), std::string::npos);
  EXPECT_EQ(prom.find("kc_b_gauge"), std::string::npos);
}

TEST(ExportTest, PrefixWithNoMatchesRendersNothing) {
  MetricRegistry registry;
  FillGolden(&registry);
  EXPECT_EQ(ExportText(registry, false, "kc.nope"), "");
  EXPECT_EQ(ExportJsonLines(registry, false, "kc.nope"), "");
  EXPECT_EQ(ExportPrometheus(registry, false, "kc.nope"), "");
}

TEST(ExportTest, ExportRowsMatchesExportMetrics) {
  MetricRegistry registry;
  FillGolden(&registry);
  ExportOptions options;
  options.format = ExportFormat::kPrometheus;
  options.include_wall_clock = false;
  options.prefix = "kc.";
  EXPECT_EQ(ExportRows(registry.Rows(), options),
            ExportMetrics(registry, options));
}

// ------------------------------------------------------- conflict reporting

TEST(MetricRegistryTest, ValidateEnumeratesKindConflicts) {
  MetricRegistry registry;
  EXPECT_TRUE(registry.Validate().empty());
  registry.GetCounter("kc.conflict.a");
  registry.GetGauge("kc.conflict.b");
  EXPECT_EQ(registry.GetGauge("kc.conflict.a"), nullptr);
  EXPECT_EQ(registry.GetHistogram("kc.conflict.b",
                                  Buckets::Linear(0.0, 1.0, 2)),
            nullptr);
  // The same bad request again must not duplicate the entry.
  EXPECT_EQ(registry.GetGauge("kc.conflict.a"), nullptr);
  std::vector<std::string> conflicts = registry.Validate();
  ASSERT_EQ(conflicts.size(), 2u);  // First-seen order.
  EXPECT_EQ(conflicts[0],
            "kc.conflict.a: registered as counter, requested as gauge");
  EXPECT_EQ(conflicts[1],
            "kc.conflict.b: registered as gauge, requested as histogram");
}

TEST(MetricRegistryTest, KindConflictLogsOnceThroughSink) {
  std::vector<std::string> captured;
  LogSink previous = SetLogSink(
      [&captured](LogLevel, const std::string& line) {
        if (line.find("metric conflict") != std::string::npos) {
          captured.push_back(line);
        }
      });
  {
    MetricRegistry registry;
    registry.GetCounter("kc.conflict.logged");
    registry.GetGauge("kc.conflict.logged");  // Logs.
    registry.GetGauge("kc.conflict.logged");  // Duplicate: silent.
  }
  SetLogSink(std::move(previous));
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_NE(captured[0].find("kc.conflict.logged"), std::string::npos);
  EXPECT_NE(captured[0].find("registered as counter"), std::string::npos);
}

TEST(ExportTest, RowsSortedByName) {
  MetricRegistry registry;
  registry.GetCounter("kc.z");
  registry.GetCounter("kc.a");
  registry.GetCounter("kc.m");
  std::vector<MetricRow> rows = registry.Rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "kc.a");
  EXPECT_EQ(rows[1].name, "kc.m");
  EXPECT_EQ(rows[2].name, "kc.z");
}

TEST(ExportTest, DefaultRegistryIsAProcessSingleton) {
  EXPECT_EQ(&DefaultRegistry(), &DefaultRegistry());
}

// ------------------------------------------- degenerate bucket layouts

void ExpectStrictlyIncreasing(const Buckets& b) {
  for (size_t i = 1; i < b.count; ++i) {
    EXPECT_GT(b.bounds[i], b.bounds[i - 1]) << i;
  }
}

// One test exercises every degenerate call site while a sink is
// installed: KC_LOG_EVERY_N keeps a per-callsite counter for the whole
// process, so the first hit of each site (which happens here, before any
// other test touches them) must warn and repeats must stay silent.
TEST(BucketValidationTest, DegenerateInputsClampAndWarnOnce) {
  std::vector<std::string> captured;
  LogSink previous =
      SetLogSink([&captured](LogLevel level, const std::string& line) {
        if (level == LogLevel::kWarning) captured.push_back(line);
      });

  double nan = std::numeric_limits<double>::quiet_NaN();
  double inf = std::numeric_limits<double>::infinity();

  // n == 0: legal but suspicious — only the overflow bucket remains.
  EXPECT_EQ(Buckets::Exponential(1.0, 2.0, 0).count, 0u);
  EXPECT_EQ(Buckets::Linear(0.0, 1.0, 0).count, 0u);

  // n > kMaxBounds clamps.
  EXPECT_EQ(Buckets::Exponential(1.0, 2.0, 1000).count, Buckets::kMaxBounds);
  EXPECT_EQ(Buckets::Linear(0.0, 1.0, 1000).count, Buckets::kMaxBounds);

  // Bad first bound / factor fall back to 1.0 / 2.0.
  Buckets e = Buckets::Exponential(-5.0, 0.5, 4);
  ASSERT_EQ(e.count, 4u);
  EXPECT_EQ(e.bounds[0], 1.0);
  EXPECT_EQ(e.bounds[1], 2.0);
  EXPECT_EQ(e.bounds[2], 4.0);
  EXPECT_EQ(e.bounds[3], 8.0);
  ExpectStrictlyIncreasing(e);
  ExpectStrictlyIncreasing(Buckets::Exponential(nan, nan, 8));
  ExpectStrictlyIncreasing(Buckets::Exponential(inf, 1.0, 8));

  // Bad start / width fall back to 0.0 / 1.0.
  Buckets l = Buckets::Linear(nan, -2.0, 3);
  ASSERT_EQ(l.count, 3u);
  EXPECT_EQ(l.bounds[0], 0.0);
  EXPECT_EQ(l.bounds[1], 1.0);
  EXPECT_EQ(l.bounds[2], 2.0);
  ExpectStrictlyIncreasing(Buckets::Linear(inf, 0.0, 5));

  // Overflow to +inf mid-layout trips the monotonicity backstop.
  Buckets o = Buckets::Exponential(1e300, 1e9, 5);
  EXPECT_EQ(o.count, 1u);
  EXPECT_EQ(o.bounds[0], 1e300);

  // Each degenerate site this test hits first must have warned. (The two
  // n > kMaxBounds sites are excluded: the clamp test above already
  // consumed their process-wide first hit.)
  for (const char* needle :
       {"Exponential(n=0", "Linear(n=0", "first bound must be finite",
        "factor must be finite", "start must be finite",
        "width must be finite", "stop increasing"}) {
    size_t hits = 0;
    for (const std::string& line : captured) {
      if (line.find(needle) != std::string::npos) ++hits;
    }
    EXPECT_EQ(hits, 1u) << "expected exactly one warning for: " << needle;
  }
  size_t first_pass = captured.size();

  // Second pass over the same sites: the per-site once-cadence holds.
  Buckets::Exponential(1.0, 2.0, 0);
  Buckets::Exponential(1.0, 2.0, 1000);
  Buckets::Exponential(-5.0, 0.5, 4);
  Buckets::Exponential(1e300, 1e9, 5);
  Buckets::Linear(0.0, 1.0, 0);
  Buckets::Linear(0.0, 1.0, 1000);
  Buckets::Linear(nan, -2.0, 3);
  SetLogSink(std::move(previous));
  EXPECT_EQ(captured.size(), first_pass) << "degenerate sites warned again";
}

TEST(BucketValidationTest, DegenerateLayoutsStillMakeWorkingHistograms) {
  MetricRegistry registry;

  // n == 0: everything lands in the single overflow bucket.
  Histogram* overflow_only =
      registry.GetHistogram("kc.degenerate.overflow",
                            Buckets::Exponential(1.0, 2.0, 0));
  ASSERT_NE(overflow_only, nullptr);
  EXPECT_EQ(overflow_only->num_buckets(), 1u);
  EXPECT_EQ(overflow_only->bucket_bound(0),
            std::numeric_limits<double>::infinity());
  overflow_only->Record(-1.0);
  overflow_only->Record(1e12);
  EXPECT_EQ(overflow_only->count(), 2);
  EXPECT_EQ(overflow_only->bucket_count(0), 2);

  // Clamped layout records into sane buckets instead of scanning garbage.
  Histogram* clamped = registry.GetHistogram(
      "kc.degenerate.clamped",
      Buckets::Linear(std::numeric_limits<double>::quiet_NaN(), -2.0, 3));
  ASSERT_NE(clamped, nullptr);
  EXPECT_EQ(clamped->num_buckets(), 4u);
  clamped->Record(0.5);
  EXPECT_EQ(clamped->bucket_count(1), 1);
  EXPECT_EQ(clamped->count(), 1);
}

}  // namespace
}  // namespace obs
}  // namespace kc
