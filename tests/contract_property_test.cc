// Property-style sweeps of the paper's central invariant: for every
// suppression policy, stream family, precision bound, and seed, the server's
// answer stays within delta of the protected target at every tick, while
// larger bounds never cost more messages.

#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "server/simulation.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/policies.h"

namespace kc {
namespace {

std::unique_ptr<StreamGenerator> MakeStream(const std::string& name) {
  if (name == "random_walk") {
    RandomWalkGenerator::Config config;
    config.step_sigma = 0.5;
    return std::make_unique<RandomWalkGenerator>(config);
  }
  if (name == "linear_drift") {
    LinearDriftGenerator::Config config;
    config.slope = 0.3;
    config.wobble_sigma = 0.05;
    return std::make_unique<LinearDriftGenerator>(config);
  }
  if (name == "sinusoid") {
    SinusoidGenerator::Config config;
    config.amplitude = 5.0;
    config.period = 100.0;
    return std::make_unique<SinusoidGenerator>(config);
  }
  if (name == "noisy_walk") {
    RandomWalkGenerator::Config config;
    config.step_sigma = 0.3;
    NoiseConfig noise;
    noise.gaussian_sigma = 0.4;
    return std::make_unique<NoisyStream>(
        std::make_unique<RandomWalkGenerator>(config), noise);
  }
  RegimeSwitchingGenerator::Config config;
  config.regimes = {{400, 0.1, 0.0}, {400, 1.5, 0.1}};
  return std::make_unique<RegimeSwitchingGenerator>(config);
}

std::unique_ptr<Predictor> MakePolicy(const std::string& name) {
  if (name == "value_cache") return std::make_unique<ValueCachePredictor>();
  if (name == "linear") return std::make_unique<LinearPredictor>();
  if (name == "ewma") return std::make_unique<EwmaPredictor>(1, 0.5);
  KalmanPredictor::Config config;
  config.model = MakeRandomWalkModel(0.1, 0.25);
  config.adaptive = AdaptiveConfig{};
  if (name == "kalman_cov") {
    config.sync_mode = KalmanPredictor::SyncMode::kStateAndCov;
  }
  return std::make_unique<KalmanPredictor>(config);
}

using ContractParam = std::tuple<std::string, std::string, double, uint64_t>;

class ContractSweepTest : public ::testing::TestWithParam<ContractParam> {};

TEST_P(ContractSweepTest, ServerNeverExceedsDelta) {
  auto [policy_name, stream_name, delta, seed] = GetParam();
  auto stream = MakeStream(stream_name);
  auto policy = MakePolicy(policy_name);
  LinkConfig config;
  config.ticks = 3000;
  config.delta = delta;
  config.seed = seed;
  LinkReport report = RunLink(*stream, *policy, config);
  EXPECT_EQ(report.contract_violations, 0)
      << policy_name << " on " << stream_name << " delta=" << delta
      << " seed=" << seed
      << " max_err=" << report.err_vs_target.max();
  EXPECT_LE(report.err_vs_target.max(), delta + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyStreamDeltaSeed, ContractSweepTest,
    ::testing::Combine(
        ::testing::Values("value_cache", "linear", "ewma", "kalman",
                          "kalman_cov"),
        ::testing::Values("random_walk", "linear_drift", "sinusoid",
                          "noisy_walk", "regime_switching"),
        ::testing::Values(0.25, 1.0, 4.0),
        ::testing::Values(1u, 2u)));

using MonotonicParam = std::tuple<std::string, std::string>;

class MessageMonotonicityTest
    : public ::testing::TestWithParam<MonotonicParam> {};

TEST_P(MessageMonotonicityTest, LooserBoundNeverCostsMore) {
  auto [policy_name, stream_name] = GetParam();
  auto stream = MakeStream(stream_name);
  auto policy = MakePolicy(policy_name);
  int64_t prev = std::numeric_limits<int64_t>::max();
  for (double delta : {0.125, 0.5, 2.0, 8.0}) {
    LinkConfig config;
    config.ticks = 3000;
    config.delta = delta;
    config.seed = 7;
    LinkReport report = RunLink(*stream, *policy, config);
    EXPECT_LE(report.messages, prev)
        << policy_name << " on " << stream_name << " delta=" << delta;
    prev = report.messages;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyStream, MessageMonotonicityTest,
    ::testing::Combine(::testing::Values("value_cache", "linear", "kalman"),
                       ::testing::Values("random_walk", "linear_drift",
                                         "sinusoid", "noisy_walk")));

/// The headline claim (C1/C6) as a regression test: on predictable
/// streams, the Kalman policy ships meaningfully fewer messages than
/// static value caching at the same precision.
class KalmanWinsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(KalmanWinsTest, FewerMessagesThanValueCache) {
  const std::string stream_name = GetParam();
  auto stream = MakeStream(stream_name);
  LinkConfig config;
  config.ticks = 6000;
  config.delta = 0.5;
  config.seed = 3;

  auto cache = MakePolicy("value_cache");
  LinkReport cache_report = RunLink(*stream, *cache, config);

  std::unique_ptr<Predictor> kf;
  if (stream_name == "linear_drift") {
    KalmanPredictor::Config kf_config;
    kf_config.model = MakeConstantVelocityModel(1.0, 0.01, 0.01);
    kf = std::make_unique<KalmanPredictor>(kf_config);
  } else {
    kf = MakePolicy("kalman");
  }
  LinkReport kf_report = RunLink(*stream, *kf, config);

  EXPECT_LT(kf_report.messages, cache_report.messages)
      << "kalman=" << kf_report.messages
      << " cache=" << cache_report.messages << " on " << stream_name;
}

INSTANTIATE_TEST_SUITE_P(PredictableStreams, KalmanWinsTest,
                         ::testing::Values("linear_drift", "noisy_walk"));

/// Suppression sanity across the grid: the server answers at every tick
/// after INIT even when almost everything is suppressed.
TEST(ContractBasicsTest, ServerAlwaysAnswersAfterInit) {
  auto stream = MakeStream("sinusoid");
  auto policy = MakePolicy("kalman");
  LinkConfig config;
  config.ticks = 1000;
  config.delta = 50.0;  // Effectively everything suppressed.
  LinkReport report = RunLink(*stream, *policy, config);
  EXPECT_EQ(report.err_vs_target.count(), 1000);
  EXPECT_EQ(report.messages, 1);  // INIT only.
}

}  // namespace
}  // namespace kc
