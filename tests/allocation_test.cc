#include "server/allocation.h"

#include <numeric>

#include <gtest/gtest.h>

namespace kc {
namespace {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(AllocateBoundsTest, UniformSplitsEvenly) {
  auto deltas = AllocateBounds(AllocationPolicy::kUniform, 4.0,
                               {1.0, 10.0, 100.0, 5.0});
  ASSERT_EQ(deltas.size(), 4u);
  for (double d : deltas) EXPECT_DOUBLE_EQ(d, 1.0);
}

TEST(AllocateBoundsTest, VarianceProportionalFollowsVolatility) {
  auto deltas = AllocateBounds(AllocationPolicy::kVarianceProportional, 6.0,
                               {1.0, 2.0, 3.0});
  ASSERT_EQ(deltas.size(), 3u);
  EXPECT_DOUBLE_EQ(deltas[0], 1.0);
  EXPECT_DOUBLE_EQ(deltas[1], 2.0);
  EXPECT_DOUBLE_EQ(deltas[2], 3.0);
  EXPECT_NEAR(Sum(deltas), 6.0, 1e-12);
}

TEST(AllocateBoundsTest, ZeroVolatilityGetsFloorNotZero) {
  auto deltas = AllocateBounds(AllocationPolicy::kVarianceProportional, 2.0,
                               {0.0, 1.0});
  EXPECT_GT(deltas[0], 0.0);
  EXPECT_NEAR(Sum(deltas), 2.0, 1e-12);
}

TEST(AllocateBoundsTest, AdaptiveStartsUniform) {
  auto deltas = AllocateBounds(AllocationPolicy::kAdaptive, 3.0,
                               {5.0, 1.0, 9.0});
  for (double d : deltas) EXPECT_DOUBLE_EQ(d, 1.0);
}

TEST(AllocateBoundsTest, PolicyNames) {
  EXPECT_STREQ(AllocationPolicyName(AllocationPolicy::kUniform), "uniform");
  EXPECT_STREQ(AllocationPolicyName(AllocationPolicy::kVarianceProportional),
               "variance_proportional");
  EXPECT_STREQ(AllocationPolicyName(AllocationPolicy::kAdaptive), "adaptive");
}

TEST(AdaptiveAllocatorTest, PreservesTotalBudget) {
  AdaptiveAllocator alloc(10.0, 5);
  EXPECT_NEAR(Sum(alloc.deltas()), 10.0, 1e-12);
  alloc.Rebalance({100, 0, 0, 0, 0});
  EXPECT_NEAR(Sum(alloc.deltas()), 10.0, 1e-12);
  alloc.Rebalance({0, 50, 50, 0, 0});
  EXPECT_NEAR(Sum(alloc.deltas()), 10.0, 1e-12);
}

TEST(AdaptiveAllocatorTest, ChattySourceGainsBudget) {
  AdaptiveAllocator alloc(10.0, 2);
  double before_0 = alloc.deltas()[0];
  for (int i = 0; i < 20; ++i) alloc.Rebalance({100, 0});
  EXPECT_GT(alloc.deltas()[0], before_0);
  EXPECT_GT(alloc.deltas()[0], 5.0 * alloc.deltas()[1]);
  EXPECT_EQ(alloc.rebalances(), 20);
}

TEST(AdaptiveAllocatorTest, QuietSourceKeepsNonzeroBound) {
  AdaptiveAllocator alloc(10.0, 2);
  for (int i = 0; i < 200; ++i) alloc.Rebalance({1000, 0});
  EXPECT_GT(alloc.deltas()[1], 0.0);
}

TEST(AdaptiveAllocatorTest, SymmetricLoadStaysBalanced) {
  AdaptiveAllocator alloc(8.0, 4);
  for (int i = 0; i < 50; ++i) alloc.Rebalance({10, 10, 10, 10});
  for (double d : alloc.deltas()) EXPECT_NEAR(d, 2.0, 1e-9);
}

}  // namespace
}  // namespace kc
