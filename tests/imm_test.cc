#include "kalman/imm.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/decomp.h"

namespace kc {
namespace {

/// Two-mode bank over the same random-walk state space: a quiet model and
/// a maneuvering (high-Q) model.
Imm MakeTwoModeImm(double sticky = 0.95) {
  std::vector<KalmanFilter> filters;
  filters.emplace_back(MakeRandomWalkModel(0.01, 0.25), Vector{0.0},
                       Matrix{{1.0}});
  filters.emplace_back(MakeRandomWalkModel(4.0, 0.25), Vector{0.0},
                       Matrix{{1.0}});
  Matrix transition{{sticky, 1.0 - sticky}, {1.0 - sticky, sticky}};
  return Imm(std::move(filters), transition, Vector{0.5, 0.5});
}

TEST(ImmTest, ValidateCatchesBadConfigs) {
  std::vector<KalmanFilter> one;
  one.emplace_back(MakeRandomWalkModel(0.1, 1.0), Vector{0.0}, Matrix{{1.0}});
  // Constructor asserts in debug; exercise Validate() directly through a
  // well-formed object instead.
  Imm good = MakeTwoModeImm();
  EXPECT_TRUE(good.Validate().ok());
}

TEST(ImmTest, ProbabilitiesStayNormalized) {
  Imm imm = MakeTwoModeImm();
  Rng rng(1);
  double x = 0.0;
  for (int i = 0; i < 500; ++i) {
    x += rng.Gaussian(0.0, 0.1);
    imm.Predict();
    ASSERT_TRUE(imm.Update(Vector{x + rng.Gaussian(0.0, 0.5)}).ok());
    double sum = 0.0;
    for (size_t j = 0; j < imm.mode_probabilities().size(); ++j) {
      double p = imm.mode_probabilities()[j];
      ASSERT_GE(p, 0.0);
      ASSERT_LE(p, 1.0 + 1e-12);
      sum += p;
    }
    ASSERT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ImmTest, QuietStreamFavorsQuietMode) {
  Imm imm = MakeTwoModeImm();
  Rng rng(2);
  double x = 0.0;
  for (int i = 0; i < 400; ++i) {
    x += rng.Gaussian(0.0, 0.1);
    imm.Predict();
    ASSERT_TRUE(imm.Update(Vector{x + rng.Gaussian(0.0, 0.5)}).ok());
  }
  EXPECT_EQ(imm.MostLikelyMode(), 0u);
  EXPECT_GT(imm.mode_probabilities()[0], 0.7);
}

TEST(ImmTest, ManeuverFlipsToLoudMode) {
  Imm imm = MakeTwoModeImm();
  Rng rng(3);
  double x = 0.0;
  for (int i = 0; i < 300; ++i) {  // Quiet phase.
    x += rng.Gaussian(0.0, 0.1);
    imm.Predict();
    ASSERT_TRUE(imm.Update(Vector{x + rng.Gaussian(0.0, 0.5)}).ok());
  }
  ASSERT_EQ(imm.MostLikelyMode(), 0u);
  for (int i = 0; i < 100; ++i) {  // Violent phase.
    x += rng.Gaussian(0.0, 2.5);
    imm.Predict();
    ASSERT_TRUE(imm.Update(Vector{x + rng.Gaussian(0.0, 0.5)}).ok());
  }
  EXPECT_EQ(imm.MostLikelyMode(), 1u);
}

TEST(ImmTest, CombinedEstimateTracksTruth) {
  Imm imm = MakeTwoModeImm();
  Rng rng(4);
  double x = 0.0;
  double sse = 0.0;
  int count = 0;
  for (int i = 0; i < 1000; ++i) {
    double sigma = (i / 250) % 2 == 0 ? 0.1 : 2.0;  // Alternating regimes.
    x += rng.Gaussian(0.0, sigma);
    imm.Predict();
    ASSERT_TRUE(imm.Update(Vector{x + rng.Gaussian(0.0, 0.5)}).ok());
    if (i > 50) {
      double e = imm.CombinedState()[0] - x;
      sse += e * e;
      ++count;
    }
  }
  double rmse = std::sqrt(sse / count);
  EXPECT_LT(rmse, 0.6);  // Near sensor noise despite regime flips.
}

TEST(ImmTest, CombinedCovarianceIsPsdAndIncludesSpread) {
  Imm imm = MakeTwoModeImm();
  imm.Predict();
  ASSERT_TRUE(imm.Update(Vector{3.0}).ok());
  Matrix p = imm.CombinedCovariance();
  EXPECT_TRUE(IsPositiveSemiDefinite(p));
  // With disagreeing modes, combined variance >= min individual variance.
  double min_var = std::min(imm.filter(0).covariance()(0, 0),
                            imm.filter(1).covariance()(0, 0));
  EXPECT_GE(p(0, 0), min_var - 1e-12);
}

TEST(ImmTest, PredictObservationUsesCombinedState) {
  Imm imm = MakeTwoModeImm();
  imm.Predict();
  ASSERT_TRUE(imm.Update(Vector{5.0}).ok());
  EXPECT_NEAR(imm.PredictObservation()[0], imm.CombinedState()[0], 1e-12);
}

}  // namespace
}  // namespace kc
