#include "streams/resample.h"

#include <gtest/gtest.h>

#include "streams/generators.h"
#include "streams/trace.h"

namespace kc {
namespace {

Sample At(double time, double truth, double measured) {
  Sample s;
  s.truth.time = time;
  s.truth.value = Vector{truth};
  s.measured.time = time;
  s.measured.value = Vector{measured};
  return s;
}

TEST(ResampleTest, ValidatesInputs) {
  EXPECT_FALSE(ResampleTrace({}, 1.0).ok());
  EXPECT_FALSE(ResampleTrace({At(0, 1, 1)}, 1.0).ok());
  EXPECT_FALSE(ResampleTrace({At(0, 1, 1), At(1, 2, 2)}, 0.0).ok());
  EXPECT_FALSE(ResampleTrace({At(1, 1, 1), At(1, 2, 2)}, 1.0).ok());
  EXPECT_FALSE(ResampleTrace({At(2, 1, 1), At(1, 2, 2)}, 1.0).ok());
}

TEST(ResampleTest, InterpolatesLinearly) {
  std::vector<Sample> trace = {At(0.0, 0.0, 10.0), At(4.0, 8.0, 18.0)};
  auto out = ResampleTrace(trace, 1.0);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 5u);
  for (size_t k = 0; k < 5; ++k) {
    EXPECT_EQ((*out)[k].truth.seq, static_cast<int64_t>(k));
    EXPECT_DOUBLE_EQ((*out)[k].truth.time, static_cast<double>(k));
    EXPECT_DOUBLE_EQ((*out)[k].truth.scalar(), 2.0 * static_cast<double>(k));
    EXPECT_DOUBLE_EQ((*out)[k].measured.scalar(),
                     10.0 + 2.0 * static_cast<double>(k));
  }
}

TEST(ResampleTest, HandlesIrregularInput) {
  std::vector<Sample> trace = {At(0.0, 0.0, 0.0), At(0.7, 7.0, 7.0),
                               At(3.1, 31.0, 31.0), At(3.3, 33.0, 33.0)};
  auto out = ResampleTrace(trace, 1.0);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 4u);  // t = 0, 1, 2, 3.
  // The underlying signal is value = 10*t throughout.
  for (size_t k = 0; k < out->size(); ++k) {
    EXPECT_NEAR((*out)[k].truth.scalar(), 10.0 * static_cast<double>(k), 1e-9);
  }
}

TEST(ResampleTest, UpsamplesAndDownsamples) {
  std::vector<Sample> trace = {At(0.0, 0.0, 0.0), At(10.0, 10.0, 10.0)};
  auto up = ResampleTrace(trace, 0.5);
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->size(), 21u);
  auto down = ResampleTrace(trace, 5.0);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->size(), 3u);
  EXPECT_DOUBLE_EQ((*down)[1].truth.scalar(), 5.0);
}

TEST(ResampleTest, MultiDimensional) {
  Sample a;
  a.truth.time = 0.0;
  a.truth.value = Vector{0.0, 100.0};
  a.measured = a.truth;
  Sample b;
  b.truth.time = 2.0;
  b.truth.value = Vector{2.0, 104.0};
  b.measured = b.truth;
  auto out = ResampleTrace({a, b}, 1.0);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_DOUBLE_EQ((*out)[1].truth.value[0], 1.0);
  EXPECT_DOUBLE_EQ((*out)[1].truth.value[1], 102.0);
}

TEST(DropNonMonotonicTest, RemovesBackwardsAndDuplicateTimes) {
  std::vector<Sample> trace = {At(0, 1, 1), At(1, 2, 2), At(1, 3, 3),
                               At(0.5, 4, 4), At(2, 5, 5)};
  size_t dropped = 0;
  auto cleaned = DropNonMonotonic(trace, &dropped);
  EXPECT_EQ(dropped, 2u);
  ASSERT_EQ(cleaned.size(), 3u);
  EXPECT_DOUBLE_EQ(cleaned[2].truth.time, 2.0);
  EXPECT_DOUBLE_EQ(cleaned[2].truth.scalar(), 5.0);
}

TEST(DropNonMonotonicTest, CleanInputUntouched) {
  std::vector<Sample> trace = {At(0, 1, 1), At(1, 2, 2)};
  size_t dropped = 9;
  auto cleaned = DropNonMonotonic(trace, &dropped);
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(cleaned.size(), 2u);
}

TEST(ResampleTest, EndToEndWithReplay) {
  // Clean + resample + replay: the adoption pipeline for real exports.
  std::vector<Sample> messy = {At(0.0, 0.0, 0.1), At(0.9, 9.0, 9.2),
                               At(0.9, 9.5, 9.5), At(2.2, 22.0, 21.8),
                               At(3.0, 30.0, 30.1)};
  auto cleaned = DropNonMonotonic(messy);
  auto uniform = ResampleTrace(cleaned, 1.0);
  ASSERT_TRUE(uniform.ok());
  ReplayGenerator replay(*uniform, "cleaned");
  replay.Reset(0);
  Sample first = replay.Next();
  EXPECT_DOUBLE_EQ(first.truth.time, 0.0);
  EXPECT_EQ(replay.dims(), 1u);
}

}  // namespace
}  // namespace kc
