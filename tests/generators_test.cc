#include "streams/generators.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/stats.h"

namespace kc {
namespace {

std::unique_ptr<StreamGenerator> MakeByName(const std::string& name) {
  if (name == "random_walk") {
    return std::make_unique<RandomWalkGenerator>(RandomWalkGenerator::Config{});
  }
  if (name == "linear_drift") {
    return std::make_unique<LinearDriftGenerator>(LinearDriftGenerator::Config{});
  }
  if (name == "sinusoid") {
    SinusoidGenerator::Config config;
    config.amplitude_drift_sigma = 0.05;  // Give the seed something to do.
    return std::make_unique<SinusoidGenerator>(config);
  }
  if (name == "ar1") {
    return std::make_unique<Ar1Generator>(Ar1Generator::Config{});
  }
  if (name == "regime_switching") {
    return std::make_unique<RegimeSwitchingGenerator>(
        RegimeSwitchingGenerator::Config{});
  }
  if (name == "bursty_traffic") {
    return std::make_unique<BurstyTrafficGenerator>(
        BurstyTrafficGenerator::Config{});
  }
  if (name == "diurnal_temperature") {
    return std::make_unique<DiurnalTemperatureGenerator>(
        DiurnalTemperatureGenerator::Config{});
  }
  return std::make_unique<Vehicle2DGenerator>(Vehicle2DGenerator::Config{});
}

/// Parameterized over every generator family: shared invariants.
class GeneratorSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GeneratorSweepTest, DeterministicUnderSeed) {
  auto a = MakeByName(GetParam());
  auto b = MakeByName(GetParam());
  a->Reset(99);
  b->Reset(99);
  for (int i = 0; i < 200; ++i) {
    Sample sa = a->Next();
    Sample sb = b->Next();
    ASSERT_TRUE(sa.truth.value == sb.truth.value) << GetParam() << " @" << i;
    ASSERT_EQ(sa.truth.seq, sb.truth.seq);
  }
}

TEST_P(GeneratorSweepTest, DifferentSeedsDiverge) {
  auto a = MakeByName(GetParam());
  auto b = MakeByName(GetParam());
  a->Reset(1);
  b->Reset(2);
  bool diverged = false;
  for (int i = 0; i < 500 && !diverged; ++i) {
    if (!(a->Next().truth.value == b->Next().truth.value)) diverged = true;
  }
  // The pure deterministic part (seq 0) may match; later values must not
  // all coincide. (LinearDrift with tiny wobble still wobbles.)
  EXPECT_TRUE(diverged) << GetParam();
}

TEST_P(GeneratorSweepTest, SequenceNumbersAndTimesAdvance) {
  auto gen = MakeByName(GetParam());
  gen->Reset(7);
  double prev_time = -1.0;
  for (int64_t i = 0; i < 100; ++i) {
    Sample s = gen->Next();
    EXPECT_EQ(s.truth.seq, i);
    EXPECT_GT(s.truth.time, prev_time);
    prev_time = s.truth.time;
    ASSERT_EQ(s.truth.value.size(), gen->dims());
    ASSERT_TRUE(s.measured.value == s.truth.value)
        << "bare generators emit noiseless measurements";
    for (size_t d = 0; d < s.truth.value.size(); ++d) {
      ASSERT_TRUE(std::isfinite(s.truth.value[d]));
    }
  }
}

TEST_P(GeneratorSweepTest, CloneThenResetReproduces) {
  auto gen = MakeByName(GetParam());
  auto clone = gen->Clone();
  gen->Reset(42);
  clone->Reset(42);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(gen->Next().truth.value == clone->Next().truth.value);
  }
}

TEST_P(GeneratorSweepTest, ResetRestartsStream) {
  auto gen = MakeByName(GetParam());
  gen->Reset(5);
  std::vector<double> first;
  for (int i = 0; i < 50; ++i) first.push_back(gen->Next().truth.scalar());
  gen->Reset(5);
  for (int i = 0; i < 50; ++i) {
    ASSERT_DOUBLE_EQ(gen->Next().truth.scalar(), first[static_cast<size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, GeneratorSweepTest,
    ::testing::Values("random_walk", "linear_drift", "sinusoid", "ar1",
                      "regime_switching", "bursty_traffic",
                      "diurnal_temperature", "vehicle_2d"));

TEST(RandomWalkTest, DriftAccumulates) {
  RandomWalkGenerator::Config config;
  config.drift = 1.0;
  config.step_sigma = 0.0;
  RandomWalkGenerator gen(config);
  gen.Reset(1);
  Sample last;
  for (int i = 0; i < 11; ++i) last = gen.Next();
  EXPECT_DOUBLE_EQ(last.truth.scalar(), 10.0);
}

TEST(LinearDriftTest, PureLineWithoutWobble) {
  LinearDriftGenerator::Config config;
  config.start = 2.0;
  config.slope = 0.5;
  config.wobble_sigma = 0.0;
  LinearDriftGenerator gen(config);
  gen.Reset(1);
  gen.Next();
  gen.Next();
  EXPECT_DOUBLE_EQ(gen.Next().truth.scalar(), 2.0 + 0.5 * 2.0);
}

TEST(SinusoidTest, PeriodAndAmplitude) {
  SinusoidGenerator::Config config;
  config.offset = 1.0;
  config.amplitude = 3.0;
  config.period = 4.0;  // Ticks 0..3 cover one cycle.
  config.amplitude_drift_sigma = 0.0;
  SinusoidGenerator gen(config);
  gen.Reset(1);
  EXPECT_NEAR(gen.Next().truth.scalar(), 1.0, 1e-12);        // sin(0)
  EXPECT_NEAR(gen.Next().truth.scalar(), 4.0, 1e-12);        // sin(pi/2)
  EXPECT_NEAR(gen.Next().truth.scalar(), 1.0, 1e-12);        // sin(pi)
  EXPECT_NEAR(gen.Next().truth.scalar(), -2.0, 1e-12);       // sin(3pi/2)
}

TEST(Ar1Test, MeanRevertsAndIsStationary) {
  Ar1Generator::Config config;
  config.mean = 10.0;
  config.phi = 0.9;
  config.sigma = 1.0;
  Ar1Generator gen(config);
  gen.Reset(3);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(gen.Next().truth.scalar());
  EXPECT_NEAR(stats.mean(), 10.0, 0.5);
  // Stationary variance sigma^2/(1-phi^2) = 1/0.19 ≈ 5.26.
  EXPECT_NEAR(stats.variance(), 1.0 / (1.0 - 0.81), 1.0);
}

TEST(RegimeSwitchingTest, VolatilityChangesOnSchedule) {
  RegimeSwitchingGenerator::Config config;
  config.regimes = {{500, 0.1, 0.0}, {500, 5.0, 0.0}};
  RegimeSwitchingGenerator gen(config);
  gen.Reset(4);
  RunningStats quiet, loud;
  double prev = gen.Next().truth.scalar();
  for (int i = 1; i < 1000; ++i) {
    double v = gen.Next().truth.scalar();
    (i < 500 ? quiet : loud).Add(std::fabs(v - prev));
    prev = v;
  }
  EXPECT_LT(quiet.mean() * 10.0, loud.mean());
}

TEST(RegimeSwitchingTest, RegimesCycle) {
  RegimeSwitchingGenerator::Config config;
  config.regimes = {{10, 0.1, 0.0}, {10, 1.0, 0.0}};
  RegimeSwitchingGenerator gen(config);
  gen.Reset(5);
  for (int i = 0; i < 10; ++i) gen.Next();
  EXPECT_EQ(gen.current_regime(), 1u);
  for (int i = 0; i < 10; ++i) gen.Next();
  EXPECT_EQ(gen.current_regime(), 0u);
}

TEST(BurstyTrafficTest, NonNegativeAndBursty) {
  BurstyTrafficGenerator gen(BurstyTrafficGenerator::Config{});
  gen.Reset(6);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    double v = gen.Next().truth.scalar();
    ASSERT_GE(v, 0.0);
    stats.Add(v);
  }
  // Heavy right tail: max far above mean.
  EXPECT_GT(stats.max(), 3.0 * stats.mean());
}

TEST(DiurnalTemperatureTest, DailyCycleVisible) {
  DiurnalTemperatureGenerator::Config config;
  config.weather_sigma = 0.0;
  config.mean = 18.0;
  config.daily_amplitude = 6.0;
  config.day_length = 288.0;
  DiurnalTemperatureGenerator gen(config);
  gen.Reset(7);
  double min_v = 1e9, max_v = -1e9;
  for (int i = 0; i < 288; ++i) {
    double v = gen.Next().truth.scalar();
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  EXPECT_NEAR(min_v, 12.0, 0.1);
  EXPECT_NEAR(max_v, 24.0, 0.1);
}

TEST(Vehicle2DTest, SpeedBoundsStepDistance) {
  Vehicle2DGenerator::Config config;
  Vehicle2DGenerator gen(config);
  gen.Reset(8);
  Sample prev = gen.Next();
  for (int i = 0; i < 1000; ++i) {
    Sample cur = gen.Next();
    double dx = cur.truth.value[0] - prev.truth.value[0];
    double dy = cur.truth.value[1] - prev.truth.value[1];
    double dist = std::hypot(dx, dy);
    ASSERT_LE(dist, 2.0 * config.speed_mean + 1e-9);
    prev = cur;
  }
}

TEST(Vehicle2DTest, ActuallyMoves) {
  Vehicle2DGenerator gen(Vehicle2DGenerator::Config{});
  gen.Reset(9);
  Sample first = gen.Next();
  Sample last;
  for (int i = 0; i < 500; ++i) last = gen.Next();
  double dist = std::hypot(last.truth.value[0] - first.truth.value[0],
                           last.truth.value[1] - first.truth.value[1]);
  EXPECT_GT(dist, 10.0);
}

}  // namespace
}  // namespace kc
