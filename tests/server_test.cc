#include "server/server.h"

#include <gtest/gtest.h>

#include "suppression/policies.h"

namespace kc {
namespace {

Message InitMessage(int32_t source, double delta, double value) {
  Message msg;
  msg.source_id = source;
  msg.type = MessageType::kInit;
  msg.seq = 0;
  msg.time = 0.0;
  msg.payload = {delta, value};
  return msg;
}

Message CorrectionMessage(int32_t source, int64_t seq, double delta,
                          double value) {
  Message msg;
  msg.source_id = source;
  msg.type = MessageType::kCorrection;
  msg.seq = seq;
  msg.time = static_cast<double>(seq);
  msg.payload = {delta, value};
  return msg;
}

TEST(StreamServerTest, RegisterAndDuplicate) {
  StreamServer server;
  EXPECT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  EXPECT_FALSE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                   .ok());
  EXPECT_FALSE(server.RegisterSource(1, nullptr).ok());
  EXPECT_EQ(server.num_sources(), 1u);
}

TEST(StreamServerTest, UnregisterRemoves) {
  StreamServer server;
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  EXPECT_TRUE(server.UnregisterSource(0).ok());
  EXPECT_FALSE(server.UnregisterSource(0).ok());
  EXPECT_EQ(server.num_sources(), 0u);
}

TEST(StreamServerTest, SourceValueLifecycle) {
  StreamServer server;
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  EXPECT_FALSE(server.SourceValue(0).ok());  // Not initialized yet.
  EXPECT_FALSE(server.SourceValue(99).ok()); // Unknown.

  ASSERT_TRUE(server.OnMessage(InitMessage(0, 0.5, 3.0)).ok());
  auto answer = server.SourceValue(0);
  ASSERT_TRUE(answer.ok());
  EXPECT_DOUBLE_EQ(answer->value[0], 3.0);
  EXPECT_DOUBLE_EQ(answer->bound, 0.5);
  EXPECT_EQ(answer->last_heard_seq, 0);
}

TEST(StreamServerTest, MessageRoutingAndErrors) {
  StreamServer server;
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  EXPECT_FALSE(server.OnMessage(InitMessage(42, 0.5, 1.0)).ok());
  ASSERT_TRUE(server.OnMessage(InitMessage(0, 0.5, 1.0)).ok());
  ASSERT_TRUE(server.OnMessage(CorrectionMessage(0, 3, 0.5, 2.0)).ok());
  EXPECT_DOUBLE_EQ(server.SourceValue(0)->value[0], 2.0);
  EXPECT_EQ(server.messages_processed(), 2);
}

TEST(StreamServerTest, TickAdvancesReplicas) {
  StreamServer server;
  ASSERT_TRUE(
      server.RegisterSource(0, std::make_unique<LinearPredictor>()).ok());
  ASSERT_TRUE(server.OnMessage(InitMessage(0, 0.5, 0.0)).ok());
  ASSERT_TRUE(server.OnMessage(CorrectionMessage(0, 1, 0.5, 2.0)).ok());
  // Linear predictor now has slope 2; two ticks should add 4.
  server.Tick();
  server.Tick();
  EXPECT_DOUBLE_EQ(server.SourceValue(0)->value[0], 6.0);
  EXPECT_EQ(server.ticks(), 2);
}

StreamServer MakeThreeSourceServer() {
  StreamServer server;
  for (int32_t id = 0; id < 3; ++id) {
    EXPECT_TRUE(
        server.RegisterSource(id, std::make_unique<ValueCachePredictor>()).ok());
    EXPECT_TRUE(server
                    .OnMessage(InitMessage(id, 0.5 * (id + 1),
                                           10.0 * (id + 1)))
                    .ok());
  }
  return server;
}

TEST(StreamServerTest, AddQueryValidation) {
  StreamServer server = MakeThreeSourceServer();
  QuerySpec spec;
  spec.kind = AggregateKind::kAvg;
  spec.sources = {0, 1, 2};
  EXPECT_TRUE(server.AddQuery("avg_all", spec).ok());
  EXPECT_FALSE(server.AddQuery("avg_all", spec).ok());  // Duplicate name.

  QuerySpec bad;
  bad.kind = AggregateKind::kSum;
  bad.sources = {0, 99};
  EXPECT_FALSE(server.AddQuery("bad", bad).ok());  // Unknown source.

  EXPECT_EQ(server.num_queries(), 1u);
  EXPECT_EQ(server.QueryNames(), std::vector<std::string>{"avg_all"});
}

TEST(StreamServerTest, AggregateEvaluation) {
  StreamServer server = MakeThreeSourceServer();
  // Values 10, 20, 30 with bounds 0.5, 1.0, 1.5.
  QuerySpec sum;
  sum.kind = AggregateKind::kSum;
  sum.sources = {0, 1, 2};
  auto result = server.EvaluateSpec(sum, "sum");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->value, 60.0);
  EXPECT_DOUBLE_EQ(result->bound, 3.0);

  QuerySpec avg = sum;
  avg.kind = AggregateKind::kAvg;
  result = server.EvaluateSpec(avg, "avg");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->value, 20.0);
  EXPECT_DOUBLE_EQ(result->bound, 1.0);

  QuerySpec mx = sum;
  mx.kind = AggregateKind::kMax;
  result = server.EvaluateSpec(mx, "max");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->value, 30.0);
  EXPECT_DOUBLE_EQ(result->bound, 1.5);
}

TEST(StreamServerTest, WithinCheckAndTrigger) {
  StreamServer server = MakeThreeSourceServer();
  QuerySpec spec;
  spec.kind = AggregateKind::kSum;
  spec.sources = {0, 1, 2};
  spec.within = 2.0;  // Actual bound is 3.0: not met.
  spec.threshold = 50.0;
  spec.above = true;
  auto result = server.EvaluateSpec(spec, "q");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->meets_within);
  ASSERT_TRUE(result->trigger.has_value());
  EXPECT_EQ(*result->trigger, TriggerState::kYes);  // 60 - 3 > 50.
}

TEST(StreamServerTest, EvaluateAllAndRemove) {
  StreamServer server = MakeThreeSourceServer();
  QuerySpec spec;
  spec.kind = AggregateKind::kMin;
  spec.sources = {0, 1};
  ASSERT_TRUE(server.AddQuery("m", spec).ok());
  auto results = server.EvaluateAll();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].value, 10.0);
  EXPECT_TRUE(server.RemoveQuery("m").ok());
  EXPECT_FALSE(server.RemoveQuery("m").ok());
}

TEST(StreamServerTest, EvaluateUnknownQueryFails) {
  StreamServer server;
  EXPECT_FALSE(server.Evaluate("nope").ok());
}

TEST(StreamServerTest, QueryOnUninitializedSourceFails) {
  StreamServer server;
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  QuerySpec spec;
  spec.kind = AggregateKind::kValue;
  spec.sources = {0};
  EXPECT_FALSE(server.EvaluateSpec(spec, "v").ok());
}

TEST(StreamServerTest, UnregisterErasesArchiveForIdReuse) {
  // Regression: UnregisterSource used to leave the source's TickArchive
  // behind, so re-registering the same id resumed the dead source's
  // history (and Record's non-decreasing-time invariant could fire after
  // a snapshot restore rewound the clock).
  StreamServer server;
  server.EnableArchiving(16);
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  ASSERT_TRUE(server.OnMessage(InitMessage(0, 0.5, 1.0)).ok());
  for (int i = 0; i < 5; ++i) server.Tick();
  ASSERT_TRUE(server.Archive(0).ok());
  ASSERT_EQ((*server.Archive(0))->size(), 5u);

  ASSERT_TRUE(server.UnregisterSource(0).ok());
  EXPECT_FALSE(server.Archive(0).ok()) << "archive must die with the source";

  // Re-register the same id: a fresh history, not the dead source's.
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  EXPECT_FALSE(server.Archive(0).ok());
  ASSERT_TRUE(server.OnMessage(InitMessage(0, 0.5, 7.0)).ok());
  server.Tick();
  auto archive = server.Archive(0);
  ASSERT_TRUE(archive.ok());
  EXPECT_EQ((*archive)->size(), 1u);
  EXPECT_EQ((*archive)->total_recorded(), 1);

  // Snapshot-restore style id reuse onto a rewound clock: with the stale
  // archive erased, restoring earlier points must be accepted.
  ASSERT_TRUE(server.UnregisterSource(0).ok());
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  EXPECT_TRUE(server.RestoreArchivePoint(0, 1.0, 2.0, 0.5).ok());
  archive = server.Archive(0);
  ASSERT_TRUE(archive.ok());
  EXPECT_DOUBLE_EQ((*archive)->oldest_time(), 1.0);
}

TEST(StreamServerTest, LastWindowLargerThanHistoryClamps) {
  // Regression: LAST n with n > ticks computed from = ticks - n + 1 < 0
  // instead of clamping to the archive's oldest recorded time.
  StreamServer server;
  server.EnableArchiving(8);
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  ASSERT_TRUE(server.OnMessage(InitMessage(0, 0.5, 3.0)).ok());
  for (int i = 0; i < 4; ++i) server.Tick();  // Archive holds t = 1..4.

  QuerySpec spec;
  spec.kind = AggregateKind::kAvg;
  spec.sources = {0};
  spec.last_ticks = 1000;  // Far more history than exists.
  auto result = server.EvaluateSpec(spec, "last");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->value, 3.0);

  // The clamped window is exactly the recorded range: same answer as an
  // explicit FROM oldest TO now.
  auto full = server.HistoricalAggregate(0, AggregateKind::kAvg, 1.0, 4.0);
  ASSERT_TRUE(full.ok());
  EXPECT_DOUBLE_EQ(result->value, full->value);
  EXPECT_DOUBLE_EQ(result->bound, full->bound);

  // A LAST window within history still covers exactly n ticks.
  spec.last_ticks = 2;
  result = server.EvaluateSpec(spec, "last2");
  ASSERT_TRUE(result.ok());
  auto tail = server.HistoricalAggregate(0, AggregateKind::kAvg, 3.0, 4.0);
  ASSERT_TRUE(tail.ok());
  EXPECT_DOUBLE_EQ(result->value, tail->value);
}

TEST(StreamServerTest, AggregateOverPlanarSourceRejected) {
  StreamServer server;
  KalmanPredictor::Config config;
  config.model = MakeConstantVelocity2DModel(1.0, 0.1, 0.5);
  ASSERT_TRUE(
      server.RegisterSource(0, std::make_unique<KalmanPredictor>(config)).ok());
  QuerySpec spec;
  spec.kind = AggregateKind::kValue;
  spec.sources = {0};
  EXPECT_FALSE(server.AddQuery("v", spec).ok());
}

}  // namespace
}  // namespace kc
