// Tests for channel latency simulation and the replica's sequencing guard.

#include <gtest/gtest.h>

#include "net/channel.h"
#include "server/simulation.h"
#include "streams/generators.h"
#include "suppression/policies.h"
#include "suppression/replica.h"

namespace kc {
namespace {

Message MakeMsg(int64_t seq) {
  Message msg;
  msg.source_id = 0;
  msg.type = MessageType::kCorrection;
  msg.seq = seq;
  msg.payload = {1.0, static_cast<double>(seq)};
  return msg;
}

TEST(LatencyChannelTest, ZeroLatencyDeliversInline) {
  Channel channel;
  int delivered = 0;
  channel.SetReceiver([&delivered](const Message&) { ++delivered; });
  ASSERT_TRUE(channel.Send(MakeMsg(1)).ok());
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(channel.in_flight(), 0u);
}

TEST(LatencyChannelTest, DelaysDeliveryByConfiguredTicks) {
  Channel::Config config;
  config.latency_ticks = 3;
  Channel channel(config);
  int delivered = 0;
  channel.SetReceiver([&delivered](const Message&) { ++delivered; });
  ASSERT_TRUE(channel.Send(MakeMsg(1)).ok());
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(channel.in_flight(), 1u);
  channel.AdvanceTick();
  channel.AdvanceTick();
  EXPECT_EQ(delivered, 0);
  channel.AdvanceTick();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(channel.in_flight(), 0u);
}

TEST(LatencyChannelTest, PreservesSendOrder) {
  Channel::Config config;
  config.latency_ticks = 2;
  Channel channel(config);
  std::vector<int64_t> seen;
  channel.SetReceiver([&seen](const Message& m) { seen.push_back(m.seq); });
  ASSERT_TRUE(channel.Send(MakeMsg(1)).ok());
  channel.AdvanceTick();
  ASSERT_TRUE(channel.Send(MakeMsg(2)).ok());
  channel.AdvanceTick();  // Delivers 1.
  channel.AdvanceTick();  // Delivers 2.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 1);
  EXPECT_EQ(seen[1], 2);
}

TEST(LatencyChannelTest, StatsCountDeliveryNotSend) {
  Channel::Config config;
  config.latency_ticks = 5;
  Channel channel(config);
  channel.SetReceiver([](const Message&) {});
  ASSERT_TRUE(channel.Send(MakeMsg(1)).ok());
  EXPECT_EQ(channel.stats().messages_sent, 1);
  EXPECT_EQ(channel.stats().messages_delivered, 0);
  for (int i = 0; i < 5; ++i) channel.AdvanceTick();
  EXPECT_EQ(channel.stats().messages_delivered, 1);
}

TEST(ReplicaGuardTest, IgnoresOutOfOrderMessages) {
  ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
  Message init;
  init.source_id = 0;
  init.type = MessageType::kInit;
  init.seq = 0;
  init.payload = {1.0, 5.0};
  ASSERT_TRUE(replica.OnMessage(init).ok());

  Message newer = MakeMsg(10);
  ASSERT_TRUE(replica.OnMessage(newer).ok());
  EXPECT_DOUBLE_EQ(replica.Value()[0], 10.0);

  Message stale = MakeMsg(4);  // Arrives late; must be dropped.
  ASSERT_TRUE(replica.OnMessage(stale).ok());
  EXPECT_DOUBLE_EQ(replica.Value()[0], 10.0);
  EXPECT_EQ(replica.messages_ignored(), 1);
  EXPECT_EQ(replica.last_heard_seq(), 10);
}

TEST(LatencyLinkTest, LatencyDegradesButDoesNotBreakTracking) {
  RandomWalkGenerator::Config walk;
  walk.step_sigma = 0.3;

  LinkConfig lossless;
  lossless.ticks = 5000;
  lossless.delta = 1.0;
  lossless.seed = 3;

  RandomWalkGenerator stream_a(walk);
  ValueCachePredictor proto_a;
  LinkReport instant = RunLink(stream_a, proto_a, lossless);

  LinkConfig delayed = lossless;
  delayed.channel.latency_ticks = 5;
  RandomWalkGenerator stream_b(walk);
  ValueCachePredictor proto_b;
  LinkReport lagged = RunLink(stream_b, proto_b, delayed);

  // Same number of corrections are *sent* (the client's decisions don't
  // depend on latency)...
  EXPECT_EQ(lagged.messages, instant.messages);
  // ...but the server's view lags during transit, so errors and apparent
  // contract violations appear.
  EXPECT_GT(lagged.err_vs_target.max(), instant.err_vs_target.max());
  EXPECT_GT(lagged.contract_violations, 0);
  // Yet tracking remains bounded: roughly delta + latency * typical step.
  EXPECT_LT(lagged.err_vs_target.max(), 1.0 + 5 * 4 * walk.step_sigma);
}

TEST(StalenessTest, ServerFlagsSilentSources) {
  StreamServer server;
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  server.SetStalenessLimit(10);

  Message init;
  init.source_id = 0;
  init.type = MessageType::kInit;
  init.seq = 0;
  init.payload = {0.5, 1.0};
  ASSERT_TRUE(server.OnMessage(init).ok());
  EXPECT_FALSE(server.IsStale(0));

  QuerySpec spec;
  spec.kind = AggregateKind::kValue;
  spec.sources = {0};
  ASSERT_TRUE(server.AddQuery("v", spec).ok());

  for (int i = 0; i < 10; ++i) server.Tick();
  EXPECT_FALSE(server.IsStale(0));  // Exactly at the limit: not yet stale.
  auto fresh = server.Evaluate("v");
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->stale);

  server.Tick();  // Now beyond the limit.
  EXPECT_TRUE(server.IsStale(0));
  auto stale = server.Evaluate("v");
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale->stale);
  EXPECT_NE(stale->ToString().find("STALE"), std::string::npos);

  // A heartbeat refreshes liveness.
  Message hb;
  hb.source_id = 0;
  hb.type = MessageType::kHeartbeat;
  hb.seq = 1;
  ASSERT_TRUE(server.OnMessage(hb).ok());
  EXPECT_FALSE(server.IsStale(0));
}

TEST(EvaluateDueTest, RespectsEveryCadence) {
  StreamServer server;
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  Message init;
  init.source_id = 0;
  init.type = MessageType::kInit;
  init.seq = 0;
  init.payload = {0.5, 1.0};
  ASSERT_TRUE(server.OnMessage(init).ok());

  QuerySpec every1;
  every1.kind = AggregateKind::kValue;
  every1.sources = {0};
  QuerySpec every5 = every1;
  every5.every = 5;
  ASSERT_TRUE(server.AddQuery("fast", every1).ok());
  ASSERT_TRUE(server.AddQuery("slow", every5).ok());

  int fast_evals = 0, slow_evals = 0;
  for (int t = 0; t < 20; ++t) {
    server.Tick();
    for (const QueryResult& r : server.EvaluateDue()) {
      if (r.name == "fast") ++fast_evals;
      if (r.name == "slow") ++slow_evals;
    }
  }
  EXPECT_EQ(fast_evals, 20);
  EXPECT_EQ(slow_evals, 4);
}

TEST(EvaluateDueTest, UnevaluableQueriesRetry) {
  StreamServer server;
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  QuerySpec spec;
  spec.kind = AggregateKind::kValue;
  spec.sources = {0};
  spec.every = 5;
  ASSERT_TRUE(server.AddQuery("v", spec).ok());

  // Source not initialized: nothing is due-able, but the query must not
  // be marked as evaluated.
  server.Tick();
  EXPECT_TRUE(server.EvaluateDue().empty());

  Message init;
  init.source_id = 0;
  init.type = MessageType::kInit;
  init.seq = 0;
  init.payload = {0.5, 1.0};
  ASSERT_TRUE(server.OnMessage(init).ok());
  server.Tick();
  EXPECT_EQ(server.EvaluateDue().size(), 1u);  // Fires as soon as possible.
}

}  // namespace
}  // namespace kc
