#include "kalman/ekf.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "kalman/kalman_filter.h"
#include "linalg/decomp.h"

namespace kc {
namespace {

/// Wraps a linear model as a NonlinearModel; the EKF must then match the
/// linear KF exactly.
NonlinearModel WrapLinear(const StateSpaceModel& linear) {
  NonlinearModel m;
  m.name = linear.name + "_wrapped";
  m.state_dim = linear.state_dim();
  m.obs_dim = linear.obs_dim();
  Matrix f = linear.f;
  Matrix h = linear.h;
  m.f = [f](const Vector& x) { return f * x; };
  m.f_jacobian = [f](const Vector&) { return f; };
  m.h = [h](const Vector& x) { return h * x; };
  m.h_jacobian = [h](const Vector&) { return h; };
  m.q = linear.q;
  m.r = linear.r;
  return m;
}

TEST(NonlinearModelTest, ValidateChecksEverything) {
  NonlinearModel m = MakeCoordinatedTurnModel(1.0, 0.01, 0.05, 0.001, 1.0);
  EXPECT_TRUE(m.Validate().ok());

  NonlinearModel broken = m;
  broken.f = nullptr;
  EXPECT_FALSE(broken.Validate().ok());

  broken = m;
  broken.q = Matrix(2, 2);
  EXPECT_FALSE(broken.Validate().ok());

  broken = m;
  broken.r = Matrix::Zero(2, 2);  // Not PD.
  EXPECT_FALSE(broken.Validate().ok());
}

TEST(EkfTest, MatchesLinearKalmanOnLinearModel) {
  StateSpaceModel linear = MakeConstantVelocityModel(1.0, 0.1, 0.5);
  KalmanFilter kf(linear, Vector{0.0, 1.0}, Matrix::Identity(2));
  ExtendedKalmanFilter ekf(WrapLinear(linear), Vector{0.0, 1.0},
                           Matrix::Identity(2));
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    double z = rng.Gaussian(static_cast<double>(i), 0.5);
    kf.Predict();
    ekf.Predict();
    ASSERT_TRUE(kf.Update(Vector{z}).ok());
    ASSERT_TRUE(ekf.Update(Vector{z}).ok());
    ASSERT_TRUE(AlmostEqual(kf.state(), ekf.state(), 1e-10)) << "i=" << i;
    ASSERT_TRUE(AlmostEqual(kf.covariance(), ekf.covariance(), 1e-10));
    ASSERT_NEAR(kf.last_nis(), ekf.last_nis(), 1e-10);
    ASSERT_NEAR(kf.last_log_likelihood(), ekf.last_log_likelihood(), 1e-10);
  }
}

TEST(EkfTest, TracksCircularMotion) {
  // A target circling at constant speed and turn rate; the coordinated-
  // turn EKF should track it far better than a straight-line projection.
  double dt = 1.0, speed = 5.0, omega = 0.05;
  NonlinearModel model =
      MakeCoordinatedTurnModel(dt, 0.01, 0.01, 1e-5, 0.25);
  Vector x0(5);
  x0[2] = speed;
  x0[4] = omega;
  ExtendedKalmanFilter ekf(model, x0, Matrix::ScalarDiagonal(5, 1.0));

  Rng rng(2);
  double theta = 0.0, px = 0.0, py = 0.0;
  RunningStats err;
  for (int i = 0; i < 500; ++i) {
    px += speed * std::cos(theta) * dt;
    py += speed * std::sin(theta) * dt;
    theta += omega * dt;
    Vector z{px + rng.Gaussian(0.0, 0.5), py + rng.Gaussian(0.0, 0.5)};
    ekf.Predict();
    ASSERT_TRUE(ekf.Update(z).ok());
    if (i > 50) {
      err.Add(std::hypot(ekf.state()[0] - px, ekf.state()[1] - py));
    }
  }
  EXPECT_LT(err.mean(), 0.5);  // Within sensor noise scale.
  // It should also have learned the turn rate.
  EXPECT_NEAR(ekf.state()[4], omega, 0.01);
}

TEST(EkfTest, CovarianceStaysPsd) {
  NonlinearModel model = MakeCoordinatedTurnModel(1.0, 0.01, 0.05, 1e-4, 0.5);
  Vector x0(5);
  x0[2] = 3.0;
  ExtendedKalmanFilter ekf(model, x0, Matrix::ScalarDiagonal(5, 10.0));
  Rng rng(3);
  double theta = 0.0, px = 0.0, py = 0.0;
  for (int i = 0; i < 2000; ++i) {
    px += 3.0 * std::cos(theta);
    py += 3.0 * std::sin(theta);
    theta += rng.Gaussian(0.0, 0.02);
    ekf.Predict();
    ASSERT_TRUE(
        ekf.Update(Vector{px + rng.Gaussian(0.0, 0.7),
                          py + rng.Gaussian(0.0, 0.7)})
            .ok());
  }
  EXPECT_TRUE(IsPositiveSemiDefinite(ekf.covariance()));
}

TEST(EkfTest, RejectsWrongObservationDim) {
  NonlinearModel model = MakeCoordinatedTurnModel(1.0, 0.01, 0.05, 1e-4, 0.5);
  ExtendedKalmanFilter ekf(model, Vector(5), Matrix::ScalarDiagonal(5, 1.0));
  EXPECT_FALSE(ekf.Update(Vector{1.0}).ok());
}

TEST(EkfTest, SerializeRoundTrip) {
  NonlinearModel model = MakeCoordinatedTurnModel(1.0, 0.01, 0.05, 1e-4, 0.5);
  ExtendedKalmanFilter a(model, Vector(5), Matrix::ScalarDiagonal(5, 1.0));
  a.Predict();
  ASSERT_TRUE(a.Update(Vector{1.0, 2.0}).ok());

  ExtendedKalmanFilter b(model, Vector(5), Matrix::ScalarDiagonal(5, 9.0));
  ASSERT_TRUE(b.DeserializeState(a.SerializeState()).ok());
  EXPECT_TRUE(AlmostEqual(a.state(), b.state(), 1e-15));
  EXPECT_TRUE(AlmostEqual(a.covariance(), b.covariance(), 1e-15));
  EXPECT_FALSE(b.DeserializeState({1.0, 2.0}).ok());
}

TEST(EkfTest, ResetClearsDiagnostics) {
  NonlinearModel model = MakeCoordinatedTurnModel(1.0, 0.01, 0.05, 1e-4, 0.5);
  ExtendedKalmanFilter ekf(model, Vector(5), Matrix::ScalarDiagonal(5, 1.0));
  ekf.Predict();
  ASSERT_TRUE(ekf.Update(Vector{1.0, 1.0}).ok());
  EXPECT_EQ(ekf.update_count(), 1);
  ekf.Reset(Vector(5), Matrix::ScalarDiagonal(5, 2.0));
  EXPECT_EQ(ekf.update_count(), 0);
  EXPECT_DOUBLE_EQ(ekf.covariance()(0, 0), 2.0);
}

}  // namespace
}  // namespace kc
