#include "kalman/model_bank.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace kc {
namespace {

ModelBank MakeBank() {
  ModelBank bank(/*window=*/32);
  bank.AddFilter(KalmanFilter(MakeRandomWalkModel(0.01, 1.0), Vector{0.0},
                              Matrix{{10.0}}));
  bank.AddFilter(KalmanFilter(MakeConstantVelocityModel(1.0, 0.01, 1.0),
                              Vector{0.0, 0.0}, Matrix::ScalarDiagonal(2, 10.0)));
  return bank;
}

TEST(ModelBankTest, EmptyAndSize) {
  ModelBank bank;
  EXPECT_TRUE(bank.empty());
  bank = MakeBank();
  EXPECT_EQ(bank.size(), 2u);
  EXPECT_EQ(bank.active_index(), 0u);
}

TEST(ModelBankTest, PicksConstantVelocityOnTrendingStream) {
  ModelBank bank = MakeBank();
  Rng rng(1);
  double truth = 0.0;
  for (int i = 0; i < 300; ++i) {
    truth += 0.8;  // Strong linear trend.
    bank.Predict();
    ASSERT_TRUE(bank.Update(Vector{truth + rng.Gaussian(0.0, 0.3)}).ok());
  }
  EXPECT_EQ(bank.active_index(), 1u) << "CV model should win on a ramp";
}

TEST(ModelBankTest, PicksRandomWalkOnDriftlessStream) {
  ModelBank bank = MakeBank();
  Rng rng(2);
  double truth = 0.0;
  for (int i = 0; i < 300; ++i) {
    truth += rng.Gaussian(0.0, 0.05);
    bank.Predict();
    ASSERT_TRUE(bank.Update(Vector{truth + rng.Gaussian(0.0, 1.0)}).ok());
  }
  EXPECT_EQ(bank.active_index(), 0u) << "RW model should win on drifting noise";
}

TEST(ModelBankTest, SwitchesWhenRegimeChanges) {
  ModelBank bank = MakeBank();
  Rng rng(3);
  double truth = 0.0;
  // Phase 1: flat noise (random walk wins).
  for (int i = 0; i < 200; ++i) {
    truth += rng.Gaussian(0.0, 0.05);
    bank.Predict();
    ASSERT_TRUE(bank.Update(Vector{truth + rng.Gaussian(0.0, 1.0)}).ok());
  }
  size_t active_flat = bank.active_index();
  // Phase 2: strong ramp (constant velocity should take over).
  for (int i = 0; i < 200; ++i) {
    truth += 1.0;
    bank.Predict();
    ASSERT_TRUE(bank.Update(Vector{truth + rng.Gaussian(0.0, 0.3)}).ok());
  }
  EXPECT_NE(bank.active_index(), active_flat);
  EXPECT_GE(bank.switch_count(), 1);
}

TEST(ModelBankTest, ActivePredictionComesFromActiveFilter) {
  ModelBank bank = MakeBank();
  bank.Predict();
  ASSERT_TRUE(bank.Update(Vector{2.0}).ok());
  Vector from_bank = bank.PredictObservation();
  Vector from_active = bank.active().PredictObservation();
  EXPECT_TRUE(AlmostEqual(from_bank, from_active, 0.0));
}

TEST(ModelBankTest, ScoreOfUnupdatedFilterIsFloor) {
  ModelBank bank = MakeBank();
  EXPECT_LT(bank.Score(0), -1e200);
}

}  // namespace
}  // namespace kc
