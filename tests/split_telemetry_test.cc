// End-to-end distributed-telemetry test: a split deployment (client and
// server halves over real loopback sockets) with the telemetry plane on
// must produce merged kc.remote.client.* rows on the server, a usable
// clock-offset estimate with an honest error bar, one-way wire-latency
// joins for every delivered uplink message, and a stitched Chrome trace
// whose causal flows cross the process boundary.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/split_deploy.h"
#include "streams/generators.h"
#include "suppression/policies.h"
#include "suppression/predictor.h"

namespace kc {
namespace {

KalmanPredictor::Config TestKalman() {
  KalmanPredictor::Config config;
  config.model = MakeRandomWalkModel(0.1, 0.5);
  config.sync_mode = KalmanPredictor::SyncMode::kMeasurement;
  return config;
}

struct SplitRun {
  StatusOr<SplitClientReport> client = Status::Internal("not run");
  StatusOr<SplitServerReport> server = Status::Internal("not run");
};

SplitRun RunSplitPair(const SplitConfig& config) {
  auto make_generator = [](int32_t id) -> std::unique_ptr<StreamGenerator> {
    RandomWalkGenerator::Config walk;
    walk.start = 5.0 * id;
    walk.step_sigma = 0.25;
    return std::make_unique<RandomWalkGenerator>(walk);
  };
  auto make_predictor = [](int32_t) -> std::unique_ptr<Predictor> {
    return std::make_unique<KalmanPredictor>(TestKalman());
  };

  SplitRun run;
  std::thread server([&] {
    run.server = RunSplitServer(config, make_predictor);
  });
  for (int attempt = 0; attempt < 100; ++attempt) {
    run.client = RunSplitClient(config, make_generator, make_predictor);
    if (run.client.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.join();
  return run;
}

TEST(SplitTelemetryTest, SnapshotsMergeAndLatenciesJoinOverLoopback) {
  SplitConfig config;
  config.host = "127.0.0.1";
  config.port = 39217;
  config.ticks = 64;
  config.num_sources = 3;
  config.deltas = {0.3, 0.5, 0.7};
  config.agent_base.heartbeat_every = 5;
  config.agent_base.full_sync_every = 16;
  config.accept_timeout_ms = 10000;
  config.telemetry_every = 8;
  config.trace = true;

  SplitRun run = RunSplitPair(config);
  ASSERT_TRUE(run.client.ok()) << run.client.status();
  ASSERT_TRUE(run.server.ok()) << run.server.status();
  const SplitClientReport& client = *run.client;
  const SplitServerReport& server = *run.server;

  // The client cut a snapshot every 8 ticks (64 / 8 = 8) plus the final
  // end-of-run snapshot, and every one of them reached the merger.
  EXPECT_EQ(client.snapshots_sent, 9);
  EXPECT_EQ(server.snapshots_merged, client.snapshots_sent);

  // One clock probe per tick barrier, answered on the spot over loopback.
  EXPECT_GT(client.clock_samples, 0);
  EXPECT_GE(client.clock_uncertainty_ns, 0);
  EXPECT_EQ(server.clock_offset_ns, client.clock_offset_ns);
  EXPECT_EQ(server.clock_uncertainty_ns, client.clock_uncertainty_ns);

  // Lossless loopback under lockstep flow control: every uplink send has
  // a matching arrival, so the one-way latency join accounts for every
  // message and loses none.
  EXPECT_EQ(server.latency_matched, client.uplink.messages_sent);
  EXPECT_EQ(server.latency_unmatched, 0);

  // Telemetry rides uncharged escape frames: the uplink's byte books are
  // exactly what a telemetry-off run produces (the parity smoke in
  // scripts/ci_asan.sh pins this against the simulated fleet; here the
  // cheap invariant is send == delivered despite all the extra control
  // traffic).
  EXPECT_EQ(client.uplink.messages_sent, server.uplink.messages_delivered);
  EXPECT_EQ(client.uplink.bytes_sent, server.uplink.bytes_delivered);

  // The stitched trace: both process tracks named, and at least one
  // causal flow with its start on one pid and a binding on the other.
  const std::string& trace = server.trace_json;
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"fleet-client\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"stream-server\""), std::string::npos);
  // Spans from both processes...
  EXPECT_NE(trace.find(",\"pid\":0,"), std::string::npos);
  EXPECT_NE(trace.find(",\"pid\":1,"), std::string::npos);
  // ...and flow events on both sides of the boundary. The client sends
  // (pid 1) and the server applies (pid 0), so with the client's spans
  // rebased behind the server's, "s" lands on pid 1 and "f" on pid 0 for
  // at least one flow id.
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
  bool cross_pid_flow = false;
  size_t at = 0;
  while ((at = trace.find("\"ph\":\"s\"", at)) != std::string::npos) {
    size_t id_at = trace.find("\"id\":", at);
    size_t pid_at = trace.find("\"pid\":", at);
    if (id_at == std::string::npos || pid_at == std::string::npos) break;
    std::string id = trace.substr(id_at + 5, trace.find(',', id_at) - id_at - 5);
    std::string start_pid =
        trace.substr(pid_at + 6, trace.find(',', pid_at) - pid_at - 6);
    // Find a binding ("f") for the same flow id on a different pid.
    size_t f_at = 0;
    while ((f_at = trace.find("\"ph\":\"f\"", f_at)) != std::string::npos) {
      size_t f_id_at = trace.find("\"id\":", f_at);
      size_t f_pid_at = trace.find("\"pid\":", f_at);
      if (f_id_at == std::string::npos || f_pid_at == std::string::npos) break;
      std::string f_id =
          trace.substr(f_id_at + 5, trace.find(',', f_id_at) - f_id_at - 5);
      std::string f_pid = trace.substr(
          f_pid_at + 6, trace.find(',', f_pid_at) - f_pid_at - 6);
      if (f_id == id && f_pid != start_pid) {
        cross_pid_flow = true;
        break;
      }
      ++f_at;
    }
    if (cross_pid_flow) break;
    ++at;
  }
  EXPECT_TRUE(cross_pid_flow) << trace.substr(0, 400);
}

TEST(SplitTelemetryTest, ResyncTriggersRemoteBlackBoxPull) {
  SplitConfig config;
  config.host = "127.0.0.1";
  config.port = 39219;
  config.ticks = 48;
  config.num_sources = 2;
  config.deltas = {0.3, 0.5};
  config.agent_base.heartbeat_every = 4;
  config.accept_timeout_ms = 10000;
  config.telemetry_every = 8;
  // Force the recovery path without needing real packet loss: a replica
  // that never hears anything for suspect_after_silent_ticks requests a
  // resync. Tiny deltas make the agents chatty, so instead make the
  // replica hair-trigger — any delivered correction keeps it healthy, so
  // drive suspicion off the heartbeat gap by suppressing aggressively.
  config.agent_base.full_sync_every = 0;
  config.recovery.enabled = true;
  config.recovery.suspect_after_silent_ticks = 1;

  SplitRun run = RunSplitPair(config);
  ASSERT_TRUE(run.client.ok()) << run.client.status();
  ASSERT_TRUE(run.server.ok()) << run.server.status();

  if (run.server->resyncs_requested > 0) {
    // Every resync request marks the source suspect; the server pulled
    // its flight-recorder ring over the control channel in response.
    EXPECT_GT(run.server->remote_black_boxes.size(), 0u);
    EXPECT_EQ(run.client->blackbox_dumps_served,
              static_cast<int64_t>(run.server->remote_black_boxes.size()));
    for (const std::string& dump : run.server->remote_black_boxes) {
      EXPECT_NE(dump.find("source"), std::string::npos);
    }
  } else {
    // Loopback delivered everything inside the silence window — the
    // recovery path simply never fired; nothing to assert beyond the run
    // completing with telemetry on.
    EXPECT_GT(run.server->snapshots_merged, 0);
  }
}

TEST(SplitTelemetryTest, TelemetryOffLeavesReportsInert) {
  SplitConfig config;
  config.host = "127.0.0.1";
  config.port = 39221;
  config.ticks = 16;
  config.num_sources = 2;
  config.deltas = {0.3, 0.5};
  config.accept_timeout_ms = 10000;

  SplitRun run = RunSplitPair(config);
  ASSERT_TRUE(run.client.ok()) << run.client.status();
  ASSERT_TRUE(run.server.ok()) << run.server.status();
  EXPECT_EQ(run.client->snapshots_sent, 0);
  EXPECT_EQ(run.client->clock_samples, 0);
  EXPECT_EQ(run.client->clock_uncertainty_ns, -1);
  EXPECT_EQ(run.server->snapshots_merged, 0);
  EXPECT_EQ(run.server->latency_matched, 0);
  EXPECT_EQ(run.server->clock_uncertainty_ns, -1);
  EXPECT_TRUE(run.server->trace_json.empty());
  EXPECT_TRUE(run.server->remote_black_boxes.empty());
}

}  // namespace
}  // namespace kc
