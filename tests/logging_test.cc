#include "common/logging.h"

#include <gtest/gtest.h>

namespace kc {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(LoggingTest, EmitsAtOrAboveThreshold) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  KC_LOG(Info) << "should be suppressed";
  KC_LOG(Warning) << "warn line " << 42;
  KC_LOG(Error) << "error line";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should be suppressed"), std::string::npos);
  EXPECT_NE(err.find("warn line 42"), std::string::npos);
  EXPECT_NE(err.find("error line"), std::string::npos);
  // Lines carry the level tag and source location basename.
  EXPECT_NE(err.find("W logging_test.cc"), std::string::npos);
  SetLogLevel(before);
}

TEST(LoggingTest, DebugVisibleWhenEnabled) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  KC_LOG(Debug) << "debug detail";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("debug detail"), std::string::npos);
  SetLogLevel(before);
}

}  // namespace
}  // namespace kc
