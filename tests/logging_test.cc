#include "common/logging.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace kc {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(LoggingTest, EmitsAtOrAboveThreshold) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  KC_LOG(Info) << "should be suppressed";
  KC_LOG(Warning) << "warn line " << 42;
  KC_LOG(Error) << "error line";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should be suppressed"), std::string::npos);
  EXPECT_NE(err.find("warn line 42"), std::string::npos);
  EXPECT_NE(err.find("error line"), std::string::npos);
  // Lines carry the level tag and source location basename.
  EXPECT_NE(err.find("W logging_test.cc"), std::string::npos);
  SetLogLevel(before);
}

TEST(LoggingTest, DebugVisibleWhenEnabled) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  KC_LOG(Debug) << "debug detail";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("debug detail"), std::string::npos);
  SetLogLevel(before);
}

TEST(LoggingTest, SinkCapturesLinesAndBypassesStderr) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::pair<LogLevel, std::string>> captured;
  LogSink previous = SetLogSink([&](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  ::testing::internal::CaptureStderr();
  KC_LOG(Info) << "to the sink " << 7;
  KC_LOG(Debug) << "below threshold";
  std::string err = ::testing::internal::GetCapturedStderr();
  SetLogSink(std::move(previous));
  SetLogLevel(before);

  EXPECT_TRUE(err.empty());  // The sink replaced stderr entirely.
  ASSERT_EQ(captured.size(), 1u);  // Threshold still applies with a sink.
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_NE(captured[0].second.find("to the sink 7"), std::string::npos);
  // The formatted record keeps the level tag and source location.
  EXPECT_NE(captured[0].second.find("I logging_test.cc"), std::string::npos);
}

TEST(LoggingTest, SetLogSinkReturnsPreviousAndNullRestoresStderr) {
  LogSink first = SetLogSink([](LogLevel, const std::string&) {});
  LogSink second = SetLogSink(nullptr);  // Back to stderr.
  EXPECT_TRUE(second);                   // The lambda installed above.
  EXPECT_FALSE(first);                   // Default was the stderr writer.

  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  KC_LOG(Warning) << "back on stderr";
  std::string err = ::testing::internal::GetCapturedStderr();
  SetLogLevel(before);
  EXPECT_NE(err.find("back on stderr"), std::string::npos);
}

TEST(LoggingTest, LogEveryNEmitsFirstAndEveryNth) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::string> captured;
  LogSink previous = SetLogSink([&](LogLevel, const std::string& line) {
    captured.push_back(line);
  });
  for (int i = 0; i < 10; ++i) {
    KC_LOG_EVERY_N(Info, 4) << "iteration " << i;
  }
  SetLogSink(std::move(previous));
  SetLogLevel(before);

  // Executions 0, 4, 8 emit.
  ASSERT_EQ(captured.size(), 3u);
  EXPECT_NE(captured[0].find("iteration 0"), std::string::npos);
  EXPECT_NE(captured[1].find("iteration 4"), std::string::npos);
  EXPECT_NE(captured[2].find("iteration 8"), std::string::npos);
}

TEST(LoggingTest, LogEveryNCountersArePerCallSite) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  int lines = 0;
  LogSink previous =
      SetLogSink([&](LogLevel, const std::string&) { ++lines; });
  for (int i = 0; i < 3; ++i) {
    KC_LOG_EVERY_N(Info, 100) << "site a";  // Emits once (i == 0).
    KC_LOG_EVERY_N(Info, 100) << "site b";  // Independent counter.
  }
  SetLogSink(std::move(previous));
  SetLogLevel(before);
  EXPECT_EQ(lines, 2);
}

TEST(LoggingTest, LogEveryNBindsAsOneStatement) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Must compile and behave as a single statement in an unbraced branch.
  if (GetLogLevel() == LogLevel::kError)
    KC_LOG_EVERY_N(Debug, 2) << "suppressed by level";
  else
    KC_LOG(Error) << "wrong branch";
  SetLogLevel(before);
}

}  // namespace
}  // namespace kc
