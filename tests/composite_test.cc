#include "streams/composite.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "streams/generators.h"

namespace kc {
namespace {

std::unique_ptr<StreamGenerator> Flat(double value) {
  LinearDriftGenerator::Config config;
  config.start = value;
  config.slope = 0.0;
  config.wobble_sigma = 0.0;
  return std::make_unique<LinearDriftGenerator>(config);
}

std::unique_ptr<StreamGenerator> Ramp(double slope) {
  LinearDriftGenerator::Config config;
  config.slope = slope;
  config.wobble_sigma = 0.0;
  return std::make_unique<LinearDriftGenerator>(config);
}

TEST(SumGeneratorTest, SumsComponentTruths) {
  std::vector<std::unique_ptr<StreamGenerator>> parts;
  parts.push_back(Flat(3.0));
  parts.push_back(Ramp(1.0));
  SumGenerator sum(std::move(parts), "flat_plus_ramp");
  sum.Reset(1);
  EXPECT_DOUBLE_EQ(sum.Next().truth.scalar(), 3.0);   // t=0.
  EXPECT_DOUBLE_EQ(sum.Next().truth.scalar(), 4.0);   // t=1.
  EXPECT_DOUBLE_EQ(sum.Next().truth.scalar(), 5.0);
  EXPECT_EQ(sum.name(), "flat_plus_ramp");
  EXPECT_EQ(sum.num_components(), 2u);
}

TEST(SumGeneratorTest, DeterministicUnderSeedWithStochasticParts) {
  auto make = [] {
    std::vector<std::unique_ptr<StreamGenerator>> parts;
    parts.push_back(std::make_unique<RandomWalkGenerator>(
        RandomWalkGenerator::Config{}));
    parts.push_back(std::make_unique<SinusoidGenerator>(
        SinusoidGenerator::Config{}));
    return std::make_unique<SumGenerator>(std::move(parts), "walk_sine");
  };
  auto a = make();
  auto b = make();
  a->Reset(77);
  b->Reset(77);
  for (int i = 0; i < 200; ++i) {
    ASSERT_DOUBLE_EQ(a->Next().truth.scalar(), b->Next().truth.scalar());
  }
}

TEST(SumGeneratorTest, ComponentsGetIndependentSeeds) {
  // Two identical random-walk components: if they shared a seed, the sum
  // would be exactly 2x one walk, i.e. increments perfectly correlated.
  std::vector<std::unique_ptr<StreamGenerator>> parts;
  parts.push_back(
      std::make_unique<RandomWalkGenerator>(RandomWalkGenerator::Config{}));
  parts.push_back(
      std::make_unique<RandomWalkGenerator>(RandomWalkGenerator::Config{}));
  SumGenerator sum(std::move(parts), "two_walks");
  sum.Reset(5);

  RandomWalkGenerator lone(RandomWalkGenerator::Config{});
  lone.Reset(5);
  bool differs = false;
  for (int i = 0; i < 100 && !differs; ++i) {
    if (std::fabs(sum.Next().truth.scalar() -
                  2.0 * lone.Next().truth.scalar()) > 1e-12) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(SumGeneratorTest, CloneReproduces) {
  std::vector<std::unique_ptr<StreamGenerator>> parts;
  parts.push_back(
      std::make_unique<RandomWalkGenerator>(RandomWalkGenerator::Config{}));
  parts.push_back(Ramp(0.5));
  SumGenerator sum(std::move(parts), "combo");
  auto clone = sum.Clone();
  sum.Reset(9);
  clone->Reset(9);
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(sum.Next().truth.scalar(), clone->Next().truth.scalar());
  }
}

TEST(ScaledGeneratorTest, AffineTransform) {
  ScaledGenerator scaled(Ramp(1.0), 2.0, 10.0);
  scaled.Reset(1);
  EXPECT_DOUBLE_EQ(scaled.Next().truth.scalar(), 10.0);  // 2*0 + 10.
  EXPECT_DOUBLE_EQ(scaled.Next().truth.scalar(), 12.0);  // 2*1 + 10.
  EXPECT_EQ(scaled.name(), "linear_drift_scaled");
}

TEST(ScaledGeneratorTest, CloneAndReset) {
  ScaledGenerator scaled(
      std::make_unique<RandomWalkGenerator>(RandomWalkGenerator::Config{}),
      0.5, -1.0);
  auto clone = scaled.Clone();
  scaled.Reset(3);
  clone->Reset(3);
  for (int i = 0; i < 50; ++i) {
    ASSERT_DOUBLE_EQ(scaled.Next().truth.scalar(),
                     clone->Next().truth.scalar());
  }
}

}  // namespace
}  // namespace kc
