#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace kc {
namespace {

TEST(RunningStatsTest, EmptyIsZeroed) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.rms(), 0.0);
}

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // Known population variance.
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  s.Add(1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(RunningStatsTest, RmsOfErrors) {
  RunningStats s;
  s.Add(3.0);
  s.Add(-4.0);
  EXPECT_DOUBLE_EQ(s.rms(), std::sqrt((9.0 + 16.0) / 2.0));
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Gaussian(1.0, 4.0);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.Add(1.0);
  a.Merge(b);  // Merge empty into non-empty.
  EXPECT_EQ(a.count(), 1);
  b.Merge(a);  // Merge non-empty into empty.
  EXPECT_EQ(b.count(), 1);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(5.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.num_bins(), 5u);
  h.Add(0.0);   // bin 0
  h.Add(1.99);  // bin 0
  h.Add(2.0);   // bin 1
  h.Add(9.99);  // bin 4
  h.Add(-1.0);  // underflow
  h.Add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(1), 1);
  EXPECT_EQ(h.bin_count(4), 1);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.count(), 6);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.5);
}

TEST(HistogramTest, AsciiRenderingMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  std::string art = h.ToAscii(10);
  EXPECT_NE(art.find("2"), std::string::npos);
  EXPECT_NE(art.find("#"), std::string::npos);
}

TEST(ExactQuantileTest, KnownPositions) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(ExactQuantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ExactQuantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(ExactQuantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(ExactQuantile(v, 0.25), 2.0);
}

TEST(ExactQuantileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(ExactQuantile({}, 0.5), 0.0);
}

}  // namespace
}  // namespace kc
