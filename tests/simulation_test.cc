#include "server/simulation.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "server/allocation.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/policies.h"

namespace kc {
namespace {

KalmanPredictor::Config ScalarKalman(double q = 0.1, double r = 0.25) {
  KalmanPredictor::Config config;
  config.model = MakeRandomWalkModel(q, r);
  return config;
}

TEST(RunLinkTest, ReportsBasicAccounting) {
  RandomWalkGenerator gen(RandomWalkGenerator::Config{});
  ValueCachePredictor proto;
  LinkConfig config;
  config.ticks = 2000;
  config.delta = 1.0;
  LinkReport report = RunLink(gen, proto, config);
  EXPECT_EQ(report.ticks, 2000);
  EXPECT_EQ(report.policy, "value_cache");
  EXPECT_EQ(report.stream, "random_walk");
  EXPECT_GT(report.messages, 0);
  EXPECT_LT(report.messages, 2000);
  EXPECT_GT(report.bytes, 0);
  EXPECT_NEAR(report.messages_per_tick,
              static_cast<double>(report.messages) / 2000.0, 1e-12);
  EXPECT_EQ(report.err_vs_target.count(), 2000);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(RunLinkTest, ContractHoldsForValueCache) {
  RandomWalkGenerator gen(RandomWalkGenerator::Config{});
  ValueCachePredictor proto;
  LinkConfig config;
  config.ticks = 5000;
  config.delta = 2.0;
  LinkReport report = RunLink(gen, proto, config);
  EXPECT_EQ(report.contract_violations, 0);
  EXPECT_LE(report.err_vs_target.max(), 2.0 + 1e-9);
}

TEST(RunLinkTest, KalmanBeatsValueCacheOnTrendingStream) {
  LinearDriftGenerator::Config stream;
  stream.slope = 0.5;
  stream.wobble_sigma = 0.02;
  LinearDriftGenerator gen(stream);

  LinkConfig config;
  config.ticks = 5000;
  config.delta = 1.0;

  ValueCachePredictor cache_proto;
  LinkReport cache = RunLink(gen, cache_proto, config);

  KalmanPredictor::Config kf_config;
  kf_config.model = MakeConstantVelocityModel(1.0, 0.01, 0.01);
  KalmanPredictor kf_proto(kf_config);
  LinkReport kalman = RunLink(gen, kf_proto, config);

  // Value cache must re-ship every delta/slope = 2 ticks; the KF learns
  // the ramp and nearly stops talking.
  EXPECT_LT(kalman.messages * 10, cache.messages)
      << "kalman=" << kalman.messages << " cache=" << cache.messages;
  EXPECT_EQ(kalman.contract_violations, 0);
}

TEST(RunLinkTest, MessagesDecreaseAsDeltaGrows) {
  RandomWalkGenerator gen(RandomWalkGenerator::Config{});
  KalmanPredictor proto(ScalarKalman());
  int64_t prev = std::numeric_limits<int64_t>::max();
  for (double delta : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    LinkConfig config;
    config.ticks = 4000;
    config.delta = delta;
    LinkReport report = RunLink(gen, proto, config);
    EXPECT_LE(report.messages, prev) << "delta=" << delta;
    prev = report.messages;
  }
}

TEST(RunLinkTest, BudgetModeSteersDelta) {
  RandomWalkGenerator gen(RandomWalkGenerator::Config{});
  ValueCachePredictor proto;
  LinkConfig config;
  config.ticks = 20000;
  config.delta = 0.05;  // Way too tight for the budget.
  config.budget = BudgetConfig{};
  config.budget->target_rate = 0.02;
  config.budget->window = 250;
  LinkReport report = RunLink(gen, proto, config);
  EXPECT_GT(report.final_delta, config.delta);
  // Overall rate should be in the budget's neighborhood.
  EXPECT_LT(report.messages_per_tick, 0.2);
}

TEST(RunLinkTest, TracedRunExposesTrajectory) {
  RandomWalkGenerator gen(RandomWalkGenerator::Config{});
  KalmanPredictor proto(ScalarKalman());
  LinkConfig config;
  config.ticks = 500;
  config.delta = 1.0;
  std::vector<TrajectoryPoint> trajectory;
  LinkReport report = RunLinkTraced(gen, proto, config, &trajectory);
  ASSERT_EQ(trajectory.size(), 500u);  // Every tick incl. the INIT tick.
  int64_t sends = 0;
  for (const auto& p : trajectory) sends += p.message_sent ? 1 : 0;
  EXPECT_EQ(sends, report.messages);  // INIT counts as the first send.
  EXPECT_EQ(trajectory.back().cumulative_messages, report.messages);
  for (const auto& p : trajectory) {
    ASSERT_DOUBLE_EQ(p.delta, 1.0);
  }
}

TEST(RunLinkTest, LossyChannelBreaksContractButIsCounted) {
  RandomWalkGenerator gen(RandomWalkGenerator::Config{});
  ValueCachePredictor proto;
  LinkConfig config;
  config.ticks = 5000;
  config.delta = 0.5;
  config.channel.loss_prob = 0.5;
  LinkReport report = RunLink(gen, proto, config);
  EXPECT_GT(report.net.messages_dropped, 0);
  // With half the corrections lost, violations are expected.
  EXPECT_GT(report.contract_violations, 0);
}

TEST(FleetTest, EndToEndWithQueries) {
  Fleet fleet;
  for (int i = 0; i < 4; ++i) {
    RandomWalkGenerator::Config stream;
    stream.start = 10.0 * i;
    stream.step_sigma = 0.5;
    fleet.AddSource(std::make_unique<RandomWalkGenerator>(stream),
                    std::make_unique<KalmanPredictor>(ScalarKalman()),
                    /*delta=*/0.5);
  }
  ASSERT_TRUE(fleet.Run(200).ok());
  EXPECT_EQ(fleet.ticks(), 200);
  EXPECT_EQ(fleet.server().num_sources(), 4u);

  auto spec = ParseQuery("SELECT AVG(s0, s1, s2, s3) WITHIN 1.0");
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(fleet.server().AddQuery("avg", *spec).ok());
  auto result = fleet.server().Evaluate("avg");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->bound, 0.5);  // 4 * 0.5 / 4.
  EXPECT_TRUE(result->meets_within);

  // The bounded answer must actually be near the true average of the
  // contract targets; check against ground truth with noise-free streams.
  double true_avg = 0.0;
  for (int i = 0; i < 4; ++i) true_avg += fleet.TruthOf(i);
  true_avg /= 4.0;
  EXPECT_NEAR(result->value, true_avg, 1.0);
}

TEST(FleetTest, PerSourceAccounting) {
  Fleet fleet;
  // Source 0 is flat (cheap); source 1 is volatile (chatty).
  LinearDriftGenerator::Config flat;
  flat.slope = 0.0;
  flat.wobble_sigma = 0.0;
  fleet.AddSource(std::make_unique<LinearDriftGenerator>(flat),
                  std::make_unique<ValueCachePredictor>(), 0.5);
  RandomWalkGenerator::Config wild;
  wild.step_sigma = 3.0;
  fleet.AddSource(std::make_unique<RandomWalkGenerator>(wild),
                  std::make_unique<ValueCachePredictor>(), 0.5);
  ASSERT_TRUE(fleet.Run(500).ok());
  EXPECT_EQ(fleet.MessagesOf(0), 1);  // INIT only.
  EXPECT_GT(fleet.MessagesOf(1), 100);
  EXPECT_EQ(fleet.TotalMessages(), fleet.MessagesOf(0) + fleet.MessagesOf(1));
  EXPECT_GT(fleet.TotalBytes(), 0);
}

TEST(FleetTest, AdaptiveAllocationShiftsBudget) {
  Fleet fleet;
  LinearDriftGenerator::Config flat;
  flat.slope = 0.0;
  flat.wobble_sigma = 0.0;
  fleet.AddSource(std::make_unique<LinearDriftGenerator>(flat),
                  std::make_unique<ValueCachePredictor>(), 1.0);
  RandomWalkGenerator::Config wild;
  wild.step_sigma = 2.0;
  fleet.AddSource(std::make_unique<RandomWalkGenerator>(wild),
                  std::make_unique<ValueCachePredictor>(), 1.0);

  AdaptiveAllocator allocator(2.0, 2);
  std::vector<int64_t> last_counts = {0, 0};
  for (int window = 0; window < 20; ++window) {
    ASSERT_TRUE(fleet.Run(200).ok());
    std::vector<int64_t> counts = {fleet.MessagesOf(0), fleet.MessagesOf(1)};
    allocator.Rebalance(
        {counts[0] - last_counts[0], counts[1] - last_counts[1]});
    last_counts = counts;
    fleet.SetDelta(0, allocator.deltas()[0]);
    fleet.SetDelta(1, allocator.deltas()[1]);
  }
  // The volatile source should have been granted the lion's share.
  EXPECT_GT(allocator.deltas()[1], 2.0 * allocator.deltas()[0]);
}

}  // namespace
}  // namespace kc
