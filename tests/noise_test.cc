#include "streams/noise.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "streams/generators.h"

namespace kc {
namespace {

std::unique_ptr<StreamGenerator> FlatTruth() {
  LinearDriftGenerator::Config config;
  config.start = 5.0;
  config.slope = 0.0;
  config.wobble_sigma = 0.0;
  return std::make_unique<LinearDriftGenerator>(config);
}

TEST(NoisyStreamTest, TruthPreservedMeasurementPerturbed) {
  NoiseConfig noise;
  noise.gaussian_sigma = 1.0;
  NoisyStream stream(FlatTruth(), noise);
  stream.Reset(1);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    Sample s = stream.Next();
    EXPECT_DOUBLE_EQ(s.truth.scalar(), 5.0);
    if (s.measured.scalar() != s.truth.scalar()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(NoisyStreamTest, NoiseLevelMatchesSigma) {
  NoiseConfig noise;
  noise.gaussian_sigma = 2.0;
  NoisyStream stream(FlatTruth(), noise);
  stream.Reset(2);
  RunningStats err;
  for (int i = 0; i < 20000; ++i) {
    Sample s = stream.Next();
    err.Add(s.measured.scalar() - s.truth.scalar());
  }
  EXPECT_NEAR(err.stddev(), 2.0, 0.1);
  EXPECT_NEAR(err.mean(), 0.0, 0.05);
}

TEST(NoisyStreamTest, ZeroSigmaIsTransparent) {
  NoisyStream stream(FlatTruth(), NoiseConfig{});
  stream.Reset(3);
  for (int i = 0; i < 50; ++i) {
    Sample s = stream.Next();
    EXPECT_DOUBLE_EQ(s.measured.scalar(), s.truth.scalar());
  }
}

TEST(NoisyStreamTest, OutliersOccurAtConfiguredRate) {
  NoiseConfig noise;
  noise.gaussian_sigma = 0.1;
  noise.outlier_prob = 0.05;
  noise.outlier_scale = 100.0;  // Outliers are up to +/-10 wide.
  NoisyStream stream(FlatTruth(), noise);
  stream.Reset(4);
  int outliers = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Sample s = stream.Next();
    if (std::fabs(s.measured.scalar() - s.truth.scalar()) > 1.0) ++outliers;
  }
  double rate = static_cast<double>(outliers) / n;
  EXPECT_NEAR(rate, 0.05 * 0.9, 0.02);  // ~90% of outliers exceed 1.0.
}

TEST(NoisyStreamTest, StuckSensorRepeatsPreviousMeasurement) {
  RandomWalkGenerator::Config walk;
  walk.step_sigma = 5.0;  // Truth moves a lot each tick.
  NoiseConfig noise;
  noise.stuck_prob = 0.5;
  noise.gaussian_sigma = 0.0;
  NoisyStream stream(std::make_unique<RandomWalkGenerator>(walk), noise);
  stream.Reset(5);
  Sample prev = stream.Next();
  int stuck = 0;
  for (int i = 0; i < 2000; ++i) {
    Sample cur = stream.Next();
    if (cur.measured.scalar() == prev.measured.scalar()) ++stuck;
    prev = cur;
  }
  EXPECT_NEAR(static_cast<double>(stuck) / 2000.0, 0.5, 0.05);
}

TEST(NoisyStreamTest, DeterministicUnderSeed) {
  NoiseConfig noise;
  noise.gaussian_sigma = 1.0;
  noise.outlier_prob = 0.01;
  NoisyStream a(FlatTruth(), noise);
  NoisyStream b(FlatTruth(), noise);
  a.Reset(9);
  b.Reset(9);
  for (int i = 0; i < 200; ++i) {
    ASSERT_DOUBLE_EQ(a.Next().measured.scalar(), b.Next().measured.scalar());
  }
}

TEST(NoisyStreamTest, NameAndDimsDelegate) {
  NoiseConfig noise;
  noise.gaussian_sigma = 0.5;
  NoisyStream stream(
      std::make_unique<Vehicle2DGenerator>(Vehicle2DGenerator::Config{}), noise);
  EXPECT_EQ(stream.dims(), 2u);
  EXPECT_EQ(stream.name(), "vehicle_2d+noise");
}

TEST(NoisyStreamTest, MultiDimNoiseIsPerDimension) {
  NoiseConfig noise;
  noise.gaussian_sigma = 1.0;
  NoisyStream stream(
      std::make_unique<Vehicle2DGenerator>(Vehicle2DGenerator::Config{}), noise);
  stream.Reset(11);
  RunningStats err_x, err_y;
  for (int i = 0; i < 5000; ++i) {
    Sample s = stream.Next();
    err_x.Add(s.measured.value[0] - s.truth.value[0]);
    err_y.Add(s.measured.value[1] - s.truth.value[1]);
  }
  EXPECT_NEAR(err_x.stddev(), 1.0, 0.1);
  EXPECT_NEAR(err_y.stddev(), 1.0, 0.1);
}

TEST(NoisyStreamTest, CloneIsIndependentButEquivalent) {
  NoiseConfig noise;
  noise.gaussian_sigma = 1.0;
  NoisyStream a(FlatTruth(), noise);
  auto b = a.Clone();
  a.Reset(13);
  b->Reset(13);
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(a.Next().measured.scalar(), b->Next().measured.scalar());
  }
}

}  // namespace
}  // namespace kc
