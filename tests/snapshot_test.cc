#include "server/snapshot.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "query/parser.h"
#include "server/simulation.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace kc {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// The factory every test uses: source 0 = adaptive KF, source 1 = value
/// cache, source 2 = linear.
std::unique_ptr<Predictor> Factory(int32_t id) {
  switch (id) {
    case 0:
      return MakeDefaultKalmanPredictor(0.09, 0.04);
    case 1:
      return std::make_unique<ValueCachePredictor>();
    case 2:
      return std::make_unique<LinearPredictor>();
    default:
      return nullptr;
  }
}

/// Builds a fleet matching Factory() and runs it for `ticks`.
std::unique_ptr<Fleet> RunFleet(size_t ticks) {
  auto fleet = std::make_unique<Fleet>();
  fleet->server().EnableArchiving(5000);
  for (int32_t id = 0; id < 3; ++id) {
    RandomWalkGenerator::Config walk;
    walk.step_sigma = 0.3 + 0.2 * id;
    fleet->AddSource(std::make_unique<RandomWalkGenerator>(walk), Factory(id),
                     0.5 + 0.25 * id);
  }
  auto spec = ParseQuery("SELECT AVG(s0, s1, s2) WITHIN 2 EVERY 5");
  EXPECT_TRUE(spec.ok());
  EXPECT_TRUE(fleet->server().AddQuery("avg_all", *spec).ok());
  auto hist = ParseQuery("SELECT MAX(s0) LAST 50");
  EXPECT_TRUE(hist.ok());
  EXPECT_TRUE(fleet->server().AddQuery("recent_max", *hist).ok());
  EXPECT_TRUE(fleet->Run(ticks).ok());
  return fleet;
}

TEST(SnapshotTest, RoundTripPreservesAnswers) {
  auto fleet = RunFleet(800);
  StreamServer& original = fleet->server();
  std::string path = TempPath("server.snap");
  ASSERT_TRUE(SaveServerSnapshot(original, path).ok());

  StreamServer restored;
  ASSERT_TRUE(LoadServerSnapshot(path, Factory, &restored).ok());

  EXPECT_EQ(restored.ticks(), original.ticks());
  EXPECT_EQ(restored.num_sources(), original.num_sources());
  EXPECT_EQ(restored.num_queries(), original.num_queries());

  // Every source answers identically.
  for (int32_t id = 0; id < 3; ++id) {
    auto a = original.SourceValue(id);
    auto b = restored.SourceValue(id);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->value.size(), b->value.size());
    for (size_t d = 0; d < a->value.size(); ++d) {
      EXPECT_DOUBLE_EQ(a->value[d], b->value[d]) << "source " << id;
    }
    EXPECT_DOUBLE_EQ(a->bound, b->bound);
    EXPECT_EQ(a->last_heard_seq, b->last_heard_seq);
  }

  // Queries (live and historical/sliding-window) agree.
  for (const std::string name : {"avg_all", "recent_max"}) {
    auto a = original.Evaluate(name);
    auto b = restored.Evaluate(name);
    ASSERT_TRUE(a.ok()) << name << ": " << a.status();
    ASSERT_TRUE(b.ok()) << name << ": " << b.status();
    EXPECT_DOUBLE_EQ(a->value, b->value) << name;
    EXPECT_DOUBLE_EQ(a->bound, b->bound) << name;
  }

  std::remove(path.c_str());
}

TEST(SnapshotTest, RestoredServerContinuesEvolvingIdentically) {
  auto fleet = RunFleet(300);
  std::string path = TempPath("continue.snap");
  ASSERT_TRUE(SaveServerSnapshot(fleet->server(), path).ok());
  StreamServer restored;
  ASSERT_TRUE(LoadServerSnapshot(path, Factory, &restored).ok());

  // Drive both servers with the same future message and ticks.
  Message corr;
  corr.source_id = 1;
  corr.type = MessageType::kCorrection;
  corr.seq = 100000;
  corr.time = 1e6;
  corr.payload = {0.75, 42.0};
  ASSERT_TRUE(fleet->server().OnMessage(corr).ok());
  ASSERT_TRUE(restored.OnMessage(corr).ok());
  for (int i = 0; i < 10; ++i) {
    fleet->server().Tick();
    restored.Tick();
  }
  auto a = fleet->server().SourceValue(1);
  auto b = restored.SourceValue(1);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->value[0], b->value[0]);
  EXPECT_DOUBLE_EQ(b->value[0], 42.0);
}

TEST(SnapshotTest, ArchivesSurviveTheRoundTrip) {
  auto fleet = RunFleet(400);
  std::string path = TempPath("archive.snap");
  ASSERT_TRUE(SaveServerSnapshot(fleet->server(), path).ok());
  StreamServer restored;
  ASSERT_TRUE(LoadServerSnapshot(path, Factory, &restored).ok());

  auto a = fleet->server().HistoricalAggregate(0, AggregateKind::kAvg, 0.0,
                                               1e9);
  auto b = restored.HistoricalAggregate(0, AggregateKind::kAvg, 0.0, 1e9);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->value, b->value);
  EXPECT_DOUBLE_EQ(a->bound, b->bound);
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadValidations) {
  StreamServer fresh;
  EXPECT_FALSE(LoadServerSnapshot(TempPath("missing.snap"), Factory, &fresh)
                   .ok());
  EXPECT_FALSE(LoadServerSnapshot(TempPath("missing.snap"), nullptr, &fresh)
                   .ok());
  EXPECT_FALSE(
      LoadServerSnapshot(TempPath("missing.snap"), Factory, nullptr).ok());

  // Non-fresh target rejected.
  auto fleet = RunFleet(50);
  std::string path = TempPath("valid.snap");
  ASSERT_TRUE(SaveServerSnapshot(fleet->server(), path).ok());
  EXPECT_FALSE(LoadServerSnapshot(path, Factory, &fleet->server()).ok());

  // Corrupted magic rejected.
  {
    std::ofstream out(TempPath("garbage.snap"));
    out << "NOT_A_SNAPSHOT 1\nend\n";
  }
  EXPECT_FALSE(
      LoadServerSnapshot(TempPath("garbage.snap"), Factory, &fresh).ok());

  // Truncated snapshot rejected.
  {
    std::ifstream in(path);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    std::ofstream out(TempPath("truncated.snap"));
    out << all.substr(0, all.size() / 2);
  }
  StreamServer fresh2;
  EXPECT_FALSE(
      LoadServerSnapshot(TempPath("truncated.snap"), Factory, &fresh2).ok());

  std::remove(path.c_str());
  std::remove(TempPath("garbage.snap").c_str());
  std::remove(TempPath("truncated.snap").c_str());
}

TEST(SnapshotTest, UninitializedSourcesRoundTrip) {
  StreamServer server;
  ASSERT_TRUE(server.RegisterSource(1, Factory(1)).ok());
  std::string path = TempPath("uninit.snap");
  ASSERT_TRUE(SaveServerSnapshot(server, path).ok());
  StreamServer restored;
  ASSERT_TRUE(LoadServerSnapshot(path, Factory, &restored).ok());
  EXPECT_EQ(restored.num_sources(), 1u);
  EXPECT_FALSE(restored.SourceValue(1).ok());  // Still uninitialized.
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kc
