// Compiled with -DKC_TRACE_DISABLED (tests/CMakeLists.txt sets it on this
// source only): proves the compile-time kill switch expands KC_TRACE_SCOPE
// to nothing — the spans below must never reach any recorder, even with
// runtime tracing enabled.

#define KC_TRACE_DISABLED 1  // Belt and braces with the build flag.

#include "obs/trace.h"

namespace kc::obs::testing {

void RunCompileTimeDisabledSpans(int n) {
  for (int i = 0; i < n; ++i) {
    KC_TRACE_SCOPE("compiled_out");
  }
  // Also valid as an unbraced single statement.
  if (n > 0) KC_TRACE_SCOPE("still_compiled_out");
}

}  // namespace kc::obs::testing
