// Loss-tolerant recovery protocol: end-to-end contract tests.
//
// The headline guarantee under test: with fault injection on (burst loss,
// duplication, reordering, partition windows), a desynced replica is
// quarantined honestly (widened bound, degraded answers), requests a
// resync over the control downlink, and returns to exact lockstep within
// a bounded number of ticks of the FULL_SYNC / re-INIT landing — and the
// whole dance is bit-identical for any shard/thread configuration.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fleet/sharded_fleet.h"
#include "net/channel.h"
#include "net/fault.h"
#include "net/message.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "server/simulation.h"
#include "streams/generators.h"
#include "suppression/agent.h"
#include "suppression/policies.h"
#include "suppression/replica.h"

namespace kc {
namespace {

Reading MakeReading(int64_t seq, double value) {
  Reading r;
  r.seq = seq;
  r.time = static_cast<double>(seq);
  r.value = Vector({value});
  return r;
}

KalmanPredictor::Config MeasurementSyncKalman() {
  // Measurement-sync mode is the duplicate- and loss-sensitive protocol
  // variant: both ends fold the raw observation into their filter, so a
  // missed or double-applied CORRECTION diverges the replica silently.
  // If recovery holds lockstep here, it holds for the self-healing
  // state-sync modes a fortiori.
  KalmanPredictor::Config config;
  config.model = MakeRandomWalkModel(0.1, 0.5);
  config.sync_mode = KalmanPredictor::SyncMode::kMeasurement;
  return config;
}

/// One faulty link, wired exactly like RunLinkImpl: uplink with faults,
/// lossless zero-latency control downlink, recovery-enabled replica.
struct RecoveryLink {
  explicit RecoveryLink(const Channel::Config& uplink_config,
                        const ReplicaRecoveryConfig& recovery,
                        const AgentConfig& agent_config,
                        const KalmanPredictor::Config& kalman)
      : uplink(uplink_config),
        replica(0, std::make_unique<KalmanPredictor>(kalman)) {
    replica.SetRecovery(recovery);
    uplink.SetReceiver([this](const Message& m) {
      Status s = replica.OnMessage(m);
      (void)s;  // CORRECTION-before-INIT is expected under loss.
    });
    control.SetReceiver([this](const Message& m) {
      Status s = agent->OnControl(m);
      ASSERT_TRUE(s.ok());
    });
    replica.SetControlSender([this](const Message& m) {
      Status s = control.Send(m);
      (void)s;
    });
    agent = std::make_unique<SourceAgent>(
        0, std::make_unique<KalmanPredictor>(kalman), agent_config, &uplink);
  }

  void Step(const Reading& measured) {
    replica.Tick();
    uplink.AdvanceTick();
    control.AdvanceTick();
    ASSERT_TRUE(agent->Offer(measured).ok());
  }

  Channel uplink;
  Channel control;  // Lossless, zero latency.
  ServerReplica replica;
  std::unique_ptr<SourceAgent> agent;
};

TEST(RecoveryTest, PartitionWithDuplicationRecoversAndRelocks) {
  // A 10-tick partition blacks out the uplink mid-run while every
  // surviving message is also at risk of duplication. The replica must
  // (a) notice the gap, (b) quarantine itself with a widened bound,
  // (c) obtain a FULL_SYNC via the control downlink, and (d) be back in
  // exact lockstep within a bounded number of ticks of the window
  // closing — and stay there.
  Channel::Config uplink_config;
  uplink_config.seed = 11;
  uplink_config.faults.partition_start = 50;
  uplink_config.faults.partition_length = 10;
  uplink_config.faults.duplicate_prob = 0.3;

  ReplicaRecoveryConfig recovery;
  recovery.enabled = true;
  recovery.suspect_after_silent_ticks = 6;
  recovery.backoff_initial_ticks = 2;
  recovery.backoff_max_ticks = 16;

  AgentConfig agent_config;
  agent_config.delta = 0.5;
  agent_config.heartbeat_every = 3;

  RecoveryLink link(uplink_config, recovery, agent_config,
                    MeasurementSyncKalman());

  constexpr int64_t kTicks = 250;
  constexpr int64_t kPartitionClose = 60;
  constexpr int64_t kRecoveryDeadline = kPartitionClose + 20;

  Rng rng(12);
  double truth = 0.0;
  bool saw_desync = false;
  bool saw_quarantine_bound = false;
  int64_t recovered_at = -1;
  for (int64_t i = 0; i < kTicks; ++i) {
    truth += rng.Gaussian(0.0, 0.5);
    link.Step(MakeReading(i, truth));
    if (link.replica.desynced()) {
      saw_desync = true;
      recovered_at = -1;
      // Quarantine honesty: while desynced the replica's advertised
      // bound widens by the quarantine factor.
      if (link.replica.bound() ==
          link.replica.declared_bound() * recovery.quarantine_bound_factor) {
        saw_quarantine_bound = true;
      }
    } else if (saw_desync && recovered_at < 0) {
      recovered_at = i;
    }
    if (i >= kRecoveryDeadline) {
      // Bounded recovery: desync healed within 20 ticks of the window
      // closing, then exact lockstep for the rest of the run.
      ASSERT_FALSE(link.replica.desynced()) << "tick " << i;
      ASSERT_NEAR(link.replica.Value()[0], link.agent->PredictedValue()[0],
                  1e-9)
          << "tick " << i;
    }
  }
  EXPECT_TRUE(saw_desync) << "partition never tripped the detector";
  EXPECT_TRUE(saw_quarantine_bound);
  // The loop index runs one behind the channel clock (AdvanceTick before
  // Offer), so the earliest possible heal is loop tick kPartitionClose-1.
  EXPECT_GE(recovered_at, kPartitionClose - 1);
  EXPECT_LE(recovered_at, kRecoveryDeadline);
  EXPECT_GT(link.replica.resyncs_requested(), 0);
  EXPECT_GT(link.agent->stats().resyncs_served, 0);
  EXPECT_GT(link.uplink.stats().partition_drops, 0);
  EXPECT_GT(link.uplink.stats().messages_duplicated, 0);
  EXPECT_GT(link.control.stats().messages_delivered, 0)
      << "resync requests must ride the byte-accounted control downlink";
}

TEST(RecoveryTest, LostInitHealsViaReinit) {
  // The INIT itself is swallowed by a partition covering the start of the
  // run. Gap detection can't fire (no wire-seq baseline) — the replica
  // must still escalate off rejected traffic, advertise itself
  // uninitialized, and receive a fresh INIT.
  Channel::Config uplink_config;
  uplink_config.seed = 21;
  uplink_config.faults.partition_start = 0;
  uplink_config.faults.partition_length = 2;

  ReplicaRecoveryConfig recovery;
  recovery.enabled = true;
  recovery.backoff_initial_ticks = 2;
  recovery.backoff_max_ticks = 8;

  AgentConfig agent_config;
  agent_config.delta = 0.1;  // Frequent corrections keep the link chatty.
  agent_config.heartbeat_every = 2;

  RecoveryLink link(uplink_config, recovery, agent_config,
                    MeasurementSyncKalman());

  Rng rng(22);
  double truth = 0.0;
  for (int64_t i = 0; i < 100; ++i) {
    truth += rng.Gaussian(0.0, 1.0);
    link.Step(MakeReading(i, truth));
  }
  EXPECT_TRUE(link.replica.initialized());
  EXPECT_FALSE(link.replica.desynced());
  EXPECT_GT(link.agent->stats().resyncs_served, 0);
  EXPECT_NEAR(link.replica.Value()[0], link.agent->PredictedValue()[0], 1e-9);
}

TEST(RecoveryTest, BurstLossReorderDuplicationStaysBounded) {
  // The statistical test: Gilbert-Elliott burst loss plus duplication
  // plus bounded reordering, driven through the public RunLink harness.
  // Reordering can transiently re-break lockstep right after a resync, so
  // the assertions here are statistical — the recovery machinery engages
  // and the server's error stays bounded — not exact-lockstep.
  LinkConfig config;
  config.ticks = 4000;
  config.delta = 0.5;
  config.seed = 5;
  config.agent.heartbeat_every = 4;
  config.channel.latency_ticks = 1;
  config.channel.seed = 6;
  config.channel.faults.burst_enter_prob = 0.03;
  config.channel.faults.burst_exit_prob = 0.25;
  config.channel.faults.burst_loss_prob = 1.0;
  config.channel.faults.duplicate_prob = 0.1;
  config.channel.faults.reorder_prob = 0.1;
  config.channel.faults.reorder_max_ticks = 3;
  config.recovery.enabled = true;
  config.recovery.suspect_after_silent_ticks = 10;
  config.recovery.backoff_initial_ticks = 4;
  config.recovery.backoff_max_ticks = 32;

  RandomWalkGenerator::Config walk;
  walk.step_sigma = 0.3;
  RandomWalkGenerator generator(walk);
  KalmanPredictor prototype(MeasurementSyncKalman());
  LinkReport report = RunLink(generator, prototype, config);

  // The faults actually fired and the protocol actually fought back.
  EXPECT_GT(report.net.burst_drops, 0);
  EXPECT_GT(report.net.messages_duplicated, 0);
  EXPECT_GT(report.net.messages_reordered, 0);
  EXPECT_GT(report.gaps, 0);
  EXPECT_GT(report.resyncs_requested, 0);
  EXPECT_GT(report.resyncs_served, 0);
  EXPECT_GT(report.control_net.messages_delivered, 0);
  // Quarantine is honest but not permanent: the link spends some ticks
  // degraded, and recovers every time.
  EXPECT_GT(report.degraded_ticks, 0);
  EXPECT_LT(report.degraded_ticks, report.ticks / 4);
  // Bounded error despite a hostile channel: the mean server-side error
  // stays within a small multiple of the precision bound. (Without
  // recovery the measurement-sync filter diverges without bound here.)
  EXPECT_LT(report.err_vs_target.mean(), 4 * config.delta);
  EXPECT_EQ(report.net.messages_delivered,
            report.net.messages_sent - report.net.messages_dropped +
                report.net.messages_duplicated);
  // The report surfaces the recovery counters.
  EXPECT_NE(report.ToString().find("resyncs="), std::string::npos);
}

TEST(RecoveryTest, RecoveryOffMatchesLegacyByteStream) {
  // Guard on the protocol's compatibility promise: with faults and
  // recovery both off, the wire traffic is byte-for-byte what the seed
  // produced before this feature existed (same RNG draw sequence, same
  // header size, no control traffic).
  LinkConfig config;
  config.ticks = 2000;
  config.delta = 0.5;
  config.seed = 5;
  config.channel.loss_prob = 0.1;
  config.channel.seed = 6;

  RandomWalkGenerator::Config walk;
  walk.step_sigma = 0.3;
  RandomWalkGenerator generator(walk);
  KalmanPredictor prototype(MeasurementSyncKalman());
  LinkReport report = RunLink(generator, prototype, config);
  EXPECT_EQ(report.control_net.messages_sent, 0);
  EXPECT_EQ(report.gaps, 0);
  EXPECT_EQ(report.resyncs_requested, 0);
  EXPECT_EQ(report.degraded_ticks, 0);
  EXPECT_EQ(report.net.burst_drops, 0);
  EXPECT_EQ(report.net.messages_duplicated, 0);
  EXPECT_NE(report.net.messages_dropped, 0);
  EXPECT_EQ(report.ToString().find("resyncs="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sharded determinism with faults + recovery enabled.

ShardedFleet::Config FaultyFleetConfig(size_t threads) {
  ShardedFleet::Config config;
  config.seed = 4242;
  config.threads = threads;
  config.num_shards = 8;
  config.agent_base.heartbeat_every = 4;
  config.channel.latency_ticks = 2;
  config.channel.faults.burst_enter_prob = 0.04;
  config.channel.faults.burst_exit_prob = 0.25;
  config.channel.faults.burst_loss_prob = 1.0;
  config.channel.faults.duplicate_prob = 0.1;
  config.channel.faults.reorder_prob = 0.1;
  config.channel.faults.reorder_max_ticks = 2;
  config.recovery.enabled = true;
  config.recovery.suspect_after_silent_ticks = 12;
  return config;
}

KalmanPredictor::Config ScalarKalman() {
  KalmanPredictor::Config config;
  config.model = MakeRandomWalkModel(0.1, 0.25);
  return config;
}

std::string RunFaultyShardedExport(size_t threads, NetworkStats* net_out,
                                   int64_t* control_out) {
  ShardedFleet fleet(FaultyFleetConfig(threads));
  fleet.EnableMetrics();
  for (int i = 0; i < 12; ++i) {
    RandomWalkGenerator::Config walk;
    walk.start = 5.0 * i;
    walk.step_sigma = 0.2 + 0.05 * (i % 4);
    fleet.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                    std::make_unique<KalmanPredictor>(ScalarKalman()),
                    /*delta=*/0.5 + 0.1 * (i % 3));
  }
  EXPECT_TRUE(fleet.Run(400).ok());
  *net_out = fleet.TotalNetworkStats();
  *control_out = fleet.TotalControlMessages();
  obs::MetricRegistry merged;
  fleet.MergeMetricsInto(&merged);
  return obs::ExportText(merged, /*include_wall_clock=*/false);
}

TEST(RecoveryTest, ShardedMetricsBitIdenticalForAnyThreadsWithFaultsOn) {
  NetworkStats net_one, net_four;
  int64_t control_one = 0, control_four = 0;
  std::string one = RunFaultyShardedExport(1, &net_one, &control_one);
  std::string four = RunFaultyShardedExport(4, &net_four, &control_four);

  // The faults and the recovery protocol genuinely engaged...
  EXPECT_GT(net_one.burst_drops, 0);
  EXPECT_GT(net_one.messages_duplicated, 0);
  EXPECT_GT(control_one, 0) << "no resync requests ever flowed";
  EXPECT_NE(one.find("kc.net.faults.burst_drops"), std::string::npos);
  EXPECT_NE(one.find("kc.replica.gaps"), std::string::npos);
  EXPECT_NE(one.find("kc.replica.resyncs_requested"), std::string::npos);
  EXPECT_NE(one.find("kc.agent.resyncs_served"), std::string::npos);

  // ...and the entire run is a pure function of (seed, id): thread count
  // changes nothing, down to the merged telemetry text.
  EXPECT_EQ(one, four);
  EXPECT_EQ(net_one.messages_sent, net_four.messages_sent);
  EXPECT_EQ(net_one.messages_dropped, net_four.messages_dropped);
  EXPECT_EQ(net_one.messages_duplicated, net_four.messages_duplicated);
  EXPECT_EQ(net_one.messages_reordered, net_four.messages_reordered);
  EXPECT_EQ(net_one.burst_drops, net_four.burst_drops);
  EXPECT_EQ(net_one.bytes_delivered, net_four.bytes_delivered);
  EXPECT_EQ(control_one, control_four);
}

TEST(RecoveryTest, FlatFleetMatchesShardedUnderFaults) {
  // The classic single-threaded Fleet and the sharded executor must agree
  // bit-for-bit even with the full fault model and recovery running.
  Fleet::Config flat_config;
  flat_config.seed = 4242;
  flat_config.agent_base.heartbeat_every = 4;
  flat_config.channel = FaultyFleetConfig(1).channel;
  flat_config.recovery = FaultyFleetConfig(1).recovery;
  Fleet flat(flat_config);
  ShardedFleet sharded(FaultyFleetConfig(4));
  for (int i = 0; i < 9; ++i) {
    RandomWalkGenerator::Config walk;
    walk.start = 2.0 * i;
    walk.step_sigma = 0.3;
    flat.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                   std::make_unique<KalmanPredictor>(ScalarKalman()), 0.5);
    sharded.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                      std::make_unique<KalmanPredictor>(ScalarKalman()), 0.5);
  }
  ASSERT_TRUE(flat.Run(300).ok());
  ASSERT_TRUE(sharded.Run(300).ok());
  for (int32_t id = 0; id < 9; ++id) {
    auto a = flat.server().SourceValue(id);
    auto b = sharded.server().SourceValue(id);
    ASSERT_EQ(a.ok(), b.ok()) << "source " << id;
    if (!a.ok()) continue;
    EXPECT_EQ(a->value[0], b->value[0]) << "source " << id;
    EXPECT_EQ(a->bound, b->bound) << "source " << id;
    EXPECT_EQ(a->degraded, b->degraded) << "source " << id;
  }
  EXPECT_EQ(flat.TotalMessages(), sharded.TotalMessages());
  EXPECT_EQ(flat.TotalBytes(), sharded.TotalBytes());
  EXPECT_EQ(flat.TotalControlMessages(), sharded.TotalControlMessages());
}

TEST(RecoveryTest, DegradedSourcePropagatesIntoQueryAnswers) {
  // Quarantine reaches the query layer: while a source is desynced its
  // point answer and any aggregate touching it report degraded with the
  // widened bound.
  StreamServer server;
  ASSERT_TRUE(
      server.RegisterSource(0, std::make_unique<ValueCachePredictor>()).ok());
  ReplicaRecoveryConfig recovery;
  recovery.enabled = true;
  server.SetRecovery(recovery);

  Message init;
  init.source_id = 0;
  init.type = MessageType::kInit;
  init.seq = 0;
  init.wire_seq = 0;
  init.payload = {1.0, 5.0};
  ASSERT_TRUE(server.OnMessage(init).ok());

  auto healthy = server.SourceValue(0);
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy->degraded);
  EXPECT_DOUBLE_EQ(healthy->bound, 1.0);

  Message corr;
  corr.source_id = 0;
  corr.type = MessageType::kCorrection;
  corr.seq = 5;
  corr.wire_seq = 5;  // Gap: wire seqs 1-4 lost.
  corr.payload = {1.0, 6.0};
  ASSERT_TRUE(server.OnMessage(corr).ok());

  auto degraded = server.SourceValue(0);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded);
  EXPECT_DOUBLE_EQ(degraded->bound, 8.0);  // Widened by the default factor.

  QuerySpec spec;
  spec.kind = AggregateKind::kAvg;
  spec.sources.push_back(0);
  auto result = server.EvaluateSpec(spec, "q");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->degraded);
  EXPECT_NE(result->ToString().find("DEGRADED"), std::string::npos);

  // FULL_SYNC lifts the quarantine end to end.
  Message sync;
  sync.source_id = 0;
  sync.type = MessageType::kFullSync;
  sync.seq = 6;
  sync.wire_seq = 6;
  sync.payload = {1.0, 6.5};
  ASSERT_TRUE(server.OnMessage(sync).ok());
  auto recovered = server.SourceValue(0);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->degraded);
  EXPECT_DOUBLE_EQ(recovered->bound, 1.0);
  auto result2 = server.EvaluateSpec(spec, "q");
  ASSERT_TRUE(result2.ok());
  EXPECT_FALSE(result2->degraded);
}

}  // namespace
}  // namespace kc
