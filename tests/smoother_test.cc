#include "kalman/smoother.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "linalg/decomp.h"

namespace kc {
namespace {

TEST(RtsSmootherTest, RejectsBadInputs) {
  StateSpaceModel model = MakeRandomWalkModel(0.1, 1.0);
  EXPECT_FALSE(RtsSmooth(model, Vector{0.0}, Matrix{{1.0}}, {}).ok());
  EXPECT_FALSE(
      RtsSmooth(model, Vector{0.0, 0.0}, Matrix{{1.0}}, {Vector{1.0}}).ok());
  StateSpaceModel broken = model;
  broken.r = Matrix{{0.0}};
  EXPECT_FALSE(
      RtsSmooth(broken, Vector{0.0}, Matrix{{1.0}}, {Vector{1.0}}).ok());
}

TEST(RtsSmootherTest, LastEstimateMatchesFilter) {
  StateSpaceModel model = MakeRandomWalkModel(0.2, 0.5);
  Rng rng(1);
  std::vector<Vector> obs;
  for (int i = 0; i < 50; ++i) obs.push_back(Vector{rng.Gaussian()});

  KalmanFilter kf(model, Vector{0.0}, Matrix{{1.0}});
  for (const Vector& z : obs) {
    kf.Predict();
    ASSERT_TRUE(kf.Update(z).ok());
  }
  auto smoothed = RtsSmooth(model, Vector{0.0}, Matrix{{1.0}}, obs);
  ASSERT_TRUE(smoothed.ok());
  ASSERT_EQ(smoothed->size(), obs.size());
  EXPECT_TRUE(AlmostEqual(smoothed->back().x, kf.state(), 1e-12));
  EXPECT_TRUE(AlmostEqual(smoothed->back().p, kf.covariance(), 1e-12));
}

TEST(RtsSmootherTest, SmoothedBeatsFilteredOnInteriorPoints) {
  StateSpaceModel model = MakeRandomWalkModel(0.04, 1.0);
  Rng rng(2);
  std::vector<double> truth;
  std::vector<Vector> obs;
  double x = 0.0;
  for (int i = 0; i < 400; ++i) {
    x += rng.Gaussian(0.0, 0.2);
    truth.push_back(x);
    obs.push_back(Vector{x + rng.Gaussian(0.0, 1.0)});
  }

  KalmanFilter kf(model, Vector{0.0}, Matrix{{1.0}});
  std::vector<double> filtered;
  for (const Vector& z : obs) {
    kf.Predict();
    ASSERT_TRUE(kf.Update(z).ok());
    filtered.push_back(kf.state()[0]);
  }
  auto smoothed = RtsSmooth(model, Vector{0.0}, Matrix{{1.0}}, obs);
  ASSERT_TRUE(smoothed.ok());

  RunningStats filt_err, smooth_err;
  for (size_t k = 10; k + 10 < truth.size(); ++k) {
    filt_err.Add(filtered[k] - truth[k]);
    smooth_err.Add((*smoothed)[k].x[0] - truth[k]);
  }
  EXPECT_LT(smooth_err.rms(), 0.9 * filt_err.rms())
      << "smoothed rmse=" << smooth_err.rms()
      << " filtered rmse=" << filt_err.rms();
}

TEST(RtsSmootherTest, SmoothedVarianceNotLargerThanFiltered) {
  StateSpaceModel model = MakeRandomWalkModel(0.1, 0.5);
  Rng rng(3);
  std::vector<Vector> obs;
  for (int i = 0; i < 100; ++i) obs.push_back(Vector{rng.Gaussian()});

  KalmanFilter kf(model, Vector{0.0}, Matrix{{1.0}});
  std::vector<double> filt_var;
  for (const Vector& z : obs) {
    kf.Predict();
    ASSERT_TRUE(kf.Update(z).ok());
    filt_var.push_back(kf.covariance()(0, 0));
  }
  auto smoothed = RtsSmooth(model, Vector{0.0}, Matrix{{1.0}}, obs);
  ASSERT_TRUE(smoothed.ok());
  for (size_t k = 0; k < obs.size(); ++k) {
    EXPECT_LE((*smoothed)[k].p(0, 0), filt_var[k] + 1e-12) << "k=" << k;
    EXPECT_TRUE(IsPositiveSemiDefinite((*smoothed)[k].p));
  }
}

TEST(RtsSmootherTest, WorksOnMultiStateModels) {
  StateSpaceModel model = MakeConstantVelocityModel(1.0, 0.05, 0.5);
  Rng rng(4);
  std::vector<Vector> obs;
  for (int i = 0; i < 60; ++i) {
    obs.push_back(Vector{0.4 * i + rng.Gaussian(0.0, 0.7)});
  }
  auto smoothed =
      RtsSmooth(model, Vector{0.0, 0.0}, Matrix::ScalarDiagonal(2, 10.0), obs);
  ASSERT_TRUE(smoothed.ok());
  // The smoothed velocity at an interior point should be near 0.4.
  EXPECT_NEAR((*smoothed)[30].x[1], 0.4, 0.1);
}

}  // namespace
}  // namespace kc
