#include "kalman/model.h"

#include <gtest/gtest.h>

#include "linalg/decomp.h"

namespace kc {
namespace {

TEST(ModelTest, RandomWalkShapeAndValues) {
  StateSpaceModel m = MakeRandomWalkModel(0.5, 2.0);
  EXPECT_EQ(m.state_dim(), 1u);
  EXPECT_EQ(m.obs_dim(), 1u);
  EXPECT_DOUBLE_EQ(m.f(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.q(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.r(0, 0), 2.0);
  EXPECT_TRUE(m.Validate().ok());
}

TEST(ModelTest, ConstantVelocityDiscretization) {
  double dt = 0.5, qa = 2.0;
  StateSpaceModel m = MakeConstantVelocityModel(dt, qa, 1.0);
  EXPECT_EQ(m.state_dim(), 2u);
  EXPECT_DOUBLE_EQ(m.f(0, 1), dt);
  // Q must be the white-noise-acceleration discretization.
  EXPECT_DOUBLE_EQ(m.q(0, 0), qa * dt * dt * dt / 3.0);
  EXPECT_DOUBLE_EQ(m.q(0, 1), qa * dt * dt / 2.0);
  EXPECT_DOUBLE_EQ(m.q(1, 1), qa * dt);
  EXPECT_TRUE(m.Validate().ok());
  EXPECT_TRUE(IsPositiveSemiDefinite(m.q));
}

TEST(ModelTest, ConstantAccelerationValid) {
  StateSpaceModel m = MakeConstantAccelerationModel(1.0, 0.1, 0.5);
  EXPECT_EQ(m.state_dim(), 3u);
  EXPECT_DOUBLE_EQ(m.f(0, 2), 0.5);
  EXPECT_TRUE(m.Validate().ok());
  EXPECT_TRUE(IsPositiveSemiDefinite(m.q));
}

TEST(ModelTest, HarmonicRotationIsOrthogonal) {
  StateSpaceModel m = MakeHarmonicModel(0.1, 1.0, 0.01, 0.5);
  EXPECT_TRUE(m.Validate().ok());
  // F is a rotation: F F^T = I.
  EXPECT_TRUE(AlmostEqual(m.f * m.f.Transposed(), Matrix::Identity(2), 1e-12));
}

TEST(ModelTest, ConstantVelocity2DShapes) {
  StateSpaceModel m = MakeConstantVelocity2DModel(1.0, 0.5, 2.0);
  EXPECT_EQ(m.state_dim(), 4u);
  EXPECT_EQ(m.obs_dim(), 2u);
  EXPECT_TRUE(m.Validate().ok());
  // H selects x (slot 0) and y (slot 2).
  EXPECT_DOUBLE_EQ(m.h(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.h(1, 2), 1.0);
}

TEST(ModelTest, ValidateRejectsBadShapes) {
  StateSpaceModel m = MakeRandomWalkModel(1.0, 1.0);
  m.q = Matrix(2, 2);
  EXPECT_FALSE(m.Validate().ok());

  m = MakeRandomWalkModel(1.0, 1.0);
  m.h = Matrix(1, 2);
  EXPECT_FALSE(m.Validate().ok());

  m = MakeRandomWalkModel(1.0, 1.0);
  m.r = Matrix(2, 2);
  EXPECT_FALSE(m.Validate().ok());
}

TEST(ModelTest, ValidateRejectsBadNoise) {
  StateSpaceModel m = MakeRandomWalkModel(1.0, 1.0);
  m.r = Matrix{{0.0}};  // R must be strictly PD.
  EXPECT_FALSE(m.Validate().ok());

  m = MakeRandomWalkModel(1.0, 1.0);
  m.q = Matrix{{-1.0}};  // Q must be PSD.
  EXPECT_FALSE(m.Validate().ok());
}

TEST(ModelTest, ValidateRejectsEmpty) {
  StateSpaceModel m;
  EXPECT_FALSE(m.Validate().ok());
}

}  // namespace
}  // namespace kc
