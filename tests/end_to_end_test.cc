// Full-system integration: a fleet of heterogeneous sources, every query
// feature (live aggregates, cadence scheduling, triggers, staleness,
// historical ranges), budget allocation, and the precision guarantees —
// all in one running scenario.

#include <memory>

#include <gtest/gtest.h>

#include "query/parser.h"
#include "server/allocation.h"
#include "server/simulation.h"
#include "streams/composite.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/imm_policy.h"
#include "suppression/policies.h"

namespace kc {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Heartbeats every 25 ticks let the 50-tick staleness limit
    // distinguish "suppressed because predictable" from "source died".
    Fleet::Config config;
    config.agent_base.heartbeat_every = 25;
    fleet_ = std::make_unique<Fleet>(config);
    fleet_->server().EnableArchiving(10000);
    fleet_->server().SetStalenessLimit(50);

    // Source 0: noisy temperature sensor on the adaptive dual KF.
    {
      DiurnalTemperatureGenerator::Config temp;
      NoiseConfig noise;
      noise.gaussian_sigma = 0.3;
      fleet_->AddSource(
          std::make_unique<NoisyStream>(
              std::make_unique<DiurnalTemperatureGenerator>(temp), noise),
          MakeDefaultKalmanPredictor(0.01, 0.09), 0.5);
    }
    // Source 1: regime-switching load on the IMM predictor.
    {
      RegimeSwitchingGenerator::Config regimes;
      regimes.regimes = {{300, 0.1, 0.0}, {300, 1.0, 0.0}};
      fleet_->AddSource(std::make_unique<RegimeSwitchingGenerator>(regimes),
                        MakeTwoModeImmPredictor(0.01, 1.0, 0.04), 0.75);
    }
    // Source 2: composite trend+seasonality stream on the matched
    // trend-seasonal model.
    {
      std::vector<std::unique_ptr<StreamGenerator>> parts;
      LinearDriftGenerator::Config trend;
      trend.slope = 0.01;
      parts.push_back(std::make_unique<LinearDriftGenerator>(trend));
      SinusoidGenerator::Config season;
      season.amplitude = 3.0;
      season.period = 144.0;
      parts.push_back(std::make_unique<SinusoidGenerator>(season));
      KalmanPredictor::Config model;
      model.model = MakeTrendSeasonalModel(2.0 * M_PI / 144.0, 1.0, 1e-5,
                                           1e-4, 0.01);
      fleet_->AddSource(
          std::make_unique<SumGenerator>(std::move(parts), "trend_seasonal"),
          std::make_unique<KalmanPredictor>(std::move(model)), 0.5);
    }
  }

  std::unique_ptr<Fleet> fleet_;
};

TEST_F(EndToEndTest, FullScenario) {
  StreamServer& server = fleet_->server();

  // Register the whole query menu through the language.
  auto live_avg = ParseQuery("SELECT AVG(s0, s1, s2) WITHIN 1.0 EVERY 10");
  ASSERT_TRUE(live_avg.ok());
  ASSERT_TRUE(server.AddQuery("live_avg", *live_avg).ok());

  auto trigger = ParseQuery("SELECT VALUE(s1) WHEN > 100 WITHIN 0.75");
  ASSERT_TRUE(trigger.ok());
  ASSERT_TRUE(server.AddQuery("overload", *trigger).ok());

  // Run a day of ticks, watching cadence and contracts.
  int64_t due_avg_count = 0;
  for (int t = 0; t < 1440; ++t) {
    ASSERT_TRUE(fleet_->Step().ok());
    for (const QueryResult& r : server.EvaluateDue()) {
      if (r.name == "live_avg") {
        ++due_avg_count;
        EXPECT_TRUE(r.meets_within) << r.ToString();
        EXPECT_FALSE(r.stale);
      }
    }
  }
  // EVERY 10 over 1440 ticks with queries registered before the run.
  EXPECT_GE(due_avg_count, 140);
  EXPECT_LE(due_avg_count, 145);

  // Live answers exist and carry sane bounds.
  auto avg = server.Evaluate("live_avg");
  ASSERT_TRUE(avg.ok());
  EXPECT_GT(avg->bound, 0.0);
  EXPECT_LE(avg->bound, 1.0 + 1e-9);

  // The AVG must be near the true average (bounds are on contract
  // targets; allow filter-smoothing slack on top).
  double truth = (fleet_->TruthOf(0) + fleet_->TruthOf(1) +
                  fleet_->TruthOf(2)) /
                 3.0;
  EXPECT_NEAR(avg->value, truth, 2.0);

  // Historical reconstruction over the archive, via the language.
  auto hist = ParseQuery("SELECT AVG(s0) FROM 100 TO 1400");
  ASSERT_TRUE(hist.ok());
  auto hist_result = server.EvaluateSpec(*hist, "hist");
  ASSERT_TRUE(hist_result.ok()) << hist_result.status();
  // A diurnal sensor hovers near its configured mean (18 C) over a day.
  EXPECT_NEAR(hist_result->value, 18.0, 3.0);

  // Archive depth matches the run (the INIT tick itself is not recorded:
  // the server ticks before the first reading arrives).
  auto archive = server.Archive(0);
  ASSERT_TRUE(archive.ok());
  EXPECT_EQ((*archive)->total_recorded(), 1439);

  // Trigger evaluation ran and the stream never got near 100.
  auto overload = server.Evaluate("overload");
  ASSERT_TRUE(overload.ok());
  ASSERT_TRUE(overload->trigger.has_value());
  EXPECT_EQ(*overload->trigger, TriggerState::kNo);

  // Nothing is stale while sources keep reporting...
  EXPECT_FALSE(server.IsStale(0));

  // ...but once the fleet stops and the server keeps ticking, staleness
  // kicks in and taints query results.
  for (int t = 0; t < 60; ++t) server.Tick();
  EXPECT_TRUE(server.IsStale(0));
  auto stale_avg = server.Evaluate("live_avg");
  ASSERT_TRUE(stale_avg.ok());
  EXPECT_TRUE(stale_avg->stale);
}

TEST_F(EndToEndTest, CommunicationStaysWellBelowNaive) {
  ASSERT_TRUE(fleet_->Run(2000).ok());
  // Naive streaming would be 3 sources * 2000 ticks = 6000 messages.
  EXPECT_LT(fleet_->TotalMessages(), 2400)
      << "suppression should cut the majority of traffic";
  // And every source contributed an INIT plus data.
  for (int32_t id = 0; id < 3; ++id) {
    EXPECT_GE(fleet_->MessagesOf(id), 1);
  }
}

TEST_F(EndToEndTest, BudgetReallocationAcrossHeterogeneousFleet) {
  // Bolt an adaptive allocator onto the running fleet: the regime source
  // (volatile) should end up with the loosest bound.
  AdaptiveAllocator allocator(1.75, 3);
  std::vector<int64_t> last = {0, 0, 0};
  for (int window = 0; window < 12; ++window) {
    ASSERT_TRUE(fleet_->Run(300).ok());
    std::vector<int64_t> delta_msgs(3);
    for (int32_t id = 0; id < 3; ++id) {
      int64_t now = fleet_->MessagesOf(id);
      delta_msgs[static_cast<size_t>(id)] = now - last[static_cast<size_t>(id)];
      last[static_cast<size_t>(id)] = now;
    }
    allocator.Rebalance(delta_msgs);
    for (int32_t id = 0; id < 3; ++id) {
      fleet_->SetDelta(id, allocator.deltas()[static_cast<size_t>(id)]);
    }
  }
  // Source 1 (regime switching, the chattiest) gets the largest bound.
  EXPECT_GT(allocator.deltas()[1], allocator.deltas()[0]);
  EXPECT_GT(allocator.deltas()[1], allocator.deltas()[2]);
}

}  // namespace
}  // namespace kc
