// Tests for chi-squared innovation gating in KalmanPredictor: sensor
// outliers must neither corrupt the client's estimate nor cost messages,
// while genuine level shifts must still be accepted promptly.

#include <gtest/gtest.h>

#include "server/simulation.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/policies.h"

namespace kc {
namespace {

KalmanPredictor::Config GatedConfig(double gate_prob) {
  KalmanPredictor::Config config;
  config.model = MakeRandomWalkModel(0.04, 0.25);
  config.outlier_gate_prob = gate_prob;
  return config;
}

Reading MakeReading(int64_t seq, double value) {
  Reading r;
  r.seq = seq;
  r.time = static_cast<double>(seq);
  r.value = Vector{value};
  return r;
}

TEST(GatingTest, RejectsIsolatedOutlier) {
  KalmanPredictor p(GatedConfig(0.999));
  p.Init(MakeReading(0, 0.0));
  // Settle the filter with consistent readings.
  for (int64_t i = 1; i <= 50; ++i) {
    p.Tick();
    p.ObserveLocal(MakeReading(i, 0.0));
  }
  double before = p.Target()[0];
  p.Tick();
  p.ObserveLocal(MakeReading(51, 500.0));  // Wild outlier.
  EXPECT_EQ(p.outliers_rejected(), 1);
  // The estimate must be essentially unmoved.
  EXPECT_NEAR(p.Target()[0], before, 0.01);
}

TEST(GatingTest, AcceptsGenuineJumpAfterLimit) {
  KalmanPredictor::Config config = GatedConfig(0.999);
  config.outlier_gate_limit = 3;
  KalmanPredictor p(config);
  p.Init(MakeReading(0, 0.0));
  for (int64_t i = 1; i <= 50; ++i) {
    p.Tick();
    p.ObserveLocal(MakeReading(i, 0.0));
  }
  // A persistent level shift: first two readings are gated, the third is
  // force-accepted, and the filter starts converging to the new level.
  for (int64_t i = 51; i <= 60; ++i) {
    p.Tick();
    p.ObserveLocal(MakeReading(i, 100.0));
  }
  EXPECT_GT(p.Target()[0], 50.0);
  EXPECT_GE(p.outliers_rejected(), 2);
}

TEST(GatingTest, DisabledGateAcceptsEverything) {
  KalmanPredictor p(GatedConfig(0.0));
  p.Init(MakeReading(0, 0.0));
  for (int64_t i = 1; i <= 20; ++i) {
    p.Tick();
    p.ObserveLocal(MakeReading(i, 0.0));
  }
  p.Tick();
  p.ObserveLocal(MakeReading(21, 500.0));
  EXPECT_EQ(p.outliers_rejected(), 0);
  EXPECT_GT(p.Target()[0], 1.0);  // The outlier moved the estimate.
}

TEST(GatingTest, GateSavesMessagesOnOutlierContaminatedStream) {
  RandomWalkGenerator::Config walk;
  walk.step_sigma = 0.1;
  NoiseConfig noise;
  noise.gaussian_sigma = 0.2;
  noise.outlier_prob = 0.02;
  noise.outlier_scale = 50.0;  // Outliers of magnitude up to 10.

  LinkConfig config;
  config.ticks = 8000;
  config.delta = 1.0;
  config.seed = 7;

  NoisyStream stream_a(std::make_unique<RandomWalkGenerator>(walk), noise);
  KalmanPredictor ungated(GatedConfig(0.0));
  LinkReport r_ungated = RunLink(stream_a, ungated, config);

  NoisyStream stream_b(std::make_unique<RandomWalkGenerator>(walk), noise);
  KalmanPredictor gated(GatedConfig(0.999));
  LinkReport r_gated = RunLink(stream_b, gated, config);

  EXPECT_LT(r_gated.messages, r_ungated.messages)
      << "gated=" << r_gated.messages << " ungated=" << r_ungated.messages;
  // Gating must also keep (or improve) accuracy against the truth.
  EXPECT_LE(r_gated.err_vs_truth.rms(), r_ungated.err_vs_truth.rms() * 1.1);
  // And the precision contract still holds.
  EXPECT_EQ(r_gated.contract_violations, 0);
}

TEST(GatingTest, ReplicasStayInLockstepWithGating) {
  KalmanPredictor client(GatedConfig(0.99));
  auto server = client.Clone();
  Reading first = MakeReading(0, 0.0);
  client.Init(first);
  server->Init(first);
  Rng rng(3);
  double level = 0.0;
  for (int64_t i = 1; i <= 500; ++i) {
    level += rng.Gaussian(0.0, 0.2);
    double z = level + rng.Gaussian(0.0, 0.5) +
               (i % 97 == 0 ? 25.0 : 0.0);  // Periodic outliers.
    Reading reading = MakeReading(i, z);
    client.Tick();
    server->Tick();
    client.ObserveLocal(reading);
    if (i % 11 == 0) {
      auto payload = client.EncodeCorrection(reading);
      ASSERT_TRUE(client.ApplyCorrection(i, reading.time, payload).ok());
      ASSERT_TRUE(server->ApplyCorrection(i, reading.time, payload).ok());
    }
    ASSERT_NEAR(client.Predict()[0], server->Predict()[0], 1e-15);
  }
}

TEST(GatingTest, InitResetsGateCounters) {
  KalmanPredictor p(GatedConfig(0.999));
  p.Init(MakeReading(0, 0.0));
  for (int64_t i = 1; i <= 30; ++i) {
    p.Tick();
    p.ObserveLocal(MakeReading(i, 0.0));
  }
  p.Tick();
  p.ObserveLocal(MakeReading(31, 400.0));
  EXPECT_GT(p.outliers_rejected(), 0);
  p.Init(MakeReading(0, 0.0));
  EXPECT_EQ(p.outliers_rejected(), 0);
}

}  // namespace
}  // namespace kc
