#include "common/status.h"

#include <gtest/gtest.h>

namespace kc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such stream");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such stream");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such stream");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::OutOfRange("too big");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

Status Helper(bool fail) {
  KC_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::Ok());
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace kc
