#include "linalg/decomp.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace kc {
namespace {

/// Random symmetric positive-definite matrix A = B B^T + n*I.
Matrix RandomSpd(size_t n, Rng& rng) {
  Matrix b(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) b(r, c) = rng.Gaussian();
  }
  Matrix a = b * b.Transposed() +
             Matrix::ScalarDiagonal(n, static_cast<double>(n));
  a.Symmetrize();
  return a;
}

TEST(CholeskyTest, FactorizesKnownMatrix) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  Cholesky chol(a);
  ASSERT_TRUE(chol.ok());
  const Matrix& l = chol.L();
  EXPECT_DOUBLE_EQ(l(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(l(1, 0), 1.0);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_TRUE(AlmostEqual(l * l.Transposed(), a, 1e-12));
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // Eigenvalues 3, -1.
  EXPECT_FALSE(Cholesky(a).ok());
}

TEST(CholeskyTest, RejectsNonSquareAndEmpty) {
  EXPECT_FALSE(Cholesky(Matrix(2, 3)).ok());
  EXPECT_FALSE(Cholesky(Matrix()).ok());
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  Vector x_true{1.0, -2.0};
  Vector b = a * x_true;
  Cholesky chol(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_TRUE(AlmostEqual(chol.Solve(b), x_true, 1e-12));
}

TEST(CholeskyTest, InverseTimesOriginalIsIdentity) {
  Rng rng(1);
  Matrix a = RandomSpd(4, rng);
  Cholesky chol(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_TRUE(AlmostEqual(a * chol.Inverse(), Matrix::Identity(4), 1e-9));
}

TEST(CholeskyTest, LogDeterminantMatchesKnown) {
  Matrix a = Matrix::Diagonal(Vector{2.0, 8.0});
  Cholesky chol(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol.LogDeterminant(), std::log(16.0), 1e-12);
}

TEST(LuTest, SolvesGeneralSystem) {
  Matrix a{{0.0, 2.0, 1.0}, {1.0, -2.0, -3.0}, {-1.0, 1.0, 2.0}};
  Vector x_true{2.0, -1.0, 3.0};
  Vector b = a * x_true;
  PartialPivLu lu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_TRUE(AlmostEqual(lu.Solve(b), x_true, 1e-10));
}

TEST(LuTest, DetectsSingular) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(PartialPivLu(a).ok());
  EXPECT_DOUBLE_EQ(PartialPivLu(a).Determinant(), 0.0);
}

TEST(LuTest, DeterminantWithPivoting) {
  // Leading zero forces a row swap; det = -(2*1 - 1*3) ... compute directly.
  Matrix a{{0.0, 1.0}, {2.0, 3.0}};
  PartialPivLu lu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.Determinant(), -2.0, 1e-12);
}

TEST(LuTest, InverseMatchesSolveIdentity) {
  Rng rng(7);
  Matrix a(3, 3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) a(r, c) = rng.Gaussian();
  }
  a += Matrix::ScalarDiagonal(3, 5.0);  // Make it comfortably nonsingular.
  PartialPivLu lu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_TRUE(AlmostEqual(a * lu.Inverse(), Matrix::Identity(3), 1e-9));
}

TEST(SolveLinearTest, DispatchesAndValidates) {
  Matrix spd{{2.0, 0.5}, {0.5, 1.0}};
  Vector b{1.0, 2.0};
  auto x = SolveLinear(spd, b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(AlmostEqual(spd * *x, b, 1e-12));

  EXPECT_FALSE(SolveLinear(Matrix(2, 3), b).ok());
  EXPECT_FALSE(SolveLinear(spd, Vector{1.0}).ok());
  Matrix singular{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(SolveLinear(singular, b).ok());
}

TEST(SolveLinearTest, SymmetricIndefiniteFallsBackToLu) {
  Matrix indefinite{{1.0, 2.0}, {2.0, 1.0}};
  Vector b{3.0, 3.0};
  auto x = SolveLinear(indefinite, b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(AlmostEqual(indefinite * *x, b, 1e-10));
}

TEST(InvertTest, SpdAndGeneral) {
  Matrix spd{{4.0, 1.0}, {1.0, 2.0}};
  auto inv = Invert(spd);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(AlmostEqual(spd * *inv, Matrix::Identity(2), 1e-10));

  Matrix general{{0.0, 1.0}, {1.0, 0.0}};
  auto inv2 = Invert(general);
  ASSERT_TRUE(inv2.ok());
  EXPECT_TRUE(AlmostEqual(general * *inv2, Matrix::Identity(2), 1e-10));
}

TEST(IsPsdTest, Classification) {
  EXPECT_TRUE(IsPositiveSemiDefinite(Matrix::Identity(3)));
  EXPECT_TRUE(IsPositiveSemiDefinite(Matrix(2, 2)));  // Zero matrix is PSD.
  Matrix indefinite{{1.0, 2.0}, {2.0, 1.0}};
  EXPECT_FALSE(IsPositiveSemiDefinite(indefinite));
  Matrix asym{{1.0, 0.5}, {0.0, 1.0}};
  EXPECT_FALSE(IsPositiveSemiDefinite(asym));
}

/// Parameterized sweep: Cholesky and LU agree with each other and recover
/// solutions across random SPD systems of several sizes.
class DecompSweepTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DecompSweepTest, SolversAgreeOnRandomSpd) {
  auto [n, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  Matrix a = RandomSpd(static_cast<size_t>(n), rng);
  Vector x_true(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) x_true[static_cast<size_t>(i)] = rng.Gaussian();
  Vector b = a * x_true;

  Cholesky chol(a);
  PartialPivLu lu(a);
  ASSERT_TRUE(chol.ok());
  ASSERT_TRUE(lu.ok());
  EXPECT_TRUE(AlmostEqual(chol.Solve(b), x_true, 1e-8));
  EXPECT_TRUE(AlmostEqual(lu.Solve(b), x_true, 1e-8));
  EXPECT_TRUE(AlmostEqual(chol.Solve(b), lu.Solve(b), 1e-8));
  EXPECT_NEAR(chol.LogDeterminant(), std::log(std::fabs(lu.Determinant())),
              1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, DecompSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8),
                       ::testing::Values(11, 22, 33)));

}  // namespace
}  // namespace kc
