#include "net/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/message.h"

namespace kc {
namespace {

bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

/// Equality including NaN payloads (bit-pattern compare on doubles) and
/// the receiver-side flow_id reconstruction contract.
void ExpectRoundTrips(const Message& in) {
  std::vector<uint8_t> bytes = codec::Encode(in);
  ASSERT_EQ(bytes.size(), in.SizeBytes()) << in.ToString();

  Message out;
  size_t consumed = 0;
  Status s = codec::DecodeFrame(bytes.data(), bytes.size(), &out, &consumed);
  ASSERT_TRUE(s.ok()) << s << " for " << in.ToString();
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.source_id, in.source_id);
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.wire_seq, in.wire_seq);
  EXPECT_TRUE(SameBits(out.time, in.time));
  ASSERT_EQ(out.payload.size(), in.payload.size());
  for (size_t i = 0; i < in.payload.size(); ++i) {
    EXPECT_TRUE(SameBits(out.payload[i], in.payload[i])) << "payload[" << i
                                                         << "]";
  }
  // flow_id never crosses the wire: the decoder reconstructs the value
  // the sender stamps on uplink kinds and leaves control kinds unset.
  if (IsUplinkType(in.type)) {
    EXPECT_EQ(out.flow_id, CausalFlowId(in.source_id, in.wire_seq));
  } else {
    EXPECT_EQ(out.flow_id, 0u);
  }

  // Canonicality: re-encoding an accepted frame reproduces it bit for bit.
  EXPECT_EQ(codec::Encode(out), bytes);
}

Message MakeMessage(MessageType type, size_t payload_doubles) {
  Message msg;
  msg.source_id = 42;
  msg.type = type;
  msg.seq = 1000;
  msg.wire_seq = 7;
  msg.time = 123.25;
  if (IsUplinkType(type)) {
    msg.flow_id = CausalFlowId(msg.source_id, msg.wire_seq);
  }
  for (size_t i = 0; i < payload_doubles; ++i) {
    msg.payload.push_back(0.5 * static_cast<double>(i) - 1.0);
  }
  return msg;
}

// ---------------------------------------------------------------------------
// Byte-accounting parity: the frame the codec emits is exactly the size
// the simulated channel charges, for every type and payload shape.

TEST(CodecParityTest, EncodedSizeEqualsSizeBytesForAllTypesAndShapes) {
  const size_t shapes[] = {0, 1, 8};
  for (size_t t = 0; t < kNumMessageTypes; ++t) {
    for (size_t doubles : shapes) {
      Message msg = MakeMessage(static_cast<MessageType>(t), doubles);
      std::vector<uint8_t> bytes = codec::Encode(msg);
      EXPECT_EQ(bytes.size(), msg.SizeBytes())
          << MessageTypeName(msg.type) << " with " << doubles << " doubles";
      EXPECT_EQ(codec::EncodedSize(msg), msg.SizeBytes());
    }
  }
}

TEST(CodecParityTest, VarintFieldsChangeSizeExactly) {
  Message msg = MakeMessage(MessageType::kCorrection, 2);
  msg.seq = 0;
  size_t base = codec::Encode(msg).size();
  EXPECT_EQ(base, msg.SizeBytes());
  msg.seq = int64_t{1} << 42;  // zigzag -> 2^43, a 7-byte varint.
  EXPECT_EQ(codec::Encode(msg).size(), base + 6);
  EXPECT_EQ(codec::Encode(msg).size(), msg.SizeBytes());
  msg.seq = std::numeric_limits<int64_t>::min();  // 10-byte varint.
  EXPECT_EQ(codec::Encode(msg).size(), base + 9);
  EXPECT_EQ(codec::Encode(msg).size(), msg.SizeBytes());
}

TEST(CodecParityTest, FlowIdIsNeverCharged) {
  Message with = MakeMessage(MessageType::kHeartbeat, 0);
  Message without = with;
  without.flow_id = 0;
  EXPECT_EQ(with.SizeBytes(), without.SizeBytes());
  EXPECT_EQ(codec::Encode(with), codec::Encode(without));
}

// ---------------------------------------------------------------------------
// Round trips.

TEST(CodecRoundTripTest, AllTypesAllShapes) {
  const size_t shapes[] = {0, 1, 8};
  for (size_t t = 0; t < kNumMessageTypes; ++t) {
    for (size_t doubles : shapes) {
      ExpectRoundTrips(MakeMessage(static_cast<MessageType>(t), doubles));
    }
  }
}

TEST(CodecRoundTripTest, ExtremeFieldValues) {
  Message msg = MakeMessage(MessageType::kFullSync, 3);
  msg.source_id = std::numeric_limits<int32_t>::min();
  msg.seq = std::numeric_limits<int64_t>::max();
  msg.wire_seq = std::numeric_limits<int64_t>::min();
  msg.flow_id = CausalFlowId(msg.source_id, msg.wire_seq);
  msg.time = -0.0;
  ExpectRoundTrips(msg);

  msg.source_id = std::numeric_limits<int32_t>::max();
  msg.seq = -1;
  msg.wire_seq = -1;
  msg.flow_id = CausalFlowId(msg.source_id, msg.wire_seq);
  ExpectRoundTrips(msg);
}

TEST(CodecRoundTripTest, NonFinitePayloadBitsSurvive) {
  Message msg = MakeMessage(MessageType::kInit, 0);
  msg.payload = {std::numeric_limits<double>::quiet_NaN(),
                 std::numeric_limits<double>::infinity(),
                 -std::numeric_limits<double>::infinity(),
                 std::numeric_limits<double>::denorm_min(),
                 -std::nan("0x5ca1ab1e")};
  msg.time = std::numeric_limits<double>::quiet_NaN();
  ExpectRoundTrips(msg);
}

TEST(CodecRoundTripTest, RandomizedProperty) {
  Rng rng(2024);
  for (int iter = 0; iter < 2000; ++iter) {
    Message msg;
    msg.source_id = static_cast<int32_t>(
        rng.UniformInt(std::numeric_limits<int32_t>::min(),
                       std::numeric_limits<int32_t>::max()));
    msg.type = static_cast<MessageType>(
        rng.UniformInt(0, static_cast<int64_t>(kNumMessageTypes) - 1));
    // Mix small (1-byte varint) and arbitrary 64-bit magnitudes.
    msg.seq = rng.Bernoulli(0.5)
                  ? rng.UniformInt(-64, 64)
                  : rng.UniformInt(std::numeric_limits<int64_t>::min(),
                                   std::numeric_limits<int64_t>::max());
    msg.wire_seq = rng.Bernoulli(0.5)
                       ? rng.UniformInt(0, 1 << 20)
                       : rng.UniformInt(std::numeric_limits<int64_t>::min(),
                                        std::numeric_limits<int64_t>::max());
    if (IsUplinkType(msg.type)) {
      msg.flow_id = CausalFlowId(msg.source_id, msg.wire_seq);
    }
    msg.time = rng.Bernoulli(0.1) ? std::numeric_limits<double>::quiet_NaN()
                                  : rng.Gaussian(0.0, 1e6);
    size_t doubles = static_cast<size_t>(rng.UniformInt(0, 20));
    for (size_t i = 0; i < doubles; ++i) {
      double d = rng.Gaussian(0.0, 1e9);
      if (rng.Bernoulli(0.05)) d = std::numeric_limits<double>::infinity();
      if (rng.Bernoulli(0.05)) d = std::numeric_limits<double>::quiet_NaN();
      msg.payload.push_back(d);
    }
    ExpectRoundTrips(msg);
  }
}

TEST(CodecRoundTripTest, BackToBackFramesDecodeInSequence) {
  // Stream transports concatenate frames; consumed must step exactly one
  // frame at a time.
  std::vector<uint8_t> stream;
  std::vector<Message> sent;
  for (int i = 0; i < 5; ++i) {
    Message m = MakeMessage(MessageType::kCorrection, i);
    m.seq = 100 + i;
    sent.push_back(m);
    codec::EncodeFrame(m, &stream);
  }
  size_t off = 0;
  for (const Message& expect : sent) {
    Message got;
    size_t consumed = 0;
    ASSERT_TRUE(codec::DecodeFrame(stream.data() + off, stream.size() - off,
                                   &got, &consumed)
                    .ok());
    EXPECT_EQ(got.seq, expect.seq);
    EXPECT_EQ(got.payload.size(), expect.payload.size());
    off += consumed;
  }
  EXPECT_EQ(off, stream.size());
}

// ---------------------------------------------------------------------------
// Hardening: truncation, garbage, unknown types. Decode must classify,
// never crash.

TEST(CodecHardeningTest, EveryProperPrefixIsOutOfRange) {
  for (size_t t = 0; t < kNumMessageTypes; ++t) {
    for (size_t doubles : {size_t{0}, size_t{3}}) {
      Message msg = MakeMessage(static_cast<MessageType>(t), doubles);
      std::vector<uint8_t> bytes = codec::Encode(msg);
      for (size_t len = 0; len < bytes.size(); ++len) {
        Message out;
        size_t consumed = 0;
        Status s = codec::DecodeFrame(bytes.data(), len, &out, &consumed);
        EXPECT_EQ(s.code(), StatusCode::kOutOfRange)
            << "prefix of " << len << "/" << bytes.size() << " bytes: " << s;
      }
    }
  }
}

TEST(CodecHardeningTest, UnknownTypeBytesAreInvalidNotUB) {
  // source_id=42 zigzags to 84, a single byte, so the type byte sits at
  // offset 2 (after the length prefix and source_id).
  Message msg = MakeMessage(MessageType::kInit, 1);
  std::vector<uint8_t> bytes = codec::Encode(msg);
  ASSERT_EQ(bytes[2], static_cast<uint8_t>(MessageType::kInit));
  for (int raw = static_cast<int>(kNumMessageTypes); raw <= 255; ++raw) {
    bytes[2] = static_cast<uint8_t>(raw);
    Message out;
    size_t consumed = 0;
    Status s = codec::DecodeFrame(bytes.data(), bytes.size(), &out, &consumed);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << "type byte " << raw;
  }
}

TEST(CodecHardeningTest, NonCanonicalVarintsRejected) {
  Message msg = MakeMessage(MessageType::kCorrection, 0);
  std::vector<uint8_t> canonical = codec::Encode(msg);
  // Overlong length prefix: same value, padded with a continuation byte.
  std::vector<uint8_t> padded;
  padded.push_back(canonical[0] | 0x80);
  padded.push_back(0x00);
  padded.insert(padded.end(), canonical.begin() + 1, canonical.end());
  Message out;
  size_t consumed = 0;
  Status s = codec::DecodeFrame(padded.data(), padded.size(), &out, &consumed);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s;

  // Overlong source_id inside the body: the body grows by one byte, so
  // re-declare the length accordingly — still rejected, because varint
  // padding would break the byte-parity contract.
  std::vector<uint8_t> body(canonical.begin() + 1, canonical.end());
  std::vector<uint8_t> padded_src;
  padded_src.push_back(static_cast<uint8_t>(body.size() + 1));
  padded_src.push_back(body[0] | 0x80);
  padded_src.push_back(0x00);
  padded_src.insert(padded_src.end(), body.begin() + 1, body.end());
  s = codec::DecodeFrame(padded_src.data(), padded_src.size(), &out,
                         &consumed);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s;
}

TEST(CodecHardeningTest, OversizedAndUndersizedBodiesRejected) {
  // body_len over the hard cap: rejected before any allocation.
  std::vector<uint8_t> oversized;
  uint64_t huge = codec::kMaxBodyBytes + 1;
  while (huge >= 0x80) {
    oversized.push_back(static_cast<uint8_t>(huge) | 0x80);
    huge >>= 7;
  }
  oversized.push_back(static_cast<uint8_t>(huge));
  oversized.resize(oversized.size() + 64, 0xAB);
  Message out;
  size_t consumed = 0;
  EXPECT_EQ(codec::DecodeFrame(oversized.data(), oversized.size(), &out,
                               &consumed)
                .code(),
            StatusCode::kInvalidArgument);

  // body_len below the minimal header: there is no such frame.
  for (uint8_t body_len = 0; body_len < Message::kMinBodyBytes; ++body_len) {
    std::vector<uint8_t> tiny = {body_len};
    tiny.resize(1 + body_len, 0x00);
    EXPECT_EQ(
        codec::DecodeFrame(tiny.data(), tiny.size(), &out, &consumed).code(),
        StatusCode::kInvalidArgument)
        << "body_len " << static_cast<int>(body_len);
  }
}

TEST(CodecHardeningTest, RaggedPayloadRejected) {
  // A body whose payload region is not a whole number of doubles.
  Message msg = MakeMessage(MessageType::kCorrection, 1);
  std::vector<uint8_t> bytes = codec::Encode(msg);
  // Append 4 stray bytes to the body and re-declare the (1-byte) length.
  bytes[0] = static_cast<uint8_t>(bytes[0] + 4);
  bytes.resize(bytes.size() + 4, 0xCD);
  Message out;
  size_t consumed = 0;
  EXPECT_EQ(
      codec::DecodeFrame(bytes.data(), bytes.size(), &out, &consumed).code(),
      StatusCode::kInvalidArgument);
}

TEST(CodecHardeningTest, RandomGarbageNeverCrashes) {
  Rng rng(99);
  for (int iter = 0; iter < 5000; ++iter) {
    size_t len = static_cast<size_t>(rng.UniformInt(0, 256));
    std::vector<uint8_t> junk(len);
    for (uint8_t& b : junk) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    Message out;
    size_t consumed = 0;
    Status s = codec::DecodeFrame(junk.data(), junk.size(), &out, &consumed);
    if (s.ok()) {
      // The one-in-a-zillion valid frame must at least be self-consistent.
      EXPECT_LE(consumed, junk.size());
      EXPECT_EQ(out.SizeBytes(), consumed);
    } else {
      EXPECT_TRUE(s.code() == StatusCode::kOutOfRange ||
                  s.code() == StatusCode::kInvalidArgument)
          << s;
    }
  }
}

TEST(CodecHardeningTest, SingleByteCorruptionsNeverCrash) {
  Message msg = MakeMessage(MessageType::kFullSync, 4);
  msg.seq = 123456789;
  msg.wire_seq = 55;
  const std::vector<uint8_t> clean = codec::Encode(msg);
  for (size_t pos = 0; pos < clean.size(); ++pos) {
    for (int delta : {1, 0x55, 0x80, 0xFF}) {
      std::vector<uint8_t> bytes = clean;
      bytes[pos] = static_cast<uint8_t>(bytes[pos] ^ delta);
      Message out;
      size_t consumed = 0;
      Status s =
          codec::DecodeFrame(bytes.data(), bytes.size(), &out, &consumed);
      if (s.ok()) {
        EXPECT_LE(consumed, bytes.size());
      }
    }
  }
}

TEST(CodecHardeningTest, FrameExtentClassifiesPrefixes) {
  Message msg = MakeMessage(MessageType::kHeartbeat, 0);
  std::vector<uint8_t> bytes = codec::Encode(msg);
  size_t frame_size = 0;
  EXPECT_EQ(codec::FrameExtent(bytes.data(), 0, &frame_size).code(),
            StatusCode::kOutOfRange);
  ASSERT_TRUE(codec::FrameExtent(bytes.data(), 1, &frame_size).ok());
  EXPECT_EQ(frame_size, bytes.size());
}

}  // namespace
}  // namespace kc
