#include "common/chisq.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace kc {
namespace {

TEST(ChiSquaredCdfTest, KnownValuesK1) {
  // chi^2(1) CDF(x) = erf(sqrt(x/2)).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(ChiSquaredCdf(x, 1), std::erf(std::sqrt(x / 2.0)), 1e-10)
        << "x=" << x;
  }
}

TEST(ChiSquaredCdfTest, KnownValuesK2) {
  // chi^2(2) is Exponential(1/2): CDF(x) = 1 - exp(-x/2).
  for (double x : {0.25, 1.0, 3.0, 8.0}) {
    EXPECT_NEAR(ChiSquaredCdf(x, 2), 1.0 - std::exp(-x / 2.0), 1e-10);
  }
}

TEST(ChiSquaredCdfTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(ChiSquaredCdf(0.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquaredCdf(-1.0, 3), 0.0);
  EXPECT_GT(ChiSquaredCdf(1000.0, 3), 1.0 - 1e-12);
}

TEST(ChiSquaredCdfTest, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.1; x < 30.0; x += 0.5) {
    double cur = ChiSquaredCdf(x, 4);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(ChiSquaredQuantileTest, TabulatedCriticalValues) {
  // Classic table entries.
  EXPECT_NEAR(ChiSquaredQuantile(0.95, 1), 3.841, 0.01);
  EXPECT_NEAR(ChiSquaredQuantile(0.95, 2), 5.991, 0.01);
  EXPECT_NEAR(ChiSquaredQuantile(0.99, 1), 6.635, 0.01);
  EXPECT_NEAR(ChiSquaredQuantile(0.999, 2), 13.816, 0.02);
  EXPECT_NEAR(ChiSquaredQuantile(0.5, 1), 0.455, 0.005);
}

TEST(ChiSquaredQuantileTest, InvertsTheCdf) {
  for (size_t k : {1u, 2u, 5u}) {
    for (double p : {0.1, 0.5, 0.9, 0.99}) {
      double q = ChiSquaredQuantile(p, k);
      EXPECT_NEAR(ChiSquaredCdf(q, k), p, 1e-9) << "k=" << k << " p=" << p;
    }
  }
}

TEST(ChiSquaredQuantileTest, EmpiricalGateRate) {
  // Draw NIS = z^2 with z ~ N(0,1); ~1% should exceed the 0.99 quantile.
  Rng rng(5);
  double gate = ChiSquaredQuantile(0.99, 1);
  int exceed = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double z = rng.Gaussian();
    if (z * z > gate) ++exceed;
  }
  EXPECT_NEAR(static_cast<double>(exceed) / n, 0.01, 0.002);
}

}  // namespace
}  // namespace kc
