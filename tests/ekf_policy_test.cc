#include "suppression/ekf_policy.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "server/simulation.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/policies.h"

namespace kc {
namespace {

Reading PlanarReading(int64_t seq, double x, double y) {
  Reading r;
  r.seq = seq;
  r.time = static_cast<double>(seq);
  r.value = Vector{x, y};
  return r;
}

TEST(EkfPredictorTest, InitPlacesFirstFix) {
  auto p = MakeCoordinatedTurnPredictor(1.0, 1.0);
  p->Init(PlanarReading(0, 3.0, -4.0));
  EXPECT_DOUBLE_EQ(p->Predict()[0], 3.0);
  EXPECT_DOUBLE_EQ(p->Predict()[1], -4.0);
  EXPECT_EQ(p->dims(), 2u);
  EXPECT_EQ(p->name(), "ekf");
}

TEST(EkfPredictorTest, ContractExactAfterCorrection) {
  auto p = MakeCoordinatedTurnPredictor(1.0, 1.0);
  p->Init(PlanarReading(0, 0.0, 0.0));
  Rng rng(1);
  for (int64_t i = 1; i <= 100; ++i) {
    Reading z = PlanarReading(i, 2.0 * static_cast<double>(i) + rng.Gaussian(),
                              rng.Gaussian());
    p->Tick();
    p->ObserveLocal(z);
    auto payload = p->EncodeCorrection(z);
    ASSERT_EQ(payload.size(), 5u + 25u);  // x + P for the 5-state model.
    ASSERT_TRUE(p->ApplyCorrection(i, z.time, payload).ok());
    for (size_t d = 0; d < 2; ++d) {
      ASSERT_NEAR(p->Target()[d], p->Predict()[d], 1e-12);
    }
  }
}

TEST(EkfPredictorTest, ReplicasStayInLockstep) {
  auto client = MakeCoordinatedTurnPredictor(1.0, 9.0);
  auto server = client->Clone();
  Reading first = PlanarReading(0, 0.0, 0.0);
  client->Init(first);
  server->Init(first);
  Rng rng(2);
  double theta = 0.0, px = 0.0, py = 0.0;
  for (int64_t i = 1; i <= 300; ++i) {
    px += 5.0 * std::cos(theta);
    py += 5.0 * std::sin(theta);
    theta += 0.03;
    Reading z = PlanarReading(i, px + rng.Gaussian(0.0, 3.0),
                              py + rng.Gaussian(0.0, 3.0));
    client->Tick();
    server->Tick();
    client->ObserveLocal(z);
    if (i % 5 == 0) {
      auto payload = client->EncodeCorrection(z);
      ASSERT_TRUE(client->ApplyCorrection(i, z.time, payload).ok());
      ASSERT_TRUE(server->ApplyCorrection(i, z.time, payload).ok());
    }
    for (size_t d = 0; d < 2; ++d) {
      ASSERT_NEAR(client->Predict()[d], server->Predict()[d], 1e-12);
    }
  }
}

TEST(EkfPredictorTest, BeatsLinearCvOnTurningVehicle) {
  // A vehicle that turns persistently: the coordinated-turn EKF should
  // out-suppress the linear constant-velocity filter at the same bound.
  Vehicle2DGenerator::Config vehicle;
  vehicle.speed_mean = 10.0;
  vehicle.turn_change_prob = 0.002;  // Long, sustained arcs.
  vehicle.turn_rate_sigma = 0.002;
  vehicle.max_turn_rate = 0.06;
  NoiseConfig gps;
  gps.gaussian_sigma = 2.0;

  LinkConfig config;
  config.ticks = 8000;
  config.delta = 10.0;
  config.seed = 11;

  NoisyStream stream_a(std::make_unique<Vehicle2DGenerator>(vehicle), gps);
  KalmanPredictor::Config cv;
  cv.model = MakeConstantVelocity2DModel(1.0, 0.05, 4.0);
  KalmanPredictor cv_proto(cv);
  LinkReport cv_report = RunLink(stream_a, cv_proto, config);

  NoisyStream stream_b(std::make_unique<Vehicle2DGenerator>(vehicle), gps);
  auto ekf_proto = MakeCoordinatedTurnPredictor(1.0, 4.0);
  LinkReport ekf_report = RunLink(stream_b, *ekf_proto, config);

  EXPECT_LT(ekf_report.messages, cv_report.messages)
      << "ekf=" << ekf_report.messages << " cv=" << cv_report.messages;
  EXPECT_EQ(ekf_report.contract_violations, 0);
}

TEST(EkfPredictorTest, ApplyBeforeInitFails) {
  auto p = MakeCoordinatedTurnPredictor(1.0, 1.0);
  EXPECT_FALSE(p->ApplyCorrection(0, 0.0, std::vector<double>(30, 0.0)).ok());
}

TEST(EkfPredictorTest, WrongPayloadSizeRejected) {
  auto p = MakeCoordinatedTurnPredictor(1.0, 1.0);
  p->Init(PlanarReading(0, 0.0, 0.0));
  EXPECT_FALSE(p->ApplyCorrection(1, 1.0, {1.0, 2.0}).ok());
}

}  // namespace
}  // namespace kc
