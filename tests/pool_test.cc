#include "fleet/pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "fleet/sharded_fleet.h"
#include "kalman/kalman_filter.h"
#include "kalman/model.h"
#include "net/message.h"
#include "streams/generators.h"
#include "streams/reading.h"
#include "suppression/policies.h"

namespace kc {
namespace {

// ------------------------------------------------------------------ Helpers

/// A valid model of any state dimension n (observing component 0): lets
/// the equivalence suite literally cover every dim 1..8 rather than only
/// the dims the named factories provide.
StateSpaceModel MakeDimModel(size_t n) {
  StateSpaceModel model;
  model.f = Matrix::Identity(n);
  for (size_t i = 0; i + 1 < n; ++i) model.f(i, i + 1) = 0.01;
  model.q = Matrix::ScalarDiagonal(n, 0.01);
  model.h = Matrix(1, n);
  model.h(0, 0) = 1.0;
  model.r = Matrix{{0.04}};
  return model;
}

/// Deterministic reading stream shared by both predictors under test.
class ReadingStream {
 public:
  explicit ReadingStream(size_t dims, uint64_t seed)
      : dims_(dims), state_(seed | 1) {}

  Reading Next() {
    Reading r;
    r.seq = seq_++;
    r.time = static_cast<double>(r.seq);
    r.value = Vector(dims_);
    for (size_t d = 0; d < dims_; ++d) {
      r.value[d] = 2.0 * Uniform() - 1.0 + 0.05 * static_cast<double>(r.seq);
    }
    return r;
  }

 private:
  double Uniform() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return static_cast<double>(state_ >> 11) * (1.0 / 9007199254740992.0);
  }

  size_t dims_;
  uint64_t state_;
  int64_t seq_ = 0;
};

void ExpectBitEqual(const Vector& a, const Vector& b, const char* what,
                    int tick) {
  ASSERT_EQ(a.size(), b.size()) << what << " @" << tick;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << "[" << i << "] @" << tick;
  }
}

void ExpectBitEqual(const std::vector<double>& a, const std::vector<double>& b,
                    const char* what, int tick) {
  ASSERT_EQ(a.size(), b.size()) << what << " @" << tick;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << "[" << i << "] @" << tick;
  }
}

/// Drives a per-object KalmanPredictor and a pooled equivalent through an
/// identical history — predicts, gated observations (accepts, rejects, and
/// forced-accept runs), corrections, full syncs, and re-Inits — and
/// asserts every externally visible value is bit-identical at every tick.
void DriveEquivalence(const KalmanPredictor::Config& config, int ticks,
                      uint64_t seed) {
  KalmanPredictor object(config);
  FilterPoolSet pools;
  PooledKalmanPredictor pooled(config, &pools);
  size_t m = config.model.obs_dim();
  ReadingStream stream(m, seed);

  Reading first = stream.Next();
  object.Init(first);
  pooled.Init(first);

  for (int t = 1; t <= ticks; ++t) {
    object.Tick();
    pooled.Tick();

    Reading r = stream.Next();
    if (t % 17 == 0 || (t >= 100 && t < 100 + 2 * config.outlier_gate_limit)) {
      // Isolated outliers exercise the reject branch; the sustained run
      // around t=100 exhausts outlier_gate_limit and forces an accept.
      r.value[0] += 50.0;
    }
    object.ObserveLocal(r);
    pooled.ObserveLocal(r);

    ExpectBitEqual(object.Predict(), pooled.Predict(), "Predict", t);
    ExpectBitEqual(object.Target(), pooled.Target(), "Target", t);
    EXPECT_EQ(object.LastNis(), pooled.LastNis()) << "NIS @" << t;
    EXPECT_EQ(object.OutliersRejected(), pooled.OutliersRejected())
        << "rejects @" << t;

    if (t % 7 == 0) {
      std::vector<double> pa = object.EncodeCorrection(r);
      std::vector<double> pb = pooled.EncodeCorrection(r);
      ExpectBitEqual(pa, pb, "EncodeCorrection", t);
      ASSERT_TRUE(object.ApplyCorrection(r.seq, r.time, pa).ok());
      ASSERT_TRUE(pooled.ApplyCorrection(r.seq, r.time, pa).ok());
    }
    if (t % 23 == 0) {
      std::vector<double> fa = object.EncodeFullState();
      std::vector<double> fb = pooled.EncodeFullState();
      ExpectBitEqual(fa, fb, "EncodeFullState", t);
      ASSERT_TRUE(object.ApplyFullState(fa).ok());
      ASSERT_TRUE(pooled.ApplyFullState(fa).ok());
    }
    if (t % 71 == 0) {
      // Re-Init (the agent's re-anchor path): slots are reused in place.
      object.Init(r);
      pooled.Init(r);
    }
  }
  if (config.sync_mode != KalmanPredictor::SyncMode::kMeasurement) {
    // The outlier gate protects the state-sync modes only; in measurement
    // sync every reading flows into the filter.
    EXPECT_GT(object.OutliersRejected(), 0) << "gate never fired";
  }
}

KalmanPredictor::Config GatedConfig(StateSpaceModel model) {
  KalmanPredictor::Config config;
  config.model = std::move(model);
  config.outlier_gate_prob = 0.99;
  config.outlier_gate_limit = 3;
  return config;
}

// ------------------------------------------------- Equivalence, dims 1..8

TEST(PoolEquivalenceTest, BitIdenticalAcrossStateDims1To8) {
  for (size_t n = 1; n <= 8; ++n) {
    SCOPED_TRACE(n);
    DriveEquivalence(GatedConfig(MakeDimModel(n)), /*ticks=*/160,
                     /*seed=*/0x9E3779B9u * n);
  }
}

TEST(PoolEquivalenceTest, BitIdenticalAcrossNamedModels) {
  std::vector<StateSpaceModel> models;
  models.push_back(MakeRandomWalkModel(0.1, 0.25));
  models.push_back(MakeConstantVelocityModel(0.1, 0.5, 0.25));
  models.push_back(MakeConstantAccelerationModel(0.1, 0.5, 0.25));
  models.push_back(MakeHarmonicModel(0.8, 0.1, 0.05, 0.25));
  models.push_back(MakeConstantVelocity2DModel(0.1, 0.5, 0.25));
  models.push_back(MakeConstantAcceleration2DModel(0.1, 0.5, 0.25));
  models.push_back(MakeConstantJerk2DModel(0.1, 0.5, 0.25));
  for (size_t i = 0; i < models.size(); ++i) {
    SCOPED_TRACE(i);
    DriveEquivalence(GatedConfig(models[i]), /*ticks=*/160,
                     /*seed=*/0x2545F491u + i);
  }
}

TEST(PoolEquivalenceTest, BitIdenticalAcrossSyncModesAndForms) {
  for (auto mode : {KalmanPredictor::SyncMode::kState,
                    KalmanPredictor::SyncMode::kStateAndCov,
                    KalmanPredictor::SyncMode::kMeasurement}) {
    for (auto form : {KalmanFilter::UpdateForm::kJoseph,
                      KalmanFilter::UpdateForm::kStandard}) {
      SCOPED_TRACE(static_cast<int>(mode) * 10 + static_cast<int>(form));
      KalmanPredictor::Config config = GatedConfig(MakeDimModel(3));
      config.sync_mode = mode;
      config.update_form = form;
      DriveEquivalence(config, /*ticks=*/120, /*seed=*/77);
    }
  }
}

TEST(PoolEquivalenceTest, BatchedSweepMatchesLazyCatchUp) {
  // One pooled predictor is driven purely by PredictSlotUpTo (standalone
  // mode); the other's pool is swept by PredictAll before every tick (the
  // fleet's batched mode). Identical inputs must yield identical state.
  KalmanPredictor::Config config = GatedConfig(MakeDimModel(4));
  FilterPoolSet lazy_pools;
  FilterPoolSet swept_pools;
  PooledKalmanPredictor lazy(config, &lazy_pools);
  PooledKalmanPredictor swept(config, &swept_pools);
  ReadingStream stream(1, 0xABCDEF);
  Reading first = stream.Next();
  lazy.Init(first);
  swept.Init(first);
  for (int t = 1; t <= 100; ++t) {
    swept_pools.PredictAll();  // The shard's batched sweep.
    lazy.Tick();
    swept.Tick();
    Reading r = stream.Next();
    lazy.ObserveLocal(r);
    swept.ObserveLocal(r);
    ExpectBitEqual(lazy.Predict(), swept.Predict(), "Predict", t);
    ExpectBitEqual(lazy.Target(), swept.Target(), "Target", t);
    ExpectBitEqual(lazy.EncodeFullState(), swept.EncodeFullState(), "full", t);
  }
}

// ------------------------------------------------------- Batched kernels

TEST(FilterPoolTest, BatchKernelsMatchPerSlotCalls) {
  StateSpaceModel model = MakeDimModel(3);
  FilterPool a(model, KalmanFilter::UpdateForm::kJoseph);
  FilterPool b(model, KalmanFilter::UpdateForm::kJoseph);
  constexpr int kSlots = 5;
  std::vector<int32_t> slots_a, slots_b;
  ReadingStream stream(1, 42);
  for (int i = 0; i < kSlots; ++i) {
    slots_a.push_back(a.Acquire(i));
    slots_b.push_back(b.Acquire(i));
    Reading r = stream.Next();
    Vector x0 = model.h.Transposed() * r.value;
    Matrix p0 = Matrix::ScalarDiagonal(3, 100.0);
    a.ResetSlot(slots_a.back(), x0, p0);
    b.ResetSlot(slots_b.back(), x0, p0);
  }
  std::vector<Vector> zs;
  for (int i = 0; i < kSlots; ++i) zs.push_back(stream.Next().value);

  EXPECT_EQ(a.PredictAll(), static_cast<size_t>(kSlots));
  for (int32_t s : slots_b) b.PredictSlot(s);

  std::vector<double> nis_a(kSlots), nis_b(kSlots);
  a.GateBatch(slots_a.data(), zs.data(), kSlots, nis_a.data());
  for (int i = 0; i < kSlots; ++i) nis_b[i] = b.GateSlot(slots_b[i], zs[i]);
  for (int i = 0; i < kSlots; ++i) EXPECT_EQ(nis_a[i], nis_b[i]) << i;

  EXPECT_EQ(a.UpdateBatch(slots_a.data(), zs.data(), kSlots),
            static_cast<size_t>(kSlots));
  for (int i = 0; i < kSlots; ++i) {
    ASSERT_TRUE(b.UpdateSlot(slots_b[i], zs[i]).ok());
  }
  for (int i = 0; i < kSlots; ++i) {
    SCOPED_TRACE(i);
    ExpectBitEqual(a.StateOf(slots_a[i]), b.StateOf(slots_b[i]), "x", i);
    ExpectBitEqual(a.SerializeSlot(slots_a[i]), b.SerializeSlot(slots_b[i]),
                   "xP", i);
    EXPECT_EQ(a.LastNisOf(slots_a[i]), b.LastNisOf(slots_b[i]));
  }
}

TEST(FilterPoolTest, PoolMatchesKalmanFilterExactly) {
  // The pool's per-slot kernels against the reference KalmanFilter
  // itself, not just the predictor wrapper.
  StateSpaceModel model = MakeConstantVelocityModel(0.1, 0.5, 0.25);
  for (auto form : {KalmanFilter::UpdateForm::kJoseph,
                    KalmanFilter::UpdateForm::kStandard}) {
    Vector x0({1.0, -0.5});
    Matrix p0 = Matrix::ScalarDiagonal(2, 100.0);
    KalmanFilter filter(model, x0, p0, form);
    FilterPool pool(model, form);
    int32_t slot = pool.Acquire(0);
    pool.ResetSlot(slot, x0, p0);
    ReadingStream stream(1, 7);
    for (int t = 0; t < 100; ++t) {
      filter.Predict();
      pool.PredictSlot(slot);
      if (t % 3 == 0) {
        Vector z = stream.Next().value;
        ASSERT_TRUE(filter.Update(z).ok());
        ASSERT_TRUE(pool.UpdateSlot(slot, z).ok());
        EXPECT_EQ(filter.last_nis(), pool.LastNisOf(slot)) << t;
      }
      ExpectBitEqual(filter.state(), pool.StateOf(slot), "x", t);
      ExpectBitEqual(filter.SerializeState(), pool.SerializeSlot(slot), "xP",
                     t);
    }
  }
}

// ------------------------------------------------------- Slot lifecycle

TEST(FilterPoolTest, ReleaseZeroesSlotForReuse) {
  StateSpaceModel model = MakeDimModel(2);
  FilterPool pool(model, KalmanFilter::UpdateForm::kJoseph);
  int32_t slot = pool.Acquire(/*owner_id=*/11);
  pool.ResetSlot(slot, Vector({3.0, 4.0}), Matrix::ScalarDiagonal(2, 9.0));
  pool.PredictSlot(slot);
  ASSERT_TRUE(pool.UpdateSlot(slot, Vector({2.5})).ok());
  EXPECT_NE(pool.StateOf(slot)[0], 0.0);

  pool.Release(slot);
  EXPECT_EQ(pool.num_active(), 0u);

  // The min-heap free list hands back the lowest-indexed free slot — here
  // the one just released — and it must be fully clean.
  int32_t again = pool.Acquire(/*owner_id=*/12);
  EXPECT_EQ(again, slot);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(pool.StateOf(again)[i], 0.0) << i;
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(pool.CovarianceOf(again)(i, j), 0.0) << i << "," << j;
    }
  }
  EXPECT_EQ(pool.PredictEpochOf(again), 0);
  EXPECT_EQ(pool.LastNisOf(again), 0.0);
  EXPECT_EQ(pool.OwnerOf(again), 12);
}

TEST(FilterPoolTest, PredictAllSkipsFreedSlots) {
  StateSpaceModel model = MakeDimModel(1);
  FilterPool pool(model, KalmanFilter::UpdateForm::kJoseph);
  int32_t s0 = pool.Acquire(0);
  int32_t s1 = pool.Acquire(1);
  int32_t s2 = pool.Acquire(2);
  for (int32_t s : {s0, s1, s2}) {
    pool.ResetSlot(s, Vector({1.0}), Matrix::ScalarDiagonal(1, 4.0));
  }
  pool.Release(s1);
  EXPECT_EQ(pool.PredictAll(), 2u);
  EXPECT_EQ(pool.PredictEpochOf(s0), 1);
  EXPECT_EQ(pool.PredictEpochOf(s2), 1);
  EXPECT_FALSE(pool.IsActive(s1));
}

TEST(FilterPoolTest, FreeListReusesLowestIndexFirst) {
  // The free list is a min-heap, not a LIFO stack: after releasing slots
  // in arbitrary order, Acquire hands them back lowest-index-first so
  // long-lived pools re-densify toward the front of the slabs instead of
  // churning whatever happened to be freed last.
  StateSpaceModel model = MakeDimModel(1);
  FilterPool pool(model, KalmanFilter::UpdateForm::kJoseph);
  for (int32_t i = 0; i < 8; ++i) ASSERT_EQ(pool.Acquire(i), i);
  // Release out of order: 6, 1, 4, 2.
  for (int32_t s : {6, 1, 4, 2}) pool.Release(s);
  EXPECT_EQ(pool.Acquire(100), 1);
  EXPECT_EQ(pool.Acquire(101), 2);
  EXPECT_EQ(pool.Acquire(102), 4);
  EXPECT_EQ(pool.Acquire(103), 6);
  // Heap exhausted: the next Acquire extends the pool.
  EXPECT_EQ(pool.Acquire(104), 8);
}

TEST(FilterPoolTest, FragmentedPoolSweepsBitIdenticalToDense) {
  // The superlinear-falloff fix pin: a pool with 50% of its slots
  // released (every other slot, maximal fragmentation) must sweep its
  // survivors to bit-identical states as a dense pool holding only those
  // survivors. Freed lanes are masked out of the batched kernels, never
  // fed into them — fragmentation may change speed but not one bit of
  // filter state.
  const size_t kDim = 3;
  const size_t kSlots = 22;  // Partial final block in the fragmented pool.
  StateSpaceModel model = MakeDimModel(kDim);
  Matrix p0 = Matrix::ScalarDiagonal(kDim, 25.0);
  auto x0_of = [&](size_t i) {
    Vector x0(kDim);
    for (size_t e = 0; e < kDim; ++e) {
      x0[e] = 0.1 * static_cast<double>(i) + 0.01 * static_cast<double>(e);
    }
    return x0;
  };

  FilterPool fragmented(model, KalmanFilter::UpdateForm::kJoseph);
  for (size_t i = 0; i < kSlots; ++i) {
    int32_t s = fragmented.Acquire(static_cast<int32_t>(i));
    fragmented.ResetSlot(s, x0_of(i), p0);
  }
  for (size_t i = 1; i < kSlots; i += 2) {
    fragmented.Release(static_cast<int32_t>(i));
  }

  FilterPool dense(model, KalmanFilter::UpdateForm::kJoseph);
  std::vector<int32_t> dense_slot(kSlots, FilterPool::kNoSlot);
  for (size_t i = 0; i < kSlots; i += 2) {
    dense_slot[i] = dense.Acquire(static_cast<int32_t>(i));
    dense.ResetSlot(dense_slot[i], x0_of(i), p0);
  }

  const size_t survivors = (kSlots + 1) / 2;
  for (int sweep = 0; sweep < 10; ++sweep) {
    ASSERT_EQ(fragmented.PredictAll(), survivors);
    ASSERT_EQ(dense.PredictAll(), survivors);
    for (size_t i = 0; i < kSlots; i += 2) {
      ExpectBitEqual(fragmented.SerializeSlot(static_cast<int32_t>(i)),
                     dense.SerializeSlot(dense_slot[i]), "xP", sweep);
    }
  }
}

TEST(FilterPoolTest, IdReuseAfterUnregisterSeesNoStaleState) {
  // The PR 1 TickArchive id-reuse regression, now at the pool layer: a
  // source id that is unregistered and re-registered must behave exactly
  // like a never-before-seen source, even though the pool hands its
  // replica the same physical slot.
  constexpr int32_t kId = 7;
  auto run_replica_value = [&](bool reuse_first) -> std::vector<double> {
    ShardedServer server(4);
    size_t shard = server.ShardOf(kId);
    KalmanPredictor::Config config = GatedConfig(MakeDimModel(2));
    if (reuse_first) {
      // First tenancy: init, tick, correct — then unregister, leaving a
      // dirty (now zeroed) slot behind.
      EXPECT_TRUE(server
                      .RegisterSource(
                          kId, std::make_unique<PooledKalmanPredictor>(
                                   config, server.shard_pools(shard)))
                      .ok());
      Message init;
      init.source_id = kId;
      init.type = MessageType::kInit;
      init.seq = 0;
      init.wire_seq = 0;
      init.payload = {0.5, 123.0};  // delta, value.
      EXPECT_TRUE(server.OnMessage(init).ok());
      for (int t = 0; t < 5; ++t) server.Tick();
      EXPECT_TRUE(server.UnregisterSource(kId).ok());
    }
    EXPECT_TRUE(
        server
            .RegisterSource(kId, std::make_unique<PooledKalmanPredictor>(
                                     config, server.shard_pools(shard)))
            .ok());
    Message init;
    init.source_id = kId;
    init.type = MessageType::kInit;
    init.seq = 0;
    init.wire_seq = 0;
    init.payload = {0.5, -4.0};  // delta, value.
    EXPECT_TRUE(server.OnMessage(init).ok());
    for (int t = 0; t < 8; ++t) server.Tick();
    auto answer = server.SourceValue(kId);
    EXPECT_TRUE(answer.ok());
    std::vector<double> out;
    if (answer.ok()) {
      for (size_t i = 0; i < answer->value.size(); ++i) {
        out.push_back(answer->value[i]);
      }
      out.push_back(answer->bound);
    }
    return out;
  };
  std::vector<double> fresh = run_replica_value(/*reuse_first=*/false);
  std::vector<double> reused = run_replica_value(/*reuse_first=*/true);
  ExpectBitEqual(fresh, reused, "replica value after id reuse", 0);
}

// ------------------------------------------------ Faults-on fleet replay

TEST(PoolEquivalenceTest, RecoveryReplayMatchesPerObjectPath) {
  // Lossy channel + loss-tolerant recovery: gaps, quarantines, resync
  // requests, full syncs, and re-INITs all replay through the pooled path
  // bit-identically to the per-object path.
  auto run = [](bool pooling) {
    ShardedFleet::Config config;
    config.seed = 4242;
    config.threads = 2;
    config.num_shards = 4;
    config.pooling = pooling;
    config.channel.loss_prob = 0.25;
    config.channel.latency_ticks = 2;
    config.control_channel.loss_prob = 0.1;
    config.recovery.enabled = true;
    config.recovery.suspect_after_silent_ticks = 12;
    config.agent_base.heartbeat_every = 8;
    ShardedFleet fleet(config);
    for (int i = 0; i < 10; ++i) {
      RandomWalkGenerator::Config walk;
      walk.start = 3.0 * i;
      walk.step_sigma = 0.3;
      fleet.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                      std::make_unique<KalmanPredictor>(
                          GatedConfig(MakeRandomWalkModel(0.1, 0.25))),
                      /*delta=*/0.5);
    }
    EXPECT_TRUE(fleet.Run(400).ok());
    std::vector<double> fingerprint;
    for (int32_t id = 0; id < 10; ++id) {
      auto answer = fleet.server().SourceValue(id);
      fingerprint.push_back(answer.ok() ? answer->value[0] : -1e9);
      fingerprint.push_back(answer.ok() ? answer->bound : -1e9);
      fingerprint.push_back(
          static_cast<double>(fleet.server().IsDesynced(id) ? 1 : 0));
    }
    NetworkStats net = fleet.TotalNetworkStats();
    fingerprint.push_back(static_cast<double>(net.messages_sent));
    fingerprint.push_back(static_cast<double>(net.messages_dropped));
    fingerprint.push_back(static_cast<double>(net.bytes_delivered));
    EXPECT_GT(net.messages_dropped, 0);
    return fingerprint;
  };
  std::vector<double> pooled = run(/*pooling=*/true);
  std::vector<double> object = run(/*pooling=*/false);
  ExpectBitEqual(pooled, object, "recovery replay", 0);
}

// --------------------------------------------------------------- Factory

TEST(PoolFactoryTest, PoolsOnlyEligiblePredictors) {
  FilterPoolSet pools;
  KalmanPredictor plain(GatedConfig(MakeDimModel(2)));
  EXPECT_NE(MakePooledPredictor(plain, &pools), nullptr);

  KalmanPredictor::Config adaptive_config = GatedConfig(MakeDimModel(2));
  adaptive_config.adaptive = AdaptiveConfig{};
  KalmanPredictor adaptive(adaptive_config);
  EXPECT_EQ(MakePooledPredictor(adaptive, &pools), nullptr)
      << "adaptive configs mutate the model and must stay per-object";

  ValueCachePredictor value_cache;
  EXPECT_EQ(MakePooledPredictor(value_cache, &pools), nullptr)
      << "non-Kalman predictors stay on the virtual path";
}

TEST(PoolFactoryTest, PoolsShareByModelAndForm) {
  FilterPoolSet pools;
  StateSpaceModel m1 = MakeDimModel(2);
  StateSpaceModel m2 = MakeDimModel(3);
  FilterPool* a = pools.PoolFor(m1, KalmanFilter::UpdateForm::kJoseph);
  FilterPool* b = pools.PoolFor(m1, KalmanFilter::UpdateForm::kJoseph);
  FilterPool* c = pools.PoolFor(m1, KalmanFilter::UpdateForm::kStandard);
  FilterPool* d = pools.PoolFor(m2, KalmanFilter::UpdateForm::kJoseph);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(pools.num_pools(), 3u);
}

}  // namespace
}  // namespace kc
