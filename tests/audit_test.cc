// The precision/SLO auditor: unit coverage for the sampling + window
// state machine, its metric/recorder/watchdog feeds, and the fleet-level
// guarantees that make it worth running — containment is exactly 100% on
// fault-free runs, dips only under injected faults, and every merged
// report is bit-identical for any thread count or predictor layout.

#include "obs/audit.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fleet/sharded_fleet.h"
#include "obs/export.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace kc {
namespace obs {
namespace {

// ------------------------------------------------------------- unit tests

TEST(AuditConfigTest, ClampsDegenerateValues) {
  AuditConfig config;
  config.sample_every = 0;
  config.slo_window_ticks = -5;
  config.burning_after = 0;
  config.exhausted_after = 0;
  PrecisionAuditor auditor(config);
  EXPECT_EQ(auditor.config().sample_every, 1);
  EXPECT_EQ(auditor.config().slo_window_ticks, 1);
  EXPECT_EQ(auditor.config().burning_after, 1);
  // exhausted_after can never undercut burning_after.
  EXPECT_EQ(auditor.config().exhausted_after, 1);
}

TEST(AuditTest, ShouldSampleIsAPureFunctionOfTheTick) {
  AuditConfig config;
  config.sample_every = 4;
  PrecisionAuditor auditor(config);
  EXPECT_TRUE(auditor.ShouldSample(0));
  EXPECT_FALSE(auditor.ShouldSample(1));
  EXPECT_FALSE(auditor.ShouldSample(3));
  EXPECT_TRUE(auditor.ShouldSample(4));
  EXPECT_TRUE(auditor.ShouldSample(4000));
}

TEST(AuditTest, SampleTracksContainmentAndUtilization) {
  PrecisionAuditor auditor;
  SourceAudit* audit = auditor.ForSource(7);
  audit->Sample(/*tick=*/0, /*abs_error=*/0.2, /*bound=*/1.0,
                /*staleness_ticks=*/3, /*degraded=*/false);
  audit->Sample(1, 0.6, 1.0, 4, false);
  audit->Sample(2, 1.5, 1.0, 9, true);  // Violation, degraded.
  EXPECT_EQ(audit->samples(), 3);
  EXPECT_EQ(audit->contained(), 2);
  EXPECT_EQ(audit->violations(), 1);
  EXPECT_EQ(audit->degraded_samples(), 1);
  EXPECT_EQ(audit->last_staleness(), 9);
  EXPECT_DOUBLE_EQ(audit->max_utilization(), 1.5);
  EXPECT_DOUBLE_EQ(audit->mean_utilization(), (0.2 + 0.6 + 1.5) / 3.0);
}

TEST(AuditTest, NonPositiveBoundCountsAsFullBurn) {
  PrecisionAuditor auditor;
  SourceAudit* audit = auditor.ForSource(0);
  audit->Sample(0, 0.0, 0.0, 0, false);  // No error, no bound: contained.
  EXPECT_EQ(audit->contained(), 1);
  EXPECT_DOUBLE_EQ(audit->max_utilization(), 0.0);
  audit->Sample(1, 0.5, 0.0, 0, false);  // Any error vs zero bound burns.
  EXPECT_EQ(audit->violations(), 1);
  EXPECT_DOUBLE_EQ(audit->max_utilization(), 2.0);
}

TEST(AuditTest, SloWindowStateMachineBurnsAndRecovers) {
  AuditConfig config;
  config.sample_every = 1;
  config.slo_window_ticks = 8;
  config.burning_after = 1;
  config.exhausted_after = 3;
  PrecisionAuditor auditor(config);
  SourceAudit* audit = auditor.ForSource(0);

  // Window [0, 8): one violation -> BURNING once the window closes.
  for (int64_t t = 0; t < 8; ++t) {
    audit->Sample(t, t == 3 ? 2.0 : 0.1, 1.0, 0, false);
  }
  EXPECT_EQ(audit->slo_state(), SloState::kOk);  // Not yet closed.
  audit->Sample(8, 0.1, 1.0, 0, false);          // Closes [0, 8).
  EXPECT_EQ(audit->slo_state(), SloState::kBurning);
  EXPECT_EQ(audit->windows(), 1);

  // Window [8, 16): three violations -> EXHAUSTED.
  for (int64_t t = 9; t < 16; ++t) audit->Sample(t, 5.0, 1.0, 0, false);
  audit->Sample(16, 0.1, 1.0, 0, false);
  EXPECT_EQ(audit->slo_state(), SloState::kExhausted);

  // Window [16, 24): clean -> budget recovers to OK.
  for (int64_t t = 17; t < 24; ++t) audit->Sample(t, 0.1, 1.0, 0, false);
  audit->Sample(24, 0.1, 1.0, 0, false);
  EXPECT_EQ(audit->slo_state(), SloState::kOk);
  EXPECT_EQ(audit->windows(), 3);
}

TEST(AuditTest, SkippedWindowsCloseOnTheNextSample) {
  AuditConfig config;
  config.slo_window_ticks = 10;
  PrecisionAuditor auditor(config);
  SourceAudit* audit = auditor.ForSource(0);
  audit->Sample(0, 2.0, 1.0, 0, false);  // Violation in [0, 10).
  // A long silent gap: the next sample lands in [40, 50) and closes the
  // stale window, re-anchoring on the current tick's grid cell.
  audit->Sample(43, 0.1, 1.0, 0, false);
  EXPECT_EQ(audit->windows(), 1);
  EXPECT_EQ(audit->slo_state(), SloState::kBurning);
  audit->Sample(50, 0.1, 1.0, 0, false);  // Closes the clean [40, 50).
  EXPECT_EQ(audit->slo_state(), SloState::kOk);
}

TEST(AuditTest, MetricsMirrorSampleCounts) {
  MetricRegistry registry;
  AuditConfig config;
  config.slo_window_ticks = 4;
  PrecisionAuditor auditor(config);
  auditor.BindMetrics(&registry);
  SourceAudit* audit = auditor.ForSource(0);
  for (int64_t t = 0; t < 9; ++t) {
    audit->Sample(t, t % 4 == 1 ? 9.0 : 0.5, 1.0, t, t % 2 == 0);
  }
  EXPECT_EQ(registry.GetCounter("kc.audit.samples")->value(), 9);
  EXPECT_EQ(registry.GetCounter("kc.audit.violations")->value(),
            audit->violations());
  EXPECT_EQ(registry.GetCounter("kc.audit.degraded_samples")->value(), 5);
  EXPECT_EQ(registry.GetCounter("kc.audit.windows")->value(), 2);
  EXPECT_GT(registry.GetCounter("kc.audit.slo_transitions")->value(), 0);
  EXPECT_EQ(registry
                .GetHistogram("kc.audit.utilization",
                              Buckets::Linear(0.05, 0.05, 20))
                ->count(),
            9);
  EXPECT_DOUBLE_EQ(registry.GetGauge("kc.audit.sources_ok")->value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("kc.audit.sources_burning")->value(),
                   1.0);
}

TEST(AuditTest, ViolationsAndTransitionsLandInTheFlightRecorder) {
  FlightRecorder recorder(32);
  AuditConfig config;
  config.slo_window_ticks = 4;
  PrecisionAuditor auditor(config);
  auditor.BindRecorder(&recorder);
  SourceAudit* audit = auditor.ForSource(5);
  audit->Sample(0, 3.0, 1.0, 0, false);  // AUDIT_VIOLATION.
  audit->Sample(4, 0.1, 1.0, 0, false);  // Closes [0, 4): AUDIT_SLO_*.
  std::vector<RecorderEvent> events = recorder.ForSource(5)->Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, RecorderEventKind::kAuditViolation);
  EXPECT_EQ(events[0].tick, 0);
  EXPECT_DOUBLE_EQ(events[0].value, 3.0);  // |error| / bound.
  EXPECT_EQ(events[1].kind, RecorderEventKind::kAuditSloBurning);
  EXPECT_DOUBLE_EQ(events[1].value, 1.0);  // Window violation count.
}

TEST(AuditTest, SloWindowsFeedTheWatchdog) {
  HealthMonitor health;
  AuditConfig config;
  config.slo_window_ticks = 4;
  PrecisionAuditor auditor(config);
  health.ForSource(0, /*obs_dim=*/1);  // Fleets bind health first.
  auditor.BindHealth(&health);
  SourceAudit* audit = auditor.ForSource(0);
  for (int64_t t = 0; t <= 8; ++t) audit->Sample(t, 9.0, 1.0, 0, false);
  // Two breached windows closed -> the audit detector saw both.
  EXPECT_EQ(health.ForSource(0, 1)->audit_breaches(), 2);
  EXPECT_NE(health.ForSource(0, 1)->state(), HealthState::kOk);
}

TEST(AuditTest, QueryLedgerTalliesOutcomesByName) {
  PrecisionAuditor auditor;
  auditor.OnQuery("b", true, false, false, false);
  auditor.OnQuery("a", true, true, true, false);
  auditor.OnQuery("a", false, false, false, false);
  auditor.OnQuery("a", true, false, false, true);
  std::vector<AuditQueryTally> tallies = auditor.QueryTallies();
  ASSERT_EQ(tallies.size(), 2u);  // Sorted by name.
  EXPECT_EQ(tallies[0].name, "a");
  EXPECT_EQ(tallies[0].evals, 2);
  EXPECT_EQ(tallies[0].failed, 1);
  EXPECT_EQ(tallies[0].stale, 1);
  EXPECT_EQ(tallies[0].degraded, 1);
  EXPECT_EQ(tallies[0].unhealthy, 1);
  EXPECT_EQ(tallies[1].name, "b");
  EXPECT_EQ(tallies[1].evals, 1);
}

TEST(AuditTest, SingleArenaReportsAreDeterministic) {
  AuditConfig config;
  config.sample_every = 2;
  PrecisionAuditor auditor(config);
  auditor.ForSource(1)->Sample(0, 0.25, 1.0, 2, false);
  auditor.ForSource(0)->Sample(0, 2.0, 1.0, 5, true);
  auditor.OnQuery("avg", true, false, false, false);

  std::string text = auditor.ReportText();
  EXPECT_NE(text.find("source    0"), std::string::npos);
  EXPECT_NE(text.find("source    1"), std::string::npos);
  EXPECT_NE(text.find("containment=50%"), std::string::npos);
  EXPECT_NE(text.find("query avg"), std::string::npos);

  std::string json = auditor.ReportJson();
  EXPECT_NE(json.find("\"sample_every\":2"), std::string::npos);
  EXPECT_NE(json.find("\"totals\":"), std::string::npos);
  EXPECT_NE(json.find("\"violations\":1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"avg\""), std::string::npos);
  // Repeated renders are bit-identical.
  EXPECT_EQ(text, auditor.ReportText());
  EXPECT_EQ(json, auditor.ReportJson());
}

// ------------------------------------------------------------ fleet tests

KalmanPredictor::Config ScalarKalman() {
  KalmanPredictor::Config config;
  config.model = MakeRandomWalkModel(0.1, 0.25);
  return config;
}

void AddStandardSources(ShardedFleet& fleet, int n) {
  for (int i = 0; i < n; ++i) {
    RandomWalkGenerator::Config walk;
    walk.start = 5.0 * i;
    walk.step_sigma = 0.2 + 0.05 * (i % 4);
    fleet.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                    std::make_unique<KalmanPredictor>(ScalarKalman()),
                    /*delta=*/0.5 + 0.1 * (i % 3));
  }
}

TEST(AuditFleetTest, FaultFreeContainmentIsExactly100Percent) {
  // The paper's guarantee, continuously verified: on a lossless channel
  // the replica tracks the agent in lockstep, so every audited sample of
  // every source is contained — not approximately, exactly.
  ShardedFleet::Config config;
  config.seed = 1234;
  config.threads = 3;
  config.num_shards = 8;
  ShardedFleet fleet(config);
  obs::AuditConfig audit;
  audit.sample_every = 1;  // Audit every tick.
  fleet.EnableAudit(audit);
  AddStandardSources(fleet, 16);
  ASSERT_TRUE(fleet.Run(200).ok());

  for (int32_t id = 0; id < 16; ++id) {
    size_t shard = fleet.server().ShardOf(id);
    const SourceAudit* audit_entry =
        fleet.server().shard_audit(shard)->Find(id);
    ASSERT_NE(audit_entry, nullptr) << "source " << id;
    EXPECT_GT(audit_entry->samples(), 0) << "source " << id;
    EXPECT_EQ(audit_entry->contained(), audit_entry->samples())
        << "source " << id;
    EXPECT_EQ(audit_entry->violations(), 0) << "source " << id;
    EXPECT_LE(audit_entry->max_utilization(), 1.0) << "source " << id;
    EXPECT_EQ(audit_entry->slo_state(), SloState::kOk) << "source " << id;
  }
  std::string summary = fleet.AuditSummaryLine();
  EXPECT_NE(summary.find("containment=100%"), std::string::npos) << summary;
  EXPECT_NE(summary.find("exhausted=0"), std::string::npos) << summary;
}

TEST(AuditFleetTest, ContainmentDipsOnlyUnderInjectedFaults) {
  // Heavy injected loss with recovery: while a replica is silently stale
  // (before the watchdog declares it desynced and quarantine widens the
  // bound) its answers drift past the contract — exactly the dip the
  // auditor exists to expose.
  ShardedFleet::Config config;
  config.seed = 4242;
  config.threads = 2;
  config.num_shards = 8;
  config.channel.loss_prob = 0.05;
  config.channel.faults.burst_enter_prob = 0.02;
  config.channel.faults.burst_exit_prob = 0.3;
  config.channel.faults.burst_loss_prob = 0.9;
  config.channel.faults.partition_start = 80;
  config.channel.faults.partition_length = 10;
  config.recovery.enabled = true;
  config.recovery.suspect_after_silent_ticks = 6;
  ShardedFleet fleet(config);
  obs::AuditConfig audit;
  audit.sample_every = 1;
  audit.slo_window_ticks = 32;
  fleet.EnableAudit(audit);
  AddStandardSources(fleet, 12);
  ASSERT_TRUE(fleet.Run(300).ok());

  int64_t violations = 0;
  int64_t samples = 0;
  int64_t degraded = 0;
  for (int32_t id = 0; id < 12; ++id) {
    const SourceAudit* entry =
        fleet.server().shard_audit(fleet.server().ShardOf(id))->Find(id);
    ASSERT_NE(entry, nullptr);
    violations += entry->violations();
    samples += entry->samples();
    degraded += entry->degraded_samples();
  }
  EXPECT_GT(violations, 0);
  EXPECT_LT(violations, samples / 2);  // Faults dent, not destroy.
  EXPECT_GT(degraded, 0);  // Quarantined (bound-widened) samples observed.
  std::string summary = fleet.AuditSummaryLine();
  EXPECT_EQ(summary.find("containment=100%"), std::string::npos) << summary;
}

struct AuditArtifacts {
  std::string text;
  std::string json;
  std::string summary;
  std::string metrics;
};

AuditArtifacts RunAuditedFleet(size_t threads, bool pooling,
                               size_t sweep_threads) {
  ShardedFleet::Config config;
  config.seed = 777;
  config.threads = threads;
  config.num_shards = 8;
  config.pooling = pooling;
  config.sweep_threads = sweep_threads;
  config.channel.loss_prob = 0.1;
  config.recovery.enabled = true;
  ShardedFleet fleet(config);
  fleet.EnableMetrics();
  obs::AuditConfig audit;
  audit.sample_every = 2;
  audit.slo_window_ticks = 64;
  fleet.EnableAudit(audit);
  AddStandardSources(fleet, 12);
  EXPECT_TRUE(fleet.Run(2).ok());
  QuerySpec spec;
  spec.kind = AggregateKind::kAvg;
  for (int32_t id = 0; id < 12; ++id) spec.sources.push_back(id);
  EXPECT_TRUE(fleet.server().AddQuery("all", spec).ok());
  for (int t = 0; t < 250; ++t) {
    EXPECT_TRUE(fleet.Step().ok());
    if (t % 10 == 0) fleet.server().Evaluate("all");
  }
  AuditArtifacts out;
  out.text = fleet.AuditReportText();
  out.json = fleet.AuditReportJson();
  out.summary = fleet.AuditSummaryLine();
  MetricRegistry merged;
  fleet.MergeMetricsInto(&merged);
  out.metrics = ExportText(merged, /*include_wall_clock=*/false, "kc.audit");
  return out;
}

TEST(AuditFleetTest, ReportsBitIdenticalForAnyThreadCountAndLayout) {
  // The merged audit report is part of the determinism contract: any
  // thread count, the per-object and pooled predictor layouts, and any
  // sweep pool must render byte-identical reports.
  AuditArtifacts one = RunAuditedFleet(1, /*pooling=*/true,
                                       /*sweep_threads=*/0);
  AuditArtifacts four = RunAuditedFleet(4, true, 0);
  AuditArtifacts object = RunAuditedFleet(2, /*pooling=*/false, 0);
  AuditArtifacts swept = RunAuditedFleet(2, true, /*sweep_threads=*/4);
  EXPECT_EQ(one.text, four.text);
  EXPECT_EQ(one.json, four.json);
  EXPECT_EQ(one.summary, four.summary);
  EXPECT_EQ(one.metrics, four.metrics);
  EXPECT_EQ(one.text, object.text);
  EXPECT_EQ(one.json, object.json);
  EXPECT_EQ(one.metrics, object.metrics);
  EXPECT_EQ(one.text, swept.text);
  EXPECT_EQ(one.json, swept.json);
  EXPECT_EQ(one.metrics, swept.metrics);

  // The run exercised the full surface: per-source lines, fleet totals,
  // the query ledger, and the kc.audit.* metric family.
  EXPECT_NE(one.text.find("source    0"), std::string::npos);
  EXPECT_NE(one.text.find("source   11"), std::string::npos);
  EXPECT_NE(one.text.find("query all"), std::string::npos);
  EXPECT_NE(one.json.find("\"queries\":"), std::string::npos);
  EXPECT_NE(one.metrics.find("kc.audit.samples"), std::string::npos);
  EXPECT_NE(one.metrics.find("kc.audit.utilization"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace kc
