#include "linalg/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace kc {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  m(1, 1) = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 1), 9.0);
}

TEST(MatrixTest, IdentityDiagonalScalar) {
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);

  Matrix diag = Matrix::Diagonal(Vector{2.0, 3.0});
  EXPECT_DOUBLE_EQ(diag(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(diag(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(diag(0, 1), 0.0);

  Matrix scalar = Matrix::ScalarDiagonal(2, 5.0);
  EXPECT_DOUBLE_EQ(scalar(1, 1), 5.0);
}

TEST(MatrixTest, OuterProduct) {
  Matrix o = Matrix::Outer(Vector{1.0, 2.0}, Vector{3.0, 4.0, 5.0});
  EXPECT_EQ(o.rows(), 2u);
  EXPECT_EQ(o.cols(), 3u);
  EXPECT_DOUBLE_EQ(o(1, 2), 10.0);
}

TEST(MatrixTest, Arithmetic) {
  Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  Matrix b{{0.0, 2.0}, {3.0, 0.0}};
  Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 1), 2.0);
  Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(1, 0), -3.0);
  Matrix scaled = b * 2.0;
  EXPECT_DOUBLE_EQ(scaled(0, 1), 4.0);
  Matrix negated = -a;
  EXPECT_DOUBLE_EQ(negated(0, 0), -1.0);
}

TEST(MatrixTest, MatrixMultiply) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, NonSquareMultiply) {
  Matrix a{{1.0, 2.0, 3.0}};           // 1x3
  Matrix b{{1.0}, {2.0}, {3.0}};       // 3x1
  Matrix c = a * b;                    // 1x1
  EXPECT_DOUBLE_EQ(c(0, 0), 14.0);
  Matrix d = b * a;                    // 3x3
  EXPECT_DOUBLE_EQ(d(2, 2), 9.0);
}

TEST(MatrixTest, MatrixVectorMultiply) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Vector v{1.0, 1.0};
  Vector out = a * v;
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
}

TEST(MatrixTest, TransposeRowColDiag) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(AlmostEqual(a.Row(1), Vector({4.0, 5.0, 6.0})));
  EXPECT_TRUE(AlmostEqual(a.Col(2), Vector({3.0, 6.0})));
  EXPECT_TRUE(AlmostEqual(a.Diag(), Vector({1.0, 5.0})));
}

TEST(MatrixTest, TraceMaxAbsFrobenius) {
  Matrix a{{1.0, -5.0}, {2.0, 3.0}};
  EXPECT_DOUBLE_EQ(a.Trace(), 4.0);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 5.0);
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), std::sqrt(1.0 + 25.0 + 4.0 + 9.0));
}

TEST(MatrixTest, SymmetryCheckAndSymmetrize) {
  Matrix sym{{2.0, 1.0}, {1.0, 2.0}};
  EXPECT_TRUE(sym.IsSymmetric());
  Matrix asym{{2.0, 1.0}, {1.0 + 1e-6, 2.0}};
  EXPECT_FALSE(asym.IsSymmetric(1e-9));
  asym.Symmetrize();
  EXPECT_TRUE(asym.IsSymmetric(1e-12));
  EXPECT_NEAR(asym(0, 1), 1.0 + 5e-7, 1e-12);
}

TEST(MatrixTest, QuadraticForm) {
  Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  Vector x{1.0, 2.0};
  EXPECT_DOUBLE_EQ(QuadraticForm(a, x), 2.0 + 12.0);
}

TEST(MatrixTest, SandwichIsABAt) {
  Matrix a{{1.0, 1.0}, {0.0, 1.0}};
  Matrix b = Matrix::Identity(2);
  Matrix s = Sandwich(a, b);  // A A^T
  EXPECT_DOUBLE_EQ(s(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 1.0);
}

TEST(MatrixTest, EqualityAndAlmostEqual) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.0, 2.0}};
  EXPECT_TRUE(a == b);
  Matrix c{{1.0, 2.0 + 1e-12}};
  EXPECT_TRUE(AlmostEqual(a, c, 1e-9));
  EXPECT_FALSE(AlmostEqual(a, Matrix{{1.0}, {2.0}}, 1e-9));
}

TEST(MatrixTest, ToStringFormat) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a.ToString(), "[[1, 2], [3, 4]]");
}

}  // namespace
}  // namespace kc
