// Tests for the server-to-source control downlink (SET_BOUND push).

#include <gtest/gtest.h>

#include "net/channel.h"
#include "server/allocation.h"
#include "server/simulation.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace kc {
namespace {

Message SetBound(int32_t source, double delta) {
  Message msg;
  msg.source_id = source;
  msg.type = MessageType::kSetBound;
  msg.payload = {delta};
  return msg;
}

TEST(AgentControlTest, SetBoundUpdatesDelta) {
  Channel channel;
  channel.SetReceiver([](const Message&) {});
  AgentConfig config;
  config.delta = 1.0;
  SourceAgent agent(3, std::make_unique<ValueCachePredictor>(), config,
                    &channel);
  ASSERT_TRUE(agent.OnControl(SetBound(3, 2.5)).ok());
  EXPECT_DOUBLE_EQ(agent.delta(), 2.5);
}

TEST(AgentControlTest, RejectsBadControl) {
  Channel channel;
  channel.SetReceiver([](const Message&) {});
  AgentConfig config;
  SourceAgent agent(3, std::make_unique<ValueCachePredictor>(), config,
                    &channel);
  EXPECT_FALSE(agent.OnControl(SetBound(4, 1.0)).ok());  // Wrong source.
  EXPECT_FALSE(agent.OnControl(SetBound(3, -1.0)).ok()); // Bad bound.
  Message empty;
  empty.source_id = 3;
  empty.type = MessageType::kSetBound;
  EXPECT_FALSE(agent.OnControl(empty).ok());             // No payload.
  Message wrong_type;
  wrong_type.source_id = 3;
  wrong_type.type = MessageType::kCorrection;
  EXPECT_FALSE(agent.OnControl(wrong_type).ok());
}

TEST(ServerControlTest, PushBoundRequiresSinkAndValidArgs) {
  StreamServer server;
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  EXPECT_FALSE(server.PushBound(0, 1.0).ok());  // No sink.
  server.SetControlSink([](const Message&) { return Status::Ok(); });
  EXPECT_FALSE(server.PushBound(99, 1.0).ok());  // Unknown source.
  EXPECT_FALSE(server.PushBound(0, 0.0).ok());   // Non-positive bound.
  EXPECT_TRUE(server.PushBound(0, 1.0).ok());
}

TEST(FleetControlTest, PushedBoundReachesAgentAndThenReplica) {
  Fleet fleet;
  RandomWalkGenerator::Config walk;
  walk.step_sigma = 1.0;  // Chatty: corrections come quickly.
  fleet.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                  std::make_unique<ValueCachePredictor>(), 0.5);
  ASSERT_TRUE(fleet.Run(5).ok());
  EXPECT_DOUBLE_EQ(fleet.agent(0).delta(), 0.5);

  ASSERT_TRUE(fleet.server().PushBound(0, 3.0).ok());
  EXPECT_DOUBLE_EQ(fleet.agent(0).delta(), 3.0);  // Synchronous downlink.
  EXPECT_EQ(fleet.TotalControlMessages(), 1);

  // The replica still reports the old bound until the next data message
  // confirms it (the contract is never overstated)...
  const ServerReplica* replica = fleet.server().replica(0);
  ASSERT_NE(replica, nullptr);
  EXPECT_DOUBLE_EQ(replica->bound(), 0.5);

  // ...and adopts the new bound with the next correction.
  ASSERT_TRUE(fleet.Run(200).ok());
  EXPECT_DOUBLE_EQ(replica->bound(), 3.0);
}

TEST(FleetControlTest, ServerDrivenReallocationLoop) {
  // The full server-side loop: archive -> (observed message counts) ->
  // adaptive allocator -> PushBound. No SetDelta back door.
  Fleet fleet;
  const double sigmas[2] = {0.1, 2.0};
  for (int i = 0; i < 2; ++i) {
    RandomWalkGenerator::Config walk;
    walk.step_sigma = sigmas[i];
    fleet.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                    std::make_unique<ValueCachePredictor>(), 1.0);
  }
  AdaptiveAllocator allocator(2.0, 2);
  std::vector<int64_t> last = {0, 0};
  for (int window = 0; window < 10; ++window) {
    ASSERT_TRUE(fleet.Run(300).ok());
    std::vector<int64_t> delta_msgs(2);
    for (int32_t id = 0; id < 2; ++id) {
      int64_t now = fleet.MessagesOf(id);
      delta_msgs[static_cast<size_t>(id)] = now - last[static_cast<size_t>(id)];
      last[static_cast<size_t>(id)] = now;
    }
    allocator.Rebalance(delta_msgs);
    for (int32_t id = 0; id < 2; ++id) {
      ASSERT_TRUE(fleet.server()
                      .PushBound(id, allocator.deltas()[static_cast<size_t>(id)])
                      .ok());
    }
  }
  // Budget flowed to the volatile source, entirely via the control path.
  EXPECT_GT(fleet.agent(1).delta(), 2.0 * fleet.agent(0).delta());
  EXPECT_EQ(fleet.TotalControlMessages(), 20);
}

}  // namespace
}  // namespace kc
