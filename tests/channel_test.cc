#include "net/channel.h"

#include <gtest/gtest.h>

#include "net/message.h"

namespace kc {
namespace {

Message MakeMessage(size_t payload_doubles) {
  Message msg;
  msg.source_id = 3;
  msg.type = MessageType::kCorrection;
  msg.seq = 10;
  msg.time = 1.5;
  msg.payload.assign(payload_doubles, 1.0);
  return msg;
}

TEST(MessageTest, SizeModel) {
  EXPECT_EQ(MakeMessage(0).SizeBytes(), Message::kHeaderBytes);
  EXPECT_EQ(MakeMessage(3).SizeBytes(), Message::kHeaderBytes + 24);
}

TEST(MessageTest, TypeNames) {
  EXPECT_STREQ(MessageTypeName(MessageType::kInit), "INIT");
  EXPECT_STREQ(MessageTypeName(MessageType::kCorrection), "CORRECTION");
  EXPECT_STREQ(MessageTypeName(MessageType::kFullSync), "FULL_SYNC");
  EXPECT_STREQ(MessageTypeName(MessageType::kHeartbeat), "HEARTBEAT");
}

TEST(MessageTest, ToStringMentionsEssentials) {
  std::string s = MakeMessage(2).ToString();
  EXPECT_NE(s.find("CORRECTION"), std::string::npos);
  EXPECT_NE(s.find("src=3"), std::string::npos);
}

TEST(ChannelTest, RequiresReceiver) {
  Channel channel;
  EXPECT_FALSE(channel.Send(MakeMessage(1)).ok());
}

TEST(ChannelTest, DeliversAndCounts) {
  Channel channel;
  int delivered = 0;
  channel.SetReceiver([&delivered](const Message&) { ++delivered; });
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(channel.Send(MakeMessage(2)).ok());
  }
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(channel.stats().messages_sent, 5);
  EXPECT_EQ(channel.stats().messages_delivered, 5);
  EXPECT_EQ(channel.stats().messages_dropped, 0);
  EXPECT_EQ(channel.stats().bytes_sent,
            5 * static_cast<int64_t>(MakeMessage(2).SizeBytes()));
  EXPECT_EQ(channel.stats().by_type[static_cast<size_t>(
                MessageType::kCorrection)],
            5);
}

TEST(ChannelTest, LossDropsApproximatelyAtRate) {
  Channel::Config config;
  config.loss_prob = 0.3;
  config.seed = 7;
  Channel channel(config);
  int delivered = 0;
  channel.SetReceiver([&delivered](const Message&) { ++delivered; });
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(channel.Send(MakeMessage(1)).ok());
  }
  EXPECT_EQ(channel.stats().messages_sent, n);
  EXPECT_EQ(channel.stats().messages_dropped + channel.stats().messages_delivered,
            n);
  double drop_rate =
      static_cast<double>(channel.stats().messages_dropped) / n;
  EXPECT_NEAR(drop_rate, 0.3, 0.03);
  EXPECT_EQ(delivered, channel.stats().messages_delivered);
}

TEST(ChannelTest, BytesSentChargedEvenWhenDropped) {
  Channel::Config config;
  config.loss_prob = 1.0;
  Channel channel(config);
  channel.SetReceiver([](const Message&) { FAIL() << "must not deliver"; });
  ASSERT_TRUE(channel.Send(MakeMessage(2)).ok());
  EXPECT_GT(channel.stats().bytes_sent, 0);
  EXPECT_EQ(channel.stats().bytes_delivered, 0);
}

TEST(ChannelTest, ResetStatsClears) {
  Channel channel;
  channel.SetReceiver([](const Message&) {});
  ASSERT_TRUE(channel.Send(MakeMessage(1)).ok());
  channel.ResetStats();
  EXPECT_EQ(channel.stats().messages_sent, 0);
  EXPECT_EQ(channel.stats().bytes_sent, 0);
}

TEST(ChannelTest, LossDecidedAtSendTimeUnderLatency) {
  // Loss is decided when the message is offered to the link, not at
  // delivery: a dropped message must never enter the pending queue, and
  // AdvanceTick must never deliver it later.
  Channel::Config config;
  config.loss_prob = 1.0;
  config.latency_ticks = 2;
  Channel channel(config);
  channel.SetReceiver([](const Message&) { FAIL() << "must not deliver"; });
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(channel.Send(MakeMessage(1)).ok());
  }
  EXPECT_EQ(channel.in_flight(), 0u) << "dropped messages must not be queued";
  for (int i = 0; i < 5; ++i) channel.AdvanceTick();
  EXPECT_EQ(channel.stats().messages_sent, 4);
  EXPECT_EQ(channel.stats().messages_dropped, 4);
  EXPECT_EQ(channel.stats().messages_delivered, 0);
  EXPECT_EQ(channel.stats().bytes_delivered, 0);
}

TEST(ChannelTest, PartialLossWithLatencyAccountsExactly) {
  Channel::Config config;
  config.loss_prob = 0.4;
  config.latency_ticks = 3;
  config.seed = 11;
  Channel channel(config);
  int delivered = 0;
  channel.SetReceiver([&delivered](const Message&) { ++delivered; });
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(channel.Send(MakeMessage(1)).ok());
    channel.AdvanceTick();
  }
  // Drain the transit window.
  for (int i = 0; i < 3; ++i) channel.AdvanceTick();
  EXPECT_EQ(channel.in_flight(), 0u);
  EXPECT_EQ(channel.stats().messages_sent, n);
  EXPECT_EQ(channel.stats().messages_delivered + channel.stats().messages_dropped,
            n);
  EXPECT_EQ(delivered, channel.stats().messages_delivered);
  EXPECT_GT(channel.stats().messages_dropped, 0);
  EXPECT_GT(channel.stats().messages_delivered, 0);
  EXPECT_EQ(channel.stats().bytes_delivered,
            channel.stats().messages_delivered *
                static_cast<int64_t>(MakeMessage(1).SizeBytes()));
}

TEST(NetworkStatsTest, ToStringMentionsCounts) {
  Channel channel;
  channel.SetReceiver([](const Message&) {});
  ASSERT_TRUE(channel.Send(MakeMessage(1)).ok());
  std::string s = channel.stats().ToString();
  EXPECT_NE(s.find("sent=1"), std::string::npos);
}

TEST(NetworkStatsTest, ToStringReportsDeliveredBytesAndPerType) {
  // Regression: ToString used to print bytes_sent under the ambiguous
  // label "bytes=" and omit bytes_delivered (the number the paper's
  // overhead metric uses) and the per-type breakdown entirely.
  Channel channel;
  channel.SetReceiver([](const Message&) {});
  ASSERT_TRUE(channel.Send(MakeMessage(2)).ok());
  std::string s = channel.stats().ToString();
  EXPECT_NE(s.find("bytes_sent=36"), std::string::npos) << s;
  EXPECT_NE(s.find("bytes_delivered=36"), std::string::npos) << s;
  EXPECT_NE(s.find("CORRECTION:1"), std::string::npos) << s;
}

TEST(NetworkStatsTest, MergeSumsShardLocalStats) {
  // Two shard-local channels; the fleet-wide view merges on read.
  Channel::Config lossy;
  lossy.loss_prob = 1.0;
  Channel a(lossy);
  Channel b;
  a.SetReceiver([](const Message&) {});
  b.SetReceiver([](const Message&) {});
  ASSERT_TRUE(a.Send(MakeMessage(1)).ok());
  ASSERT_TRUE(a.Send(MakeMessage(1)).ok());
  ASSERT_TRUE(b.Send(MakeMessage(3)).ok());

  NetworkStats merged;
  merged.Merge(a.stats());
  merged.Merge(b.stats());
  EXPECT_EQ(merged.messages_sent, 3);
  EXPECT_EQ(merged.messages_dropped, 2);
  EXPECT_EQ(merged.messages_delivered, 1);
  EXPECT_EQ(merged.bytes_sent,
            2 * static_cast<int64_t>(MakeMessage(1).SizeBytes()) +
                static_cast<int64_t>(MakeMessage(3).SizeBytes()));
  EXPECT_EQ(merged.bytes_delivered,
            static_cast<int64_t>(MakeMessage(3).SizeBytes()));
  EXPECT_EQ(merged.by_type[static_cast<size_t>(MessageType::kCorrection)], 1);
}

}  // namespace
}  // namespace kc
