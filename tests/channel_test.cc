#include "net/channel.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "net/fault.h"
#include "net/message.h"

namespace kc {
namespace {

Message MakeMessage(size_t payload_doubles) {
  Message msg;
  msg.source_id = 3;
  msg.type = MessageType::kCorrection;
  msg.seq = 10;
  msg.time = 1.5;
  msg.payload.assign(payload_doubles, 1.0);
  return msg;
}

TEST(MessageTest, SizeModel) {
  // Exact framed encoding: 1-byte length prefix + body of 1-byte zigzag
  // varints for source_id=3, seq=10, wire_seq=0, the type byte, the
  // 8-byte timestamp, and 8 bytes per payload double.
  EXPECT_EQ(MakeMessage(0).SizeBytes(), 13u);
  EXPECT_EQ(MakeMessage(3).SizeBytes(), 13u + 24u);
}

TEST(MessageTest, SizeModelIsValueDependent) {
  // Varint header fields: large sequence numbers cost more bytes on the
  // wire, and SizeBytes() tracks that exactly (the codec parity contract
  // in tests/codec_test.cc pins SizeBytes == encoded size).
  Message small = MakeMessage(0);
  Message large = MakeMessage(0);
  large.seq = int64_t{1} << 40;
  large.wire_seq = -(int64_t{1} << 40);
  EXPECT_GT(large.SizeBytes(), small.SizeBytes());
}

TEST(MessageTest, TypeNames) {
  EXPECT_STREQ(MessageTypeName(MessageType::kInit), "INIT");
  EXPECT_STREQ(MessageTypeName(MessageType::kCorrection), "CORRECTION");
  EXPECT_STREQ(MessageTypeName(MessageType::kFullSync), "FULL_SYNC");
  EXPECT_STREQ(MessageTypeName(MessageType::kHeartbeat), "HEARTBEAT");
}

TEST(MessageTest, ToStringMentionsEssentials) {
  std::string s = MakeMessage(2).ToString();
  EXPECT_NE(s.find("CORRECTION"), std::string::npos);
  EXPECT_NE(s.find("src=3"), std::string::npos);
}

TEST(ChannelTest, RequiresReceiver) {
  Channel channel;
  EXPECT_FALSE(channel.Send(MakeMessage(1)).ok());
}

TEST(ChannelTest, DeliversAndCounts) {
  Channel channel;
  int delivered = 0;
  channel.SetReceiver([&delivered](const Message&) { ++delivered; });
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(channel.Send(MakeMessage(2)).ok());
  }
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(channel.stats().messages_sent, 5);
  EXPECT_EQ(channel.stats().messages_delivered, 5);
  EXPECT_EQ(channel.stats().messages_dropped, 0);
  EXPECT_EQ(channel.stats().bytes_sent,
            5 * static_cast<int64_t>(MakeMessage(2).SizeBytes()));
  EXPECT_EQ(channel.stats().by_type[static_cast<size_t>(
                MessageType::kCorrection)],
            5);
}

TEST(ChannelTest, LossDropsApproximatelyAtRate) {
  Channel::Config config;
  config.loss_prob = 0.3;
  config.seed = 7;
  Channel channel(config);
  int delivered = 0;
  channel.SetReceiver([&delivered](const Message&) { ++delivered; });
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(channel.Send(MakeMessage(1)).ok());
  }
  EXPECT_EQ(channel.stats().messages_sent, n);
  EXPECT_EQ(channel.stats().messages_dropped + channel.stats().messages_delivered,
            n);
  double drop_rate =
      static_cast<double>(channel.stats().messages_dropped) / n;
  EXPECT_NEAR(drop_rate, 0.3, 0.03);
  EXPECT_EQ(delivered, channel.stats().messages_delivered);
}

TEST(ChannelTest, BytesSentChargedEvenWhenDropped) {
  Channel::Config config;
  config.loss_prob = 1.0;
  Channel channel(config);
  channel.SetReceiver([](const Message&) { FAIL() << "must not deliver"; });
  ASSERT_TRUE(channel.Send(MakeMessage(2)).ok());
  EXPECT_GT(channel.stats().bytes_sent, 0);
  EXPECT_EQ(channel.stats().bytes_delivered, 0);
}

TEST(ChannelTest, ResetStatsClears) {
  Channel channel;
  channel.SetReceiver([](const Message&) {});
  ASSERT_TRUE(channel.Send(MakeMessage(1)).ok());
  channel.ResetStats();
  EXPECT_EQ(channel.stats().messages_sent, 0);
  EXPECT_EQ(channel.stats().bytes_sent, 0);
}

TEST(ChannelTest, LossDecidedAtSendTimeUnderLatency) {
  // Loss is decided when the message is offered to the link, not at
  // delivery: a dropped message must never enter the pending queue, and
  // AdvanceTick must never deliver it later.
  Channel::Config config;
  config.loss_prob = 1.0;
  config.latency_ticks = 2;
  Channel channel(config);
  channel.SetReceiver([](const Message&) { FAIL() << "must not deliver"; });
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(channel.Send(MakeMessage(1)).ok());
  }
  EXPECT_EQ(channel.in_flight(), 0u) << "dropped messages must not be queued";
  for (int i = 0; i < 5; ++i) channel.AdvanceTick();
  EXPECT_EQ(channel.stats().messages_sent, 4);
  EXPECT_EQ(channel.stats().messages_dropped, 4);
  EXPECT_EQ(channel.stats().messages_delivered, 0);
  EXPECT_EQ(channel.stats().bytes_delivered, 0);
}

TEST(ChannelTest, PartialLossWithLatencyAccountsExactly) {
  Channel::Config config;
  config.loss_prob = 0.4;
  config.latency_ticks = 3;
  config.seed = 11;
  Channel channel(config);
  int delivered = 0;
  channel.SetReceiver([&delivered](const Message&) { ++delivered; });
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(channel.Send(MakeMessage(1)).ok());
    channel.AdvanceTick();
  }
  // Drain the transit window.
  for (int i = 0; i < 3; ++i) channel.AdvanceTick();
  EXPECT_EQ(channel.in_flight(), 0u);
  EXPECT_EQ(channel.stats().messages_sent, n);
  EXPECT_EQ(channel.stats().messages_delivered + channel.stats().messages_dropped,
            n);
  EXPECT_EQ(delivered, channel.stats().messages_delivered);
  EXPECT_GT(channel.stats().messages_dropped, 0);
  EXPECT_GT(channel.stats().messages_delivered, 0);
  EXPECT_EQ(channel.stats().bytes_delivered,
            channel.stats().messages_delivered *
                static_cast<int64_t>(MakeMessage(1).SizeBytes()));
}

TEST(NetworkStatsTest, ToStringMentionsCounts) {
  Channel channel;
  channel.SetReceiver([](const Message&) {});
  ASSERT_TRUE(channel.Send(MakeMessage(1)).ok());
  std::string s = channel.stats().ToString();
  EXPECT_NE(s.find("sent=1"), std::string::npos);
}

TEST(NetworkStatsTest, ToStringReportsDeliveredBytesAndPerType) {
  // Regression: ToString used to print bytes_sent under the ambiguous
  // label "bytes=" and omit bytes_delivered (the number the paper's
  // overhead metric uses) and the per-type breakdown entirely.
  Channel channel;
  channel.SetReceiver([](const Message&) {});
  ASSERT_TRUE(channel.Send(MakeMessage(2)).ok());
  std::string s = channel.stats().ToString();
  EXPECT_NE(s.find("bytes_sent=29"), std::string::npos) << s;
  EXPECT_NE(s.find("bytes_delivered=29"), std::string::npos) << s;
  EXPECT_NE(s.find("CORRECTION:1"), std::string::npos) << s;
}

TEST(NetworkStatsTest, ToStringPerTypeOrderIsSentDeliveredDropped) {
  // Regression: the per-type breakdown printed delivered/sent/dropped
  // while the documented format is sent/delivered/dropped, so a fully
  // lossy channel read as "0 lost" and vice versa.
  Channel::Config config;
  config.loss_prob = 1.0;
  Channel channel(config);
  channel.SetReceiver([](const Message&) { FAIL() << "must not deliver"; });
  ASSERT_TRUE(channel.Send(MakeMessage(1)).ok());
  std::string s = channel.stats().ToString();
  EXPECT_NE(s.find("CORRECTION:1/0/1"), std::string::npos) << s;
  EXPECT_EQ(s.find("CORRECTION:0/1/1"), std::string::npos) << s;
}

TEST(FaultTest, DisabledFaultsPreserveLegacyDrawSequence) {
  // A config with every fault off must consume exactly the RNG draws the
  // pre-fault channel did, or seeds stop reproducing old experiments.
  Channel::Config plain;
  plain.loss_prob = 0.3;
  plain.seed = 99;
  Channel::Config with_model = plain;
  with_model.faults = FaultConfig();  // Explicit but all-off.
  Channel a(plain);
  Channel b(with_model);
  a.SetReceiver([](const Message&) {});
  b.SetReceiver([](const Message&) {});
  for (int i = 0; i < 500; ++i) {
    Message m = MakeMessage(1);
    m.seq = i;
    ASSERT_TRUE(a.Send(m).ok());
    ASSERT_TRUE(b.Send(m).ok());
  }
  EXPECT_EQ(a.stats().messages_dropped, b.stats().messages_dropped);
  EXPECT_EQ(a.stats().messages_delivered, b.stats().messages_delivered);
}

TEST(FaultTest, DuplicationDeliversExactCopyAndBalances) {
  Channel::Config config;
  config.faults.duplicate_prob = 0.5;
  config.seed = 5;
  Channel channel(config);
  std::vector<int64_t> seqs;
  channel.SetReceiver([&seqs](const Message& m) { seqs.push_back(m.seq); });
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    Message m = MakeMessage(1);
    m.seq = i;
    ASSERT_TRUE(channel.Send(m).ok());
  }
  const NetworkStats& s = channel.stats();
  EXPECT_GT(s.messages_duplicated, 0);
  EXPECT_NEAR(static_cast<double>(s.messages_duplicated) / n, 0.5, 0.05);
  // Invariant: delivered = sent - dropped + duplicated.
  EXPECT_EQ(s.messages_delivered,
            s.messages_sent - s.messages_dropped + s.messages_duplicated);
  // Zero latency: the copy lands immediately behind the original.
  int64_t dup_pairs = 0;
  for (size_t i = 1; i < seqs.size(); ++i) {
    if (seqs[i] == seqs[i - 1]) ++dup_pairs;
  }
  EXPECT_EQ(dup_pairs, s.messages_duplicated);
  std::string str = s.ToString();
  EXPECT_NE(str.find("faults=["), std::string::npos) << str;
}

TEST(FaultTest, BurstLossMatchesGilbertElliottStationaryRate) {
  // enter=0.05, exit=0.25 => stationary bad fraction 0.05/0.30 = 1/6;
  // burst_loss_prob=1.0 drops everything sent in the bad state.
  Channel::Config config;
  config.faults.burst_enter_prob = 0.05;
  config.faults.burst_exit_prob = 0.25;
  config.faults.burst_loss_prob = 1.0;
  config.seed = 17;
  Channel channel(config);
  channel.SetReceiver([](const Message&) {});
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(channel.Send(MakeMessage(1)).ok());
  }
  const NetworkStats& s = channel.stats();
  EXPECT_EQ(s.burst_drops, s.messages_dropped);  // No independent loss here.
  double rate = static_cast<double>(s.burst_drops) / n;
  EXPECT_NEAR(rate, 1.0 / 6.0, 0.03);
  // Bursts are bursty: drops must cluster, i.e. far fewer distinct bursts
  // than dropped messages (mean burst length 1/exit = 4).
  EXPECT_EQ(s.messages_delivered + s.messages_dropped, s.messages_sent);
}

TEST(FaultTest, ReorderingIsObservedAndBounded) {
  Channel::Config config;
  config.latency_ticks = 1;
  config.faults.reorder_prob = 0.3;
  config.faults.reorder_max_ticks = 3;
  config.seed = 23;
  Channel channel(config);
  std::vector<int64_t> arrival_order;
  std::vector<int64_t> arrival_tick;
  int64_t now = 0;
  channel.SetReceiver([&](const Message& m) {
    arrival_order.push_back(m.seq);
    arrival_tick.push_back(now);
  });
  const int n = 1000;
  std::vector<int64_t> sent_tick(n);
  for (int i = 0; i < n; ++i) {
    Message m = MakeMessage(1);
    m.seq = i;
    sent_tick[i] = now;
    ASSERT_TRUE(channel.Send(m).ok());
    ++now;
    channel.AdvanceTick();
  }
  for (int i = 0; i < 4; ++i) {
    ++now;
    channel.AdvanceTick();
  }
  ASSERT_EQ(channel.in_flight(), 0u);
  ASSERT_EQ(arrival_order.size(), static_cast<size_t>(n));
  EXPECT_GT(channel.stats().messages_reordered, 0);
  // Out-of-order delivery actually happened...
  int64_t inversions = 0;
  for (size_t i = 1; i < arrival_order.size(); ++i) {
    if (arrival_order[i] < arrival_order[i - 1]) ++inversions;
  }
  EXPECT_GT(inversions, 0);
  // ...but every message arrived within latency + reorder_max ticks.
  for (size_t i = 0; i < arrival_order.size(); ++i) {
    int64_t seq = arrival_order[i];
    int64_t transit = arrival_tick[i] - sent_tick[seq];
    EXPECT_GE(transit, 1) << "seq " << seq;
    EXPECT_LE(transit, 1 + 3) << "seq " << seq;
  }
}

TEST(FaultTest, PartitionDropsSendsAndDrainsHeldMessagesOnClose) {
  // Window covers channel ticks [5, 8): sends inside vanish; messages
  // already in flight are held and drain on the first tick after close.
  Channel::Config config;
  config.latency_ticks = 2;
  config.faults.partition_start = 5;
  config.faults.partition_length = 3;
  Channel channel(config);
  std::vector<int64_t> arrival_seq;
  std::vector<int64_t> arrival_tick;
  int64_t now = 0;
  channel.SetReceiver([&](const Message& m) {
    arrival_seq.push_back(m.seq);
    arrival_tick.push_back(now);
  });
  for (int t = 0; t < 10; ++t) {
    Message m = MakeMessage(1);
    m.seq = t;
    ASSERT_TRUE(channel.Send(m).ok());
    ++now;
    channel.AdvanceTick();
  }
  for (int i = 0; i < 3; ++i) {
    ++now;
    channel.AdvanceTick();
  }
  const NetworkStats& s = channel.stats();
  // Sends at ticks 5, 6, 7 were inside the window.
  EXPECT_EQ(s.partition_drops, 3);
  EXPECT_EQ(s.messages_dropped, 3);
  EXPECT_EQ(s.messages_delivered, 7);
  EXPECT_EQ(channel.in_flight(), 0u);
  // Seqs 3 and 4 (due ticks 5 and 6, inside the window) were held and
  // drained together on tick 8, in send order.
  for (size_t i = 0; i < arrival_seq.size(); ++i) {
    if (arrival_seq[i] == 3 || arrival_seq[i] == 4) {
      EXPECT_EQ(arrival_tick[i], 8) << "seq " << arrival_seq[i];
    }
  }
  for (size_t i = 1; i < arrival_seq.size(); ++i) {
    EXPECT_LT(arrival_seq[i - 1], arrival_seq[i]) << "send order preserved";
  }
}

TEST(FaultTest, RepeatingPartitionWindows) {
  FaultConfig faults;
  faults.partition_start = 10;
  faults.partition_length = 2;
  faults.partition_every = 5;
  EXPECT_FALSE(faults.InPartition(9));
  EXPECT_TRUE(faults.InPartition(10));
  EXPECT_TRUE(faults.InPartition(11));
  EXPECT_FALSE(faults.InPartition(12));
  EXPECT_TRUE(faults.InPartition(15));
  EXPECT_TRUE(faults.InPartition(16));
  EXPECT_FALSE(faults.InPartition(17));
  EXPECT_FALSE(faults.InPartition(0));  // Before the first window.
}

TEST(FaultTest, SameSeedSameFaultsBitIdentical) {
  auto run = [] {
    Channel::Config config;
    config.loss_prob = 0.1;
    config.latency_ticks = 1;
    config.faults.burst_enter_prob = 0.02;
    config.faults.burst_exit_prob = 0.2;
    config.faults.burst_loss_prob = 0.9;
    config.faults.duplicate_prob = 0.1;
    config.faults.reorder_prob = 0.2;
    config.faults.reorder_max_ticks = 2;
    config.faults.partition_start = 40;
    config.faults.partition_length = 5;
    config.faults.partition_every = 100;
    config.seed = 77;
    Channel channel(config);
    std::vector<int64_t> order;
    channel.SetReceiver([&order](const Message& m) { order.push_back(m.seq); });
    for (int i = 0; i < 500; ++i) {
      Message m = MakeMessage(1);
      m.seq = i;
      EXPECT_TRUE(channel.Send(m).ok());
      channel.AdvanceTick();
    }
    for (int i = 0; i < 4; ++i) channel.AdvanceTick();
    return std::make_pair(order, channel.stats());
  };
  auto [order1, stats1] = run();
  auto [order2, stats2] = run();
  EXPECT_EQ(order1, order2);
  EXPECT_EQ(stats1.messages_dropped, stats2.messages_dropped);
  EXPECT_EQ(stats1.messages_duplicated, stats2.messages_duplicated);
  EXPECT_EQ(stats1.messages_reordered, stats2.messages_reordered);
  EXPECT_EQ(stats1.burst_drops, stats2.burst_drops);
  EXPECT_EQ(stats1.partition_drops, stats2.partition_drops);
}

TEST(NetworkStatsTest, MergeSumsShardLocalStats) {
  // Two shard-local channels; the fleet-wide view merges on read.
  Channel::Config lossy;
  lossy.loss_prob = 1.0;
  Channel a(lossy);
  Channel b;
  a.SetReceiver([](const Message&) {});
  b.SetReceiver([](const Message&) {});
  ASSERT_TRUE(a.Send(MakeMessage(1)).ok());
  ASSERT_TRUE(a.Send(MakeMessage(1)).ok());
  ASSERT_TRUE(b.Send(MakeMessage(3)).ok());

  NetworkStats merged;
  merged.Merge(a.stats());
  merged.Merge(b.stats());
  EXPECT_EQ(merged.messages_sent, 3);
  EXPECT_EQ(merged.messages_dropped, 2);
  EXPECT_EQ(merged.messages_delivered, 1);
  EXPECT_EQ(merged.bytes_sent,
            2 * static_cast<int64_t>(MakeMessage(1).SizeBytes()) +
                static_cast<int64_t>(MakeMessage(3).SizeBytes()));
  EXPECT_EQ(merged.bytes_delivered,
            static_cast<int64_t>(MakeMessage(3).SizeBytes()));
  EXPECT_EQ(merged.by_type[static_cast<size_t>(MessageType::kCorrection)], 1);
}

}  // namespace
}  // namespace kc
