// Trace spans: nesting depth, ring-buffer wraparound, and both kill
// switches (the runtime flag here; the compile-time KC_TRACE_DISABLED
// switch via the helper TU trace_span_disabled_tu.cc).

#include "obs/trace.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"

// Compiled with KC_TRACE_DISABLED (see tests/CMakeLists.txt): runs `n`
// KC_TRACE_SCOPE statements that must compile to nothing.
namespace kc::obs::testing {
void RunCompileTimeDisabledSpans(int n);
}

namespace kc {
namespace obs {
namespace {

/// Restores the tracing flag and drains the rings around each test.
class TraceSpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTracingEnabled(true);
    ClearTraceEvents();
  }
  void TearDown() override {
    SetTracingEnabled(false);
    ClearTraceEvents();
  }
};

TEST_F(TraceSpanTest, RecordsCompletedSpansWithNesting) {
  {
    KC_TRACE_SCOPE("outer");
    {
      KC_TRACE_SCOPE("inner");
    }
  }
  std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded on close, so the inner span lands first.
  EXPECT_EQ(std::string(events[0].name), "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(std::string(events[1].name), "outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_GE(events[1].duration_ns, events[0].duration_ns);
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
}

TEST_F(TraceSpanTest, RingWrapsKeepingTheLatestSpans) {
  TraceRecorder& recorder = TraceRecorder::ForCurrentThread();
  const size_t n = TraceRecorder::kCapacity + 100;
  for (size_t i = 0; i < n; ++i) {
    KC_TRACE_SCOPE("wrap");
  }
  EXPECT_EQ(recorder.total_emitted(), n);  // Monotonic, not capped.
  std::vector<TraceEvent> events;
  recorder.Snapshot(&events);
  EXPECT_EQ(events.size(), TraceRecorder::kCapacity);  // Ring retains cap.
  // Oldest-first ordering survives the wrap.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
  }
}

TEST_F(TraceSpanTest, RuntimeDisabledSpansRecordNothing) {
  SetTracingEnabled(false);
  uint64_t before = TraceRecorder::ForCurrentThread().total_emitted();
  {
    KC_TRACE_SCOPE("invisible");
  }
  EXPECT_EQ(TraceRecorder::ForCurrentThread().total_emitted(), before);
  // A span opened while disabled stays a no-op even if tracing flips on
  // before it closes (the decision is taken at entry).
  {
    SetTracingEnabled(false);
    KC_TRACE_SCOPE("opened_disabled");
    SetTracingEnabled(true);
  }
  EXPECT_EQ(TraceRecorder::ForCurrentThread().total_emitted(), before);
}

TEST_F(TraceSpanTest, CompileTimeDisabledTuEmitsNothing) {
  uint64_t before = TraceRecorder::ForCurrentThread().total_emitted();
  testing::RunCompileTimeDisabledSpans(100);
  EXPECT_EQ(TraceRecorder::ForCurrentThread().total_emitted(), before);
  // Sanity: the same pattern in this (enabled) TU does record.
  {
    KC_TRACE_SCOPE("enabled_tu");
  }
  EXPECT_EQ(TraceRecorder::ForCurrentThread().total_emitted(), before + 1);
}

TEST_F(TraceSpanTest, ClearDiscardsRetainedSpans) {
  {
    KC_TRACE_SCOPE("gone");
  }
  ASSERT_FALSE(CollectTraceEvents().empty());
  ClearTraceEvents();
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST_F(TraceSpanTest, FlowIdsRideSpans) {
  {
    KC_TRACE_SCOPE_FLOW("send", 0x2A);
  }
  {
    KC_TRACE_SCOPE("plain");
  }
  std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(std::string(events[0].name), "send");
  EXPECT_EQ(events[0].flow_id, 0x2Au);
  EXPECT_EQ(events[1].flow_id, 0u);
}

// ------------------------------------------------------ Chrome-trace export

TEST(ChromeTraceExportTest, EmitsCompleteEventsAndStitchesFlows) {
  // Hand-built events: two spans on different "threads" sharing a flow id
  // (an agent send and the replica apply of the same message), plus one
  // unrelated span.
  std::vector<TraceEvent> events(3);
  events[0] = {"agent.send", 1000, 500, /*flow_id=*/7, 0, /*thread=*/0};
  events[1] = {"replica.apply", 2000, 300, /*flow_id=*/7, 0, /*thread=*/1};
  events[2] = {"server.tick", 1500, 100, /*flow_id=*/0, 1, /*thread=*/0};
  std::string json = ExportChromeTrace(events);

  // Minimal schema: a traceEvents array of "X" complete events with
  // ts/dur in microseconds, under a millisecond display unit.
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("{\"name\":\"agent.send\",\"ph\":\"X\",\"ts\":1.000,"
                      "\"dur\":0.500,\"pid\":0,\"tid\":0,"
                      "\"args\":{\"depth\":0}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"replica.apply\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"server.tick\""), std::string::npos);
  // Flow stitching: the earlier span starts flow 7 ("s"), the later one
  // finishes it ("f" binding to the enclosing slice); both carry the id.
  size_t s_at = json.find("\"ph\":\"s\",\"id\":7");
  size_t f_at = json.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":7");
  ASSERT_NE(s_at, std::string::npos);
  ASSERT_NE(f_at, std::string::npos);
  EXPECT_LT(s_at, f_at);  // "s" comes from the earliest span.
  // The flow-less span contributes no flow events.
  EXPECT_EQ(json.find("\"id\":0"), std::string::npos);
  // Unnamed pids present in the span set still get a process_name row.
  EXPECT_NE(json.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                      "\"args\":{\"name\":\"process 0\"}}"),
            std::string::npos);
}

TEST(ChromeTraceExportTest, EmptyInputIsValidJson) {
  EXPECT_EQ(ExportChromeTrace({}),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

TEST(ChromeTraceExportTest, SortsByTimestampAcrossPids) {
  // Events arrive in recorder order (per-thread rings drained one after
  // another), deliberately shuffled here; the export must order them by
  // start time with pid/tid as tiebreaks so merged multi-process traces
  // load causally.
  std::vector<TraceEvent> events(4);
  events[0] = {"late", 4000, 10, 0, 0, /*thread=*/0};
  events[1] = {"early", 1000, 10, 0, 0, /*thread=*/1};
  events[2] = {"tie.remote", 2000, 10, 0, 0, /*thread=*/0};
  events[2].pid = 1;
  events[3] = {"tie.local", 2000, 10, 0, 0, /*thread=*/0};
  std::string json = ExportChromeTrace(events);

  size_t early = json.find("\"name\":\"early\"");
  size_t tie_local = json.find("\"name\":\"tie.local\"");
  size_t tie_remote = json.find("\"name\":\"tie.remote\"");
  size_t late = json.find("\"name\":\"late\"");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(tie_local, std::string::npos);
  ASSERT_NE(tie_remote, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(early, tie_local);
  EXPECT_LT(tie_local, tie_remote);  // Same ts: lower pid first.
  EXPECT_LT(tie_remote, late);
}

TEST(ChromeTraceExportTest, NamesProcessesAndStitchesAcrossPids) {
  // A split deployment's shape: the client's send (pid 1, rebased into
  // the server clock) and the server's apply (pid 0) share a flow id.
  std::vector<TraceEvent> events(2);
  events[0] = {"agent.send", 1000, 50, /*flow_id=*/42, 0, /*thread=*/0};
  events[0].pid = 1;
  events[1] = {"replica.apply", 2000, 80, /*flow_id=*/42, 0, /*thread=*/0};

  ChromeTraceOptions options;
  options.process_names = {{0, "stream-server"}, {1, "fleet-client"}};
  std::string json = ExportChromeTrace(events, options);

  // Both tracks named, in the given order, before any span.
  size_t server_name = json.find(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
      "\"args\":{\"name\":\"stream-server\"}}");
  size_t client_name = json.find(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"fleet-client\"}}");
  ASSERT_NE(server_name, std::string::npos);
  ASSERT_NE(client_name, std::string::npos);
  EXPECT_LT(server_name, client_name);
  // The flow starts on the client pid (earliest span) and binds on the
  // server pid: one arrow across the process boundary.
  size_t s_at = json.find("\"ph\":\"s\",\"id\":42,\"ts\":1.000,\"pid\":1");
  size_t f_at =
      json.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":42,\"ts\":2.000,\"pid\":0");
  ASSERT_NE(s_at, std::string::npos) << json;
  ASSERT_NE(f_at, std::string::npos) << json;
  EXPECT_LT(s_at, f_at);
}

}  // namespace
}  // namespace obs
}  // namespace kc
