#include "server/query.h"

#include <gtest/gtest.h>

namespace kc {
namespace {

TEST(QuerySpecTest, ValidationRules) {
  QuerySpec spec;
  spec.kind = AggregateKind::kAvg;
  EXPECT_FALSE(spec.Validate().ok());  // No sources.

  spec.sources = {1, 2};
  EXPECT_TRUE(spec.Validate().ok());

  spec.kind = AggregateKind::kValue;
  EXPECT_FALSE(spec.Validate().ok());  // VALUE wants exactly one.
  spec.sources = {1};
  EXPECT_TRUE(spec.Validate().ok());

  spec.within = -1.0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.within = 0.5;
  spec.every = 0;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(QuerySpecTest, ToStringReadable) {
  QuerySpec spec;
  spec.kind = AggregateKind::kAvg;
  spec.sources = {0, 1};
  spec.within = 0.5;
  spec.every = 10;
  spec.threshold = 40.0;
  spec.above = true;
  std::string s = spec.ToString();
  EXPECT_NE(s.find("AVG"), std::string::npos);
  EXPECT_NE(s.find("s0"), std::string::npos);
  EXPECT_NE(s.find("WITHIN"), std::string::npos);
  EXPECT_NE(s.find("EVERY"), std::string::npos);
  EXPECT_NE(s.find("WHEN"), std::string::npos);
}

TEST(AggregateValuesTest, AllKinds) {
  std::vector<double> v = {1.0, 5.0, 3.0};
  EXPECT_DOUBLE_EQ(AggregateValues(AggregateKind::kSum, v), 9.0);
  EXPECT_DOUBLE_EQ(AggregateValues(AggregateKind::kAvg, v), 3.0);
  EXPECT_DOUBLE_EQ(AggregateValues(AggregateKind::kMin, v), 1.0);
  EXPECT_DOUBLE_EQ(AggregateValues(AggregateKind::kMax, v), 5.0);
  EXPECT_DOUBLE_EQ(AggregateValues(AggregateKind::kValue, {7.0}), 7.0);
}

TEST(AggregateErrorBoundTest, BoundPropagation) {
  std::vector<double> b = {0.5, 1.0, 0.25};
  EXPECT_DOUBLE_EQ(AggregateErrorBound(AggregateKind::kSum, b), 1.75);
  EXPECT_DOUBLE_EQ(AggregateErrorBound(AggregateKind::kAvg, b), 1.75 / 3.0);
  EXPECT_DOUBLE_EQ(AggregateErrorBound(AggregateKind::kMin, b), 1.0);
  EXPECT_DOUBLE_EQ(AggregateErrorBound(AggregateKind::kMax, b), 1.0);
  EXPECT_DOUBLE_EQ(AggregateErrorBound(AggregateKind::kValue, {0.5}), 0.5);
}

TEST(AggregateErrorBoundTest, SumBoundIsTightForWorstCase) {
  // If each member can be off by delta_i in the same direction, the sum is
  // off by exactly sum(delta_i): the bound must not be smaller.
  std::vector<double> bounds = {0.1, 0.2};
  double bound = AggregateErrorBound(AggregateKind::kSum, bounds);
  double worst = 0.1 + 0.2;
  EXPECT_DOUBLE_EQ(bound, worst);
}

TEST(TriggerTest, AboveThreshold) {
  EXPECT_EQ(EvaluateTrigger(10.0, 1.0, 5.0, true), TriggerState::kYes);
  EXPECT_EQ(EvaluateTrigger(3.0, 1.0, 5.0, true), TriggerState::kNo);
  EXPECT_EQ(EvaluateTrigger(5.5, 1.0, 5.0, true), TriggerState::kMaybe);
  // Exactly at the edge: value - bound == threshold is not a definite yes.
  EXPECT_EQ(EvaluateTrigger(6.0, 1.0, 5.0, true), TriggerState::kMaybe);
}

TEST(TriggerTest, BelowThreshold) {
  EXPECT_EQ(EvaluateTrigger(2.0, 1.0, 5.0, false), TriggerState::kYes);
  EXPECT_EQ(EvaluateTrigger(8.0, 1.0, 5.0, false), TriggerState::kNo);
  EXPECT_EQ(EvaluateTrigger(5.0, 1.0, 5.0, false), TriggerState::kMaybe);
}

TEST(TriggerTest, ZeroBoundIsCrisp) {
  EXPECT_EQ(EvaluateTrigger(5.1, 0.0, 5.0, true), TriggerState::kYes);
  EXPECT_EQ(EvaluateTrigger(5.0, 0.0, 5.0, true), TriggerState::kNo);
}

TEST(QueryResultTest, ToStringMentionsBoundAndTrigger) {
  QueryResult r;
  r.name = "q1";
  r.value = 3.5;
  r.bound = 0.25;
  r.trigger = TriggerState::kMaybe;
  std::string s = r.ToString();
  EXPECT_NE(s.find("q1"), std::string::npos);
  EXPECT_NE(s.find("3.5"), std::string::npos);
  EXPECT_NE(s.find("MAYBE"), std::string::npos);
}

}  // namespace
}  // namespace kc
