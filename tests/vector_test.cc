#include "linalg/vector.h"

#include <cmath>

#include <gtest/gtest.h>

namespace kc {
namespace {

TEST(VectorTest, ConstructionVariants) {
  Vector empty;
  EXPECT_TRUE(empty.empty());

  Vector zeros(3);
  EXPECT_EQ(zeros.size(), 3u);
  EXPECT_DOUBLE_EQ(zeros[0], 0.0);

  Vector init{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(init[2], 3.0);

  Vector adopted(std::vector<double>{4.0, 5.0});
  EXPECT_DOUBLE_EQ(adopted[1], 5.0);
}

TEST(VectorTest, OnesAndUnit) {
  Vector ones = Vector::Ones(4);
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(ones[i], 1.0);
  Vector e1 = Vector::Unit(3, 1);
  EXPECT_DOUBLE_EQ(e1[0], 0.0);
  EXPECT_DOUBLE_EQ(e1[1], 1.0);
  EXPECT_DOUBLE_EQ(e1[2], 0.0);
}

TEST(VectorTest, Arithmetic) {
  Vector a{1.0, 2.0};
  Vector b{3.0, -1.0};
  Vector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 4.0);
  EXPECT_DOUBLE_EQ(sum[1], 1.0);
  Vector diff = a - b;
  EXPECT_DOUBLE_EQ(diff[0], -2.0);
  Vector scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled[1], 4.0);
  Vector divided = b / 2.0;
  EXPECT_DOUBLE_EQ(divided[0], 1.5);
  Vector negated = -a;
  EXPECT_DOUBLE_EQ(negated[0], -1.0);
}

TEST(VectorTest, DotAndNorms) {
  Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.NormInf(), 4.0);
  Vector b{-1.0, 1.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 1.0);
}

TEST(VectorTest, EqualityAndAlmostEqual) {
  Vector a{1.0, 2.0};
  Vector b{1.0, 2.0};
  Vector c{1.0, 2.0 + 1e-12};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(AlmostEqual(a, c, 1e-9));
  EXPECT_FALSE(AlmostEqual(a, Vector{1.0}, 1e-9));
  EXPECT_FALSE(AlmostEqual(a, Vector{1.0, 3.0}, 1e-9));
}

TEST(VectorTest, ToStringFormat) {
  EXPECT_EQ((Vector{1.0, 2.5}).ToString(), "[1, 2.5]");
  EXPECT_EQ(Vector().ToString(), "[]");
}

TEST(VectorTest, CompoundAssignment) {
  Vector a{1.0, 1.0};
  a += Vector{1.0, 2.0};
  a -= Vector{0.5, 0.5};
  a *= 2.0;
  a /= 4.0;
  EXPECT_DOUBLE_EQ(a[0], 0.75);
  EXPECT_DOUBLE_EQ(a[1], 1.25);
}

}  // namespace
}  // namespace kc
