#include "common/rng.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace kc {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
    EXPECT_DOUBLE_EQ(a.Gaussian(), b.Gaussian());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Uniform() != b.Uniform()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(9);
  double first = a.Uniform();
  a.Uniform();
  a.Seed(9);
  EXPECT_DOUBLE_EQ(a.Uniform(), first);
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsApproximatelyCorrect) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Gaussian(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(RngTest, ParetoRespectsScaleFloor) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, ParetoIsHeavyTailed) {
  Rng rng(19);
  double max_seen = 0.0;
  for (int i = 0; i < 20000; ++i) max_seen = std::max(max_seen, rng.Pareto(1.0, 1.2));
  // With shape 1.2 over 20k draws, the max should far exceed the scale.
  EXPECT_GT(max_seen, 50.0);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(23);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliClampsProbability) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, GaussianVectorHasRequestedLength) {
  Rng rng(31);
  auto v = rng.GaussianVector(17, 0.0, 1.0);
  EXPECT_EQ(v.size(), 17u);
}

}  // namespace
}  // namespace kc
