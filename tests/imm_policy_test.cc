#include "suppression/imm_policy.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "server/simulation.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace kc {
namespace {

Reading MakeReading(int64_t seq, double value) {
  Reading r;
  r.seq = seq;
  r.time = static_cast<double>(seq);
  r.value = Vector{value};
  return r;
}

TEST(ImmPredictorTest, InitAndBasics) {
  auto p = MakeTwoModeImmPredictor(0.01, 4.0, 0.25);
  p->Init(MakeReading(0, 5.0));
  EXPECT_DOUBLE_EQ(p->Predict()[0], 5.0);
  EXPECT_DOUBLE_EQ(p->Target()[0], 5.0);
  EXPECT_EQ(p->name(), "imm");
  EXPECT_EQ(p->dims(), 1u);
}

TEST(ImmPredictorTest, ContractExactAfterCorrection) {
  auto p = MakeTwoModeImmPredictor(0.01, 4.0, 0.25);
  p->Init(MakeReading(0, 0.0));
  Rng rng(1);
  for (int64_t i = 1; i <= 200; ++i) {
    Reading z = MakeReading(i, rng.Gaussian(0.0, 2.0));
    p->Tick();
    p->ObserveLocal(z);
    auto payload = p->EncodeCorrection(z);
    // 2 modes: mu (2) + 2 * (x (1) + P (1)).
    ASSERT_EQ(payload.size(), 2u + 2u * 2u);
    ASSERT_TRUE(p->ApplyCorrection(i, z.time, payload).ok());
    ASSERT_NEAR(p->Target()[0], p->Predict()[0], 1e-12);
  }
}

TEST(ImmPredictorTest, ReplicasStayInLockstep) {
  auto client = MakeTwoModeImmPredictor(0.01, 4.0, 0.25);
  auto server = client->Clone();
  Reading first = MakeReading(0, 0.0);
  client->Init(first);
  server->Init(first);
  Rng rng(2);
  double x = 0.0;
  for (int64_t i = 1; i <= 400; ++i) {
    double sigma = (i / 100) % 2 == 0 ? 0.1 : 2.0;
    x += rng.Gaussian(0.0, sigma);
    Reading z = MakeReading(i, x + rng.Gaussian(0.0, 0.5));
    client->Tick();
    server->Tick();
    client->ObserveLocal(z);
    if (i % 7 == 0) {
      auto payload = client->EncodeCorrection(z);
      ASSERT_TRUE(client->ApplyCorrection(i, z.time, payload).ok());
      ASSERT_TRUE(server->ApplyCorrection(i, z.time, payload).ok());
    }
    ASSERT_NEAR(client->Predict()[0], server->Predict()[0], 1e-12) << i;
  }
}

TEST(ImmPredictorTest, BeatsFixedFiltersOnModeFlippingStream) {
  // Regimes flip every 500 ticks; the IMM should suppress more than a
  // quiet-tuned fixed filter at comparable truth accuracy, and track
  // truth better than value caching at comparable cost.
  RegimeSwitchingGenerator::Config regimes;
  regimes.regimes = {{500, 0.1, 0.0}, {500, 1.5, 0.0}};
  LinkConfig config;
  config.ticks = 6000;
  config.delta = 0.75;
  config.seed = 5;

  RegimeSwitchingGenerator stream_a(regimes);
  auto imm = MakeTwoModeImmPredictor(0.01, 2.25, 0.04);
  LinkReport imm_report = RunLink(stream_a, *imm, config);

  RegimeSwitchingGenerator stream_b(regimes);
  KalmanPredictor::Config loud;
  loud.model = MakeRandomWalkModel(2.25, 0.04);
  KalmanPredictor loud_proto(loud);
  LinkReport loud_report = RunLink(stream_b, loud_proto, config);

  // The IMM should be cheaper than the always-loud filter (it suppresses
  // harder in quiet phases) at comparable accuracy.
  EXPECT_LT(imm_report.messages, loud_report.messages);
  EXPECT_LT(imm_report.err_vs_truth.rms(),
            loud_report.err_vs_truth.rms() * 1.5);
  EXPECT_EQ(imm_report.contract_violations, 0);
}

TEST(ImmPredictorTest, ApplyBeforeInitFails) {
  auto p = MakeTwoModeImmPredictor(0.01, 4.0, 0.25);
  EXPECT_FALSE(p->ApplyCorrection(0, 0.0, {1.0}).ok());
}

TEST(ImmPredictorTest, WrongPayloadSizeRejected) {
  auto p = MakeTwoModeImmPredictor(0.01, 4.0, 0.25);
  p->Init(MakeReading(0, 0.0));
  EXPECT_FALSE(p->ApplyCorrection(1, 1.0, {1.0, 2.0}).ok());
}

TEST(ImmSerializationTest, RoundTripThroughImm) {
  auto a = MakeTwoModeImmPredictor(0.01, 4.0, 0.25);
  a->Init(MakeReading(0, 1.0));
  Rng rng(7);
  for (int64_t i = 1; i <= 30; ++i) {
    a->Tick();
    Reading z = MakeReading(i, rng.Gaussian(0.0, 1.0));
    a->ObserveLocal(z);
    if (i == 30) {
      ASSERT_TRUE(a->ApplyCorrection(i, z.time, a->EncodeCorrection(z)).ok());
    }
  }
  // Post-correction, the shared state equals the private estimate; the
  // full-state payload reproduces it in a fresh replica.
  auto state = a->EncodeFullState();
  auto b = MakeTwoModeImmPredictor(0.01, 4.0, 0.25);
  b->Init(MakeReading(0, 0.0));
  ASSERT_TRUE(b->ApplyFullState(state).ok());
  EXPECT_NEAR(b->Predict()[0], a->Predict()[0], 1e-12);
  EXPECT_NEAR(b->Predict()[0], a->Target()[0], 1e-12);
}

}  // namespace
}  // namespace kc
