#include "kalman/adaptive.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace kc {
namespace {

TEST(AdaptiveTest, NoAdaptationDuringWarmup) {
  AdaptiveConfig config;
  config.warmup = 100;
  AdaptiveNoiseEstimator est(config);
  KalmanFilter kf(MakeRandomWalkModel(0.1, 1.0), Vector{0.0}, Matrix{{1.0}});
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    kf.Predict();
    ASSERT_TRUE(kf.Update(Vector{rng.Gaussian(0.0, 5.0)}).ok());
    est.AfterUpdate(kf);
  }
  EXPECT_DOUBLE_EQ(est.cumulative_q_scale(), 1.0);
}

TEST(AdaptiveTest, InflatesQWhenModelTooConfident) {
  // Q is 100x too small for the true volatility: the estimator must
  // inflate it substantially.
  double true_step = 1.0;
  AdaptiveConfig config;
  config.adapt_q = true;
  config.warmup = 8;
  AdaptiveNoiseEstimator est(config);
  KalmanFilter kf(MakeRandomWalkModel(0.01 * true_step * true_step, 0.25),
                  Vector{0.0}, Matrix{{1.0}});
  Rng rng(2);
  double truth = 0.0;
  for (int i = 0; i < 2000; ++i) {
    truth += rng.Gaussian(0.0, true_step);
    kf.Predict();
    ASSERT_TRUE(kf.Update(Vector{truth + rng.Gaussian(0.0, 0.5)}).ok());
    est.AfterUpdate(kf);
  }
  EXPECT_GT(est.cumulative_q_scale(), 10.0);
  // After adaptation the windowed NIS should be in the right ballpark
  // (within a few x of its chi-squared expectation of 1), not the ~100x
  // it starts at with the misconfigured Q.
  EXPECT_GT(est.WindowedNis(), 0.2);
  EXPECT_LT(est.WindowedNis(), 4.0);
}

TEST(AdaptiveTest, DeflatesQWhenModelTooUncertain) {
  // Q is 100x too big: the estimator should shrink it.
  AdaptiveConfig config;
  config.adapt_q = true;
  config.warmup = 8;
  AdaptiveNoiseEstimator est(config);
  KalmanFilter kf(MakeRandomWalkModel(1.0, 0.25), Vector{0.0}, Matrix{{1.0}});
  Rng rng(3);
  double truth = 0.0;
  for (int i = 0; i < 2000; ++i) {
    truth += rng.Gaussian(0.0, 0.1);
    kf.Predict();
    ASSERT_TRUE(kf.Update(Vector{truth + rng.Gaussian(0.0, 0.5)}).ok());
    est.AfterUpdate(kf);
  }
  EXPECT_LT(est.cumulative_q_scale(), 0.3);
}

TEST(AdaptiveTest, EstimatesRFromInnovations) {
  // Model thinks the sensor noise is sigma=0.1; reality is sigma=2.
  AdaptiveConfig config;
  config.adapt_q = false;
  config.adapt_r = true;
  config.warmup = 8;
  config.window = 64;
  config.smoothing = 0.3;
  AdaptiveNoiseEstimator est(config);
  KalmanFilter kf(MakeRandomWalkModel(0.04, 0.01), Vector{0.0}, Matrix{{1.0}});
  Rng rng(4);
  double truth = 0.0;
  for (int i = 0; i < 5000; ++i) {
    truth += rng.Gaussian(0.0, 0.2);
    kf.Predict();
    ASSERT_TRUE(kf.Update(Vector{truth + rng.Gaussian(0.0, 2.0)}).ok());
    est.AfterUpdate(kf);
  }
  double r_hat = kf.model().r(0, 0);
  EXPECT_GT(r_hat, 1.0);   // Moved far from 0.01...
  EXPECT_LT(r_hat, 10.0);  // ...toward the true 4.0.
}

TEST(AdaptiveTest, QScaleClampedPerStep) {
  AdaptiveConfig config;
  config.adapt_q = true;
  config.warmup = 2;
  config.window = 2;
  config.smoothing = 1.0;  // Full step, so the clamp binds.
  config.max_scale_per_step = 2.0;
  AdaptiveNoiseEstimator est(config);
  KalmanFilter kf(MakeRandomWalkModel(1e-6, 0.01), Vector{0.0}, Matrix{{1e-6}});
  // Feed a massive jump: NIS is astronomical, but Q may only double per
  // update.
  for (int i = 0; i < 3; ++i) {
    kf.Predict();
    ASSERT_TRUE(kf.Update(Vector{100.0}).ok());
    double q_before = kf.model().q(0, 0);
    est.AfterUpdate(kf);
    EXPECT_LE(kf.model().q(0, 0), q_before * 2.0 + 1e-12);
  }
}

TEST(AdaptiveTest, ResetClearsHistory) {
  AdaptiveNoiseEstimator est;
  KalmanFilter kf(MakeRandomWalkModel(0.1, 1.0), Vector{0.0}, Matrix{{1.0}});
  kf.Predict();
  ASSERT_TRUE(kf.Update(Vector{1.0}).ok());
  est.AfterUpdate(kf);
  EXPECT_GT(est.window_fill(), 0u);
  est.Reset();
  EXPECT_EQ(est.window_fill(), 0u);
  EXPECT_DOUBLE_EQ(est.cumulative_q_scale(), 1.0);
  EXPECT_DOUBLE_EQ(est.WindowedNis(), 0.0);
}

}  // namespace
}  // namespace kc
