// Distributed-telemetry unit tests: the snapshot codec's round-trip and
// hardening contracts, the NTP-style clock-offset estimator, and the
// server-side merger (namespacing, latest-wins, wire-latency join, trace
// rebasing). These are the pieces split_deploy.cc composes over real
// sockets; tests/split_telemetry_test.cc covers that composition.

#include "obs/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/remote.h"

namespace kc {
namespace obs {
namespace {

TelemetrySnapshot MakeRichSnapshot() {
  TelemetrySnapshot s;
  s.tick = 1234;
  s.clock_offset_ns = -987654;
  s.clock_uncertainty_ns = 4321;
  s.health_summary = "client: ticks=1234 sources=3";
  s.audit_summary = "contained";

  MetricRow counter;
  counter.name = "kc.agent.sent";
  counter.kind = MetricKind::kCounter;
  counter.counter = 42;
  s.rows.push_back(counter);

  MetricRow gauge;
  gauge.name = "kc.net.clock_offset_us";
  gauge.kind = MetricKind::kGauge;
  gauge.wall_clock = true;
  gauge.gauge = -3.75;
  s.rows.push_back(gauge);

  MetricRow hist;
  hist.name = "kc.agent.innovation";
  hist.kind = MetricKind::kHistogram;
  hist.hist_bounds = {1.0, 2.0, 4.0};
  hist.hist_counts = {5, 0, 2, 1};  // Bounds + overflow.
  hist.hist_count = 8;
  hist.hist_sum = 13.5;
  s.rows.push_back(hist);

  SnapshotTraceEvent e;
  e.name = "agent.send";
  e.start_ns = 1000000;
  e.duration_ns = 2500;
  e.flow_id = 77;
  e.depth = 1;
  e.thread_index = 2;
  s.trace_events.push_back(e);

  WireSendRecord w;
  w.flow_id = 77;
  w.type = 1;
  w.send_ns = 1000100;
  s.send_log.push_back(w);
  return s;
}

void ExpectSnapshotsEqual(const TelemetrySnapshot& a,
                          const TelemetrySnapshot& b) {
  EXPECT_EQ(a.tick, b.tick);
  EXPECT_EQ(a.clock_offset_ns, b.clock_offset_ns);
  EXPECT_EQ(a.clock_uncertainty_ns, b.clock_uncertainty_ns);
  EXPECT_EQ(a.health_summary, b.health_summary);
  EXPECT_EQ(a.audit_summary, b.audit_summary);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (size_t i = 0; i < a.rows.size(); ++i) {
    const MetricRow& x = a.rows[i];
    const MetricRow& y = b.rows[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.wall_clock, y.wall_clock);
    EXPECT_EQ(x.counter, y.counter);
    EXPECT_EQ(x.gauge, y.gauge);
    EXPECT_EQ(x.hist_bounds, y.hist_bounds);
    EXPECT_EQ(x.hist_counts, y.hist_counts);
    EXPECT_EQ(x.hist_count, y.hist_count);
    EXPECT_EQ(x.hist_sum, y.hist_sum);
  }
  ASSERT_EQ(a.trace_events.size(), b.trace_events.size());
  for (size_t i = 0; i < a.trace_events.size(); ++i) {
    EXPECT_EQ(a.trace_events[i].name, b.trace_events[i].name);
    EXPECT_EQ(a.trace_events[i].start_ns, b.trace_events[i].start_ns);
    EXPECT_EQ(a.trace_events[i].duration_ns, b.trace_events[i].duration_ns);
    EXPECT_EQ(a.trace_events[i].flow_id, b.trace_events[i].flow_id);
    EXPECT_EQ(a.trace_events[i].depth, b.trace_events[i].depth);
    EXPECT_EQ(a.trace_events[i].thread_index, b.trace_events[i].thread_index);
  }
  ASSERT_EQ(a.send_log.size(), b.send_log.size());
  for (size_t i = 0; i < a.send_log.size(); ++i) {
    EXPECT_EQ(a.send_log[i].flow_id, b.send_log[i].flow_id);
    EXPECT_EQ(a.send_log[i].type, b.send_log[i].type);
    EXPECT_EQ(a.send_log[i].send_ns, b.send_log[i].send_ns);
  }
}

// ------------------------------------------------------------- round trips

TEST(SnapshotCodecTest, RichSnapshotRoundTrips) {
  TelemetrySnapshot original = MakeRichSnapshot();
  std::vector<uint8_t> bytes;
  EncodeSnapshot(original, &bytes);
  TelemetrySnapshot decoded;
  Status s = DecodeSnapshot(bytes.data(), bytes.size(), &decoded);
  ASSERT_TRUE(s.ok()) << s;
  ExpectSnapshotsEqual(original, decoded);
}

TEST(SnapshotCodecTest, EmptySnapshotRoundTrips) {
  TelemetrySnapshot empty;
  std::vector<uint8_t> bytes;
  EncodeSnapshot(empty, &bytes);
  TelemetrySnapshot decoded;
  ASSERT_TRUE(DecodeSnapshot(bytes.data(), bytes.size(), &decoded).ok());
  ExpectSnapshotsEqual(empty, decoded);
}

TEST(SnapshotCodecTest, LiveRegistryRoundTripsRowForRow) {
  MetricRegistry registry;
  registry.GetCounter("kc.a.sent")->Inc(17);
  registry.GetGauge("kc.b.level", /*wall_clock=*/true)->Set(2.25);
  Histogram* h = registry.GetHistogram("kc.c.latency_us",
                                       Buckets::Exponential(1.0, 2.0, 8),
                                       /*wall_clock=*/true);
  h->Record(0.5);
  h->Record(3.0);
  h->Record(1e9);  // Overflow bucket.

  TelemetrySnapshot snap;
  snap.rows = SnapshotRows(registry);
  std::vector<uint8_t> bytes;
  EncodeSnapshot(snap, &bytes);
  TelemetrySnapshot decoded;
  ASSERT_TRUE(DecodeSnapshot(bytes.data(), bytes.size(), &decoded).ok());

  std::vector<MetricRow> expected = registry.Rows();
  ASSERT_EQ(decoded.rows.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(decoded.rows[i].name, expected[i].name);
    EXPECT_EQ(decoded.rows[i].kind, expected[i].kind);
    EXPECT_EQ(decoded.rows[i].wall_clock, expected[i].wall_clock)
        << expected[i].name;
    EXPECT_EQ(decoded.rows[i].counter, expected[i].counter);
    EXPECT_EQ(decoded.rows[i].gauge, expected[i].gauge);
    EXPECT_EQ(decoded.rows[i].hist_bounds, expected[i].hist_bounds);
    EXPECT_EQ(decoded.rows[i].hist_counts, expected[i].hist_counts);
    EXPECT_EQ(decoded.rows[i].hist_count, expected[i].hist_count);
    EXPECT_EQ(decoded.rows[i].hist_sum, expected[i].hist_sum);
  }
}

TEST(SnapshotCodecTest, EncodeAppendsWithoutClearing) {
  std::vector<uint8_t> bytes = {0xDE, 0xAD};
  EncodeSnapshot(TelemetrySnapshot(), &bytes);
  EXPECT_EQ(bytes[0], 0xDE);
  EXPECT_EQ(bytes[1], 0xAD);
  TelemetrySnapshot decoded;
  ASSERT_TRUE(DecodeSnapshot(bytes.data() + 2, bytes.size() - 2, &decoded).ok());
}

TEST(SnapshotCodecTest, EncodingIsDeterministic) {
  std::vector<uint8_t> a;
  std::vector<uint8_t> b;
  EncodeSnapshot(MakeRichSnapshot(), &a);
  EncodeSnapshot(MakeRichSnapshot(), &b);
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------- decode hardening

TEST(SnapshotCodecTest, EveryTruncationIsOutOfRange) {
  std::vector<uint8_t> bytes;
  EncodeSnapshot(MakeRichSnapshot(), &bytes);
  // Chopping the buffer at every length must fail cleanly — and a torn
  // buffer (still structurally sane up to the cut) reports kOutOfRange.
  for (size_t n = 0; n < bytes.size(); ++n) {
    TelemetrySnapshot decoded;
    Status s = DecodeSnapshot(bytes.data(), n, &decoded);
    ASSERT_FALSE(s.ok()) << "length " << n;
    EXPECT_TRUE(s.code() == StatusCode::kOutOfRange ||
                s.code() == StatusCode::kInvalidArgument)
        << "length " << n << ": " << s;
  }
}

TEST(SnapshotCodecTest, TrailingBytesAreInvalid) {
  std::vector<uint8_t> bytes;
  EncodeSnapshot(MakeRichSnapshot(), &bytes);
  bytes.push_back(0x00);
  TelemetrySnapshot decoded;
  EXPECT_EQ(DecodeSnapshot(bytes.data(), bytes.size(), &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotCodecTest, BadMagicAndVersionRejected) {
  std::vector<uint8_t> bytes;
  EncodeSnapshot(TelemetrySnapshot(), &bytes);
  TelemetrySnapshot decoded;

  std::vector<uint8_t> wrong_magic = bytes;
  wrong_magic[0] = 0x4C;
  EXPECT_EQ(
      DecodeSnapshot(wrong_magic.data(), wrong_magic.size(), &decoded).code(),
      StatusCode::kInvalidArgument);

  std::vector<uint8_t> wrong_version = bytes;
  wrong_version[1] = 0x02;
  EXPECT_EQ(DecodeSnapshot(wrong_version.data(), wrong_version.size(),
                           &decoded)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotCodecTest, NonCanonicalVarintRejected) {
  // magic version tick=0 — but tick encoded as a padded two-byte varint
  // (0x80 0x00), which decodes to 0 yet is not the canonical encoding.
  std::vector<uint8_t> bytes = {0x4B, 0x01, 0x80, 0x00};
  TelemetrySnapshot decoded;
  EXPECT_EQ(DecodeSnapshot(bytes.data(), bytes.size(), &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotCodecTest, ReservedRowFlagsRejected) {
  TelemetrySnapshot snap;
  MetricRow row;
  row.name = "kc.x";
  row.kind = MetricKind::kCounter;
  row.counter = 1;
  snap.rows.push_back(row);
  std::vector<uint8_t> bytes;
  EncodeSnapshot(snap, &bytes);
  // The flags byte trails "kc.x" kind — find it and set a reserved bit.
  // Layout after header: rows count varint, then len=4 "kc.x" kind flags.
  const uint8_t* name = reinterpret_cast<const uint8_t*>("kc.x");
  auto it = std::search(bytes.begin(), bytes.end(), name, name + 4);
  ASSERT_NE(it, bytes.end());
  size_t flags_at = static_cast<size_t>(it - bytes.begin()) + 4 + 1;
  bytes[flags_at] |= 0x80;
  TelemetrySnapshot decoded;
  EXPECT_EQ(DecodeSnapshot(bytes.data(), bytes.size(), &decoded).code(),
            StatusCode::kInvalidArgument);
  // An unknown kind byte is rejected the same way.
  bytes[flags_at] &= static_cast<uint8_t>(~0x80);
  bytes[flags_at - 1] = 7;
  EXPECT_EQ(DecodeSnapshot(bytes.data(), bytes.size(), &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotCodecTest, OversizedDeclaredCountsRejectedBeforeAllocating) {
  // magic version tick offset uncertainty health="" audit="" then a rows
  // count far over kMaxSnapshotRows. The decoder must reject on the
  // declared size, not trust it and allocate.
  std::vector<uint8_t> bytes = {0x4B, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00};
  uint64_t huge = static_cast<uint64_t>(kMaxSnapshotRows) + 1;
  while (huge >= 0x80) {
    bytes.push_back(static_cast<uint8_t>(huge) | 0x80);
    huge >>= 7;
  }
  bytes.push_back(static_cast<uint8_t>(huge));
  TelemetrySnapshot decoded;
  EXPECT_EQ(DecodeSnapshot(bytes.data(), bytes.size(), &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotCodecTest, GarbageBuffersNeverDecode) {
  // Deterministic pseudo-garbage: none of these buffers carry the magic +
  // version prefix with a structurally valid body, so every decode must
  // fail (and under ASan, fail without touching bad memory).
  uint64_t state = 0x9E3779B97F4A7C15ull;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bytes(static_cast<size_t>(trial % 64) + 1);
    for (uint8_t& b : bytes) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      b = static_cast<uint8_t>(state >> 33);
    }
    bytes[0] = 0x4B;  // Let it past the magic so the body parser runs.
    if (bytes.size() > 1) bytes[1] = 0x01;
    TelemetrySnapshot decoded;
    Status s = DecodeSnapshot(bytes.data(), bytes.size(), &decoded);
    // A tiny buffer can accidentally be a valid empty snapshot; anything
    // that parses must then round-trip to the same bytes.
    if (s.ok()) {
      std::vector<uint8_t> re;
      EncodeSnapshot(decoded, &re);
      EXPECT_EQ(re, bytes) << "trial " << trial;
    }
  }
}

// ------------------------------------------------------ clock offset math

TEST(ClockOffsetTest, MinimumRttSampleWins) {
  ClockOffsetEstimator est;
  EXPECT_FALSE(est.has_estimate());
  EXPECT_EQ(est.uncertainty_ns(), -1);

  // A slow, queue-distorted round trip: rtt 10ms, apparent offset 1ms.
  est.AddSample(/*t0=*/0, /*t1=*/10000000, /*peer=*/6000000);
  ASSERT_TRUE(est.has_estimate());
  EXPECT_EQ(est.offset_ns(), 1000000);
  EXPECT_EQ(est.uncertainty_ns(), 5000000);

  // A fast probe: rtt 100us, true offset 250us. It wins and tightens the
  // error bar to rtt/2 = 50us.
  est.AddSample(/*t0=*/20000000, /*t1=*/20100000, /*peer=*/20300000);
  EXPECT_EQ(est.offset_ns(), 250000);
  EXPECT_EQ(est.uncertainty_ns(), 50000);

  // A later slower probe does not dethrone the minimum-RTT winner.
  est.AddSample(/*t0=*/40000000, /*t1=*/41000000, /*peer=*/99000000);
  EXPECT_EQ(est.offset_ns(), 250000);
  EXPECT_EQ(est.samples(), 3);
}

TEST(ClockOffsetTest, NonMonotonicSamplesIgnored) {
  ClockOffsetEstimator est;
  est.AddSample(/*t0=*/1000, /*t1=*/500, /*peer=*/0);  // t1 < t0.
  EXPECT_FALSE(est.has_estimate());
  EXPECT_EQ(est.samples(), 0);
}

TEST(ClockOffsetTest, WindowForgetsStaleMinimum) {
  ClockOffsetEstimator est(/*window=*/4);
  // One excellent early sample...
  est.AddSample(0, 10, 1005);  // rtt 10, offset 1000.
  EXPECT_EQ(est.offset_ns(), 1000);
  // ...then enough worse samples to evict it from the ring.
  for (int i = 1; i <= 4; ++i) {
    int64_t t0 = i * 1000;
    est.AddSample(t0, t0 + 100, t0 + 2050);  // rtt 100, offset 2000.
  }
  EXPECT_EQ(est.offset_ns(), 2000);
  EXPECT_EQ(est.uncertainty_ns(), 50);
}

// ------------------------------------------------------------- the merger

TEST(RemoteMergerTest, NamespacesAndFoldsKcPrefix) {
  RemoteTelemetryMerger merger;
  TelemetrySnapshot snap;
  snap.tick = 7;
  MetricRow row;
  row.name = "kc.agent.sent";
  row.kind = MetricKind::kCounter;
  row.counter = 5;
  snap.rows.push_back(row);
  row.name = "custom.metric";
  row.counter = 9;
  snap.rows.push_back(row);
  merger.Absorb(snap);

  std::vector<MetricRow> merged = merger.MergedRows({});
  ASSERT_EQ(merged.size(), 2u);
  // "kc." folds into the namespace; a bare name is prefixed whole.
  EXPECT_EQ(merged[0].name, "kc.remote.client.agent.sent");
  EXPECT_EQ(merged[0].counter, 5);
  EXPECT_EQ(merged[1].name, "kc.remote.client.custom.metric");
  EXPECT_EQ(merged[1].counter, 9);
  EXPECT_EQ(merger.last_tick(), 7);
}

TEST(RemoteMergerTest, RemoteRowsAreLatestWinsNotSums) {
  RemoteTelemetryMerger merger;
  TelemetrySnapshot snap;
  MetricRow row;
  row.name = "kc.agent.sent";
  row.kind = MetricKind::kCounter;
  row.counter = 5;
  snap.rows.push_back(row);
  merger.Absorb(snap);
  snap.rows[0].counter = 12;  // Cumulative registry state, not a delta.
  merger.Absorb(snap);

  std::vector<MetricRow> merged = merger.MergedRows({});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].counter, 12);
  EXPECT_EQ(merger.snapshots_absorbed(), 2);
}

TEST(RemoteMergerTest, MergedRowsInterleaveSortedWithLocal) {
  RemoteTelemetryMerger merger;
  TelemetrySnapshot snap;
  MetricRow row;
  row.name = "kc.agent.sent";
  row.kind = MetricKind::kCounter;
  row.counter = 1;
  snap.rows.push_back(row);
  merger.Absorb(snap);

  MetricRow local_a;
  local_a.name = "kc.replica.applied";
  local_a.kind = MetricKind::kCounter;
  local_a.counter = 3;
  MetricRow local_b;
  local_b.name = "kc.zzz";
  local_b.kind = MetricKind::kCounter;
  std::vector<MetricRow> merged =
      merger.MergedRows({std::move(local_b), std::move(local_a)});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].name, "kc.remote.client.agent.sent");
  EXPECT_EQ(merged[1].name, "kc.replica.applied");
  EXPECT_EQ(merged[2].name, "kc.zzz");
}

TEST(RemoteMergerTest, WireLatencyJoinMatchesAndRebases) {
  RemoteTelemetryMerger::Options options;
  options.type_name = [](uint8_t type) {
    return std::string("T") + std::to_string(type);
  };
  RemoteTelemetryMerger merger(options);
  MetricRegistry registry;
  merger.BindMetrics(&registry);

  // Remote clock runs 1ms behind: offset (local - remote) = +1ms. A send
  // stamped 5.000ms remote arriving 6.250ms local is a 250us flight.
  merger.RecordArrival(/*flow_id=*/42, /*type=*/1, /*arrival_ns=*/6250000);
  merger.RecordArrival(/*flow_id=*/43, /*type=*/1, /*arrival_ns=*/6500000);

  TelemetrySnapshot snap;
  snap.clock_offset_ns = 1000000;
  snap.clock_uncertainty_ns = 10000;
  WireSendRecord send;
  send.flow_id = 42;
  send.type = 1;
  send.send_ns = 5000000;
  snap.send_log.push_back(send);
  send.flow_id = 99;  // No arrival recorded: the wire genuinely lost it.
  snap.send_log.push_back(send);
  merger.Absorb(snap);

  EXPECT_EQ(merger.latency_matched(), 1);
  EXPECT_EQ(merger.latency_unmatched(), 1);
  std::vector<MetricRow> rows = registry.Rows();
  bool found = false;
  for (const MetricRow& r : rows) {
    if (r.name != "kc.net.wire_latency_us.T1") continue;
    found = true;
    EXPECT_TRUE(r.wall_clock);
    EXPECT_EQ(r.hist_count, 1);
    EXPECT_DOUBLE_EQ(r.hist_sum, 250.0);  // 250us flight.
  }
  EXPECT_TRUE(found);
}

TEST(RemoteMergerTest, DuplicateArrivalFirstWins) {
  RemoteTelemetryMerger merger;
  MetricRegistry registry;
  merger.BindMetrics(&registry);
  merger.RecordArrival(7, 1, 1000);
  merger.RecordArrival(7, 1, 999999);  // Duplicate: not the wire latency.

  TelemetrySnapshot snap;
  snap.clock_offset_ns = 0;
  snap.clock_uncertainty_ns = 0;
  WireSendRecord send;
  send.flow_id = 7;
  send.type = 1;
  send.send_ns = 400;
  snap.send_log.push_back(send);
  merger.Absorb(snap);

  EXPECT_EQ(merger.latency_matched(), 1);
  for (const MetricRow& r : registry.Rows()) {
    if (r.name.rfind("kc.net.wire_latency_us.", 0) == 0) {
      EXPECT_DOUBLE_EQ(r.hist_sum, 0.6);  // (1000 - 400) ns = 0.6us.
    }
  }
}

TEST(RemoteMergerTest, RemoteTraceEventsRebaseAndTagPid) {
  RemoteTelemetryMerger merger;
  TelemetrySnapshot snap;
  snap.clock_offset_ns = 500000;
  snap.clock_uncertainty_ns = 1000;
  SnapshotTraceEvent e;
  e.name = "agent.send";
  e.start_ns = 1000;
  e.duration_ns = 20;
  e.flow_id = 11;
  e.depth = 1;
  e.thread_index = 3;
  snap.trace_events.push_back(e);
  merger.Absorb(snap);

  std::vector<TraceEvent> events = merger.RemoteTraceEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "agent.send");
  EXPECT_EQ(events[0].start_ns, 501000);  // Rebased into the local clock.
  EXPECT_EQ(events[0].duration_ns, 20);
  EXPECT_EQ(events[0].flow_id, 11u);
  EXPECT_EQ(events[0].pid, 1u);
  EXPECT_EQ(events[0].thread_index, 3u);

  // The ring is cumulative: a later snapshot replaces, never appends.
  snap.trace_events[0].start_ns = 2000;
  merger.Absorb(snap);
  events = merger.RemoteTraceEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_ns, 502000);
}

TEST(RemoteMergerTest, BoundInstrumentsTrackAbsorbs) {
  RemoteTelemetryMerger merger;
  MetricRegistry registry;
  merger.BindMetrics(&registry);

  TelemetrySnapshot snap;
  snap.tick = 3;
  snap.clock_offset_ns = 2000;
  snap.clock_uncertainty_ns = 500;
  snap.health_summary = "client: ok";
  merger.Absorb(snap);

  EXPECT_EQ(merger.clock_offset_ns(), 2000);
  EXPECT_EQ(merger.clock_uncertainty_ns(), 500);
  EXPECT_EQ(merger.health_summary(), "client: ok");
  bool saw_snapshots = false;
  for (const MetricRow& r : registry.Rows()) {
    if (r.name == "kc.remote.snapshots") {
      saw_snapshots = true;
      EXPECT_EQ(r.counter, 1);
    }
  }
  EXPECT_TRUE(saw_snapshots);
}

}  // namespace
}  // namespace obs
}  // namespace kc
