#include "suppression/budget.h"

#include <gtest/gtest.h>

#include "net/channel.h"
#include "streams/generators.h"
#include "suppression/policies.h"
#include "suppression/replica.h"

namespace kc {
namespace {

/// Runs a volatile random walk through a value-cache agent steered by the
/// budget controller; returns the realized message rate of the last
/// quarter of the run and the final delta.
struct BudgetRun {
  double tail_rate;
  double final_delta;
  int64_t adjustments;
};

BudgetRun RunWithBudget(BudgetConfig budget, double initial_delta,
                        size_t ticks) {
  Channel channel;
  ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
  channel.SetReceiver([&replica](const Message& m) {
    (void)replica.OnMessage(m);
  });
  AgentConfig agent_config;
  agent_config.delta = initial_delta;
  SourceAgent agent(0, std::make_unique<ValueCachePredictor>(), agent_config,
                    &channel);
  BudgetController controller(budget);

  RandomWalkGenerator gen({.start = 0.0, .step_sigma = 1.0, .drift = 0.0,
                           .dt = 1.0, .seed = 1});
  gen.Reset(1);

  int64_t tail_start_msgs = 0;
  size_t tail_start = ticks - ticks / 4;
  for (size_t i = 0; i < ticks; ++i) {
    Sample s = gen.Next();
    replica.Tick();
    EXPECT_TRUE(agent.Offer(s.measured).ok());
    controller.OnTick(&agent);
    if (i == tail_start) {
      tail_start_msgs = agent.stats().corrections + agent.stats().full_syncs;
    }
  }
  int64_t tail_msgs =
      agent.stats().corrections + agent.stats().full_syncs - tail_start_msgs;
  BudgetRun out;
  out.tail_rate = static_cast<double>(tail_msgs) /
                  static_cast<double>(ticks - tail_start);
  out.final_delta = agent.delta();
  out.adjustments = controller.adjustments();
  return out;
}

TEST(BudgetControllerTest, ConvergesDownToBudgetFromTightDelta) {
  // delta=0.1 on a sigma=1 walk fires nearly every tick; budget is 5%.
  BudgetConfig budget;
  budget.target_rate = 0.05;
  budget.window = 200;
  BudgetRun run = RunWithBudget(budget, /*initial_delta=*/0.1, 30000);
  EXPECT_NEAR(run.tail_rate, 0.05, 0.03);
  EXPECT_GT(run.final_delta, 0.1);  // Had to loosen.
  EXPECT_GT(run.adjustments, 10);
}

TEST(BudgetControllerTest, TightensWhenUnderBudget) {
  // delta=50 on a sigma=1 walk almost never fires; the controller should
  // spend the budget by shrinking delta substantially.
  BudgetConfig budget;
  budget.target_rate = 0.05;
  budget.window = 200;
  BudgetRun run = RunWithBudget(budget, /*initial_delta=*/50.0, 30000);
  EXPECT_LT(run.final_delta, 50.0 * 0.5);
  EXPECT_NEAR(run.tail_rate, 0.05, 0.04);
}

TEST(BudgetControllerTest, RespectsDeltaFloorAndCeiling) {
  BudgetConfig budget;
  budget.target_rate = 1e9;  // Absurd budget: wants delta -> 0.
  budget.window = 10;
  budget.min_delta = 0.5;
  BudgetRun run = RunWithBudget(budget, 1.0, 2000);
  EXPECT_GE(run.final_delta, 0.5);

  budget.target_rate = 1e-9;  // No budget at all: wants delta -> inf.
  budget.max_delta = 7.0;
  run = RunWithBudget(budget, 1.0, 2000);
  EXPECT_LE(run.final_delta, 7.0);
}

TEST(BudgetControllerTest, NoAdjustmentBeforeWindowFills) {
  Channel channel;
  channel.SetReceiver([](const Message&) {});
  AgentConfig agent_config;
  agent_config.delta = 1.0;
  SourceAgent agent(0, std::make_unique<ValueCachePredictor>(), agent_config,
                    &channel);
  BudgetConfig budget;
  budget.window = 100;
  BudgetController controller(budget);
  for (int i = 0; i < 99; ++i) controller.OnTick(&agent);
  EXPECT_EQ(controller.adjustments(), 0);
  EXPECT_DOUBLE_EQ(agent.delta(), 1.0);
  controller.OnTick(&agent);
  EXPECT_EQ(controller.adjustments(), 1);
}

TEST(BudgetControllerTest, PerStepChangeIsClamped) {
  Channel channel;
  channel.SetReceiver([](const Message&) {});
  AgentConfig agent_config;
  agent_config.delta = 1.0;
  SourceAgent agent(0, std::make_unique<ValueCachePredictor>(), agent_config,
                    &channel);
  BudgetConfig budget;
  budget.window = 10;
  budget.max_step = 2.0;
  budget.target_rate = 1e-9;  // Wants a huge increase.
  BudgetController controller(budget);
  // Force some traffic so rate > 0 — actually zero traffic maps to the
  // maximum shrink; either way the step is bounded by max_step.
  for (int i = 0; i < 10; ++i) controller.OnTick(&agent);
  double after_one = agent.delta();
  EXPECT_LE(after_one, 2.0 + 1e-12);
  EXPECT_GE(after_one, 0.5 - 1e-12);
}

}  // namespace
}  // namespace kc
