#include "fleet/sharded_fleet.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "fleet/sharded_server.h"
#include "fleet/thread_pool.h"
#include "obs/export.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "query/parser.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace kc {
namespace {

KalmanPredictor::Config ScalarKalman(double q = 0.1, double r = 0.25) {
  KalmanPredictor::Config config;
  config.model = MakeRandomWalkModel(q, r);
  return config;
}

void AddStandardSources(ShardedFleet& fleet, int n) {
  for (int i = 0; i < n; ++i) {
    RandomWalkGenerator::Config walk;
    walk.start = 5.0 * i;
    walk.step_sigma = 0.2 + 0.05 * (i % 4);
    fleet.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                    std::make_unique<KalmanPredictor>(ScalarKalman()),
                    /*delta=*/0.5 + 0.1 * (i % 3));
  }
}

/// Everything the determinism contract promises to hold fixed.
struct Fingerprint {
  /// Whether each source's replica initialized (INIT can be lost on a
  /// lossy channel — deterministically, so this too must match).
  std::vector<bool> initialized;
  std::vector<double> values;
  std::vector<double> bounds;
  std::vector<double> query_values;
  std::vector<double> query_bounds;
  int64_t total_messages = 0;
  int64_t total_bytes = 0;
  int64_t messages_processed = 0;
  NetworkStats net;
};

void ExpectEqualFingerprints(const Fingerprint& a, const Fingerprint& b,
                             const std::string& label) {
  ASSERT_EQ(a.values.size(), b.values.size()) << label;
  for (size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.initialized[i], b.initialized[i]) << label << " init " << i;
    EXPECT_EQ(a.values[i], b.values[i]) << label << " value " << i;
    EXPECT_EQ(a.bounds[i], b.bounds[i]) << label << " bound " << i;
  }
  ASSERT_EQ(a.query_values.size(), b.query_values.size()) << label;
  for (size_t i = 0; i < a.query_values.size(); ++i) {
    EXPECT_EQ(a.query_values[i], b.query_values[i]) << label << " query " << i;
    EXPECT_EQ(a.query_bounds[i], b.query_bounds[i]) << label << " query " << i;
  }
  EXPECT_EQ(a.total_messages, b.total_messages) << label;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << label;
  EXPECT_EQ(a.messages_processed, b.messages_processed) << label;
  EXPECT_EQ(a.net.messages_sent, b.net.messages_sent) << label;
  EXPECT_EQ(a.net.messages_delivered, b.net.messages_delivered) << label;
  EXPECT_EQ(a.net.messages_dropped, b.net.messages_dropped) << label;
  EXPECT_EQ(a.net.bytes_sent, b.net.bytes_sent) << label;
  EXPECT_EQ(a.net.bytes_delivered, b.net.bytes_delivered) << label;
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    EXPECT_EQ(a.net.by_type[i], b.net.by_type[i]) << label << " type " << i;
  }
}

Fingerprint RunSharded(size_t threads, size_t shards,
                       Channel::Config channel = Channel::Config(),
                       bool pooling = true, size_t sweep_threads = 0,
                       bool simd = true) {
  ShardedFleet::Config config;
  config.seed = 12345;
  config.threads = threads;
  config.num_shards = shards;
  config.channel = channel;
  config.pooling = pooling;
  config.sweep_threads = sweep_threads;
  config.simd = simd;
  ShardedFleet fleet(config);
  AddStandardSources(fleet, 12);

  EXPECT_TRUE(fleet.Run(2).ok());  // Initialize before registering queries.
  auto avg = ParseQuery("SELECT AVG(s0, s3, s5, s7, s9, s11) WITHIN 10");
  EXPECT_TRUE(avg.ok());
  EXPECT_TRUE(fleet.server().AddQuery("avg", *avg).ok());
  auto mx = ParseQuery("SELECT MAX(s1, s2, s4, s6, s8, s10) EVERY 7");
  EXPECT_TRUE(mx.ok());
  EXPECT_TRUE(fleet.server().AddQuery("max", *mx).ok());

  Fingerprint fp;
  for (int t = 0; t < 300; ++t) {
    EXPECT_TRUE(fleet.Step().ok());
    std::vector<QueryResult> due = fleet.server().EvaluateDue();
    for (const QueryResult& r : due) {
      fp.query_values.push_back(r.value);
      fp.query_bounds.push_back(r.bound);
    }
  }
  for (int32_t id = 0; id < static_cast<int32_t>(fleet.num_sources()); ++id) {
    auto answer = fleet.server().SourceValue(id);
    fp.initialized.push_back(answer.ok());
    fp.values.push_back(answer.ok() ? answer->value[0] : 0.0);
    fp.bounds.push_back(answer.ok() ? answer->bound : 0.0);
  }
  fp.total_messages = fleet.TotalMessages();
  fp.total_bytes = fleet.TotalBytes();
  fp.messages_processed = fleet.server().messages_processed();
  fp.net = fleet.TotalNetworkStats();
  return fp;
}

TEST(ShardedFleetTest, BitIdenticalForAnyThreadCount) {
  Fingerprint one = RunSharded(/*threads=*/1, /*shards=*/8);
  Fingerprint two = RunSharded(/*threads=*/2, /*shards=*/8);
  Fingerprint four = RunSharded(/*threads=*/4, /*shards=*/8);
  ExpectEqualFingerprints(one, two, "threads 1 vs 2");
  ExpectEqualFingerprints(one, four, "threads 1 vs 4");
}

/// Runs a fleet with telemetry enabled and returns the deterministic
/// (non-wall-clock) part of the merged metrics export.
std::string RunShardedMetricsExport(size_t threads) {
  ShardedFleet::Config config;
  config.seed = 777;
  config.threads = threads;
  config.num_shards = 8;
  ShardedFleet fleet(config);
  fleet.EnableMetrics();
  AddStandardSources(fleet, 12);
  EXPECT_TRUE(fleet.Run(200).ok());
  obs::MetricRegistry merged;
  fleet.MergeMetricsInto(&merged);
  return obs::ExportText(merged, /*include_wall_clock=*/false);
}

TEST(ShardedFleetTest, MetricsExportBitIdenticalForAnyThreadCount) {
  std::string one = RunShardedMetricsExport(1);
  std::string four = RunShardedMetricsExport(4);
  EXPECT_EQ(one, four);
  // The export actually carries the serving path's telemetry.
  EXPECT_NE(one.find("kc.agent.decisions"), std::string::npos);
  EXPECT_NE(one.find("kc.net.messages_sent"), std::string::npos);
  EXPECT_NE(one.find("kc.server.ticks"), std::string::npos);
  EXPECT_NE(one.find("kc.agent.innovation"), std::string::npos);
  // Wall-clock timings exist but are excluded from deterministic exports.
  EXPECT_EQ(one.find("step_latency"), std::string::npos);
}

/// One fault-injected observability run: recorder + watchdog + metrics on
/// a lossy fleet with recovery. Returns every deterministic artefact the
/// observability layer can emit.
struct ObsArtifacts {
  std::string recorder_text;
  std::string recorder_json;
  std::string health_summary;
  std::string metrics;
  std::string audit_text;
  std::string audit_json;
  std::string audit_summary;
  std::vector<obs::HealthState> states;
};

ObsArtifacts RunShardedObservability(size_t threads) {
  ShardedFleet::Config config;
  config.seed = 4242;
  config.threads = threads;
  config.num_shards = 8;
  config.channel.loss_prob = 0.05;
  config.channel.faults.burst_enter_prob = 0.02;
  config.channel.faults.burst_exit_prob = 0.3;
  config.channel.faults.burst_loss_prob = 0.9;
  config.channel.faults.partition_start = 80;
  config.channel.faults.partition_length = 10;
  config.recovery.enabled = true;
  config.recovery.suspect_after_silent_ticks = 6;
  ShardedFleet fleet(config);
  fleet.EnableMetrics();
  fleet.EnableFlightRecorder(/*capacity_per_source=*/256);
  obs::HealthConfig health;
  health.nis_window = 16;
  fleet.EnableHealth(health);
  obs::AuditConfig audit;
  audit.sample_every = 2;
  audit.slo_window_ticks = 64;
  fleet.EnableAudit(audit);
  AddStandardSources(fleet, 12);
  EXPECT_TRUE(fleet.Run(300).ok());

  ObsArtifacts out;
  out.recorder_text = fleet.DumpFlightRecorderText();
  out.recorder_json = fleet.server().DumpFlightRecorderJson();
  out.health_summary = fleet.HealthSummaryText();
  out.audit_text = fleet.AuditReportText();
  out.audit_json = fleet.AuditReportJson();
  out.audit_summary = fleet.AuditSummaryLine();
  obs::MetricRegistry merged;
  fleet.MergeMetricsInto(&merged);
  out.metrics = obs::ExportText(merged, /*include_wall_clock=*/false);
  for (int32_t id = 0; id < 12; ++id) out.states.push_back(fleet.HealthOf(id));
  return out;
}

TEST(ShardedFleetTest, ObservabilityArtifactsBitIdenticalForAnyThreadCount) {
  ObsArtifacts one = RunShardedObservability(1);
  ObsArtifacts four = RunShardedObservability(4);
  EXPECT_EQ(one.recorder_text, four.recorder_text);
  EXPECT_EQ(one.recorder_json, four.recorder_json);
  EXPECT_EQ(one.health_summary, four.health_summary);
  EXPECT_EQ(one.metrics, four.metrics);
  EXPECT_EQ(one.audit_text, four.audit_text);
  EXPECT_EQ(one.audit_json, four.audit_json);
  EXPECT_EQ(one.audit_summary, four.audit_summary);
  EXPECT_EQ(one.states, four.states);

  // The run actually exercised the interesting paths: faults left a
  // recovery trail in the black box, every source has a ring and a
  // summary line, and the watchdog's telemetry landed in the export.
  EXPECT_NE(one.recorder_text.find("WIRE_GAP"), std::string::npos);
  EXPECT_NE(one.recorder_text.find("RESYNC_REQUEST"), std::string::npos);
  for (int32_t id = 0; id < 12; ++id) {
    std::string needle = "source " + std::to_string(id) + " flight recorder";
    EXPECT_NE(one.recorder_text.find(needle), std::string::npos) << id;
  }
  EXPECT_NE(one.health_summary.find("source    0"), std::string::npos);
  EXPECT_NE(one.health_summary.find("source   11"), std::string::npos);
  // The injected loss is heavy enough that the watchdog flags at least
  // one source (resync storms trip the rate detector).
  int flagged = 0;
  for (obs::HealthState s : one.states) {
    if (s != obs::HealthState::kOk) ++flagged;
  }
  EXPECT_GT(flagged, 0) << one.health_summary;
  EXPECT_NE(one.metrics.find("kc.recorder.events"), std::string::npos);
  EXPECT_NE(one.metrics.find("kc.health.nis_windows"), std::string::npos);
  EXPECT_NE(one.metrics.find("kc.health.sources_ok"), std::string::npos);
  // The precision auditor rode along: per-source report lines, a fleet
  // summary, and its metric family all landed in the artefacts.
  EXPECT_NE(one.audit_text.find("source    0"), std::string::npos);
  EXPECT_NE(one.audit_text.find("source   11"), std::string::npos);
  EXPECT_NE(one.audit_summary.find("audit: sources=12"), std::string::npos);
  EXPECT_NE(one.audit_json.find("\"totals\":"), std::string::npos);
  EXPECT_NE(one.metrics.find("kc.audit.samples"), std::string::npos);
  EXPECT_NE(one.metrics.find("kc.health.audit_breaches"), std::string::npos);
}

TEST(ShardedFleetTest, MetricsMirrorProtocolCounters) {
  ShardedFleet::Config config;
  config.seed = 99;
  config.threads = 2;
  config.num_shards = 4;
  ShardedFleet fleet(config);
  fleet.EnableMetrics();
  AddStandardSources(fleet, 8);
  ASSERT_TRUE(fleet.Run(150).ok());

  obs::MetricRegistry merged;
  fleet.MergeMetricsInto(&merged);
  int64_t corrections = 0;
  int64_t suppressed = 0;
  for (int32_t id = 0; id < 8; ++id) {
    corrections += fleet.agent(id).stats().corrections;
    suppressed += fleet.agent(id).stats().suppressed;
  }
  EXPECT_EQ(merged.GetCounter("kc.agent.corrections")->value(), corrections);
  EXPECT_EQ(merged.GetCounter("kc.agent.suppressed")->value(), suppressed);
  EXPECT_EQ(merged.GetCounter("kc.net.messages_sent")->value(),
            fleet.TotalNetworkStats().messages_sent);
  EXPECT_EQ(merged.GetCounter("kc.server.messages_in")->value(),
            fleet.server().messages_processed());
  EXPECT_EQ(merged.GetCounter("kc.server.ticks")->value(),
            static_cast<int64_t>(fleet.num_shards()) * 150);
  EXPECT_DOUBLE_EQ(merged.GetGauge("kc.server.sources")->value(), 8.0);
}

TEST(ShardedFleetTest, PeriodicMetricsReportFiresOnCadence) {
  ShardedFleet::Config config;
  config.threads = 2;
  ShardedFleet fleet(config);
  fleet.EnableMetrics();
  AddStandardSources(fleet, 4);
  std::vector<std::string> reports;
  fleet.EnablePeriodicMetricsReport(
      10, [&](const std::string& report) { reports.push_back(report); });
  ASSERT_TRUE(fleet.Run(35).ok());
  ASSERT_EQ(reports.size(), 3u);  // Ticks 10, 20, 30.
  EXPECT_NE(reports[0].find("kc.agent.decisions"), std::string::npos);
  // Counters only grow tick over tick.
  EXPECT_NE(reports[0], reports[2]);
}

TEST(ShardedFleetTest, BitIdenticalForAnyShardCount) {
  Fingerprint s1 = RunSharded(/*threads=*/2, /*shards=*/1);
  Fingerprint s3 = RunSharded(/*threads=*/2, /*shards=*/3);
  Fingerprint s8 = RunSharded(/*threads=*/2, /*shards=*/8);
  ExpectEqualFingerprints(s1, s3, "shards 1 vs 3");
  ExpectEqualFingerprints(s1, s8, "shards 1 vs 8");
}

TEST(ShardedFleetTest, BitIdenticalUnderLossAndLatency) {
  Channel::Config lossy;
  lossy.loss_prob = 0.2;
  lossy.latency_ticks = 3;
  Fingerprint one = RunSharded(1, 8, lossy);
  Fingerprint four = RunSharded(4, 8, lossy);
  EXPECT_GT(one.net.messages_dropped, 0);
  ExpectEqualFingerprints(one, four, "lossy threads 1 vs 4");
}

TEST(ShardedFleetTest, PooledBitIdenticalToPerObjectPredictors) {
  // The SoA filter pools are a memory-layout change only: the pooled path
  // must reproduce the virtual per-object Predictor path bit-for-bit, on
  // clean and lossy channels alike.
  Fingerprint pooled = RunSharded(2, 8);
  Fingerprint object = RunSharded(2, 8, Channel::Config(), /*pooling=*/false);
  ExpectEqualFingerprints(pooled, object, "pooled vs per-object");

  Channel::Config lossy;
  lossy.loss_prob = 0.2;
  lossy.latency_ticks = 3;
  Fingerprint pooled_lossy = RunSharded(2, 8, lossy);
  Fingerprint object_lossy = RunSharded(2, 8, lossy, /*pooling=*/false);
  EXPECT_GT(pooled_lossy.net.messages_dropped, 0);
  ExpectEqualFingerprints(pooled_lossy, object_lossy,
                          "pooled vs per-object (lossy)");
}

TEST(ShardedFleetTest, BitIdenticalForAnySweepThreadCount) {
  // The phase-1 parallel pool sweep: chunk boundaries depend only on the
  // block count (ThreadPool::NumChunks), never on who executes them, so
  // any sweep_threads setting — shared pool, dedicated 1-thread pool,
  // dedicated 4-thread pool — must reproduce the same run bit-for-bit.
  Fingerprint shared = RunSharded(2, 8);
  Fingerprint dedicated1 =
      RunSharded(2, 8, Channel::Config(), true, /*sweep_threads=*/1);
  Fingerprint dedicated4 =
      RunSharded(2, 8, Channel::Config(), true, /*sweep_threads=*/4);
  ExpectEqualFingerprints(shared, dedicated1, "sweep shared vs 1");
  ExpectEqualFingerprints(shared, dedicated4, "sweep shared vs 4");
}

TEST(ShardedFleetTest, BitIdenticalWithSimdOnAndOff) {
  // The lane kernels execute the exact scalar FP op sequence per slot, so
  // disabling them at runtime is invisible to every answer — with single-
  // and multi-threaded sweeps alike.
  Fingerprint simd_on = RunSharded(2, 8);
  Fingerprint simd_off = RunSharded(2, 8, Channel::Config(), true, 0,
                                    /*simd=*/false);
  ExpectEqualFingerprints(simd_on, simd_off, "simd on vs off");

  Fingerprint simd_off_swept = RunSharded(2, 8, Channel::Config(), true,
                                          /*sweep_threads=*/4, /*simd=*/false);
  ExpectEqualFingerprints(simd_on, simd_off_swept,
                          "simd on vs off (parallel sweep)");
}

TEST(ShardedFleetTest, PooledBitIdenticalToPerObjectUnderFaultsWithSweeps) {
  // The strongest cross-cutting pin: SIMD lanes + a parallel sweep pool +
  // a faulty channel (loss, latency) on the pooled path must reproduce
  // the per-object scalar path bit-for-bit. Any FP reordering, masked-
  // store leak, or sweep/update interleaving bug shows up here.
  Channel::Config lossy;
  lossy.loss_prob = 0.2;
  lossy.latency_ticks = 3;
  Fingerprint pooled = RunSharded(4, 8, lossy, /*pooling=*/true,
                                  /*sweep_threads=*/4, /*simd=*/true);
  Fingerprint object = RunSharded(1, 8, lossy, /*pooling=*/false);
  EXPECT_GT(pooled.net.messages_dropped, 0);
  ExpectEqualFingerprints(pooled, object,
                          "pooled simd parallel-sweep vs per-object (lossy)");
}

TEST(ShardedFleetTest, MatchesSingleThreadedFleet) {
  // The sharded executor must reproduce the classic Fleet bit-for-bit:
  // same seed, same AddSource order => same per-source answers and the
  // same fleet-wide message accounting.
  Fleet::Config flat_config;
  flat_config.seed = 777;
  Fleet flat(flat_config);
  ShardedFleet::Config sharded_config;
  sharded_config.seed = 777;
  sharded_config.threads = 4;
  sharded_config.num_shards = 5;
  ShardedFleet sharded(sharded_config);
  for (int i = 0; i < 9; ++i) {
    RandomWalkGenerator::Config walk;
    walk.start = 2.0 * i;
    walk.step_sigma = 0.3;
    flat.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                   std::make_unique<KalmanPredictor>(ScalarKalman()), 0.5);
    sharded.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                      std::make_unique<KalmanPredictor>(ScalarKalman()), 0.5);
  }
  ASSERT_TRUE(flat.Run(250).ok());
  ASSERT_TRUE(sharded.Run(250).ok());
  for (int32_t id = 0; id < 9; ++id) {
    auto a = flat.server().SourceValue(id);
    auto b = sharded.server().SourceValue(id);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->value[0], b->value[0]) << "source " << id;
    EXPECT_EQ(a->bound, b->bound) << "source " << id;
    EXPECT_EQ(flat.MessagesOf(id), sharded.MessagesOf(id)) << "source " << id;
  }
  EXPECT_EQ(flat.TotalMessages(), sharded.TotalMessages());
  EXPECT_EQ(flat.TotalBytes(), sharded.TotalBytes());
  EXPECT_EQ(flat.server().messages_processed(),
            sharded.server().messages_processed());
}

TEST(ShardedFleetTest, CrossShardQueriesAndArchives) {
  ShardedFleet::Config config;
  config.seed = 9;
  config.threads = 2;
  config.num_shards = 4;
  ShardedFleet fleet(config);
  AddStandardSources(fleet, 8);
  fleet.server().EnableArchiving(64);
  ASSERT_TRUE(fleet.Run(50).ok());

  // A query spanning every shard evaluates against the merged view.
  QuerySpec spec;
  spec.kind = AggregateKind::kAvg;
  for (int32_t id = 0; id < 8; ++id) spec.sources.push_back(id);
  ASSERT_TRUE(fleet.server().AddQuery("all", spec).ok());
  auto result = fleet.server().Evaluate("all");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->bound, 0.0);

  // Shard-local archives answer historical queries through the merged
  // view, including a LAST window larger than recorded history.
  for (int32_t id = 0; id < 8; ++id) {
    auto archive = fleet.server().Archive(id);
    ASSERT_TRUE(archive.ok()) << "source " << id;
    EXPECT_GT((*archive)->size(), 0u);
    QuerySpec last;
    last.kind = AggregateKind::kAvg;
    last.sources.push_back(id);
    last.last_ticks = 10000;  // Far more than the 50 recorded ticks.
    auto hist = fleet.server().EvaluateSpec(last, "hist");
    ASSERT_TRUE(hist.ok()) << hist.status();
  }

  // The registry behaves like StreamServer's.
  EXPECT_FALSE(fleet.server().AddQuery("all", spec).ok());
  EXPECT_EQ(fleet.server().QueryNames(),
            (std::vector<std::string>{"all"}));
  EXPECT_TRUE(fleet.server().RemoveQuery("all").ok());
  EXPECT_FALSE(fleet.server().Evaluate("all").ok());
}

TEST(ShardedFleetTest, SourceLifecycleOnShards) {
  ShardedServer server(4);
  ASSERT_TRUE(
      server.RegisterSource(3, std::make_unique<ValueCachePredictor>()).ok());
  EXPECT_FALSE(
      server.RegisterSource(3, std::make_unique<ValueCachePredictor>()).ok());
  EXPECT_EQ(server.num_sources(), 1u);
  EXPECT_EQ(server.SourceIds(), (std::vector<int32_t>{3}));
  EXPECT_TRUE(server.UnregisterSource(3).ok());
  EXPECT_FALSE(server.UnregisterSource(3).ok());
  EXPECT_EQ(server.num_sources(), 0u);
}

TEST(ShardedFleetTest, ControlPushReachesSource) {
  ShardedFleet::Config config;
  config.threads = 2;
  config.num_shards = 3;
  ShardedFleet fleet(config);
  RandomWalkGenerator::Config walk;
  fleet.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                  std::make_unique<ValueCachePredictor>(), 1.0);
  ASSERT_TRUE(fleet.Run(3).ok());
  ASSERT_TRUE(fleet.server().PushBound(0, 2.5).ok());
  EXPECT_EQ(fleet.TotalControlMessages(), 1);
  ASSERT_TRUE(fleet.Run(1).ok());
  EXPECT_DOUBLE_EQ(fleet.agent(0).delta(), 2.5);
}

TEST(ShardedFleetTest, ShardAssignmentIsStable) {
  ShardedServer a(8);
  ShardedServer b(8);
  for (int32_t id = 0; id < 100; ++id) {
    EXPECT_EQ(a.ShardOf(id), b.ShardOf(id));
    EXPECT_LT(a.ShardOf(id), 8u);
  }
  // The hash must actually spread sources around.
  std::vector<int> counts(8, 0);
  for (int32_t id = 0; id < 1000; ++id) ++counts[a.ShardOf(id)];
  for (int shard = 0; shard < 8; ++shard) {
    EXPECT_GT(counts[shard], 50) << "shard " << shard;
  }
}

// Regression: ParallelFor used to deadlock when a body called back into
// its own pool (the nested batch overwrote the published batch while the
// workers were still draining the outer one, and the nested join waited
// on completions that could never arrive). Re-entry must now be detected
// and the nested loop run inline.
TEST(ThreadPoolTest, ReentrantParallelForRunsInline) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 8;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](size_t i) {
    // Nested batched work from inside a body — on workers and on the
    // driver thread alike.
    pool.ParallelFor(kInner, [&](size_t j) {
      hits[i * kInner + j].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, DeeplyNestedAndDegenerateReentry) {
  ThreadPool pool(3);
  std::atomic<int> leaves{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(3, [&](size_t) {
      pool.ParallelFor(2, [&](size_t) {
        leaves.fetch_add(1, std::memory_order_relaxed);
      });
      pool.ParallelFor(0, [&](size_t) { FAIL() << "n=0 body must not run"; });
    });
  });
  EXPECT_EQ(leaves.load(), 4 * 3 * 2);
  // A sequential pool (threads=1) accepts the same nesting.
  ThreadPool seq(1);
  std::atomic<int> seq_leaves{0};
  seq.ParallelFor(2, [&](size_t) {
    seq.ParallelFor(2, [&](size_t) {
      seq_leaves.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(seq_leaves.load(), 4);
}

}  // namespace
}  // namespace kc
