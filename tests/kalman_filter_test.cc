#include "kalman/kalman_filter.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "kalman/riccati.h"
#include "linalg/decomp.h"

namespace kc {
namespace {

KalmanFilter MakeScalarFilter(double q, double r,
                              KalmanFilter::UpdateForm form =
                                  KalmanFilter::UpdateForm::kJoseph) {
  return KalmanFilter(MakeRandomWalkModel(q, r), Vector{0.0},
                      Matrix{{1.0}}, form);
}

TEST(KalmanFilterTest, PredictPropagatesMeanAndCovariance) {
  StateSpaceModel m = MakeConstantVelocityModel(1.0, 0.1, 1.0);
  KalmanFilter kf(m, Vector{1.0, 2.0}, Matrix::Identity(2));
  kf.Predict();
  // x = F x: position 1 + 2*1 = 3, velocity 2.
  EXPECT_DOUBLE_EQ(kf.state()[0], 3.0);
  EXPECT_DOUBLE_EQ(kf.state()[1], 2.0);
  // P grows: F P F^T + Q with P = I.
  Matrix expected = Sandwich(m.f, Matrix::Identity(2)) + m.q;
  EXPECT_TRUE(AlmostEqual(kf.covariance(), expected, 1e-12));
}

TEST(KalmanFilterTest, UpdateMovesTowardObservation) {
  KalmanFilter kf = MakeScalarFilter(0.1, 1.0);
  kf.Predict();
  ASSERT_TRUE(kf.Update(Vector{5.0}).ok());
  EXPECT_GT(kf.state()[0], 0.0);
  EXPECT_LT(kf.state()[0], 5.0);
  EXPECT_EQ(kf.update_count(), 1);
}

TEST(KalmanFilterTest, UpdateRejectsWrongDimension) {
  KalmanFilter kf = MakeScalarFilter(0.1, 1.0);
  EXPECT_FALSE(kf.Update(Vector{1.0, 2.0}).ok());
  EXPECT_EQ(kf.update_count(), 0);
}

TEST(KalmanFilterTest, ConvergesToScalarRiccatiFixedPoint) {
  double q = 0.3, r = 2.0;
  ScalarSteadyState ss = SolveScalarDare(1.0, q, 1.0, r);
  KalmanFilter kf = MakeScalarFilter(q, r);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    kf.Predict();
    ASSERT_TRUE(kf.Update(Vector{rng.Gaussian()}).ok());
  }
  // Posterior variance should sit at the steady-state updated variance.
  EXPECT_NEAR(kf.covariance()(0, 0), ss.p_update, 1e-9);
  // One more predict lands on the prior steady state.
  kf.Predict();
  EXPECT_NEAR(kf.covariance()(0, 0), ss.p_predict, 1e-9);
}

TEST(KalmanFilterTest, JosephAndStandardAgreeOnWellConditioned) {
  KalmanFilter a = MakeScalarFilter(0.5, 1.0, KalmanFilter::UpdateForm::kJoseph);
  KalmanFilter b =
      MakeScalarFilter(0.5, 1.0, KalmanFilter::UpdateForm::kStandard);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    double z = rng.Gaussian(0.0, 2.0);
    a.Predict();
    b.Predict();
    ASSERT_TRUE(a.Update(Vector{z}).ok());
    ASSERT_TRUE(b.Update(Vector{z}).ok());
  }
  EXPECT_NEAR(a.state()[0], b.state()[0], 1e-9);
  EXPECT_NEAR(a.covariance()(0, 0), b.covariance()(0, 0), 1e-9);
}

TEST(KalmanFilterTest, TracksNoisyRandomWalkBetterThanRawMeasurements) {
  double process_sigma = 0.2, noise_sigma = 2.0;
  KalmanFilter kf = MakeScalarFilter(process_sigma * process_sigma,
                                     noise_sigma * noise_sigma);
  Rng rng(13);
  double truth = 0.0;
  RunningStats filter_err, raw_err;
  for (int i = 0; i < 5000; ++i) {
    truth += rng.Gaussian(0.0, process_sigma);
    double z = truth + rng.Gaussian(0.0, noise_sigma);
    kf.Predict();
    ASSERT_TRUE(kf.Update(Vector{z}).ok());
    filter_err.Add(kf.state()[0] - truth);
    raw_err.Add(z - truth);
  }
  // The filter's RMSE should be far below the sensor's.
  EXPECT_LT(filter_err.rms(), 0.5 * raw_err.rms());
}

TEST(KalmanFilterTest, NisAveragesNearObsDimWhenModelMatches) {
  double q = 0.09, r = 1.0;
  KalmanFilter kf = MakeScalarFilter(q, r);
  Rng rng(17);
  double truth = 0.0;
  RunningStats nis;
  for (int i = 0; i < 20000; ++i) {
    truth += rng.Gaussian(0.0, 0.3);
    double z = truth + rng.Gaussian(0.0, 1.0);
    kf.Predict();
    ASSERT_TRUE(kf.Update(Vector{z}).ok());
    if (i > 100) nis.Add(kf.last_nis());
  }
  // NIS ~ chi^2(1): mean 1.
  EXPECT_NEAR(nis.mean(), 1.0, 0.1);
}

TEST(KalmanFilterTest, LogLikelihoodIsGaussianDensity) {
  KalmanFilter kf = MakeScalarFilter(0.1, 1.0);
  kf.Predict();
  ASSERT_TRUE(kf.Update(Vector{0.7}).ok());
  // Manually: before update x=0, P=1.1; S = 1.1 + 1 = 2.1; nu = 0.7.
  double s = 2.1, nu = 0.7;
  double expected = -0.5 * (nu * nu / s + std::log(s) + std::log(2 * M_PI));
  EXPECT_NEAR(kf.last_log_likelihood(), expected, 1e-12);
  EXPECT_NEAR(kf.last_nis(), nu * nu / s, 1e-12);
}

TEST(KalmanFilterTest, PredictObservationAndInnovationCovariance) {
  StateSpaceModel m = MakeConstantVelocityModel(1.0, 0.1, 2.0);
  KalmanFilter kf(m, Vector{4.0, 1.0}, Matrix::Identity(2));
  EXPECT_DOUBLE_EQ(kf.PredictObservation()[0], 4.0);
  Matrix s = kf.InnovationCovariance();
  EXPECT_DOUBLE_EQ(s(0, 0), 1.0 + 2.0);  // H P H^T + R with P = I.
}

TEST(KalmanFilterTest, SerializeDeserializeRoundTrip) {
  StateSpaceModel m = MakeConstantVelocityModel(1.0, 0.2, 1.0);
  KalmanFilter a(m, Vector{1.0, -1.0}, Matrix::Identity(2));
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    a.Predict();
    ASSERT_TRUE(a.Update(Vector{rng.Gaussian()}).ok());
  }
  KalmanFilter b(m, Vector{0.0, 0.0}, Matrix::Identity(2));
  ASSERT_TRUE(b.DeserializeState(a.SerializeState()).ok());
  EXPECT_TRUE(AlmostEqual(a.state(), b.state(), 1e-15));
  EXPECT_TRUE(AlmostEqual(a.covariance(), b.covariance(), 1e-15));

  // And they evolve identically afterwards.
  a.Predict();
  b.Predict();
  ASSERT_TRUE(a.Update(Vector{0.5}).ok());
  ASSERT_TRUE(b.Update(Vector{0.5}).ok());
  EXPECT_TRUE(AlmostEqual(a.state(), b.state(), 1e-15));
}

TEST(KalmanFilterTest, DeserializeRejectsWrongSize) {
  KalmanFilter kf = MakeScalarFilter(0.1, 1.0);
  EXPECT_FALSE(kf.DeserializeState({1.0, 2.0, 3.0}).ok());
}

TEST(KalmanFilterTest, ResetClearsDiagnostics) {
  KalmanFilter kf = MakeScalarFilter(0.1, 1.0);
  kf.Predict();
  ASSERT_TRUE(kf.Update(Vector{1.0}).ok());
  kf.Reset(Vector{2.0}, Matrix{{4.0}});
  EXPECT_EQ(kf.update_count(), 0);
  EXPECT_DOUBLE_EQ(kf.state()[0], 2.0);
  EXPECT_DOUBLE_EQ(kf.covariance()(0, 0), 4.0);
}

/// Property sweep: covariance stays symmetric PSD over long runs for every
/// bundled model under the Joseph update.
class CovariancePsdTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {
 public:
  static StateSpaceModel ModelByName(const std::string& name) {
    if (name == "random_walk") return MakeRandomWalkModel(0.2, 1.0);
    if (name == "cv") return MakeConstantVelocityModel(1.0, 0.1, 1.0);
    if (name == "ca") return MakeConstantAccelerationModel(1.0, 0.05, 1.0);
    if (name == "harmonic") return MakeHarmonicModel(0.15, 1.0, 0.01, 1.0);
    return MakeConstantVelocity2DModel(1.0, 0.1, 1.0);
  }
};

TEST_P(CovariancePsdTest, StaysSymmetricPsdOverLongRuns) {
  auto [name, seed] = GetParam();
  StateSpaceModel m = ModelByName(name);
  size_t n = m.state_dim();
  KalmanFilter kf(m, Vector(n), Matrix::ScalarDiagonal(n, 10.0));
  Rng rng(static_cast<uint64_t>(seed));
  for (int i = 0; i < 5000; ++i) {
    kf.Predict();
    Vector z(m.obs_dim());
    for (size_t d = 0; d < m.obs_dim(); ++d) z[d] = rng.Gaussian(0.0, 3.0);
    ASSERT_TRUE(kf.Update(z).ok());
    if (i % 500 == 0) {
      ASSERT_TRUE(kf.covariance().IsSymmetric(1e-9)) << name << " @" << i;
      ASSERT_TRUE(IsPositiveSemiDefinite(kf.covariance())) << name << " @" << i;
    }
  }
  EXPECT_TRUE(IsPositiveSemiDefinite(kf.covariance()));
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, CovariancePsdTest,
    ::testing::Combine(::testing::Values("random_walk", "cv", "ca", "harmonic",
                                         "cv2d"),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace kc
