#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/channel.h"
#include "suppression/agent.h"
#include "suppression/policies.h"
#include "suppression/replica.h"

namespace kc {
namespace {

Reading MakeReading(int64_t seq, double value) {
  Reading r;
  r.seq = seq;
  r.time = static_cast<double>(seq);
  r.value = Vector{value};
  return r;
}

/// A wired agent+replica pair over a lossless channel.
struct Link {
  Channel channel;
  std::unique_ptr<ServerReplica> replica;
  std::unique_ptr<SourceAgent> agent;

  Link(std::unique_ptr<Predictor> proto, AgentConfig config) {
    replica = std::make_unique<ServerReplica>(0, proto->Clone());
    ServerReplica* r = replica.get();
    channel.SetReceiver([r](const Message& msg) {
      ASSERT_TRUE(r->OnMessage(msg).ok());
    });
    agent = std::make_unique<SourceAgent>(0, std::move(proto), config, &channel);
  }

  void Step(const Reading& reading) {
    replica->Tick();
    ASSERT_TRUE(agent->Offer(reading).ok());
  }
};

TEST(AgentReplicaTest, FirstOfferSendsInit) {
  AgentConfig config;
  config.delta = 1.0;
  Link link(std::make_unique<ValueCachePredictor>(), config);
  link.Step(MakeReading(0, 5.0));
  EXPECT_TRUE(link.replica->initialized());
  EXPECT_EQ(link.channel.stats().by_type[static_cast<size_t>(MessageType::kInit)],
            1);
  EXPECT_DOUBLE_EQ(link.replica->Value()[0], 5.0);
  EXPECT_DOUBLE_EQ(link.replica->bound(), 1.0);
}

TEST(AgentReplicaTest, SuppressesInsideBound) {
  AgentConfig config;
  config.delta = 1.0;
  Link link(std::make_unique<ValueCachePredictor>(), config);
  link.Step(MakeReading(0, 5.0));
  // All these stay within +/-1 of the cached 5.0: no further messages.
  for (int64_t i = 1; i <= 10; ++i) {
    link.Step(MakeReading(i, 5.0 + 0.09 * static_cast<double>(i % 10)));
  }
  EXPECT_EQ(link.channel.stats().messages_sent, 1);  // Just the INIT.
  EXPECT_EQ(link.agent->stats().suppressed, 10);
}

TEST(AgentReplicaTest, CorrectsOnViolation) {
  AgentConfig config;
  config.delta = 1.0;
  Link link(std::make_unique<ValueCachePredictor>(), config);
  link.Step(MakeReading(0, 5.0));
  link.Step(MakeReading(1, 7.0));  // |7-5| > 1: correction.
  EXPECT_EQ(link.agent->stats().corrections, 1);
  EXPECT_DOUBLE_EQ(link.replica->Value()[0], 7.0);
  EXPECT_EQ(link.replica->last_heard_seq(), 1);
}

TEST(AgentReplicaTest, ServerMirrorsClientForKalman) {
  AgentConfig config;
  config.delta = 0.5;
  KalmanPredictor::Config kf_config;
  kf_config.model = MakeRandomWalkModel(0.1, 0.5);
  Link link(std::make_unique<KalmanPredictor>(kf_config), config);
  Rng rng(1);
  double truth = 0.0;
  for (int64_t i = 0; i < 500; ++i) {
    truth += rng.Gaussian(0.0, 0.3);
    link.Step(MakeReading(i, truth + rng.Gaussian(0.0, 0.2)));
    if (link.replica->initialized()) {
      // Server view == client's shadow view at every tick.
      ASSERT_NEAR(link.replica->Value()[0], link.agent->PredictedValue()[0],
                  1e-15);
      // Contract: server within delta of the client's filtered estimate.
      ASSERT_LE(std::fabs(link.replica->Value()[0] -
                          link.agent->ContractTarget()[0]),
                0.5 + 1e-9);
    }
  }
  EXPECT_GT(link.agent->stats().suppressed, 0);
  EXPECT_GT(link.agent->stats().corrections, 0);
}

TEST(AgentReplicaTest, HeartbeatsEmittedWhenSilent) {
  AgentConfig config;
  config.delta = 100.0;  // Never violated: pure suppression.
  config.heartbeat_every = 5;
  Link link(std::make_unique<ValueCachePredictor>(), config);
  for (int64_t i = 0; i <= 20; ++i) link.Step(MakeReading(i, 1.0));
  EXPECT_EQ(link.agent->stats().heartbeats, 4);  // Ticks 5,10,15,20.
  EXPECT_EQ(
      link.channel.stats().by_type[static_cast<size_t>(MessageType::kHeartbeat)],
      4);
  // Heartbeats refresh liveness at the replica.
  EXPECT_EQ(link.replica->last_heard_seq(), 20);
}

TEST(AgentReplicaTest, PeriodicFullSyncUpgradesCorrections) {
  AgentConfig config;
  config.delta = 0.1;
  config.full_sync_every = 3;  // Every 3rd data message is a FULL_SYNC.
  KalmanPredictor::Config kf_config;
  kf_config.model = MakeRandomWalkModel(0.1, 0.5);
  Link link(std::make_unique<KalmanPredictor>(kf_config), config);
  Rng rng(2);
  double v = 0.0;
  for (int64_t i = 0; i < 300; ++i) {
    v += rng.Gaussian(0.0, 1.0);  // Volatile: frequent corrections.
    link.Step(MakeReading(i, v));
  }
  EXPECT_GT(link.agent->stats().full_syncs, 0);
  EXPECT_GT(link.agent->stats().corrections, 0);
  EXPECT_EQ(
      link.channel.stats().by_type[static_cast<size_t>(MessageType::kFullSync)],
      link.agent->stats().full_syncs);
}

TEST(AgentReplicaTest, AlwaysFullStateMode) {
  AgentConfig config;
  config.delta = 0.1;
  config.always_full_state = true;
  KalmanPredictor::Config kf_config;
  kf_config.model = MakeRandomWalkModel(0.1, 0.5);
  Link link(std::make_unique<KalmanPredictor>(kf_config), config);
  Rng rng(3);
  double v = 0.0;
  for (int64_t i = 0; i < 100; ++i) {
    v += rng.Gaussian(0.0, 1.0);
    link.Step(MakeReading(i, v));
  }
  EXPECT_EQ(link.agent->stats().corrections, 0);
  EXPECT_GT(link.agent->stats().full_syncs, 0);
}

TEST(AgentReplicaTest, FullStateModeWorksForEveryPolicy) {
  AgentConfig config;
  config.delta = 0.1;
  config.always_full_state = true;
  Channel channel;
  ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
  channel.SetReceiver([&replica](const Message& m) {
    (void)replica.OnMessage(m);
  });
  SourceAgent agent(0, std::make_unique<ValueCachePredictor>(), config,
                    &channel);
  ASSERT_TRUE(agent.Offer(MakeReading(0, 0.0)).ok());  // INIT.
  ASSERT_TRUE(agent.Offer(MakeReading(1, 10.0)).ok());
  EXPECT_EQ(agent.stats().full_syncs, 1);
  EXPECT_DOUBLE_EQ(replica.Value()[0], 10.0);
}

TEST(AgentReplicaTest, DeltaChangePropagatesWithNextMessage) {
  AgentConfig config;
  config.delta = 1.0;
  Link link(std::make_unique<ValueCachePredictor>(), config);
  link.Step(MakeReading(0, 0.0));
  link.agent->set_delta(3.0);
  link.Step(MakeReading(1, 2.0));  // Within new delta: suppressed.
  EXPECT_DOUBLE_EQ(link.replica->bound(), 1.0);  // Server hasn't heard yet.
  link.Step(MakeReading(2, 10.0));  // Violation: correction carries delta.
  EXPECT_DOUBLE_EQ(link.replica->bound(), 3.0);
}

TEST(AgentReplicaTest, NonFiniteReadingsRejected) {
  AgentConfig config;
  Channel channel;
  channel.SetReceiver([](const Message&) {});
  SourceAgent agent(0, std::make_unique<ValueCachePredictor>(), config,
                    &channel);
  ASSERT_TRUE(agent.Offer(MakeReading(0, 1.0)).ok());
  Reading nan = MakeReading(1, std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(agent.Offer(nan).ok());
  Reading inf = MakeReading(2, std::numeric_limits<double>::infinity());
  EXPECT_FALSE(agent.Offer(inf).ok());
  // The predictor is untouched: a good reading still works.
  EXPECT_TRUE(agent.Offer(MakeReading(3, 1.1)).ok());
}

TEST(AgentReplicaTest, DimensionMismatchRejected) {
  AgentConfig config;
  Channel channel;
  channel.SetReceiver([](const Message&) {});
  SourceAgent agent(0, std::make_unique<ValueCachePredictor>(1), config,
                    &channel);
  Reading planar;
  planar.value = Vector{1.0, 2.0};
  EXPECT_FALSE(agent.Offer(planar).ok());
}

TEST(ReplicaTest, RejectsWrongSource) {
  ServerReplica replica(7, std::make_unique<ValueCachePredictor>());
  Message msg;
  msg.source_id = 8;
  EXPECT_FALSE(replica.OnMessage(msg).ok());
}

TEST(ReplicaTest, RejectsCorrectionBeforeInit) {
  ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
  Message msg;
  msg.source_id = 0;
  msg.type = MessageType::kCorrection;
  msg.payload = {1.0, 2.0};
  EXPECT_FALSE(replica.OnMessage(msg).ok());
}

TEST(ReplicaTest, RejectsMalformedInit) {
  ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
  Message msg;
  msg.source_id = 0;
  msg.type = MessageType::kInit;
  msg.payload = {1.0};  // Delta but no value.
  EXPECT_FALSE(replica.OnMessage(msg).ok());
}

TEST(ReplicaTest, TickBeforeInitIsNoop) {
  ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
  replica.Tick();
  EXPECT_EQ(replica.ticks(), 0);
  EXPECT_FALSE(replica.initialized());
}

}  // namespace
}  // namespace kc
