#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/channel.h"
#include "suppression/agent.h"
#include "suppression/policies.h"
#include "suppression/replica.h"

namespace kc {
namespace {

Reading MakeReading(int64_t seq, double value) {
  Reading r;
  r.seq = seq;
  r.time = static_cast<double>(seq);
  r.value = Vector{value};
  return r;
}

/// A wired agent+replica pair over a lossless channel.
struct Link {
  Channel channel;
  std::unique_ptr<ServerReplica> replica;
  std::unique_ptr<SourceAgent> agent;

  Link(std::unique_ptr<Predictor> proto, AgentConfig config) {
    replica = std::make_unique<ServerReplica>(0, proto->Clone());
    ServerReplica* r = replica.get();
    channel.SetReceiver([r](const Message& msg) {
      ASSERT_TRUE(r->OnMessage(msg).ok());
    });
    agent = std::make_unique<SourceAgent>(0, std::move(proto), config, &channel);
  }

  void Step(const Reading& reading) {
    replica->Tick();
    ASSERT_TRUE(agent->Offer(reading).ok());
  }
};

TEST(AgentReplicaTest, FirstOfferSendsInit) {
  AgentConfig config;
  config.delta = 1.0;
  Link link(std::make_unique<ValueCachePredictor>(), config);
  link.Step(MakeReading(0, 5.0));
  EXPECT_TRUE(link.replica->initialized());
  EXPECT_EQ(link.channel.stats().by_type[static_cast<size_t>(MessageType::kInit)],
            1);
  EXPECT_DOUBLE_EQ(link.replica->Value()[0], 5.0);
  EXPECT_DOUBLE_EQ(link.replica->bound(), 1.0);
}

TEST(AgentReplicaTest, SuppressesInsideBound) {
  AgentConfig config;
  config.delta = 1.0;
  Link link(std::make_unique<ValueCachePredictor>(), config);
  link.Step(MakeReading(0, 5.0));
  // All these stay within +/-1 of the cached 5.0: no further messages.
  for (int64_t i = 1; i <= 10; ++i) {
    link.Step(MakeReading(i, 5.0 + 0.09 * static_cast<double>(i % 10)));
  }
  EXPECT_EQ(link.channel.stats().messages_sent, 1);  // Just the INIT.
  EXPECT_EQ(link.agent->stats().suppressed, 10);
}

TEST(AgentReplicaTest, CorrectsOnViolation) {
  AgentConfig config;
  config.delta = 1.0;
  Link link(std::make_unique<ValueCachePredictor>(), config);
  link.Step(MakeReading(0, 5.0));
  link.Step(MakeReading(1, 7.0));  // |7-5| > 1: correction.
  EXPECT_EQ(link.agent->stats().corrections, 1);
  EXPECT_DOUBLE_EQ(link.replica->Value()[0], 7.0);
  EXPECT_EQ(link.replica->last_heard_seq(), 1);
}

TEST(AgentReplicaTest, ServerMirrorsClientForKalman) {
  AgentConfig config;
  config.delta = 0.5;
  KalmanPredictor::Config kf_config;
  kf_config.model = MakeRandomWalkModel(0.1, 0.5);
  Link link(std::make_unique<KalmanPredictor>(kf_config), config);
  Rng rng(1);
  double truth = 0.0;
  for (int64_t i = 0; i < 500; ++i) {
    truth += rng.Gaussian(0.0, 0.3);
    link.Step(MakeReading(i, truth + rng.Gaussian(0.0, 0.2)));
    if (link.replica->initialized()) {
      // Server view == client's shadow view at every tick.
      ASSERT_NEAR(link.replica->Value()[0], link.agent->PredictedValue()[0],
                  1e-15);
      // Contract: server within delta of the client's filtered estimate.
      ASSERT_LE(std::fabs(link.replica->Value()[0] -
                          link.agent->ContractTarget()[0]),
                0.5 + 1e-9);
    }
  }
  EXPECT_GT(link.agent->stats().suppressed, 0);
  EXPECT_GT(link.agent->stats().corrections, 0);
}

TEST(AgentReplicaTest, HeartbeatsEmittedWhenSilent) {
  AgentConfig config;
  config.delta = 100.0;  // Never violated: pure suppression.
  config.heartbeat_every = 5;
  Link link(std::make_unique<ValueCachePredictor>(), config);
  for (int64_t i = 0; i <= 20; ++i) link.Step(MakeReading(i, 1.0));
  EXPECT_EQ(link.agent->stats().heartbeats, 4);  // Ticks 5,10,15,20.
  EXPECT_EQ(
      link.channel.stats().by_type[static_cast<size_t>(MessageType::kHeartbeat)],
      4);
  // Heartbeats refresh liveness at the replica.
  EXPECT_EQ(link.replica->last_heard_seq(), 20);
}

TEST(AgentReplicaTest, PeriodicFullSyncUpgradesCorrections) {
  AgentConfig config;
  config.delta = 0.1;
  config.full_sync_every = 3;  // Every 3rd data message is a FULL_SYNC.
  KalmanPredictor::Config kf_config;
  kf_config.model = MakeRandomWalkModel(0.1, 0.5);
  Link link(std::make_unique<KalmanPredictor>(kf_config), config);
  Rng rng(2);
  double v = 0.0;
  for (int64_t i = 0; i < 300; ++i) {
    v += rng.Gaussian(0.0, 1.0);  // Volatile: frequent corrections.
    link.Step(MakeReading(i, v));
  }
  EXPECT_GT(link.agent->stats().full_syncs, 0);
  EXPECT_GT(link.agent->stats().corrections, 0);
  EXPECT_EQ(
      link.channel.stats().by_type[static_cast<size_t>(MessageType::kFullSync)],
      link.agent->stats().full_syncs);
}

TEST(AgentReplicaTest, AlwaysFullStateMode) {
  AgentConfig config;
  config.delta = 0.1;
  config.always_full_state = true;
  KalmanPredictor::Config kf_config;
  kf_config.model = MakeRandomWalkModel(0.1, 0.5);
  Link link(std::make_unique<KalmanPredictor>(kf_config), config);
  Rng rng(3);
  double v = 0.0;
  for (int64_t i = 0; i < 100; ++i) {
    v += rng.Gaussian(0.0, 1.0);
    link.Step(MakeReading(i, v));
  }
  EXPECT_EQ(link.agent->stats().corrections, 0);
  EXPECT_GT(link.agent->stats().full_syncs, 0);
}

TEST(AgentReplicaTest, FullStateModeWorksForEveryPolicy) {
  AgentConfig config;
  config.delta = 0.1;
  config.always_full_state = true;
  Channel channel;
  ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
  channel.SetReceiver([&replica](const Message& m) {
    (void)replica.OnMessage(m);
  });
  SourceAgent agent(0, std::make_unique<ValueCachePredictor>(), config,
                    &channel);
  ASSERT_TRUE(agent.Offer(MakeReading(0, 0.0)).ok());  // INIT.
  ASSERT_TRUE(agent.Offer(MakeReading(1, 10.0)).ok());
  EXPECT_EQ(agent.stats().full_syncs, 1);
  EXPECT_DOUBLE_EQ(replica.Value()[0], 10.0);
}

TEST(AgentReplicaTest, DeltaChangePropagatesWithNextMessage) {
  AgentConfig config;
  config.delta = 1.0;
  Link link(std::make_unique<ValueCachePredictor>(), config);
  link.Step(MakeReading(0, 0.0));
  link.agent->set_delta(3.0);
  link.Step(MakeReading(1, 2.0));  // Within new delta: suppressed.
  EXPECT_DOUBLE_EQ(link.replica->bound(), 1.0);  // Server hasn't heard yet.
  link.Step(MakeReading(2, 10.0));  // Violation: correction carries delta.
  EXPECT_DOUBLE_EQ(link.replica->bound(), 3.0);
}

TEST(AgentReplicaTest, NonFiniteReadingsRejected) {
  AgentConfig config;
  Channel channel;
  channel.SetReceiver([](const Message&) {});
  SourceAgent agent(0, std::make_unique<ValueCachePredictor>(), config,
                    &channel);
  ASSERT_TRUE(agent.Offer(MakeReading(0, 1.0)).ok());
  Reading nan = MakeReading(1, std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(agent.Offer(nan).ok());
  Reading inf = MakeReading(2, std::numeric_limits<double>::infinity());
  EXPECT_FALSE(agent.Offer(inf).ok());
  // The predictor is untouched: a good reading still works.
  EXPECT_TRUE(agent.Offer(MakeReading(3, 1.1)).ok());
}

TEST(AgentReplicaTest, DimensionMismatchRejected) {
  AgentConfig config;
  Channel channel;
  channel.SetReceiver([](const Message&) {});
  SourceAgent agent(0, std::make_unique<ValueCachePredictor>(1), config,
                    &channel);
  Reading planar;
  planar.value = Vector{1.0, 2.0};
  EXPECT_FALSE(agent.Offer(planar).ok());
}

TEST(ReplicaTest, RejectsWrongSource) {
  ServerReplica replica(7, std::make_unique<ValueCachePredictor>());
  Message msg;
  msg.source_id = 8;
  EXPECT_FALSE(replica.OnMessage(msg).ok());
}

TEST(ReplicaTest, RejectsCorrectionBeforeInit) {
  ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
  Message msg;
  msg.source_id = 0;
  msg.type = MessageType::kCorrection;
  msg.payload = {1.0, 2.0};
  EXPECT_FALSE(replica.OnMessage(msg).ok());
}

TEST(ReplicaTest, RejectsMalformedInit) {
  ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
  Message msg;
  msg.source_id = 0;
  msg.type = MessageType::kInit;
  msg.payload = {1.0};  // Delta but no value.
  EXPECT_FALSE(replica.OnMessage(msg).ok());
}

TEST(ReplicaTest, TickBeforeInitIsNoop) {
  ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
  replica.Tick();
  EXPECT_EQ(replica.ticks(), 0);
  EXPECT_FALSE(replica.initialized());
}

KalmanPredictor::Config MeasurementSyncKalman() {
  KalmanPredictor::Config config;
  config.model = MakeRandomWalkModel(0.1, 0.5);
  config.sync_mode = KalmanPredictor::SyncMode::kMeasurement;
  return config;
}

TEST(ReplicaTest, ExactDuplicateCorrectionIsIgnoredNotReapplied) {
  // Regression: the sequencing guard rejected only msg.seq <
  // last_heard_seq_, so an exact duplicate (seq ==) slipped through and
  // re-applied the CORRECTION. For a measurement-sync Kalman replica that
  // second Update() moves the state and shrinks the covariance — silent
  // divergence from the source.
  ServerReplica replica(0,
                        std::make_unique<KalmanPredictor>(MeasurementSyncKalman()));
  Message init;
  init.source_id = 0;
  init.type = MessageType::kInit;
  init.seq = 0;
  init.time = 0.0;
  init.payload = {0.5, 1.0};  // delta, value.
  ASSERT_TRUE(replica.OnMessage(init).ok());

  replica.Tick();
  Message corr;
  corr.source_id = 0;
  corr.type = MessageType::kCorrection;
  corr.seq = 1;
  corr.time = 1.0;
  corr.wire_seq = 1;
  corr.payload = {0.5, 3.0};  // delta, z.
  ASSERT_TRUE(replica.OnMessage(corr).ok());
  double value_after_first = replica.Value()[0];

  ASSERT_TRUE(replica.OnMessage(corr).ok());  // Exact duplicate.
  EXPECT_EQ(replica.messages_ignored(), 1);
  EXPECT_EQ(replica.messages_applied(), 2);  // INIT + one CORRECTION.
  EXPECT_DOUBLE_EQ(replica.Value()[0], value_after_first)
      << "duplicate must not move the filter";
}

TEST(AgentReplicaTest, DuplicatedCorrectionsKeepLockstepOverChannel) {
  // End-to-end duplicate regression: with every uplink message duplicated
  // by the fault model, the replica must ignore every copy and track the
  // agent's shadow exactly.
  Channel::Config channel_config;
  channel_config.faults.duplicate_prob = 1.0;
  channel_config.seed = 3;
  Channel channel(channel_config);
  ServerReplica replica(0,
                        std::make_unique<KalmanPredictor>(MeasurementSyncKalman()));
  channel.SetReceiver(
      [&replica](const Message& m) { ASSERT_TRUE(replica.OnMessage(m).ok()); });
  AgentConfig agent_config;
  agent_config.delta = 0.5;
  SourceAgent agent(0, std::make_unique<KalmanPredictor>(MeasurementSyncKalman()),
                    agent_config, &channel);
  Rng rng(4);
  double truth = 0.0;
  for (int64_t i = 0; i < 300; ++i) {
    truth += rng.Gaussian(0.0, 0.5);
    replica.Tick();
    ASSERT_TRUE(agent.Offer(MakeReading(i, truth)).ok());
    if (replica.initialized()) {
      ASSERT_NEAR(replica.Value()[0], agent.PredictedValue()[0], 1e-12)
          << "tick " << i;
    }
  }
  EXPECT_GT(channel.stats().messages_duplicated, 0);
  // Every duplicate is ignored except the INIT's copy: a repeated INIT
  // re-anchors the replica to the identical state instead (idempotent).
  EXPECT_EQ(replica.messages_ignored(),
            channel.stats().messages_duplicated - 1);
}

TEST(AgentReplicaTest, LossLatencyDuplicationMatrixKeepsAccountingSound) {
  // Sweep the loss x latency x duplication cube; whatever the fault mix,
  // the channel's ledger must balance and the replica must never move
  // backwards or double-apply.
  for (double loss : {0.0, 0.2}) {
    for (int64_t latency : {int64_t{0}, int64_t{2}}) {
      for (double dup : {0.0, 0.5}) {
        Channel::Config config;
        config.loss_prob = loss;
        config.latency_ticks = latency;
        config.faults.duplicate_prob = dup;
        config.seed = 31;
        Channel channel(config);
        ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
        int64_t last_applied_seq = -1;
        channel.SetReceiver([&](const Message& m) {
          Status s = replica.OnMessage(m);
          // Loss can kill the INIT; later messages are then rejected.
          if (s.ok() && replica.last_heard_seq() != last_applied_seq) {
            EXPECT_GT(replica.last_heard_seq(), last_applied_seq);
            last_applied_seq = replica.last_heard_seq();
          }
        });
        AgentConfig agent_config;
        agent_config.delta = 0.5;
        SourceAgent agent(0, std::make_unique<ValueCachePredictor>(),
                          agent_config, &channel);
        Rng rng(32);
        double truth = 0.0;
        for (int64_t i = 0; i < 500; ++i) {
          truth += rng.Gaussian(0.0, 0.5);
          replica.Tick();
          channel.AdvanceTick();
          ASSERT_TRUE(agent.Offer(MakeReading(i, truth)).ok());
        }
        for (int i = 0; i < 3; ++i) channel.AdvanceTick();
        const NetworkStats& s = channel.stats();
        std::string label = "loss=" + std::to_string(loss) +
                            " latency=" + std::to_string(latency) +
                            " dup=" + std::to_string(dup);
        EXPECT_EQ(s.messages_delivered,
                  s.messages_sent - s.messages_dropped + s.messages_duplicated)
            << label;
        if (dup > 0.0) {
          EXPECT_GT(replica.messages_ignored(), 0) << label;
        }
        if (loss == 0.0) {
          // Without loss every data message eventually applies; the
          // replica ends in lockstep with the agent's shadow.
          EXPECT_NEAR(replica.Value()[0], agent.PredictedValue()[0], 1e-12)
              << label;
        }
      }
    }
  }
}

TEST(ReplicaRecoveryTest, SilenceEscalationRequestsResyncWithBackoff) {
  ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
  ReplicaRecoveryConfig recovery;
  recovery.enabled = true;
  recovery.suspect_after_silent_ticks = 5;
  recovery.backoff_initial_ticks = 4;
  recovery.backoff_max_ticks = 16;
  replica.SetRecovery(recovery);
  std::vector<int64_t> request_ticks;
  int64_t now = 0;
  replica.SetControlSender(
      [&](const Message& msg) {
        EXPECT_EQ(msg.type, MessageType::kResyncRequest);
        request_ticks.push_back(now);
      });
  Message init;
  init.source_id = 0;
  init.type = MessageType::kInit;
  init.seq = 0;
  init.payload = {1.0, 5.0};
  ASSERT_TRUE(replica.OnMessage(init).ok());
  for (now = 1; now <= 40; ++now) replica.Tick();
  // Silence threshold 5 => first request once silence exceeds it, then
  // backoff 4, 8, 16, 16 ticks between retries.
  ASSERT_GE(request_ticks.size(), 4u);
  EXPECT_TRUE(replica.desynced());
  EXPECT_EQ(request_ticks[1] - request_ticks[0], 4);
  EXPECT_EQ(request_ticks[2] - request_ticks[1], 8);
  EXPECT_EQ(request_ticks[3] - request_ticks[2], 16);
  EXPECT_EQ(replica.resyncs_requested(),
            static_cast<int64_t>(request_ticks.size()));
  // Quarantine honesty: the reported bound is widened while desynced.
  EXPECT_GT(replica.bound(), replica.declared_bound());
}

TEST(ReplicaRecoveryTest, HeartbeatsPreventSilenceEscalation) {
  Channel channel;
  ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
  ReplicaRecoveryConfig recovery;
  recovery.enabled = true;
  recovery.suspect_after_silent_ticks = 5;
  replica.SetRecovery(recovery);
  channel.SetReceiver(
      [&replica](const Message& m) { ASSERT_TRUE(replica.OnMessage(m).ok()); });
  AgentConfig config;
  config.delta = 100.0;  // Pure suppression.
  config.heartbeat_every = 3;
  SourceAgent agent(0, std::make_unique<ValueCachePredictor>(), config,
                    &channel);
  for (int64_t i = 0; i < 50; ++i) {
    replica.Tick();
    ASSERT_TRUE(agent.Offer(MakeReading(i, 1.0)).ok());
  }
  EXPECT_FALSE(replica.desynced());
  EXPECT_EQ(replica.resyncs_requested(), 0);
  EXPECT_GT(agent.stats().heartbeats, 0);
}

TEST(ReplicaRecoveryTest, WireSeqGapMarksDesyncAndFullSyncClears) {
  ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
  ReplicaRecoveryConfig recovery;
  recovery.enabled = true;
  replica.SetRecovery(recovery);
  Message init;
  init.source_id = 0;
  init.type = MessageType::kInit;
  init.seq = 0;
  init.wire_seq = 0;
  init.payload = {1.0, 5.0};
  ASSERT_TRUE(replica.OnMessage(init).ok());

  Message corr;
  corr.source_id = 0;
  corr.type = MessageType::kCorrection;
  corr.seq = 3;
  corr.wire_seq = 3;  // Wire seqs 1 and 2 never arrived: a gap.
  corr.payload = {1.0, 9.0};
  ASSERT_TRUE(replica.OnMessage(corr).ok());
  EXPECT_EQ(replica.gaps(), 1);
  EXPECT_TRUE(replica.desynced());
  EXPECT_DOUBLE_EQ(replica.bound(), 8.0);  // delta 1.0 * default factor 8.

  Message sync;
  sync.source_id = 0;
  sync.type = MessageType::kFullSync;
  sync.seq = 4;
  sync.wire_seq = 4;
  sync.payload = {1.0, 9.5};
  ASSERT_TRUE(replica.OnMessage(sync).ok());
  EXPECT_FALSE(replica.desynced());
  EXPECT_DOUBLE_EQ(replica.bound(), 1.0);
}

TEST(ReplicaRecoveryTest, DisabledRecoveryNeverDesyncsOrRequests) {
  ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
  int sends = 0;
  replica.SetControlSender([&sends](const Message&) { ++sends; });
  Message init;
  init.source_id = 0;
  init.type = MessageType::kInit;
  init.payload = {1.0, 5.0};
  ASSERT_TRUE(replica.OnMessage(init).ok());
  Message corr;
  corr.source_id = 0;
  corr.type = MessageType::kCorrection;
  corr.seq = 5;
  corr.wire_seq = 40;  // Huge gap, but recovery is off.
  corr.payload = {1.0, 6.0};
  ASSERT_TRUE(replica.OnMessage(corr).ok());
  for (int i = 0; i < 100; ++i) replica.Tick();
  EXPECT_FALSE(replica.desynced());
  EXPECT_EQ(replica.gaps(), 0);
  EXPECT_EQ(sends, 0);
}

TEST(ReplicaRecoveryTest, ControlMessagesRejectedOnUplink) {
  ServerReplica replica(0, std::make_unique<ValueCachePredictor>());
  Message msg;
  msg.source_id = 0;
  msg.type = MessageType::kSetBound;
  msg.payload = {1.0};
  EXPECT_FALSE(replica.OnMessage(msg).ok());
  msg.type = MessageType::kResyncRequest;
  EXPECT_FALSE(replica.OnMessage(msg).ok());
}

}  // namespace
}  // namespace kc
