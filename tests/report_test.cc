#include "server/report.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "server/simulation.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace kc {
namespace {

TEST(ReportTest, EmptyServer) {
  StreamServer server;
  std::string report = DescribeServer(server);
  EXPECT_NE(report.find("0 sources"), std::string::npos);
  EXPECT_NE(report.find("0 queries"), std::string::npos);
}

TEST(ReportTest, MentionsEverySectionOnLiveServer) {
  Fleet fleet;
  fleet.server().EnableArchiving(1000);
  fleet.server().SetStalenessLimit(500);
  RandomWalkGenerator::Config walk;
  fleet.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                  MakeDefaultKalmanPredictor(0.1, 0.01), 0.5);
  fleet.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                  std::make_unique<ValueCachePredictor>(), 1.0);
  auto spec = ParseQuery("SELECT AVG(s0, s1) WITHIN 1");
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(fleet.server().AddQuery("avg", *spec).ok());
  ASSERT_TRUE(fleet.Run(100).ok());

  std::string report = DescribeServer(fleet.server());
  EXPECT_NE(report.find("2 sources"), std::string::npos);
  EXPECT_NE(report.find("s0 [kalman]"), std::string::npos);
  EXPECT_NE(report.find("s1 [value_cache]"), std::string::npos);
  EXPECT_NE(report.find("archive="), std::string::npos);
  EXPECT_NE(report.find("staleness limit: 500"), std::string::npos);
  EXPECT_NE(report.find("avg:"), std::string::npos);
  EXPECT_EQ(report.find("STALE"), std::string::npos);
  EXPECT_EQ(report.find("not initialized"), std::string::npos);
}

TEST(ReportTest, FlagsUninitializedAndStale) {
  StreamServer server;
  server.SetStalenessLimit(5);
  ASSERT_TRUE(server.RegisterSource(0, std::make_unique<ValueCachePredictor>())
                  .ok());
  ASSERT_TRUE(server.RegisterSource(1, std::make_unique<ValueCachePredictor>())
                  .ok());
  Message init;
  init.source_id = 1;
  init.type = MessageType::kInit;
  init.payload = {0.5, 3.0};
  ASSERT_TRUE(server.OnMessage(init).ok());
  for (int i = 0; i < 10; ++i) server.Tick();

  std::string report = DescribeServer(server);
  EXPECT_NE(report.find("not initialized"), std::string::npos);
  EXPECT_NE(report.find("STALE"), std::string::npos);
}

}  // namespace
}  // namespace kc
