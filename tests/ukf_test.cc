#include "kalman/ukf.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "kalman/kalman_filter.h"
#include "linalg/decomp.h"

namespace kc {
namespace {

NonlinearModel WrapLinear(const StateSpaceModel& linear) {
  NonlinearModel m;
  m.name = linear.name + "_wrapped";
  m.state_dim = linear.state_dim();
  m.obs_dim = linear.obs_dim();
  Matrix f = linear.f;
  Matrix h = linear.h;
  m.f = [f](const Vector& x) { return f * x; };
  m.f_jacobian = [f](const Vector&) { return f; };
  m.h = [h](const Vector& x) { return h * x; };
  m.h_jacobian = [h](const Vector&) { return h; };
  m.q = linear.q;
  m.r = linear.r;
  return m;
}

TEST(UkfTest, MatchesLinearKalmanOnLinearModel) {
  // The unscented transform is exact for linear functions, so the UKF must
  // reproduce the KF trajectory on a linear model.
  StateSpaceModel linear = MakeConstantVelocityModel(1.0, 0.1, 0.5);
  KalmanFilter kf(linear, Vector{0.0, 1.0}, Matrix::Identity(2));
  UnscentedKalmanFilter ukf(WrapLinear(linear), Vector{0.0, 1.0},
                            Matrix::Identity(2));
  Rng rng(1);
  for (int i = 0; i < 150; ++i) {
    double z = rng.Gaussian(static_cast<double>(i), 0.5);
    kf.Predict();
    ukf.Predict();
    ASSERT_TRUE(kf.Update(Vector{z}).ok());
    ASSERT_TRUE(ukf.Update(Vector{z}).ok());
    ASSERT_TRUE(AlmostEqual(kf.state(), ukf.state(), 1e-7)) << "i=" << i;
    ASSERT_TRUE(AlmostEqual(kf.covariance(), ukf.covariance(), 1e-7));
  }
}

TEST(UkfTest, TracksCoordinatedTurn) {
  double dt = 1.0, speed = 5.0, omega = 0.08;
  NonlinearModel model = MakeCoordinatedTurnModel(dt, 0.01, 0.01, 1e-5, 0.25);
  Vector x0(5);
  x0[2] = speed;
  UnscentedKalmanFilter ukf(model, x0, Matrix::ScalarDiagonal(5, 1.0));

  Rng rng(2);
  double theta = 0.0, px = 0.0, py = 0.0;
  RunningStats err;
  for (int i = 0; i < 500; ++i) {
    px += speed * std::cos(theta) * dt;
    py += speed * std::sin(theta) * dt;
    theta += omega * dt;
    ukf.Predict();
    ASSERT_TRUE(ukf.Update(Vector{px + rng.Gaussian(0.0, 0.5),
                                  py + rng.Gaussian(0.0, 0.5)})
                    .ok());
    if (i > 50) err.Add(std::hypot(ukf.state()[0] - px, ukf.state()[1] - py));
  }
  EXPECT_LT(err.mean(), 0.6);
  EXPECT_NEAR(ukf.state()[4], omega, 0.02);
}

TEST(UkfTest, HandlesStrongObservationNonlinearity) {
  // Range-only observation z = sqrt(x^2 + 1): the EKF's linearization at
  // x near 0 is poor; the UKF should remain a consistent estimator.
  NonlinearModel m;
  m.name = "range_only";
  m.state_dim = 1;
  m.obs_dim = 1;
  m.f = [](const Vector& x) { return x; };
  m.f_jacobian = [](const Vector&) { return Matrix::Identity(1); };
  m.h = [](const Vector& x) {
    return Vector{std::sqrt(x[0] * x[0] + 1.0)};
  };
  m.h_jacobian = [](const Vector& x) {
    return Matrix{{x[0] / std::sqrt(x[0] * x[0] + 1.0)}};
  };
  m.q = Matrix{{0.01}};
  m.r = Matrix{{0.01}};
  ASSERT_TRUE(m.Validate().ok());

  UnscentedKalmanFilter ukf(m, Vector{2.5}, Matrix{{1.0}});
  Rng rng(3);
  double truth = 3.0;
  for (int i = 0; i < 300; ++i) {
    double z = std::sqrt(truth * truth + 1.0) + rng.Gaussian(0.0, 0.1);
    ukf.Predict();
    ASSERT_TRUE(ukf.Update(Vector{z}).ok());
  }
  EXPECT_NEAR(std::fabs(ukf.state()[0]), truth, 0.3);
}

TEST(UkfTest, CovarianceStaysPsd) {
  NonlinearModel model = MakeCoordinatedTurnModel(1.0, 0.01, 0.05, 1e-4, 0.5);
  Vector x0(5);
  x0[2] = 3.0;
  UnscentedKalmanFilter ukf(model, x0, Matrix::ScalarDiagonal(5, 10.0));
  Rng rng(4);
  double theta = 0.0, px = 0.0, py = 0.0;
  for (int i = 0; i < 1000; ++i) {
    px += 3.0 * std::cos(theta);
    py += 3.0 * std::sin(theta);
    theta += rng.Gaussian(0.0, 0.02);
    ukf.Predict();
    ASSERT_TRUE(ukf.Update(Vector{px + rng.Gaussian(0.0, 0.7),
                                  py + rng.Gaussian(0.0, 0.7)})
                    .ok());
  }
  EXPECT_TRUE(IsPositiveSemiDefinite(ukf.covariance()));
}

TEST(UkfTest, RejectsWrongObservationDim) {
  NonlinearModel model = MakeCoordinatedTurnModel(1.0, 0.01, 0.05, 1e-4, 0.5);
  UnscentedKalmanFilter ukf(model, Vector(5), Matrix::ScalarDiagonal(5, 1.0));
  EXPECT_FALSE(ukf.Update(Vector{1.0}).ok());
}

TEST(UkfTest, ResetClearsDiagnostics) {
  NonlinearModel model = MakeCoordinatedTurnModel(1.0, 0.01, 0.05, 1e-4, 0.5);
  UnscentedKalmanFilter ukf(model, Vector(5), Matrix::ScalarDiagonal(5, 1.0));
  ukf.Predict();
  ASSERT_TRUE(ukf.Update(Vector{1.0, 1.0}).ok());
  EXPECT_EQ(ukf.update_count(), 1);
  ukf.Reset(Vector(5), Matrix::ScalarDiagonal(5, 1.0));
  EXPECT_EQ(ukf.update_count(), 0);
}

}  // namespace
}  // namespace kc
