// The HTTP telemetry endpoint, scraped over a real loopback socket: route
// behavior, the Prometheus exposition contract on /metrics (promtool-style
// line validation), the publish-snapshot model, and the end-to-end fleet
// wiring behind EnableHttpTelemetry.

#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/sharded_fleet.h"
#include "obs/metrics.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace kc {
namespace obs {
namespace {

struct HttpResponse {
  int status = 0;
  std::string headers;  ///< Raw header block, status line included.
  std::string body;
};

/// Sends one raw request over a fresh loopback connection and reads the
/// response to EOF (the server always answers Connection: close).
void DoRawRequest(int port, const std::string& request, HttpResponse* out) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0)
      << strerror(errno);
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    ASSERT_GT(n, 0) << strerror(errno);
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t split = raw.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos) << raw;
  out->headers = raw.substr(0, split);
  out->body = raw.substr(split + 4);
  ASSERT_EQ(out->headers.compare(0, 9, "HTTP/1.1 "), 0) << raw;
  out->status = std::stoi(out->headers.substr(9, 3));
}

HttpResponse RawRequest(int port, const std::string& request) {
  HttpResponse out;
  DoRawRequest(port, request, &out);
  return out;
}

HttpResponse Get(int port, const std::string& target,
                 const std::string& method = "GET") {
  return RawRequest(port, method + " " + target +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n");
}

/// Promtool-style exposition check: every line is a HELP/TYPE comment or
/// a `name[{labels}] value` sample with a legal metric name.
void ExpectValidPrometheus(const std::string& body) {
  static const std::regex sample(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+0-9.eE]+(Inf)?$)");
  static const std::regex comment(
      R"(^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$)");
  std::istringstream lines(body);
  std::string line;
  int samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    bool ok = std::regex_match(line, comment) ||
              (std::regex_match(line, sample) && ++samples);
    EXPECT_TRUE(ok) << "bad exposition line: " << line;
  }
  EXPECT_GT(samples, 0) << body;
}

TEST(HttpExporterTest, StartsOnAnEphemeralLoopbackPort) {
  TelemetryHttpServer server;
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // Idempotent.
}

TEST(HttpExporterTest, MetricsRouteServesPublishedRowsAsPrometheus) {
  MetricRegistry registry;
  registry.GetCounter("kc.a.messages")->Inc(7);
  registry.GetGauge("kc.b.level")->Set(2.5);
  registry.GetHistogram("kc.a.lat", Buckets::Linear(1.0, 1.0, 2))
      ->Record(1.5);
  TelemetryHttpServer server;
  ASSERT_TRUE(server.Start().ok());
  server.PublishMetrics(registry.Rows());

  HttpResponse res = Get(server.port(), "/metrics");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.headers.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  ExpectValidPrometheus(res.body);
  EXPECT_NE(res.body.find("kc_a_messages_total 7"), std::string::npos);
  EXPECT_NE(res.body.find("kc_b_level 2.5"), std::string::npos);
  EXPECT_NE(res.body.find("kc_a_lat_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(res.body.find("kc_a_lat_count 1"), std::string::npos);

  // ?prefix= scopes by the ORIGINAL (dotted) metric name.
  HttpResponse scoped = Get(server.port(), "/metrics?prefix=kc.a");
  EXPECT_EQ(scoped.status, 200);
  ExpectValidPrometheus(scoped.body);
  EXPECT_NE(scoped.body.find("kc_a_messages_total"), std::string::npos);
  EXPECT_EQ(scoped.body.find("kc_b_level"), std::string::npos);

  // Republishing replaces the snapshot wholesale.
  registry.GetCounter("kc.a.messages")->Inc(1);
  server.PublishMetrics(registry.Rows());
  EXPECT_NE(Get(server.port(), "/metrics").body.find("kc_a_messages_total 8"),
            std::string::npos);
  EXPECT_EQ(server.requests_served(), 3);
}

TEST(HttpExporterTest, HealthzReflectsThePublishedVerdict) {
  TelemetryHttpServer server;
  ASSERT_TRUE(server.Start().ok());
  HttpResponse res = Get(server.port(), "/healthz");
  EXPECT_EQ(res.status, 200);  // Healthy until told otherwise.
  EXPECT_EQ(res.body, "ok\n");

  server.PublishHealthz(false, "audit: exhausted=3\n");
  res = Get(server.port(), "/healthz");
  EXPECT_EQ(res.status, 503);
  EXPECT_EQ(res.body, "audit: exhausted=3\n");

  server.PublishHealthz(true, "all clear\n");
  res = Get(server.port(), "/healthz");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.body, "all clear\n");
}

TEST(HttpExporterTest, AuditAndTimeseriesRoutesServePublishedJson) {
  TelemetryHttpServer server;
  ASSERT_TRUE(server.Start().ok());
  // Empty documents before the first publish, never malformed JSON.
  EXPECT_EQ(Get(server.port(), "/audit").body, "{}");
  EXPECT_EQ(Get(server.port(), "/timeseries").body, "{}");

  server.PublishAudit("{\"totals\":{\"samples\":10}}");
  server.PublishTimeseries("{\"capacity\":64,\"series\":[]}");
  HttpResponse audit = Get(server.port(), "/audit");
  EXPECT_EQ(audit.status, 200);
  EXPECT_NE(audit.headers.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_EQ(audit.body, "{\"totals\":{\"samples\":10}}");
  EXPECT_EQ(Get(server.port(), "/timeseries").body,
            "{\"capacity\":64,\"series\":[]}");
}

TEST(HttpExporterTest, AuditPrefixScopesSourcesAndQueries) {
  TelemetryHttpServer server;
  ASSERT_TRUE(server.Start().ok());
  AuditDoc doc;
  doc.full =
      "{\"config\":{},\"totals\":{\"samples\":9},"
      "\"sources\":[{\"id\":0},{\"id\":1}],"
      "\"queries\":[{\"name\":\"avg\"}]}";
  doc.head = "{\"config\":{},\"totals\":{\"samples\":9}";
  doc.sources = {{"source.0", "{\"id\":0}"}, {"source.1", "{\"id\":1}"}};
  doc.queries = {{"query.avg", "{\"name\":\"avg\"}"}};
  server.PublishAuditDoc(doc);

  // Unscoped: the full document, byte for byte.
  EXPECT_EQ(Get(server.port(), "/audit").body, doc.full);
  // Scoped to one source: the head (totals stay fleet-wide) plus only
  // the matching source entry; the queries array empties.
  EXPECT_EQ(Get(server.port(), "/audit?prefix=source.1").body,
            "{\"config\":{},\"totals\":{\"samples\":9},"
            "\"sources\":[{\"id\":1}],\"queries\":[]}");
  // Scoped to the query family: all sources drop out.
  EXPECT_EQ(Get(server.port(), "/audit?prefix=query.").body,
            "{\"config\":{},\"totals\":{\"samples\":9},"
            "\"sources\":[],\"queries\":[{\"name\":\"avg\"}]}");
  // A prefix matching nothing still renders a valid, empty-detail doc.
  EXPECT_EQ(Get(server.port(), "/audit?prefix=source.9").body,
            "{\"config\":{},\"totals\":{\"samples\":9},"
            "\"sources\":[],\"queries\":[]}");
  // Plain PublishAudit drops back to whole-document-only behavior.
  server.PublishAudit("{\"totals\":{\"samples\":10}}");
  EXPECT_EQ(Get(server.port(), "/audit?prefix=source.").body,
            "{\"totals\":{\"samples\":10}}");
}

TEST(HttpExporterTest, TimeseriesPrefixScopesLiveStore) {
  TelemetryHttpServer server;
  ASSERT_TRUE(server.Start().ok());
  MetricRegistry registry;
  registry.GetCounter("kc.agent.sent")->Inc(3);
  registry.GetCounter("kc.server.ticks")->Inc(1);
  TimeSeriesStore store;
  store.Capture(registry, /*tick=*/1);
  registry.GetCounter("kc.agent.sent")->Inc(2);
  registry.GetCounter("kc.server.ticks")->Inc(1);
  store.Capture(registry, /*tick=*/2);
  server.SetTimeseriesSource(&store);

  // The live source renders per request — no Publish step.
  HttpResponse all = Get(server.port(), "/timeseries");
  EXPECT_EQ(all.status, 200);
  EXPECT_NE(all.body.find("kc.agent.sent"), std::string::npos);
  EXPECT_NE(all.body.find("kc.server.ticks"), std::string::npos);
  // ?prefix= narrows to one family, exactly as ExportJson would.
  HttpResponse scoped = Get(server.port(), "/timeseries?prefix=kc.agent.");
  EXPECT_EQ(scoped.status, 200);
  EXPECT_NE(scoped.body.find("kc.agent.sent"), std::string::npos);
  EXPECT_EQ(scoped.body.find("kc.server.ticks"), std::string::npos);
  EXPECT_EQ(scoped.body, store.ExportJson("kc.agent."));
}

TEST(HttpExporterTest, RejectsUnknownRoutesMethodsAndGarbage) {
  TelemetryHttpServer server;
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(Get(server.port(), "/nope").status, 404);
  EXPECT_EQ(Get(server.port(), "/metrics", "POST").status, 405);
  EXPECT_EQ(RawRequest(server.port(), "garbage\r\n\r\n").status, 400);
  EXPECT_EQ(server.requests_served(), 3);
}

TEST(HttpExporterTest, HeadReturnsHeadersWithoutABody) {
  TelemetryHttpServer server;
  ASSERT_TRUE(server.Start().ok());
  HttpResponse res = Get(server.port(), "/healthz", "HEAD");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.headers.find("Content-Length: 3"), std::string::npos);
  EXPECT_EQ(res.body, "");
}

TEST(HttpExporterTest, FixedPortAndBindFailure) {
  TelemetryHttpServer first;
  ASSERT_TRUE(first.Start().ok());
  // Binding the same port again must fail cleanly, without a thread.
  TelemetryHttpServer::Config config;
  config.port = first.port();
  TelemetryHttpServer second(config);
  EXPECT_FALSE(second.Start().ok());
  EXPECT_FALSE(second.running());
  // The first server is unaffected.
  EXPECT_EQ(Get(first.port(), "/healthz").status, 200);
}

// ---------------------------------------------------- fleet integration

KalmanPredictor::Config ScalarKalman() {
  KalmanPredictor::Config config;
  config.model = MakeRandomWalkModel(0.1, 0.25);
  return config;
}

TEST(HttpExporterTest, FleetEndToEndScrape) {
  // The full wiring: EnableHttpTelemetry republishes the merged metric
  // rows, the audit report, the health verdict, and the time-series JSON
  // after the tick barrier; a real scrape sees all four.
  ShardedFleet::Config config;
  config.seed = 321;
  config.threads = 2;
  config.num_shards = 4;
  ShardedFleet fleet(config);
  obs::AuditConfig audit;
  audit.sample_every = 1;
  fleet.EnableAudit(audit);
  fleet.EnableTimeseries(/*every_n_ticks=*/10);
  fleet.EnableTelemetryPlane(/*every_n_ticks=*/10);
  ASSERT_TRUE(fleet.EnableHttpTelemetry(/*port=*/0,
                                        /*publish_every_n_ticks=*/10)
                  .ok());
  ASSERT_NE(fleet.http(), nullptr);
  int port = fleet.http()->port();
  ASSERT_GT(port, 0);
  for (int i = 0; i < 6; ++i) {
    RandomWalkGenerator::Config walk;
    walk.start = 3.0 * i;
    walk.step_sigma = 0.25;
    fleet.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                    std::make_unique<KalmanPredictor>(ScalarKalman()),
                    /*delta=*/0.5);
  }
  ASSERT_TRUE(fleet.Run(50).ok());

  HttpResponse metrics = Get(port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  ExpectValidPrometheus(metrics.body);
  EXPECT_NE(metrics.body.find("kc_agent_decisions_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("kc_audit_samples_total"), std::string::npos);
  // With the telemetry plane on, the fleet self-merges its own snapshot
  // loopback: the scrape carries the remote namespace next to the local
  // rows — the same shape a split deployment's server exposes.
  EXPECT_NE(metrics.body.find("kc_remote_client_agent_decisions_total"),
            std::string::npos)
      << metrics.body.substr(0, 400);
  EXPECT_NE(metrics.body.find("kc_remote_snapshots_total"),
            std::string::npos);

  // Lossless run: the audited fleet is healthy with full containment.
  HttpResponse healthz = Get(port, "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("containment=100%"), std::string::npos)
      << healthz.body;

  HttpResponse audit_res = Get(port, "/audit");
  EXPECT_EQ(audit_res.status, 200);
  EXPECT_NE(audit_res.body.find("\"totals\":"), std::string::npos);
  EXPECT_NE(audit_res.body.find("\"violations\":0"), std::string::npos);

  HttpResponse ts = Get(port, "/timeseries");
  EXPECT_EQ(ts.status, 200);
  EXPECT_NE(ts.body.find("kc.server.ticks.delta"), std::string::npos);

  // A scoped scrape of just the audit family stays valid exposition.
  HttpResponse scoped = Get(port, "/metrics?prefix=kc.audit");
  ExpectValidPrometheus(scoped.body);
  EXPECT_EQ(scoped.body.find("kc_agent"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace kc
