#include "suppression/policies.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace kc {
namespace {

Reading MakeReading(int64_t seq, double time, double value) {
  Reading r;
  r.seq = seq;
  r.time = time;
  r.value = Vector{value};
  return r;
}

TEST(ValueCacheTest, HoldsLastCorrection) {
  ValueCachePredictor p;
  p.Init(MakeReading(0, 0.0, 5.0));
  EXPECT_DOUBLE_EQ(p.Predict()[0], 5.0);
  p.Tick();
  EXPECT_DOUBLE_EQ(p.Predict()[0], 5.0);  // Constant between corrections.
  ASSERT_TRUE(p.ApplyCorrection(1, 1.0, {7.5}).ok());
  EXPECT_DOUBLE_EQ(p.Predict()[0], 7.5);
}

TEST(ValueCacheTest, TargetIsLastMeasurement) {
  ValueCachePredictor p;
  p.Init(MakeReading(0, 0.0, 5.0));
  p.ObserveLocal(MakeReading(1, 1.0, 6.0));
  EXPECT_DOUBLE_EQ(p.Target()[0], 6.0);
}

TEST(ValueCacheTest, RejectsWrongPayloadSize) {
  ValueCachePredictor p;
  p.Init(MakeReading(0, 0.0, 5.0));
  EXPECT_FALSE(p.ApplyCorrection(1, 1.0, {1.0, 2.0}).ok());
}

TEST(LinearPredictorTest, ExtrapolatesThroughTwoCorrections) {
  LinearPredictor p;
  p.Init(MakeReading(0, 0.0, 10.0));
  // Slope is zero until a second point arrives.
  p.Tick();
  EXPECT_DOUBLE_EQ(p.Predict()[0], 10.0);
  // Correction at t=2 with value 14 -> slope 2.
  p.Tick();
  ASSERT_TRUE(p.ApplyCorrection(2, 2.0, {14.0}).ok());
  EXPECT_DOUBLE_EQ(p.Predict()[0], 14.0);
  p.Tick();
  EXPECT_DOUBLE_EQ(p.Predict()[0], 16.0);
  p.Tick();
  EXPECT_DOUBLE_EQ(p.Predict()[0], 18.0);
}

TEST(LinearPredictorTest, SlopeRecomputedOnEachCorrection) {
  LinearPredictor p;
  p.Init(MakeReading(0, 0.0, 0.0));
  p.Tick();
  ASSERT_TRUE(p.ApplyCorrection(1, 1.0, {2.0}).ok());  // Slope 2.
  p.Tick();
  ASSERT_TRUE(p.ApplyCorrection(2, 2.0, {1.0}).ok());  // Slope (1-2)/1 = -1.
  p.Tick();
  EXPECT_DOUBLE_EQ(p.Predict()[0], 0.0);
}

TEST(LinearPredictorTest, ZeroSpanYieldsZeroSlope) {
  LinearPredictor p;
  p.Init(MakeReading(0, 5.0, 1.0));
  ASSERT_TRUE(p.ApplyCorrection(0, 5.0, {3.0}).ok());  // Same timestamp.
  p.Tick();
  EXPECT_DOUBLE_EQ(p.Predict()[0], 3.0);
}

TEST(EwmaTest, PrivateLevelSmoothsMeasurements) {
  EwmaPredictor p(1, 0.5);
  p.Init(MakeReading(0, 0.0, 10.0));
  p.ObserveLocal(MakeReading(1, 1.0, 20.0));
  EXPECT_DOUBLE_EQ(p.Target()[0], 15.0);
  p.ObserveLocal(MakeReading(2, 2.0, 15.0));
  EXPECT_DOUBLE_EQ(p.Target()[0], 15.0);
  // The server-visible prediction is still the Init value until corrected.
  EXPECT_DOUBLE_EQ(p.Predict()[0], 10.0);
}

TEST(EwmaTest, CorrectionShipsPrivateLevel) {
  EwmaPredictor p(1, 0.5);
  p.Init(MakeReading(0, 0.0, 10.0));
  p.ObserveLocal(MakeReading(1, 1.0, 20.0));
  auto payload = p.EncodeCorrection(MakeReading(1, 1.0, 20.0));
  ASSERT_EQ(payload.size(), 1u);
  EXPECT_DOUBLE_EQ(payload[0], 15.0);  // The level, not the raw 20.
  ASSERT_TRUE(p.ApplyCorrection(1, 1.0, payload).ok());
  EXPECT_DOUBLE_EQ(p.Predict()[0], 15.0);
  // Contract: target equals prediction right after a correction.
  EXPECT_DOUBLE_EQ(p.Target()[0], p.Predict()[0]);
}

KalmanPredictor::Config ScalarKalmanConfig(
    KalmanPredictor::SyncMode mode = KalmanPredictor::SyncMode::kState) {
  KalmanPredictor::Config config;
  config.model = MakeRandomWalkModel(0.1, 0.5);
  config.sync_mode = mode;
  return config;
}

TEST(KalmanPredictorTest, InitLiftsObservationIntoState) {
  KalmanPredictor p(ScalarKalmanConfig());
  p.Init(MakeReading(0, 0.0, 3.5));
  EXPECT_DOUBLE_EQ(p.Predict()[0], 3.5);
  EXPECT_DOUBLE_EQ(p.Target()[0], 3.5);
}

TEST(KalmanPredictorTest, StateSyncContractExactAfterCorrection) {
  KalmanPredictor p(ScalarKalmanConfig(KalmanPredictor::SyncMode::kState));
  p.Init(MakeReading(0, 0.0, 0.0));
  Rng rng(1);
  for (int64_t i = 1; i <= 100; ++i) {
    Reading z = MakeReading(i, static_cast<double>(i), rng.Gaussian(0.0, 3.0));
    p.Tick();
    p.ObserveLocal(z);
    auto payload = p.EncodeCorrection(z);
    ASSERT_EQ(payload.size(), 1u);  // State only, scalar model.
    ASSERT_TRUE(p.ApplyCorrection(i, z.time, payload).ok());
    // Shadow state == private state -> zero contract error.
    ASSERT_NEAR(p.Target()[0], p.Predict()[0], 1e-15);
  }
}

TEST(KalmanPredictorTest, StateAndCovPayloadIncludesCovariance) {
  KalmanPredictor p(ScalarKalmanConfig(KalmanPredictor::SyncMode::kStateAndCov));
  p.Init(MakeReading(0, 0.0, 0.0));
  p.Tick();
  p.ObserveLocal(MakeReading(1, 1.0, 1.0));
  auto payload = p.EncodeCorrection(MakeReading(1, 1.0, 1.0));
  EXPECT_EQ(payload.size(), 2u);  // x (1) + P (1x1).
  ASSERT_TRUE(p.ApplyCorrection(1, 1.0, payload).ok());
  EXPECT_NEAR(p.Target()[0], p.Predict()[0], 1e-15);
}

TEST(KalmanPredictorTest, MeasurementSyncUpdatesShadow) {
  KalmanPredictor p(ScalarKalmanConfig(KalmanPredictor::SyncMode::kMeasurement));
  p.Init(MakeReading(0, 0.0, 0.0));
  p.Tick();
  p.ObserveLocal(MakeReading(1, 1.0, 4.0));
  EXPECT_DOUBLE_EQ(p.Target()[0], 4.0);  // Raw measurement in this mode.
  auto payload = p.EncodeCorrection(MakeReading(1, 1.0, 4.0));
  ASSERT_EQ(payload.size(), 1u);
  double before = p.Predict()[0];
  ASSERT_TRUE(p.ApplyCorrection(1, 1.0, payload).ok());
  double after = p.Predict()[0];
  EXPECT_GT(after, before);  // Moved toward the observation...
  EXPECT_LT(after, 4.0);     // ...but not all the way (gain < 1).
}

TEST(KalmanPredictorTest, TwoReplicasStayInLockstep) {
  // The core protocol requirement: a client-side and a server-side clone,
  // fed the same Init/Tick/ApplyCorrection sequence, predict identically.
  KalmanPredictor client(ScalarKalmanConfig());
  auto server = client.Clone();
  Reading first = MakeReading(0, 0.0, 1.0);
  client.Init(first);
  server->Init(first);
  Rng rng(2);
  for (int64_t i = 1; i <= 500; ++i) {
    Reading z = MakeReading(i, static_cast<double>(i), rng.Gaussian(0.0, 2.0));
    client.Tick();
    server->Tick();
    client.ObserveLocal(z);
    if (i % 7 == 0) {  // Corrections on an arbitrary cadence.
      auto payload = client.EncodeCorrection(z);
      ASSERT_TRUE(client.ApplyCorrection(i, z.time, payload).ok());
      ASSERT_TRUE(server->ApplyCorrection(i, z.time, payload).ok());
    }
    ASSERT_NEAR(client.Predict()[0], server->Predict()[0], 1e-15) << "i=" << i;
  }
}

TEST(KalmanPredictorTest, PlanarModelPredictsBothDimensions) {
  KalmanPredictor::Config config;
  config.model = MakeConstantVelocity2DModel(1.0, 0.1, 0.5);
  KalmanPredictor p(config);
  Reading first;
  first.seq = 0;
  first.time = 0.0;
  first.value = Vector{3.0, -2.0};
  p.Init(first);
  EXPECT_EQ(p.dims(), 2u);
  EXPECT_DOUBLE_EQ(p.Predict()[0], 3.0);
  EXPECT_DOUBLE_EQ(p.Predict()[1], -2.0);
}

TEST(KalmanPredictorTest, FullStateRoundTrip) {
  // EncodeFullState serializes the *shared* (shadow) state: after a
  // correction it equals the private estimate; uncorrected it equals the
  // current prediction.
  KalmanPredictor a(ScalarKalmanConfig());
  a.Init(MakeReading(0, 0.0, 2.0));
  a.Tick();
  a.ObserveLocal(MakeReading(1, 1.0, 2.5));
  ASSERT_TRUE(
      a.ApplyCorrection(1, 1.0, a.EncodeCorrection(MakeReading(1, 1.0, 2.5)))
          .ok());
  auto state = a.EncodeFullState();
  EXPECT_EQ(state.size(), 2u);  // x + P for the scalar model.

  KalmanPredictor b(ScalarKalmanConfig());
  b.Init(MakeReading(0, 0.0, 0.0));
  ASSERT_TRUE(b.ApplyFullState(state).ok());
  EXPECT_NEAR(b.Predict()[0], a.Predict()[0], 1e-15);
  EXPECT_NEAR(b.Predict()[0], a.Target()[0], 1e-15);  // Post-correction.
}

TEST(KalmanPredictorTest, ApplyBeforeInitFails) {
  KalmanPredictor p(ScalarKalmanConfig());
  EXPECT_FALSE(p.ApplyCorrection(0, 0.0, {1.0}).ok());
  EXPECT_FALSE(p.ApplyFullState({1.0, 1.0}).ok());
}

TEST(KalmanPredictorTest, WrongPayloadSizesRejected) {
  KalmanPredictor p(ScalarKalmanConfig(KalmanPredictor::SyncMode::kState));
  p.Init(MakeReading(0, 0.0, 0.0));
  EXPECT_FALSE(p.ApplyCorrection(1, 1.0, {1.0, 2.0, 3.0}).ok());
}

TEST(KalmanPredictorTest, NamesReflectMode) {
  EXPECT_EQ(KalmanPredictor(ScalarKalmanConfig()).name(), "kalman");
  EXPECT_EQ(
      KalmanPredictor(ScalarKalmanConfig(KalmanPredictor::SyncMode::kStateAndCov))
          .name(),
      "kalman_cov");
  EXPECT_EQ(
      KalmanPredictor(ScalarKalmanConfig(KalmanPredictor::SyncMode::kMeasurement))
          .name(),
      "kalman_meas");
}

TEST(KalmanPredictorTest, DefaultFactoryProducesWorkingPredictor) {
  auto p = MakeDefaultKalmanPredictor(0.1, 1.0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name(), "kalman");
  p->Init(MakeReading(0, 0.0, 1.0));
  p->Tick();
  p->ObserveLocal(MakeReading(1, 1.0, 1.2));
  EXPECT_TRUE(std::isfinite(p->Predict()[0]));
}

TEST(KalmanPredictorTest, PrivateFilterSmoothsNoise) {
  // With sensor noise, the private filter's Target should track truth
  // better than the raw measurements do.
  KalmanPredictor::Config config;
  config.model = MakeRandomWalkModel(0.04, 4.0);  // sigma_w=0.2, sigma_v=2.
  KalmanPredictor p(config);
  p.Init(MakeReading(0, 0.0, 0.0));
  Rng rng(5);
  double truth = 0.0;
  double filter_sse = 0.0, raw_sse = 0.0;
  for (int64_t i = 1; i <= 5000; ++i) {
    truth += rng.Gaussian(0.0, 0.2);
    double z = truth + rng.Gaussian(0.0, 2.0);
    p.Tick();
    p.ObserveLocal(MakeReading(i, static_cast<double>(i), z));
    double est = p.Target()[0];
    filter_sse += (est - truth) * (est - truth);
    raw_sse += (z - truth) * (z - truth);
  }
  EXPECT_LT(filter_sse, 0.4 * raw_sse);
}

}  // namespace
}  // namespace kc
