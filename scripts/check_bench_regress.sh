#!/usr/bin/env bash
# Diffs the fleet_tick_1m table in BENCH_perf.json against the previous
# commit's and warns on any row whose sources/sec dropped more than 20%.
# Advisory (always exits 0 unless the working-tree file is unreadable):
# bench numbers are machine- and load-dependent, so a warning is a prompt
# to re-measure on an idle machine, not a hard gate.
#
# Usage: scripts/check_bench_regress.sh [ref]   (default: HEAD~1)

set -euo pipefail

cd "$(dirname "$0")/.."
REF="${1:-HEAD~1}"

if [ ! -f BENCH_perf.json ]; then
  echo "check_bench_regress: no BENCH_perf.json in working tree; skipping"
  exit 0
fi
if ! OLD_JSON=$(git show "$REF:BENCH_perf.json" 2>/dev/null); then
  echo "check_bench_regress: no BENCH_perf.json at $REF; skipping"
  exit 0
fi

OLD_JSON="$OLD_JSON" python3 - <<'EOF'
import json, os, sys

with open("BENCH_perf.json") as f:
    new = json.load(f)
old = json.loads(os.environ["OLD_JSON"])

def rows(report):
    table = {}
    for r in report.get("fleet_tick_1m", {}).get("rows", []):
        # Rows from before the threads/simd axes existed default to the
        # single-threaded SIMD configuration they actually measured.
        key = (r["sources"], r["pooled"],
               r.get("threads", 1), r.get("simd", True))
        table[key] = r["sources_per_sec"]
    return table

old_rows, new_rows = rows(old), rows(new)
if not old_rows:
    print("check_bench_regress: previous commit has no fleet_tick_1m rows; "
          "skipping")
    sys.exit(0)

regressed = False
for key in sorted(old_rows.keys() & new_rows.keys()):
    was, now = old_rows[key], new_rows[key]
    if was <= 0:
        continue
    delta = (now - was) / was
    label = (f"sources={key[0]} pooled={int(key[1])} "
             f"threads={key[2]} simd={int(key[3])}")
    if delta < -0.20:
        regressed = True
        print(f"WARNING: fleet_tick_1m regression [{label}]: "
              f"{was:,.0f} -> {now:,.0f} sources/sec ({delta:+.1%})")
    else:
        print(f"  fleet_tick_1m [{label}]: "
              f"{was:,.0f} -> {now:,.0f} sources/sec ({delta:+.1%})")
if not regressed:
    print("check_bench_regress: no >20% regressions")
EOF
