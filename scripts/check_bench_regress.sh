#!/usr/bin/env bash
# Diffs BENCH_perf.json against the previous commit's:
#  - fleet_tick_1m: warns on any row whose sources/sec dropped more
#    than 20%.
#  - observability_overhead / recorder_overhead / audit_overhead /
#    telemetry_overhead: warns when a model's overhead_pct grew by more
#    than 5 percentage points.
#  - loss_sweep_recovery: fully deterministic (fixed seed), so ANY change
#    is flagged as a protocol change, not noise.
# Advisory (always exits 0 unless the working-tree file is unreadable):
# bench numbers are machine- and load-dependent, so a warning is a prompt
# to re-measure on an idle machine, not a hard gate.
#
# Usage: scripts/check_bench_regress.sh [ref]   (default: HEAD~1)

set -euo pipefail

cd "$(dirname "$0")/.."
REF="${1:-HEAD~1}"

if [ ! -f BENCH_perf.json ]; then
  echo "check_bench_regress: no BENCH_perf.json in working tree; skipping"
  exit 0
fi
if ! OLD_JSON=$(git show "$REF:BENCH_perf.json" 2>/dev/null); then
  echo "check_bench_regress: no BENCH_perf.json at $REF; skipping"
  exit 0
fi

OLD_JSON="$OLD_JSON" python3 - <<'EOF'
import json, os, sys

with open("BENCH_perf.json") as f:
    new = json.load(f)
old = json.loads(os.environ["OLD_JSON"])

warned = False

def warn(msg):
    global warned
    warned = True
    print("WARNING: " + msg)

# ---- fleet_tick_1m: throughput rows, 20% drop tolerance. ----
def tick_rows(report):
    table = {}
    for r in report.get("fleet_tick_1m", {}).get("rows", []):
        # Rows from before the threads/simd axes existed default to the
        # single-threaded SIMD configuration they actually measured.
        key = (r["sources"], r["pooled"],
               r.get("threads", 1), r.get("simd", True))
        table[key] = r["sources_per_sec"]
    return table

old_rows, new_rows = tick_rows(old), tick_rows(new)
if not old_rows:
    print("check_bench_regress: previous commit has no fleet_tick_1m rows")
for key in sorted(old_rows.keys() & new_rows.keys()):
    was, now = old_rows[key], new_rows[key]
    if was <= 0:
        continue
    delta = (now - was) / was
    label = (f"sources={key[0]} pooled={int(key[1])} "
             f"threads={key[2]} simd={int(key[3])}")
    line = (f"fleet_tick_1m [{label}]: "
            f"{was:,.0f} -> {now:,.0f} sources/sec ({delta:+.1%})")
    if delta < -0.20:
        warn("fleet_tick_1m regression " + line)
    else:
        print("  " + line)

# ---- Overhead tables: observability / recorder / audit taxes. ----
# The per-model overhead_pct is a few percent; allow 5 percentage points
# of growth before flagging (ns-scale numbers bounce with machine load).
def overhead_rows(report, table):
    return {r["model"]: r.get("overhead_pct")
            for r in report.get(table, [])}

for table in ("observability_overhead", "recorder_overhead",
              "audit_overhead", "telemetry_overhead"):
    old_pct, new_pct = overhead_rows(old, table), overhead_rows(new, table)
    if not old_pct:
        print(f"check_bench_regress: previous commit has no {table} rows")
        continue
    for model in sorted(old_pct.keys() & new_pct.keys()):
        was, now = old_pct[model], new_pct[model]
        if was is None or now is None:
            continue
        line = f"{table} [{model}]: {was:+.2f}% -> {now:+.2f}%"
        if now - was > 5.0:
            warn(line + " (grew > 5pp)")
        else:
            print("  " + line)

# ---- loss_sweep_recovery: deterministic healing counters. ----
def sweep_rows(report):
    return {r["bad_state_pct"]: {k: v for k, v in r.items()
                                 if k != "bad_state_pct"}
            for r in report.get("loss_sweep_recovery", [])}

old_sweep, new_sweep = sweep_rows(old), sweep_rows(new)
if not old_sweep:
    print("check_bench_regress: previous commit has no loss_sweep_recovery "
          "rows")
for pct in sorted(old_sweep.keys() & new_sweep.keys()):
    if old_sweep[pct] != new_sweep[pct]:
        warn(f"loss_sweep_recovery changed at bad={pct}%: "
             f"{old_sweep[pct]} -> {new_sweep[pct]} "
             f"(fixed-seed run: this is a protocol change, not noise)")
    else:
        print(f"  loss_sweep_recovery bad={pct}%: unchanged")

if not warned:
    print("check_bench_regress: no regressions")
EOF
