#!/usr/bin/env bash
# AddressSanitizer + UndefinedBehaviorSanitizer gate.
#
# Configures a dedicated build tree with -fsanitize=address,undefined and
# runs the full test suite. The SmallBuf inline/heap storage and the
# destination-passing kernels are the main customers: any out-of-bounds
# write, use-after-free on a spilled buffer, or UB in the hot loop fails
# the run (halt_on_error aborts the offending test binary). The full
# suite includes codec_test's garbage matrix (thousands of random and
# bit-flipped buffers through codec::DecodeFrame) and transport_test's
# malformed-datagram/stream cases, so "decoding arbitrary bytes never
# trips ASan/UBSan" is pinned here on every run.
#
# Usage: scripts/ci_asan.sh [build-dir]   (default: build-asan)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

cmake --build "$BUILD_DIR" -j

export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Loopback HTTP telemetry smoke under the sanitizers: run the audited
# sensor-network example with the endpoint on an ephemeral port, scrape
# every route over a real socket, and check the audit layer reports full
# containment on this fault-free run.
SMOKE_LOG="$BUILD_DIR/http_smoke.log"
"$BUILD_DIR"/examples/sensor_network --audit --timeseries \
  --http-port=0 --serve-seconds=20 >"$SMOKE_LOG" 2>&1 &
SMOKE_PID=$!
trap 'kill "$SMOKE_PID" 2>/dev/null || true' EXIT
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's#^telemetry: http://127\.0\.0\.1:\([0-9]*\)/metrics.*#\1#p' \
    "$SMOKE_LOG")
  [ -n "$PORT" ] && break
  sleep 0.2
done
if [ -z "$PORT" ]; then
  echo "ci_asan: telemetry endpoint never came up"; cat "$SMOKE_LOG"; exit 1
fi
PORT="$PORT" python3 - <<'EOF'
import os, sys, urllib.request

port = os.environ["PORT"]

def get(path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as r:
        return r.status, r.read().decode()

status, metrics = get("/metrics")
assert status == 200, status
for line in metrics.splitlines():
    if not line or line.startswith("#"):
        continue
    name, _, value = line.partition(" ")
    float(value)  # Every sample line is `name value`.
assert "kc_audit_samples_total" in metrics, metrics[:400]
status, healthz = get("/healthz")
assert status == 200 and "containment=100%" in healthz, healthz
status, audit = get("/audit")
assert status == 200 and '"violations":0' in audit, audit[:400]
status, ts = get("/timeseries")
assert status == 200 and '"series":[' in ts, ts[:200]
status, scoped = get("/metrics?prefix=kc.audit")
assert "kc_audit_" in scoped and "kc_agent_" not in scoped, scoped[:400]
print("http smoke: all routes OK")
EOF
kill "$SMOKE_PID" 2>/dev/null || true
wait "$SMOKE_PID" 2>/dev/null || true
trap - EXIT

# Split-process smoke under the sanitizers: run the sensor network as two
# real OS processes joined by UDP + TCP (--listen / --connect) with the
# distributed telemetry plane on, and pin three contracts at once:
#  - byte-accounting parity: telemetry rides uncharged escape frames, so
#    the client's send books and the server's delivery books must equal,
#    string for string, the books a simulated single-process run (with
#    telemetry off) predicts for the same seed and workload;
#  - merged exposition: one scrape of the server's /metrics carries both
#    its local rows and the client's rows under kc.remote.client.*;
#  - stitched tracing: the exported Chrome trace holds both named process
#    tracks and at least one causal flow crossing the pid boundary.
SPLIT_TICKS=288
SPLIT_PORT=$((20000 + RANDOM % 20000))
SIM_LOG="$BUILD_DIR/split_sim.log"
SRV_LOG="$BUILD_DIR/split_server.log"
CLI_LOG="$BUILD_DIR/split_client.log"
SPLIT_TRACE="$BUILD_DIR/split_trace.json"
rm -f "$SPLIT_TRACE"
"$BUILD_DIR"/examples/sensor_network --ticks="$SPLIT_TICKS" --net-stats \
  >"$SIM_LOG" 2>&1
"$BUILD_DIR"/examples/sensor_network --listen="$SPLIT_PORT" \
  --ticks="$SPLIT_TICKS" --telemetry=32 --http-port=0 --serve-seconds=15 \
  --trace-export="$SPLIT_TRACE" >"$SRV_LOG" 2>&1 &
SRV_PID=$!
trap 'kill "$SRV_PID" 2>/dev/null || true' EXIT
sleep 1
# The client never writes a trace file (only the server has the merged
# view), but the flag turns its span capture on so snapshots carry spans.
"$BUILD_DIR"/examples/sensor_network --connect=127.0.0.1:"$SPLIT_PORT" \
  --ticks="$SPLIT_TICKS" --telemetry=32 \
  --trace-export="$BUILD_DIR/unused_client_trace.json" >"$CLI_LOG" 2>&1
# The client is done, so the server is inside its post-run serve window
# with the final merged state published: scrape the single endpoint and
# demand rows from both processes.
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's#^telemetry: http://127\.0\.0\.1:\([0-9]*\)/metrics.*#\1#p' \
    "$SRV_LOG")
  [ -n "$PORT" ] && break
  sleep 0.2
done
if [ -z "$PORT" ]; then
  echo "ci_asan: split server telemetry endpoint never came up"
  cat "$SRV_LOG"; exit 1
fi
PORT="$PORT" python3 - <<'EOF'
import os, urllib.request

port = os.environ["PORT"]
with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics") as r:
    assert r.status == 200, r.status
    metrics = r.read().decode()
for line in metrics.splitlines():
    if not line or line.startswith("#"):
        continue
    name, _, value = line.partition(" ")
    float(value)
# Local server rows and the client's rows merged under one namespace.
assert "kc_replica_messages_applied_total" in metrics, metrics[:400]
assert "kc_remote_client_agent_decisions_total" in metrics, metrics[:400]
assert "kc_net_wire_latency_us" in metrics, metrics[:400]
assert "kc_remote_snapshots_total" in metrics, metrics[:400]
print("split smoke: one scrape covers both processes")
EOF
wait "$SRV_PID"
trap - EXIT
SIM_SENT=$(grep '^uplink sent:' "$SIM_LOG")
SIM_DELIVERED=$(grep '^uplink delivered:' "$SIM_LOG")
CLI_SENT=$(grep '^uplink sent:' "$CLI_LOG")
SRV_DELIVERED=$(grep '^uplink delivered:' "$SRV_LOG")
if [ "$SIM_SENT" != "$CLI_SENT" ]; then
  echo "ci_asan: split-client send books diverge from simulation"
  echo "  sim:    $SIM_SENT"
  echo "  client: $CLI_SENT"
  exit 1
fi
if [ "$SIM_DELIVERED" != "$SRV_DELIVERED" ]; then
  echo "ci_asan: split-server delivery books diverge from simulation"
  echo "  sim:    $SIM_DELIVERED"
  echo "  server: $SRV_DELIVERED"
  exit 1
fi
echo "split smoke: books match across simulated and socket backends"
# The stitched trace the server wrote after its serve window: named
# tracks for both processes and at least one flow arrow whose start
# ("s") and binding ("f") land on different pids.
SPLIT_TRACE="$SPLIT_TRACE" python3 - <<'EOF'
import json, os

with open(os.environ["SPLIT_TRACE"]) as f:
    trace = json.load(f)
assert trace["displayTimeUnit"] == "ms"
events = trace["traceEvents"]
names = {e["args"]["name"] for e in events if e.get("ph") == "M"}
assert {"stream-server", "fleet-client"} <= names, names
flows = {}
for e in events:
    if e.get("ph") in ("s", "f"):
        flows.setdefault(e["id"], {"s": set(), "f": set()})
        flows[e["id"]][e["ph"]].add(e["pid"])
cross = sum(1 for v in flows.values() if v["s"] and v["f"] - v["s"])
assert cross > 0, f"no cross-pid flow among {len(flows)} flows"
print(f"split smoke: stitched trace OK ({cross} cross-pid flows)")
EOF

echo "ci_asan: OK (no memory errors reported)"
