#!/usr/bin/env bash
# AddressSanitizer + UndefinedBehaviorSanitizer gate.
#
# Configures a dedicated build tree with -fsanitize=address,undefined and
# runs the full test suite. The SmallBuf inline/heap storage and the
# destination-passing kernels are the main customers: any out-of-bounds
# write, use-after-free on a spilled buffer, or UB in the hot loop fails
# the run (halt_on_error aborts the offending test binary).
#
# Usage: scripts/ci_asan.sh [build-dir]   (default: build-asan)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

cmake --build "$BUILD_DIR" -j

export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "ci_asan: OK (no memory errors reported)"
