#!/usr/bin/env bash
# AddressSanitizer + UndefinedBehaviorSanitizer gate.
#
# Configures a dedicated build tree with -fsanitize=address,undefined and
# runs the full test suite. The SmallBuf inline/heap storage and the
# destination-passing kernels are the main customers: any out-of-bounds
# write, use-after-free on a spilled buffer, or UB in the hot loop fails
# the run (halt_on_error aborts the offending test binary). The full
# suite includes codec_test's garbage matrix (thousands of random and
# bit-flipped buffers through codec::DecodeFrame) and transport_test's
# malformed-datagram/stream cases, so "decoding arbitrary bytes never
# trips ASan/UBSan" is pinned here on every run.
#
# Usage: scripts/ci_asan.sh [build-dir]   (default: build-asan)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

cmake --build "$BUILD_DIR" -j

export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Loopback HTTP telemetry smoke under the sanitizers: run the audited
# sensor-network example with the endpoint on an ephemeral port, scrape
# every route over a real socket, and check the audit layer reports full
# containment on this fault-free run.
SMOKE_LOG="$BUILD_DIR/http_smoke.log"
"$BUILD_DIR"/examples/sensor_network --audit --timeseries \
  --http-port=0 --serve-seconds=20 >"$SMOKE_LOG" 2>&1 &
SMOKE_PID=$!
trap 'kill "$SMOKE_PID" 2>/dev/null || true' EXIT
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's#^telemetry: http://127\.0\.0\.1:\([0-9]*\)/metrics.*#\1#p' \
    "$SMOKE_LOG")
  [ -n "$PORT" ] && break
  sleep 0.2
done
if [ -z "$PORT" ]; then
  echo "ci_asan: telemetry endpoint never came up"; cat "$SMOKE_LOG"; exit 1
fi
PORT="$PORT" python3 - <<'EOF'
import os, sys, urllib.request

port = os.environ["PORT"]

def get(path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as r:
        return r.status, r.read().decode()

status, metrics = get("/metrics")
assert status == 200, status
for line in metrics.splitlines():
    if not line or line.startswith("#"):
        continue
    name, _, value = line.partition(" ")
    float(value)  # Every sample line is `name value`.
assert "kc_audit_samples_total" in metrics, metrics[:400]
status, healthz = get("/healthz")
assert status == 200 and "containment=100%" in healthz, healthz
status, audit = get("/audit")
assert status == 200 and '"violations":0' in audit, audit[:400]
status, ts = get("/timeseries")
assert status == 200 and '"series":[' in ts, ts[:200]
status, scoped = get("/metrics?prefix=kc.audit")
assert "kc_audit_" in scoped and "kc_agent_" not in scoped, scoped[:400]
print("http smoke: all routes OK")
EOF
kill "$SMOKE_PID" 2>/dev/null || true
wait "$SMOKE_PID" 2>/dev/null || true
trap - EXIT

# Split-process smoke under the sanitizers: run the sensor network as two
# real OS processes joined by UDP + TCP (--listen / --connect), and pin
# the byte-accounting parity contract — the client's send books and the
# server's delivery books must equal, string for string, the books a
# simulated single-process run predicts for the same seed and workload.
SPLIT_TICKS=288
SPLIT_PORT=$((20000 + RANDOM % 20000))
SIM_LOG="$BUILD_DIR/split_sim.log"
SRV_LOG="$BUILD_DIR/split_server.log"
CLI_LOG="$BUILD_DIR/split_client.log"
"$BUILD_DIR"/examples/sensor_network --ticks="$SPLIT_TICKS" --net-stats \
  >"$SIM_LOG" 2>&1
"$BUILD_DIR"/examples/sensor_network --listen="$SPLIT_PORT" \
  --ticks="$SPLIT_TICKS" >"$SRV_LOG" 2>&1 &
SRV_PID=$!
trap 'kill "$SRV_PID" 2>/dev/null || true' EXIT
sleep 1
"$BUILD_DIR"/examples/sensor_network --connect=127.0.0.1:"$SPLIT_PORT" \
  --ticks="$SPLIT_TICKS" >"$CLI_LOG" 2>&1
wait "$SRV_PID"
trap - EXIT
SIM_SENT=$(grep '^uplink sent:' "$SIM_LOG")
SIM_DELIVERED=$(grep '^uplink delivered:' "$SIM_LOG")
CLI_SENT=$(grep '^uplink sent:' "$CLI_LOG")
SRV_DELIVERED=$(grep '^uplink delivered:' "$SRV_LOG")
if [ "$SIM_SENT" != "$CLI_SENT" ]; then
  echo "ci_asan: split-client send books diverge from simulation"
  echo "  sim:    $SIM_SENT"
  echo "  client: $CLI_SENT"
  exit 1
fi
if [ "$SIM_DELIVERED" != "$SRV_DELIVERED" ]; then
  echo "ci_asan: split-server delivery books diverge from simulation"
  echo "  sim:    $SIM_DELIVERED"
  echo "  server: $SRV_DELIVERED"
  exit 1
fi
echo "split smoke: books match across simulated and socket backends"

echo "ci_asan: OK (no memory errors reported)"
