#!/usr/bin/env bash
# ThreadSanitizer gate for the sharded fleet executor.
#
# Configures a dedicated build tree with -fsanitize=thread and runs the
# concurrency-sensitive tests: the thread pool, the sharded fleet
# determinism suite, and the observability stress tests (concurrent
# metric recording and per-thread trace rings). Any data race makes the
# tests fail: TSAN_OPTIONS sets halt_on_error so a race aborts the
# offending test binary.
#
# Usage: scripts/ci_tsan.sh [build-dir]   (default: build-tsan)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"

cmake --build "$BUILD_DIR" -j \
  --target thread_pool_test sharded_fleet_test pool_test recovery_test \
  metrics_test recorder_test health_test trace_span_test \
  audit_test timeseries_test http_exporter_test codec_test transport_test

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
"$BUILD_DIR"/tests/thread_pool_test
# sharded_fleet_test includes the ParallelFor re-entrancy regression
# (nested ParallelFor on the worker threads) and the pooled-vs-per-object
# fleet runs under threads.
"$BUILD_DIR"/tests/sharded_fleet_test
# Per-shard filter pools are single-writer by construction; the pooled
# fleet runs above plus this suite's ShardedServer id-reuse test check
# that no pool state crosses shard workers.
"$BUILD_DIR"/tests/pool_test
# The recovery suite drives the sharded fleet with fault injection and the
# control downlink active — resync requests cross the shard workers.
"$BUILD_DIR"/tests/recovery_test
# PerThreadArenasMergeExactly runs 8 single-writer arenas concurrently and
# ConcurrentReadsAreTornFree races a reader against the writer; the fleet
# tests above already exercise per-shard arenas under threads.
"$BUILD_DIR"/tests/metrics_test
# Flight-recorder rings and watchdog entries follow the same single-writer
# arena rule; the sharded observability test above runs them under 4
# worker threads, these cover the cold-path registration locking.
"$BUILD_DIR"/tests/recorder_test
"$BUILD_DIR"/tests/health_test
"$BUILD_DIR"/tests/trace_span_test
# The audit arenas are fed by the shard workers while the driver renders
# merged reports between ticks; the fleet tests inside run under threads.
"$BUILD_DIR"/tests/audit_test
# The time-series store is driver-owned but read by telemetry endpoints.
"$BUILD_DIR"/tests/timeseries_test
# The HTTP server races its serving thread against driver-side Publish*
# calls and Stop(); the loopback scrapes here exercise both.
"$BUILD_DIR"/tests/http_exporter_test
# Wire codec is pure code but runs here so its garbage matrix also gets
# a -fsanitize=thread build's stricter codegen pass.
"$BUILD_DIR"/tests/codec_test
# SocketChannel loopback suite: SplitDeployTest runs the client and
# server halves on two threads of one process, racing real socket I/O
# against both reports — the transport's only multi-threaded consumer.
"$BUILD_DIR"/tests/transport_test

echo "ci_tsan: OK (no data races reported)"
