#!/usr/bin/env bash
# Runs the perf microbenchmarks and refreshes BENCH_perf.json at the repo
# root: an optimized build tree, each bench_perf_* binary with JSON output,
# then a merge of the per-binary reports into one file.
#
# Usage: scripts/run_benches.sh [build-dir]   (default: build-bench)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j \
  --target bench_perf_kalman bench_perf_linalg bench_perf_server

OUT_DIR="$BUILD_DIR/bench-json"
mkdir -p "$OUT_DIR"
for bench in bench_perf_kalman bench_perf_linalg bench_perf_server; do
  "$BUILD_DIR/bench/$bench" \
    --benchmark_format=json \
    --benchmark_out="$OUT_DIR/$bench.json" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.2
done

python3 - "$OUT_DIR" <<'EOF'
import json, os, sys

out_dir = sys.argv[1]
merged = {"context": None, "benchmarks": []}
for name in ("bench_perf_kalman", "bench_perf_linalg", "bench_perf_server"):
    with open(os.path.join(out_dir, name + ".json")) as f:
        report = json.load(f)
    if merged["context"] is None:
        merged["context"] = report.get("context", {})
    for bench in report.get("benchmarks", []):
        bench["binary"] = name
        merged["benchmarks"].append(bench)
with open("BENCH_perf.json", "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"BENCH_perf.json: {len(merged['benchmarks'])} benchmarks")
EOF

echo "run_benches: OK"
