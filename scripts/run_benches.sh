#!/usr/bin/env bash
# Runs the perf microbenchmarks and refreshes BENCH_perf.json at the repo
# root: an optimized build tree, each bench_perf_* binary with JSON output,
# then a merge of the per-binary reports into one file.
#
# Usage: scripts/run_benches.sh [build-dir]   (default: build-bench)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j \
  --target bench_perf_kalman bench_perf_linalg bench_perf_server

OUT_DIR="$BUILD_DIR/bench-json"
mkdir -p "$OUT_DIR"
for bench in bench_perf_kalman bench_perf_linalg bench_perf_server; do
  EXTRA=()
  if [ "$bench" = bench_perf_kalman ]; then
    # The observability-overhead comparison (instrumented vs plain
    # BM_PredictUpdate) chases a few ns, which run-to-run machine drift
    # can swamp: interleave repetitions and report medians.
    EXTRA=(--benchmark_repetitions=7
           --benchmark_enable_random_interleaving=true
           --benchmark_report_aggregates_only=true)
  fi
  "$BUILD_DIR/bench/$bench" \
    --benchmark_format=json \
    --benchmark_out="$OUT_DIR/$bench.json" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.2 \
    "${EXTRA[@]}"
done

python3 - "$OUT_DIR" <<'EOF'
import json, os, sys

out_dir = sys.argv[1]
merged = {"context": None, "benchmarks": []}
for name in ("bench_perf_kalman", "bench_perf_linalg", "bench_perf_server"):
    with open(os.path.join(out_dir, name + ".json")) as f:
        report = json.load(f)
    if merged["context"] is None:
        merged["context"] = report.get("context", {})
    for bench in report.get("benchmarks", []):
        bench["binary"] = name
        merged["benchmarks"].append(bench)
# Observability tax: instrumented-vs-uninstrumented BM_PredictUpdate per
# model. The acceptance bar for the metrics subsystem is <= 5% overhead.
# With repetitions enabled the kalman report carries aggregate rows; use
# the medians, which shrug off transient machine-noise spikes.
plain = {}
instrumented = {}
recorded = {}
audited = {}
for bench in merged["benchmarks"]:
    is_median = bench.get("aggregate_name") == "median"
    if not is_median and bench.get("run_type") != "iteration":
        continue
    run = bench.get("run_name", bench.get("name", ""))
    if run.startswith("BM_PredictUpdateInstrumented/"):
        table = instrumented
    elif run.startswith("BM_PredictUpdateRecorded/"):
        table = recorded
    elif run.startswith("BM_PredictUpdateAudited/"):
        table = audited
    elif run.startswith("BM_PredictUpdate/"):
        table = plain
    else:
        continue
    key = run.rsplit("/", 1)[1]
    if is_median or key not in table:
        table[key] = bench
overhead = []
for key in sorted(plain.keys() & instrumented.keys()):
    base = plain[key]["real_time"]
    inst = instrumented[key]["real_time"]
    overhead.append({
        "model": plain[key].get("label", key),
        "base_ns": round(base, 2),
        "instrumented_ns": round(inst, 2),
        "overhead_pct": round(100.0 * (inst - base) / base, 2),
    })
merged["observability_overhead"] = overhead
# Flight-recorder tax: the fully instrumented path (metrics + one ring
# Record + the three watchdog feeds) vs the bare filter step.
recorder_overhead = []
for key in sorted(plain.keys() & recorded.keys()):
    base = plain[key]["real_time"]
    rec = recorded[key]["real_time"]
    recorder_overhead.append({
        "model": plain[key].get("label", key),
        "base_ns": round(base, 2),
        "recorded_ns": round(rec, 2),
        "overhead_pct": round(100.0 * (rec - base) / base, 2),
    })
merged["recorder_overhead"] = recorder_overhead
# Precision-audit tax: the filter step with the auditor sampling at its
# default cadence (every 4th tick) vs the bare step. The acceptance bar
# for the audit layer is <= 10% overhead at the default sample rate.
audit_overhead = []
for key in sorted(plain.keys() & audited.keys()):
    base = plain[key]["real_time"]
    aud = audited[key]["real_time"]
    audit_overhead.append({
        "model": plain[key].get("label", key),
        "base_ns": round(base, 2),
        "audited_ns": round(aud, 2),
        "overhead_pct": round(100.0 * (aud - base) / base, 2),
    })
merged["audit_overhead"] = audit_overhead
# Telemetry-plane tax: BM_FleetStepTelemetry rows pair the bare sharded
# fleet step (telemetry_every=0) with the full snapshot/self-merge
# loopback at each cadence. The acceptance bar is <= 5% amortized
# per-tick overhead at the default cadence (every 32 ticks).
telem_base = {}
telem_on = {}
for bench in merged["benchmarks"]:
    if bench.get("run_type") != "iteration":
        continue
    run = bench.get("run_name", bench.get("name", ""))
    if not run.startswith("BM_FleetStepTelemetry/"):
        continue
    sources = int(bench.get("sources", 0))
    every = int(bench.get("telemetry_every", 0))
    if every == 0:
        telem_base[sources] = bench
    else:
        telem_on[(sources, every)] = bench
telemetry_overhead = []
for (sources, every) in sorted(telem_on.keys()):
    if sources not in telem_base:
        continue
    base = telem_base[sources]["real_time"]
    telem = telem_on[(sources, every)]["real_time"]
    telemetry_overhead.append({
        "model": f"fleet-{sources}s-every{every}",
        "base_ns": round(base, 2),
        "telemetry_ns": round(telem, 2),
        "overhead_pct": round(100.0 * (telem - base) / base, 2),
    })
merged["telemetry_overhead"] = telemetry_overhead
# Recovery-protocol loss sweep: BM_LossSweepRecovery runs a fixed-seed
# faulty link per bad-state fraction and reports its healing counters.
# Fully deterministic, so any diff here is a protocol change.
loss_sweep = []
for bench in merged["benchmarks"]:
    if bench.get("run_type") != "iteration":
        continue
    run = bench.get("run_name", bench.get("name", ""))
    if not run.startswith("BM_LossSweepRecovery/"):
        continue
    loss_sweep.append({
        "bad_state_pct": int(run.rsplit("/", 1)[1]),
        "gaps": bench.get("gaps"),
        "resyncs_served": bench.get("resyncs_served"),
        "degraded_ticks": bench.get("degraded_ticks"),
        "recovery_ticks_per_resync": bench.get("recovery_ticks_per_resync"),
    })
merged["loss_sweep_recovery"] = loss_sweep
# Fleet tick throughput at scale: the BM_FleetTick_1M matrix (sources
# ticked per second) over {sources, pooled, threads, simd} — the SoA
# filter-pool path with vectorized/parallel sweeps vs the per-object
# baseline. Rows from older binaries without the threads/simd counters
# default to threads=1, simd=1. Headline numbers: the 100k
# pooled/per-object ratio and the absolute single-threaded SIMD 1M rate.
fleet_tick = []
for bench in merged["benchmarks"]:
    if bench.get("run_type") != "iteration":
        continue
    run = bench.get("run_name", bench.get("name", ""))
    if not run.startswith("BM_FleetTick_1M/"):
        continue
    fleet_tick.append({
        "sources": int(bench.get("sources", 0)),
        "pooled": bool(bench.get("pooled", 0)),
        "threads": int(bench.get("threads", 1)),
        "simd": bool(bench.get("simd", 1)),
        "sources_per_sec": round(bench.get("items_per_second", 0.0), 1),
        "tick_ms": round(bench.get("real_time", 0.0), 3),
    })
fleet_tick.sort(key=lambda r: (r["sources"], r["pooled"], r["threads"],
                               r["simd"]))
by_key = {(r["sources"], r["pooled"], r["threads"], r["simd"]):
          r["sources_per_sec"] for r in fleet_tick}
speedup = None
if (100000, False, 1, True) in by_key and (100000, True, 1, True) in by_key \
        and by_key[(100000, False, 1, True)] > 0:
    speedup = round(by_key[(100000, True, 1, True)]
                    / by_key[(100000, False, 1, True)], 2)
merged["fleet_tick_1m"] = {
    "rows": fleet_tick,
    "pooled_speedup_100k": speedup,
}
with open("BENCH_perf.json", "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"BENCH_perf.json: {len(merged['benchmarks'])} benchmarks")
for row in loss_sweep:
    print(f"  loss sweep bad={row['bad_state_pct']}%: "
          f"gaps={row['gaps']} resyncs={row['resyncs_served']} "
          f"degraded_ticks={row['degraded_ticks']}")
for row in overhead:
    print(f"  obs overhead {row['model']}: {row['base_ns']} -> "
          f"{row['instrumented_ns']} ns ({row['overhead_pct']:+.2f}%)")
for row in recorder_overhead:
    print(f"  recorder overhead {row['model']}: {row['base_ns']} -> "
          f"{row['recorded_ns']} ns ({row['overhead_pct']:+.2f}%)")
for row in audit_overhead:
    print(f"  audit overhead {row['model']}: {row['base_ns']} -> "
          f"{row['audited_ns']} ns ({row['overhead_pct']:+.2f}%)")
for row in telemetry_overhead:
    print(f"  telemetry overhead {row['model']}: {row['base_ns']} -> "
          f"{row['telemetry_ns']} ns ({row['overhead_pct']:+.2f}%)")
for row in fleet_tick:
    kind = "pooled" if row["pooled"] else "per-object"
    lanes = "simd" if row["simd"] else "scalar"
    print(f"  fleet tick {row['sources']} sources ({kind}, "
          f"threads={row['threads']}, {lanes}): "
          f"{row['sources_per_sec']:,.0f} sources/sec")
if speedup is not None:
    print(f"  fleet tick pooled speedup @100k: {speedup}x")
EOF

echo "run_benches: OK"
