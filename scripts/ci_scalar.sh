#!/usr/bin/env bash
# CI configuration with the SIMD batch kernels forced off (-DKC_SIMD=OFF
# defines KC_BATCH_FORCE_SCALAR, so only the portable scalar lanes
# compile), then runs the pool and batch-kernel suites under it. Keeps the
# scalar fallback path green on every change — the bit-identity contract
# is only meaningful if both code paths keep passing the same pins.
#
# Usage: scripts/ci_scalar.sh [build-dir]   (default: build-scalar)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-scalar}"

cmake -B "$BUILD_DIR" -S . -DKC_SIMD=OFF
cmake --build "$BUILD_DIR" -j --target pool_test batch_kernels_test
"$BUILD_DIR/tests/pool_test"
"$BUILD_DIR/tests/batch_kernels_test"

echo "ci_scalar: OK"
