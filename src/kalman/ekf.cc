#include "kalman/ekf.h"

#include <cassert>
#include <cmath>
#include <numbers>

#include "linalg/decomp.h"
#include "linalg/kernels.h"

namespace kc {

Status NonlinearModel::Validate() const {
  if (state_dim == 0 || obs_dim == 0) {
    return Status::InvalidArgument("empty dimensions");
  }
  if (!f || !f_jacobian || !h || !h_jacobian) {
    return Status::InvalidArgument("missing model callables");
  }
  if (q.rows() != state_dim || q.cols() != state_dim) {
    return Status::InvalidArgument("Q shape mismatch");
  }
  if (r.rows() != obs_dim || r.cols() != obs_dim) {
    return Status::InvalidArgument("R shape mismatch");
  }
  if (!IsPositiveSemiDefinite(q)) {
    return Status::InvalidArgument("Q must be symmetric PSD");
  }
  if (!Cholesky(r).ok()) {
    return Status::InvalidArgument("R must be symmetric PD");
  }
  return Status::Ok();
}

ExtendedKalmanFilter::ExtendedKalmanFilter(NonlinearModel model, Vector x0,
                                           Matrix p0)
    : model_(std::move(model)), x_(std::move(x0)), p_(std::move(p0)) {
  assert(model_.Validate().ok());
  assert(x_.size() == model_.state_dim);
  assert(p_.rows() == model_.state_dim && p_.cols() == model_.state_dim);
}

void ExtendedKalmanFilter::Predict() {
  // The model callables return by value, but their results stay in inline
  // storage; everything else routes through ws_, so the steady-state step
  // performs zero heap allocations.
  ws_.jac = model_.f_jacobian(x_);
  x_ = model_.f(x_);
  SandwichInto(ws_.jac, p_, &ws_.tmp1, &ws_.j1);
  AddInto(ws_.j1, model_.q, &p_);
  p_.Symmetrize();
}

Status ExtendedKalmanFilter::Update(const Vector& z) {
  if (z.size() != model_.obs_dim) {
    return Status::InvalidArgument("observation dimension mismatch");
  }
  ws_.jac = model_.h_jacobian(x_);
  ws_.hx = model_.h(x_);
  SubInto(z, ws_.hx, &ws_.nu);

  SandwichInto(ws_.jac, p_, &ws_.tmp1, &ws_.s);
  ws_.s += model_.r;
  ws_.s.Symmetrize();
  if (!Cholesky::FactorInto(ws_.s, &ws_.l)) {
    return Status::FailedPrecondition("innovation covariance not PD");
  }
  MultiplyTransposedInto(p_, ws_.jac, &ws_.ph_t);
  TransposeInto(ws_.ph_t, &ws_.tmp1);
  Cholesky::SolveInto(ws_.l, ws_.tmp1, &ws_.kt);
  TransposeInto(ws_.kt, &ws_.k);

  MultiplyInto(ws_.k, ws_.nu, &ws_.knu);
  x_ += ws_.knu;
  MultiplyInto(ws_.k, ws_.jac, &ws_.kh);
  IdentityMinusInto(ws_.kh, &ws_.i_kh);
  SandwichInto(ws_.i_kh, p_, &ws_.tmp1, &ws_.j1);     // Joseph form.
  SandwichInto(ws_.k, model_.r, &ws_.tmp1, &ws_.krk);
  AddInto(ws_.j1, ws_.krk, &p_);
  p_.Symmetrize();

  innovation_ = ws_.nu;
  Cholesky::SolveInto(ws_.l, ws_.nu, &ws_.sinv_nu);
  nis_ = ws_.nu.Dot(ws_.sinv_nu);
  double m = static_cast<double>(model_.obs_dim);
  log_likelihood_ = -0.5 * (nis_ + Cholesky::LogDeterminantOf(ws_.l) +
                            m * std::log(2.0 * std::numbers::pi));
  ++update_count_;
  return Status::Ok();
}

void ExtendedKalmanFilter::Reset(Vector x0, Matrix p0) {
  assert(x0.size() == model_.state_dim);
  x_ = std::move(x0);
  p_ = std::move(p0);
  innovation_ = Vector();
  nis_ = 0.0;
  log_likelihood_ = 0.0;
  update_count_ = 0;
}

std::vector<double> ExtendedKalmanFilter::SerializeState() const {
  std::vector<double> buf;
  size_t n = model_.state_dim;
  buf.reserve(n + n * n);
  buf.insert(buf.end(), x_.data().begin(), x_.data().end());
  buf.insert(buf.end(), p_.data().begin(), p_.data().end());
  return buf;
}

Status ExtendedKalmanFilter::DeserializeState(const std::vector<double>& buf) {
  size_t n = model_.state_dim;
  if (buf.size() != n + n * n) {
    return Status::InvalidArgument("serialized state has wrong size");
  }
  for (size_t i = 0; i < n; ++i) x_[i] = buf[i];
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) p_(r, c) = buf[n + r * n + c];
  }
  p_.Symmetrize();
  return Status::Ok();
}

NonlinearModel MakeCoordinatedTurnModel(double dt, double q_pos,
                                        double q_speed, double q_turn,
                                        double obs_var) {
  // State: [x, y, v, theta, omega].
  NonlinearModel m;
  m.name = "coordinated_turn";
  m.state_dim = 5;
  m.obs_dim = 2;

  m.f = [dt](const Vector& x) {
    double v = x[2], theta = x[3], omega = x[4];
    Vector out(5);
    out[0] = x[0] + v * std::cos(theta) * dt;
    out[1] = x[1] + v * std::sin(theta) * dt;
    out[2] = v;
    out[3] = theta + omega * dt;
    out[4] = omega;
    return out;
  };
  m.f_jacobian = [dt](const Vector& x) {
    double v = x[2], theta = x[3];
    double ct = std::cos(theta), st = std::sin(theta);
    Matrix j = Matrix::Identity(5);
    j(0, 2) = ct * dt;
    j(0, 3) = -v * st * dt;
    j(1, 2) = st * dt;
    j(1, 3) = v * ct * dt;
    j(3, 4) = dt;
    return j;
  };
  m.h = [](const Vector& x) { return Vector{x[0], x[1]}; };
  m.h_jacobian = [](const Vector& x) {
    (void)x;
    Matrix j(2, 5);
    j(0, 0) = 1.0;
    j(1, 1) = 1.0;
    return j;
  };

  m.q = Matrix(5, 5);
  m.q(0, 0) = q_pos;
  m.q(1, 1) = q_pos;
  m.q(2, 2) = q_speed;
  m.q(3, 3) = q_turn * dt;  // Heading diffuses through turn-rate noise too.
  m.q(4, 4) = q_turn;
  m.r = Matrix::ScalarDiagonal(2, obs_var);
  return m;
}

}  // namespace kc
