#ifndef KALMANCAST_KALMAN_ADAPTIVE_H_
#define KALMANCAST_KALMAN_ADAPTIVE_H_

#include <deque>

#include "kalman/kalman_filter.h"

namespace kc {

/// Configuration for innovation-based adaptive noise estimation.
struct AdaptiveConfig {
  /// Number of recent innovations averaged when estimating noise levels.
  size_t window = 32;
  /// Minimum updates before any adaptation kicks in.
  size_t warmup = 8;
  /// If true, rescale Q when the average NIS departs from its expected
  /// value (obs_dim) — this is how the filter tracks *time-varying stream
  /// dynamics* (the paper's adaptivity claim C3).
  bool adapt_q = true;
  /// If true, re-estimate R from the innovation sample covariance minus
  /// H P H^T — this is how the filter tracks *sensor noise* (claim C2).
  bool adapt_r = false;
  /// Exponential smoothing applied to each adaptation step (0 = frozen,
  /// 1 = jump immediately to the new estimate).
  double smoothing = 0.2;
  /// Clamp on the per-window Q scale factor, to keep a burst of outliers
  /// from destabilizing the filter.
  double max_scale_per_step = 10.0;
  double min_scale_per_step = 0.1;
  /// Floor applied to adapted variances (keeps Q, R positive definite).
  double variance_floor = 1e-12;
};

/// Innovation-based adaptive noise estimator.
///
/// The Kalman filter is only optimal when Q and R match reality; streams in
/// a DSMS drift (volatility regimes, sensor degradation). This monitor
/// watches the filter's innovation sequence and rescales Q and/or
/// re-estimates R so the normalized innovation squared (NIS) stays near its
/// chi-squared expectation. Both the source and server replicas run the
/// same estimator fed by the same correction stream, so their models stay
/// identical without extra communication.
class AdaptiveNoiseEstimator {
 public:
  explicit AdaptiveNoiseEstimator(AdaptiveConfig config = {});

  /// Call after each successful filter.Update(); reads the innovation
  /// diagnostics and possibly adjusts filter.mutable_model().
  void AfterUpdate(KalmanFilter& filter);

  /// Clears history (e.g. after a filter Reset).
  void Reset();

  /// Average NIS over the current window (0 if empty).
  double WindowedNis() const;
  /// Cumulative Q scale applied so far (1.0 = untouched).
  double cumulative_q_scale() const { return cumulative_q_scale_; }
  size_t window_fill() const { return nis_history_.size(); }

  const AdaptiveConfig& config() const { return config_; }

 private:
  AdaptiveConfig config_;
  std::deque<double> nis_history_;
  // Innovation outer-product running sum for R estimation.
  std::deque<Matrix> innovation_outer_;
  double cumulative_q_scale_ = 1.0;
  size_t updates_seen_ = 0;
};

}  // namespace kc

#endif  // KALMANCAST_KALMAN_ADAPTIVE_H_
