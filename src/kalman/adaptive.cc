#include "kalman/adaptive.h"

#include <algorithm>
#include <cmath>

#include "linalg/decomp.h"

namespace kc {

AdaptiveNoiseEstimator::AdaptiveNoiseEstimator(AdaptiveConfig config)
    : config_(config) {
  config_.window = std::max<size_t>(config_.window, 2);
}

void AdaptiveNoiseEstimator::AfterUpdate(KalmanFilter& filter) {
  if (filter.update_count() == 0) return;
  ++updates_seen_;

  nis_history_.push_back(filter.last_nis());
  if (nis_history_.size() > config_.window) nis_history_.pop_front();

  if (config_.adapt_r) {
    const Vector& nu = filter.last_innovation();
    innovation_outer_.push_back(Matrix::Outer(nu, nu));
    if (innovation_outer_.size() > config_.window) innovation_outer_.pop_front();
  }

  if (updates_seen_ < config_.warmup) return;

  if (config_.adapt_q) {
    // Expected NIS is obs_dim. A sustained excess means the model's
    // uncertainty is too small: inflate Q. A deficit means Q is too large:
    // deflate (slowly) to regain suppression.
    double expected = static_cast<double>(filter.obs_dim());
    double avg = WindowedNis();
    if (avg > 0.0) {
      double raw_scale = avg / expected;
      raw_scale = std::clamp(raw_scale, config_.min_scale_per_step,
                             config_.max_scale_per_step);
      // Smooth in log space so inflation and deflation are symmetric.
      double log_step = config_.smoothing * std::log(raw_scale);
      double scale = std::exp(log_step);
      if (std::fabs(scale - 1.0) > 1e-3) {
        Matrix& q = filter.mutable_model().q;
        q *= scale;
        for (size_t i = 0; i < q.rows(); ++i) {
          q(i, i) = std::max(q(i, i), config_.variance_floor);
        }
        cumulative_q_scale_ *= scale;
      }
    }
  }

  if (config_.adapt_r && innovation_outer_.size() >= config_.warmup) {
    // Sample innovation covariance C ≈ H P- H^T + R, so R ≈ C - H P H^T.
    size_t m = filter.obs_dim();
    Matrix c(m, m);
    for (const Matrix& o : innovation_outer_) c += o;
    c *= 1.0 / static_cast<double>(innovation_outer_.size());
    Matrix hph = Sandwich(filter.model().h, filter.covariance());
    Matrix r_hat = c - hph;
    // Clamp to a PD matrix: floor the diagonal, zero wildly negative mass.
    for (size_t i = 0; i < m; ++i) {
      r_hat(i, i) = std::max(r_hat(i, i), config_.variance_floor);
    }
    r_hat.Symmetrize();
    if (Cholesky(r_hat).ok()) {
      Matrix& r = filter.mutable_model().r;
      // Exponential smoothing toward the estimate.
      r = (1.0 - config_.smoothing) * r + config_.smoothing * r_hat;
      r.Symmetrize();
    }
  }
}

void AdaptiveNoiseEstimator::Reset() {
  nis_history_.clear();
  innovation_outer_.clear();
  cumulative_q_scale_ = 1.0;
  updates_seen_ = 0;
}

double AdaptiveNoiseEstimator::WindowedNis() const {
  if (nis_history_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : nis_history_) sum += v;
  return sum / static_cast<double>(nis_history_.size());
}

}  // namespace kc
