#ifndef KALMANCAST_KALMAN_MODEL_H_
#define KALMANCAST_KALMAN_MODEL_H_

#include <string>

#include "common/status.h"
#include "linalg/matrix.h"

namespace kc {

/// A discrete-time linear-Gaussian state-space model:
///
///   x_{k+1} = F x_k + w_k,   w_k ~ N(0, Q)   (process)
///   z_k     = H x_k + v_k,   v_k ~ N(0, R)   (observation)
///
/// This is the "dynamic procedure" the paper caches at the server in place
/// of a static value: source and server agree on (F, Q, H, R) up front and
/// then exchange only filter corrections.
struct StateSpaceModel {
  std::string name;
  Matrix f;  ///< State transition, state_dim x state_dim.
  Matrix q;  ///< Process-noise covariance, state_dim x state_dim.
  Matrix h;  ///< Observation matrix, obs_dim x state_dim.
  Matrix r;  ///< Observation-noise covariance, obs_dim x obs_dim.

  size_t state_dim() const { return f.rows(); }
  size_t obs_dim() const { return h.rows(); }

  /// Checks shape consistency and that Q, R are symmetric PSD (R must be
  /// strictly PD for the filter update to be well-posed).
  Status Validate() const;
};

/// 1-state random-walk (local-level) model. `process_var` is the per-step
/// drift variance, `obs_var` the measurement-noise variance. The default
/// model for scalar sensor streams with no known dynamics.
StateSpaceModel MakeRandomWalkModel(double process_var, double obs_var);

/// 2-state constant-velocity model (position observed) with
/// white-noise-acceleration discretization over step `dt`.
/// `accel_var` is the continuous acceleration spectral density.
StateSpaceModel MakeConstantVelocityModel(double dt, double accel_var,
                                          double obs_var);

/// 3-state constant-acceleration model (position observed) with
/// white-noise-jerk discretization over step `dt`.
StateSpaceModel MakeConstantAccelerationModel(double dt, double jerk_var,
                                              double obs_var);

/// 2-state harmonic oscillator at angular frequency `omega` (rad per unit
/// time), position observed; models periodic streams (diurnal cycles).
StateSpaceModel MakeHarmonicModel(double omega, double dt, double process_var,
                                  double obs_var);

/// 4-state planar constant-velocity model [x, vx, y, vy] with both
/// positions observed; used for vehicle/GPS streams.
StateSpaceModel MakeConstantVelocity2DModel(double dt, double accel_var,
                                            double obs_var);

/// 6-state planar constant-acceleration model [x, vx, ax, y, vy, ay] with
/// both positions observed; exercises the mid-size (dim-6) fast path.
/// `jerk_var` is the white-noise-jerk spectral density per axis.
StateSpaceModel MakeConstantAcceleration2DModel(double dt, double jerk_var,
                                                double obs_var);

/// 8-state planar constant-jerk model [x, vx, ax, jx, y, vy, ay, jy] with
/// both positions observed; fills the full inline-storage envelope
/// (state_dim = 8). `snap_var` is the white-noise-snap spectral density
/// per axis.
StateSpaceModel MakeConstantJerk2DModel(double dt, double snap_var,
                                        double obs_var);

/// 4-state trend + seasonality model: a constant-velocity local trend
/// block [level, slope] plus a harmonic block [s, c] at angular frequency
/// `omega`, observing level + s. Fits diurnal signals riding on weather
/// fronts — the composite structure of real sensor streams.
StateSpaceModel MakeTrendSeasonalModel(double omega, double dt,
                                       double trend_var, double seasonal_var,
                                       double obs_var);

}  // namespace kc

#endif  // KALMANCAST_KALMAN_MODEL_H_
