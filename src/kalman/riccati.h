#ifndef KALMANCAST_KALMAN_RICCATI_H_
#define KALMANCAST_KALMAN_RICCATI_H_

namespace kc {

/// Closed-form steady-state quantities for the scalar (1-state, 1-obs)
/// Kalman filter x' = f x + w (var q), z = h x + v (var r). Used by tests
/// to validate the iterative filter against analytic fixed points.
struct ScalarSteadyState {
  double p_predict;  ///< Steady-state prior (pre-update) variance.
  double p_update;   ///< Steady-state posterior (post-update) variance.
  double gain;       ///< Steady-state Kalman gain.
};

/// Solves the scalar discrete algebraic Riccati equation
///   p = f^2 p r / (h^2 p + r) + q
/// for its positive root. Requires h != 0, r > 0, q >= 0.
ScalarSteadyState SolveScalarDare(double f, double q, double h, double r);

}  // namespace kc

#endif  // KALMANCAST_KALMAN_RICCATI_H_
