#include "kalman/model_bank.h"

#include <algorithm>
#include <cassert>

namespace kc {

ModelBank::ModelBank(size_t window) : window_(std::max<size_t>(window, 1)) {}

void ModelBank::AddFilter(KalmanFilter filter) {
  assert(filters_.empty() || filter.obs_dim() == filters_.front().obs_dim());
  filters_.push_back(std::move(filter));
  loglik_.emplace_back();
}

void ModelBank::Predict() {
  for (auto& f : filters_) f.Predict();
}

Status ModelBank::Update(const Vector& z) {
  assert(!filters_.empty());
  Status first_error = Status::Ok();
  for (size_t i = 0; i < filters_.size(); ++i) {
    Status s = filters_[i].Update(z);
    if (s.ok()) {
      loglik_[i].push_back(filters_[i].last_log_likelihood());
      if (loglik_[i].size() > window_) loglik_[i].pop_front();
    } else if (first_error.ok()) {
      first_error = s;
    }
  }
  size_t best = active_;
  double best_score = Score(active_);
  for (size_t i = 0; i < filters_.size(); ++i) {
    double score = Score(i);
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  if (best != active_) {
    active_ = best;
    ++switch_count_;
  }
  return first_error;
}

double ModelBank::Score(size_t i) const {
  assert(i < loglik_.size());
  if (loglik_[i].empty()) return -1e300;
  double sum = 0.0;
  for (double v : loglik_[i]) sum += v;
  return sum / static_cast<double>(loglik_[i].size());
}

}  // namespace kc
