#include "kalman/ukf.h"

#include <cassert>
#include <cmath>

#include "linalg/decomp.h"
#include "linalg/kernels.h"

namespace kc {

UnscentedKalmanFilter::UnscentedKalmanFilter(NonlinearModel model, Vector x0,
                                             Matrix p0)
    : UnscentedKalmanFilter(std::move(model), std::move(x0), std::move(p0),
                            Params()) {}

UnscentedKalmanFilter::UnscentedKalmanFilter(NonlinearModel model, Vector x0,
                                             Matrix p0, Params params)
    : model_(std::move(model)),
      params_(params),
      x_(std::move(x0)),
      p_(std::move(p0)) {
  assert(model_.Validate().ok());
  assert(x_.size() == model_.state_dim);
  double n = static_cast<double>(model_.state_dim);
  lambda_ = params_.alpha * params_.alpha * (n + params_.kappa) - n;
  size_t count = 2 * model_.state_dim + 1;
  wm_.assign(count, 1.0 / (2.0 * (n + lambda_)));
  wc_ = wm_;
  wm_[0] = lambda_ / (n + lambda_);
  wc_[0] = wm_[0] + (1.0 - params_.alpha * params_.alpha + params_.beta);
}

Status UnscentedKalmanFilter::SigmaPoints(const Vector& x, const Matrix& p,
                                          std::vector<Vector>* points) {
  size_t n = model_.state_dim;
  double scale = static_cast<double>(n) + lambda_;
  ws_.scaled.ResizeUninit(p.rows(), p.cols());
  {
    const double* pp = p.data().data();
    double* ps = ws_.scaled.data().data();
    for (size_t i = 0; i < p.data().size(); ++i) ps[i] = pp[i] * scale;
  }
  if (!Cholesky::FactorInto(ws_.scaled, &ws_.l)) {
    // Retry with a small diagonal jitter; covariances can brush the PSD
    // boundary after aggressive updates.
    Matrix jittered = ws_.scaled + Matrix::ScalarDiagonal(
                                       n, 1e-9 * (1.0 + ws_.scaled.MaxAbs()));
    if (!Cholesky::FactorInto(jittered, &ws_.l)) {
      return Status::FailedPrecondition("sigma-point covariance not PD");
    }
  }
  const Matrix& l = ws_.l;
  points->clear();
  points->reserve(2 * n + 1);
  points->push_back(x);
  for (size_t i = 0; i < n; ++i) {
    Vector column(n);
    for (size_t r = 0; r < n; ++r) column[r] = l(r, i);
    points->push_back(x + column);
    points->push_back(x - column);
  }
  return Status::Ok();
}

void UnscentedKalmanFilter::Predict() {
  // All temporaries route through ws_; the sigma-point containers keep
  // their capacity and their Vectors stay inline, so steady-state steps
  // perform zero heap allocations while remaining bit-identical to the
  // operator-based implementation they replaced.
  if (!SigmaPoints(x_, p_, &ws_.sigma).ok()) {
    // Degenerate covariance: fall back to propagating the mean only and
    // inflating by Q, which keeps the filter alive.
    x_ = model_.f(x_);
    p_ += model_.q;
    p_.Symmetrize();
    return;
  }
  size_t n = model_.state_dim;
  ws_.propagated.clear();
  ws_.propagated.reserve(ws_.sigma.size());
  for (const Vector& s : ws_.sigma) ws_.propagated.push_back(model_.f(s));

  ws_.mean.ResizeUninit(n);
  ws_.mean.SetZero();
  for (size_t i = 0; i < ws_.propagated.size(); ++i) {
    AddScaledInPlace(wm_[i], ws_.propagated[i], &ws_.mean);
  }
  ws_.cov.ResizeUninit(n, n);
  ws_.cov.SetZero();
  for (size_t i = 0; i < ws_.propagated.size(); ++i) {
    SubInto(ws_.propagated[i], ws_.mean, &ws_.d);
    AddScaledOuterInPlace(wc_[i], ws_.d, &ws_.cov);
  }
  ws_.cov += model_.q;
  ws_.cov.Symmetrize();
  x_ = ws_.mean;
  p_ = ws_.cov;
}

Status UnscentedKalmanFilter::Update(const Vector& z) {
  if (z.size() != model_.obs_dim) {
    return Status::InvalidArgument("observation dimension mismatch");
  }
  KC_RETURN_IF_ERROR(SigmaPoints(x_, p_, &ws_.sigma));

  size_t n = model_.state_dim;
  size_t m = model_.obs_dim;
  ws_.zs.clear();
  ws_.zs.reserve(ws_.sigma.size());
  for (const Vector& s : ws_.sigma) ws_.zs.push_back(model_.h(s));

  ws_.z_mean.ResizeUninit(m);
  ws_.z_mean.SetZero();
  for (size_t i = 0; i < ws_.zs.size(); ++i) {
    AddScaledInPlace(wm_[i], ws_.zs[i], &ws_.z_mean);
  }

  ws_.s.ResizeUninit(m, m);
  ws_.s.SetZero();
  ws_.cross.ResizeUninit(n, m);
  ws_.cross.SetZero();
  for (size_t i = 0; i < ws_.zs.size(); ++i) {
    SubInto(ws_.zs[i], ws_.z_mean, &ws_.dz);
    SubInto(ws_.sigma[i], x_, &ws_.dx);
    AddScaledOuterInPlace(wc_[i], ws_.dz, ws_.dz, &ws_.s);
    AddScaledOuterInPlace(wc_[i], ws_.dx, ws_.dz, &ws_.cross);
  }
  ws_.s += model_.r;
  ws_.s.Symmetrize();
  if (!Cholesky::FactorInto(ws_.s, &ws_.ls)) {
    return Status::FailedPrecondition("innovation covariance not PD");
  }

  // K = cross * S^{-1}, computed as solve(S, cross^T)^T to stay factored.
  TransposeInto(ws_.cross, &ws_.crosst);
  Cholesky::SolveInto(ws_.ls, ws_.crosst, &ws_.kt);
  TransposeInto(ws_.kt, &ws_.k);
  SubInto(z, ws_.z_mean, &ws_.nu);
  MultiplyInto(ws_.k, ws_.nu, &ws_.knu);
  x_ += ws_.knu;
  SandwichInto(ws_.k, ws_.s, &ws_.tmp1, &ws_.ksk);
  p_ -= ws_.ksk;
  p_.Symmetrize();

  innovation_ = ws_.nu;
  Cholesky::SolveInto(ws_.ls, ws_.nu, &ws_.sinv_nu);
  nis_ = ws_.nu.Dot(ws_.sinv_nu);
  ++update_count_;
  return Status::Ok();
}

void UnscentedKalmanFilter::Reset(Vector x0, Matrix p0) {
  assert(x0.size() == model_.state_dim);
  x_ = std::move(x0);
  p_ = std::move(p0);
  innovation_ = Vector();
  nis_ = 0.0;
  update_count_ = 0;
}

}  // namespace kc
