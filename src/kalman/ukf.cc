#include "kalman/ukf.h"

#include <cassert>
#include <cmath>

#include "linalg/decomp.h"

namespace kc {

UnscentedKalmanFilter::UnscentedKalmanFilter(NonlinearModel model, Vector x0,
                                             Matrix p0)
    : UnscentedKalmanFilter(std::move(model), std::move(x0), std::move(p0),
                            Params()) {}

UnscentedKalmanFilter::UnscentedKalmanFilter(NonlinearModel model, Vector x0,
                                             Matrix p0, Params params)
    : model_(std::move(model)),
      params_(params),
      x_(std::move(x0)),
      p_(std::move(p0)) {
  assert(model_.Validate().ok());
  assert(x_.size() == model_.state_dim);
  double n = static_cast<double>(model_.state_dim);
  lambda_ = params_.alpha * params_.alpha * (n + params_.kappa) - n;
  size_t count = 2 * model_.state_dim + 1;
  wm_.assign(count, 1.0 / (2.0 * (n + lambda_)));
  wc_ = wm_;
  wm_[0] = lambda_ / (n + lambda_);
  wc_[0] = wm_[0] + (1.0 - params_.alpha * params_.alpha + params_.beta);
}

Status UnscentedKalmanFilter::SigmaPoints(const Vector& x, const Matrix& p,
                                          std::vector<Vector>* points) const {
  size_t n = model_.state_dim;
  double scale = static_cast<double>(n) + lambda_;
  Matrix scaled = scale * p;
  Cholesky chol(scaled);
  if (!chol.ok()) {
    // Retry with a small diagonal jitter; covariances can brush the PSD
    // boundary after aggressive updates.
    Matrix jittered = scaled + Matrix::ScalarDiagonal(n, 1e-9 * (1.0 + scaled.MaxAbs()));
    chol = Cholesky(jittered);
    if (!chol.ok()) {
      return Status::FailedPrecondition("sigma-point covariance not PD");
    }
  }
  const Matrix& l = chol.L();
  points->clear();
  points->reserve(2 * n + 1);
  points->push_back(x);
  for (size_t i = 0; i < n; ++i) {
    Vector column(n);
    for (size_t r = 0; r < n; ++r) column[r] = l(r, i);
    points->push_back(x + column);
    points->push_back(x - column);
  }
  return Status::Ok();
}

void UnscentedKalmanFilter::Predict() {
  std::vector<Vector> sigma;
  if (!SigmaPoints(x_, p_, &sigma).ok()) {
    // Degenerate covariance: fall back to propagating the mean only and
    // inflating by Q, which keeps the filter alive.
    x_ = model_.f(x_);
    p_ += model_.q;
    p_.Symmetrize();
    return;
  }
  size_t n = model_.state_dim;
  std::vector<Vector> propagated;
  propagated.reserve(sigma.size());
  for (const Vector& s : sigma) propagated.push_back(model_.f(s));

  Vector mean(n);
  for (size_t i = 0; i < propagated.size(); ++i) mean += wm_[i] * propagated[i];
  Matrix cov(n, n);
  for (size_t i = 0; i < propagated.size(); ++i) {
    Vector d = propagated[i] - mean;
    cov += wc_[i] * Matrix::Outer(d, d);
  }
  cov += model_.q;
  cov.Symmetrize();
  x_ = std::move(mean);
  p_ = std::move(cov);
}

Status UnscentedKalmanFilter::Update(const Vector& z) {
  if (z.size() != model_.obs_dim) {
    return Status::InvalidArgument("observation dimension mismatch");
  }
  std::vector<Vector> sigma;
  KC_RETURN_IF_ERROR(SigmaPoints(x_, p_, &sigma));

  size_t n = model_.state_dim;
  size_t m = model_.obs_dim;
  std::vector<Vector> zs;
  zs.reserve(sigma.size());
  for (const Vector& s : sigma) zs.push_back(model_.h(s));

  Vector z_mean(m);
  for (size_t i = 0; i < zs.size(); ++i) z_mean += wm_[i] * zs[i];

  Matrix s_mat(m, m);
  Matrix cross(n, m);
  for (size_t i = 0; i < zs.size(); ++i) {
    Vector dz = zs[i] - z_mean;
    Vector dx = sigma[i] - x_;
    s_mat += wc_[i] * Matrix::Outer(dz, dz);
    cross += wc_[i] * Matrix::Outer(dx, dz);
  }
  s_mat += model_.r;
  s_mat.Symmetrize();
  Cholesky chol(s_mat);
  if (!chol.ok()) {
    return Status::FailedPrecondition("innovation covariance not PD");
  }

  // K = cross * S^{-1}.
  Matrix k = chol.Solve(cross.Transposed()).Transposed();
  Vector nu = z - z_mean;
  x_ += k * nu;
  p_ -= Sandwich(k, s_mat);
  p_.Symmetrize();

  innovation_ = nu;
  nis_ = nu.Dot(chol.Solve(nu));
  ++update_count_;
  return Status::Ok();
}

void UnscentedKalmanFilter::Reset(Vector x0, Matrix p0) {
  assert(x0.size() == model_.state_dim);
  x_ = std::move(x0);
  p_ = std::move(p0);
  innovation_ = Vector();
  nis_ = 0.0;
  update_count_ = 0;
}

}  // namespace kc
