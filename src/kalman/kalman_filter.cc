#include "kalman/kalman_filter.h"

#include <cmath>
#include <numbers>

#include "linalg/decomp.h"
#include "linalg/kernels.h"

namespace kc {

KalmanFilter::KalmanFilter(StateSpaceModel model, Vector x0, Matrix p0,
                           UpdateForm form)
    : model_(std::move(model)), form_(form), x_(std::move(x0)), p_(std::move(p0)) {
  assert(model_.Validate().ok());
  assert(x_.size() == model_.state_dim());
  assert(p_.rows() == model_.state_dim() && p_.cols() == model_.state_dim());
}

void KalmanFilter::Predict() {
  // All temporaries live in ws_, so the steady-state time update performs
  // zero heap allocations; the kernels are bit-identical to the
  // value-returning operators they replaced.
  MultiplyInto(model_.f, x_, &ws_.fx);
  x_ = ws_.fx;
  SandwichInto(model_.f, p_, &ws_.tmp1, &ws_.j1);
  AddInto(ws_.j1, model_.q, &p_);
  p_.Symmetrize();
}

void KalmanFilter::PredictSteps(size_t steps) {
  for (size_t i = 0; i < steps; ++i) Predict();
}

Status KalmanFilter::Update(const Vector& z) {
  if (z.size() != model_.obs_dim()) {
    return Status::InvalidArgument("observation dimension mismatch");
  }
  const Matrix& h = model_.h;
  MultiplyInto(h, x_, &ws_.hx);
  SubInto(z, ws_.hx, &ws_.nu);

  SandwichInto(h, p_, &ws_.tmp1, &ws_.s);
  ws_.s += model_.r;
  ws_.s.Symmetrize();
  if (!Cholesky::FactorInto(ws_.s, &ws_.l)) {
    return Status::FailedPrecondition("innovation covariance not PD");
  }

  // Gain K = P H^T S^{-1}; computed as solve(S, H P)^T to stay factored.
  MultiplyTransposedInto(p_, h, &ws_.ph_t);    // n x m
  TransposeInto(ws_.ph_t, &ws_.tmp1);          // m x n
  Cholesky::SolveInto(ws_.l, ws_.tmp1, &ws_.kt);  // m x n, equals S^{-1} H P
  TransposeInto(ws_.kt, &ws_.k);               // n x m

  MultiplyInto(ws_.k, ws_.nu, &ws_.knu);
  x_ += ws_.knu;

  // The gain complement I - K H feeds both covariance forms; compute it
  // once above the branch.
  MultiplyInto(ws_.k, h, &ws_.kh);
  IdentityMinusInto(ws_.kh, &ws_.i_kh);
  if (form_ == UpdateForm::kJoseph) {
    SandwichInto(ws_.i_kh, p_, &ws_.tmp1, &ws_.j1);
    SandwichInto(ws_.k, model_.r, &ws_.tmp1, &ws_.krk);
    AddInto(ws_.j1, ws_.krk, &p_);
  } else {
    MultiplyInto(ws_.i_kh, p_, &ws_.j1);
    p_ = ws_.j1;
  }
  p_.Symmetrize();

  // Diagnostics.
  innovation_ = ws_.nu;
  s_ = ws_.s;
  Cholesky::SolveInto(ws_.l, ws_.nu, &ws_.sinv_nu);
  nis_ = ws_.nu.Dot(ws_.sinv_nu);
  double m = static_cast<double>(obs_dim());
  log_likelihood_ = -0.5 * (nis_ + Cholesky::LogDeterminantOf(ws_.l) +
                            m * std::log(2.0 * std::numbers::pi));
  ++update_count_;
  return Status::Ok();
}

Vector KalmanFilter::PredictObservation() const { return model_.h * x_; }

Matrix KalmanFilter::InnovationCovariance() const {
  Matrix s = Sandwich(model_.h, p_) + model_.r;
  s.Symmetrize();
  return s;
}

void KalmanFilter::InnovationCovarianceInto(Matrix* out) {
  SandwichInto(model_.h, p_, &ws_.tmp1, out);
  *out += model_.r;
  out->Symmetrize();
}

void KalmanFilter::Reset(Vector x0, Matrix p0) {
  assert(x0.size() == model_.state_dim());
  assert(p0.rows() == model_.state_dim() && p0.cols() == model_.state_dim());
  x_ = std::move(x0);
  p_ = std::move(p0);
  innovation_ = Vector();
  s_ = Matrix();
  nis_ = 0.0;
  log_likelihood_ = 0.0;
  update_count_ = 0;
}

std::vector<double> KalmanFilter::SerializeState() const {
  std::vector<double> buf;
  buf.reserve(state_dim() + state_dim() * state_dim());
  buf.insert(buf.end(), x_.data().begin(), x_.data().end());
  buf.insert(buf.end(), p_.data().begin(), p_.data().end());
  return buf;
}

Status KalmanFilter::DeserializeState(const std::vector<double>& buf) {
  size_t n = state_dim();
  if (buf.size() != n + n * n) {
    return Status::InvalidArgument("serialized state has wrong size");
  }
  for (size_t i = 0; i < n; ++i) x_[i] = buf[i];
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) p_(r, c) = buf[n + r * n + c];
  }
  p_.Symmetrize();
  return Status::Ok();
}

}  // namespace kc
