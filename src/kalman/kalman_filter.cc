#include "kalman/kalman_filter.h"

#include <cmath>
#include <numbers>

#include "linalg/decomp.h"

namespace kc {

KalmanFilter::KalmanFilter(StateSpaceModel model, Vector x0, Matrix p0,
                           UpdateForm form)
    : model_(std::move(model)), form_(form), x_(std::move(x0)), p_(std::move(p0)) {
  assert(model_.Validate().ok());
  assert(x_.size() == model_.state_dim());
  assert(p_.rows() == model_.state_dim() && p_.cols() == model_.state_dim());
}

void KalmanFilter::Predict() {
  x_ = model_.f * x_;
  p_ = Sandwich(model_.f, p_) + model_.q;
  p_.Symmetrize();
}

void KalmanFilter::PredictSteps(size_t steps) {
  for (size_t i = 0; i < steps; ++i) Predict();
}

Status KalmanFilter::Update(const Vector& z) {
  if (z.size() != model_.obs_dim()) {
    return Status::InvalidArgument("observation dimension mismatch");
  }
  const Matrix& h = model_.h;
  Vector predicted = h * x_;
  Vector nu = z - predicted;

  Matrix s = Sandwich(h, p_) + model_.r;
  s.Symmetrize();
  Cholesky chol(s);
  if (!chol.ok()) {
    return Status::FailedPrecondition("innovation covariance not PD");
  }

  // Gain K = P H^T S^{-1}; computed as solve(S, H P)^T to stay factored.
  Matrix ph_t = p_ * h.Transposed();          // n x m
  Matrix k = chol.Solve(ph_t.Transposed());   // m x n, equals S^{-1} H P
  k = k.Transposed();                         // n x m

  x_ += k * nu;

  if (form_ == UpdateForm::kJoseph) {
    Matrix i_kh = Matrix::Identity(state_dim()) - k * h;
    p_ = Sandwich(i_kh, p_) + Sandwich(k, model_.r);
  } else {
    Matrix i_kh = Matrix::Identity(state_dim()) - k * h;
    p_ = i_kh * p_;
  }
  p_.Symmetrize();

  // Diagnostics.
  innovation_ = nu;
  s_ = s;
  Vector s_inv_nu = chol.Solve(nu);
  nis_ = nu.Dot(s_inv_nu);
  double m = static_cast<double>(obs_dim());
  log_likelihood_ =
      -0.5 * (nis_ + chol.LogDeterminant() + m * std::log(2.0 * std::numbers::pi));
  ++update_count_;
  return Status::Ok();
}

Vector KalmanFilter::PredictObservation() const { return model_.h * x_; }

Matrix KalmanFilter::InnovationCovariance() const {
  Matrix s = Sandwich(model_.h, p_) + model_.r;
  s.Symmetrize();
  return s;
}

void KalmanFilter::Reset(Vector x0, Matrix p0) {
  assert(x0.size() == model_.state_dim());
  assert(p0.rows() == model_.state_dim() && p0.cols() == model_.state_dim());
  x_ = std::move(x0);
  p_ = std::move(p0);
  innovation_ = Vector();
  s_ = Matrix();
  nis_ = 0.0;
  log_likelihood_ = 0.0;
  update_count_ = 0;
}

std::vector<double> KalmanFilter::SerializeState() const {
  std::vector<double> buf;
  buf.reserve(state_dim() + state_dim() * state_dim());
  buf.insert(buf.end(), x_.data().begin(), x_.data().end());
  buf.insert(buf.end(), p_.data().begin(), p_.data().end());
  return buf;
}

Status KalmanFilter::DeserializeState(const std::vector<double>& buf) {
  size_t n = state_dim();
  if (buf.size() != n + n * n) {
    return Status::InvalidArgument("serialized state has wrong size");
  }
  for (size_t i = 0; i < n; ++i) x_[i] = buf[i];
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) p_(r, c) = buf[n + r * n + c];
  }
  p_.Symmetrize();
  return Status::Ok();
}

}  // namespace kc
