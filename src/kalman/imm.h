#ifndef KALMANCAST_KALMAN_IMM_H_
#define KALMANCAST_KALMAN_IMM_H_

#include <vector>

#include "common/status.h"
#include "kalman/kalman_filter.h"

namespace kc {

/// Interacting Multiple Model estimator.
///
/// Where ModelBank hard-switches to the best-scoring filter, the IMM
/// soft-mixes a bank of filters that share one state space (e.g. a quiet
/// low-Q model and a maneuvering high-Q model) according to a Markov
/// mode-transition matrix. This is the classical answer to streams that
/// alternate between behavioural modes faster than a switching heuristic
/// can follow. All steps are deterministic, so IMM replicas stay in
/// lockstep under the suppression protocol just like single filters.
class Imm {
 public:
  /// `filters`: bank members; all must share state_dim and obs_dim.
  /// `transition(i, j)`: P(mode j at k+1 | mode i at k); rows must sum
  /// to 1. `initial_prob`: prior mode probabilities (sums to 1).
  Imm(std::vector<KalmanFilter> filters, Matrix transition,
      Vector initial_prob);

  /// Validates the configuration (called by the constructor; exposed for
  /// tests).
  Status Validate() const;

  /// IMM step 1+2: mode mixing, then per-filter time update.
  void Predict();

  /// IMM step 3+4: per-filter measurement update, then mode-probability
  /// update from the filters' likelihoods.
  Status Update(const Vector& z);

  /// Probability-weighted combined state estimate.
  Vector CombinedState() const;
  /// Combined covariance (includes spread-of-means term).
  Matrix CombinedCovariance() const;
  /// Combined predicted observation H x for the (shared) H of filter 0.
  Vector PredictObservation() const;

  const Vector& mode_probabilities() const { return mu_; }
  size_t size() const { return filters_.size(); }
  const KalmanFilter& filter(size_t i) const { return filters_[i]; }
  /// Index of the currently most probable mode.
  size_t MostLikelyMode() const;

  /// Flattens the full estimator state — mode probabilities followed by
  /// each member filter's (x, P) — for replica synchronization under the
  /// suppression protocol. Size = k + k*(n + n^2).
  std::vector<double> SerializeState() const;

  /// Restores SerializeState() output (shape-checked).
  Status DeserializeState(const std::vector<double>& buf);

  /// Reinitializes every member filter and the mode probabilities.
  void ResetAll(const Vector& x0, const Matrix& p0, Vector initial_prob);

 private:
  std::vector<KalmanFilter> filters_;
  Matrix transition_;
  Vector mu_;  ///< Current mode probabilities.

  // Persistent mixing buffers (sized once at construction) so steady-state
  // Predict() performs zero heap allocations.
  std::vector<Vector> mixed_x_;  ///< Mixed initial states, one per mode.
  std::vector<Matrix> mixed_p_;  ///< Mixed initial covariances, one per mode.
};

}  // namespace kc

#endif  // KALMANCAST_KALMAN_IMM_H_
