#include "kalman/imm.h"

#include <cassert>
#include <cmath>

#include "linalg/kernels.h"

namespace kc {

namespace {
constexpr double kProbFloor = 1e-12;
}  // namespace

Imm::Imm(std::vector<KalmanFilter> filters, Matrix transition,
         Vector initial_prob)
    : filters_(std::move(filters)),
      transition_(std::move(transition)),
      mu_(std::move(initial_prob)) {
  assert(Validate().ok());
  mixed_x_.resize(filters_.size());
  mixed_p_.resize(filters_.size());
}

Status Imm::Validate() const {
  if (filters_.size() < 2) {
    return Status::InvalidArgument("IMM needs at least two modes");
  }
  size_t n = filters_.front().state_dim();
  size_t m = filters_.front().obs_dim();
  for (const auto& f : filters_) {
    if (f.state_dim() != n || f.obs_dim() != m) {
      return Status::InvalidArgument("IMM filters must share dimensions");
    }
  }
  size_t k = filters_.size();
  if (transition_.rows() != k || transition_.cols() != k) {
    return Status::InvalidArgument("transition matrix shape mismatch");
  }
  for (size_t i = 0; i < k; ++i) {
    double row = 0.0;
    for (size_t j = 0; j < k; ++j) {
      if (transition_(i, j) < 0.0) {
        return Status::InvalidArgument("negative transition probability");
      }
      row += transition_(i, j);
    }
    if (std::fabs(row - 1.0) > 1e-9) {
      return Status::InvalidArgument("transition rows must sum to 1");
    }
  }
  if (mu_.size() != k) {
    return Status::InvalidArgument("initial probabilities shape mismatch");
  }
  double sum = 0.0;
  for (size_t i = 0; i < k; ++i) sum += mu_[i];
  if (std::fabs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("initial probabilities must sum to 1");
  }
  return Status::Ok();
}

void Imm::Predict() {
  size_t k = filters_.size();
  size_t n = filters_.front().state_dim();

  // Predicted mode probabilities: c_j = sum_i pi_ij mu_i.
  Vector c(k);
  for (size_t j = 0; j < k; ++j) {
    for (size_t i = 0; i < k; ++i) c[j] += transition_(i, j) * mu_[i];
    c[j] = std::max(c[j], kProbFloor);
  }

  // Mixing probabilities mu_{i|j} and mixed initial conditions, written
  // into the persistent buffers. All mixing is computed against the
  // pre-update filter states before any Reset below, and the fused
  // accumulators are bit-identical to the operator chains they replaced.
  for (size_t j = 0; j < k; ++j) {
    Vector& x0 = mixed_x_[j];
    x0.ResizeUninit(n);
    x0.SetZero();
    for (size_t i = 0; i < k; ++i) {
      double w = transition_(i, j) * mu_[i] / c[j];
      AddScaledInPlace(w, filters_[i].state(), &x0);
    }
    Matrix& p0 = mixed_p_[j];
    p0.ResizeUninit(n, n);
    p0.SetZero();
    for (size_t i = 0; i < k; ++i) {
      double w = transition_(i, j) * mu_[i] / c[j];
      Vector d = filters_[i].state() - x0;
      AddScaledPlusOuterInPlace(w, filters_[i].covariance(), d, &p0);
    }
    p0.Symmetrize();
  }

  for (size_t j = 0; j < k; ++j) {
    filters_[j].Reset(mixed_x_[j], mixed_p_[j]);
    filters_[j].Predict();
  }
  mu_ = c;
}

Status Imm::Update(const Vector& z) {
  size_t k = filters_.size();
  Vector likelihood(k);
  for (size_t j = 0; j < k; ++j) {
    KC_RETURN_IF_ERROR(filters_[j].Update(z));
    likelihood[j] = std::exp(filters_[j].last_log_likelihood());
  }
  double norm = 0.0;
  for (size_t j = 0; j < k; ++j) {
    mu_[j] = std::max(mu_[j] * likelihood[j], kProbFloor);
    norm += mu_[j];
  }
  for (size_t j = 0; j < k; ++j) mu_[j] /= norm;
  return Status::Ok();
}

Vector Imm::CombinedState() const {
  size_t n = filters_.front().state_dim();
  Vector x(n);
  for (size_t j = 0; j < filters_.size(); ++j) {
    x += mu_[j] * filters_[j].state();
  }
  return x;
}

Matrix Imm::CombinedCovariance() const {
  size_t n = filters_.front().state_dim();
  Vector x = CombinedState();
  Matrix p(n, n);
  for (size_t j = 0; j < filters_.size(); ++j) {
    Vector d = filters_[j].state() - x;
    p += mu_[j] * (filters_[j].covariance() + Matrix::Outer(d, d));
  }
  p.Symmetrize();
  return p;
}

Vector Imm::PredictObservation() const {
  return filters_.front().model().h * CombinedState();
}

size_t Imm::MostLikelyMode() const {
  size_t best = 0;
  for (size_t j = 1; j < mu_.size(); ++j) {
    if (mu_[j] > mu_[best]) best = j;
  }
  return best;
}

std::vector<double> Imm::SerializeState() const {
  std::vector<double> buf;
  size_t k = filters_.size();
  size_t n = filters_.front().state_dim();
  buf.reserve(k + k * (n + n * n));
  buf.insert(buf.end(), mu_.data().begin(), mu_.data().end());
  for (const KalmanFilter& f : filters_) {
    std::vector<double> fs = f.SerializeState();
    buf.insert(buf.end(), fs.begin(), fs.end());
  }
  return buf;
}

Status Imm::DeserializeState(const std::vector<double>& buf) {
  size_t k = filters_.size();
  size_t n = filters_.front().state_dim();
  size_t per_filter = n + n * n;
  if (buf.size() != k + k * per_filter) {
    return Status::InvalidArgument("serialized IMM state has wrong size");
  }
  for (size_t j = 0; j < k; ++j) mu_[j] = buf[j];
  for (size_t j = 0; j < k; ++j) {
    std::vector<double> fs(buf.begin() + static_cast<long>(k + j * per_filter),
                           buf.begin() +
                               static_cast<long>(k + (j + 1) * per_filter));
    KC_RETURN_IF_ERROR(filters_[j].DeserializeState(fs));
  }
  return Status::Ok();
}

void Imm::ResetAll(const Vector& x0, const Matrix& p0, Vector initial_prob) {
  assert(initial_prob.size() == filters_.size());
  for (KalmanFilter& f : filters_) f.Reset(x0, p0);
  mu_ = std::move(initial_prob);
}

}  // namespace kc
