#include "kalman/smoother.h"

#include "linalg/decomp.h"
#include "linalg/kernels.h"

namespace kc {

StatusOr<std::vector<SmoothedEstimate>> RtsSmooth(
    const StateSpaceModel& model, const Vector& x0, const Matrix& p0,
    const std::vector<Vector>& observations) {
  KC_RETURN_IF_ERROR(model.Validate());
  if (x0.size() != model.state_dim()) {
    return Status::InvalidArgument("x0 dimension mismatch");
  }
  if (observations.empty()) {
    return Status::InvalidArgument("no observations to smooth");
  }

  size_t n = observations.size();
  // Forward pass: store prior and posterior moments per step.
  std::vector<Vector> x_prior(n), x_post(n);
  std::vector<Matrix> p_prior(n), p_post(n);

  KalmanFilter kf(model, x0, p0);
  for (size_t k = 0; k < n; ++k) {
    kf.Predict();
    x_prior[k] = kf.state();
    p_prior[k] = kf.covariance();
    KC_RETURN_IF_ERROR(kf.Update(observations[k]));
    x_post[k] = kf.state();
    p_post[k] = kf.covariance();
  }

  // Backward pass. Scratch is hoisted out of the loop and reused through
  // the destination-passing kernels, so each step is allocation-free.
  std::vector<SmoothedEstimate> out(n);
  out[n - 1] = {x_post[n - 1], p_post[n - 1]};
  Matrix l, fp, ct, c, dp, tmp1, sand;
  Vector dx, cdx;
  for (size_t k = n - 1; k-- > 0;) {
    // Gain C = P_k F^T (P_prior_{k+1})^{-1}, computed via a solve against
    // the (symmetric PD) prior covariance.
    if (!Cholesky::FactorInto(p_prior[k + 1], &l)) {
      return Status::FailedPrecondition("prior covariance not PD in smoother");
    }
    MultiplyInto(model.f, p_post[k], &fp);  // F P_k
    Cholesky::SolveInto(l, fp, &ct);        // S^{-1} F P_k
    TransposeInto(ct, &c);                  // P_k F^T S^{-1}

    SubInto(out[k + 1].x, x_prior[k + 1], &dx);
    MultiplyInto(c, dx, &cdx);
    AddInto(x_post[k], cdx, &out[k].x);
    SubInto(out[k + 1].p, p_prior[k + 1], &dp);
    SandwichInto(c, dp, &tmp1, &sand);
    AddInto(p_post[k], sand, &out[k].p);
    out[k].p.Symmetrize();
  }
  return out;
}

}  // namespace kc
