#ifndef KALMANCAST_KALMAN_UKF_H_
#define KALMANCAST_KALMAN_UKF_H_

#include "common/status.h"
#include "kalman/ekf.h"  // NonlinearModel.

namespace kc {

/// Unscented Kalman filter over the same NonlinearModel the EKF uses
/// (the Jacobian callables are simply ignored).
///
/// Instead of linearizing, the UKF propagates 2n+1 deterministically
/// chosen sigma points through the exact nonlinear functions and
/// reconstructs the moments — second-order accurate where the EKF is
/// first-order, at the cost of 2n+1 function evaluations per step. All
/// steps are deterministic, so UKF replicas stay in lockstep under the
/// suppression protocol.
class UnscentedKalmanFilter {
 public:
  /// Standard UT scaling parameters. Defaults are the common
  /// (alpha=1e-1, beta=2, kappa=0) choice, robust for the small state
  /// dimensions this library targets.
  struct Params {
    double alpha = 0.1;
    double beta = 2.0;
    double kappa = 0.0;
  };

  UnscentedKalmanFilter(NonlinearModel model, Vector x0, Matrix p0);
  UnscentedKalmanFilter(NonlinearModel model, Vector x0, Matrix p0,
                        Params params);

  /// Time update via the unscented transform of f.
  void Predict();

  /// Measurement update via the unscented transform of h. Fails (state
  /// untouched) on dimension mismatch or non-PD covariances.
  Status Update(const Vector& z);

  Vector PredictObservation() const { return model_.h(x_); }

  const Vector& state() const { return x_; }
  const Matrix& covariance() const { return p_; }
  const NonlinearModel& model() const { return model_; }

  const Vector& last_innovation() const { return innovation_; }
  double last_nis() const { return nis_; }
  int64_t update_count() const { return update_count_; }

  void Reset(Vector x0, Matrix p0);

 private:
  /// Generates the 2n+1 sigma points of N(x, P); fails if P is not PD
  /// (after a jitter retry). Writes through ws_ scratch, hence non-const.
  Status SigmaPoints(const Vector& x, const Matrix& p,
                     std::vector<Vector>* points);

  /// Scratch reused across Predict/Update so steady-state UKF steps perform
  /// zero heap allocations: the sigma-point containers keep their capacity
  /// across calls and the Vectors inside them stay in inline storage.
  struct Workspace {
    Matrix scaled;   ///< (n + lambda) P.
    Matrix l;        ///< Cholesky factor for sigma-point generation.
    Matrix ls;       ///< Cholesky factor of the innovation covariance.
    Matrix s;        ///< Innovation covariance.
    Matrix cross;    ///< State/observation cross-covariance.
    Matrix crosst;   ///< cross^T.
    Matrix kt;       ///< K^T.
    Matrix k;        ///< Gain K.
    Matrix tmp1;     ///< Sandwich scratch.
    Matrix ksk;      ///< K S K^T.
    Matrix cov;      ///< Predicted covariance accumulator.
    Vector mean;     ///< Predicted mean accumulator.
    Vector z_mean;   ///< Predicted observation mean.
    Vector d;        ///< Sigma-point deviation.
    Vector dz;       ///< Observation deviation.
    Vector dx;       ///< State deviation.
    Vector nu;       ///< Innovation.
    Vector knu;      ///< K nu.
    Vector sinv_nu;  ///< S^{-1} nu.
    std::vector<Vector> sigma;       ///< Sigma points.
    std::vector<Vector> propagated;  ///< f(sigma points).
    std::vector<Vector> zs;          ///< h(sigma points).
  };

  NonlinearModel model_;
  Params params_;
  double lambda_;
  std::vector<double> wm_;  ///< Mean weights.
  std::vector<double> wc_;  ///< Covariance weights.

  Vector x_;
  Matrix p_;
  Workspace ws_;
  Vector innovation_;
  double nis_ = 0.0;
  int64_t update_count_ = 0;
};

}  // namespace kc

#endif  // KALMANCAST_KALMAN_UKF_H_
