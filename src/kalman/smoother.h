#ifndef KALMANCAST_KALMAN_SMOOTHER_H_
#define KALMANCAST_KALMAN_SMOOTHER_H_

#include <vector>

#include "common/status.h"
#include "kalman/kalman_filter.h"

namespace kc {

/// One smoothed state estimate.
struct SmoothedEstimate {
  Vector x;
  Matrix p;
};

/// Rauch–Tung–Striebel fixed-interval smoother.
///
/// The stream server archives correction history anyway (it is the basis
/// of the cached procedure); when a historical query asks for the *best*
/// reconstruction of a stream segment, running the RTS backward pass over
/// the archived observations beats the filtered (forward-only) estimates
/// everywhere except the final point. Observations are one per step,
/// starting from the prior (x0, p0); the k-th output is the estimate of
/// the state at step k given ALL observations.
StatusOr<std::vector<SmoothedEstimate>> RtsSmooth(
    const StateSpaceModel& model, const Vector& x0, const Matrix& p0,
    const std::vector<Vector>& observations);

}  // namespace kc

#endif  // KALMANCAST_KALMAN_SMOOTHER_H_
