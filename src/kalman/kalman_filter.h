#ifndef KALMANCAST_KALMAN_KALMAN_FILTER_H_
#define KALMANCAST_KALMAN_KALMAN_FILTER_H_

#include <vector>

#include "common/status.h"
#include "kalman/model.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace kc {

/// Discrete-time Kalman filter over a StateSpaceModel.
///
/// This is the prediction procedure the paper caches at both the stream
/// source and the server. Its two halves:
///   - Predict(): advance (x, P) one step through the dynamics — the server
///     does this on every tick to answer queries without any communication.
///   - Update(z): fold in a measurement — executed *identically* on both
///     sides whenever the source ships a correction, which keeps the two
///     filter replicas in lockstep.
///
/// Numerical hygiene: the covariance update defaults to the Joseph
/// stabilized form and re-symmetrizes P, so P stays symmetric PSD over
/// millions of steps (property-tested in tests/kalman_filter_test.cc).
class KalmanFilter {
 public:
  /// How Update() propagates the covariance.
  enum class UpdateForm {
    kStandard,  ///< P = (I - K H) P. Cheaper, less robust.
    kJoseph,    ///< P = (I-KH) P (I-KH)^T + K R K^T. Stabilized (default).
  };

  /// Builds a filter with initial state estimate x0 and covariance p0.
  /// The model must Validate(); construction asserts in debug builds and
  /// produces a filter whose Update() fails otherwise.
  KalmanFilter(StateSpaceModel model, Vector x0, Matrix p0,
               UpdateForm form = UpdateForm::kJoseph);

  /// Time update: x <- F x, P <- F P F^T + Q.
  void Predict();

  /// Runs Predict() `steps` times.
  void PredictSteps(size_t steps);

  /// Measurement update with observation z (dimension obs_dim).
  /// On success also records innovation, innovation covariance, NIS and
  /// the Gaussian log-likelihood of z. Fails (without modifying state) if
  /// z has the wrong dimension or the innovation covariance is singular.
  Status Update(const Vector& z);

  /// Expected observation H x for the current state.
  Vector PredictObservation() const;

  /// Innovation covariance S = H P H^T + R for the current state.
  Matrix InnovationCovariance() const;

  /// Destination-passing variant of InnovationCovariance for hot paths:
  /// computes S into caller-owned `*out` using this filter's scratch
  /// workspace, performing no heap allocations in steady state. `out` must
  /// not alias this filter's own matrices.
  void InnovationCovarianceInto(Matrix* out);

  const Vector& state() const { return x_; }
  const Matrix& covariance() const { return p_; }
  const StateSpaceModel& model() const { return model_; }
  /// Mutable model access for adaptive noise estimation.
  StateSpaceModel& mutable_model() { return model_; }

  size_t state_dim() const { return model_.state_dim(); }
  size_t obs_dim() const { return model_.obs_dim(); }

  /// Diagnostics from the most recent successful Update().
  const Vector& last_innovation() const { return innovation_; }
  const Matrix& last_innovation_covariance() const { return s_; }
  /// Normalized innovation squared nu^T S^{-1} nu (chi-squared with obs_dim
  /// degrees of freedom when the model matches reality).
  double last_nis() const { return nis_; }
  /// log N(z; Hx, S) of the most recent update's observation.
  double last_log_likelihood() const { return log_likelihood_; }
  /// Number of successful Update() calls since construction/Reset.
  int64_t update_count() const { return update_count_; }

  /// Reinitializes state and covariance, clearing diagnostics.
  void Reset(Vector x0, Matrix p0);

  /// Flattens (x, P) for transmission in a sync message: x's entries
  /// followed by P's rows. Size = state_dim + state_dim^2.
  std::vector<double> SerializeState() const;

  /// Restores (x, P) from SerializeState() output.
  Status DeserializeState(const std::vector<double>& buf);

 private:
  /// Scratch storage reused across Predict/Update so steady-state filter
  /// steps perform zero heap allocations: every temporary the update needs
  /// lives here, is reshaped once on first use, and is fully overwritten by
  /// the *Into kernels each step (see docs/PERF.md).
  struct Workspace {
    Vector fx;       ///< F x.
    Vector hx;       ///< H x (predicted observation).
    Vector nu;       ///< Innovation z - H x.
    Vector knu;      ///< K nu.
    Vector sinv_nu;  ///< S^{-1} nu (NIS solve).
    Matrix tmp1;     ///< Sandwich scratch (F P, H P, (I-KH) P, K R).
    Matrix s;        ///< Innovation covariance H P H^T + R.
    Matrix l;        ///< Cholesky factor of s.
    Matrix ph_t;     ///< P H^T.
    Matrix kt;       ///< K^T = S^{-1} H P.
    Matrix k;        ///< Gain K.
    Matrix kh;       ///< K H.
    Matrix i_kh;     ///< I - K H.
    Matrix j1;       ///< (I-KH) P (I-KH)^T (Joseph) or (I-KH) P (standard).
    Matrix krk;      ///< K R K^T (Joseph).
  };

  StateSpaceModel model_;
  UpdateForm form_;
  Vector x_;
  Matrix p_;
  Workspace ws_;

  // Last-update diagnostics.
  Vector innovation_;
  Matrix s_;
  double nis_ = 0.0;
  double log_likelihood_ = 0.0;
  int64_t update_count_ = 0;
};

}  // namespace kc

#endif  // KALMANCAST_KALMAN_KALMAN_FILTER_H_
