#ifndef KALMANCAST_KALMAN_EKF_H_
#define KALMANCAST_KALMAN_EKF_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace kc {

/// A nonlinear discrete-time state-space model for the extended Kalman
/// filter:
///
///   x_{k+1} = f(x_k) + w_k,  w_k ~ N(0, Q)
///   z_k     = h(x_k) + v_k,  v_k ~ N(0, R)
///
/// `f_jacobian`/`h_jacobian` return the Jacobians dF/dx and dH/dx at the
/// supplied state. All four callables must be pure (same input -> same
/// output) so that source and server EKF replicas stay in lockstep.
struct NonlinearModel {
  std::string name;
  size_t state_dim = 0;
  size_t obs_dim = 0;

  std::function<Vector(const Vector&)> f;
  std::function<Matrix(const Vector&)> f_jacobian;
  std::function<Vector(const Vector&)> h;
  std::function<Matrix(const Vector&)> h_jacobian;

  Matrix q;  ///< Process-noise covariance (state_dim x state_dim).
  Matrix r;  ///< Observation-noise covariance (obs_dim x obs_dim).

  Status Validate() const;
};

/// First-order extended Kalman filter. Same Predict/Update discipline and
/// diagnostics as the linear KalmanFilter; linearizes the dynamics and
/// observation around the current estimate each step (and uses the Joseph
/// form for the covariance update unconditionally).
class ExtendedKalmanFilter {
 public:
  ExtendedKalmanFilter(NonlinearModel model, Vector x0, Matrix p0);

  /// Time update: x <- f(x), P <- F P F^T + Q with F = df/dx at x.
  void Predict();

  /// Measurement update. Fails (state untouched) on dimension mismatch or
  /// a singular innovation covariance.
  Status Update(const Vector& z);

  Vector PredictObservation() const { return model_.h(x_); }

  const Vector& state() const { return x_; }
  const Matrix& covariance() const { return p_; }
  const NonlinearModel& model() const { return model_; }

  const Vector& last_innovation() const { return innovation_; }
  double last_nis() const { return nis_; }
  double last_log_likelihood() const { return log_likelihood_; }
  int64_t update_count() const { return update_count_; }

  void Reset(Vector x0, Matrix p0);

  /// Flattened (x, P) — same layout as KalmanFilter::SerializeState.
  std::vector<double> SerializeState() const;
  Status DeserializeState(const std::vector<double>& buf);

 private:
  /// Scratch reused across Predict/Update so steady-state EKF steps perform
  /// zero heap allocations (same contract as KalmanFilter::Workspace).
  struct Workspace {
    Vector hx;       ///< h(x).
    Vector nu;       ///< Innovation.
    Vector knu;      ///< K nu.
    Vector sinv_nu;  ///< S^{-1} nu.
    Matrix jac;      ///< f/h Jacobian at the current state.
    Matrix tmp1;     ///< Sandwich/transpose scratch.
    Matrix s;        ///< Innovation covariance.
    Matrix l;        ///< Cholesky factor of s.
    Matrix ph_t;     ///< P H^T.
    Matrix kt;       ///< K^T.
    Matrix k;        ///< Gain K.
    Matrix kh;       ///< K H.
    Matrix i_kh;     ///< I - K H.
    Matrix j1;       ///< Joseph term (I-KH) P (I-KH)^T.
    Matrix krk;      ///< Joseph term K R K^T.
  };

  NonlinearModel model_;
  Vector x_;
  Matrix p_;
  Workspace ws_;

  Vector innovation_;
  double nis_ = 0.0;
  double log_likelihood_ = 0.0;
  int64_t update_count_ = 0;
};

/// Coordinated-turn vehicle model: state [x, y, speed, heading, turn_rate]
/// observing [x, y]. The canonical nonlinear tracking model the linear
/// constant-velocity filter approximates; pairs with Vehicle2DGenerator.
/// `q_speed`, `q_heading`, `q_turn` are per-step process variances on the
/// respective states; `obs_var` is the per-axis position noise variance.
NonlinearModel MakeCoordinatedTurnModel(double dt, double q_pos,
                                        double q_speed, double q_turn,
                                        double obs_var);

}  // namespace kc

#endif  // KALMANCAST_KALMAN_EKF_H_
