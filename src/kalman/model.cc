#include "kalman/model.h"

#include <cmath>

#include "linalg/decomp.h"

namespace kc {

Status StateSpaceModel::Validate() const {
  size_t n = f.rows();
  size_t m = h.rows();
  if (n == 0) return Status::InvalidArgument("empty state dimension");
  if (!f.IsSquare()) return Status::InvalidArgument("F must be square");
  if (q.rows() != n || q.cols() != n) {
    return Status::InvalidArgument("Q must be state_dim x state_dim");
  }
  if (m == 0) return Status::InvalidArgument("empty observation dimension");
  if (h.cols() != n) {
    return Status::InvalidArgument("H must be obs_dim x state_dim");
  }
  if (r.rows() != m || r.cols() != m) {
    return Status::InvalidArgument("R must be obs_dim x obs_dim");
  }
  if (!IsPositiveSemiDefinite(q)) {
    return Status::InvalidArgument("Q must be symmetric PSD");
  }
  if (!Cholesky(r).ok()) {
    return Status::InvalidArgument("R must be symmetric positive definite");
  }
  return Status::Ok();
}

StateSpaceModel MakeRandomWalkModel(double process_var, double obs_var) {
  StateSpaceModel m;
  m.name = "random_walk";
  m.f = Matrix::Identity(1);
  m.q = Matrix{{process_var}};
  m.h = Matrix::Identity(1);
  m.r = Matrix{{obs_var}};
  return m;
}

StateSpaceModel MakeConstantVelocityModel(double dt, double accel_var,
                                          double obs_var) {
  StateSpaceModel m;
  m.name = "constant_velocity";
  m.f = Matrix{{1.0, dt}, {0.0, 1.0}};
  // Discretized white-noise acceleration.
  double dt2 = dt * dt;
  double dt3 = dt2 * dt;
  m.q = accel_var * Matrix{{dt3 / 3.0, dt2 / 2.0}, {dt2 / 2.0, dt}};
  m.h = Matrix{{1.0, 0.0}};
  m.r = Matrix{{obs_var}};
  return m;
}

StateSpaceModel MakeConstantAccelerationModel(double dt, double jerk_var,
                                              double obs_var) {
  StateSpaceModel m;
  m.name = "constant_acceleration";
  double dt2 = dt * dt;
  m.f = Matrix{{1.0, dt, dt2 / 2.0}, {0.0, 1.0, dt}, {0.0, 0.0, 1.0}};
  // Discretized white-noise jerk.
  double dt3 = dt2 * dt;
  double dt4 = dt3 * dt;
  double dt5 = dt4 * dt;
  m.q = jerk_var * Matrix{{dt5 / 20.0, dt4 / 8.0, dt3 / 6.0},
                          {dt4 / 8.0, dt3 / 3.0, dt2 / 2.0},
                          {dt3 / 6.0, dt2 / 2.0, dt}};
  m.h = Matrix{{1.0, 0.0, 0.0}};
  m.r = Matrix{{obs_var}};
  return m;
}

StateSpaceModel MakeHarmonicModel(double omega, double dt, double process_var,
                                  double obs_var) {
  StateSpaceModel m;
  m.name = "harmonic";
  // State [s, c] rotates at omega; observation is s (the in-phase
  // component). Rotation preserves amplitude; process noise lets the
  // amplitude/phase drift slowly.
  double wt = omega * dt;
  double cw = std::cos(wt);
  double sw = std::sin(wt);
  m.f = Matrix{{cw, sw}, {-sw, cw}};
  m.q = Matrix::ScalarDiagonal(2, process_var);
  m.h = Matrix{{1.0, 0.0}};
  m.r = Matrix{{obs_var}};
  return m;
}

StateSpaceModel MakeTrendSeasonalModel(double omega, double dt,
                                       double trend_var, double seasonal_var,
                                       double obs_var) {
  StateSpaceModel m;
  m.name = "trend_seasonal";
  double wt = omega * dt;
  double cw = std::cos(wt);
  double sw = std::sin(wt);
  // Block diagonal: [level, slope] constant-velocity block, then the
  // [s, c] rotation block.
  m.f = Matrix{{1.0, dt, 0.0, 0.0},
               {0.0, 1.0, 0.0, 0.0},
               {0.0, 0.0, cw, sw},
               {0.0, 0.0, -sw, cw}};
  double dt2 = dt * dt;
  double dt3 = dt2 * dt;
  m.q = Matrix{{trend_var * dt3 / 3.0, trend_var * dt2 / 2.0, 0.0, 0.0},
               {trend_var * dt2 / 2.0, trend_var * dt, 0.0, 0.0},
               {0.0, 0.0, seasonal_var, 0.0},
               {0.0, 0.0, 0.0, seasonal_var}};
  m.h = Matrix{{1.0, 0.0, 1.0, 0.0}};
  m.r = Matrix{{obs_var}};
  return m;
}

StateSpaceModel MakeConstantVelocity2DModel(double dt, double accel_var,
                                            double obs_var) {
  StateSpaceModel m;
  m.name = "constant_velocity_2d";
  m.f = Matrix{{1.0, dt, 0.0, 0.0},
               {0.0, 1.0, 0.0, 0.0},
               {0.0, 0.0, 1.0, dt},
               {0.0, 0.0, 0.0, 1.0}};
  double dt2 = dt * dt;
  double dt3 = dt2 * dt;
  double q11 = accel_var * dt3 / 3.0;
  double q12 = accel_var * dt2 / 2.0;
  double q22 = accel_var * dt;
  m.q = Matrix{{q11, q12, 0.0, 0.0},
               {q12, q22, 0.0, 0.0},
               {0.0, 0.0, q11, q12},
               {0.0, 0.0, q12, q22}};
  m.h = Matrix{{1.0, 0.0, 0.0, 0.0}, {0.0, 0.0, 1.0, 0.0}};
  m.r = Matrix::ScalarDiagonal(2, obs_var);
  return m;
}

StateSpaceModel MakeConstantAcceleration2DModel(double dt, double jerk_var,
                                                double obs_var) {
  StateSpaceModel m;
  m.name = "constant_acceleration_2d";
  double dt2 = dt * dt;
  double dt3 = dt2 * dt;
  double dt4 = dt3 * dt;
  double dt5 = dt4 * dt;
  // Two independent [pos, vel, acc] integrator chains with discretized
  // white-noise jerk (same per-axis block as MakeConstantAccelerationModel).
  m.f = Matrix{{1.0, dt, dt2 / 2.0, 0.0, 0.0, 0.0},
               {0.0, 1.0, dt, 0.0, 0.0, 0.0},
               {0.0, 0.0, 1.0, 0.0, 0.0, 0.0},
               {0.0, 0.0, 0.0, 1.0, dt, dt2 / 2.0},
               {0.0, 0.0, 0.0, 0.0, 1.0, dt},
               {0.0, 0.0, 0.0, 0.0, 0.0, 1.0}};
  double q11 = jerk_var * dt5 / 20.0;
  double q12 = jerk_var * dt4 / 8.0;
  double q13 = jerk_var * dt3 / 6.0;
  double q22 = jerk_var * dt3 / 3.0;
  double q23 = jerk_var * dt2 / 2.0;
  double q33 = jerk_var * dt;
  m.q = Matrix{{q11, q12, q13, 0.0, 0.0, 0.0},
               {q12, q22, q23, 0.0, 0.0, 0.0},
               {q13, q23, q33, 0.0, 0.0, 0.0},
               {0.0, 0.0, 0.0, q11, q12, q13},
               {0.0, 0.0, 0.0, q12, q22, q23},
               {0.0, 0.0, 0.0, q13, q23, q33}};
  m.h = Matrix{{1.0, 0.0, 0.0, 0.0, 0.0, 0.0},
               {0.0, 0.0, 0.0, 1.0, 0.0, 0.0}};
  m.r = Matrix::ScalarDiagonal(2, obs_var);
  return m;
}

StateSpaceModel MakeConstantJerk2DModel(double dt, double snap_var,
                                        double obs_var) {
  StateSpaceModel m;
  m.name = "constant_jerk_2d";
  double dt2 = dt * dt;
  double dt3 = dt2 * dt;
  double dt4 = dt3 * dt;
  double dt5 = dt4 * dt;
  double dt6 = dt5 * dt;
  double dt7 = dt6 * dt;
  // Two independent [pos, vel, acc, jerk] integrator chains. Q follows the
  // standard discretization of white-noise snap over an N-fold integrator:
  // Q(i,j) = s * dt^(2N+1-i-j) / ((2N+1-i-j) * (N-i)! * (N-j)!), N = 3.
  m.f = Matrix{{1.0, dt, dt2 / 2.0, dt3 / 6.0, 0.0, 0.0, 0.0, 0.0},
               {0.0, 1.0, dt, dt2 / 2.0, 0.0, 0.0, 0.0, 0.0},
               {0.0, 0.0, 1.0, dt, 0.0, 0.0, 0.0, 0.0},
               {0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0},
               {0.0, 0.0, 0.0, 0.0, 1.0, dt, dt2 / 2.0, dt3 / 6.0},
               {0.0, 0.0, 0.0, 0.0, 0.0, 1.0, dt, dt2 / 2.0},
               {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, dt},
               {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0}};
  double q11 = snap_var * dt7 / 252.0;
  double q12 = snap_var * dt6 / 72.0;
  double q13 = snap_var * dt5 / 30.0;
  double q14 = snap_var * dt4 / 24.0;
  double q22 = snap_var * dt5 / 20.0;
  double q23 = snap_var * dt4 / 8.0;
  double q24 = snap_var * dt3 / 6.0;
  double q33 = snap_var * dt3 / 3.0;
  double q34 = snap_var * dt2 / 2.0;
  double q44 = snap_var * dt;
  m.q = Matrix{{q11, q12, q13, q14, 0.0, 0.0, 0.0, 0.0},
               {q12, q22, q23, q24, 0.0, 0.0, 0.0, 0.0},
               {q13, q23, q33, q34, 0.0, 0.0, 0.0, 0.0},
               {q14, q24, q34, q44, 0.0, 0.0, 0.0, 0.0},
               {0.0, 0.0, 0.0, 0.0, q11, q12, q13, q14},
               {0.0, 0.0, 0.0, 0.0, q12, q22, q23, q24},
               {0.0, 0.0, 0.0, 0.0, q13, q23, q33, q34},
               {0.0, 0.0, 0.0, 0.0, q14, q24, q34, q44}};
  m.h = Matrix{{1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0},
               {0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0}};
  m.r = Matrix::ScalarDiagonal(2, obs_var);
  return m;
}

}  // namespace kc
