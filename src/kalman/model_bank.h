#ifndef KALMANCAST_KALMAN_MODEL_BANK_H_
#define KALMANCAST_KALMAN_MODEL_BANK_H_

#include <deque>
#include <vector>

#include "kalman/kalman_filter.h"

namespace kc {

/// Runs several candidate Kalman filters in parallel over the same
/// observation stream and designates the one with the highest windowed
/// log-likelihood as "active".
///
/// The paper selects the Kalman filter as a *general* solution precisely
/// because one framework covers many stream characteristics; the bank is
/// how a deployment avoids hand-picking a model per stream — register a
/// random-walk, a constant-velocity, and a harmonic model and let the data
/// choose. All member filters are updated with every correction, so source
/// and server banks stay in lockstep just like single filters.
class ModelBank {
 public:
  /// `window`: number of recent updates over which log-likelihood is
  /// summed when ranking models.
  explicit ModelBank(size_t window = 16);

  /// Adds a candidate filter. All filters must share obs_dim; asserted.
  void AddFilter(KalmanFilter filter);

  size_t size() const { return filters_.size(); }
  bool empty() const { return filters_.empty(); }

  /// Time-update every member filter.
  void Predict();

  /// Measurement-update every member filter and re-rank. Returns the first
  /// error encountered (remaining filters are still updated).
  Status Update(const Vector& z);

  /// Index of the currently active (highest windowed likelihood) filter.
  size_t active_index() const { return active_; }
  const KalmanFilter& active() const { return filters_[active_]; }
  KalmanFilter& active() { return filters_[active_]; }
  const KalmanFilter& filter(size_t i) const { return filters_[i]; }
  KalmanFilter& filter(size_t i) { return filters_[i]; }

  /// Active filter's predicted observation.
  Vector PredictObservation() const { return active().PredictObservation(); }

  /// Windowed log-likelihood score of filter i.
  double Score(size_t i) const;

  /// Number of times the active model changed across Update() calls.
  int64_t switch_count() const { return switch_count_; }

 private:
  size_t window_;
  std::vector<KalmanFilter> filters_;
  std::vector<std::deque<double>> loglik_;
  size_t active_ = 0;
  int64_t switch_count_ = 0;
};

}  // namespace kc

#endif  // KALMANCAST_KALMAN_MODEL_BANK_H_
