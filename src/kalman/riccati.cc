#include "kalman/riccati.h"

#include <cassert>
#include <cmath>

namespace kc {

ScalarSteadyState SolveScalarDare(double f, double q, double h, double r) {
  assert(h != 0.0 && r > 0.0 && q >= 0.0);
  // From p = f^2 p - (f p h)^2 / (h^2 p + r) + q, multiply through by
  // (h^2 p + r) and simplify to the quadratic
  //   h^2 p^2 + (r (1 - f^2) - q h^2) p - q r = 0.
  double a = h * h;
  double b = r * (1.0 - f * f) - q * a;
  double c = -q * r;
  double disc = b * b - 4.0 * a * c;
  double p = (-b + std::sqrt(disc)) / (2.0 * a);
  ScalarSteadyState out;
  out.p_predict = p;
  out.gain = p * h / (a * p + r);
  out.p_update = (1.0 - out.gain * h) * p;
  return out;
}

}  // namespace kc
