#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/logging.h"

namespace kc {
namespace obs {

namespace {

/// Header-block cap: telemetry GETs are a few hundred bytes; anything
/// bigger is garbage we refuse to buffer.
constexpr size_t kMaxRequestBytes = 8192;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
  }
  return "OK";
}

/// Extracts one query parameter's value from a raw query string
/// ("a=1&prefix=kc.audit."). No percent-decoding: metric-name prefixes
/// use only URL-safe characters.
std::string QueryParam(std::string_view query, std::string_view key) {
  size_t at = 0;
  while (at < query.size()) {
    size_t end = query.find('&', at);
    if (end == std::string_view::npos) end = query.size();
    std::string_view pair = query.substr(at, end - at);
    size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
    at = end + 1;
  }
  return std::string();
}

/// Writes the whole buffer, tolerating partial sends. MSG_NOSIGNAL: a
/// scraper hanging up mid-response must not SIGPIPE the process.
bool SendAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

TelemetryHttpServer::TelemetryHttpServer(Config config) : config_(config) {}

TelemetryHttpServer::~TelemetryHttpServer() { Stop(); }

Status TelemetryHttpServer::Start() {
  if (running_) return Status::FailedPrecondition("server already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(listen_fd_, config_.backlog) < 0) {
    Status s =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Serve(); });
  running_ = true;
  KC_LOG(Info) << "telemetry endpoint listening on 127.0.0.1:" << port_;
  return Status::Ok();
}

void TelemetryHttpServer::Stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_relaxed);
  // Unblock the accept loop: shut the listener down, then (belt and
  // braces, for platforms where a shutdown on a listening socket is a
  // no-op) poke it with a throwaway loopback connection.
  ::shutdown(listen_fd_, SHUT_RDWR);
  int poke = ::socket(AF_INET, SOCK_STREAM, 0);
  if (poke >= 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    ::connect(poke, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::close(poke);
  }
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_ = false;
}

void TelemetryHttpServer::PublishMetrics(std::vector<MetricRow> rows) {
  std::lock_guard<std::mutex> lock(mu_);
  metric_rows_ = std::move(rows);
}

void TelemetryHttpServer::PublishHealthz(bool healthy, std::string body) {
  std::lock_guard<std::mutex> lock(mu_);
  healthy_ = healthy;
  healthz_body_ = std::move(body);
}

void TelemetryHttpServer::PublishAudit(std::string json) {
  std::lock_guard<std::mutex> lock(mu_);
  audit_json_ = std::move(json);
  has_audit_doc_ = false;
}

void TelemetryHttpServer::PublishAuditDoc(AuditDoc doc) {
  std::lock_guard<std::mutex> lock(mu_);
  audit_json_ = doc.full;
  audit_doc_ = std::move(doc);
  has_audit_doc_ = true;
}

void TelemetryHttpServer::PublishTimeseries(std::string json) {
  std::lock_guard<std::mutex> lock(mu_);
  timeseries_json_ = std::move(json);
}

void TelemetryHttpServer::SetTimeseriesSource(const TimeSeriesStore* store) {
  std::lock_guard<std::mutex> lock(mu_);
  timeseries_source_ = store;
}

TelemetryHttpServer::Response TelemetryHttpServer::Handle(
    std::string_view method, std::string_view target) const {
  Response r;
  if (method != "GET" && method != "HEAD") {
    r.status = 405;
    r.content_type = "text/plain; charset=utf-8";
    r.body = "method not allowed\n";
    return r;
  }
  std::string_view path = target;
  std::string_view query;
  size_t q = target.find('?');
  if (q != std::string_view::npos) {
    path = target.substr(0, q);
    query = target.substr(q + 1);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (path == "/metrics") {
    ExportOptions options;
    options.format = ExportFormat::kPrometheus;
    options.include_wall_clock = true;  // Publisher decides what's in rows.
    options.prefix = QueryParam(query, "prefix");
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = ExportRows(metric_rows_, options);
  } else if (path == "/healthz") {
    r.status = healthy_ ? 200 : 503;
    r.content_type = "text/plain; charset=utf-8";
    r.body = healthz_body_.empty() ? (healthy_ ? "ok\n" : "unhealthy\n")
                                   : healthz_body_;
  } else if (path == "/audit") {
    r.content_type = "application/json";
    std::string prefix = QueryParam(query, "prefix");
    if (prefix.empty() || !has_audit_doc_) {
      r.body = audit_json_.empty() ? "{}" : audit_json_;
    } else {
      // Reassemble a scoped document from the published pieces: the head
      // fragment plus only the "source.<id>" / "query.<name>" entries
      // matching the prefix. Totals stay fleet-wide by design — the
      // scope narrows the detail arrays, not the accounting.
      std::ostringstream os;
      os << audit_doc_.head << ",\"sources\":[";
      bool first = true;
      for (const auto& [name, obj] : audit_doc_.sources) {
        if (name.compare(0, prefix.size(), prefix) != 0) continue;
        if (!first) os << ",";
        first = false;
        os << obj;
      }
      os << "],\"queries\":[";
      first = true;
      for (const auto& [name, obj] : audit_doc_.queries) {
        if (name.compare(0, prefix.size(), prefix) != 0) continue;
        if (!first) os << ",";
        first = false;
        os << obj;
      }
      os << "]}";
      r.body = os.str();
    }
  } else if (path == "/timeseries") {
    r.content_type = "application/json";
    if (timeseries_source_ != nullptr) {
      // Live source: render per request, honoring ?prefix=. ExportJson
      // takes the store's own mutex; the store is documented readable by
      // endpoints between captures.
      r.body = timeseries_source_->ExportJson(QueryParam(query, "prefix"));
    } else {
      r.body = timeseries_json_.empty() ? "{}" : timeseries_json_;
    }
  } else {
    r.status = 404;
    r.content_type = "text/plain; charset=utf-8";
    r.body = "not found\n";
  }
  return r;
}

void TelemetryHttpServer::ServeConnection(int fd) {
  std::string request;
  char buf[1024];
  // Read until the end of the header block; telemetry GETs have no body.
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) line_end = request.size();
  std::string_view line(request.data(), line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  Response r;
  std::string_view method;
  if (sp2 == std::string_view::npos) {
    r.status = 400;
    r.content_type = "text/plain; charset=utf-8";
    r.body = "bad request\n";
  } else {
    method = line.substr(0, sp1);
    r = Handle(method, line.substr(sp1 + 1, sp2 - sp1 - 1));
  }
  std::ostringstream os;
  os << "HTTP/1.1 " << r.status << " " << StatusText(r.status) << "\r\n"
     << "Content-Type: " << r.content_type << "\r\n"
     << "Content-Length: " << r.body.size() << "\r\n"
     << "Connection: close\r\n\r\n";
  std::string head = os.str();
  if (SendAll(fd, head.data(), head.size()) && method != "HEAD") {
    SendAll(fd, r.body.data(), r.body.size());
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

void TelemetryHttpServer::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stop_.load(std::memory_order_relaxed)) break;
      // Listener broken outside Stop(): nothing sane to serve anymore.
      KC_LOG(Warning) << "telemetry accept failed: " << std::strerror(errno);
      break;
    }
    if (stop_.load(std::memory_order_relaxed)) {
      ::close(fd);  // The Stop() poke, or a scrape racing shutdown.
      break;
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

}  // namespace obs
}  // namespace kc
