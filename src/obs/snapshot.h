#ifndef KALMANCAST_OBS_SNAPSHOT_H_
#define KALMANCAST_OBS_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace kc {
namespace obs {

/// Telemetry snapshots (docs/OBSERVABILITY.md, "Distributed telemetry"):
/// the compact binary unit a split deployment's client half ships to the
/// server so one scrape covers both processes. A snapshot carries the
/// client's metric rows (the delta the sender selects — typically rows
/// changed since the previous snapshot, each with its full current
/// value), health/audit summary strings, the retained trace-ring events,
/// the transport's send-timestamp log for one-way latency measurement,
/// and the client's current clock-offset estimate.
///
/// Wire shape: the same dialect as net/codec.h — canonical LEB128
/// varints, ZigZag for signed fields, raw IEEE-754 doubles little-endian
/// — so the decode hardening story is identical: EncodeSnapshot is the
/// only producer, DecodeSnapshot never trusts a byte.
///
///   snapshot   := magic:0x4B version:0x01 header rows events sends
///   header     := tick:svarint offset_ns:svarint uncertainty_ns:svarint
///                 health:string audit:string
///   rows       := count:varint row*
///   row        := name:string kind:u8 flags:u8 payload
///                 (kind 0 counter:svarint | kind 1 gauge:f64le |
///                  kind 2 nbounds:varint bound:f64le* count:svarint*
///                         (nbounds+1 counts) sum:f64le)
///   events     := count:varint (name:string start_ns:svarint
///                 duration_ns:svarint flow_id:varint depth:varint
///                 thread_index:varint)*
///   sends      := count:varint (flow_id:varint type:u8 send_ns:svarint)*
///   string     := len:varint byte*
///
/// flags bit 0 = wall_clock; other bits must be zero. A histogram row's
/// total count is derived from its bucket counts on decode, exactly as
/// the live registry derives it.
///
/// Error taxonomy mirrors the codec: kOutOfRange = the buffer ends
/// mid-field (a torn frame), kInvalidArgument = structurally malformed
/// bytes (bad magic, non-canonical varint, oversized declared lengths,
/// unknown kind, nonzero reserved flags). Either way `out` may be
/// partially written and must be discarded.

/// One trace-ring span crossing the process boundary. The same shape as
/// obs/trace.h TraceEvent, with the name by value — a remote process's
/// static strings do not travel as pointers.
struct SnapshotTraceEvent {
  std::string name;
  int64_t start_ns = 0;  ///< Sender's steady clock.
  int64_t duration_ns = 0;
  uint64_t flow_id = 0;
  uint32_t depth = 0;
  uint32_t thread_index = 0;
};

/// One transport send timestamp: when the client's uplink put a message
/// of `type` on the wire, on the client's steady clock. Joined against
/// the server's arrival log (by flow id, with the clock offset applied)
/// to measure true one-way wire latency.
struct WireSendRecord {
  uint64_t flow_id = 0;
  uint8_t type = 0;  ///< net MessageType raw value.
  int64_t send_ns = 0;
};

struct TelemetrySnapshot {
  int64_t tick = 0;  ///< Sender's stream tick when the snapshot was cut.
  /// Sender's estimate of (receiver_clock - sender_clock), nanoseconds.
  /// Lets the receiver rebase start_ns/send_ns into its own clock.
  int64_t clock_offset_ns = 0;
  /// Honest error bar on the offset (min-RTT/2); negative = no estimate
  /// yet, and the receiver must not trust offset-derived latencies.
  int64_t clock_uncertainty_ns = -1;
  std::string health_summary;
  std::string audit_summary;
  std::vector<MetricRow> rows;
  std::vector<SnapshotTraceEvent> trace_events;
  std::vector<WireSendRecord> send_log;
};

/// Decode-side sanity caps. EncodeSnapshot never exceeds them (callers
/// feeding bigger inputs get truncation at the source, not on the wire);
/// DecodeSnapshot rejects declared sizes beyond them before allocating.
inline constexpr size_t kMaxSnapshotStringBytes = 1 << 16;
inline constexpr size_t kMaxSnapshotRows = 1 << 16;
inline constexpr size_t kMaxSnapshotEvents = 1 << 16;
inline constexpr size_t kMaxSnapshotSends = 1 << 16;

/// Serializes `snapshot` onto the end of `out` (the buffer is not
/// cleared, so a transport header can precede it). Deterministic: the
/// bytes are a pure function of the snapshot's contents.
void EncodeSnapshot(const TelemetrySnapshot& snapshot,
                    std::vector<uint8_t>* out);

/// Parses exactly `size` bytes into `*out` (replacing its contents).
/// Trailing bytes after a well-formed snapshot are kInvalidArgument —
/// snapshots travel length-delimited, so slack means corruption.
Status DecodeSnapshot(const uint8_t* data, size_t size,
                      TelemetrySnapshot* out);

/// Convenience: a snapshot row set from a registry (every row), as the
/// fleet's single-process self-merge uses. Split clients prefer
/// changed-row deltas (see server/split_deploy.cc).
std::vector<MetricRow> SnapshotRows(const MetricRegistry& registry);

}  // namespace obs
}  // namespace kc

#endif  // KALMANCAST_OBS_SNAPSHOT_H_
