#include "obs/timeseries.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"

namespace kc {
namespace obs {

namespace {

std::string Num(double v) { return StrFormat("%.9g", v); }

bool HasPrefix(std::string_view name, std::string_view prefix) {
  return prefix.empty() ||
         (name.size() >= prefix.size() &&
          name.compare(0, prefix.size(), prefix) == 0);
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(TimeSeriesConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
}

void TimeSeriesStore::BindMetrics(MetricRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    captures_metric_ = nullptr;
    evictions_metric_ = nullptr;
    series_gauge_ = nullptr;
    return;
  }
  captures_metric_ = registry->GetCounter("kc.ts.captures");
  evictions_metric_ = registry->GetCounter("kc.ts.evicted_points");
  series_gauge_ = registry->GetGauge("kc.ts.series");
  series_gauge_->Set(static_cast<double>(series_.size()));
}

void TimeSeriesStore::PushLocked(const std::string& name, int64_t tick,
                                 double value) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, Ring{}).first;
    it->second.points.resize(config_.capacity);
    if (series_gauge_ != nullptr) {
      series_gauge_->Set(static_cast<double>(series_.size()));
    }
  }
  Ring& ring = it->second;
  ring.points[ring.head % ring.points.size()] = SeriesPoint{tick, value};
  ++ring.head;
  if (ring.head > ring.points.size() && evictions_metric_ != nullptr) {
    evictions_metric_->Inc();
  }
}

void TimeSeriesStore::Capture(const MetricRegistry& registry, int64_t tick) {
  std::lock_guard<std::mutex> lock(mu_);
  ++captures_;
  if (captures_metric_ != nullptr) captures_metric_->Inc();
  for (const MetricRow& row : registry.Rows()) {
    if (row.wall_clock && !config_.include_wall_clock) continue;
    switch (row.kind) {
      case MetricKind::kCounter: {
        int64_t& last = last_counter_[row.name];
        PushLocked(row.name + ".delta", tick,
                   static_cast<double>(row.counter - last));
        last = row.counter;
        break;
      }
      case MetricKind::kGauge:
        PushLocked(row.name + ".last", tick, row.gauge);
        break;
      case MetricKind::kHistogram: {
        std::vector<int64_t>& last = last_hist_counts_[row.name];
        last.resize(row.hist_counts.size(), 0);
        std::vector<int64_t> delta(row.hist_counts.size());
        int64_t count_delta = 0;
        for (size_t i = 0; i < row.hist_counts.size(); ++i) {
          delta[i] = row.hist_counts[i] - last[i];
          count_delta += delta[i];
        }
        last = row.hist_counts;
        PushLocked(row.name + ".count_delta", tick,
                   static_cast<double>(count_delta));
        // Windowed percentiles from the bucket-count deltas: what the
        // lifetime histogram cannot answer once the distribution drifts.
        PushLocked(row.name + ".p50", tick,
                   HistogramQuantile(row.hist_bounds, delta, 0.50));
        PushLocked(row.name + ".p90", tick,
                   HistogramQuantile(row.hist_bounds, delta, 0.90));
        PushLocked(row.name + ".p99", tick,
                   HistogramQuantile(row.hist_bounds, delta, 0.99));
        break;
      }
    }
  }
}

size_t TimeSeriesStore::num_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

int64_t TimeSeriesStore::captures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captures_;
}

std::vector<std::string> TimeSeriesStore::SeriesNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, ring] : series_) {
    (void)ring;
    names.push_back(name);
  }
  return names;
}

std::vector<SeriesPoint> TimeSeriesStore::Points(
    std::string_view series) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(std::string(series));
  if (it == series_.end()) return {};
  const Ring& ring = it->second;
  uint64_t retained = std::min<uint64_t>(ring.head, ring.points.size());
  std::vector<SeriesPoint> out;
  out.reserve(retained);
  for (uint64_t i = ring.head - retained; i < ring.head; ++i) {
    out.push_back(ring.points[i % ring.points.size()]);
  }
  return out;
}

std::string TimeSeriesStore::ExportJson(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"capacity\":" << config_.capacity << ",\"captures\":" << captures_
     << ",\"series\":[";
  bool first_series = true;
  for (const auto& [name, ring] : series_) {
    if (!HasPrefix(name, prefix)) continue;
    if (!first_series) os << ",";
    first_series = false;
    os << "{\"name\":\"" << name << "\",\"points\":[";
    uint64_t retained = std::min<uint64_t>(ring.head, ring.points.size());
    bool first_point = true;
    for (uint64_t i = ring.head - retained; i < ring.head; ++i) {
      const SeriesPoint& p = ring.points[i % ring.points.size()];
      if (!first_point) os << ",";
      first_point = false;
      os << "[" << p.tick << "," << Num(p.value) << "]";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string TimeSeriesStore::ExportText(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, ring] : series_) {
    if (!HasPrefix(name, prefix)) continue;
    uint64_t retained = std::min<uint64_t>(ring.head, ring.points.size());
    if (retained == 0) continue;
    const SeriesPoint& last = ring.points[(ring.head - 1) % ring.points.size()];
    os << StrFormat("%-48s n=%llu last=%s @ tick %lld\n", name.c_str(),
                    static_cast<unsigned long long>(retained),
                    Num(last.value).c_str(), static_cast<long long>(last.tick));
  }
  return os.str();
}

}  // namespace obs
}  // namespace kc
