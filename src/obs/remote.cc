#include "obs/remote.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace kc {
namespace obs {

ClockOffsetEstimator::ClockOffsetEstimator(size_t window)
    : window_(window == 0 ? 1 : window), capacity_(window == 0 ? 1 : window) {}

void ClockOffsetEstimator::AddSample(int64_t t0_ns, int64_t t1_ns,
                                     int64_t peer_ns) {
  int64_t rtt = t1_ns - t0_ns;
  if (rtt < 0) return;  // Non-monotonic clock read; not a usable probe.
  // Midpoint estimate: the peer answered somewhere inside [t0, t1]; the
  // midpoint is the minimax choice, wrong by at most rtt/2.
  Sample s;
  s.rtt_ns = rtt;
  s.offset_ns = peer_ns - (t0_ns + rtt / 2);
  window_[next_] = s;
  next_ = (next_ + 1) % capacity_;
  count_ = std::min(count_ + 1, capacity_);
  ++total_samples_;
  // Recompute the window minimum (the window is small and probes arrive
  // once per tick barrier — this is nowhere near a hot path).
  best_rtt_ns_ = -1;
  for (size_t i = 0; i < count_; ++i) {
    if (best_rtt_ns_ < 0 || window_[i].rtt_ns < best_rtt_ns_) {
      best_rtt_ns_ = window_[i].rtt_ns;
      best_offset_ns_ = window_[i].offset_ns;
    }
  }
}

RemoteTelemetryMerger::RemoteTelemetryMerger(Options options)
    : options_(std::move(options)) {
  if (!options_.type_name) {
    options_.type_name = [](uint8_t type) {
      return StrFormat("type%u", static_cast<unsigned>(type));
    };
  }
}

void RemoteTelemetryMerger::BindMetrics(MetricRegistry* registry) {
  registry_ = registry;
  if (registry_ == nullptr) return;
  snapshots_metric_ = registry_->GetCounter("kc.remote.snapshots");
  // Clock and latency instruments hold real-time measurements — flagged
  // wall_clock so deterministic exports stay byte-identical.
  matched_metric_ =
      registry_->GetCounter("kc.remote.latency_matched", /*wall_clock=*/true);
  unmatched_metric_ = registry_->GetCounter("kc.remote.latency_unmatched",
                                            /*wall_clock=*/true);
  offset_us_metric_ =
      registry_->GetGauge("kc.remote.clock_offset_us", /*wall_clock=*/true);
  uncertainty_us_metric_ = registry_->GetGauge(
      "kc.remote.clock_uncertainty_us", /*wall_clock=*/true);
}

Histogram* RemoteTelemetryMerger::LatencyHistogram(uint8_t type) {
  auto it = latency_hists_.find(type);
  if (it != latency_hists_.end()) return it->second;
  Histogram* h = nullptr;
  if (registry_ != nullptr) {
    // 1 us .. ~0.5 s in octaves: loopback sits in the first buckets, a
    // congested WAN still lands inside the finite range.
    h = registry_->GetHistogram(
        StrFormat("kc.net.wire_latency_us.%s",
                  options_.type_name(type).c_str()),
        Buckets::Exponential(1.0, 2.0, 20), /*wall_clock=*/true);
  }
  latency_hists_.emplace(type, h);
  return h;
}

void RemoteTelemetryMerger::RecordArrival(uint64_t flow_id, uint8_t type,
                                          int64_t arrival_ns) {
  // emplace: first delivery wins; a duplicate's arrival time is not the
  // original datagram's wire latency.
  pending_arrivals_.emplace(flow_id, std::make_pair(type, arrival_ns));
  if (pending_arrivals_.size() > options_.max_pending_arrivals) {
    // Flow ids grow with (source, wire_seq), so begin() is the oldest.
    pending_arrivals_.erase(pending_arrivals_.begin());
  }
}

std::string RemoteTelemetryMerger::NamespacedName(
    const std::string& name) const {
  // Fold a leading "kc." into the namespace: "kc.agent.sent" becomes
  // "kc.remote.client.agent.sent", not "kc.remote.client.kc.agent.sent".
  if (name.compare(0, 3, "kc.") == 0) return options_.ns + name.substr(3);
  return options_.ns + name;
}

void RemoteTelemetryMerger::Absorb(const TelemetrySnapshot& snapshot) {
  ++snapshots_absorbed_;
  last_tick_ = snapshot.tick;
  clock_offset_ns_ = snapshot.clock_offset_ns;
  clock_uncertainty_ns_ = snapshot.clock_uncertainty_ns;
  health_summary_ = snapshot.health_summary;
  audit_summary_ = snapshot.audit_summary;
  if (snapshots_metric_ != nullptr) snapshots_metric_->Inc();
  if (offset_us_metric_ != nullptr) {
    offset_us_metric_->Set(static_cast<double>(clock_offset_ns_) * 1e-3);
  }
  if (uncertainty_us_metric_ != nullptr) {
    uncertainty_us_metric_->Set(static_cast<double>(clock_uncertainty_ns_) *
                                1e-3);
  }

  // Latest-wins per name: a snapshot row carries the remote instrument's
  // full cumulative value, so replacement (not addition) is what keeps a
  // scrape's remote counters honest.
  for (const MetricRow& row : snapshot.rows) {
    MetricRow namespaced = row;
    namespaced.name = NamespacedName(row.name);
    remote_rows_[namespaced.name] = std::move(namespaced);
  }

  // The remote trace ring is cumulative too: each snapshot re-sends the
  // retained window, so keeping only the latest set avoids duplicate
  // spans in the stitched export.
  if (!snapshot.trace_events.empty()) {
    remote_events_ = snapshot.trace_events;
    for (const SnapshotTraceEvent& e : remote_events_) {
      interned_names_.insert(e.name);
    }
  }

  // Join the remote send log against local arrivals. The send log is a
  // natural delta (the transport drains it into each snapshot), so every
  // record is seen exactly once; an unmatched record is a message the
  // wire genuinely lost (or one still in flight at the very end).
  bool offset_usable = clock_uncertainty_ns_ >= 0;
  for (const WireSendRecord& send : snapshot.send_log) {
    auto it = pending_arrivals_.find(send.flow_id);
    if (it == pending_arrivals_.end() || !offset_usable) {
      ++latency_unmatched_;
      if (unmatched_metric_ != nullptr) unmatched_metric_->Inc();
      continue;
    }
    int64_t arrival_ns = it->second.second;
    // Rebase the remote send time into the local clock; the offset's
    // error bar can push a loopback latency slightly negative, which is
    // measurement noise, not time travel — clamp to zero.
    int64_t latency_ns =
        arrival_ns - (send.send_ns + clock_offset_ns_);
    if (latency_ns < 0) latency_ns = 0;
    Histogram* h = LatencyHistogram(it->second.first);
    if (h != nullptr) h->Record(static_cast<double>(latency_ns) * 1e-3);
    ++latency_matched_;
    if (matched_metric_ != nullptr) matched_metric_->Inc();
    pending_arrivals_.erase(it);
  }
}

std::vector<MetricRow> RemoteTelemetryMerger::MergedRows(
    std::vector<MetricRow> local_rows) const {
  local_rows.reserve(local_rows.size() + remote_rows_.size());
  for (const auto& [name, row] : remote_rows_) local_rows.push_back(row);
  std::sort(local_rows.begin(), local_rows.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return a.name < b.name;
            });
  return local_rows;
}

std::vector<TraceEvent> RemoteTelemetryMerger::RemoteTraceEvents() const {
  std::vector<TraceEvent> events;
  events.reserve(remote_events_.size());
  for (const SnapshotTraceEvent& e : remote_events_) {
    auto it = interned_names_.find(e.name);
    if (it == interned_names_.end()) continue;  // Unreachable by Absorb.
    TraceEvent out;
    out.name = it->c_str();
    out.start_ns = e.start_ns + clock_offset_ns_;
    out.duration_ns = e.duration_ns;
    out.flow_id = e.flow_id;
    out.depth = e.depth;
    out.thread_index = e.thread_index;
    out.pid = options_.remote_pid;
    events.push_back(out);
  }
  return events;
}

}  // namespace obs
}  // namespace kc
