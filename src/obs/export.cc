#include "obs/export.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "common/strings.h"

namespace kc {
namespace obs {

namespace {

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

/// Deterministic double rendering shared by every format.
std::string Num(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return StrFormat("%.9g", v);
}

void TextRow(std::ostringstream& os, const MetricRow& row) {
  os << StrFormat("%-40s %-9s ", row.name.c_str(), KindName(row.kind));
  switch (row.kind) {
    case MetricKind::kCounter:
      os << row.counter << "\n";
      break;
    case MetricKind::kGauge:
      os << Num(row.gauge) << "\n";
      break;
    case MetricKind::kHistogram: {
      double mean = row.hist_count > 0
                        ? row.hist_sum / static_cast<double>(row.hist_count)
                        : 0.0;
      os << "count=" << row.hist_count << " sum=" << Num(row.hist_sum)
         << " mean=" << Num(mean)
         << " p50=" << Num(HistogramQuantile(row.hist_bounds,
                                             row.hist_counts, 0.50))
         << " p90=" << Num(HistogramQuantile(row.hist_bounds,
                                             row.hist_counts, 0.90))
         << " p99=" << Num(HistogramQuantile(row.hist_bounds,
                                             row.hist_counts, 0.99))
         << "\n";
      for (size_t i = 0; i < row.hist_counts.size(); ++i) {
        if (row.hist_counts[i] == 0) continue;  // Keep the table compact.
        double bound = i < row.hist_bounds.size()
                           ? row.hist_bounds[i]
                           : std::numeric_limits<double>::infinity();
        os << StrFormat("%42s le %s: %lld\n", "", Num(bound).c_str(),
                        static_cast<long long>(row.hist_counts[i]));
      }
      break;
    }
  }
}

void JsonRow(std::ostringstream& os, const MetricRow& row) {
  os << "{\"name\":\"" << row.name << "\",\"kind\":\"" << KindName(row.kind)
     << "\"";
  switch (row.kind) {
    case MetricKind::kCounter:
      os << ",\"value\":" << row.counter;
      break;
    case MetricKind::kGauge:
      os << ",\"value\":" << Num(row.gauge);
      break;
    case MetricKind::kHistogram: {
      os << ",\"count\":" << row.hist_count << ",\"sum\":" << Num(row.hist_sum)
         << ",\"p50\":"
         << Num(HistogramQuantile(row.hist_bounds, row.hist_counts, 0.50))
         << ",\"p90\":"
         << Num(HistogramQuantile(row.hist_bounds, row.hist_counts, 0.90))
         << ",\"p99\":"
         << Num(HistogramQuantile(row.hist_bounds, row.hist_counts, 0.99))
         << ",\"buckets\":[";
      for (size_t i = 0; i < row.hist_counts.size(); ++i) {
        if (i > 0) os << ",";
        if (i < row.hist_bounds.size()) {
          os << "{\"le\":" << Num(row.hist_bounds[i]);
        } else {
          os << "{\"le\":\"+Inf\"";
        }
        os << ",\"n\":" << row.hist_counts[i] << "}";
      }
      os << "]";
      break;
    }
  }
  os << "}\n";
}

/// Prometheus metric names allow only [a-zA-Z0-9_:].
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

void PromRow(std::ostringstream& os, const MetricRow& row) {
  std::string name = PromName(row.name);
  // Exposition-format conventions: counters carry a `_total` suffix, and
  // every family gets HELP + TYPE header lines.
  if (row.kind == MetricKind::kCounter) name += "_total";
  os << "# HELP " << name << " kalmancast metric " << row.name << "\n";
  os << "# TYPE " << name << " " << KindName(row.kind) << "\n";
  switch (row.kind) {
    case MetricKind::kCounter:
      os << name << " " << row.counter << "\n";
      break;
    case MetricKind::kGauge:
      os << name << " " << Num(row.gauge) << "\n";
      break;
    case MetricKind::kHistogram: {
      // Prometheus buckets are cumulative.
      int64_t cumulative = 0;
      for (size_t i = 0; i < row.hist_counts.size(); ++i) {
        cumulative += row.hist_counts[i];
        std::string le = i < row.hist_bounds.size() ? Num(row.hist_bounds[i])
                                                    : "+Inf";
        os << name << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
      }
      os << name << "_sum " << Num(row.hist_sum) << "\n";
      os << name << "_count " << row.hist_count << "\n";
      break;
    }
  }
}

}  // namespace

std::string ExportRows(const std::vector<MetricRow>& rows,
                       const ExportOptions& options) {
  std::ostringstream os;
  for (const MetricRow& row : rows) {
    if (row.wall_clock && !options.include_wall_clock) continue;
    if (!options.prefix.empty() &&
        row.name.compare(0, options.prefix.size(), options.prefix) != 0) {
      continue;
    }
    switch (options.format) {
      case ExportFormat::kText:
        TextRow(os, row);
        break;
      case ExportFormat::kJsonLines:
        JsonRow(os, row);
        break;
      case ExportFormat::kPrometheus:
        PromRow(os, row);
        break;
    }
  }
  return os.str();
}

std::string ExportMetrics(const MetricRegistry& registry,
                          const ExportOptions& options) {
  return ExportRows(registry.Rows(), options);
}

std::string ExportText(const MetricRegistry& registry, bool include_wall_clock,
                       const std::string& prefix) {
  return ExportMetrics(registry,
                       {ExportFormat::kText, include_wall_clock, prefix});
}

std::string ExportJsonLines(const MetricRegistry& registry,
                            bool include_wall_clock,
                            const std::string& prefix) {
  return ExportMetrics(registry,
                       {ExportFormat::kJsonLines, include_wall_clock, prefix});
}

std::string ExportPrometheus(const MetricRegistry& registry,
                             bool include_wall_clock,
                             const std::string& prefix) {
  return ExportMetrics(registry,
                       {ExportFormat::kPrometheus, include_wall_clock, prefix});
}

std::string ExportChromeTrace(const std::vector<TraceEvent>& events,
                              const ChromeTraceOptions& options) {
  // Stable order: by start time, with pid then thread as tiebreaks, so
  // the export is a pure function of the span set, merged multi-process
  // traces load in causal order, and each flow's "s" event comes from
  // its earliest span.
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events.size());
  for (const TraceEvent& e : events) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->start_ns != b->start_ns) {
                       return a->start_ns < b->start_ns;
                     }
                     if (a->pid != b->pid) return a->pid < b->pid;
                     return a->thread_index < b->thread_index;
                   });
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&os, &first] {
    if (!first) os << ",";
    first = false;
  };
  // process_name metadata first: the explicitly named pids in their given
  // order, then any unnamed pid present in the span set (ascending).
  std::set<uint32_t> named_pids;
  for (const auto& [pid, name] : options.process_names) {
    if (!named_pids.insert(pid).second) continue;
    comma();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"args\":{\"name\":\"" << name << "\"}}";
  }
  std::set<uint32_t> span_pids;
  for (const TraceEvent* e : ordered) span_pids.insert(e->pid);
  for (uint32_t pid : span_pids) {
    if (named_pids.count(pid) != 0) continue;
    comma();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"args\":{\"name\":\"process " << pid << "\"}}";
  }
  std::set<uint64_t> flows_started;
  for (const TraceEvent* e : ordered) {
    std::string ts = StrFormat("%.3f", static_cast<double>(e->start_ns) / 1e3);
    std::string dur =
        StrFormat("%.3f", static_cast<double>(e->duration_ns) / 1e3);
    comma();
    os << "{\"name\":\"" << (e->name != nullptr ? e->name : "?")
       << "\",\"ph\":\"X\",\"ts\":" << ts << ",\"dur\":" << dur
       << ",\"pid\":" << e->pid << ",\"tid\":" << e->thread_index
       << ",\"args\":{\"depth\":" << e->depth << "}}";
    if (e->flow_id == 0) continue;
    // Flow stitching: the earliest span of a flow starts it ("s"); every
    // later one binds to it ("f" with bp=e, "enclosing slice").
    bool starts = flows_started.insert(e->flow_id).second;
    comma();
    os << "{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\""
       << (starts ? "s" : "f") << "\"" << (starts ? "" : ",\"bp\":\"e\"")
       << ",\"id\":" << e->flow_id << ",\"ts\":" << ts
       << ",\"pid\":" << e->pid << ",\"tid\":" << e->thread_index << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace obs
}  // namespace kc
