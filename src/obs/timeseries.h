#ifndef KALMANCAST_OBS_TIMESERIES_H_
#define KALMANCAST_OBS_TIMESERIES_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace kc {
namespace obs {

/// Windowed metric time-series (docs/OBSERVABILITY.md, "Time-series
/// rings"): lifetime counters answer "how many ever?", but operating a
/// fleet needs "how many per window, lately?" — messages/sec saved vs.
/// broadcast, corrections per window, latency percentiles over the last
/// K windows. The store keeps one fixed-capacity ring of points per
/// derived series and appends one point per Capture() call (the driver
/// snapshots the merged registry every K ticks, after the barrier).
///
/// Derived series per metric kind:
///  - counter `m`   -> `m.delta`        (increase during the window)
///  - gauge `m`     -> `m.last`         (value at the window boundary)
///  - histogram `m` -> `m.count_delta`  (records during the window)
///                     `m.p50` / `m.p90` / `m.p99` (quantile estimates
///                     over the window's bucket-count deltas — true
///                     windowed percentiles, not lifetime ones)
///
/// Rings are preallocated at series creation, so steady-state captures
/// are allocation-free per series (a metric appearing mid-run allocates
/// its ring once, cold). Points carry the capture tick, never wall
/// clock; with wall-clock metrics excluded (the default) every export is
/// bit-identical across runs and thread counts. Capture() and the
/// readers take one store mutex — the store is driver-thread-owned and
/// read by telemetry endpoints between captures, never on the tick hot
/// path.
struct TimeSeriesConfig {
  /// Points (windows) retained per series; older points are evicted.
  size_t capacity = 64;
  /// Derive series from wall-clock metrics too (breaks determinism of
  /// exports; off by default).
  bool include_wall_clock = false;
};

/// One window's datum: the capture tick and the derived value.
struct SeriesPoint {
  int64_t tick = 0;
  double value = 0.0;
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesConfig config = TimeSeriesConfig());
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Registers kc.ts.* meta-metrics (captures, series population, point
  /// evictions) in `registry`.
  void BindMetrics(MetricRegistry* registry);

  /// Appends one point to every series derived from `registry`'s current
  /// rows, stamped with `tick`. Call from the driver thread after the
  /// barrier, every K ticks.
  void Capture(const MetricRegistry& registry, int64_t tick);

  size_t capacity() const { return config_.capacity; }
  size_t num_series() const;
  int64_t captures() const;

  /// Series names, sorted (deterministic).
  std::vector<std::string> SeriesNames() const;
  /// Retained points, oldest first (empty for unknown series).
  std::vector<SeriesPoint> Points(std::string_view series) const;

  /// Deterministic exports; `prefix` scopes to series whose name starts
  /// with it (same convention as ExportOptions::prefix).
  ///   JSON: {"capacity":K,"captures":N,"series":[
  ///           {"name":"...","points":[[tick,value],...]},...]}
  ///   Text: one "name  n=<points> last=<value> @ tick <tick>" line per
  ///         series.
  std::string ExportJson(std::string_view prefix = {}) const;
  std::string ExportText(std::string_view prefix = {}) const;

  const TimeSeriesConfig& config() const { return config_; }

 private:
  struct Ring {
    std::vector<SeriesPoint> points;  ///< Sized `capacity` at creation.
    uint64_t head = 0;                ///< Total pushes (monotonic).
  };

  /// Looks up or creates (preallocating the ring) a series; pushes one
  /// point. Caller holds mu_.
  void PushLocked(const std::string& name, int64_t tick, double value);

  TimeSeriesConfig config_;
  mutable std::mutex mu_;
  std::map<std::string, Ring> series_;
  /// Previous capture's cumulative values, for window deltas.
  std::map<std::string, int64_t> last_counter_;
  std::map<std::string, std::vector<int64_t>> last_hist_counts_;
  int64_t captures_ = 0;

  Counter* captures_metric_ = nullptr;   ///< kc.ts.captures
  Counter* evictions_metric_ = nullptr;  ///< kc.ts.evicted_points
  Gauge* series_gauge_ = nullptr;        ///< kc.ts.series
};

}  // namespace obs
}  // namespace kc

#endif  // KALMANCAST_OBS_TIMESERIES_H_
