#ifndef KALMANCAST_OBS_TRACE_H_
#define KALMANCAST_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace kc {
namespace obs {

/// Scoped trace spans (see docs/OBSERVABILITY.md):
///
///   void StreamServer::Tick() {
///     KC_TRACE_SCOPE("server.tick");
///     ...
///   }
///
/// Each thread records completed spans into its own fixed-size ring
/// buffer; recording is allocation-free and touches no shared state, so
/// spans are safe (and cheap) on the shard workers' hot paths.
///
/// Two kill switches:
///  - Runtime: tracing is OFF by default; SetTracingEnabled(true) turns
///    it on. A disabled span costs one relaxed atomic load and a branch.
///  - Compile time: building a translation unit with -DKC_TRACE_DISABLED
///    expands KC_TRACE_SCOPE to nothing at all.
///
/// Collection (CollectTraceEvents) is a debugging/export surface, not a
/// hot path: call it from the driver thread while recorders are quiescent
/// (e.g. after the fleet's tick barrier).

/// One completed span.
struct TraceEvent {
  const char* name = nullptr;  ///< Static string passed to KC_TRACE_SCOPE.
  int64_t start_ns = 0;        ///< Steady-clock timestamp.
  int64_t duration_ns = 0;
  /// Causal flow id (0 = none). Spans on different threads carrying the
  /// same flow id are stitched into one flow by the Chrome-trace export —
  /// e.g. an agent's send span and the replica's apply span share the
  /// message's CausalFlowId.
  uint64_t flow_id = 0;
  uint32_t depth = 0;  ///< Nesting depth within the recording thread.
  uint32_t thread_index = 0;  ///< Stable per-thread recorder index.
  /// Originating process track for the Chrome-trace export. Recorders
  /// always emit 0 (this process); a merger of remote spans
  /// (obs/remote.h) assigns nonzero pids so a stitched multi-process
  /// trace keeps each process on its own track.
  uint32_t pid = 0;
};

/// Per-thread ring buffer of completed spans. Obtain via
/// ForCurrentThread(); recorders are created on first use and live for
/// the process (they stay reachable from the recorder registry, so leak
/// checkers see them as live).
class TraceRecorder {
 public:
  /// Ring capacity (spans) per thread; power of two so the wrap is a mask.
  static constexpr size_t kCapacity = 4096;

  static TraceRecorder& ForCurrentThread();

  /// Opens a scope: returns the depth this span runs at.
  uint32_t EnterScope() { return depth_++; }

  /// Closes a scope and records the completed span.
  void Emit(const char* name, uint32_t depth, int64_t start_ns,
            int64_t duration_ns, uint64_t flow_id = 0) {
    --depth_;
    TraceEvent& e = events_[head_ & (kCapacity - 1)];
    e.name = name;
    e.start_ns = start_ns;
    e.duration_ns = duration_ns;
    e.flow_id = flow_id;
    e.depth = depth;
    e.thread_index = thread_index_;
    ++head_;
  }

  /// Spans ever emitted on this thread (monotonic; exceeds kCapacity once
  /// the ring has wrapped).
  uint64_t total_emitted() const { return head_; }
  uint32_t thread_index() const { return thread_index_; }

  /// Copies the retained spans, oldest first (at most kCapacity).
  void Snapshot(std::vector<TraceEvent>* out) const;

  /// Discards retained spans (tests). Call only from the owning thread or
  /// while it is quiescent.
  void Clear() { head_ = 0; }

 private:
  explicit TraceRecorder(uint32_t thread_index);

  std::vector<TraceEvent> events_;  ///< Sized kCapacity at construction.
  uint64_t head_ = 0;
  uint32_t depth_ = 0;
  uint32_t thread_index_;
};

/// Runtime master switch (default off). Spans opened while disabled
/// record nothing, even if tracing is re-enabled before they close.
void SetTracingEnabled(bool enabled);
inline std::atomic<bool>& TracingEnabledFlag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}
inline bool TracingEnabled() {
  return TracingEnabledFlag().load(std::memory_order_relaxed);
}

/// Steady-clock nanoseconds (monotonic within the process).
int64_t TraceNowNs();

/// Snapshot of every thread's retained spans, ordered by (thread_index,
/// emission order). Call while recorders are quiescent.
std::vector<TraceEvent> CollectTraceEvents();

/// Discards every thread's retained spans (tests).
void ClearTraceEvents();

/// RAII span. Use through KC_TRACE_SCOPE / KC_TRACE_SCOPE_FLOW.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, uint64_t flow_id = 0) {
    if (!TracingEnabled()) return;
    recorder_ = &TraceRecorder::ForCurrentThread();
    name_ = name;
    flow_id_ = flow_id;
    depth_ = recorder_->EnterScope();
    start_ns_ = TraceNowNs();
  }
  ~TraceSpan() {
    if (recorder_ == nullptr) return;
    recorder_->Emit(name_, depth_, start_ns_, TraceNowNs() - start_ns_,
                    flow_id_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_ = nullptr;
  const char* name_ = nullptr;
  uint64_t flow_id_ = 0;
  int64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace obs
}  // namespace kc

#define KC_TRACE_CONCAT_INNER(a, b) a##b
#define KC_TRACE_CONCAT(a, b) KC_TRACE_CONCAT_INNER(a, b)

#ifdef KC_TRACE_DISABLED
/// Compiled out: no object, no atomic load, nothing.
#define KC_TRACE_SCOPE(name) \
  do {                       \
  } while (false)
#define KC_TRACE_SCOPE_FLOW(name, flow_id) \
  do {                                     \
  } while (false)
#else
#define KC_TRACE_SCOPE(name) \
  ::kc::obs::TraceSpan KC_TRACE_CONCAT(kc_trace_span_, __LINE__)(name)
/// Span carrying a causal flow id: spans with the same id (typically
/// CausalFlowId(source, wire_seq) on both ends of a message) are linked
/// by the Chrome-trace export.
#define KC_TRACE_SCOPE_FLOW(name, flow_id) \
  ::kc::obs::TraceSpan KC_TRACE_CONCAT(kc_trace_span_, __LINE__)(name, flow_id)
#endif

#endif  // KALMANCAST_OBS_TRACE_H_
