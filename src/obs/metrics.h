#ifndef KALMANCAST_OBS_METRICS_H_
#define KALMANCAST_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace kc {
namespace obs {

/// The metrics layer's contract (docs/OBSERVABILITY.md):
///
///  - Registration (GetCounter/GetGauge/GetHistogram) is the cold path: it
///    takes the registry mutex and may allocate. Callers register once and
///    cache the returned pointer, which is stable for the registry's
///    lifetime.
///  - Recording (Inc/Set/Add/Record) is the hot path: zero heap
///    allocations, no locks, no branches beyond the histogram's bounded
///    bucket scan. Accumulation is a relaxed atomic load + store (not an
///    atomic read-modify-write): values are torn-free for readers on any
///    thread, but each instrument must have a **single writer at a
///    time**. That is the arena model by construction — one arena per
///    shard, written only by the thread stepping that shard, with the
///    tick barrier ordering any driver-side writes — and it makes a
///    counter increment a couple of plain moves instead of a `lock xadd`
///    (the difference between ~2% and ~25% overhead on the smallest
///    filter's hot loop; see BENCH_perf.json `observability_overhead`).
///  - Determinism: with per-shard arenas merged in shard order after the
///    tick barrier, every accumulation is a fixed sequence, so counters,
///    bucket counts, and even the order-dependent double sums are
///    bit-identical for any thread count.
///  - Metrics registered with `wall_clock = true` hold wall-clock timings
///    whose values are inherently run-dependent; exporters can exclude
///    them to produce byte-identical output across runs and thread counts.

/// Monotonically increasing integer metric. Single writer at a time (the
/// arena model); readable from any thread.
class Counter {
 public:
  void Inc(int64_t n = 1) {
    value_.store(value_.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  Counter() = default;
  std::atomic<int64_t> value_{0};
};

/// Last-written double metric. Merging *sums* gauges across arenas (a
/// per-shard level, e.g. registered sources, merges into the fleet total).
/// Single writer at a time; readable from any thread.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    value_.store(value_.load(std::memory_order_relaxed) + d,
                 std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Fixed upper-bound bucket layout, chosen once at registration. At most
/// kMaxBounds finite bounds; one implicit overflow bucket above the last.
struct Buckets {
  static constexpr size_t kMaxBounds = 30;

  std::array<double, kMaxBounds> bounds{};
  size_t count = 0;

  /// bounds[i] = first * factor^i, `n` of them. Degenerate inputs are
  /// clamped to a valid strictly-increasing layout and warned about once
  /// through the pluggable log sink: n is clamped to kMaxBounds, first
  /// must be finite and > 0 (else 1.0), factor finite and > 1 (else 2.0),
  /// and n == 0 yields only the implicit overflow bucket.
  static Buckets Exponential(double first, double factor, size_t n);
  /// bounds[i] = start + width * i, `n` of them. Same degenerate-input
  /// policy: n clamped to kMaxBounds, start must be finite (else 0.0),
  /// width finite and > 0 (else 1.0), n == 0 yields only the overflow
  /// bucket. Either way the resulting bounds are strictly increasing.
  static Buckets Linear(double start, double width, size_t n);
};

/// Fixed-bucket histogram with total count and sum. All storage is
/// preallocated at registration; Record is lock- and allocation-free.
/// Single writer at a time; readable from any thread. The total count is
/// derived from the bucket counts on read, so Record touches exactly one
/// bucket and the sum.
class Histogram {
 public:
  void Record(double v) {
    size_t i = 0;
    while (i < num_bounds_ && v > bounds_[i]) ++i;
    counts_[i].store(counts_[i].load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    sum_.store(sum_.load(std::memory_order_relaxed) + v,
               std::memory_order_relaxed);
  }

  int64_t count() const {
    int64_t total = 0;
    for (size_t i = 0; i <= num_bounds_; ++i) {
      total += counts_[i].load(std::memory_order_relaxed);
    }
    return total;
  }
  /// Estimates the q-quantile of the recorded distribution by linear
  /// interpolation inside the containing bucket (cold path; see
  /// HistogramQuantile for the exact semantics).
  double Quantile(double q) const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  size_t num_buckets() const { return num_bounds_ + 1; }
  /// Upper bound of bucket `i`; the last bucket is unbounded (+inf).
  double bucket_bound(size_t i) const;
  int64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricRegistry;
  explicit Histogram(const Buckets& buckets);

  size_t num_bounds_;
  std::array<double, Buckets::kMaxBounds> bounds_;
  std::array<std::atomic<int64_t>, Buckets::kMaxBounds + 1> counts_;
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's exported state (cold path, allocates).
struct MetricRow {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  bool wall_clock = false;
  int64_t counter = 0;       ///< kCounter.
  double gauge = 0.0;        ///< kGauge.
  std::vector<double> hist_bounds;   ///< kHistogram: finite upper bounds.
  std::vector<int64_t> hist_counts;  ///< kHistogram: bounds + overflow.
  int64_t hist_count = 0;
  double hist_sum = 0.0;
};

/// A metric arena: name -> metric, with cold-path registration and stable
/// metric pointers. One arena per shard (plus one for the driver thread)
/// keeps hot-path recording contention- and race-free by construction;
/// MergeFrom combines arenas after the tick barrier.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Registers (or finds) a metric. Returns nullptr only if `name` is
  /// already registered as a different kind. A histogram's bucket layout
  /// is fixed by its first registration; later calls ignore `buckets`.
  /// `wall_clock` marks run-dependent metrics for exporters (timings, and
  /// anything derived from them such as encoded-snapshot byte counts);
  /// like the bucket layout, it is fixed by the first registration.
  Counter* GetCounter(std::string_view name, bool wall_clock = false);
  Gauge* GetGauge(std::string_view name, bool wall_clock = false);
  Histogram* GetHistogram(std::string_view name, const Buckets& buckets,
                          bool wall_clock = false);

  /// Accumulates every metric of `other` into this registry, registering
  /// missing names (wall-clock flags carry over). Counters and histogram
  /// buckets add; gauges add (see Gauge). Kind conflicts are skipped, as
  /// are histograms whose bucket layout disagrees with the one already
  /// registered here — a layout mismatch means two arenas registered the
  /// same name with different buckets, so bucket-by-bucket addition would
  /// silently misbin; the row is dropped and the conflict is recorded
  /// (see Validate). Merging shard arenas in shard order after the
  /// barrier yields identical results for any thread count.
  void MergeFrom(const MetricRegistry& other);

  /// Snapshot of every metric, sorted by name (cold path).
  std::vector<MetricRow> Rows() const;

  size_t size() const;

  /// Conflicts seen so far, in first-seen order: kind conflicts ("name:
  /// registered as X, requested as Y") and histogram bucket-layout
  /// mismatches found by MergeFrom. A kind conflict means some caller got
  /// nullptr and its instrument is silently disabled; a layout conflict
  /// means a MergeFrom row was dropped. Each distinct conflict is also
  /// logged once through the pluggable log sink when it first happens.
  /// Empty means every registration agreed.
  std::vector<std::string> Validate() const;

 private:
  struct Entry {
    MetricKind kind;
    bool wall_clock = false;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Records (and logs, first time) a kind conflict. Caller holds mu_.
  void NoteConflictLocked(std::string_view name, MetricKind registered,
                          MetricKind requested);
  /// Records (and logs, first time) an arbitrary conflict description.
  void NoteConflict(std::string desc);
  void NoteConflictDescLocked(std::string desc);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> metrics_;
  std::vector<std::string> conflicts_;
};

/// Process-wide default registry for single-arena deployments (examples,
/// tests, the non-sharded Fleet). Sharded deployments use per-shard
/// registries instead.
MetricRegistry& DefaultRegistry();

/// Estimates the q-quantile of a bucketed distribution by linear
/// interpolation inside the containing bucket (the classic Prometheus
/// `histogram_quantile` estimator). `bounds` holds the finite upper
/// bounds, strictly increasing; `counts` the per-bucket (non-cumulative)
/// counts, sized bounds.size() + 1 with the overflow bucket last — the
/// layout MetricRow carries. q is clamped to [0, 1]. Deterministic
/// conventions at the edges: an empty histogram yields 0; a quantile
/// landing in the overflow bucket clamps to the last finite bound (there
/// is no upper edge to interpolate toward); the first bucket interpolates
/// from 0 when its bound is positive, else reports its bound.
double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<int64_t>& counts, double q);

}  // namespace obs
}  // namespace kc

#endif  // KALMANCAST_OBS_METRICS_H_
