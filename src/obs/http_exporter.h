#ifndef KALMANCAST_OBS_HTTP_EXPORTER_H_
#define KALMANCAST_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace kc {
namespace obs {

/// Minimal blocking HTTP/1.1 telemetry endpoint (docs/OBSERVABILITY.md,
/// "HTTP endpoint") — the repo's first real socket code, and a deliberate
/// stepping stone toward the wire transport on the roadmap. One
/// background thread accepts loopback connections and serves GET
/// requests, one connection at a time (Connection: close); a scrape
/// every few seconds is far below the point where that matters.
///
/// Routes:
///   /metrics      Prometheus text exposition of the published metric
///                 rows. `?prefix=kc.audit.` scopes to a name prefix.
///   /healthz      text/plain health summary; 200 when healthy, 503
///                 otherwise (so probes need no body parsing).
///   /audit        the published precision-audit report (JSON).
///                 `?prefix=source.` / `?prefix=query.` scopes the
///                 sources/queries arrays when an AuditDoc is published.
///   /timeseries   the published windowed time-series (JSON).
///                 `?prefix=kc.agent.` scopes to a series-name prefix
///                 when a TimeSeriesStore source is attached.
///
/// Publish-snapshot model: the simulation's driver thread — after its
/// tick barrier, where the merged view is consistent — *publishes*
/// rendered state into the server (Publish*). The serving thread only
/// ever reads those snapshots under a mutex and never touches live
/// registries, so scrapes cannot race shard workers and cost the hot
/// path nothing. Deterministic by the same token: a scrape returns
/// exactly the published (deterministic) bytes.
class TelemetryHttpServer {
 public:
  struct Config {
    /// Port to bind on 127.0.0.1; 0 asks the kernel for an ephemeral
    /// port (see port()). Telemetry is unauthenticated, so the listener
    /// is loopback-only by design.
    int port = 0;
    int backlog = 16;
  };

  TelemetryHttpServer() : TelemetryHttpServer(Config()) {}
  explicit TelemetryHttpServer(Config config);
  ~TelemetryHttpServer();
  TelemetryHttpServer(const TelemetryHttpServer&) = delete;
  TelemetryHttpServer& operator=(const TelemetryHttpServer&) = delete;

  /// Binds, listens, and starts the serving thread. Fails (without a
  /// thread) if the socket cannot be bound.
  Status Start();
  /// Stops the serving thread and closes the listener. Idempotent; also
  /// run by the destructor.
  void Stop();
  bool running() const { return running_; }
  /// The bound port (the kernel's pick when config.port == 0); 0 before
  /// Start().
  int port() const { return port_; }

  // --- Publishing (driver thread, after the barrier) ---

  /// Replaces the /metrics snapshot (a MetricRegistry::Rows() result;
  /// typically the merged fleet registry).
  void PublishMetrics(std::vector<MetricRow> rows);
  /// Replaces the /healthz snapshot. `healthy` selects 200 vs 503.
  void PublishHealthz(bool healthy, std::string body);
  /// Replaces the /audit JSON snapshot (unscoped: `?prefix=` is ignored
  /// without the structured doc below).
  void PublishAudit(std::string json);
  /// Replaces the /audit snapshot with a structured doc, enabling
  /// `?prefix=source.<id>` / `?prefix=query.<name>` scoped scrapes.
  void PublishAuditDoc(AuditDoc doc);
  /// Replaces the /timeseries JSON snapshot.
  void PublishTimeseries(std::string json);

  /// Attaches a live TimeSeriesStore as the /timeseries backend, enabling
  /// per-request `?prefix=` scoping. The store is internally locked and
  /// documented for endpoint reads between captures; it must outlive this
  /// server (or be detached with nullptr first). Takes precedence over
  /// PublishTimeseries.
  void SetTimeseriesSource(const TimeSeriesStore* store);

  /// Requests answered so far (any status).
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Response {
    int status = 200;
    std::string content_type;
    std::string body;
  };

  /// Pure request -> response mapping over the published snapshots.
  Response Handle(std::string_view method, std::string_view target) const;
  /// The accept/serve loop (serving thread).
  void Serve();
  /// Reads one request's header block and answers it.
  void ServeConnection(int fd);

  Config config_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  std::thread thread_;
  std::atomic<int64_t> requests_served_{0};

  mutable std::mutex mu_;  ///< Guards the published snapshots.
  std::vector<MetricRow> metric_rows_;
  bool healthy_ = true;
  std::string healthz_body_;
  std::string audit_json_;
  AuditDoc audit_doc_;
  bool has_audit_doc_ = false;
  std::string timeseries_json_;
  const TimeSeriesStore* timeseries_source_ = nullptr;
};

}  // namespace obs
}  // namespace kc

#endif  // KALMANCAST_OBS_HTTP_EXPORTER_H_
