#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace kc {
namespace obs {

namespace {

const char* KindShortName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

}  // namespace

namespace {

/// Log-once cadence for degenerate bucket layouts: big enough that each
/// call site below effectively fires a single warning per process, small
/// enough that a pathological hot loop still resurfaces eventually.
constexpr int64_t kBucketWarnEvery = int64_t{1} << 30;

/// Drops any bound that fails to strictly increase (duplicate, decreasing,
/// or non-finite after overflow) by truncating the layout there. A final
/// backstop: the clamps in Exponential/Linear make this a no-op for every
/// sane input.
void TruncateNonMonotone(Buckets* b) {
  for (size_t i = 0; i < b->count; ++i) {
    bool bad = !std::isfinite(b->bounds[i]) ||
               (i > 0 && !(b->bounds[i] > b->bounds[i - 1]));
    if (bad) {
      KC_LOG_EVERY_N(Warning, kBucketWarnEvery)
          << "histogram bounds stop increasing at index " << i
          << "; truncating to " << i << " finite buckets";
      b->count = i;
      return;
    }
  }
}

}  // namespace

Buckets Buckets::Exponential(double first, double factor, size_t n) {
  Buckets b;
  if (n == 0) {
    // Legal but almost certainly a bug upstream: the histogram degenerates
    // to a single overflow bucket.
    KC_LOG_EVERY_N(Warning, kBucketWarnEvery)
        << "Buckets::Exponential(n=0): histogram will have only the "
           "overflow bucket";
    return b;
  }
  if (n > kMaxBounds) {
    KC_LOG_EVERY_N(Warning, kBucketWarnEvery)
        << "Buckets::Exponential(n=" << n << ") clamped to " << kMaxBounds
        << " bounds";
  }
  if (!std::isfinite(first) || first <= 0.0) {
    KC_LOG_EVERY_N(Warning, kBucketWarnEvery)
        << "Buckets::Exponential(first=" << first
        << "): first bound must be finite and > 0; using 1.0";
    first = 1.0;
  }
  if (!std::isfinite(factor) || factor <= 1.0) {
    KC_LOG_EVERY_N(Warning, kBucketWarnEvery)
        << "Buckets::Exponential(factor=" << factor
        << "): factor must be finite and > 1 for increasing bounds; "
           "using 2.0";
    factor = 2.0;
  }
  b.count = std::min(n, kMaxBounds);
  double bound = first;
  for (size_t i = 0; i < b.count; ++i) {
    b.bounds[i] = bound;
    bound *= factor;
  }
  TruncateNonMonotone(&b);
  return b;
}

Buckets Buckets::Linear(double start, double width, size_t n) {
  Buckets b;
  if (n == 0) {
    KC_LOG_EVERY_N(Warning, kBucketWarnEvery)
        << "Buckets::Linear(n=0): histogram will have only the overflow "
           "bucket";
    return b;
  }
  if (n > kMaxBounds) {
    KC_LOG_EVERY_N(Warning, kBucketWarnEvery)
        << "Buckets::Linear(n=" << n << ") clamped to " << kMaxBounds
        << " bounds";
  }
  if (!std::isfinite(start)) {
    KC_LOG_EVERY_N(Warning, kBucketWarnEvery)
        << "Buckets::Linear(start=" << start
        << "): start must be finite; using 0.0";
    start = 0.0;
  }
  if (!std::isfinite(width) || width <= 0.0) {
    KC_LOG_EVERY_N(Warning, kBucketWarnEvery)
        << "Buckets::Linear(width=" << width
        << "): width must be finite and > 0 for increasing bounds; "
           "using 1.0";
    width = 1.0;
  }
  b.count = std::min(n, kMaxBounds);
  for (size_t i = 0; i < b.count; ++i) {
    b.bounds[i] = start + width * static_cast<double>(i);
  }
  TruncateNonMonotone(&b);
  return b;
}

Histogram::Histogram(const Buckets& buckets)
    : num_bounds_(std::min(buckets.count, Buckets::kMaxBounds)),
      bounds_(buckets.bounds) {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

double Histogram::bucket_bound(size_t i) const {
  return i < num_bounds_ ? bounds_[i]
                         : std::numeric_limits<double>::infinity();
}

namespace {

/// Shared estimator behind Histogram::Quantile and HistogramQuantile.
/// `counts` has num_bounds + 1 entries (overflow last).
double QuantileImpl(const double* bounds, size_t num_bounds,
                    const int64_t* counts, double q) {
  q = std::clamp(q, 0.0, 1.0);
  int64_t total = 0;
  for (size_t i = 0; i <= num_bounds; ++i) total += counts[i];
  if (total <= 0) return 0.0;
  double rank = q * static_cast<double>(total);
  int64_t cum_before = 0;
  for (size_t i = 0; i <= num_bounds; ++i) {
    if (counts[i] == 0) continue;
    int64_t cum = cum_before + counts[i];
    if (static_cast<double>(cum) >= rank) {
      // Overflow bucket: no upper edge to interpolate toward, so the
      // estimate saturates at the largest finite bound.
      if (i == num_bounds) return num_bounds == 0 ? 0.0 : bounds[num_bounds - 1];
      double upper = bounds[i];
      double lower;
      if (i == 0) {
        // Prometheus convention: a positive first bound interpolates from
        // an assumed 0 lower edge; a non-positive one cannot, so the
        // bucket reports its bound.
        if (upper <= 0.0) return upper;
        lower = 0.0;
      } else {
        lower = bounds[i - 1];
      }
      double in_bucket = rank - static_cast<double>(cum_before);
      double frac = in_bucket / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
    cum_before = cum;
  }
  return num_bounds == 0 ? 0.0 : bounds[num_bounds - 1];
}

}  // namespace

double Histogram::Quantile(double q) const {
  std::array<int64_t, Buckets::kMaxBounds + 1> counts;
  for (size_t i = 0; i <= num_bounds_; ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return QuantileImpl(bounds_.data(), num_bounds_, counts.data(), q);
}

double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<int64_t>& counts, double q) {
  // Tolerate a short counts vector (treat missing buckets as empty) so the
  // helper is safe on hand-built rows.
  std::vector<int64_t> padded = counts;
  padded.resize(bounds.size() + 1, 0);
  return QuantileImpl(bounds.data(), bounds.size(), padded.data(), q);
}

Counter* MetricRegistry::GetCounter(std::string_view name, bool wall_clock) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = MetricKind::kCounter;
    entry.wall_clock = wall_clock;
    entry.counter.reset(new Counter());
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  if (it->second.kind != MetricKind::kCounter) {
    NoteConflictLocked(name, it->second.kind, MetricKind::kCounter);
    return nullptr;
  }
  return it->second.counter.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name, bool wall_clock) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = MetricKind::kGauge;
    entry.wall_clock = wall_clock;
    entry.gauge.reset(new Gauge());
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  if (it->second.kind != MetricKind::kGauge) {
    NoteConflictLocked(name, it->second.kind, MetricKind::kGauge);
    return nullptr;
  }
  return it->second.gauge.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name,
                                        const Buckets& buckets,
                                        bool wall_clock) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = MetricKind::kHistogram;
    entry.wall_clock = wall_clock;
    entry.histogram.reset(new Histogram(buckets));
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  if (it->second.kind != MetricKind::kHistogram) {
    NoteConflictLocked(name, it->second.kind, MetricKind::kHistogram);
    return nullptr;
  }
  return it->second.histogram.get();
}

void MetricRegistry::MergeFrom(const MetricRegistry& other) {
  for (const MetricRow& row : other.Rows()) {
    switch (row.kind) {
      case MetricKind::kCounter: {
        Counter* c = GetCounter(row.name, row.wall_clock);
        if (c != nullptr) c->Inc(row.counter);
        break;
      }
      case MetricKind::kGauge: {
        Gauge* g = GetGauge(row.name, row.wall_clock);
        if (g != nullptr) g->Add(row.gauge);
        break;
      }
      case MetricKind::kHistogram: {
        Buckets buckets;
        buckets.count = std::min(row.hist_bounds.size(), Buckets::kMaxBounds);
        for (size_t i = 0; i < buckets.count; ++i) {
          buckets.bounds[i] = row.hist_bounds[i];
        }
        Histogram* h = GetHistogram(row.name, buckets, row.wall_clock);
        if (h == nullptr) break;
        // Bucket-by-bucket addition is only meaningful when both sides
        // use the same layout. Arenas built from the same code do by
        // construction; a remote registry (obs/snapshot.h) need not, and
        // misbinning its counts would corrupt quantile estimates
        // silently. A mismatched row is dropped and recorded instead.
        bool same_layout = row.hist_bounds.size() + 1 == h->num_buckets();
        for (size_t i = 0; same_layout && i < row.hist_bounds.size(); ++i) {
          same_layout = row.hist_bounds[i] == h->bucket_bound(i);
        }
        if (!same_layout || row.hist_counts.size() != h->num_buckets()) {
          NoteConflict(row.name +
                       ": histogram bucket layouts differ across registries; "
                       "merge row dropped");
          break;
        }
        for (size_t i = 0; i < row.hist_counts.size(); ++i) {
          h->counts_[i].store(
              h->counts_[i].load(std::memory_order_relaxed) +
                  row.hist_counts[i],
              std::memory_order_relaxed);
        }
        h->sum_.store(h->sum_.load(std::memory_order_relaxed) + row.hist_sum,
                      std::memory_order_relaxed);
        break;
      }
    }
  }
}

std::vector<MetricRow> MetricRegistry::Rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricRow> rows;
  rows.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricRow row;
    row.name = name;
    row.kind = entry.kind;
    row.wall_clock = entry.wall_clock;
    switch (entry.kind) {
      case MetricKind::kCounter:
        row.counter = entry.counter->value();
        break;
      case MetricKind::kGauge:
        row.gauge = entry.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        row.hist_bounds.assign(h.bounds_.begin(),
                               h.bounds_.begin() + h.num_bounds_);
        row.hist_counts.reserve(h.num_buckets());
        for (size_t i = 0; i < h.num_buckets(); ++i) {
          row.hist_counts.push_back(h.bucket_count(i));
        }
        row.hist_count = h.count();
        row.hist_sum = h.sum();
        break;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

size_t MetricRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

std::vector<std::string> MetricRegistry::Validate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conflicts_;
}

void MetricRegistry::NoteConflictLocked(std::string_view name,
                                        MetricKind registered,
                                        MetricKind requested) {
  NoteConflictDescLocked(std::string(name) + ": registered as " +
                         KindShortName(registered) + ", requested as " +
                         KindShortName(requested));
}

void MetricRegistry::NoteConflict(std::string desc) {
  std::lock_guard<std::mutex> lock(mu_);
  NoteConflictDescLocked(std::move(desc));
}

void MetricRegistry::NoteConflictDescLocked(std::string desc) {
  for (const std::string& seen : conflicts_) {
    if (seen == desc) return;  // Log each distinct conflict once.
  }
  KC_LOG(Warning) << "metric conflict: " << desc;
  conflicts_.push_back(std::move(desc));
}

MetricRegistry& DefaultRegistry() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace kc
