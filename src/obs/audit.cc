#include "obs/audit.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"

namespace kc {
namespace obs {

namespace {

/// Deterministic double rendering (same convention as the exporters).
std::string Num(double v) { return StrFormat("%.9g", v); }

}  // namespace

const char* SloStateName(SloState state) {
  switch (state) {
    case SloState::kOk:
      return "OK";
    case SloState::kBurning:
      return "BURNING";
    case SloState::kExhausted:
      return "EXHAUSTED";
  }
  return "?";
}

SourceAudit::SourceAudit(PrecisionAuditor* owner, int32_t source_id)
    : owner_(owner), source_id_(source_id) {}

void SourceAudit::Sample(int64_t tick, double abs_error, double bound,
                         int64_t staleness_ticks, bool degraded) {
  const AuditConfig& c = owner_->config_;
  if (window_end_ == 0) {
    // First sample anchors the tick-aligned window grid.
    window_end_ = (tick / c.slo_window_ticks + 1) * c.slo_window_ticks;
  } else if (tick >= window_end_) {
    CloseWindow(tick);
  }
  ++samples_;
  ++window_samples_;
  last_staleness_ = staleness_ticks;
  // A non-positive bound cannot contain anything; report full budget burn.
  double util = bound > 0.0 ? abs_error / bound : (abs_error > 0.0 ? 2.0 : 0.0);
  utilization_sum_ += util;
  if (util > max_utilization_) max_utilization_ = util;
  if (owner_->samples_metric_ != nullptr) owner_->samples_metric_->Inc();
  if (owner_->utilization_metric_ != nullptr) {
    owner_->utilization_metric_->Record(util);
  }
  if (owner_->staleness_metric_ != nullptr) {
    owner_->staleness_metric_->Record(static_cast<double>(staleness_ticks));
  }
  if (degraded) {
    ++degraded_samples_;
    if (owner_->degraded_metric_ != nullptr) owner_->degraded_metric_->Inc();
  }
  if (abs_error <= bound) {
    ++contained_;
    return;
  }
  ++violations_;
  ++window_violations_;
  if (owner_->violations_metric_ != nullptr) owner_->violations_metric_->Inc();
  if (recorder_ != nullptr) {
    recorder_->Record(tick, RecorderEventKind::kAuditViolation, /*seq=*/tick,
                      /*value=*/util);
  }
}

void SourceAudit::CloseWindow(int64_t tick) {
  const AuditConfig& c = owner_->config_;
  ++windows_;
  if (owner_->windows_metric_ != nullptr) owner_->windows_metric_->Inc();
  SloState next = SloState::kOk;
  if (window_violations_ >= c.exhausted_after) {
    next = SloState::kExhausted;
  } else if (window_violations_ >= c.burning_after) {
    next = SloState::kBurning;
  }
  if (next != slo_state_) {
    SloState prev = slo_state_;
    slo_state_ = next;
    if (recorder_ != nullptr) {
      RecorderEventKind kind = RecorderEventKind::kAuditSloOk;
      if (next == SloState::kBurning) {
        kind = RecorderEventKind::kAuditSloBurning;
      } else if (next == SloState::kExhausted) {
        kind = RecorderEventKind::kAuditSloExhausted;
      }
      recorder_->Record(tick, kind, /*seq=*/0,
                        /*value=*/static_cast<double>(window_violations_));
    }
    owner_->OnSloTransition(prev, next);
  }
  // The watchdog sees every window verdict, clean or breached, so its
  // streak machine recovers on clean windows like the other detectors.
  if (health_ != nullptr) health_->OnAuditWindow(window_violations_ > 0);
  window_violations_ = 0;
  window_samples_ = 0;
  window_end_ = (tick / c.slo_window_ticks + 1) * c.slo_window_ticks;
}

PrecisionAuditor::PrecisionAuditor(AuditConfig config) : config_(config) {
  if (config_.sample_every < 1) config_.sample_every = 1;
  if (config_.slo_window_ticks < 1) config_.slo_window_ticks = 1;
  if (config_.burning_after < 1) config_.burning_after = 1;
  if (config_.exhausted_after < config_.burning_after) {
    config_.exhausted_after = config_.burning_after;
  }
}

SourceAudit* PrecisionAuditor::ForSource(int32_t source_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(source_id);
  if (it == sources_.end()) {
    it = sources_
             .emplace(source_id, std::unique_ptr<SourceAudit>(
                                     new SourceAudit(this, source_id)))
             .first;
    if (recorder_ != nullptr) {
      it->second->recorder_ = recorder_->ForSource(source_id);
    }
    if (health_ != nullptr) {
      it->second->health_ = health_->FindMutable(source_id);
    }
    ++num_ok_;  // New sources start with an intact budget.
    UpdateStateGauges();
  }
  return it->second.get();
}

const SourceAudit* PrecisionAuditor::Find(int32_t source_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(source_id);
  return it == sources_.end() ? nullptr : it->second.get();
}

void PrecisionAuditor::BindMetrics(MetricRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    samples_metric_ = nullptr;
    violations_metric_ = nullptr;
    degraded_metric_ = nullptr;
    windows_metric_ = nullptr;
    transitions_metric_ = nullptr;
    utilization_metric_ = nullptr;
    staleness_metric_ = nullptr;
    ok_gauge_ = nullptr;
    burning_gauge_ = nullptr;
    exhausted_gauge_ = nullptr;
    return;
  }
  samples_metric_ = registry->GetCounter("kc.audit.samples");
  violations_metric_ = registry->GetCounter("kc.audit.violations");
  degraded_metric_ = registry->GetCounter("kc.audit.degraded_samples");
  windows_metric_ = registry->GetCounter("kc.audit.windows");
  transitions_metric_ = registry->GetCounter("kc.audit.slo_transitions");
  // Utilization of the bound: 0.05-wide buckets to 1.0, then overflow —
  // anything above 1.0 is a violation by definition.
  utilization_metric_ = registry->GetHistogram(
      "kc.audit.utilization", Buckets::Linear(0.05, 0.05, 20));
  staleness_metric_ = registry->GetHistogram(
      "kc.audit.staleness", Buckets::Exponential(1.0, 2.0, 12));
  ok_gauge_ = registry->GetGauge("kc.audit.sources_ok");
  burning_gauge_ = registry->GetGauge("kc.audit.sources_burning");
  exhausted_gauge_ = registry->GetGauge("kc.audit.sources_exhausted");
  UpdateStateGauges();
}

void PrecisionAuditor::BindRecorder(FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mu_);
  recorder_ = recorder;
  for (auto& [id, audit] : sources_) {
    audit->recorder_ =
        recorder_ == nullptr ? nullptr : recorder_->ForSource(id);
  }
}

void PrecisionAuditor::BindHealth(HealthMonitor* health) {
  std::lock_guard<std::mutex> lock(mu_);
  health_ = health;
  for (auto& [id, audit] : sources_) {
    audit->health_ = health_ == nullptr ? nullptr : health_->FindMutable(id);
  }
}

void PrecisionAuditor::OnQuery(std::string_view name, bool ok, bool stale,
                               bool degraded, bool unhealthy) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    std::string key(name);
    it = queries_.emplace(key, AuditQueryTally{}).first;
    it->second.name = key;
  }
  AuditQueryTally& t = it->second;
  if (!ok) {
    ++t.failed;
    return;
  }
  ++t.evals;
  if (stale) ++t.stale;
  if (degraded) ++t.degraded;
  if (unhealthy) ++t.unhealthy;
}

std::vector<int32_t> PrecisionAuditor::SourceIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int32_t> ids;
  ids.reserve(sources_.size());
  for (const auto& [id, audit] : sources_) {
    (void)audit;
    ids.push_back(id);
  }
  return ids;
}

std::vector<AuditQueryTally> PrecisionAuditor::QueryTallies() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditQueryTally> tallies;
  tallies.reserve(queries_.size());
  for (const auto& [name, tally] : queries_) {
    (void)name;
    tallies.push_back(tally);
  }
  return tallies;
}

std::string PrecisionAuditor::SourceLine(int32_t source_id) const {
  const SourceAudit* a = Find(source_id);
  if (a == nullptr) return std::string();
  return StrFormat(
      "source %4d  slo=%-9s samples=%lld contained=%lld violations=%lld "
      "max_util=%s degraded=%lld staleness=%lld\n",
      source_id, SloStateName(a->slo_state()),
      static_cast<long long>(a->samples()),
      static_cast<long long>(a->contained()),
      static_cast<long long>(a->violations()),
      Num(a->max_utilization()).c_str(),
      static_cast<long long>(a->degraded_samples()),
      static_cast<long long>(a->last_staleness()));
}

std::string PrecisionAuditor::SourceJson(int32_t source_id) const {
  const SourceAudit* a = Find(source_id);
  if (a == nullptr) return std::string();
  std::ostringstream os;
  os << "{\"id\":" << source_id << ",\"slo\":\"" << SloStateName(a->slo_state())
     << "\",\"samples\":" << a->samples() << ",\"contained\":" << a->contained()
     << ",\"violations\":" << a->violations()
     << ",\"windows\":" << a->windows()
     << ",\"max_utilization\":" << Num(a->max_utilization())
     << ",\"mean_utilization\":" << Num(a->mean_utilization())
     << ",\"degraded_samples\":" << a->degraded_samples()
     << ",\"last_staleness\":" << a->last_staleness() << "}";
  return os.str();
}

std::string PrecisionAuditor::ReportText() const {
  AuditMergeView view;
  view.config = &config_;
  view.arenas = {this};
  view.ids = SourceIds();
  view.arena_of = [this](int32_t) { return this; };
  return MergedAuditReportText(view);
}

std::string PrecisionAuditor::ReportJson() const {
  AuditMergeView view;
  view.config = &config_;
  view.arenas = {this};
  view.ids = SourceIds();
  view.arena_of = [this](int32_t) { return this; };
  return MergedAuditReportJson(view);
}

void PrecisionAuditor::OnSloTransition(SloState from, SloState to) {
  auto count = [this](SloState s) -> int64_t& {
    switch (s) {
      case SloState::kBurning:
        return num_burning_;
      case SloState::kExhausted:
        return num_exhausted_;
      case SloState::kOk:
      default:
        return num_ok_;
    }
  };
  --count(from);
  ++count(to);
  UpdateStateGauges();
  if (transitions_metric_ != nullptr) transitions_metric_->Inc();
}

void PrecisionAuditor::UpdateStateGauges() {
  if (ok_gauge_ != nullptr) ok_gauge_->Set(static_cast<double>(num_ok_));
  if (burning_gauge_ != nullptr) {
    burning_gauge_->Set(static_cast<double>(num_burning_));
  }
  if (exhausted_gauge_ != nullptr) {
    exhausted_gauge_->Set(static_cast<double>(num_exhausted_));
  }
}

namespace {

/// Fleet-wide sums used by every merged renderer.
struct AuditTotals {
  int64_t sources = 0;
  int64_t samples = 0;
  int64_t contained = 0;
  int64_t violations = 0;
  int64_t degraded = 0;
  int64_t windows = 0;
  int64_t slo_ok = 0;
  int64_t slo_burning = 0;
  int64_t slo_exhausted = 0;

  double containment_pct() const {
    return samples > 0
               ? 100.0 * static_cast<double>(contained) /
                     static_cast<double>(samples)
               : 100.0;
  }
};

AuditTotals Totals(const AuditMergeView& view) {
  AuditTotals t;
  for (int32_t id : view.ids) {
    const PrecisionAuditor* arena = view.arena_of(id);
    const SourceAudit* a = arena == nullptr ? nullptr : arena->Find(id);
    if (a == nullptr) continue;
    ++t.sources;
    t.samples += a->samples();
    t.contained += a->contained();
    t.violations += a->violations();
    t.degraded += a->degraded_samples();
    t.windows += a->windows();
    switch (a->slo_state()) {
      case SloState::kOk:
        ++t.slo_ok;
        break;
      case SloState::kBurning:
        ++t.slo_burning;
        break;
      case SloState::kExhausted:
        ++t.slo_exhausted;
        break;
    }
  }
  return t;
}

/// Query tallies merged by name across every arena (arenas are walked in
/// the given order; names sort the final list, so the result is
/// deterministic for any sharding).
std::vector<AuditQueryTally> MergedQueries(const AuditMergeView& view) {
  std::map<std::string, AuditQueryTally> merged;
  for (const PrecisionAuditor* arena : view.arenas) {
    if (arena == nullptr) continue;
    for (const AuditQueryTally& t : arena->QueryTallies()) {
      AuditQueryTally& m = merged[t.name];
      m.name = t.name;
      m.evals += t.evals;
      m.failed += t.failed;
      m.stale += t.stale;
      m.degraded += t.degraded;
      m.unhealthy += t.unhealthy;
    }
  }
  std::vector<AuditQueryTally> out;
  out.reserve(merged.size());
  for (auto& [name, tally] : merged) {
    (void)name;
    out.push_back(std::move(tally));
  }
  return out;
}

}  // namespace

std::string MergedAuditSummaryLine(const AuditMergeView& view) {
  AuditTotals t = Totals(view);
  return StrFormat(
      "audit: sources=%lld ok=%lld burning=%lld exhausted=%lld samples=%lld "
      "violations=%lld containment=%s%%\n",
      static_cast<long long>(t.sources), static_cast<long long>(t.slo_ok),
      static_cast<long long>(t.slo_burning),
      static_cast<long long>(t.slo_exhausted),
      static_cast<long long>(t.samples),
      static_cast<long long>(t.violations), Num(t.containment_pct()).c_str());
}

std::string MergedAuditReportText(const AuditMergeView& view) {
  std::ostringstream os;
  os << MergedAuditSummaryLine(view);
  for (int32_t id : view.ids) {
    const PrecisionAuditor* arena = view.arena_of(id);
    if (arena != nullptr) os << arena->SourceLine(id);
  }
  for (const AuditQueryTally& q : MergedQueries(view)) {
    os << StrFormat(
        "query %-16s evals=%lld failed=%lld stale=%lld degraded=%lld "
        "unhealthy=%lld\n",
        q.name.c_str(), static_cast<long long>(q.evals),
        static_cast<long long>(q.failed), static_cast<long long>(q.stale),
        static_cast<long long>(q.degraded),
        static_cast<long long>(q.unhealthy));
  }
  return os.str();
}

AuditDoc MergedAuditReportDoc(const AuditMergeView& view) {
  AuditDoc doc;
  AuditTotals t = Totals(view);
  std::ostringstream head;
  head << "{\"config\":{";
  if (view.config != nullptr) {
    head << "\"sample_every\":" << view.config->sample_every
         << ",\"slo_window_ticks\":" << view.config->slo_window_ticks
         << ",\"burning_after\":" << view.config->burning_after
         << ",\"exhausted_after\":" << view.config->exhausted_after;
  }
  head << "},\"totals\":{\"sources\":" << t.sources
       << ",\"samples\":" << t.samples << ",\"contained\":" << t.contained
       << ",\"violations\":" << t.violations << ",\"degraded\":" << t.degraded
       << ",\"windows\":" << t.windows
       << ",\"containment_pct\":" << Num(t.containment_pct())
       << ",\"slo_ok\":" << t.slo_ok << ",\"slo_burning\":" << t.slo_burning
       << ",\"slo_exhausted\":" << t.slo_exhausted << "}";
  doc.head = head.str();
  for (int32_t id : view.ids) {
    const PrecisionAuditor* arena = view.arena_of(id);
    std::string obj = arena == nullptr ? std::string() : arena->SourceJson(id);
    if (obj.empty()) continue;
    doc.sources.emplace_back(StrFormat("source.%d", id), std::move(obj));
  }
  for (const AuditQueryTally& q : MergedQueries(view)) {
    std::ostringstream os;
    os << "{\"name\":\"" << q.name << "\",\"evals\":" << q.evals
       << ",\"failed\":" << q.failed << ",\"stale\":" << q.stale
       << ",\"degraded\":" << q.degraded << ",\"unhealthy\":" << q.unhealthy
       << "}";
    doc.queries.emplace_back("query." + q.name, os.str());
  }
  std::ostringstream full;
  full << doc.head << ",\"sources\":[";
  bool first = true;
  for (const auto& [name, obj] : doc.sources) {
    if (!first) full << ",";
    first = false;
    full << obj;
  }
  full << "],\"queries\":[";
  first = true;
  for (const auto& [name, obj] : doc.queries) {
    if (!first) full << ",";
    first = false;
    full << obj;
  }
  full << "]}";
  doc.full = full.str();
  return doc;
}

std::string MergedAuditReportJson(const AuditMergeView& view) {
  return MergedAuditReportDoc(view).full;
}

}  // namespace obs
}  // namespace kc
