#ifndef KALMANCAST_OBS_HEALTH_STATE_H_
#define KALMANCAST_OBS_HEALTH_STATE_H_

#include <cstdint>

namespace kc {
namespace obs {

/// Per-source verdict of the filter-health watchdog (src/obs/health.h).
/// Split into its own header so the query layer can carry a health state
/// in QueryResult without pulling in the watchdog machinery.
///
/// Ordered by severity: combining detectors or aggregating sources takes
/// the max.
enum class HealthState : uint8_t {
  kOk = 0,        ///< All detectors within bounds.
  kSuspect = 1,   ///< A detector breached; not yet persistent.
  kDiverged = 2,  ///< Breach persisted across consecutive windows.
};

const char* HealthStateName(HealthState state);

}  // namespace obs
}  // namespace kc

#endif  // KALMANCAST_OBS_HEALTH_STATE_H_
