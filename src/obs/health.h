#ifndef KALMANCAST_OBS_HEALTH_H_
#define KALMANCAST_OBS_HEALTH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/health_state.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace kc {
namespace obs {

/// The filter-health watchdog (docs/OBSERVABILITY.md, "Filter health"):
/// answers the question metrics alone cannot — *is this source's filter
/// still statistically consistent with what the stream is doing?*
///
/// Three deterministic detectors per source, each evaluated on a fixed
/// window so the verdict is a pure function of the simulated history:
///
///  - **NIS consistency.** Every accepted reading yields a normalized
///    innovation squared (nu' S^-1 nu), which for a well-modeled filter
///    is chi-square with obs_dim degrees of freedom. The watchdog sums
///    `nis_window` consecutive samples and compares against the
///    two-sided chi-square band with nis_window * obs_dim dof (bounds
///    from src/common/chisq, computed once at registration). A
///    mis-modeled stream (e.g. wrong process noise) lands far outside
///    the band window after window.
///  - **Protocol rates.** Resync storms and suppression-rate collapse
///    over `rate_window_ticks` are the protocol-level symptom of the
///    same disease; either breaching its configured limit trips the
///    detector.
///  - **Precision audit.** The precision auditor (obs/audit.h) closes an
///    SLO window every `slo_window_ticks` and reports whether any
///    sampled answer escaped its bound. This is the only detector that
///    observes the contract *directly* rather than statistically.
///
/// Each detector runs the same streak machine: one breached window
/// escalates OK -> SUSPECT, `windows_to_diverge` consecutive breaches
/// escalate to DIVERGED, `windows_to_recover` consecutive clean windows
/// drop back to OK. The source's state is the max of the detectors.
///
/// Threading follows the arena model: one HealthMonitor per shard,
/// ForSource() is the registering cold path, the On*() feeds are the
/// lock- and allocation-free hot path with a single writer (the thread
/// stepping that source's shard).

struct HealthConfig {
  /// NIS samples per consistency window.
  size_t nis_window = 32;
  /// Two-sided coverage of the chi-square acceptance band. 0.999 means a
  /// well-modeled stream breaches a window with probability 1e-3.
  double nis_confidence = 0.999;
  /// Consecutive breached windows (either detector) before DIVERGED.
  int windows_to_diverge = 3;
  /// Consecutive clean windows before a breached detector returns to OK.
  int windows_to_recover = 2;
  /// Ticks per protocol-rate window.
  int64_t rate_window_ticks = 256;
  /// Resync requests per tick above which the rate detector breaches.
  /// <= 0 disables the resync-rate check.
  double max_resync_rate = 0.02;
  /// Suppression ratio (suppressed / decisions over the rate window)
  /// below which the rate detector breaches. <= 0 disables.
  double min_suppression_rate = 0.0;
};

/// Called on a worsening transition (OK->SUSPECT, *->DIVERGED) — the
/// hook that triggers an automatic black-box dump.
using HealthAnomalySink =
    std::function<void(int32_t source_id, HealthState from, HealthState to)>;

class HealthMonitor;

/// One source's watchdog state. Obtain via HealthMonitor::ForSource();
/// feed from the serving path (single writer).
class SourceHealth {
 public:
  /// Advances the rate window by one tick; evaluates it on the boundary.
  void OnTick();
  /// Feeds one NIS sample; negative values (predictor has none) are
  /// ignored. Evaluates the window once `nis_window` samples are in.
  void OnNis(double nis);
  /// Feeds one suppression decision.
  void OnDecision(bool suppressed);
  /// Feeds one replica-issued resync request.
  void OnResync();
  /// Feeds one completed precision-audit SLO window (breached = any
  /// containment violation inside it; see obs/audit.h). Runs the same
  /// streak machine as the other detectors; the source verdict is the max
  /// of all three. The auditor calls this on its window boundaries, so a
  /// contract breach the statistics miss still trips the watchdog.
  void OnAuditWindow(bool breached);

  HealthState state() const { return state_; }
  int32_t source_id() const { return source_id_; }
  int64_t nis_windows() const { return nis_windows_; }
  int64_t nis_breaches() const { return nis_breaches_; }
  int64_t rate_breaches() const { return rate_breaches_; }
  int64_t audit_breaches() const { return audit_breaches_; }
  /// Mean per-sample NIS of the last completed window (0 before the
  /// first completes). A healthy stream hovers near obs_dim.
  double last_window_mean_nis() const { return last_window_mean_nis_; }
  /// Acceptance band for the windowed NIS *sum* (diagnostics).
  double nis_sum_lo() const { return nis_sum_lo_; }
  double nis_sum_hi() const { return nis_sum_hi_; }

 private:
  friend class HealthMonitor;
  SourceHealth(HealthMonitor* owner, int32_t source_id, size_t obs_dim);

  void EvaluateNisWindow();
  void EvaluateRateWindow();
  /// Applies a window verdict to one detector's streak machine.
  static HealthState StepDetector(HealthState current, bool breached,
                                  int* breach_streak, int* clean_streak,
                                  const HealthConfig& config);
  /// Recomputes the combined state; fires transition bookkeeping.
  void Recombine(double detail);

  HealthMonitor* owner_;
  int32_t source_id_;
  size_t obs_dim_;
  SourceRecorder* recorder_ = nullptr;  ///< Optional transition log.

  // NIS detector.
  double nis_sum_lo_ = 0.0;
  double nis_sum_hi_ = 0.0;
  double nis_sum_ = 0.0;
  size_t nis_count_ = 0;
  HealthState nis_state_ = HealthState::kOk;
  int nis_breach_streak_ = 0;
  int nis_clean_streak_ = 0;
  int64_t nis_windows_ = 0;
  int64_t nis_breaches_ = 0;
  double last_window_mean_nis_ = 0.0;

  // Rate detector.
  int64_t ticks_in_window_ = 0;
  int64_t resyncs_in_window_ = 0;
  int64_t decisions_in_window_ = 0;
  int64_t suppressed_in_window_ = 0;
  HealthState rate_state_ = HealthState::kOk;
  int rate_breach_streak_ = 0;
  int rate_clean_streak_ = 0;
  int64_t rate_breaches_ = 0;

  // Audit detector (fed by the precision auditor's SLO windows).
  HealthState audit_state_ = HealthState::kOk;
  int audit_breach_streak_ = 0;
  int audit_clean_streak_ = 0;
  int64_t audit_breaches_ = 0;

  HealthState state_ = HealthState::kOk;
  int64_t tick_ = 0;  ///< Ticks seen (stamps transition events).
};

/// One watchdog arena: source id -> SourceHealth. One per shard (plus
/// one per StreamServer outside the fleet).
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config = HealthConfig());
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Cold path: registers the source (computing its chi-square band) on
  /// first use. `obs_dim` is the predictor's observation dimension.
  SourceHealth* ForSource(int32_t source_id, size_t obs_dim);

  const SourceHealth* Find(int32_t source_id) const;

  /// Non-creating mutable lookup (nullptr if the source is unknown).
  /// For binders — the precision auditor — that must not register a
  /// source without knowing its true obs_dim.
  SourceHealth* FindMutable(int32_t source_id);

  /// kOk for unknown sources (mirrors SourceView::IsDesynced).
  HealthState StateOf(int32_t source_id) const;

  /// Registered source ids, ascending.
  std::vector<int32_t> SourceIds() const;

  /// Registers kc.health.* metrics in `registry`.
  void BindMetrics(MetricRegistry* registry);

  /// Transition events (HEALTH_*) for each source get recorded into the
  /// matching ring of `recorder`. Applies to current and future sources.
  void BindRecorder(FlightRecorder* recorder);

  /// Installed sink fires on every worsening transition.
  void SetAnomalySink(HealthAnomalySink sink);

  /// Deterministic per-source summary, ascending id order.
  std::string SummaryText() const;

  /// One source's summary line (empty if unknown).
  std::string SummaryLine(int32_t source_id) const;

  const HealthConfig& config() const { return config_; }

 private:
  friend class SourceHealth;
  /// Transition bookkeeping: state-count gauges, counters, anomaly sink.
  void OnTransition(int32_t source_id, HealthState from, HealthState to);
  void UpdateStateGauges();

  HealthConfig config_;
  mutable std::mutex mu_;  ///< Guards the map, not the per-source state.
  std::map<int32_t, std::unique_ptr<SourceHealth>> sources_;
  FlightRecorder* recorder_ = nullptr;
  HealthAnomalySink anomaly_sink_;

  // Per-state population (single writer; exported as gauges).
  int64_t num_ok_ = 0;
  int64_t num_suspect_ = 0;
  int64_t num_diverged_ = 0;

  Counter* nis_windows_metric_ = nullptr;   ///< kc.health.nis_windows
  Counter* nis_breaches_metric_ = nullptr;  ///< kc.health.nis_breaches
  Counter* rate_breaches_metric_ = nullptr; ///< kc.health.rate_breaches
  Counter* audit_breaches_metric_ = nullptr; ///< kc.health.audit_breaches
  Counter* transitions_metric_ = nullptr;   ///< kc.health.transitions
  Gauge* ok_gauge_ = nullptr;               ///< kc.health.sources_ok
  Gauge* suspect_gauge_ = nullptr;          ///< kc.health.sources_suspect
  Gauge* diverged_gauge_ = nullptr;         ///< kc.health.sources_diverged
};

}  // namespace obs
}  // namespace kc

#endif  // KALMANCAST_OBS_HEALTH_H_
