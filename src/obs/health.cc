#include "obs/health.h"

#include <algorithm>
#include <sstream>

#include "common/chisq.h"
#include "common/strings.h"

namespace kc {
namespace obs {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kOk:
      return "OK";
    case HealthState::kSuspect:
      return "SUSPECT";
    case HealthState::kDiverged:
      return "DIVERGED";
  }
  return "?";
}

SourceHealth::SourceHealth(HealthMonitor* owner, int32_t source_id,
                           size_t obs_dim)
    : owner_(owner), source_id_(source_id), obs_dim_(std::max<size_t>(obs_dim, 1)) {
  const HealthConfig& c = owner_->config_;
  size_t dof = c.nis_window * obs_dim_;
  double tail = (1.0 - c.nis_confidence) / 2.0;
  nis_sum_lo_ = ChiSquaredQuantile(tail, dof);
  nis_sum_hi_ = ChiSquaredQuantile(1.0 - tail, dof);
}

void SourceHealth::OnTick() {
  ++tick_;
  ++ticks_in_window_;
  if (ticks_in_window_ >= owner_->config_.rate_window_ticks) {
    EvaluateRateWindow();
  }
}

void SourceHealth::OnNis(double nis) {
  if (nis < 0.0) return;  // Predictor had no consistency sample this tick.
  nis_sum_ += nis;
  if (++nis_count_ >= owner_->config_.nis_window) EvaluateNisWindow();
}

void SourceHealth::OnDecision(bool suppressed) {
  ++decisions_in_window_;
  if (suppressed) ++suppressed_in_window_;
}

void SourceHealth::OnResync() { ++resyncs_in_window_; }

void SourceHealth::OnAuditWindow(bool breached) {
  if (breached) {
    ++audit_breaches_;
    if (owner_->audit_breaches_metric_ != nullptr) {
      owner_->audit_breaches_metric_->Inc();
    }
  }
  audit_state_ = StepDetector(audit_state_, breached, &audit_breach_streak_,
                              &audit_clean_streak_, owner_->config_);
  Recombine(breached ? 1.0 : 0.0);
}

void SourceHealth::EvaluateNisWindow() {
  const HealthConfig& c = owner_->config_;
  bool breached = nis_sum_ < nis_sum_lo_ || nis_sum_ > nis_sum_hi_;
  last_window_mean_nis_ = nis_sum_ / static_cast<double>(c.nis_window);
  ++nis_windows_;
  if (owner_->nis_windows_metric_ != nullptr) {
    owner_->nis_windows_metric_->Inc();
  }
  if (breached) {
    ++nis_breaches_;
    if (owner_->nis_breaches_metric_ != nullptr) {
      owner_->nis_breaches_metric_->Inc();
    }
  }
  nis_state_ =
      StepDetector(nis_state_, breached, &nis_breach_streak_,
                   &nis_clean_streak_, c);
  nis_sum_ = 0.0;
  nis_count_ = 0;
  Recombine(last_window_mean_nis_);
}

void SourceHealth::EvaluateRateWindow() {
  const HealthConfig& c = owner_->config_;
  double ticks = static_cast<double>(ticks_in_window_);
  double resync_rate = static_cast<double>(resyncs_in_window_) / ticks;
  bool breached = c.max_resync_rate > 0.0 && resync_rate > c.max_resync_rate;
  if (c.min_suppression_rate > 0.0 && decisions_in_window_ > 0) {
    double suppression_rate = static_cast<double>(suppressed_in_window_) /
                              static_cast<double>(decisions_in_window_);
    if (suppression_rate < c.min_suppression_rate) breached = true;
  }
  if (breached) {
    ++rate_breaches_;
    if (owner_->rate_breaches_metric_ != nullptr) {
      owner_->rate_breaches_metric_->Inc();
    }
  }
  rate_state_ =
      StepDetector(rate_state_, breached, &rate_breach_streak_,
                   &rate_clean_streak_, c);
  ticks_in_window_ = 0;
  resyncs_in_window_ = 0;
  decisions_in_window_ = 0;
  suppressed_in_window_ = 0;
  Recombine(resync_rate);
}

HealthState SourceHealth::StepDetector(HealthState current, bool breached,
                                       int* breach_streak, int* clean_streak,
                                       const HealthConfig& config) {
  if (breached) {
    *clean_streak = 0;
    ++*breach_streak;
    if (*breach_streak >= config.windows_to_diverge) {
      return HealthState::kDiverged;
    }
    // A DIVERGED detector stays diverged until it fully recovers; an OK
    // one escalates to SUSPECT on its first breach.
    return current == HealthState::kDiverged ? HealthState::kDiverged
                                             : HealthState::kSuspect;
  }
  *breach_streak = 0;
  ++*clean_streak;
  if (*clean_streak >= config.windows_to_recover) return HealthState::kOk;
  return current;
}

void SourceHealth::Recombine(double detail) {
  HealthState next = std::max({nis_state_, rate_state_, audit_state_});
  if (next == state_) return;
  HealthState prev = state_;
  state_ = next;
  if (recorder_ != nullptr) {
    RecorderEventKind kind = RecorderEventKind::kHealthOk;
    if (next == HealthState::kSuspect) {
      kind = RecorderEventKind::kHealthSuspect;
    } else if (next == HealthState::kDiverged) {
      kind = RecorderEventKind::kHealthDiverged;
    }
    recorder_->Record(tick_, kind, /*seq=*/0, detail);
  }
  owner_->OnTransition(source_id_, prev, next);
}

HealthMonitor::HealthMonitor(HealthConfig config) : config_(config) {
  if (config_.nis_window == 0) config_.nis_window = 1;
  if (config_.rate_window_ticks <= 0) config_.rate_window_ticks = 1;
  if (config_.windows_to_diverge < 1) config_.windows_to_diverge = 1;
  if (config_.windows_to_recover < 1) config_.windows_to_recover = 1;
}

SourceHealth* HealthMonitor::ForSource(int32_t source_id, size_t obs_dim) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(source_id);
  if (it == sources_.end()) {
    it = sources_
             .emplace(source_id,
                      std::unique_ptr<SourceHealth>(
                          new SourceHealth(this, source_id, obs_dim)))
             .first;
    if (recorder_ != nullptr) {
      it->second->recorder_ = recorder_->ForSource(source_id);
    }
    ++num_ok_;  // New sources start OK.
    UpdateStateGauges();
  }
  return it->second.get();
}

const SourceHealth* HealthMonitor::Find(int32_t source_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(source_id);
  return it == sources_.end() ? nullptr : it->second.get();
}

SourceHealth* HealthMonitor::FindMutable(int32_t source_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(source_id);
  return it == sources_.end() ? nullptr : it->second.get();
}

HealthState HealthMonitor::StateOf(int32_t source_id) const {
  const SourceHealth* health = Find(source_id);
  return health == nullptr ? HealthState::kOk : health->state();
}

std::vector<int32_t> HealthMonitor::SourceIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int32_t> ids;
  ids.reserve(sources_.size());
  for (const auto& [id, health] : sources_) {
    (void)health;
    ids.push_back(id);
  }
  return ids;
}

void HealthMonitor::BindMetrics(MetricRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    nis_windows_metric_ = nullptr;
    nis_breaches_metric_ = nullptr;
    rate_breaches_metric_ = nullptr;
    audit_breaches_metric_ = nullptr;
    transitions_metric_ = nullptr;
    ok_gauge_ = nullptr;
    suspect_gauge_ = nullptr;
    diverged_gauge_ = nullptr;
    return;
  }
  nis_windows_metric_ = registry->GetCounter("kc.health.nis_windows");
  nis_breaches_metric_ = registry->GetCounter("kc.health.nis_breaches");
  rate_breaches_metric_ = registry->GetCounter("kc.health.rate_breaches");
  audit_breaches_metric_ = registry->GetCounter("kc.health.audit_breaches");
  transitions_metric_ = registry->GetCounter("kc.health.transitions");
  ok_gauge_ = registry->GetGauge("kc.health.sources_ok");
  suspect_gauge_ = registry->GetGauge("kc.health.sources_suspect");
  diverged_gauge_ = registry->GetGauge("kc.health.sources_diverged");
  UpdateStateGauges();
}

void HealthMonitor::BindRecorder(FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mu_);
  recorder_ = recorder;
  for (auto& [id, health] : sources_) {
    health->recorder_ =
        recorder_ == nullptr ? nullptr : recorder_->ForSource(id);
  }
}

void HealthMonitor::SetAnomalySink(HealthAnomalySink sink) {
  anomaly_sink_ = std::move(sink);
}

void HealthMonitor::OnTransition(int32_t source_id, HealthState from,
                                 HealthState to) {
  auto count = [this](HealthState s) -> int64_t& {
    switch (s) {
      case HealthState::kSuspect:
        return num_suspect_;
      case HealthState::kDiverged:
        return num_diverged_;
      case HealthState::kOk:
      default:
        return num_ok_;
    }
  };
  --count(from);
  ++count(to);
  UpdateStateGauges();
  if (transitions_metric_ != nullptr) transitions_metric_->Inc();
  if (to > from && anomaly_sink_) anomaly_sink_(source_id, from, to);
}

void HealthMonitor::UpdateStateGauges() {
  if (ok_gauge_ != nullptr) ok_gauge_->Set(static_cast<double>(num_ok_));
  if (suspect_gauge_ != nullptr) {
    suspect_gauge_->Set(static_cast<double>(num_suspect_));
  }
  if (diverged_gauge_ != nullptr) {
    diverged_gauge_->Set(static_cast<double>(num_diverged_));
  }
}

std::string HealthMonitor::SummaryText() const {
  std::ostringstream os;
  for (int32_t id : SourceIds()) os << SummaryLine(id);
  return os.str();
}

std::string HealthMonitor::SummaryLine(int32_t source_id) const {
  const SourceHealth* h = Find(source_id);
  if (h == nullptr) return std::string();
  return StrFormat(
      "source %4d  %-8s nis_windows=%lld breaches=%lld mean_nis=%s "
      "rate_breaches=%lld\n",
      source_id, HealthStateName(h->state()),
      static_cast<long long>(h->nis_windows()),
      static_cast<long long>(h->nis_breaches()),
      StrFormat("%.6g", h->last_window_mean_nis()).c_str(),
      static_cast<long long>(h->rate_breaches()));
}

}  // namespace obs
}  // namespace kc
