#ifndef KALMANCAST_OBS_RECORDER_H_
#define KALMANCAST_OBS_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace kc {
namespace obs {

/// The flight recorder (docs/OBSERVABILITY.md, "Flight recorder"):
/// a per-source, fixed-capacity ring of structured protocol events — the
/// "black box" an operator reads after an incident to see *which*
/// decisions led a stream where it ended up.
///
/// The contract mirrors the metrics layer:
///  - ForSource() is the cold path: takes the recorder mutex, allocates
///    the source's ring once, returns a stable pointer callers cache at
///    bind time.
///  - SourceRecorder::Record() is the hot path: one ring-slot write, no
///    locks, no allocations. Rings are single-writer by the same arena
///    rule as metrics — one FlightRecorder per shard, and a source's
///    agent and replica both live on that source's shard.
///  - Dumps are deterministic: events carry tick stamps (never wall
///    clock), sources are dumped in id order, and each ring is rendered
///    oldest-first — so a fleet dump is bit-identical for any --threads.

/// What happened. One enumerator per protocol decision / transition the
/// black box retains.
enum class RecorderEventKind : uint8_t {
  kInit = 0,             ///< Agent sent INIT (value = in-force delta).
  kSuppress,             ///< Agent held an update (value = |innovation|).
  kCorrection,           ///< Agent sent CORRECTION (value = |innovation|).
  kFullSync,             ///< Agent sent FULL_SYNC (value = |innovation|).
  kHeartbeat,            ///< Agent sent HEARTBEAT.
  kGateOutlier,          ///< Predictor's outlier gate rejected a reading
                         ///< (value = the gated NIS).
  kWireGap,              ///< Replica saw a wire-seq gap (value = missing).
  kResyncRequest,        ///< Replica sent RESYNC_REQUEST.
  kResyncServed,         ///< Agent answered a resync request.
  kQuarantineEnter,      ///< Replica marked itself desynced.
  kQuarantineExit,       ///< Replica cleared desync (sync arrived).
  kApply,                ///< Replica applied a message (value = type).
  kIgnore,               ///< Replica dropped a stale/duplicate message.
  kHealthOk,             ///< Watchdog transition back to OK.
  kHealthSuspect,        ///< Watchdog transition to SUSPECT.
  kHealthDiverged,       ///< Watchdog transition to DIVERGED.
  kAuditViolation,       ///< Auditor saw |error| > bound (value = |error| /
                         ///< bound; seq = audit tick).
  kAuditSloOk,           ///< SLO budget back to OK (value = window
                         ///< violations).
  kAuditSloBurning,      ///< SLO budget entered BURNING (value = window
                         ///< violations).
  kAuditSloExhausted,    ///< SLO budget entered EXHAUSTED (value = window
                         ///< violations).
};

/// Number of RecorderEventKind values.
inline constexpr size_t kNumRecorderEventKinds = 20;

const char* RecorderEventKindName(RecorderEventKind kind);

/// One retained event. POD — the ring is preallocated storage, and a
/// Record() is a handful of member stores.
struct RecorderEvent {
  int64_t tick = 0;   ///< Recorder-side tick (agent or replica lifetime).
  int64_t seq = 0;    ///< Wire seq (sends/applies) or reading seq.
  double value = 0.0; ///< Kind-dependent detail; see RecorderEventKind.
  int32_t source_id = 0;
  RecorderEventKind kind = RecorderEventKind::kSuppress;
};

/// Fixed-capacity ring of one source's events. Obtained from
/// FlightRecorder::ForSource(); single writer at a time (the shard that
/// owns the source).
class SourceRecorder {
 public:
  /// Hot path: one slot write. Oldest event is evicted once full.
  void Record(int64_t tick, RecorderEventKind kind, int64_t seq = 0,
              double value = 0.0) {
    RecorderEvent& e = events_[head_ % events_.size()];
    e.tick = tick;
    e.seq = seq;
    e.value = value;
    e.source_id = source_id_;
    e.kind = kind;
    ++head_;
    if (events_recorded_ != nullptr) events_recorded_->Inc();
    if (head_ > events_.size() && events_evicted_ != nullptr) {
      events_evicted_->Inc();
    }
  }

  int32_t source_id() const { return source_id_; }
  size_t capacity() const { return events_.size(); }
  /// Events ever recorded (monotonic; exceeds capacity once wrapped).
  uint64_t total_recorded() const { return head_; }

  /// Copies retained events, oldest first (cold path, allocates).
  std::vector<RecorderEvent> Snapshot() const;

 private:
  friend class FlightRecorder;
  SourceRecorder(int32_t source_id, size_t capacity);

  std::vector<RecorderEvent> events_;  ///< Sized `capacity` at creation.
  uint64_t head_ = 0;
  int32_t source_id_;
  Counter* events_recorded_ = nullptr;  ///< kc.recorder.events (optional).
  Counter* events_evicted_ = nullptr;   ///< kc.recorder.evicted (optional).
};

/// One flight-recorder arena: source id -> ring. One per shard in the
/// fleet (merged dumps walk shards in source-id order), or one per
/// process for single-threaded deployments.
class FlightRecorder {
 public:
  /// Default ring capacity per source (events).
  static constexpr size_t kDefaultCapacity = 128;

  explicit FlightRecorder(size_t capacity_per_source = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Cold path: creates the source's ring on first use; the returned
  /// pointer is stable for the recorder's lifetime.
  SourceRecorder* ForSource(int32_t source_id);

  /// nullptr if the source never recorded.
  const SourceRecorder* Find(int32_t source_id) const;

  /// Registers kc.recorder.* counters and points every ring (current and
  /// future) at them. Call before the hot path starts.
  void BindMetrics(MetricRegistry* registry);

  /// Registered source ids, ascending.
  std::vector<int32_t> SourceIds() const;

  size_t capacity_per_source() const { return capacity_; }

  /// Deterministic dumps. Per-source renders one event per line; the
  /// all-source forms walk sources in id order.
  std::string DumpText(int32_t source_id) const;
  std::string DumpText() const;
  std::string DumpJson(int32_t source_id) const;
  std::string DumpJson() const;

 private:
  size_t capacity_;
  mutable std::mutex mu_;  ///< Guards the map, not the rings.
  std::map<int32_t, std::unique_ptr<SourceRecorder>> sources_;
  Counter* events_recorded_ = nullptr;
  Counter* events_evicted_ = nullptr;
};

}  // namespace obs
}  // namespace kc

#endif  // KALMANCAST_OBS_RECORDER_H_
