#ifndef KALMANCAST_OBS_REMOTE_H_
#define KALMANCAST_OBS_REMOTE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace kc {
namespace obs {

/// NTP-style clock-offset estimator over request/response round trips.
/// Feed it (t0, t1, peer_ns) per probe — local send time, local receive
/// time of the echo, and the peer's clock when it answered — and it
/// estimates offset = peer_clock - local_clock as the midpoint estimate
/// of the sample with the smallest RTT in a sliding window. Minimum-RTT
/// filtering is the classic defense against queueing asymmetry: the
/// fastest round trip is the one least distorted by buffering, and its
/// midpoint error is bounded by rtt/2 — which is exactly the honest
/// uncertainty this class reports. Single-threaded (driver thread).
class ClockOffsetEstimator {
 public:
  static constexpr size_t kDefaultWindow = 64;

  explicit ClockOffsetEstimator(size_t window = kDefaultWindow);

  /// One completed probe. Samples with t1 < t0 (a non-monotonic clock
  /// read) are ignored.
  void AddSample(int64_t t0_ns, int64_t t1_ns, int64_t peer_ns);

  bool has_estimate() const { return best_rtt_ns_ >= 0; }
  /// peer_clock - local_clock, from the window's minimum-RTT sample.
  int64_t offset_ns() const { return best_offset_ns_; }
  /// Error bar: the winning sample's rtt/2 (-1 before any sample). The
  /// true offset lies within [offset - u, offset + u] as long as the
  /// winning round trip was not pathologically asymmetric.
  int64_t uncertainty_ns() const {
    return best_rtt_ns_ < 0 ? -1 : best_rtt_ns_ / 2;
  }
  int64_t samples() const { return total_samples_; }

 private:
  struct Sample {
    int64_t offset_ns = 0;
    int64_t rtt_ns = 0;
  };

  std::vector<Sample> window_;  ///< Ring, sized `capacity`.
  size_t capacity_;
  size_t next_ = 0;
  size_t count_ = 0;
  int64_t total_samples_ = 0;
  int64_t best_offset_ns_ = 0;
  int64_t best_rtt_ns_ = -1;
};

/// Folds a remote process's telemetry snapshots into the local
/// observability surface (docs/OBSERVABILITY.md, "Distributed
/// telemetry"):
///
///  - Metric rows are namespaced under `options.ns` ("kc.remote.client."
///    by default; a leading "kc." on the remote name is folded into the
///    namespace, so "kc.agent.sent" becomes "kc.remote.client.agent.sent")
///    and kept latest-wins per name — remote rows are cumulative
///    registry states, not deltas to add.
///  - Trace events are kept latest-wins per snapshot (the remote ring is
///    cumulative too), rebased into the local clock with the snapshot's
///    own offset estimate, and tagged `options.remote_pid` so
///    ExportChromeTrace renders them on their own process track.
///  - The remote send log is joined against locally recorded arrivals
///    (RecordArrival, keyed by causal flow id) to produce true one-way
///    wire-latency histograms per message type — possible only because
///    the snapshot carries the sender's clock offset.
///
/// Single-threaded: Absorb/RecordArrival/readers all run on the driver
/// thread (transport sinks fire inside the driver's Poll). Deterministic
/// by construction: remote rows live in an ordered map and MergedRows
/// sorts, so a merged export is a pure function of the absorbed
/// snapshots, in order.
class RemoteTelemetryMerger {
 public:
  struct Options {
    /// Namespace prefixed onto remote metric names.
    std::string ns = "kc.remote.client.";
    /// Chrome-trace pid for remote spans (local recorders emit pid 0).
    uint32_t remote_pid = 1;
    /// Renders a message-type byte into the latency histogram's name
    /// suffix; defaults to "type<N>". The split deployment passes the
    /// wire protocol's real type names (obs/ cannot name them without
    /// inverting the net -> obs layering).
    std::function<std::string(uint8_t type)> type_name;
    /// Bound on arrivals waiting for their send record (oldest evicted).
    size_t max_pending_arrivals = 8192;
  };

  RemoteTelemetryMerger() : RemoteTelemetryMerger(Options()) {}
  explicit RemoteTelemetryMerger(Options options);

  /// Registers the merger's own instruments (kc.remote.*) and the
  /// per-type wire-latency histograms' home. Clock/latency instruments
  /// are wall_clock-flagged: their values depend on real time, never on
  /// the simulated workload.
  void BindMetrics(MetricRegistry* registry);

  /// Notes a locally delivered message (driver thread, at delivery time,
  /// on the local steady clock). First arrival wins — a duplicate's
  /// timestamp is not the wire latency of the original.
  void RecordArrival(uint64_t flow_id, uint8_t type, int64_t arrival_ns);

  /// Folds one decoded snapshot (see class comment).
  void Absorb(const TelemetrySnapshot& snapshot);

  /// The one-scrape-covers-both-processes view: `local_rows` plus the
  /// namespaced remote rows, sorted by name.
  std::vector<MetricRow> MergedRows(std::vector<MetricRow> local_rows) const;

  /// The latest remote trace events rebased into the local clock
  /// (start_ns + offset) and tagged remote_pid. Returned TraceEvent
  /// names point at strings interned in this merger — they stay valid
  /// for the merger's lifetime.
  std::vector<TraceEvent> RemoteTraceEvents() const;

  int64_t snapshots_absorbed() const { return snapshots_absorbed_; }
  int64_t last_tick() const { return last_tick_; }
  int64_t clock_offset_ns() const { return clock_offset_ns_; }
  int64_t clock_uncertainty_ns() const { return clock_uncertainty_ns_; }
  int64_t latency_matched() const { return latency_matched_; }
  int64_t latency_unmatched() const { return latency_unmatched_; }
  const std::string& health_summary() const { return health_summary_; }
  const std::string& audit_summary() const { return audit_summary_; }

 private:
  std::string NamespacedName(const std::string& name) const;
  Histogram* LatencyHistogram(uint8_t type);

  Options options_;
  std::map<std::string, MetricRow> remote_rows_;  ///< Namespaced, latest.
  std::vector<SnapshotTraceEvent> remote_events_;  ///< Latest snapshot's.
  std::set<std::string> interned_names_;  ///< Stable char* for TraceEvent.
  /// flow id -> (type, local arrival ns), awaiting the send record.
  std::map<uint64_t, std::pair<uint8_t, int64_t>> pending_arrivals_;
  std::map<uint8_t, Histogram*> latency_hists_;

  MetricRegistry* registry_ = nullptr;
  Counter* snapshots_metric_ = nullptr;
  Counter* matched_metric_ = nullptr;
  Counter* unmatched_metric_ = nullptr;
  Gauge* offset_us_metric_ = nullptr;
  Gauge* uncertainty_us_metric_ = nullptr;

  int64_t snapshots_absorbed_ = 0;
  int64_t last_tick_ = -1;
  int64_t clock_offset_ns_ = 0;
  int64_t clock_uncertainty_ns_ = -1;
  int64_t latency_matched_ = 0;
  int64_t latency_unmatched_ = 0;
  std::string health_summary_;
  std::string audit_summary_;
};

}  // namespace obs
}  // namespace kc

#endif  // KALMANCAST_OBS_REMOTE_H_
