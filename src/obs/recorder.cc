#include "obs/recorder.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"

namespace kc {
namespace obs {

const char* RecorderEventKindName(RecorderEventKind kind) {
  switch (kind) {
    case RecorderEventKind::kInit:
      return "INIT";
    case RecorderEventKind::kSuppress:
      return "SUPPRESS";
    case RecorderEventKind::kCorrection:
      return "CORRECTION";
    case RecorderEventKind::kFullSync:
      return "FULL_SYNC";
    case RecorderEventKind::kHeartbeat:
      return "HEARTBEAT";
    case RecorderEventKind::kGateOutlier:
      return "GATE_OUTLIER";
    case RecorderEventKind::kWireGap:
      return "WIRE_GAP";
    case RecorderEventKind::kResyncRequest:
      return "RESYNC_REQUEST";
    case RecorderEventKind::kResyncServed:
      return "RESYNC_SERVED";
    case RecorderEventKind::kQuarantineEnter:
      return "QUARANTINE_ENTER";
    case RecorderEventKind::kQuarantineExit:
      return "QUARANTINE_EXIT";
    case RecorderEventKind::kApply:
      return "APPLY";
    case RecorderEventKind::kIgnore:
      return "IGNORE";
    case RecorderEventKind::kHealthOk:
      return "HEALTH_OK";
    case RecorderEventKind::kHealthSuspect:
      return "HEALTH_SUSPECT";
    case RecorderEventKind::kHealthDiverged:
      return "HEALTH_DIVERGED";
    case RecorderEventKind::kAuditViolation:
      return "AUDIT_VIOLATION";
    case RecorderEventKind::kAuditSloOk:
      return "AUDIT_SLO_OK";
    case RecorderEventKind::kAuditSloBurning:
      return "AUDIT_SLO_BURNING";
    case RecorderEventKind::kAuditSloExhausted:
      return "AUDIT_SLO_EXHAUSTED";
  }
  return "?";
}

SourceRecorder::SourceRecorder(int32_t source_id, size_t capacity)
    : events_(std::max<size_t>(capacity, 1)), source_id_(source_id) {}

std::vector<RecorderEvent> SourceRecorder::Snapshot() const {
  std::vector<RecorderEvent> out;
  uint64_t retained = std::min<uint64_t>(head_, events_.size());
  out.reserve(retained);
  for (uint64_t i = head_ - retained; i < head_; ++i) {
    out.push_back(events_[i % events_.size()]);
  }
  return out;
}

FlightRecorder::FlightRecorder(size_t capacity_per_source)
    : capacity_(std::max<size_t>(capacity_per_source, 1)) {}

SourceRecorder* FlightRecorder::ForSource(int32_t source_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(source_id);
  if (it == sources_.end()) {
    it = sources_
             .emplace(source_id, std::unique_ptr<SourceRecorder>(
                                     new SourceRecorder(source_id, capacity_)))
             .first;
    it->second->events_recorded_ = events_recorded_;
    it->second->events_evicted_ = events_evicted_;
  }
  return it->second.get();
}

const SourceRecorder* FlightRecorder::Find(int32_t source_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(source_id);
  return it == sources_.end() ? nullptr : it->second.get();
}

void FlightRecorder::BindMetrics(MetricRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    events_recorded_ = nullptr;
    events_evicted_ = nullptr;
  } else {
    events_recorded_ = registry->GetCounter("kc.recorder.events");
    events_evicted_ = registry->GetCounter("kc.recorder.evicted");
  }
  for (auto& [id, ring] : sources_) {
    (void)id;
    ring->events_recorded_ = events_recorded_;
    ring->events_evicted_ = events_evicted_;
  }
}

std::vector<int32_t> FlightRecorder::SourceIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int32_t> ids;
  ids.reserve(sources_.size());
  for (const auto& [id, ring] : sources_) {
    (void)ring;
    ids.push_back(id);
  }
  return ids;  // std::map iteration order: already ascending.
}

namespace {

void TextEvent(std::ostringstream& os, const RecorderEvent& e) {
  os << StrFormat("  tick %8lld  %-16s seq=%lld value=%s\n",
                  static_cast<long long>(e.tick), RecorderEventKindName(e.kind),
                  static_cast<long long>(e.seq),
                  StrFormat("%.9g", e.value).c_str());
}

void JsonEvent(std::ostringstream& os, const RecorderEvent& e, bool* first) {
  if (!*first) os << ",";
  *first = false;
  os << "{\"tick\":" << e.tick << ",\"source\":" << e.source_id
     << ",\"event\":\"" << RecorderEventKindName(e.kind)
     << "\",\"seq\":" << e.seq << ",\"value\":" << StrFormat("%.9g", e.value)
     << "}";
}

}  // namespace

std::string FlightRecorder::DumpText(int32_t source_id) const {
  const SourceRecorder* ring = Find(source_id);
  std::ostringstream os;
  os << "source " << source_id << " flight recorder";
  if (ring == nullptr) {
    os << ": no events\n";
    return os.str();
  }
  std::vector<RecorderEvent> events = ring->Snapshot();
  os << " (" << events.size() << " of " << ring->total_recorded()
     << " events retained, capacity " << ring->capacity() << ")\n";
  for (const RecorderEvent& e : events) TextEvent(os, e);
  return os.str();
}

std::string FlightRecorder::DumpText() const {
  std::ostringstream os;
  for (int32_t id : SourceIds()) os << DumpText(id);
  return os.str();
}

std::string FlightRecorder::DumpJson(int32_t source_id) const {
  const SourceRecorder* ring = Find(source_id);
  std::ostringstream os;
  os << "{\"source\":" << source_id << ",\"events\":[";
  bool first = true;
  if (ring != nullptr) {
    for (const RecorderEvent& e : ring->Snapshot()) JsonEvent(os, e, &first);
  }
  os << "]}";
  return os.str();
}

std::string FlightRecorder::DumpJson() const {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (int32_t id : SourceIds()) {
    if (!first) os << ",";
    first = false;
    os << DumpJson(id);
  }
  os << "]";
  return os.str();
}

}  // namespace obs
}  // namespace kc
