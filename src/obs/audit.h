#ifndef KALMANCAST_OBS_AUDIT_H_
#define KALMANCAST_OBS_AUDIT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace kc {
namespace obs {

/// The precision/SLO auditor (docs/OBSERVABILITY.md, "Precision audit"):
/// continuous runtime verification of the paper's headline guarantee.
/// Every `sample_every` ticks the driving layer (the fleet, which owns
/// both ends of the protocol) hands the auditor one sample per source —
/// the absolute error between the replica-side answer and the agent-side
/// contract target, together with the bound currently in force. The
/// auditor records containment (|error| <= bound), bound utilization
/// (|error| / bound), staleness, and degradation, and closes an SLO
/// window every `slo_window_ticks`: the count of violations inside the
/// window classifies the source's error budget as OK, BURNING, or
/// EXHAUSTED.
///
/// The bound passed in is the replica's *in-force* bound — widened by the
/// quarantine factor while the source is desynced — so the auditor checks
/// the honesty of what the server would actually answer, not the
/// fair-weather declared bound. On a lossless channel the protocol
/// guarantees containment is exactly 100%; any violation is a bug or an
/// injected fault, which is what makes this worth auditing continuously.
///
/// Threading follows the arena model shared with metrics / recorder /
/// health: one PrecisionAuditor per shard, ForSource() is the cold
/// registering path, Sample() is the lock- and allocation-free hot path
/// with a single writer (the thread stepping the source's shard). Merged
/// fleet reports walk sources in ascending-id order, so they are
/// bit-identical for any thread count.

struct AuditConfig {
  /// Sample each source every N ticks (the deterministic sampling
  /// scheme: a tick t is audited iff t % sample_every == 0, identical for
  /// every source and shard). 1 audits every tick.
  int64_t sample_every = 4;
  /// SLO window length in ticks. Windows are tick-aligned
  /// ([k*W, (k+1)*W)), so window boundaries are identical across shards
  /// and thread counts.
  int64_t slo_window_ticks = 256;
  /// Violations within one window at or above which the budget state is
  /// BURNING.
  int64_t burning_after = 1;
  /// Violations within one window at or above which the budget state is
  /// EXHAUSTED.
  int64_t exhausted_after = 4;
};

/// Per-window error-budget verdict. Ordered by severity so merging takes
/// the max.
enum class SloState : uint8_t { kOk = 0, kBurning = 1, kExhausted = 2 };

const char* SloStateName(SloState state);

/// One query name's audited outcome tally (driver-side cold path).
struct AuditQueryTally {
  std::string name;
  int64_t evals = 0;      ///< Successful evaluations.
  int64_t failed = 0;     ///< Evaluations that returned an error.
  int64_t stale = 0;      ///< Served with a stale member source.
  int64_t degraded = 0;   ///< Served with a quarantined member source.
  int64_t unhealthy = 0;  ///< Served while the watchdog was not OK.
};

class PrecisionAuditor;

/// One source's audit state. Obtain via PrecisionAuditor::ForSource();
/// feed from the owning shard's worker (single writer).
class SourceAudit {
 public:
  /// Hot path: one audited sample. `abs_error` is the L-inf distance
  /// between the replica's answer and the contract target; `bound` the
  /// replica's in-force (possibly quarantine-widened) bound;
  /// `staleness_ticks` the replica's ticks since the last accepted
  /// message; `degraded` whether the replica is quarantined. No locks, no
  /// allocations.
  void Sample(int64_t tick, double abs_error, double bound,
              int64_t staleness_ticks, bool degraded);

  int32_t source_id() const { return source_id_; }
  int64_t samples() const { return samples_; }
  int64_t contained() const { return contained_; }
  int64_t violations() const { return violations_; }
  int64_t degraded_samples() const { return degraded_samples_; }
  int64_t windows() const { return windows_; }
  int64_t last_staleness() const { return last_staleness_; }
  double max_utilization() const { return max_utilization_; }
  /// Mean |error| / bound over every sample (0 before the first).
  double mean_utilization() const {
    return samples_ > 0 ? utilization_sum_ / static_cast<double>(samples_)
                        : 0.0;
  }
  SloState slo_state() const { return slo_state_; }

 private:
  friend class PrecisionAuditor;
  SourceAudit(PrecisionAuditor* owner, int32_t source_id);

  /// Classifies the finished window, fires transition bookkeeping, and
  /// re-anchors on the window containing `tick`.
  void CloseWindow(int64_t tick);

  PrecisionAuditor* owner_;
  int32_t source_id_;
  SourceRecorder* recorder_ = nullptr;  ///< Optional AUDIT_* event log.
  SourceHealth* health_ = nullptr;      ///< Optional watchdog feed.

  int64_t samples_ = 0;
  int64_t contained_ = 0;
  int64_t violations_ = 0;
  int64_t degraded_samples_ = 0;
  int64_t last_staleness_ = 0;
  double utilization_sum_ = 0.0;
  double max_utilization_ = 0.0;

  // SLO window state. window_end_ == 0 means "not yet anchored".
  int64_t window_end_ = 0;
  int64_t window_violations_ = 0;
  int64_t window_samples_ = 0;
  int64_t windows_ = 0;
  SloState slo_state_ = SloState::kOk;
};

/// One audit arena: source id -> SourceAudit. One per shard (plus a
/// driver-side arena for cross-shard query outcomes).
class PrecisionAuditor {
 public:
  explicit PrecisionAuditor(AuditConfig config = AuditConfig());
  PrecisionAuditor(const PrecisionAuditor&) = delete;
  PrecisionAuditor& operator=(const PrecisionAuditor&) = delete;

  /// Cold path: registers the source on first use; the returned pointer
  /// is stable for the auditor's lifetime.
  SourceAudit* ForSource(int32_t source_id);
  const SourceAudit* Find(int32_t source_id) const;

  /// True when tick t is an audit tick (t % sample_every == 0) — a pure
  /// function of the tick, so every shard samples the same ticks.
  bool ShouldSample(int64_t tick) const {
    return tick % config_.sample_every == 0;
  }

  /// Registers kc.audit.* metrics in `registry`; call before the hot
  /// path starts (arena model: the shard's own registry).
  void BindMetrics(MetricRegistry* registry);
  /// AUDIT_* events for each source get recorded into the matching ring
  /// of `recorder`. Applies to current and future sources.
  void BindRecorder(FlightRecorder* recorder);
  /// SLO windows feed the matching watchdog entry as a third detector
  /// (SourceHealth::OnAuditWindow). Applies to current and future
  /// sources. `obs_dim` registration on the monitor reuses dim 1 when the
  /// source is unknown to it; fleets bind health first, so in practice
  /// the entry already exists.
  void BindHealth(HealthMonitor* health);

  /// Tallies one query evaluation outcome (driver thread; takes the map
  /// mutex — queries are low-rate). `unhealthy` = watchdog verdict was
  /// not OK.
  void OnQuery(std::string_view name, bool ok, bool stale, bool degraded,
               bool unhealthy);

  /// Registered source ids, ascending.
  std::vector<int32_t> SourceIds() const;
  /// Per-query tallies, sorted by name.
  std::vector<AuditQueryTally> QueryTallies() const;

  /// One source's deterministic report line / JSON object (empty if
  /// unknown).
  std::string SourceLine(int32_t source_id) const;
  std::string SourceJson(int32_t source_id) const;

  /// Deterministic single-arena reports (the fleet uses the Merged*
  /// helpers below instead).
  std::string ReportText() const;
  std::string ReportJson() const;

  const AuditConfig& config() const { return config_; }

 private:
  friend class SourceAudit;
  /// SLO transition bookkeeping: population counts, gauges, counter.
  void OnSloTransition(SloState from, SloState to);
  void UpdateStateGauges();

  AuditConfig config_;
  mutable std::mutex mu_;  ///< Guards the maps, not the per-source state.
  std::map<int32_t, std::unique_ptr<SourceAudit>> sources_;
  std::map<std::string, AuditQueryTally, std::less<>> queries_;
  FlightRecorder* recorder_ = nullptr;
  HealthMonitor* health_ = nullptr;

  // Per-state population (single writer per arena; exported as gauges).
  int64_t num_ok_ = 0;
  int64_t num_burning_ = 0;
  int64_t num_exhausted_ = 0;

  Counter* samples_metric_ = nullptr;      ///< kc.audit.samples
  Counter* violations_metric_ = nullptr;   ///< kc.audit.violations
  Counter* degraded_metric_ = nullptr;     ///< kc.audit.degraded_samples
  Counter* windows_metric_ = nullptr;      ///< kc.audit.windows
  Counter* transitions_metric_ = nullptr;  ///< kc.audit.slo_transitions
  Histogram* utilization_metric_ = nullptr;  ///< kc.audit.utilization
  Histogram* staleness_metric_ = nullptr;    ///< kc.audit.staleness
  Gauge* ok_gauge_ = nullptr;         ///< kc.audit.sources_ok
  Gauge* burning_gauge_ = nullptr;    ///< kc.audit.sources_burning
  Gauge* exhausted_gauge_ = nullptr;  ///< kc.audit.sources_exhausted
};

/// A merged view over one or more audit arenas — how the sharded fleet
/// renders ONE deterministic report from per-shard auditors. `arenas`
/// lists every arena in shard order (plus any driver arena, last);
/// `ids` the global ascending source-id order; `arena_of` resolves a
/// source to its owning arena. A single-arena deployment passes itself
/// three times; see PrecisionAuditor::ReportJson.
struct AuditMergeView {
  const AuditConfig* config = nullptr;
  std::vector<const PrecisionAuditor*> arenas;
  std::vector<int32_t> ids;
  std::function<const PrecisionAuditor*(int32_t)> arena_of;
};

/// Full deterministic reports: per-source table / JSON document with
/// fleet totals and per-query tallies (merged by name across arenas).
std::string MergedAuditReportText(const AuditMergeView& view);
std::string MergedAuditReportJson(const AuditMergeView& view);

/// The JSON report split into addressable pieces, so the HTTP endpoint
/// can serve `?prefix=`-scoped subsets without re-walking live arenas
/// (the publish-snapshot model: the driver publishes one doc per report
/// interval; the serving thread only reassembles strings).
///   full     the complete MergedAuditReportJson document
///   head     its `{"config":{...},"totals":{...}` fragment (no brace
///            balance — the reassembler appends sources/queries/"}")
///   sources  ("source.<id>", json object) per source, report order
///   queries  ("query.<name>", json object) per query tally, name order
struct AuditDoc {
  std::string full;
  std::string head;
  std::vector<std::pair<std::string, std::string>> sources;
  std::vector<std::pair<std::string, std::string>> queries;
};
AuditDoc MergedAuditReportDoc(const AuditMergeView& view);
/// One-line budget summary for health endpoints, e.g.
/// "audit: sources=100 ok=100 burning=0 exhausted=0 samples=2880
///  violations=0 containment=100%".
std::string MergedAuditSummaryLine(const AuditMergeView& view);

}  // namespace obs
}  // namespace kc

#endif  // KALMANCAST_OBS_AUDIT_H_
