#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <mutex>

namespace kc {
namespace obs {

namespace {

std::mutex& RecorderMutex() {
  static std::mutex mu;
  return mu;
}

/// All recorders ever created, in creation order. Entries are never
/// removed: a recorder outlives its thread so late Snapshot calls stay
/// valid, and staying reachable here keeps leak checkers quiet.
std::vector<TraceRecorder*>& Recorders() {
  static std::vector<TraceRecorder*>* recorders =
      new std::vector<TraceRecorder*>();
  return *recorders;
}

}  // namespace

TraceRecorder::TraceRecorder(uint32_t thread_index)
    : events_(kCapacity), thread_index_(thread_index) {}

TraceRecorder& TraceRecorder::ForCurrentThread() {
  thread_local TraceRecorder* recorder = [] {
    std::lock_guard<std::mutex> lock(RecorderMutex());
    auto* r = new TraceRecorder(static_cast<uint32_t>(Recorders().size()));
    Recorders().push_back(r);
    return r;
  }();
  return *recorder;
}

void TraceRecorder::Snapshot(std::vector<TraceEvent>* out) const {
  uint64_t retained = std::min<uint64_t>(head_, kCapacity);
  for (uint64_t i = head_ - retained; i < head_; ++i) {
    out->push_back(events_[i & (kCapacity - 1)]);
  }
}

void SetTracingEnabled(bool enabled) {
  TracingEnabledFlag().store(enabled, std::memory_order_relaxed);
}

int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<TraceEvent> CollectTraceEvents() {
  std::lock_guard<std::mutex> lock(RecorderMutex());
  std::vector<TraceEvent> events;
  for (const TraceRecorder* recorder : Recorders()) {
    recorder->Snapshot(&events);
  }
  return events;
}

void ClearTraceEvents() {
  std::lock_guard<std::mutex> lock(RecorderMutex());
  for (TraceRecorder* recorder : Recorders()) {
    recorder->Clear();
  }
}

}  // namespace obs
}  // namespace kc
