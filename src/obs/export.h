#ifndef KALMANCAST_OBS_EXPORT_H_
#define KALMANCAST_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace kc {
namespace obs {

/// Exporter output format.
enum class ExportFormat {
  kText,        ///< Human-readable aligned table.
  kJsonLines,   ///< One JSON object per metric per line.
  kPrometheus,  ///< Prometheus text exposition format.
};

struct ExportOptions {
  ExportFormat format = ExportFormat::kText;
  /// Include metrics registered as wall-clock timings. These are the only
  /// run-dependent metrics; excluding them makes the export byte-identical
  /// across runs and thread counts for a deterministic workload.
  bool include_wall_clock = true;
};

/// Renders every metric of `registry`, sorted by name. All formats are
/// deterministic given the same metric values.
std::string ExportMetrics(const MetricRegistry& registry,
                          const ExportOptions& options = {});

/// Convenience wrappers.
std::string ExportText(const MetricRegistry& registry,
                       bool include_wall_clock = true);
std::string ExportJsonLines(const MetricRegistry& registry,
                            bool include_wall_clock = true);
std::string ExportPrometheus(const MetricRegistry& registry,
                             bool include_wall_clock = true);

}  // namespace obs
}  // namespace kc

#endif  // KALMANCAST_OBS_EXPORT_H_
