#ifndef KALMANCAST_OBS_EXPORT_H_
#define KALMANCAST_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace kc {
namespace obs {

/// Exporter output format.
enum class ExportFormat {
  kText,        ///< Human-readable aligned table.
  kJsonLines,   ///< One JSON object per metric per line.
  kPrometheus,  ///< Prometheus text exposition format.
};

struct ExportOptions {
  ExportFormat format = ExportFormat::kText;
  /// Include metrics registered as wall-clock timings. These are the only
  /// run-dependent metrics; excluding them makes the export byte-identical
  /// across runs and thread counts for a deterministic workload.
  bool include_wall_clock = true;
};

/// Renders every metric of `registry`, sorted by name. All formats are
/// deterministic given the same metric values.
std::string ExportMetrics(const MetricRegistry& registry,
                          const ExportOptions& options = {});

/// Convenience wrappers.
std::string ExportText(const MetricRegistry& registry,
                       bool include_wall_clock = true);
std::string ExportJsonLines(const MetricRegistry& registry,
                            bool include_wall_clock = true);
std::string ExportPrometheus(const MetricRegistry& registry,
                             bool include_wall_clock = true);

/// Renders trace spans (CollectTraceEvents) as Chrome trace-event JSON,
/// loadable by chrome://tracing and Perfetto. Each span becomes a
/// complete ("X") event on its recording thread's track; spans sharing a
/// nonzero flow_id additionally emit flow ("s"/"f") events, so the
/// agent-side decision and the replica-side apply of one message render
/// as a connected arrow.
std::string ExportChromeTrace(const std::vector<TraceEvent>& events);

}  // namespace obs
}  // namespace kc

#endif  // KALMANCAST_OBS_EXPORT_H_
