#ifndef KALMANCAST_OBS_EXPORT_H_
#define KALMANCAST_OBS_EXPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace kc {
namespace obs {

/// Exporter output format.
enum class ExportFormat {
  kText,        ///< Human-readable aligned table.
  kJsonLines,   ///< One JSON object per metric per line.
  kPrometheus,  ///< Prometheus text exposition format.
};

struct ExportOptions {
  ExportFormat format = ExportFormat::kText;
  /// Include metrics registered as wall-clock timings. These are the only
  /// run-dependent metrics; excluding them makes the export byte-identical
  /// across runs and thread counts for a deterministic workload.
  bool include_wall_clock = true;
  /// When non-empty, only metrics whose name starts with this prefix are
  /// rendered (e.g. "kc.audit." keeps a /metrics scrape small at fleet
  /// scale). Matches the raw dotted name, not the sanitized Prometheus
  /// one.
  std::string prefix;
};

/// Renders every metric of `registry`, sorted by name. All formats are
/// deterministic given the same metric values.
std::string ExportMetrics(const MetricRegistry& registry,
                          const ExportOptions& options = {});

/// Renders an already-snapshotted row set (rows keep their given order;
/// MetricRegistry::Rows() is sorted by name). This is the backend of
/// ExportMetrics, split out so consumers holding a published snapshot —
/// the HTTP telemetry endpoint — can re-render it per request (with a
/// per-request prefix) without touching the live registry.
std::string ExportRows(const std::vector<MetricRow>& rows,
                       const ExportOptions& options = {});

/// Convenience wrappers. `prefix` as in ExportOptions.
std::string ExportText(const MetricRegistry& registry,
                       bool include_wall_clock = true,
                       const std::string& prefix = {});
std::string ExportJsonLines(const MetricRegistry& registry,
                            bool include_wall_clock = true,
                            const std::string& prefix = {});
std::string ExportPrometheus(const MetricRegistry& registry,
                             bool include_wall_clock = true,
                             const std::string& prefix = {});

struct ChromeTraceOptions {
  /// process_name metadata per pid (rendered as "M" events, in the given
  /// order). Pids present in the span set but not named here get
  /// "process <pid>". A split deployment names pid 0 "stream-server" and
  /// pid 1 "fleet-client" so the stitched trace reads like the topology.
  std::vector<std::pair<uint32_t, std::string>> process_names;
};

/// Renders trace spans (CollectTraceEvents, possibly merged with a
/// RemoteTelemetryMerger's rebased remote events) as Chrome trace-event
/// JSON, loadable by chrome://tracing and Perfetto. Events are sorted by
/// timestamp (stable; pid then thread as tiebreaks) so merged
/// multi-process traces load in causal order. Each span becomes a
/// complete ("X") event on its (pid, tid) track; spans sharing a nonzero
/// flow_id additionally emit flow ("s"/"f") events, so the agent-side
/// decision and the replica-side apply of one message render as a
/// connected arrow — across processes when the spans carry different
/// pids.
std::string ExportChromeTrace(const std::vector<TraceEvent>& events,
                              const ChromeTraceOptions& options = {});

}  // namespace obs
}  // namespace kc

#endif  // KALMANCAST_OBS_EXPORT_H_
