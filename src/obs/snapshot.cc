#include "obs/snapshot.h"

#include <cstring>

namespace kc {
namespace obs {

namespace {

constexpr uint8_t kSnapshotMagic = 0x4B;  // 'K'
constexpr uint8_t kSnapshotVersion = 0x01;
constexpr uint8_t kFlagWallClock = 0x01;
constexpr size_t kMaxVarintBytes = 10;

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> (sizeof(int64_t) * 8 - 1));
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void AppendVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

void AppendSignedVarint(int64_t v, std::vector<uint8_t>* out) {
  AppendVarint(ZigZag(v), out);
}

void AppendDoubleLe(double v, std::vector<uint8_t>* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "64-bit doubles required");
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

void AppendString(const std::string& s, std::vector<uint8_t>* out) {
  // The decode-side cap is a hard contract; truncate at the source so a
  // pathological summary string cannot produce an undecodable snapshot.
  size_t n = s.size() < kMaxSnapshotStringBytes ? s.size()
                                                : kMaxSnapshotStringBytes;
  AppendVarint(n, out);
  out->insert(out->end(), s.begin(), s.begin() + static_cast<ptrdiff_t>(n));
}

/// Hardened cursor over untrusted bytes. Every Read* reports kOutOfRange
/// when the buffer ends mid-field and kInvalidArgument on structural
/// garbage, mirroring net/codec.cc.
struct Reader {
  const uint8_t* data;
  size_t size;
  size_t off = 0;

  Status ReadByte(uint8_t* out) {
    if (off >= size) return Status::OutOfRange("snapshot truncated");
    *out = data[off++];
    return Status::Ok();
  }

  Status ReadVarint(uint64_t* out) {
    uint64_t value = 0;
    size_t shift = 0;
    size_t start = off;
    while (true) {
      if (off >= size) return Status::OutOfRange("snapshot truncated");
      if (off - start >= kMaxVarintBytes) {
        return Status::InvalidArgument("snapshot varint too long");
      }
      uint8_t byte = data[off++];
      value |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    // Canonical-form check: one value, one encoding (a padded varint is
    // forgery or corruption, never this encoder's output).
    if (off - start != VarintSize(value)) {
      return Status::InvalidArgument("non-canonical snapshot varint");
    }
    *out = value;
    return Status::Ok();
  }

  Status ReadSignedVarint(int64_t* out) {
    uint64_t raw = 0;
    KC_RETURN_IF_ERROR(ReadVarint(&raw));
    *out = UnZigZag(raw);
    return Status::Ok();
  }

  Status ReadDoubleLe(double* out) {
    if (size - off < 8 || off > size) {
      return Status::OutOfRange("snapshot truncated");
    }
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(data[off + static_cast<size_t>(i)])
              << (8 * i);
    }
    off += 8;
    std::memcpy(out, &bits, sizeof(*out));
    return Status::Ok();
  }

  Status ReadString(std::string* out) {
    uint64_t len = 0;
    KC_RETURN_IF_ERROR(ReadVarint(&len));
    if (len > kMaxSnapshotStringBytes) {
      return Status::InvalidArgument("snapshot string too long");
    }
    if (size - off < len) return Status::OutOfRange("snapshot truncated");
    out->assign(reinterpret_cast<const char*>(data + off),
                static_cast<size_t>(len));
    off += static_cast<size_t>(len);
    return Status::Ok();
  }
};

void AppendRow(const MetricRow& row, std::vector<uint8_t>* out) {
  AppendString(row.name, out);
  out->push_back(static_cast<uint8_t>(row.kind));
  out->push_back(row.wall_clock ? kFlagWallClock : 0);
  switch (row.kind) {
    case MetricKind::kCounter:
      AppendSignedVarint(row.counter, out);
      break;
    case MetricKind::kGauge:
      AppendDoubleLe(row.gauge, out);
      break;
    case MetricKind::kHistogram: {
      size_t nbounds = row.hist_bounds.size() < Buckets::kMaxBounds
                           ? row.hist_bounds.size()
                           : Buckets::kMaxBounds;
      AppendVarint(nbounds, out);
      for (size_t i = 0; i < nbounds; ++i) {
        AppendDoubleLe(row.hist_bounds[i], out);
      }
      // Exactly nbounds + 1 counts (overflow last); a short source row
      // pads with zeros so the wire shape is always self-consistent.
      for (size_t i = 0; i <= nbounds; ++i) {
        AppendSignedVarint(i < row.hist_counts.size() ? row.hist_counts[i]
                                                      : 0,
                           out);
      }
      AppendDoubleLe(row.hist_sum, out);
      break;
    }
  }
}

Status ReadRow(Reader* r, MetricRow* row) {
  KC_RETURN_IF_ERROR(r->ReadString(&row->name));
  uint8_t kind = 0;
  uint8_t flags = 0;
  KC_RETURN_IF_ERROR(r->ReadByte(&kind));
  KC_RETURN_IF_ERROR(r->ReadByte(&flags));
  if (kind > static_cast<uint8_t>(MetricKind::kHistogram)) {
    return Status::InvalidArgument("unknown snapshot metric kind");
  }
  if ((flags & ~kFlagWallClock) != 0) {
    return Status::InvalidArgument("nonzero reserved snapshot row flags");
  }
  row->kind = static_cast<MetricKind>(kind);
  row->wall_clock = (flags & kFlagWallClock) != 0;
  switch (row->kind) {
    case MetricKind::kCounter:
      KC_RETURN_IF_ERROR(r->ReadSignedVarint(&row->counter));
      break;
    case MetricKind::kGauge:
      KC_RETURN_IF_ERROR(r->ReadDoubleLe(&row->gauge));
      break;
    case MetricKind::kHistogram: {
      uint64_t nbounds = 0;
      KC_RETURN_IF_ERROR(r->ReadVarint(&nbounds));
      if (nbounds > Buckets::kMaxBounds) {
        return Status::InvalidArgument("snapshot histogram too wide");
      }
      row->hist_bounds.resize(static_cast<size_t>(nbounds));
      for (double& b : row->hist_bounds) {
        KC_RETURN_IF_ERROR(r->ReadDoubleLe(&b));
      }
      row->hist_counts.resize(static_cast<size_t>(nbounds) + 1);
      row->hist_count = 0;
      for (int64_t& c : row->hist_counts) {
        KC_RETURN_IF_ERROR(r->ReadSignedVarint(&c));
        row->hist_count += c;
      }
      KC_RETURN_IF_ERROR(r->ReadDoubleLe(&row->hist_sum));
      break;
    }
  }
  return Status::Ok();
}

}  // namespace

void EncodeSnapshot(const TelemetrySnapshot& snapshot,
                    std::vector<uint8_t>* out) {
  out->push_back(kSnapshotMagic);
  out->push_back(kSnapshotVersion);
  AppendSignedVarint(snapshot.tick, out);
  AppendSignedVarint(snapshot.clock_offset_ns, out);
  AppendSignedVarint(snapshot.clock_uncertainty_ns, out);
  AppendString(snapshot.health_summary, out);
  AppendString(snapshot.audit_summary, out);

  size_t nrows = snapshot.rows.size() < kMaxSnapshotRows ? snapshot.rows.size()
                                                         : kMaxSnapshotRows;
  AppendVarint(nrows, out);
  for (size_t i = 0; i < nrows; ++i) AppendRow(snapshot.rows[i], out);

  size_t nevents = snapshot.trace_events.size() < kMaxSnapshotEvents
                       ? snapshot.trace_events.size()
                       : kMaxSnapshotEvents;
  AppendVarint(nevents, out);
  for (size_t i = 0; i < nevents; ++i) {
    const SnapshotTraceEvent& e = snapshot.trace_events[i];
    AppendString(e.name, out);
    AppendSignedVarint(e.start_ns, out);
    AppendSignedVarint(e.duration_ns, out);
    AppendVarint(e.flow_id, out);
    AppendVarint(e.depth, out);
    AppendVarint(e.thread_index, out);
  }

  size_t nsends = snapshot.send_log.size() < kMaxSnapshotSends
                      ? snapshot.send_log.size()
                      : kMaxSnapshotSends;
  AppendVarint(nsends, out);
  for (size_t i = 0; i < nsends; ++i) {
    const WireSendRecord& s = snapshot.send_log[i];
    AppendVarint(s.flow_id, out);
    out->push_back(s.type);
    AppendSignedVarint(s.send_ns, out);
  }
}

Status DecodeSnapshot(const uint8_t* data, size_t size,
                      TelemetrySnapshot* out) {
  *out = TelemetrySnapshot();
  Reader r{data, size};
  uint8_t magic = 0;
  uint8_t version = 0;
  KC_RETURN_IF_ERROR(r.ReadByte(&magic));
  KC_RETURN_IF_ERROR(r.ReadByte(&version));
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("bad snapshot magic");
  }
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  KC_RETURN_IF_ERROR(r.ReadSignedVarint(&out->tick));
  KC_RETURN_IF_ERROR(r.ReadSignedVarint(&out->clock_offset_ns));
  KC_RETURN_IF_ERROR(r.ReadSignedVarint(&out->clock_uncertainty_ns));
  KC_RETURN_IF_ERROR(r.ReadString(&out->health_summary));
  KC_RETURN_IF_ERROR(r.ReadString(&out->audit_summary));

  uint64_t nrows = 0;
  KC_RETURN_IF_ERROR(r.ReadVarint(&nrows));
  if (nrows > kMaxSnapshotRows) {
    return Status::InvalidArgument("snapshot declares too many rows");
  }
  out->rows.resize(static_cast<size_t>(nrows));
  for (MetricRow& row : out->rows) {
    KC_RETURN_IF_ERROR(ReadRow(&r, &row));
  }

  uint64_t nevents = 0;
  KC_RETURN_IF_ERROR(r.ReadVarint(&nevents));
  if (nevents > kMaxSnapshotEvents) {
    return Status::InvalidArgument("snapshot declares too many trace events");
  }
  out->trace_events.resize(static_cast<size_t>(nevents));
  for (SnapshotTraceEvent& e : out->trace_events) {
    KC_RETURN_IF_ERROR(r.ReadString(&e.name));
    KC_RETURN_IF_ERROR(r.ReadSignedVarint(&e.start_ns));
    KC_RETURN_IF_ERROR(r.ReadSignedVarint(&e.duration_ns));
    uint64_t raw = 0;
    KC_RETURN_IF_ERROR(r.ReadVarint(&e.flow_id));
    KC_RETURN_IF_ERROR(r.ReadVarint(&raw));
    e.depth = static_cast<uint32_t>(raw);
    KC_RETURN_IF_ERROR(r.ReadVarint(&raw));
    e.thread_index = static_cast<uint32_t>(raw);
  }

  uint64_t nsends = 0;
  KC_RETURN_IF_ERROR(r.ReadVarint(&nsends));
  if (nsends > kMaxSnapshotSends) {
    return Status::InvalidArgument("snapshot declares too many send records");
  }
  out->send_log.resize(static_cast<size_t>(nsends));
  for (WireSendRecord& s : out->send_log) {
    KC_RETURN_IF_ERROR(r.ReadVarint(&s.flow_id));
    KC_RETURN_IF_ERROR(r.ReadByte(&s.type));
    KC_RETURN_IF_ERROR(r.ReadSignedVarint(&s.send_ns));
  }

  if (r.off != size) {
    return Status::InvalidArgument("trailing bytes after snapshot");
  }
  return Status::Ok();
}

std::vector<MetricRow> SnapshotRows(const MetricRegistry& registry) {
  return registry.Rows();
}

}  // namespace obs
}  // namespace kc
