#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "linalg/kernels.h"

namespace kc {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.ResizeUninit(rows_ * cols_);
  size_t i = 0;
  for (const auto& row : rows) {
    assert(row.size() == cols_ && "ragged initializer");
    for (double v : row) data_[i++] = v;
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size());
  for (size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Matrix Matrix::ScalarDiagonal(size_t n, double value) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = value;
  return m;
}

Matrix Matrix::Outer(const Vector& a, const Vector& b) {
  Matrix m(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    for (size_t c = 0; c < b.size(); ++c) m(r, c) = a[r] * b[c];
  }
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t;
  TransposeInto(*this, &t);
  return t;
}

Vector Matrix::Row(size_t r) const {
  assert(r < rows_);
  Vector v(cols_);
  for (size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::Col(size_t c) const {
  assert(c < cols_);
  Vector v(rows_);
  for (size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

Vector Matrix::Diag() const {
  size_t n = std::min(rows_, cols_);
  Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = (*this)(i, i);
  return v;
}

double Matrix::Trace() const {
  assert(IsSquare());
  double sum = 0.0;
  for (size_t i = 0; i < rows_; ++i) sum += (*this)(i, i);
  return sum;
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

bool Matrix::IsSymmetric(double tol) const {
  if (!IsSquare()) return false;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = r + 1; c < cols_; ++c) {
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t r = 0; r < rows_; ++r) {
    if (r > 0) os << ", ";
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    os << "]";
  }
  os << "]";
  return os.str();
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}
Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}
Matrix operator*(Matrix m, double s) {
  m *= s;
  return m;
}
Matrix operator*(double s, Matrix m) {
  m *= s;
  return m;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  Matrix out;
  MultiplyInto(a, b, &out);
  return out;
}

Vector operator*(const Matrix& m, const Vector& v) {
  Vector out;
  MultiplyInto(m, v, &out);
  return out;
}

Matrix operator-(Matrix m) {
  m *= -1.0;
  return m;
}

bool operator==(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() && a.data() == b.data();
}

bool AlmostEqual(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.data().size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > tol) return false;
  }
  return true;
}

double QuadraticForm(const Matrix& a, const Vector& x) {
  assert(a.IsSquare() && a.rows() == x.size());
  return x.Dot(a * x);
}

Matrix Sandwich(const Matrix& a, const Matrix& b) {
  Matrix tmp;
  Matrix out;
  SandwichInto(a, b, &tmp, &out);
  return out;
}

}  // namespace kc
