#ifndef KALMANCAST_LINALG_BATCH_KERNELS_H_
#define KALMANCAST_LINALG_BATCH_KERNELS_H_

#include <cstddef>

#if defined(__AVX2__) && !defined(KC_BATCH_FORCE_SCALAR)
#define KC_BATCH_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace kc {
namespace batch {

/// Lane-per-slot batch kernels for the FilterPool predict sweep.
///
/// Each SIMD lane carries one *slot's* filter: lane l of every vector
/// register holds slot (4*block + l)'s value of the same (x element /
/// P entry / intermediate). The kernels execute, per slot, exactly the
/// floating-point operation sequence of the scalar destination-passing
/// kernels in linalg/kernels.h (the sequence FilterPool::PredictSlot and
/// KalmanFilter::Predict run) — cross-slot vectorization reorders nothing
/// *within* a slot, so every lane's result is bit-identical to the scalar
/// path by construction. Two details make that exact rather than merely
/// close:
///
///  - No FMA, ever. a*b then +c rounds twice in the scalar kernels, so
///    the lane kernels use separate multiply and add. The build adds
///    -mavx2 but deliberately not -mfma, so the compiler cannot contract
///    the pair behind our back (contraction needs the FMA ISA).
///  - The data-dependent zero-skip. MultiplyTransposedInto skips the
///    accumulation `out += av * b` when av == 0.0, and in tmp * F^T the
///    `av` is per-slot data — lanes may disagree. A compare+blend keeps
///    each lane's *old* accumulator exactly where that lane's av is zero,
///    which reproduces the skip bit-for-bit (including -0.0 == 0.0
///    skipping, and NaN av not skipping, matching the scalar compare).
///    The F-side skip in F * P depends only on the shared F, so it stays
///    an ordinary branch, uniform across lanes.
///
/// Slab layout (AoSoA): a block is kLanes consecutive slots. Element e of
/// slot s lives at x_blk[e * kLanes + lane] with block = s / kLanes,
/// lane = s % kLanes; P entry (r, c) at p_blk[(r*dim + c) * kLanes +
/// lane]. Loads are full-width (inactive lanes hold zeroed state, safe to
/// compute with); stores honor an active-lane mask so freed slots stay
/// zeroed and remainder blocks (slot counts not a multiple of kLanes)
/// never touch memory beyond their live lanes.
///
/// Two lane types compile side by side: LanePortable (plain double[4],
/// the scalar fallback — also what KC_SIMD=OFF builds use exclusively via
/// KC_BATCH_FORCE_SCALAR) and, when AVX2 is available, LaneAvx on
/// __m256d. Both are available at runtime so a single binary can pin
/// SIMD-vs-scalar bit-identity (tests/batch_kernels_test.cc) and bench
/// the simd on/off axis.

inline constexpr size_t kLanes = 4;
/// Largest state dimension with a specialized batch kernel; matches the
/// FilterPool inline-slab envelope (MakePooledPredictor gates dim <= 8).
inline constexpr size_t kMaxDim = 8;
inline constexpr unsigned kFullMask = (1u << kLanes) - 1;

#if KC_BATCH_HAVE_AVX2
inline constexpr bool kSimdCompiledIn = true;
#else
inline constexpr bool kSimdCompiledIn = false;
#endif

/// Portable lane: four independent scalar pipelines. The loops below are
/// trivially auto-vectorizable, but correctness never depends on that —
/// each lane performs the scalar op sequence verbatim.
struct LanePortable {
  double v[kLanes];

  static LanePortable Zero() { return Broadcast(0.0); }
  static LanePortable Broadcast(double s) {
    LanePortable r;
    for (size_t l = 0; l < kLanes; ++l) r.v[l] = s;
    return r;
  }
  static LanePortable Load(const double* p) {
    LanePortable r;
    for (size_t l = 0; l < kLanes; ++l) r.v[l] = p[l];
    return r;
  }
  void Store(double* p) const {
    for (size_t l = 0; l < kLanes; ++l) p[l] = v[l];
  }
  void StoreMasked(double* p, unsigned mask) const {
    for (size_t l = 0; l < kLanes; ++l) {
      if (mask & (1u << l)) p[l] = v[l];
    }
  }
  friend LanePortable Add(LanePortable a, LanePortable b) {
    LanePortable r;
    for (size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] + b.v[l];
    return r;
  }
  friend LanePortable Mul(LanePortable a, LanePortable b) {
    LanePortable r;
    for (size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] * b.v[l];
    return r;
  }
  /// Per lane: av == 0.0 ? if_zero : if_nonzero — the lane form of the
  /// scalar kernels' `if (av == 0.0) continue;` accumulation skip.
  friend LanePortable BlendWhereZero(LanePortable av, LanePortable if_zero,
                                     LanePortable if_nonzero) {
    LanePortable r;
    for (size_t l = 0; l < kLanes; ++l) {
      r.v[l] = (av.v[l] == 0.0) ? if_zero.v[l] : if_nonzero.v[l];
    }
    return r;
  }
};

#if KC_BATCH_HAVE_AVX2
/// AVX2 lane: one 256-bit register = four slots' doubles.
struct LaneAvx {
  __m256d v;

  static LaneAvx Zero() { return {_mm256_setzero_pd()}; }
  static LaneAvx Broadcast(double s) { return {_mm256_set1_pd(s)}; }
  static LaneAvx Load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void Store(double* p) const { _mm256_storeu_pd(p, v); }
  void StoreMasked(double* p, unsigned mask) const {
    double tmp[kLanes];
    _mm256_storeu_pd(tmp, v);
    for (size_t l = 0; l < kLanes; ++l) {
      if (mask & (1u << l)) p[l] = tmp[l];
    }
  }
  friend LaneAvx Add(LaneAvx a, LaneAvx b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend LaneAvx Mul(LaneAvx a, LaneAvx b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  friend LaneAvx BlendWhereZero(LaneAvx av, LaneAvx if_zero,
                                LaneAvx if_nonzero) {
    // Ordered quiet ==: -0.0 compares equal to 0.0 (skip, like the scalar
    // branch) and NaN compares unequal (no skip, ditto).
    __m256d zero_mask = _mm256_cmp_pd(av.v, _mm256_setzero_pd(), _CMP_EQ_OQ);
    return {_mm256_blendv_pd(if_nonzero.v, if_zero.v, zero_mask)};
  }
};
#endif  // KC_BATCH_HAVE_AVX2

/// One block's time update — per slot (lane), the exact sequence of
/// FilterPool::PredictSlot / KalmanFilter::Predict:
///   fx = F x                       (MultiplyInto(Matrix, Vector))
///   tmp = F P                      (MultiplyInto — zero-skip on F)
///   j1  = tmp F^T                  (MultiplyTransposedInto — zero-skip
///                                   on tmp, per-lane blend)
///   P   = j1 + Q; Symmetrize(P)    (AddInto; avg = 0.5 * (p_rc + p_cr))
///   x   = fx
/// `f`/`q` are the pool's shared row-major dim x dim model matrices;
/// `x_blk`/`p_blk` point at the block's lane-interleaved slab storage.
/// Only lanes set in `mask` are stored; all lanes are loaded and
/// computed (inactive lanes hold zeroed state, so the arithmetic is
/// well-defined and the results are discarded).
template <typename Lane, size_t Dim>
inline void PredictBlock(const double* f, const double* q, double* x_blk,
                         double* p_blk, unsigned mask) {
  // fx = F x: per output row, accumulate from 0.0 in column order (no
  // zero-skip — the matrix*vector kernel has none).
  Lane fx[Dim];
  for (size_t r = 0; r < Dim; ++r) {
    Lane sum = Lane::Zero();
    for (size_t c = 0; c < Dim; ++c) {
      sum = Add(sum, Mul(Lane::Broadcast(f[r * Dim + c]),
                         Lane::Load(x_blk + c * kLanes)));
    }
    fx[r] = sum;
  }

  // tmp = F P. The skip tests the shared F entry, so it is a plain
  // branch, identical across lanes.
  Lane tmp[Dim * Dim];
  for (size_t i = 0; i < Dim * Dim; ++i) tmp[i] = Lane::Zero();
  for (size_t r = 0; r < Dim; ++r) {
    for (size_t k = 0; k < Dim; ++k) {
      double av = f[r * Dim + k];
      if (av == 0.0) continue;
      Lane bav = Lane::Broadcast(av);
      for (size_t c = 0; c < Dim; ++c) {
        tmp[r * Dim + c] =
            Add(tmp[r * Dim + c],
                Mul(bav, Lane::Load(p_blk + (k * Dim + c) * kLanes)));
      }
    }
  }

  // j1 = tmp F^T: b^T(k, c) == F(c, k). The skip tests per-slot data, so
  // each lane blends its old accumulator back where its av is zero.
  Lane j1[Dim * Dim];
  for (size_t i = 0; i < Dim * Dim; ++i) j1[i] = Lane::Zero();
  for (size_t r = 0; r < Dim; ++r) {
    for (size_t k = 0; k < Dim; ++k) {
      Lane av = tmp[r * Dim + k];
      for (size_t c = 0; c < Dim; ++c) {
        Lane old = j1[r * Dim + c];
        Lane acc = Add(old, Mul(av, Lane::Broadcast(f[c * Dim + k])));
        j1[r * Dim + c] = BlendWhereZero(av, old, acc);
      }
    }
  }

  // P = j1 + Q, then the in-place symmetrization, in register.
  Lane p[Dim * Dim];
  for (size_t i = 0; i < Dim * Dim; ++i) {
    p[i] = Add(j1[i], Lane::Broadcast(q[i]));
  }
  const Lane half = Lane::Broadcast(0.5);
  for (size_t r = 0; r < Dim; ++r) {
    for (size_t c = r + 1; c < Dim; ++c) {
      Lane avg = Mul(half, Add(p[r * Dim + c], p[c * Dim + r]));
      p[r * Dim + c] = avg;
      p[c * Dim + r] = avg;
    }
  }

  if (mask == kFullMask) {
    for (size_t e = 0; e < Dim; ++e) fx[e].Store(x_blk + e * kLanes);
    for (size_t i = 0; i < Dim * Dim; ++i) p[i].Store(p_blk + i * kLanes);
  } else {
    for (size_t e = 0; e < Dim; ++e) {
      fx[e].StoreMasked(x_blk + e * kLanes, mask);
    }
    for (size_t i = 0; i < Dim * Dim; ++i) {
      p[i].StoreMasked(p_blk + i * kLanes, mask);
    }
  }
}

/// Signature of a dim-specialized block predict.
using PredictBlockFn = void (*)(const double* f, const double* q,
                                double* x_blk, double* p_blk, unsigned mask);

template <typename Lane>
inline PredictBlockFn PredictBlockFnForDim(size_t dim) {
  switch (dim) {
    case 1: return &PredictBlock<Lane, 1>;
    case 2: return &PredictBlock<Lane, 2>;
    case 3: return &PredictBlock<Lane, 3>;
    case 4: return &PredictBlock<Lane, 4>;
    case 5: return &PredictBlock<Lane, 5>;
    case 6: return &PredictBlock<Lane, 6>;
    case 7: return &PredictBlock<Lane, 7>;
    case 8: return &PredictBlock<Lane, 8>;
    default: return nullptr;  // Outside the slab envelope: scalar path.
  }
}

/// The vector instantiation for `dim` — AVX2 lanes when compiled in,
/// otherwise the portable lanes. Null for dim > kMaxDim.
inline PredictBlockFn SimdPredictFn(size_t dim) {
#if KC_BATCH_HAVE_AVX2
  return PredictBlockFnForDim<LaneAvx>(dim);
#else
  return PredictBlockFnForDim<LanePortable>(dim);
#endif
}

/// The portable instantiation, always available (the runtime simd=off
/// path and the reference side of the bit-identity tests).
inline PredictBlockFn PortablePredictFn(size_t dim) {
  return PredictBlockFnForDim<LanePortable>(dim);
}

}  // namespace batch
}  // namespace kc

#endif  // KALMANCAST_LINALG_BATCH_KERNELS_H_
