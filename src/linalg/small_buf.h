#ifndef KALMANCAST_LINALG_SMALL_BUF_H_
#define KALMANCAST_LINALG_SMALL_BUF_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <vector>

namespace kc {

/// Small-buffer-optimized contiguous double storage backing Vector and
/// Matrix. Sizes up to InlineCap live in an inline array, so construction,
/// copy, and move of filter-sized objects (state_dim <= 8) never touch the
/// allocator; larger sizes spill to a heap buffer. The API mirrors the
/// subset of std::vector<double> the library uses, so existing call sites
/// (iteration, data(), equality) compile unchanged.
template <size_t InlineCap>
class SmallBuf {
 public:
  using value_type = double;
  using iterator = double*;
  using const_iterator = const double*;

  SmallBuf() = default;

  explicit SmallBuf(size_t n, double fill = 0.0) { Reset(n, fill); }

  SmallBuf(std::initializer_list<double> values) {
    ResizeUninit(values.size());
    std::copy(values.begin(), values.end(), data());
  }

  template <typename It>
  SmallBuf(It first, It last) {
    ResizeUninit(static_cast<size_t>(std::distance(first, last)));
    std::copy(first, last, data());
  }

  SmallBuf(const SmallBuf& other) {
    ResizeUninit(other.size_);
    std::copy(other.data(), other.data() + other.size_, data());
  }

  SmallBuf(SmallBuf&& other) noexcept {
    if (!other.is_inline()) {
      ptr_ = other.ptr_;
      heap_cap_ = other.heap_cap_;
      size_ = other.size_;
      other.ptr_ = other.inline_;
      other.heap_cap_ = 0;
      other.size_ = 0;
    } else {
      size_ = other.size_;
      std::copy(other.inline_, other.inline_ + other.size_, inline_);
      other.size_ = 0;
    }
  }

  SmallBuf& operator=(const SmallBuf& other) {
    if (this == &other) return *this;
    ResizeUninit(other.size_);
    std::copy(other.data(), other.data() + other.size_, data());
    return *this;
  }

  SmallBuf& operator=(SmallBuf&& other) noexcept {
    if (this == &other) return *this;
    if (!other.is_inline()) {
      if (!is_inline()) delete[] ptr_;
      ptr_ = other.ptr_;
      heap_cap_ = other.heap_cap_;
      size_ = other.size_;
      other.ptr_ = other.inline_;
      other.heap_cap_ = 0;
      other.size_ = 0;
    } else {
      ResizeUninit(other.size_);
      std::copy(other.inline_, other.inline_ + other.size_, data());
      other.size_ = 0;
    }
    return *this;
  }

  ~SmallBuf() {
    if (!is_inline()) delete[] ptr_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  static constexpr size_t inline_capacity() { return InlineCap; }
  /// True if the active storage is the inline array (no heap spill).
  bool is_inline() const { return ptr_ == inline_; }

  // ptr_ always points at the active storage (inline array or heap block),
  // so element access is a single unconditional indirection — this keeps
  // the kernels' inner loops branch-free.
  double* data() { return ptr_; }
  const double* data() const { return ptr_; }
  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  double operator[](size_t i) const {
    assert(i < size_);
    return data()[i];
  }
  double& operator[](size_t i) {
    assert(i < size_);
    return data()[i];
  }

  /// Reshapes to n elements, all set to `fill`.
  void Reset(size_t n, double fill = 0.0) {
    ResizeUninit(n);
    std::fill(data(), data() + n, fill);
  }

  /// Reshapes to n elements; contents are unspecified afterwards (the *Into
  /// kernels fully overwrite their destinations). Never allocates when
  /// n <= InlineCap or when an existing heap buffer is large enough.
  void ResizeUninit(size_t n) {
    if (n <= InlineCap) {
      if (!is_inline()) {
        delete[] ptr_;
        ptr_ = inline_;
        heap_cap_ = 0;
      }
    } else if (n > heap_cap_) {
      if (!is_inline()) delete[] ptr_;
      ptr_ = new double[n];
      heap_cap_ = n;
    }
    size_ = n;
  }

  /// Conversion for call sites that ship the contents as a std::vector
  /// payload (e.g. Predictor::EncodeCorrection).
  operator std::vector<double>() const {  // NOLINT(google-explicit-constructor)
    return std::vector<double>(begin(), end());
  }

  friend bool operator==(const SmallBuf& a, const SmallBuf& b) {
    return a.size_ == b.size_ &&
           std::equal(a.data(), a.data() + a.size_, b.data());
  }

 private:
  size_t heap_cap_ = 0;  ///< Capacity of the heap block when spilled.
  size_t size_ = 0;
  double inline_[InlineCap];
  double* ptr_ = inline_;  ///< Active storage: inline_ or a heap block.
};

}  // namespace kc

#endif  // KALMANCAST_LINALG_SMALL_BUF_H_
