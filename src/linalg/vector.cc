#include "linalg/vector.h"

#include <cmath>
#include <sstream>

namespace kc {

Vector Vector::Ones(size_t n) {
  Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 1.0;
  return v;
}

Vector Vector::Unit(size_t n, size_t i) {
  assert(i < n);
  Vector v(n);
  v[i] = 1.0;
  return v;
}

double Vector::Norm() const { return std::sqrt(SquaredNorm()); }

double Vector::SquaredNorm() const { return Dot(*this); }

double Vector::NormInf() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Vector::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < data_.size(); ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  os << "]";
  return os.str();
}

Vector operator+(Vector a, const Vector& b) {
  a += b;
  return a;
}
Vector operator-(Vector a, const Vector& b) {
  a -= b;
  return a;
}
Vector operator*(Vector v, double s) {
  v *= s;
  return v;
}
Vector operator*(double s, Vector v) {
  v *= s;
  return v;
}
Vector operator/(Vector v, double s) {
  v /= s;
  return v;
}
Vector operator-(Vector v) {
  v *= -1.0;
  return v;
}

bool operator==(const Vector& a, const Vector& b) { return a.data() == b.data(); }

bool AlmostEqual(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace kc
