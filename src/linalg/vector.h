#ifndef KALMANCAST_LINALG_VECTOR_H_
#define KALMANCAST_LINALG_VECTOR_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "linalg/small_buf.h"

namespace kc {

/// Dense real vector. This is the library's Eigen substitute for the small
/// (n <= 8) state/observation vectors Kalman filtering needs; it favors
/// clarity and asserts over micro-optimization. Storage is small-buffer
/// optimized: dimensions up to kInlineCap live inline, so filter-sized
/// vectors never touch the allocator (see docs/PERF.md).
class Vector {
 public:
  /// Dimensions up to this live in inline storage (the documented
  /// state_dim <= 8 envelope).
  static constexpr size_t kInlineCap = 8;
  using Store = SmallBuf<kInlineCap>;

  /// Empty (size-0) vector.
  Vector() = default;

  /// Zero vector of dimension n.
  explicit Vector(size_t n) : data_(n, 0.0) {}

  /// Vector with explicit entries, e.g. Vector({1.0, 2.0}).
  Vector(std::initializer_list<double> values) : data_(values) {}

  /// Copies an existing buffer.
  explicit Vector(const std::vector<double>& values)
      : data_(values.begin(), values.end()) {}

  static Vector Zero(size_t n) { return Vector(n); }
  /// Vector of all ones.
  static Vector Ones(size_t n);
  /// i-th standard basis vector of dimension n.
  static Vector Unit(size_t n, size_t i);

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator[](size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }
  double& operator[](size_t i) {
    assert(i < data_.size());
    return data_[i];
  }

  const Store& data() const { return data_; }
  Store& data() { return data_; }

  /// Reshapes to n entries; contents are unspecified afterwards (the *Into
  /// kernels fully overwrite their destinations). Allocation-free whenever
  /// n <= kInlineCap or existing heap storage suffices.
  void ResizeUninit(size_t n) { data_.ResizeUninit(n); }
  /// Sets every entry to zero.
  void SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

  // The in-place elementwise ops and Dot sit on the filter hot path
  // (state correction, NIS), so they are defined inline over the raw
  // storage; op order matches the historical loops (bit-identical).
  Vector& operator+=(const Vector& other) {
    assert(size() == other.size());
    double* p = data_.data();
    const double* q = other.data_.data();
    size_t n = data_.size();
    for (size_t i = 0; i < n; ++i) p[i] += q[i];
    return *this;
  }
  Vector& operator-=(const Vector& other) {
    assert(size() == other.size());
    double* p = data_.data();
    const double* q = other.data_.data();
    size_t n = data_.size();
    for (size_t i = 0; i < n; ++i) p[i] -= q[i];
    return *this;
  }
  Vector& operator*=(double s) {
    double* p = data_.data();
    size_t n = data_.size();
    for (size_t i = 0; i < n; ++i) p[i] *= s;
    return *this;
  }
  Vector& operator/=(double s) {
    double* p = data_.data();
    size_t n = data_.size();
    for (size_t i = 0; i < n; ++i) p[i] /= s;
    return *this;
  }

  /// Inner product; dimensions must match.
  double Dot(const Vector& other) const {
    assert(size() == other.size());
    const double* p = data_.data();
    const double* q = other.data_.data();
    size_t n = data_.size();
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += p[i] * q[i];
    return sum;
  }

  /// Euclidean norm.
  double Norm() const;
  /// Squared Euclidean norm.
  double SquaredNorm() const;
  /// Max-abs (infinity) norm.
  double NormInf() const;

  /// "[a, b, c]".
  std::string ToString() const;

 private:
  Store data_;
};

Vector operator+(Vector a, const Vector& b);
Vector operator-(Vector a, const Vector& b);
Vector operator*(Vector v, double s);
Vector operator*(double s, Vector v);
Vector operator/(Vector v, double s);
Vector operator-(Vector v);

bool operator==(const Vector& a, const Vector& b);

/// True if a and b have equal size and entries within `tol` of each other.
bool AlmostEqual(const Vector& a, const Vector& b, double tol = 1e-9);

}  // namespace kc

#endif  // KALMANCAST_LINALG_VECTOR_H_
