#ifndef KALMANCAST_LINALG_VECTOR_H_
#define KALMANCAST_LINALG_VECTOR_H_

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace kc {

/// Dense real vector. This is the library's Eigen substitute for the small
/// (n <= 8) state/observation vectors Kalman filtering needs; it favors
/// clarity and asserts over micro-optimization.
class Vector {
 public:
  /// Empty (size-0) vector.
  Vector() = default;

  /// Zero vector of dimension n.
  explicit Vector(size_t n) : data_(n, 0.0) {}

  /// Vector with explicit entries, e.g. Vector({1.0, 2.0}).
  Vector(std::initializer_list<double> values) : data_(values) {}

  /// Adopts an existing buffer.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  static Vector Zero(size_t n) { return Vector(n); }
  /// Vector of all ones.
  static Vector Ones(size_t n);
  /// i-th standard basis vector of dimension n.
  static Vector Unit(size_t n, size_t i);

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator[](size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }
  double& operator[](size_t i) {
    assert(i < data_.size());
    return data_[i];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double s);
  Vector& operator/=(double s);

  /// Inner product; dimensions must match.
  double Dot(const Vector& other) const;

  /// Euclidean norm.
  double Norm() const;
  /// Squared Euclidean norm.
  double SquaredNorm() const;
  /// Max-abs (infinity) norm.
  double NormInf() const;

  /// "[a, b, c]".
  std::string ToString() const;

 private:
  std::vector<double> data_;
};

Vector operator+(Vector a, const Vector& b);
Vector operator-(Vector a, const Vector& b);
Vector operator*(Vector v, double s);
Vector operator*(double s, Vector v);
Vector operator/(Vector v, double s);
Vector operator-(Vector v);

bool operator==(const Vector& a, const Vector& b);

/// True if a and b have equal size and entries within `tol` of each other.
bool AlmostEqual(const Vector& a, const Vector& b, double tol = 1e-9);

}  // namespace kc

#endif  // KALMANCAST_LINALG_VECTOR_H_
