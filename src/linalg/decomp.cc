#include "linalg/decomp.h"

#include <cmath>

namespace kc {

Cholesky::Cholesky(const Matrix& a) {
  ok_ = FactorInto(a, &l_);
  if (!ok_) l_ = Matrix();
}

Vector Cholesky::Solve(const Vector& b) const {
  assert(ok_ && b.size() == l_.rows());
  Vector x;
  SolveInto(l_, b, &x);
  return x;
}

Matrix Cholesky::Solve(const Matrix& b) const {
  assert(ok_ && b.rows() == l_.rows());
  Matrix x;
  SolveInto(l_, b, &x);
  return x;
}

Matrix Cholesky::Inverse() const {
  assert(ok_);
  return Solve(Matrix::Identity(l_.rows()));
}

double Cholesky::LogDeterminant() const {
  assert(ok_);
  double sum = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) sum += std::log(l_(i, i));
  return 2.0 * sum;
}

PartialPivLu::PartialPivLu(const Matrix& a) {
  if (!a.IsSquare() || a.rows() == 0) return;
  size_t n = a.rows();
  lu_ = a;
  perm_.resize(n);
  for (size_t i = 0; i < n; ++i) perm_[i] = i;

  for (size_t col = 0; col < n; ++col) {
    // Pivot: largest |entry| in this column at or below the diagonal.
    size_t pivot = col;
    double best = std::fabs(lu_(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(lu_(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      lu_ = Matrix();
      return;  // Singular.
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(lu_(pivot, c), lu_(col, c));
      std::swap(perm_[pivot], perm_[col]);
      sign_ = -sign_;
    }
    // Eliminate below the diagonal.
    for (size_t r = col + 1; r < n; ++r) {
      double factor = lu_(r, col) / lu_(col, col);
      lu_(r, col) = factor;  // Store L.
      for (size_t c = col + 1; c < n; ++c) lu_(r, c) -= factor * lu_(col, c);
    }
  }
  ok_ = true;
}

Vector PartialPivLu::Solve(const Vector& b) const {
  assert(ok_ && b.size() == lu_.rows());
  size_t n = lu_.rows();
  // Apply permutation, then forward substitution (L has unit diagonal).
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[perm_[i]];
    for (size_t k = 0; k < i; ++k) sum -= lu_(i, k) * y[k];
    y[i] = sum;
  }
  // Back substitution with U.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= lu_(ii, k) * x[k];
    x[ii] = sum / lu_(ii, ii);
  }
  return x;
}

Matrix PartialPivLu::Solve(const Matrix& b) const {
  assert(ok_ && b.rows() == lu_.rows());
  Matrix x(b.rows(), b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    Vector col = Solve(b.Col(c));
    for (size_t r = 0; r < b.rows(); ++r) x(r, c) = col[r];
  }
  return x;
}

Matrix PartialPivLu::Inverse() const {
  assert(ok_);
  return Solve(Matrix::Identity(lu_.rows()));
}

double PartialPivLu::Determinant() const {
  if (!ok_) return 0.0;
  double det = static_cast<double>(sign_);
  for (size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

StatusOr<Vector> SolveLinear(const Matrix& a, const Vector& b) {
  if (!a.IsSquare()) return Status::InvalidArgument("matrix not square");
  if (a.rows() != b.size()) return Status::InvalidArgument("shape mismatch");
  if (a.IsSymmetric()) {
    Cholesky chol(a);
    if (chol.ok()) return chol.Solve(b);
    // Symmetric but indefinite; fall through to LU.
  }
  PartialPivLu lu(a);
  if (!lu.ok()) return Status::FailedPrecondition("matrix is singular");
  return lu.Solve(b);
}

StatusOr<Matrix> Invert(const Matrix& a) {
  if (!a.IsSquare()) return Status::InvalidArgument("matrix not square");
  if (a.IsSymmetric()) {
    Cholesky chol(a);
    if (chol.ok()) return chol.Inverse();
  }
  PartialPivLu lu(a);
  if (!lu.ok()) return Status::FailedPrecondition("matrix is singular");
  return lu.Inverse();
}

bool IsPositiveSemiDefinite(const Matrix& a, double tol, double jitter) {
  if (!a.IsSquare() || !a.IsSymmetric(tol)) return false;
  // PSD iff A + jitter*I is positive definite for a small jitter scaled to
  // the matrix magnitude.
  double scale = std::max(a.MaxAbs(), 1.0);
  Matrix shifted = a + Matrix::ScalarDiagonal(a.rows(), jitter * scale + tol);
  return Cholesky(shifted).ok();
}

}  // namespace kc
