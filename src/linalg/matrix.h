#ifndef KALMANCAST_LINALG_MATRIX_H_
#define KALMANCAST_LINALG_MATRIX_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "linalg/small_buf.h"
#include "linalg/vector.h"

namespace kc {

/// Dense row-major real matrix. Sized for Kalman filtering workloads
/// (state dimension <= 8), so operations are straightforward triple loops.
/// Storage is small-buffer optimized: up to kInlineCap entries (8x8) live
/// inline, so filter-sized matrices never touch the allocator; the hot
/// filter paths additionally route through the destination-passing kernels
/// in linalg/kernels.h (see docs/PERF.md).
class Matrix {
 public:
  /// Matrices with rows*cols up to this live in inline storage (covers the
  /// documented state_dim <= 8 envelope: 8x8 = 64).
  static constexpr size_t kInlineCap = 64;
  using Store = SmallBuf<kInlineCap>;

  /// Empty (0x0) matrix.
  Matrix() = default;

  /// Zero matrix of shape rows x cols.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Row-wise initialization:
  ///   Matrix m({{1.0, 2.0}, {3.0, 4.0}});
  /// All rows must have equal length (asserted).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Zero(size_t rows, size_t cols) { return Matrix(rows, cols); }
  static Matrix Identity(size_t n);
  /// Square matrix with `diag` on the diagonal, zero elsewhere.
  static Matrix Diagonal(const Vector& diag);
  /// n x n multiple of the identity.
  static Matrix ScalarDiagonal(size_t n, double value);
  /// Outer product a b^T (rows = a.size(), cols = b.size()).
  static Matrix Outer(const Vector& a, const Vector& b);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool IsSquare() const { return rows_ == cols_; }
  bool empty() const { return data_.empty(); }

  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const Store& data() const { return data_; }
  Store& data() { return data_; }

  /// Reshapes to rows x cols; contents are unspecified afterwards (the
  /// *Into kernels fully overwrite their destinations). Allocation-free
  /// whenever rows*cols <= kInlineCap or existing heap storage suffices.
  void ResizeUninit(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.ResizeUninit(rows * cols);
  }
  /// Sets every entry to zero.
  void SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

  // The in-place elementwise ops sit on the filter hot path (covariance
  // accumulate/correct each step), so they are defined inline over the raw
  // storage; op order matches the historical loops (bit-identical).
  Matrix& operator+=(const Matrix& other) {
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    double* p = data_.data();
    const double* q = other.data_.data();
    size_t n = data_.size();
    for (size_t i = 0; i < n; ++i) p[i] += q[i];
    return *this;
  }
  Matrix& operator-=(const Matrix& other) {
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    double* p = data_.data();
    const double* q = other.data_.data();
    size_t n = data_.size();
    for (size_t i = 0; i < n; ++i) p[i] -= q[i];
    return *this;
  }
  Matrix& operator*=(double s) {
    double* p = data_.data();
    size_t n = data_.size();
    for (size_t i = 0; i < n; ++i) p[i] *= s;
    return *this;
  }

  /// Matrix transpose.
  Matrix Transposed() const;

  /// Row r as a Vector.
  Vector Row(size_t r) const;
  /// Column c as a Vector.
  Vector Col(size_t c) const;
  /// Main diagonal (length min(rows, cols)).
  Vector Diag() const;

  /// Sum of diagonal entries; requires a square matrix.
  double Trace() const;
  /// Largest absolute entry.
  double MaxAbs() const;
  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// True if max |A - A^T| entry <= tol. Requires square.
  bool IsSymmetric(double tol = 1e-9) const;
  /// Replaces A with (A + A^T)/2 (guards covariance symmetry after
  /// repeated filter updates). Requires square. Runs once per filter step,
  /// hence inline over raw storage like the in-place operators.
  void Symmetrize() {
    assert(IsSquare());
    double* p = data_.data();
    size_t n = rows_;
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = r + 1; c < n; ++c) {
        double avg = 0.5 * (p[r * n + c] + p[c * n + r]);
        p[r * n + c] = avg;
        p[c * n + r] = avg;
      }
    }
  }

  /// "[[a, b], [c, d]]".
  std::string ToString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  Store data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix m, double s);
Matrix operator*(double s, Matrix m);
Matrix operator*(const Matrix& a, const Matrix& b);
Vector operator*(const Matrix& m, const Vector& v);
Matrix operator-(Matrix m);

bool operator==(const Matrix& a, const Matrix& b);

/// True if shapes match and all entries are within tol.
bool AlmostEqual(const Matrix& a, const Matrix& b, double tol = 1e-9);

/// x^T A x for square A (e.g. NIS computation). Dimensions asserted.
double QuadraticForm(const Matrix& a, const Vector& x);

/// A B A^T, the congruence transform used by covariance propagation.
Matrix Sandwich(const Matrix& a, const Matrix& b);

}  // namespace kc

#endif  // KALMANCAST_LINALG_MATRIX_H_
