#ifndef KALMANCAST_LINALG_DECOMP_H_
#define KALMANCAST_LINALG_DECOMP_H_

#include <cassert>
#include <cmath>

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace kc {

/// Cholesky (LL^T) factorization of a symmetric positive-definite matrix.
/// The workhorse for innovation-covariance solves in the Kalman update and
/// for PSD validation of covariance matrices.
///
/// The static FactorInto/SolveInto interface operates on a caller-owned
/// factor matrix so hot loops can reuse scratch storage and stay
/// allocation-free (see docs/PERF.md); the member interface wraps it.
class Cholesky {
 public:
  /// Factorizes `a`. Check ok() before using the results; factorization
  /// fails if `a` is not (numerically) positive definite.
  explicit Cholesky(const Matrix& a);

  bool ok() const { return ok_; }

  /// The lower-triangular factor L with A = L L^T. Valid only if ok().
  const Matrix& L() const { return l_; }

  /// Solves A x = b. Valid only if ok().
  Vector Solve(const Vector& b) const;

  /// Solves A X = B, all right-hand sides in one pass over the factor.
  /// Valid only if ok().
  Matrix Solve(const Matrix& b) const;

  /// A^{-1}. Valid only if ok().
  Matrix Inverse() const;

  /// log(det(A)) = 2 * sum(log L_ii). Valid only if ok().
  double LogDeterminant() const;

  /// Factorizes `a` into caller-owned `*l` (reshaped as needed), returning
  /// false if `a` is not square or not (numerically) positive definite; on
  /// failure *l's contents are unspecified. Allocation-free whenever *l's
  /// storage already fits (always true within the inline envelope).
  static bool FactorInto(const Matrix& a, Matrix* l);

  /// Solves (L L^T) x = b given a factor produced by FactorInto. `*x` may
  /// alias `b` (the substitution runs in place).
  static void SolveInto(const Matrix& l, const Vector& b, Vector* x);

  /// Solves (L L^T) X = B for every column of B in one pass over the
  /// factor. `*x` may alias `b`.
  static void SolveInto(const Matrix& l, const Matrix& b, Matrix* x);

  /// log(det(L L^T)) = 2 * sum(log L_ii) for a factor from FactorInto.
  static double LogDeterminantOf(const Matrix& l);

 private:
  bool ok_ = false;
  Matrix l_;
};

/// LU factorization with partial pivoting, for general square systems
/// (model calibration, tests). PA = LU packed in-place.
class PartialPivLu {
 public:
  explicit PartialPivLu(const Matrix& a);

  /// False if the matrix is (numerically) singular.
  bool ok() const { return ok_; }

  Vector Solve(const Vector& b) const;
  Matrix Solve(const Matrix& b) const;
  Matrix Inverse() const;
  double Determinant() const;

 private:
  bool ok_ = false;
  Matrix lu_;                 // Combined L (unit diag, below) and U (on/above).
  std::vector<size_t> perm_;  // Row permutation.
  int sign_ = 1;              // Permutation parity, for the determinant.
};

/// Convenience: solves A x = b via Cholesky when A is symmetric, falling
/// back to LU. Errors if A is singular or shapes mismatch.
StatusOr<Vector> SolveLinear(const Matrix& a, const Vector& b);

/// Convenience: A^{-1} via the same dispatch as SolveLinear.
StatusOr<Matrix> Invert(const Matrix& a);

/// True if `a` is symmetric (to `tol`) and positive semi-definite, checked
/// by attempting a Cholesky factorization of A + jitter*I.
bool IsPositiveSemiDefinite(const Matrix& a, double tol = 1e-9,
                            double jitter = 1e-12);

// The static factor/solve entry points run once per filter step, on
// matrices no larger than the state dimension; they are defined inline
// with hoisted raw storage pointers for the same reason as the kernels in
// linalg/kernels.h (call overhead and per-access indirection dominate at
// n <= 8). The arithmetic and its ordering are unchanged from the
// out-of-line versions, so results are bit-identical.

inline bool Cholesky::FactorInto(const Matrix& a, Matrix* l) {
  if (!a.IsSquare() || a.rows() == 0) return false;
  size_t n = a.rows();
  l->ResizeUninit(n, n);
  l->SetZero();
  const double* pa = a.data().data();
  double* pl = l->data().data();
  for (size_t j = 0; j < n; ++j) {
    const double* pl_j = pl + j * n;
    double diag = pa[j * n + j];
    for (size_t k = 0; k < j; ++k) diag -= pl_j[k] * pl_j[k];
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return false;  // Not positive definite.
    }
    double ljj = std::sqrt(diag);
    pl[j * n + j] = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double* pl_i = pl + i * n;
      double sum = pa[i * n + j];
      for (size_t k = 0; k < j; ++k) sum -= pl_i[k] * pl_j[k];
      pl_i[j] = sum / ljj;
    }
  }
  return true;
}

inline void Cholesky::SolveInto(const Matrix& l, const Vector& b, Vector* x) {
  size_t n = l.rows();
  assert(b.size() == n);
  const double* pl = l.data().data();
  if (x != &b) {
    x->ResizeUninit(n);
    const double* pb = b.data().data();
    double* px0 = x->data().data();
    for (size_t i = 0; i < n; ++i) px0[i] = pb[i];
  }
  double* px = x->data().data();
  // Forward substitution L y = b, in place: px[i] is read before it is
  // overwritten and entries above i already hold y.
  for (size_t i = 0; i < n; ++i) {
    const double* pl_i = pl + i * n;
    double sum = px[i];
    for (size_t k = 0; k < i; ++k) sum -= pl_i[k] * px[k];
    px[i] = sum / pl_i[i];
  }
  // Back substitution L^T x = y, in place: entries below ii already hold x.
  for (size_t ii = n; ii-- > 0;) {
    double sum = px[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= pl[k * n + ii] * px[k];
    px[ii] = sum / pl[ii * n + ii];
  }
}

inline void Cholesky::SolveInto(const Matrix& l, const Matrix& b, Matrix* x) {
  size_t n = l.rows();
  assert(b.rows() == n);
  const double* pl = l.data().data();
  if (x != &b) {
    x->ResizeUninit(n, b.cols());
    const double* pb = b.data().data();
    double* px0 = x->data().data();
    size_t total = n * b.cols();
    for (size_t i = 0; i < total; ++i) px0[i] = pb[i];
  }
  size_t cols = x->cols();
  double* px = x->data().data();
  // Forward then back substitution applied to every right-hand side in one
  // pass over the factor; per column the arithmetic matches the Vector
  // solve operation-for-operation, so results are bit-identical.
  for (size_t i = 0; i < n; ++i) {
    double* px_i = px + i * cols;
    for (size_t k = 0; k < i; ++k) {
      double lik = pl[i * n + k];
      const double* px_k = px + k * cols;
      for (size_t c = 0; c < cols; ++c) px_i[c] -= lik * px_k[c];
    }
    double lii = pl[i * n + i];
    for (size_t c = 0; c < cols; ++c) px_i[c] /= lii;
  }
  for (size_t ii = n; ii-- > 0;) {
    double* px_ii = px + ii * cols;
    for (size_t k = ii + 1; k < n; ++k) {
      double lki = pl[k * n + ii];
      const double* px_k = px + k * cols;
      for (size_t c = 0; c < cols; ++c) px_ii[c] -= lki * px_k[c];
    }
    double lii = pl[ii * n + ii];
    for (size_t c = 0; c < cols; ++c) px_ii[c] /= lii;
  }
}

inline double Cholesky::LogDeterminantOf(const Matrix& l) {
  double sum = 0.0;
  for (size_t i = 0; i < l.rows(); ++i) sum += std::log(l(i, i));
  return 2.0 * sum;
}

}  // namespace kc

#endif  // KALMANCAST_LINALG_DECOMP_H_
