#ifndef KALMANCAST_LINALG_DECOMP_H_
#define KALMANCAST_LINALG_DECOMP_H_

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace kc {

/// Cholesky (LL^T) factorization of a symmetric positive-definite matrix.
/// The workhorse for innovation-covariance solves in the Kalman update and
/// for PSD validation of covariance matrices.
class Cholesky {
 public:
  /// Factorizes `a`. Check ok() before using the results; factorization
  /// fails if `a` is not (numerically) positive definite.
  explicit Cholesky(const Matrix& a);

  bool ok() const { return ok_; }

  /// The lower-triangular factor L with A = L L^T. Valid only if ok().
  const Matrix& L() const { return l_; }

  /// Solves A x = b. Valid only if ok().
  Vector Solve(const Vector& b) const;

  /// Solves A X = B column-by-column. Valid only if ok().
  Matrix Solve(const Matrix& b) const;

  /// A^{-1}. Valid only if ok().
  Matrix Inverse() const;

  /// log(det(A)) = 2 * sum(log L_ii). Valid only if ok().
  double LogDeterminant() const;

 private:
  bool ok_ = false;
  Matrix l_;
};

/// LU factorization with partial pivoting, for general square systems
/// (model calibration, tests). PA = LU packed in-place.
class PartialPivLu {
 public:
  explicit PartialPivLu(const Matrix& a);

  /// False if the matrix is (numerically) singular.
  bool ok() const { return ok_; }

  Vector Solve(const Vector& b) const;
  Matrix Solve(const Matrix& b) const;
  Matrix Inverse() const;
  double Determinant() const;

 private:
  bool ok_ = false;
  Matrix lu_;                 // Combined L (unit diag, below) and U (on/above).
  std::vector<size_t> perm_;  // Row permutation.
  int sign_ = 1;              // Permutation parity, for the determinant.
};

/// Convenience: solves A x = b via Cholesky when A is symmetric, falling
/// back to LU. Errors if A is singular or shapes mismatch.
StatusOr<Vector> SolveLinear(const Matrix& a, const Vector& b);

/// Convenience: A^{-1} via the same dispatch as SolveLinear.
StatusOr<Matrix> Invert(const Matrix& a);

/// True if `a` is symmetric (to `tol`) and positive semi-definite, checked
/// by attempting a Cholesky factorization of A + jitter*I.
bool IsPositiveSemiDefinite(const Matrix& a, double tol = 1e-9,
                            double jitter = 1e-12);

}  // namespace kc

#endif  // KALMANCAST_LINALG_DECOMP_H_
