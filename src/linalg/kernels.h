#ifndef KALMANCAST_LINALG_KERNELS_H_
#define KALMANCAST_LINALG_KERNELS_H_

#include <cassert>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace kc {

/// Destination-passing fused kernels for the Kalman hot loop.
///
/// Conventions (see docs/PERF.md):
///   - Destinations are reshaped as needed via ResizeUninit and fully
///     overwritten; reuse of a caller-owned destination is allocation-free
///     once its storage has the right capacity (always true within the
///     inline envelope).
///   - Aliasing: for the multiply/transpose kernels the destination (and
///     `tmp` for SandwichInto) must not alias any input (asserted in debug
///     builds). The elementwise kernels (AddInto/SubInto/IdentityMinusInto
///     and the *InPlace accumulators) tolerate any aliasing.
///   - Bit-identity: every kernel performs the same floating-point
///     operations in the same order as the value-returning operator it
///     backs, so results are bit-for-bit identical — required by the
///     replica-lockstep suppression protocol and the sharded-fleet
///     determinism tests.
///
/// The kernels are defined inline: filter-sized matrices are tiny (n <= 8),
/// so call overhead is a measurable fraction of each operation, and the
/// inner loops index hoisted raw storage pointers for the same reason.
/// Inlining does not reorder floating-point arithmetic, so the bit-identity
/// guarantee is unaffected.

/// out = a b.
inline void MultiplyInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.rows());
  assert(out->data().data() != a.data().data() &&
         out->data().data() != b.data().data());
  size_t ar = a.rows(), ac = a.cols(), bc = b.cols();
  out->ResizeUninit(ar, bc);
  out->SetZero();
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* po = out->data().data();
  // Same loop structure (and zero-skip) as the value-returning operator*,
  // so results are bit-identical.
  for (size_t r = 0; r < ar; ++r) {
    double* po_row = po + r * bc;
    const double* pa_row = pa + r * ac;
    for (size_t k = 0; k < ac; ++k) {
      double av = pa_row[k];
      if (av == 0.0) continue;
      const double* pb_row = pb + k * bc;
      for (size_t c = 0; c < bc; ++c) po_row[c] += av * pb_row[c];
    }
  }
}

/// out = a v.
inline void MultiplyInto(const Matrix& a, const Vector& v, Vector* out) {
  assert(a.cols() == v.size());
  assert(out->data().data() != v.data().data());
  size_t ar = a.rows(), ac = a.cols();
  out->ResizeUninit(ar);
  const double* pa = a.data().data();
  const double* pv = v.data().data();
  double* po = out->data().data();
  for (size_t r = 0; r < ar; ++r) {
    const double* pa_row = pa + r * ac;
    double sum = 0.0;
    for (size_t c = 0; c < ac; ++c) sum += pa_row[c] * pv[c];
    po[r] = sum;
  }
}

/// out = a b^T (without materializing the transpose).
inline void MultiplyTransposedInto(const Matrix& a, const Matrix& b,
                                   Matrix* out) {
  assert(a.cols() == b.cols());
  assert(out->data().data() != a.data().data() &&
         out->data().data() != b.data().data());
  size_t ar = a.rows(), ac = a.cols(), br = b.rows();
  out->ResizeUninit(ar, br);
  out->SetZero();
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* po = out->data().data();
  // Mirrors a * b.Transposed() entry-for-entry: b^T(k, c) == b(c, k).
  for (size_t r = 0; r < ar; ++r) {
    double* po_row = po + r * br;
    const double* pa_row = pa + r * ac;
    for (size_t k = 0; k < ac; ++k) {
      double av = pa_row[k];
      if (av == 0.0) continue;
      for (size_t c = 0; c < br; ++c) po_row[c] += av * pb[c * ac + k];
    }
  }
}

/// out = a b a^T via tmp = a b; the congruence transform of covariance
/// propagation. `tmp` and `out` must be distinct from each other and from
/// the inputs.
inline void SandwichInto(const Matrix& a, const Matrix& b, Matrix* tmp,
                         Matrix* out) {
  assert(tmp != out);
  MultiplyInto(a, b, tmp);
  MultiplyTransposedInto(*tmp, a, out);
}

/// out = a + b (elementwise; out may alias a or b).
inline void AddInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  out->ResizeUninit(a.rows(), a.cols());
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* po = out->data().data();
  size_t n = a.data().size();
  for (size_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
}

inline void AddInto(const Vector& a, const Vector& b, Vector* out) {
  assert(a.size() == b.size());
  out->ResizeUninit(a.size());
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* po = out->data().data();
  size_t n = a.size();
  for (size_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
}

/// out = a - b (elementwise; out may alias a or b).
inline void SubInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  out->ResizeUninit(a.rows(), a.cols());
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* po = out->data().data();
  size_t n = a.data().size();
  for (size_t i = 0; i < n; ++i) po[i] = pa[i] - pb[i];
}

inline void SubInto(const Vector& a, const Vector& b, Vector* out) {
  assert(a.size() == b.size());
  out->ResizeUninit(a.size());
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* po = out->data().data();
  size_t n = a.size();
  for (size_t i = 0; i < n; ++i) po[i] = pa[i] - pb[i];
}

/// out = a^T.
inline void TransposeInto(const Matrix& a, Matrix* out) {
  assert(out->data().data() != a.data().data());
  size_t ar = a.rows(), ac = a.cols();
  out->ResizeUninit(ac, ar);
  const double* pa = a.data().data();
  double* po = out->data().data();
  for (size_t r = 0; r < ar; ++r) {
    const double* pa_row = pa + r * ac;
    for (size_t c = 0; c < ac; ++c) po[c * ar + r] = pa_row[c];
  }
}

/// out = I - a for square a (the gain complement I - K H).
inline void IdentityMinusInto(const Matrix& a, Matrix* out) {
  assert(a.IsSquare());
  size_t n = a.rows();
  out->ResizeUninit(n, n);
  const double* pa = a.data().data();
  double* po = out->data().data();
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      po[r * n + c] = (r == c ? 1.0 : 0.0) - pa[r * n + c];
    }
  }
}

/// acc += w * v.
inline void AddScaledInPlace(double w, const Vector& v, Vector* acc) {
  assert(acc->size() == v.size());
  double* pa = acc->data().data();
  const double* pv = v.data().data();
  size_t n = v.size();
  for (size_t i = 0; i < n; ++i) pa[i] += w * pv[i];
}

/// acc += w * (d d^T) — the sigma-point covariance accumulation.
inline void AddScaledOuterInPlace(double w, const Vector& d, Matrix* acc) {
  assert(acc->rows() == d.size() && acc->cols() == d.size());
  size_t n = d.size();
  const double* pd = d.data().data();
  double* pa = acc->data().data();
  for (size_t r = 0; r < n; ++r) {
    double* pa_row = pa + r * n;
    double dr = pd[r];
    for (size_t c = 0; c < n; ++c) pa_row[c] += w * (dr * pd[c]);
  }
}

/// acc += w * (a b^T) — the sigma-point cross-covariance accumulation.
inline void AddScaledOuterInPlace(double w, const Vector& a, const Vector& b,
                                  Matrix* acc) {
  assert(acc->rows() == a.size() && acc->cols() == b.size());
  size_t rows = a.size(), cols = b.size();
  const double* pav = a.data().data();
  const double* pbv = b.data().data();
  double* pm = acc->data().data();
  for (size_t r = 0; r < rows; ++r) {
    double* pm_row = pm + r * cols;
    double ar = pav[r];
    for (size_t c = 0; c < cols; ++c) pm_row[c] += w * (ar * pbv[c]);
  }
}

/// acc += w * (m + d d^T) — the IMM mixed-covariance accumulation.
inline void AddScaledPlusOuterInPlace(double w, const Matrix& m,
                                      const Vector& d, Matrix* acc) {
  assert(m.rows() == d.size() && m.cols() == d.size());
  assert(acc->rows() == d.size() && acc->cols() == d.size());
  size_t n = d.size();
  const double* pm = m.data().data();
  const double* pd = d.data().data();
  double* pa = acc->data().data();
  for (size_t r = 0; r < n; ++r) {
    const double* pm_row = pm + r * n;
    double* pa_row = pa + r * n;
    double dr = pd[r];
    for (size_t c = 0; c < n; ++c) {
      pa_row[c] += w * (pm_row[c] + dr * pd[c]);
    }
  }
}

}  // namespace kc

#endif  // KALMANCAST_LINALG_KERNELS_H_
