#include "net/channel.h"

#include <sstream>

#include "common/strings.h"
#include "obs/trace.h"

namespace kc {

void NetworkStats::Merge(const NetworkStats& other) {
  messages_sent += other.messages_sent;
  messages_delivered += other.messages_delivered;
  messages_dropped += other.messages_dropped;
  bytes_sent += other.bytes_sent;
  bytes_delivered += other.bytes_delivered;
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    by_type[i] += other.by_type[i];
    by_type_sent[i] += other.by_type_sent[i];
    by_type_dropped[i] += other.by_type_dropped[i];
  }
}

std::string NetworkStats::ToString() const {
  std::ostringstream os;
  os << "sent=" << messages_sent << " delivered=" << messages_delivered
     << " dropped=" << messages_dropped << " bytes_sent=" << bytes_sent
     << " bytes_delivered=" << bytes_delivered << " by_type=[";
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    if (i > 0) os << " ";
    // sent/delivered/dropped per kind; sent - delivered - dropped is the
    // count still in flight on a latency channel.
    os << MessageTypeName(static_cast<MessageType>(i)) << ":" << by_type[i]
       << "/" << by_type_sent[i] << "/" << by_type_dropped[i];
  }
  os << "]";
  return os.str();
}

Channel::Channel() : Channel(Config()) {}

Channel::Channel(Config config) : config_(config), rng_(config.seed) {}

void Channel::BindMetrics(obs::MetricRegistry* registry) {
  if (registry == nullptr) {
    metrics_bound_ = false;
    return;
  }
  metrics_.messages_sent = registry->GetCounter("kc.net.messages_sent");
  metrics_.messages_delivered =
      registry->GetCounter("kc.net.messages_delivered");
  metrics_.messages_dropped = registry->GetCounter("kc.net.messages_dropped");
  metrics_.bytes_sent = registry->GetCounter("kc.net.bytes_sent");
  metrics_.bytes_delivered = registry->GetCounter("kc.net.bytes_delivered");
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    const char* type = MessageTypeName(static_cast<MessageType>(i));
    metrics_.sent_by_type[i] =
        registry->GetCounter(StrFormat("kc.net.sent.%s", type));
    metrics_.delivered_by_type[i] =
        registry->GetCounter(StrFormat("kc.net.delivered.%s", type));
    metrics_.dropped_by_type[i] =
        registry->GetCounter(StrFormat("kc.net.dropped.%s", type));
  }
  metrics_bound_ = true;
}

Status Channel::Send(const Message& msg) {
  KC_TRACE_SCOPE("net.send");
  if (!receiver_) {
    return Status::FailedPrecondition("channel has no receiver");
  }
  size_t type = static_cast<size_t>(msg.type);
  int64_t bytes = static_cast<int64_t>(msg.SizeBytes());
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  ++stats_.by_type_sent[type];
  if (metrics_bound_) {
    metrics_.messages_sent->Inc();
    metrics_.bytes_sent->Inc(bytes);
    metrics_.sent_by_type[type]->Inc();
  }
  if (config_.loss_prob > 0.0 && rng_.Bernoulli(config_.loss_prob)) {
    ++stats_.messages_dropped;
    ++stats_.by_type_dropped[type];
    if (metrics_bound_) {
      metrics_.messages_dropped->Inc();
      metrics_.dropped_by_type[type]->Inc();
    }
    return Status::Ok();  // Silently lost, as on a real datagram link.
  }
  if (config_.latency_ticks > 0) {
    pending_.push_back({now_ + config_.latency_ticks, msg});
    return Status::Ok();
  }
  Deliver(msg);
  return Status::Ok();
}

void Channel::AdvanceTick() {
  ++now_;
  while (!pending_.empty() && pending_.front().due_tick <= now_) {
    Deliver(pending_.front().msg);
    pending_.pop_front();
  }
}

void Channel::Deliver(const Message& msg) {
  size_t type = static_cast<size_t>(msg.type);
  int64_t bytes = static_cast<int64_t>(msg.SizeBytes());
  ++stats_.messages_delivered;
  stats_.bytes_delivered += bytes;
  ++stats_.by_type[type];
  if (metrics_bound_) {
    metrics_.messages_delivered->Inc();
    metrics_.bytes_delivered->Inc(bytes);
    metrics_.delivered_by_type[type]->Inc();
  }
  receiver_(msg);
}

}  // namespace kc
