#include "net/channel.h"

#include <sstream>
#include <vector>

#include "common/strings.h"
#include "obs/trace.h"

namespace kc {

void NetworkStats::Merge(const NetworkStats& other) {
  messages_sent += other.messages_sent;
  messages_delivered += other.messages_delivered;
  messages_dropped += other.messages_dropped;
  bytes_sent += other.bytes_sent;
  bytes_delivered += other.bytes_delivered;
  messages_duplicated += other.messages_duplicated;
  messages_reordered += other.messages_reordered;
  burst_drops += other.burst_drops;
  partition_drops += other.partition_drops;
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    by_type[i] += other.by_type[i];
    by_type_sent[i] += other.by_type_sent[i];
    by_type_dropped[i] += other.by_type_dropped[i];
    by_type_bytes_sent[i] += other.by_type_bytes_sent[i];
    by_type_bytes_delivered[i] += other.by_type_bytes_delivered[i];
  }
}

std::string NetworkStats::ToString() const {
  std::ostringstream os;
  os << "sent=" << messages_sent << " delivered=" << messages_delivered
     << " dropped=" << messages_dropped << " bytes_sent=" << bytes_sent
     << " bytes_delivered=" << bytes_delivered << " by_type=[";
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    if (i > 0) os << " ";
    // sent/delivered/dropped per kind; sent - delivered - dropped is the
    // count still in flight on a latency channel.
    os << MessageTypeName(static_cast<MessageType>(i)) << ":"
       << by_type_sent[i] << "/" << by_type[i] << "/" << by_type_dropped[i];
  }
  os << "] bytes_by_type=[";
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    if (i > 0) os << " ";
    // sent/delivered bytes per kind, charged from the same encoded-frame
    // size model on every backend.
    os << MessageTypeName(static_cast<MessageType>(i)) << ":"
       << by_type_bytes_sent[i] << "/" << by_type_bytes_delivered[i];
  }
  os << "]";
  if (messages_duplicated > 0 || messages_reordered > 0 || burst_drops > 0 ||
      partition_drops > 0) {
    os << " faults=[dup=" << messages_duplicated
       << " reorder=" << messages_reordered << " burst_drop=" << burst_drops
       << " partition_drop=" << partition_drops << "]";
  }
  return os.str();
}

namespace {

std::string BooksLine(const char* verb, int64_t messages, int64_t bytes,
                      const int64_t counts[], const int64_t byte_counts[]) {
  std::ostringstream os;
  os << verb << "=" << messages << " bytes=" << bytes << " by_type=[";
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    if (i > 0) os << " ";
    os << MessageTypeName(static_cast<MessageType>(i)) << ":" << counts[i]
       << "/" << byte_counts[i];
  }
  os << "]";
  return os.str();
}

}  // namespace

std::string NetworkStats::SentLine() const {
  return BooksLine("sent", messages_sent, bytes_sent, by_type_sent,
                   by_type_bytes_sent);
}

std::string NetworkStats::DeliveredLine() const {
  return BooksLine("delivered", messages_delivered, bytes_delivered, by_type,
                   by_type_bytes_delivered);
}

Channel::Channel() : Channel(Config()) {}

Channel::Channel(Config config)
    : config_(config), rng_(config.seed), injector_(config.faults) {}

void Channel::BindMetrics(obs::MetricRegistry* registry) {
  if (registry == nullptr) {
    metrics_bound_ = false;
    return;
  }
  metrics_.messages_sent = registry->GetCounter("kc.net.messages_sent");
  metrics_.messages_delivered =
      registry->GetCounter("kc.net.messages_delivered");
  metrics_.messages_dropped = registry->GetCounter("kc.net.messages_dropped");
  metrics_.bytes_sent = registry->GetCounter("kc.net.bytes_sent");
  metrics_.bytes_delivered = registry->GetCounter("kc.net.bytes_delivered");
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    const char* type = MessageTypeName(static_cast<MessageType>(i));
    metrics_.sent_by_type[i] =
        registry->GetCounter(StrFormat("kc.net.sent.%s", type));
    metrics_.delivered_by_type[i] =
        registry->GetCounter(StrFormat("kc.net.delivered.%s", type));
    metrics_.dropped_by_type[i] =
        registry->GetCounter(StrFormat("kc.net.dropped.%s", type));
    metrics_.bytes_sent_by_type[i] =
        registry->GetCounter(StrFormat("kc.net.bytes_sent.%s", type));
    metrics_.bytes_delivered_by_type[i] =
        registry->GetCounter(StrFormat("kc.net.bytes_delivered.%s", type));
  }
  if (config_.faults.any_enabled()) {
    // Registered only on channels with a fault model, so fault-free
    // deployments export exactly the pre-fault metric inventory.
    metrics_.duplicates = registry->GetCounter("kc.net.faults.duplicates");
    metrics_.reorders = registry->GetCounter("kc.net.faults.reorders");
    metrics_.burst_drops = registry->GetCounter("kc.net.faults.burst_drops");
    metrics_.partition_drops =
        registry->GetCounter("kc.net.faults.partition_drops");
  }
  metrics_bound_ = true;
}

void Channel::ChargeDrop(size_t type) {
  ++stats_.messages_dropped;
  ++stats_.by_type_dropped[type];
  if (metrics_bound_) {
    metrics_.messages_dropped->Inc();
    metrics_.dropped_by_type[type]->Inc();
  }
}

void Channel::AccountSend(const Message& msg) {
  size_t type = static_cast<size_t>(msg.type);
  int64_t bytes = static_cast<int64_t>(msg.SizeBytes());
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  ++stats_.by_type_sent[type];
  stats_.by_type_bytes_sent[type] += bytes;
  if (metrics_bound_) {
    metrics_.messages_sent->Inc();
    metrics_.bytes_sent->Inc(bytes);
    metrics_.sent_by_type[type]->Inc();
    metrics_.bytes_sent_by_type[type]->Inc(bytes);
  }
}

void Channel::AccountDrop(const Message& msg) {
  ChargeDrop(static_cast<size_t>(msg.type));
}

Status Channel::Send(const Message& msg) {
  KC_TRACE_SCOPE("net.send");
  if (!receiver_) {
    return Status::FailedPrecondition("channel has no receiver");
  }
  size_t type = static_cast<size_t>(msg.type);
  AccountSend(msg);
  if (config_.faults.InPartition(now_)) {
    // The link is severed: the datagram vanishes. (In-flight messages
    // queued before the window opened are held, not dropped — see
    // AdvanceTick.) No RNG draw: partitions are schedule-driven.
    ++stats_.partition_drops;
    if (metrics_.partition_drops != nullptr) metrics_.partition_drops->Inc();
    ChargeDrop(type);
    return Status::Ok();
  }
  SendFaults faults = injector_.OnSend(rng_);
  if (faults.burst_drop) {
    ++stats_.burst_drops;
    if (metrics_.burst_drops != nullptr) metrics_.burst_drops->Inc();
    ChargeDrop(type);
    return Status::Ok();
  }
  if (config_.loss_prob > 0.0 && rng_.Bernoulli(config_.loss_prob)) {
    ChargeDrop(type);
    return Status::Ok();  // Silently lost, as on a real datagram link.
  }
  if (faults.duplicate) {
    ++stats_.messages_duplicated;
    if (metrics_.duplicates != nullptr) metrics_.duplicates->Inc();
  }
  if (faults.extra_delay > 0) {
    ++stats_.messages_reordered;
    if (metrics_.reorders != nullptr) metrics_.reorders->Inc();
  }
  int64_t delay = config_.latency_ticks + faults.extra_delay;
  int copies = faults.duplicate ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    if (delay > 0) {
      pending_.push_back({now_ + delay, msg});
    } else {
      Deliver(msg);
    }
  }
  return Status::Ok();
}

void Channel::AdvanceTick() {
  ++now_;
  // Partition window: the receiving side is unreachable, so nothing
  // delivers; due messages stay in flight and drain on the first tick
  // after the window closes.
  if (config_.faults.InPartition(now_)) return;
  DeliverDue();
}

void Channel::DeliverDue() {
  if (pending_.empty()) return;
  // With reordering, due ticks are not monotone along the queue: collect
  // every due message in send order (stable), keep the rest. Delivery
  // happens after the scan so a receiver that triggers further sends
  // never sees a half-updated queue.
  std::vector<Message> due;
  std::deque<Pending> keep;
  for (Pending& p : pending_) {
    if (p.due_tick <= now_) {
      due.push_back(std::move(p.msg));
    } else {
      keep.push_back(std::move(p));
    }
  }
  pending_ = std::move(keep);
  for (const Message& msg : due) Deliver(msg);
}

void Channel::Deliver(const Message& msg) {
  size_t type = static_cast<size_t>(msg.type);
  int64_t bytes = static_cast<int64_t>(msg.SizeBytes());
  ++stats_.messages_delivered;
  stats_.bytes_delivered += bytes;
  ++stats_.by_type[type];
  stats_.by_type_bytes_delivered[type] += bytes;
  if (metrics_bound_) {
    metrics_.messages_delivered->Inc();
    metrics_.bytes_delivered->Inc(bytes);
    metrics_.delivered_by_type[type]->Inc();
    metrics_.bytes_delivered_by_type[type]->Inc(bytes);
  }
  if (receiver_) receiver_(msg);
}

}  // namespace kc
