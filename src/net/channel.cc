#include "net/channel.h"

#include <sstream>

namespace kc {

void NetworkStats::Merge(const NetworkStats& other) {
  messages_sent += other.messages_sent;
  messages_delivered += other.messages_delivered;
  messages_dropped += other.messages_dropped;
  bytes_sent += other.bytes_sent;
  bytes_delivered += other.bytes_delivered;
  for (size_t i = 0; i < kNumMessageTypes; ++i) by_type[i] += other.by_type[i];
}

std::string NetworkStats::ToString() const {
  std::ostringstream os;
  os << "sent=" << messages_sent << " delivered=" << messages_delivered
     << " dropped=" << messages_dropped << " bytes_sent=" << bytes_sent
     << " bytes_delivered=" << bytes_delivered << " by_type=[";
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    if (i > 0) os << " ";
    os << MessageTypeName(static_cast<MessageType>(i)) << ":" << by_type[i];
  }
  os << "]";
  return os.str();
}

Channel::Channel() : Channel(Config()) {}

Channel::Channel(Config config) : config_(config), rng_(config.seed) {}

Status Channel::Send(const Message& msg) {
  if (!receiver_) {
    return Status::FailedPrecondition("channel has no receiver");
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += static_cast<int64_t>(msg.SizeBytes());
  if (config_.loss_prob > 0.0 && rng_.Bernoulli(config_.loss_prob)) {
    ++stats_.messages_dropped;
    return Status::Ok();  // Silently lost, as on a real datagram link.
  }
  if (config_.latency_ticks > 0) {
    pending_.push_back({now_ + config_.latency_ticks, msg});
    return Status::Ok();
  }
  Deliver(msg);
  return Status::Ok();
}

void Channel::AdvanceTick() {
  ++now_;
  while (!pending_.empty() && pending_.front().due_tick <= now_) {
    Deliver(pending_.front().msg);
    pending_.pop_front();
  }
}

void Channel::Deliver(const Message& msg) {
  ++stats_.messages_delivered;
  stats_.bytes_delivered += static_cast<int64_t>(msg.SizeBytes());
  ++stats_.by_type[static_cast<size_t>(msg.type)];
  receiver_(msg);
}

}  // namespace kc
