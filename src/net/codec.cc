#include "net/codec.h"

#include <cstring>

#include "common/strings.h"

namespace kc {
namespace codec {

namespace {

/// Smallest body a frame can declare: 1-byte varints for source_id, seq,
/// and wire_seq, the type byte, and the 8-byte timestamp.
constexpr size_t kMinBodyBytes = Message::kMinBodyBytes;

void AppendVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

void AppendDoubleLe(double d, std::vector<uint8_t>* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d), "IEEE-754 double expected");
  std::memcpy(&bits, &d, sizeof(bits));  // Preserves NaN payloads exactly.
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

double ReadDoubleLe(const uint8_t* p) {
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// Reads one canonical varint from data[*pos..size). kOutOfRange if the
/// buffer ends first, kInvalidArgument if it runs past 10 bytes or uses
/// more bytes than the decoded value needs (non-canonical padding).
Status ReadVarint(const uint8_t* data, size_t size, size_t* pos,
                  uint64_t* value) {
  uint64_t v = 0;
  size_t shift = 0;
  size_t start = *pos;
  while (true) {
    if (*pos >= size) {
      return Status::OutOfRange("varint truncated");
    }
    uint8_t byte = data[*pos];
    if (shift >= 63 && (byte >> (64 - shift)) != 0) {
      return Status::InvalidArgument("varint overflows 64 bits");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    ++(*pos);
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) {
      return Status::InvalidArgument("varint longer than 10 bytes");
    }
  }
  if (*pos - start != wire::VarintSize(v)) {
    // An overlong encoding (e.g. 0x80 0x00 for zero) would let a sender
    // put more bytes on the wire than SizeBytes() charges.
    return Status::InvalidArgument("non-canonical varint");
  }
  *value = v;
  return Status::Ok();
}

/// Signed-varint read bounded by the *body* of a fully received frame: a
/// varint that runs into the body's end is a malformed frame, not a
/// short buffer, so the truncation code is remapped to kInvalidArgument
/// (kOutOfRange must only ever mean "feed DecodeFrame more bytes").
Status ReadSignedVarint(const uint8_t* data, size_t body_end, size_t* pos,
                        int64_t* value) {
  uint64_t raw = 0;
  Status s = ReadVarint(data, body_end, pos, &raw);
  if (s.code() == StatusCode::kOutOfRange) {
    return Status::InvalidArgument("header varint overruns frame body");
  }
  KC_RETURN_IF_ERROR(s);
  *value = wire::UnZigZag(raw);
  return Status::Ok();
}

}  // namespace

size_t EncodedSize(const Message& msg) { return msg.SizeBytes(); }

void EncodeFrame(const Message& msg, std::vector<uint8_t>* out) {
  size_t body = wire::SignedVarintSize(msg.source_id) + 1 +
                wire::SignedVarintSize(msg.seq) +
                wire::SignedVarintSize(msg.wire_seq) + 8 +
                8 * msg.payload.size();
  out->reserve(out->size() + wire::VarintSize(body) + body);
  AppendVarint(body, out);
  AppendVarint(wire::ZigZag(msg.source_id), out);
  out->push_back(static_cast<uint8_t>(msg.type));
  AppendVarint(wire::ZigZag(msg.seq), out);
  AppendVarint(wire::ZigZag(msg.wire_seq), out);
  AppendDoubleLe(msg.time, out);
  for (double d : msg.payload) AppendDoubleLe(d, out);
}

std::vector<uint8_t> Encode(const Message& msg) {
  std::vector<uint8_t> out;
  EncodeFrame(msg, &out);
  return out;
}

Status FrameExtent(const uint8_t* data, size_t size, size_t* frame_size) {
  size_t pos = 0;
  uint64_t body = 0;
  Status s = ReadVarint(data, size, &pos, &body);
  if (!s.ok()) return s;
  if (body > kMaxBodyBytes) {
    return Status::InvalidArgument(
        StrFormat("frame body of %llu bytes exceeds the %llu-byte limit",
                  static_cast<unsigned long long>(body),
                  static_cast<unsigned long long>(kMaxBodyBytes)));
  }
  if (body < kMinBodyBytes) {
    return Status::InvalidArgument("frame body shorter than minimal header");
  }
  *frame_size = pos + static_cast<size_t>(body);
  return Status::Ok();
}

Status DecodeFrame(const uint8_t* data, size_t size, Message* out,
                   size_t* consumed) {
  size_t total = 0;
  KC_RETURN_IF_ERROR(FrameExtent(data, size, &total));
  if (size < total) {
    return Status::OutOfRange("frame truncated");
  }
  // Re-read the (already validated) length prefix to find the body start.
  size_t pos = 0;
  uint64_t body_len = 0;
  KC_RETURN_IF_ERROR(ReadVarint(data, size, &pos, &body_len));
  const size_t body_end = pos + static_cast<size_t>(body_len);

  Message msg;
  int64_t source_id = 0;
  KC_RETURN_IF_ERROR(ReadSignedVarint(data, body_end, &pos, &source_id));
  if (source_id < INT32_MIN || source_id > INT32_MAX) {
    return Status::InvalidArgument("source_id outside int32 range");
  }
  msg.source_id = static_cast<int32_t>(source_id);

  if (pos >= body_end) return Status::InvalidArgument("frame body too short");
  uint8_t raw_type = data[pos++];
  if (!IsValidMessageTypeByte(raw_type)) {
    return Status::InvalidArgument(
        StrFormat("unknown message type byte %d", raw_type));
  }
  msg.type = static_cast<MessageType>(raw_type);

  KC_RETURN_IF_ERROR(ReadSignedVarint(data, body_end, &pos, &msg.seq));
  KC_RETURN_IF_ERROR(ReadSignedVarint(data, body_end, &pos, &msg.wire_seq));

  if (body_end - pos < 8) {
    return Status::InvalidArgument("frame body ends inside timestamp");
  }
  msg.time = ReadDoubleLe(data + pos);
  pos += 8;

  size_t payload_bytes = body_end - pos;
  if (payload_bytes % 8 != 0) {
    return Status::InvalidArgument("payload is not a whole number of doubles");
  }
  size_t doubles = payload_bytes / 8;
  if (doubles > kMaxPayloadDoubles) {
    return Status::InvalidArgument("payload exceeds the per-frame limit");
  }
  msg.payload.resize(doubles);
  for (size_t i = 0; i < doubles; ++i) {
    msg.payload[i] = ReadDoubleLe(data + pos + 8 * i);
  }

  // flow_id never crosses the wire: reconstruct it exactly as the sender
  // stamped it — CausalFlowId on the four uplink kinds, unset on downlink
  // control (net/message.h).
  msg.flow_id =
      IsUplinkType(msg.type) ? CausalFlowId(msg.source_id, msg.wire_seq) : 0;

  *out = std::move(msg);
  *consumed = total;
  return Status::Ok();
}

}  // namespace codec
}  // namespace kc
