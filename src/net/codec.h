#ifndef KALMANCAST_NET_CODEC_H_
#define KALMANCAST_NET_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "net/message.h"

namespace kc {
namespace codec {

/// The framed binary wire encoding of a Message (docs/PROTOCOL.md, "Wire
/// format"). One frame, all little-endian:
///
///   frame     := body_len:varint body
///   body      := source_id:zigzag-varint
///                type:u8                     (0..5; anything else rejected)
///                seq:zigzag-varint
///                wire_seq:zigzag-varint
///                time:f64le                  (raw IEEE-754 bit pattern)
///                payload:f64le*              (count implied by body_len)
///
/// Invariants the codec guarantees and tests pin:
///  - EncodedSize(m) == m.SizeBytes() for EVERY message, so the paper's
///    messages/bytes metric is identical on simulated and real
///    transports.
///  - Decode(Encode(m)) == m, with flow_id reconstructed at the receiver
///    (CausalFlowId for uplink types, 0 for downlink control) exactly as
///    net/message.h promises — flow_id never crosses the wire.
///  - Varints must be canonical (minimal length): Encode(Decode(bytes))
///    == bytes for every accepted frame, so a peer cannot pad its frames
///    and skew the byte accounting.
///  - Decode never crashes on arbitrary bytes: truncation is reported as
///    kOutOfRange ("feed me more bytes" — the TCP reassembly signal),
///    every structural violation as kInvalidArgument. No input casts an
///    unvalidated byte to MessageType.

/// Hard ceiling on payload doubles per frame (IMM full syncs are a few
/// hundred; this is headroom, not a target). Oversized length prefixes
/// are rejected before any allocation, so a corrupt TCP byte cannot make
/// the receiver buffer gigabytes waiting for a frame that never ends.
inline constexpr size_t kMaxPayloadDoubles = 1 << 16;

/// Largest body a conforming frame can declare: maximal header (5-byte
/// source_id, type, 10-byte seq and wire_seq, 8-byte time) + max payload.
inline constexpr size_t kMaxBodyBytes = 5 + 1 + 10 + 10 + 8 + 8 * kMaxPayloadDoubles;

/// Exact frame size Encode will produce. Identical to msg.SizeBytes() —
/// the cost model and the codec are one function, pinned by test.
size_t EncodedSize(const Message& msg);

/// Appends one frame to `out`.
void EncodeFrame(const Message& msg, std::vector<uint8_t>* out);

/// One frame as a fresh buffer.
std::vector<uint8_t> Encode(const Message& msg);

/// Decodes exactly one frame from data[0..size). On success fills `out`,
/// sets `*consumed` to the frame's length, and reconstructs out->flow_id
/// (never transmitted). Errors:
///  - kOutOfRange: the buffer ends mid-frame; nothing consumed. A stream
///    caller should read more bytes and retry; a datagram caller should
///    treat it as corruption.
///  - kInvalidArgument: structurally malformed (oversized or undersized
///    body length, unknown type byte, non-canonical or overlong varint,
///    payload not a multiple of 8 bytes). The frame is unusable and a
///    stream carrying it has lost sync.
Status DecodeFrame(const uint8_t* data, size_t size, Message* out,
                   size_t* consumed);

/// Peeks the total size of the frame starting at data[0] without decoding
/// its body: sets `*frame_size` and returns OK when the length prefix is
/// readable and sane, kOutOfRange when more bytes are needed to know, and
/// kInvalidArgument on an oversized/overlong declaration. Lets a stream
/// transport reassemble exact frames before handing them to DecodeFrame.
Status FrameExtent(const uint8_t* data, size_t size, size_t* frame_size);

}  // namespace codec
}  // namespace kc

#endif  // KALMANCAST_NET_CODEC_H_
