#ifndef KALMANCAST_NET_CHANNEL_H_
#define KALMANCAST_NET_CHANNEL_H_

#include <deque>
#include <functional>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "net/message.h"
#include "obs/metrics.h"

namespace kc {

/// Aggregate transfer accounting for one channel.
///
/// This struct is the *per-channel* view; when a channel is bound to a
/// metric arena (Channel::BindMetrics) every event is mirrored onto the
/// arena's shared `kc.net.*` counters, which aggregate across all
/// channels bound to it. ToString/Merge stay the thin per-channel/merged
/// read surface the experiments report.
struct NetworkStats {
  int64_t messages_sent = 0;
  int64_t messages_delivered = 0;
  int64_t messages_dropped = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_delivered = 0;
  /// Per-type delivered counts, indexed by MessageType.
  int64_t by_type[kNumMessageTypes] = {0, 0, 0, 0, 0};
  /// Per-type sent and dropped counts, indexed by MessageType. Together
  /// with `by_type` (delivered) they make loss visible per message kind.
  int64_t by_type_sent[kNumMessageTypes] = {0, 0, 0, 0, 0};
  int64_t by_type_dropped[kNumMessageTypes] = {0, 0, 0, 0, 0};

  void Reset() { *this = NetworkStats(); }

  /// Accumulates another channel's counters into this one — how a sharded
  /// deployment merges shard-local stats into the fleet-wide view on read.
  void Merge(const NetworkStats& other);

  /// "sent=... delivered=... dropped=... bytes_sent=... bytes_delivered=...
  ///  by_type=[TYPE:sent/delivered/dropped ...]".
  std::string ToString() const;
};

/// Simulated source-to-server link with exact message/byte accounting —
/// the measurement instrument for every communication-overhead experiment.
///
/// Delivery is synchronous (the receiver callback runs inside Send), which
/// keeps the source and server replicas in lockstep exactly as the paper's
/// protocol requires. An optional loss probability exists to stress
/// recovery logic; the precision contract is only guaranteed on a lossless
/// channel (the paper assumes reliable delivery).
class Channel {
 public:
  using Receiver = std::function<void(const Message&)>;

  struct Config {
    double loss_prob = 0.0;
    /// Fixed delivery delay in stream ticks. 0 = synchronous delivery
    /// inside Send() (the protocol's lockstep assumption); > 0 requires
    /// the driver to call AdvanceTick() once per stream tick, and exposes
    /// the transit window during which the server's view lags the source.
    int64_t latency_ticks = 0;
    uint64_t seed = 42;
  };

  Channel();
  explicit Channel(Config config);

  /// Installs the delivery callback (the server side).
  void SetReceiver(Receiver receiver) { receiver_ = std::move(receiver); }

  /// Mirrors this channel's accounting onto `registry`'s `kc.net.*`
  /// counters (shared with every other channel bound to the same arena).
  /// Call before traffic flows; the mirror starts at the current event.
  /// In a sharded fleet, each channel binds to its owning shard's arena
  /// so hot-path recording never crosses shard boundaries.
  void BindMetrics(obs::MetricRegistry* registry);

  /// Transfers one message: charges it to the stats, applies loss, then
  /// either invokes the receiver (zero latency) or queues it for delivery
  /// `latency_ticks` AdvanceTick() calls later. Fails if no receiver is
  /// installed.
  Status Send(const Message& msg);

  /// Advances simulated time one tick and delivers every due in-flight
  /// message (in send order). No-op on zero-latency channels.
  void AdvanceTick();

  /// Messages currently in flight (latency mode only).
  size_t in_flight() const { return pending_.size(); }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  struct Pending {
    int64_t due_tick;
    Message msg;
  };

  /// Arena counter handles, cached at bind time so the hot path performs
  /// no registry lookups.
  struct Metrics {
    obs::Counter* messages_sent = nullptr;
    obs::Counter* messages_delivered = nullptr;
    obs::Counter* messages_dropped = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* bytes_delivered = nullptr;
    obs::Counter* sent_by_type[kNumMessageTypes] = {};
    obs::Counter* delivered_by_type[kNumMessageTypes] = {};
    obs::Counter* dropped_by_type[kNumMessageTypes] = {};
  };

  void Deliver(const Message& msg);

  Config config_;
  Rng rng_;
  Receiver receiver_;
  NetworkStats stats_;
  Metrics metrics_;
  bool metrics_bound_ = false;
  int64_t now_ = 0;
  std::deque<Pending> pending_;
};

}  // namespace kc

#endif  // KALMANCAST_NET_CHANNEL_H_
