#ifndef KALMANCAST_NET_CHANNEL_H_
#define KALMANCAST_NET_CHANNEL_H_

#include <deque>
#include <functional>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "net/fault.h"
#include "net/message.h"
#include "obs/metrics.h"

namespace kc {

/// Aggregate transfer accounting for one channel.
///
/// This struct is the *per-channel* view; when a channel is bound to a
/// metric arena (Channel::BindMetrics) every event is mirrored onto the
/// arena's shared `kc.net.*` counters, which aggregate across all
/// channels bound to it. ToString/Merge stay the thin per-channel/merged
/// read surface the experiments report.
///
/// Accounting invariant: once the link is drained,
///   delivered = sent - dropped + duplicated
/// (without duplication faults this is the familiar sent = delivered +
/// dropped). burst_drops and partition_drops are subsets of
/// messages_dropped attributing the cause.
struct NetworkStats {
  int64_t messages_sent = 0;
  int64_t messages_delivered = 0;
  int64_t messages_dropped = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_delivered = 0;
  /// Fault-injection events (see net/fault.h).
  int64_t messages_duplicated = 0;
  int64_t messages_reordered = 0;
  int64_t burst_drops = 0;
  int64_t partition_drops = 0;
  /// Per-type delivered counts, indexed by MessageType.
  int64_t by_type[kNumMessageTypes] = {};
  /// Per-type sent and dropped counts, indexed by MessageType. Together
  /// with `by_type` (delivered) they make loss visible per message kind.
  int64_t by_type_sent[kNumMessageTypes] = {};
  int64_t by_type_dropped[kNumMessageTypes] = {};
  /// Per-type byte totals, indexed by MessageType. Charged from the same
  /// SizeBytes() == encoded-frame-size model as the aggregate byte
  /// counters, so a simulated Channel and a SocketChannel running the
  /// same workload report identical breakdowns (the byte-parity contract
  /// in docs/PROTOCOL.md).
  int64_t by_type_bytes_sent[kNumMessageTypes] = {};
  int64_t by_type_bytes_delivered[kNumMessageTypes] = {};

  void Reset() { *this = NetworkStats(); }

  /// Accumulates another channel's counters into this one — how a sharded
  /// deployment merges shard-local stats into the fleet-wide view on read.
  void Merge(const NetworkStats& other);

  /// "sent=... delivered=... dropped=... bytes_sent=... bytes_delivered=...
  ///  by_type=[TYPE:sent/delivered/dropped ...]
  ///  bytes_by_type=[TYPE:sent/delivered ...]", followed by a
  /// " faults=[...]" section only when fault events occurred.
  std::string ToString() const;

  /// Normalized one-line send-side books:
  ///   "sent=N bytes=B by_type=[TYPE:count/bytes ...]"
  /// Identical strings from a simulated run's merged stats and a socket
  /// sender's stats mean identical books — the diffable surface the
  /// split-process CI smoke compares (scripts/ci_asan.sh).
  std::string SentLine() const;
  /// Normalized one-line delivery-side books, same shape as SentLine.
  std::string DeliveredLine() const;
};

/// Simulated source-to-server link with exact message/byte accounting —
/// the measurement instrument for every communication-overhead experiment.
///
/// Delivery is synchronous (the receiver callback runs inside Send), which
/// keeps the source and server replicas in lockstep exactly as the paper's
/// protocol requires. Loss, latency, and the FaultConfig fault model
/// (burst loss, duplication, bounded reordering, partitions) stress the
/// recovery protocol; the paper's exact precision contract holds on a
/// lossless channel, and recovery (docs/PROTOCOL.md, "Recovery & fault
/// model") restores it within a bounded window after faults.
///
/// Channel is also the transport seam: Send() and AdvanceTick() are
/// virtual, and net/transport.h's SocketChannel reimplements them over
/// real UDP/TCP sockets while reusing this class's accounting (the
/// protected Account* helpers), so NetworkStats and the mirrored kc.net.*
/// metrics mean the same thing on every backend. This simulated
/// implementation stays the deterministic test backend.
class Channel {
 public:
  using Receiver = std::function<void(const Message&)>;

  struct Config {
    double loss_prob = 0.0;
    /// Fixed delivery delay in stream ticks. 0 = synchronous delivery
    /// inside Send() (the protocol's lockstep assumption); > 0 requires
    /// the driver to call AdvanceTick() once per stream tick, and exposes
    /// the transit window during which the server's view lags the source.
    int64_t latency_ticks = 0;
    uint64_t seed = 42;
    /// Injected faults beyond i.i.d. loss (net/fault.h). Reordering and
    /// partitions queue messages, so they require the driver to call
    /// AdvanceTick() once per stream tick, like latency.
    FaultConfig faults;
  };

  Channel();
  explicit Channel(Config config);
  virtual ~Channel() = default;

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Installs the delivery callback (the server side).
  void SetReceiver(Receiver receiver) { receiver_ = std::move(receiver); }

  /// Mirrors this channel's accounting onto `registry`'s `kc.net.*`
  /// counters (shared with every other channel bound to the same arena).
  /// Call before traffic flows; the mirror starts at the current event.
  /// In a sharded fleet, each channel binds to its owning shard's arena
  /// so hot-path recording never crosses shard boundaries. Channels with
  /// faults configured additionally register `kc.net.faults.*`.
  void BindMetrics(obs::MetricRegistry* registry);

  /// Transfers one message: charges it to the stats, applies the fault
  /// model and loss, then either invokes the receiver (zero delay) or
  /// queues it for delivery `latency_ticks` (+ any reordering delay)
  /// AdvanceTick() calls later. During a partition window the message is
  /// dropped. Fails if no receiver is installed.
  virtual Status Send(const Message& msg);

  /// Advances simulated time one tick and delivers every due in-flight
  /// message (in send order; reordered messages wait for their extra
  /// delay). During a partition window nothing is delivered — held
  /// messages drain on the first tick after the window closes. No-op on
  /// zero-latency fault-free channels. Socket backends use this same
  /// call to drain their receive path, so drivers advance every Channel
  /// identically regardless of backend.
  virtual void AdvanceTick();

  /// Messages currently in flight (latency/reorder/partition-hold).
  size_t in_flight() const { return pending_.size(); }

  /// True if the link is currently inside a scheduled partition window.
  bool InPartitionNow() const { return config_.faults.InPartition(now_); }
  /// True if the Gilbert–Elliott chain is in its bursty (bad) state.
  bool in_burst() const { return injector_.in_burst(); }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 protected:
  /// Accounting seam shared with transport backends (net/transport.h):
  /// every helper charges the per-channel NetworkStats and, once
  /// BindMetrics has run, the mirrored kc.net.* arena counters — so a
  /// socket channel's books are kept by exactly the code the simulated
  /// channel uses.
  void AccountSend(const Message& msg);
  /// Charges one delivery and hands `msg` to the receiver. A backend
  /// must only call this for messages that actually arrived.
  void Deliver(const Message& msg);
  /// Charges one dropped message of `msg`'s type (e.g. a failed sendto).
  void AccountDrop(const Message& msg);
  bool has_receiver() const { return static_cast<bool>(receiver_); }

 private:
  struct Pending {
    int64_t due_tick;
    Message msg;
  };

  /// Arena counter handles, cached at bind time so the hot path performs
  /// no registry lookups.
  struct Metrics {
    obs::Counter* messages_sent = nullptr;
    obs::Counter* messages_delivered = nullptr;
    obs::Counter* messages_dropped = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* bytes_delivered = nullptr;
    obs::Counter* sent_by_type[kNumMessageTypes] = {};
    obs::Counter* delivered_by_type[kNumMessageTypes] = {};
    obs::Counter* dropped_by_type[kNumMessageTypes] = {};
    obs::Counter* bytes_sent_by_type[kNumMessageTypes] = {};
    obs::Counter* bytes_delivered_by_type[kNumMessageTypes] = {};
    /// kc.net.faults.* — registered only when faults are configured.
    obs::Counter* duplicates = nullptr;
    obs::Counter* reorders = nullptr;
    obs::Counter* burst_drops = nullptr;
    obs::Counter* partition_drops = nullptr;
  };

  void DeliverDue();
  void ChargeDrop(size_t type);

  Config config_;
  Rng rng_;
  FaultInjector injector_;
  Receiver receiver_;
  NetworkStats stats_;
  Metrics metrics_;
  bool metrics_bound_ = false;
  int64_t now_ = 0;
  std::deque<Pending> pending_;
};

}  // namespace kc

#endif  // KALMANCAST_NET_CHANNEL_H_
