#ifndef KALMANCAST_NET_FAULT_H_
#define KALMANCAST_NET_FAULT_H_

#include <cstdint>
#include <string>

#include "common/rng.h"

namespace kc {

/// Fault model for a simulated link: Gilbert–Elliott burst loss,
/// duplication, bounded reordering, and scheduled partition windows.
///
/// All randomness is drawn from the owning Channel's RNG (seeded through
/// the `(seed, id)` scheme in server/simulation.h), and a feature draws
/// only when it is enabled, so (a) sharded runs remain bit-identical for
/// any thread count and (b) a config with every fault off reproduces the
/// exact pre-fault draw sequence. Partition windows are a pure function
/// of (config, tick) and consume no randomness at all.
struct FaultConfig {
  /// Gilbert–Elliott two-state burst loss. Each Send first evolves the
  /// chain (good --enter--> bad, bad --exit--> good), then, in the bad
  /// state, drops with `burst_loss_prob`. The channel's independent
  /// `loss_prob` still applies in both states, so the classic GE
  /// good-state residual loss is `Channel::Config::loss_prob`.
  double burst_enter_prob = 0.0;
  double burst_exit_prob = 0.0;
  double burst_loss_prob = 0.0;

  /// Probability a delivered message is duplicated: the copy is enqueued
  /// immediately behind the original with the same due tick, so the
  /// receiver sees an exact back-to-back duplicate.
  double duplicate_prob = 0.0;

  /// Probability a delivered message is delayed by an extra
  /// Uniform{1..reorder_max_ticks} ticks, letting later sends overtake it
  /// (bounded reordering). Requires the driver to call AdvanceTick().
  double reorder_prob = 0.0;
  int64_t reorder_max_ticks = 0;

  /// Scheduled partition windows: while the link is partitioned, new
  /// sends vanish (counted as partition drops) and in-flight messages are
  /// held, draining on the first tick after the window closes. A window
  /// covers ticks [partition_start, partition_start + partition_length);
  /// with partition_every > 0 it repeats with that period. partition_start
  /// < 0 disables partitions.
  int64_t partition_start = -1;
  int64_t partition_length = 0;
  int64_t partition_every = 0;

  bool burst_enabled() const {
    return burst_enter_prob > 0.0 && burst_loss_prob > 0.0;
  }
  bool reorder_enabled() const {
    return reorder_prob > 0.0 && reorder_max_ticks > 0;
  }
  bool partitions_enabled() const {
    return partition_start >= 0 && partition_length > 0;
  }
  /// True if any fault dimension is configured on.
  bool any_enabled() const {
    return burst_enabled() || duplicate_prob > 0.0 || reorder_enabled() ||
           partitions_enabled();
  }

  /// True if `tick` falls inside a partition window.
  bool InPartition(int64_t tick) const;
};

/// Per-message fault decisions for one Channel::Send.
struct SendFaults {
  bool burst_drop = false;     ///< Dropped by the GE bad state.
  bool duplicate = false;      ///< Deliver a second copy.
  int64_t extra_delay = 0;     ///< Reordering delay in ticks (0 = none).
};

/// The stateful half of the fault model: owns the Gilbert–Elliott chain
/// and rolls the per-message dice. One injector per Channel.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultConfig& config) : config_(config) {}

  /// Rolls this message's faults, evolving the burst chain. Draws from
  /// `rng` only for features the config enables, in a fixed order
  /// (burst transition, burst loss, duplication, reordering).
  SendFaults OnSend(Rng& rng);

  bool in_burst() const { return in_burst_; }
  const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
  bool in_burst_ = false;
};

}  // namespace kc

#endif  // KALMANCAST_NET_FAULT_H_
