#ifndef KALMANCAST_NET_TRANSPORT_H_
#define KALMANCAST_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/channel.h"
#include "net/codec.h"
#include "obs/snapshot.h"

namespace kc {

/// A Channel whose messages cross a real socket as net/codec.h frames —
/// the deployment backend behind the same Send()/AdvanceTick() contract
/// the simulated Channel defines, so agents, replicas, and servers are
/// byte-for-byte oblivious to which one they run on.
///
/// Roles (one object is one endpoint of one directed link):
///  - UdpConnect(host, port): uplink sender. Send() encodes one frame
///    per datagram; delivery is fire-and-forget exactly like the paper's
///    source->server data plane.
///  - UdpBind(host, port): uplink receiver. AdvanceTick()/Poll() drain
///    the socket, decode, and Deliver() into the installed receiver.
///  - TcpConnect(host, port) / TcpListener::Accept(): one end of the
///    reliable control plane (SET_BOUND, RESYNC_REQUEST), full duplex —
///    Send() writes frames downstream, AdvanceTick()/Poll() drain and
///    dispatch whatever the peer wrote.
///
/// Byte accounting: Send() charges AccountSend (== Message::SizeBytes()
/// == the frame's true size on the wire) before the syscall; a failed
/// datagram send is charged as a drop, exactly like simulated loss. The
/// receive path charges Deliver() per decoded frame. A sender's
/// NetworkStats therefore matches the simulated channel's sent-side books
/// for the same workload, and the receiver's matches the delivered side —
/// the parity contract tests/transport_test.cc pins.
///
/// Malformed input never crashes: every frame passes the hardened
/// codec::DecodeFrame. A bad datagram is counted (frames_rejected) and
/// discarded; a bad byte on a TCP stream poisons the connection (framing
/// is unrecoverable) — last_error() reports it and the fd is closed.
///
/// Threading: one SocketChannel belongs to one driver thread, like every
/// other Channel.
class SocketChannel final : public Channel {
 public:
  ~SocketChannel() override;

  /// UDP sender connected to host:port. Send()-only; AdvanceTick is a
  /// no-op drain of stray datagrams.
  static StatusOr<std::unique_ptr<SocketChannel>> UdpConnect(
      const std::string& host, int port);

  /// UDP receiver bound to host:port (port 0 = ephemeral; see port()).
  static StatusOr<std::unique_ptr<SocketChannel>> UdpBind(
      const std::string& host, int port);

  /// TCP client endpoint connected to host:port (full duplex).
  static StatusOr<std::unique_ptr<SocketChannel>> TcpConnect(
      const std::string& host, int port);

  /// Encodes `msg` as one frame and writes it to the socket. UDP send
  /// failures are charged as drops and return OK (datagram semantics —
  /// the wire eats it silently); TCP failures poison the channel and
  /// return the error. Sending on a receive-only (bound UDP) channel is
  /// a FailedPrecondition and charges nothing.
  Status Send(const Message& msg) override;

  /// Non-blocking drain: reads every frame currently available, decodes,
  /// and Deliver()s into the receiver. Safe to call every tick.
  void AdvanceTick() override;

  /// Drains like AdvanceTick but first waits up to `timeout_ms` for the
  /// socket to become readable (0 = don't wait, <0 = wait indefinitely).
  /// Returns the number of protocol messages delivered.
  int Poll(int timeout_ms);

  /// Transport-internal tick barrier (TCP only): tells the peer the
  /// sender's discrete clock advanced to `tick`, so a split-process
  /// deployment can keep replica Tick()s lockstep with the source
  /// process. Rides the stream as an escape frame the codec never sees
  /// and the byte accounting never charges — it is an artifact of
  /// distributing the simulation clock, not protocol traffic
  /// (docs/PROTOCOL.md, "Split-process deployments").
  Status SendTickBarrier(int64_t tick);

  /// Installs the handler AdvanceTick()/Poll() invoke per received tick
  /// barrier.
  void SetTickSink(std::function<void(int64_t)> sink) {
    tick_sink_ = std::move(sink);
  }

  // --- Telemetry control plane (TCP escape frames, uncharged) ---------
  //
  // Everything below rides the same 0x00 escape scheme as the tick
  // barrier: invisible to the codec, never charged to NetworkStats, so
  // enabling telemetry cannot perturb the byte-accounting parity the
  // transport tests pin (docs/PROTOCOL.md, "Telemetry control plane").

  /// Clock probe: carries the sender's monotonic clock reading `t0_ns`.
  /// The receiving transport answers automatically with a clock pong
  /// echoing t0 plus its own clock — no sink required on the far side.
  Status SendClockPing(int64_t t0_ns);

  /// Explicit pong (the auto-answer uses this; exposed for tests).
  Status SendClockPong(int64_t echoed_t0_ns, int64_t now_ns);

  /// Ships one encoded telemetry snapshot (obs/snapshot.h bytes) to the
  /// peer's snapshot sink.
  Status SendTelemetrySnapshot(const uint8_t* data, size_t size);

  /// Asks the peer to dump its flight recorder for `source_id` (the
  /// remote black-box pull; the peer answers with SendBlackboxDump).
  Status SendBlackboxRequest(int64_t source_id);

  /// Ships a flight-recorder dump for `source_id` to the peer's dump
  /// sink.
  Status SendBlackboxDump(int64_t source_id, const std::string& dump);

  /// Handler for clock pongs: (echoed_t0_ns, peer_clock_ns). The caller
  /// pairs it with its own clock read to form an NTP-style sample
  /// (obs::ClockOffsetEstimator::AddSample).
  void SetClockPongSink(std::function<void(int64_t, int64_t)> sink) {
    clock_pong_sink_ = std::move(sink);
  }

  /// Handler for received telemetry snapshots (raw codec bytes; decode
  /// with obs::DecodeSnapshot).
  void SetSnapshotSink(std::function<void(const uint8_t*, size_t)> sink) {
    snapshot_sink_ = std::move(sink);
  }

  /// Handler for black-box dump requests (source id).
  void SetBlackboxRequestSink(std::function<void(int64_t)> sink) {
    blackbox_request_sink_ = std::move(sink);
  }

  /// Handler for black-box dumps: (source_id, dump text).
  void SetBlackboxDumpSink(std::function<void(int64_t, std::string)> sink) {
    blackbox_dump_sink_ = std::move(sink);
  }

  /// Starts recording {flow_id, type, send wall-clock ns} per Send() of
  /// a flow-stamped message, bounded to `capacity` records (oldest
  /// dropped). The drained log rides telemetry snapshots so the peer can
  /// join sends against its own arrival times into true one-way wire
  /// latencies (obs::RemoteTelemetryMerger).
  void EnableSendTimestampLog(size_t capacity = 8192);

  /// Moves every logged send record into `out` (appends) and clears the
  /// log — each record is drained exactly once, a natural per-snapshot
  /// delta.
  void DrainSendTimestamps(std::vector<obs::WireSendRecord>* out);

  /// Records dropped because the send log hit capacity undrained.
  int64_t send_log_dropped() const { return send_log_dropped_; }

  /// Local bound port (meaningful for UdpBind and accepted TCP ends).
  int port() const { return port_; }
  int fd() const { return fd_; }

  /// Frames discarded by the decode hardening (malformed datagrams /
  /// stream bytes). Never fatal on UDP.
  int64_t frames_rejected() const { return frames_rejected_; }

  /// OK until a TCP framing error / fatal socket error poisoned the
  /// channel.
  const Status& last_error() const { return last_error_; }

  /// True once a TCP peer has closed its end (or the channel poisoned).
  bool peer_closed() const { return peer_closed_; }

  /// Shrinks the kernel receive buffer (SO_RCVBUF) — the fault-injection
  /// hook for loopback tests: burst enough datagrams without draining
  /// and the kernel genuinely drops the overflow, which is exactly the
  /// loss the PR 4 recovery protocol exists for.
  Status SetRecvBufferBytes(int bytes);

 private:
  friend class TcpListener;

  enum class Kind { kUdpSender, kUdpReceiver, kTcp };

  SocketChannel(Kind kind, int fd, int port);

  Status WriteAll(const uint8_t* data, size_t size);
  void DrainUdp();
  void DrainTcp();
  /// Parses every complete frame in rx_buf_; returns false when the
  /// stream is poisoned.
  bool ParseTcpBuffer();
  /// Handles one complete escape frame (header + any payload); false =
  /// malformed.
  bool HandleEscapeFrame(const uint8_t* data, size_t size);
  /// Writes a 10-byte escape header (+ optional payload) to the stream.
  Status SendEscape(uint8_t opcode, uint64_t arg, const uint8_t* payload,
                    size_t payload_size);
  void LogSendTimestamp(const Message& msg);
  void Poison(Status error);

  Kind kind_;
  int fd_ = -1;
  int port_ = 0;
  bool peer_closed_ = false;
  int64_t frames_rejected_ = 0;
  Status last_error_;
  std::vector<uint8_t> rx_buf_;   ///< TCP reassembly buffer.
  std::vector<uint8_t> tx_buf_;   ///< Per-send encode scratch.
  std::function<void(int64_t)> tick_sink_;
  std::function<void(int64_t, int64_t)> clock_pong_sink_;
  std::function<void(const uint8_t*, size_t)> snapshot_sink_;
  std::function<void(int64_t)> blackbox_request_sink_;
  std::function<void(int64_t, std::string)> blackbox_dump_sink_;
  bool send_log_enabled_ = false;
  size_t send_log_capacity_ = 0;
  int64_t send_log_dropped_ = 0;
  std::vector<obs::WireSendRecord> send_log_;
};

/// Accepts the control-plane TCP connection of a split-process
/// deployment (port 0 = ephemeral; see port()).
class TcpListener {
 public:
  static StatusOr<std::unique_ptr<TcpListener>> Listen(
      const std::string& host, int port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Waits up to `timeout_ms` (<0 = indefinitely) for one peer and
  /// returns its full-duplex channel.
  StatusOr<std::unique_ptr<SocketChannel>> Accept(int timeout_ms);

  int port() const { return port_; }

 private:
  TcpListener(int fd, int port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  int port_ = 0;
};

}  // namespace kc

#endif  // KALMANCAST_NET_TRANSPORT_H_
