#ifndef KALMANCAST_NET_MESSAGE_H_
#define KALMANCAST_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kc {

/// Wire-message kinds exchanged between a stream source and the server.
enum class MessageType : uint8_t {
  /// Source registration: carries the predictor's full initial state.
  kInit = 0,
  /// Precision-violation correction: carries the data the predictor needs
  /// to resynchronize (for the Kalman predictor, the raw observation both
  /// replicas fold in; for value caching, the new value).
  kCorrection = 1,
  /// Full predictor-state resynchronization (state + covariance). Larger
  /// than a correction; used for recovery and by the resync-policy
  /// ablation (E9).
  kFullSync = 2,
  /// Periodic liveness beacon with no payload; lets the server distinguish
  /// "suppressed because predictable" from "source died".
  kHeartbeat = 3,
  /// Server-to-source control: payload[0] is the new precision bound the
  /// source must adopt (budget reallocation pushed from the server).
  kSetBound = 4,
  /// Server-to-source control: the replica suspects it has desynchronized
  /// (wire-sequence gap or silence past the escalation threshold) and asks
  /// the source to re-anchor it. payload[0] is 1.0 if the replica is
  /// initialized (answer: FULL_SYNC) and 0.0 if it never saw INIT (answer:
  /// a fresh INIT). Sent with exponential backoff until a sync arrives.
  kResyncRequest = 5,
};

/// Number of MessageType values (for per-type counters).
inline constexpr size_t kNumMessageTypes = 6;

const char* MessageTypeName(MessageType type);

/// True for the four source-to-server kinds the agent stamps a dense
/// wire_seq (and hence a CausalFlowId) on; SET_BOUND / RESYNC_REQUEST are
/// downlink control and carry neither.
inline constexpr bool IsUplinkType(MessageType type) {
  return static_cast<uint8_t>(type) <=
         static_cast<uint8_t>(MessageType::kHeartbeat);
}

/// True iff `raw` is one of the six defined MessageType values. The enum
/// is backed by uint8_t, so casting an arbitrary byte first and asking
/// questions later is how a malformed frame turns into out-of-bounds
/// per-type counter indexing — validate, then cast.
inline constexpr bool IsValidMessageTypeByte(uint8_t raw) {
  return raw < kNumMessageTypes;
}

namespace wire {

/// Bytes an unsigned LEB128 varint needs for `v` (1..10).
inline constexpr size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// ZigZag-maps a signed 64-bit value onto unsigned so small-magnitude
/// values (positive or negative) get short varints.
inline constexpr uint64_t ZigZag(int64_t v) {
  // Written without shifting a signed value, so it is well-defined under
  // every standard mode UBSan checks.
  return (static_cast<uint64_t>(v) << 1) ^ (v < 0 ? ~uint64_t{0} : uint64_t{0});
}

inline constexpr int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (0 - (v & 1)));
}

/// Bytes a zigzag varint needs for signed `v`.
inline constexpr size_t SignedVarintSize(int64_t v) {
  return VarintSize(ZigZag(v));
}

}  // namespace wire

/// A wire message. The evaluation metric of the reproduced paper is
/// communication overhead, so SizeBytes() must be *exactly* the framed
/// binary encoding net/codec.h produces: a varint length prefix, then
/// zigzag-varint source_id, one type byte, zigzag-varint seq and
/// wire_seq, an 8-byte little-endian IEEE-754 timestamp, and 8 bytes per
/// payload double. Simulated channels charge SizeBytes(); socket
/// transports put those same bytes on a real wire — the byte-parity
/// contract pinned by tests/codec_test.cc.
struct Message {
  /// Body bytes of the smallest possible header (1-byte source_id, type,
  /// 1-byte seq, 1-byte wire_seq, 8-byte time); with its 1-byte length
  /// prefix the smallest whole frame is kMinBodyBytes + 1 = 13.
  static constexpr size_t kMinBodyBytes = 12;

  int32_t source_id = 0;
  MessageType type = MessageType::kCorrection;
  int64_t seq = 0;    ///< Sequence number of the triggering reading.
  /// Per-link message counter, stamped by the sender on every uplink
  /// message (INIT, CORRECTION, FULL_SYNC, HEARTBEAT alike). Unlike `seq`
  /// — which skips the suppressed readings between messages — wire_seq is
  /// dense, so a receiver can tell "nothing was sent" apart from
  /// "something was sent and lost": the gap signal recovery runs on.
  int64_t wire_seq = 0;
  /// Causal flow id stamped by the sender (CausalFlowId below); 0 when
  /// unset. Pure diagnostic metadata — it links the sender's decision
  /// trace span to the receiver's apply span — and is derivable from
  /// (source_id, wire_seq), so it is NOT charged by SizeBytes(): a real
  /// wire encoding would reconstruct it at the receiver.
  uint64_t flow_id = 0;
  double time = 0.0;  ///< Stream time of the triggering reading.
  std::vector<double> payload;

  /// Exact framed size on the wire: length prefix + header + payload.
  /// Value-dependent (varint header fields), so large seq/wire_seq/
  /// source_id values cost more bytes, exactly as they would on a real
  /// link. flow_id is NOT charged: the receiver reconstructs it from
  /// (source_id, wire_seq) — see CausalFlowId below.
  size_t SizeBytes() const {
    size_t body = wire::SignedVarintSize(source_id) + 1 +
                  wire::SignedVarintSize(seq) +
                  wire::SignedVarintSize(wire_seq) + 8 + 8 * payload.size();
    return wire::VarintSize(body) + body;
  }

  std::string ToString() const;
};

/// Deterministic causal id for one uplink message: source id in the high
/// word, dense wire sequence (+1 so a valid id is never 0) in the low.
/// Stamped by the agent at send time and carried into the replica's apply
/// span, stitching both ends of the message into one trace flow.
inline uint64_t CausalFlowId(int32_t source_id, int64_t wire_seq) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(source_id)) << 32) |
         static_cast<uint32_t>(wire_seq + 1);
}

}  // namespace kc

#endif  // KALMANCAST_NET_MESSAGE_H_
