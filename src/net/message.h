#ifndef KALMANCAST_NET_MESSAGE_H_
#define KALMANCAST_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kc {

/// Wire-message kinds exchanged between a stream source and the server.
enum class MessageType : uint8_t {
  /// Source registration: carries the predictor's full initial state.
  kInit = 0,
  /// Precision-violation correction: carries the data the predictor needs
  /// to resynchronize (for the Kalman predictor, the raw observation both
  /// replicas fold in; for value caching, the new value).
  kCorrection = 1,
  /// Full predictor-state resynchronization (state + covariance). Larger
  /// than a correction; used for recovery and by the resync-policy
  /// ablation (E9).
  kFullSync = 2,
  /// Periodic liveness beacon with no payload; lets the server distinguish
  /// "suppressed because predictable" from "source died".
  kHeartbeat = 3,
  /// Server-to-source control: payload[0] is the new precision bound the
  /// source must adopt (budget reallocation pushed from the server).
  kSetBound = 4,
  /// Server-to-source control: the replica suspects it has desynchronized
  /// (wire-sequence gap or silence past the escalation threshold) and asks
  /// the source to re-anchor it. payload[0] is 1.0 if the replica is
  /// initialized (answer: FULL_SYNC) and 0.0 if it never saw INIT (answer:
  /// a fresh INIT). Sent with exponential backoff until a sync arrives.
  kResyncRequest = 5,
};

/// Number of MessageType values (for per-type counters).
inline constexpr size_t kNumMessageTypes = 6;

const char* MessageTypeName(MessageType type);

/// A simulated wire message. The evaluation metric of the reproduced paper
/// is communication overhead, so the only fidelity that matters is the
/// cost model: SizeBytes() charges a fixed header plus 8 bytes per payload
/// double, mirroring a compact binary encoding.
struct Message {
  /// Fixed per-message overhead (source id, type, reading seq, wire seq,
  /// timestamp, length — modeled as a compact varint-style encoding).
  static constexpr size_t kHeaderBytes = 20;

  int32_t source_id = 0;
  MessageType type = MessageType::kCorrection;
  int64_t seq = 0;    ///< Sequence number of the triggering reading.
  /// Per-link message counter, stamped by the sender on every uplink
  /// message (INIT, CORRECTION, FULL_SYNC, HEARTBEAT alike). Unlike `seq`
  /// — which skips the suppressed readings between messages — wire_seq is
  /// dense, so a receiver can tell "nothing was sent" apart from
  /// "something was sent and lost": the gap signal recovery runs on.
  int64_t wire_seq = 0;
  /// Causal flow id stamped by the sender (CausalFlowId below); 0 when
  /// unset. Pure diagnostic metadata — it links the sender's decision
  /// trace span to the receiver's apply span — and is derivable from
  /// (source_id, wire_seq), so it is NOT charged by SizeBytes(): a real
  /// wire encoding would reconstruct it at the receiver.
  uint64_t flow_id = 0;
  double time = 0.0;  ///< Stream time of the triggering reading.
  std::vector<double> payload;

  size_t SizeBytes() const { return kHeaderBytes + 8 * payload.size(); }

  std::string ToString() const;
};

/// Deterministic causal id for one uplink message: source id in the high
/// word, dense wire sequence (+1 so a valid id is never 0) in the low.
/// Stamped by the agent at send time and carried into the replica's apply
/// span, stitching both ends of the message into one trace flow.
inline uint64_t CausalFlowId(int32_t source_id, int64_t wire_seq) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(source_id)) << 32) |
         static_cast<uint32_t>(wire_seq + 1);
}

}  // namespace kc

#endif  // KALMANCAST_NET_MESSAGE_H_
