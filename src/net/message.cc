#include "net/message.h"

#include <sstream>

namespace kc {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kInit:
      return "INIT";
    case MessageType::kCorrection:
      return "CORRECTION";
    case MessageType::kFullSync:
      return "FULL_SYNC";
    case MessageType::kHeartbeat:
      return "HEARTBEAT";
    case MessageType::kSetBound:
      return "SET_BOUND";
    case MessageType::kResyncRequest:
      return "RESYNC_REQUEST";
  }
  return "UNKNOWN";
}

std::string Message::ToString() const {
  std::ostringstream os;
  os << MessageTypeName(type) << " src=" << source_id << " seq=" << seq
     << " t=" << time << " payload=" << payload.size() << "d ("
     << SizeBytes() << "B)";
  return os.str();
}

}  // namespace kc
