#include "net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"
#include "obs/trace.h"

namespace kc {

namespace {

/// Escape frames: a protocol frame's first byte is its body-length varint,
/// and the codec rejects any body shorter than Message::kMinBodyBytes, so
/// a leading 0x00 byte can never start a protocol frame. The transport
/// claims that byte for its own framing:
///
///   escape := 0x00 opcode:u8 arg:u64le [payload]
///
/// Opcodes below 0x10 are fixed-size (the 10-byte header is the whole
/// frame; arg is the value). Opcodes 0x10 and up carry a payload: arg is
/// its byte length and the payload follows the header on the stream.
///
///   0x01 tick barrier     arg = sender's stream tick
///   0x02 clock ping       arg = sender's monotonic clock, ns
///   0x03 black-box request arg = source id
///   0x10 clock pong       payload = echoed t0:u64le + peer clock ns:u64le
///   0x11 telemetry snapshot payload = obs/snapshot.h codec bytes
///   0x12 black-box dump   payload = source id:u64le + dump text
///
/// Escape frames are transport metadata, not protocol traffic: they
/// bypass the codec and are never charged to NetworkStats. An unknown
/// opcode is malformed (poisons a TCP stream, is counted on UDP).
constexpr uint8_t kEscapeByte = 0x00;
constexpr uint8_t kOpTickBarrier = 0x01;
constexpr uint8_t kOpClockPing = 0x02;
constexpr uint8_t kOpBlackboxRequest = 0x03;
constexpr uint8_t kOpClockPong = 0x10;
constexpr uint8_t kOpSnapshot = 0x11;
constexpr uint8_t kOpBlackboxDump = 0x12;
constexpr size_t kEscapeFrameBytes = 10;
constexpr uint8_t kFirstVariableOpcode = 0x10;
/// Caps a variable escape frame's payload. Snapshots of even huge fleets
/// are far below this; anything above it is stream corruption, not data.
constexpr size_t kMaxEscapePayloadBytes = 4 * 1024 * 1024;

bool IsVariableEscapeOpcode(uint8_t op) {
  return op >= kFirstVariableOpcode && op <= kOpBlackboxDump;
}

bool IsKnownEscapeOpcode(uint8_t op) {
  return (op >= kOpTickBarrier && op <= kOpBlackboxRequest) ||
         IsVariableEscapeOpcode(op);
}

/// Largest UDP datagram we ever read. A conforming frame fits easily
/// (kMaxBodyBytes is the decode-side cap, but senders here emit payloads
/// of at most a few hundred doubles); anything larger is rejected by the
/// codec anyway.
constexpr size_t kRecvChunkBytes = 64 * 1024;

Status SysError(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, std::strerror(errno)));
}

Status MakeAddr(const std::string& host, int port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  const std::string& ip = (host == "localhost") ? std::string("127.0.0.1")
                                                : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("not an IPv4 address: '%s'", host.c_str()));
  }
  return Status::Ok();
}

int LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

void WriteLe64(uint64_t v, uint8_t* out) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint64_t ReadLe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

SocketChannel::SocketChannel(Kind kind, int fd, int port)
    : kind_(kind), fd_(fd), port_(port) {}

SocketChannel::~SocketChannel() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<SocketChannel>> SocketChannel::UdpConnect(
    const std::string& host, int port) {
  sockaddr_in addr;
  KC_RETURN_IF_ERROR(MakeAddr(host, port, &addr));
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return SysError("socket(udp)");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = SysError("connect(udp)");
    ::close(fd);
    return s;
  }
  return std::unique_ptr<SocketChannel>(
      new SocketChannel(Kind::kUdpSender, fd, port));
}

StatusOr<std::unique_ptr<SocketChannel>> SocketChannel::UdpBind(
    const std::string& host, int port) {
  sockaddr_in addr;
  KC_RETURN_IF_ERROR(MakeAddr(host, port, &addr));
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return SysError("socket(udp)");
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = SysError("bind(udp)");
    ::close(fd);
    return s;
  }
  return std::unique_ptr<SocketChannel>(
      new SocketChannel(Kind::kUdpReceiver, fd, LocalPort(fd)));
}

StatusOr<std::unique_ptr<SocketChannel>> SocketChannel::TcpConnect(
    const std::string& host, int port) {
  sockaddr_in addr;
  KC_RETURN_IF_ERROR(MakeAddr(host, port, &addr));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SysError("socket(tcp)");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = SysError("connect(tcp)");
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<SocketChannel>(
      new SocketChannel(Kind::kTcp, fd, LocalPort(fd)));
}

Status SocketChannel::SetRecvBufferBytes(int bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("channel is closed");
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) != 0) {
    return SysError("setsockopt(SO_RCVBUF)");
  }
  return Status::Ok();
}

Status SocketChannel::WriteAll(const uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::send(fd_, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SysError("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status SocketChannel::Send(const Message& msg) {
  if (kind_ == Kind::kUdpReceiver) {
    return Status::FailedPrecondition("send on a receive-only UDP channel");
  }
  if (!last_error_.ok()) return last_error_;
  if (fd_ < 0) return Status::FailedPrecondition("channel is closed");
  // Charged before the syscall: "sent" means the sender paid the bytes,
  // identically to the simulated channel (which then decides delivery).
  AccountSend(msg);
  tx_buf_.clear();
  codec::EncodeFrame(msg, &tx_buf_);
  if (kind_ == Kind::kUdpSender) {
    ssize_t n;
    do {
      n = ::send(fd_, tx_buf_.data(), tx_buf_.size(), MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      // The kernel refused the datagram (full socket buffer, ICMP port
      // unreachable from an earlier send, ...). On a datagram link that
      // is just loss: charge the drop, keep flying.
      AccountDrop(msg);
    } else {
      LogSendTimestamp(msg);
    }
    return Status::Ok();
  }
  Status s = WriteAll(tx_buf_.data(), tx_buf_.size());
  if (!s.ok()) {
    AccountDrop(msg);
    Poison(s);
    return s;
  }
  LogSendTimestamp(msg);
  return Status::Ok();
}

void SocketChannel::LogSendTimestamp(const Message& msg) {
  // Only flow-stamped messages can be joined against the peer's arrival
  // times; a dropped datagram never reaches the wire and is not logged.
  if (!send_log_enabled_ || msg.flow_id == 0) return;
  if (send_log_.size() >= send_log_capacity_) {
    send_log_.erase(send_log_.begin());
    ++send_log_dropped_;
  }
  obs::WireSendRecord rec;
  rec.flow_id = msg.flow_id;
  rec.type = static_cast<uint8_t>(msg.type);
  rec.send_ns = obs::TraceNowNs();
  send_log_.push_back(rec);
}

Status SocketChannel::SendEscape(uint8_t opcode, uint64_t arg,
                                 const uint8_t* payload, size_t payload_size) {
  if (kind_ != Kind::kTcp) {
    return Status::FailedPrecondition("escape frames ride the TCP control "
                                      "stream only");
  }
  if (!last_error_.ok()) return last_error_;
  if (fd_ < 0) return Status::FailedPrecondition("channel is closed");
  uint8_t frame[kEscapeFrameBytes];
  frame[0] = kEscapeByte;
  frame[1] = opcode;
  WriteLe64(arg, frame + 2);
  Status s = WriteAll(frame, sizeof(frame));
  if (s.ok() && payload_size > 0) s = WriteAll(payload, payload_size);
  if (!s.ok()) Poison(s);
  return s;
}

Status SocketChannel::SendTickBarrier(int64_t tick) {
  if (kind_ != Kind::kTcp) {
    return Status::FailedPrecondition("tick barriers ride the TCP control "
                                      "stream only");
  }
  return SendEscape(kOpTickBarrier, static_cast<uint64_t>(tick), nullptr, 0);
}

Status SocketChannel::SendClockPing(int64_t t0_ns) {
  return SendEscape(kOpClockPing, static_cast<uint64_t>(t0_ns), nullptr, 0);
}

Status SocketChannel::SendClockPong(int64_t echoed_t0_ns, int64_t now_ns) {
  uint8_t payload[16];
  WriteLe64(static_cast<uint64_t>(echoed_t0_ns), payload);
  WriteLe64(static_cast<uint64_t>(now_ns), payload + 8);
  return SendEscape(kOpClockPong, sizeof(payload), payload, sizeof(payload));
}

Status SocketChannel::SendTelemetrySnapshot(const uint8_t* data, size_t size) {
  if (size == 0 || size > kMaxEscapePayloadBytes) {
    return Status::InvalidArgument("telemetry snapshot size out of range");
  }
  return SendEscape(kOpSnapshot, size, data, size);
}

Status SocketChannel::SendBlackboxRequest(int64_t source_id) {
  return SendEscape(kOpBlackboxRequest, static_cast<uint64_t>(source_id),
                    nullptr, 0);
}

Status SocketChannel::SendBlackboxDump(int64_t source_id,
                                       const std::string& dump) {
  if (dump.size() > kMaxEscapePayloadBytes - 8) {
    return Status::InvalidArgument("black-box dump too large");
  }
  std::vector<uint8_t> payload(8 + dump.size());
  WriteLe64(static_cast<uint64_t>(source_id), payload.data());
  std::memcpy(payload.data() + 8, dump.data(), dump.size());
  return SendEscape(kOpBlackboxDump, payload.size(), payload.data(),
                    payload.size());
}

void SocketChannel::EnableSendTimestampLog(size_t capacity) {
  send_log_enabled_ = true;
  send_log_capacity_ = capacity == 0 ? 1 : capacity;
  send_log_.reserve(send_log_capacity_);
}

void SocketChannel::DrainSendTimestamps(std::vector<obs::WireSendRecord>* out) {
  out->insert(out->end(), send_log_.begin(), send_log_.end());
  send_log_.clear();
}

void SocketChannel::AdvanceTick() {
  if (fd_ < 0) return;
  if (kind_ == Kind::kTcp) {
    DrainTcp();
  } else {
    DrainUdp();
  }
}

int SocketChannel::Poll(int timeout_ms) {
  int64_t before = stats().messages_delivered;
  if (fd_ >= 0 && timeout_ms != 0) {
    pollfd pfd = {};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int r;
    do {
      r = ::poll(&pfd, 1, timeout_ms);
    } while (r < 0 && errno == EINTR);
  }
  AdvanceTick();
  return static_cast<int>(stats().messages_delivered - before);
}

bool SocketChannel::HandleEscapeFrame(const uint8_t* data, size_t size) {
  if (size < kEscapeFrameBytes) return false;
  const uint8_t opcode = data[1];
  if (!IsKnownEscapeOpcode(opcode)) return false;
  const uint64_t arg = ReadLe64(data + 2);
  if (IsVariableEscapeOpcode(opcode)) {
    if (arg > kMaxEscapePayloadBytes) return false;
    if (size != kEscapeFrameBytes + arg) return false;
  } else if (size != kEscapeFrameBytes) {
    return false;
  }
  const uint8_t* payload = data + kEscapeFrameBytes;
  switch (opcode) {
    case kOpTickBarrier:
      if (tick_sink_) tick_sink_(static_cast<int64_t>(arg));
      return true;
    case kOpClockPing:
      // Answer in the transport itself: the round trip must not depend
      // on the application draining and re-sending, or queueing delay
      // would masquerade as clock offset. Best effort — a failed pong
      // just costs the peer one sample.
      if (kind_ == Kind::kTcp && fd_ >= 0) {
        (void)SendClockPong(static_cast<int64_t>(arg), obs::TraceNowNs());
      }
      return true;
    case kOpBlackboxRequest:
      if (blackbox_request_sink_) {
        blackbox_request_sink_(static_cast<int64_t>(arg));
      }
      return true;
    case kOpClockPong: {
      if (arg != 16) return false;
      if (clock_pong_sink_) {
        clock_pong_sink_(static_cast<int64_t>(ReadLe64(payload)),
                         static_cast<int64_t>(ReadLe64(payload + 8)));
      }
      return true;
    }
    case kOpSnapshot:
      if (arg == 0) return false;
      if (snapshot_sink_) snapshot_sink_(payload, static_cast<size_t>(arg));
      return true;
    case kOpBlackboxDump: {
      if (arg < 8) return false;
      if (blackbox_dump_sink_) {
        blackbox_dump_sink_(
            static_cast<int64_t>(ReadLe64(payload)),
            std::string(reinterpret_cast<const char*>(payload + 8),
                        static_cast<size_t>(arg - 8)));
      }
      return true;
    }
  }
  return false;
}

void SocketChannel::DrainUdp() {
  uint8_t buf[kRecvChunkBytes];
  while (true) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: drained. ECONNREFUSED (connected-UDP ICMP echo of an
      // earlier send): nothing to read either. Both end the drain.
      return;
    }
    if (n == 0) {
      // A zero-length datagram: not a frame this protocol emits.
      ++frames_rejected_;
      continue;
    }
    if (buf[0] == kEscapeByte) {
      if (!HandleEscapeFrame(buf, static_cast<size_t>(n))) ++frames_rejected_;
      continue;
    }
    Message msg;
    size_t consumed = 0;
    Status s = codec::DecodeFrame(buf, static_cast<size_t>(n), &msg, &consumed);
    if (!s.ok() || consumed != static_cast<size_t>(n)) {
      // Datagram framing: one datagram must be exactly one frame. A
      // truncated, malformed, or trailing-garbage datagram is corruption;
      // count it and move on — malformed input is never fatal on UDP.
      ++frames_rejected_;
      continue;
    }
    Deliver(msg);
  }
}

void SocketChannel::DrainTcp() {
  uint8_t buf[kRecvChunkBytes];
  while (true) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      Poison(SysError("recv(tcp)"));
      return;
    }
    if (n == 0) {
      peer_closed_ = true;
      break;
    }
    rx_buf_.insert(rx_buf_.end(), buf, buf + n);
  }
  ParseTcpBuffer();
}

bool SocketChannel::ParseTcpBuffer() {
  size_t off = 0;
  while (off < rx_buf_.size()) {
    const uint8_t* p = rx_buf_.data() + off;
    const size_t avail = rx_buf_.size() - off;
    if (p[0] == kEscapeByte) {
      if (avail < kEscapeFrameBytes) break;  // Wait for the header.
      size_t escape_size = kEscapeFrameBytes;
      if (IsVariableEscapeOpcode(p[1])) {
        const uint64_t len = ReadLe64(p + 2);
        if (len > kMaxEscapePayloadBytes) {
          // An absurd length is corruption; waiting for that many bytes
          // would stall the stream forever.
          ++frames_rejected_;
          Poison(Status::DataLoss(
              "oversized escape payload on control stream"));
          return false;
        }
        escape_size += static_cast<size_t>(len);
        if (avail < escape_size) break;  // Wait for the payload.
      }
      if (!HandleEscapeFrame(p, escape_size)) {
        ++frames_rejected_;
        Poison(Status::DataLoss("malformed escape frame on control stream"));
        return false;
      }
      off += escape_size;
      continue;
    }
    size_t frame_size = 0;
    Status s = codec::FrameExtent(p, avail, &frame_size);
    if (s.code() == StatusCode::kOutOfRange) break;  // Partial length prefix.
    if (s.ok() && avail < frame_size) break;         // Partial body.
    Message msg;
    size_t consumed = 0;
    if (s.ok()) s = codec::DecodeFrame(p, avail, &msg, &consumed);
    if (!s.ok()) {
      // A malformed frame on a byte stream means framing is lost for
      // good — there is no datagram boundary to resynchronize on. The
      // connection is poisoned; recovery is the peer reconnecting.
      ++frames_rejected_;
      Poison(Status::DataLoss(
          StrFormat("control stream lost framing: %s", s.message().c_str())));
      return false;
    }
    Deliver(msg);
    off += consumed;
  }
  if (off > 0) {
    rx_buf_.erase(rx_buf_.begin(),
                  rx_buf_.begin() + static_cast<ptrdiff_t>(off));
  }
  return true;
}

void SocketChannel::Poison(Status error) {
  last_error_ = std::move(error);
  peer_closed_ = true;
  rx_buf_.clear();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<TcpListener>> TcpListener::Listen(
    const std::string& host, int port) {
  sockaddr_in addr;
  KC_RETURN_IF_ERROR(MakeAddr(host, port, &addr));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SysError("socket(tcp)");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = SysError("bind(tcp)");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 8) != 0) {
    Status s = SysError("listen");
    ::close(fd);
    return s;
  }
  return std::unique_ptr<TcpListener>(new TcpListener(fd, LocalPort(fd)));
}

StatusOr<std::unique_ptr<SocketChannel>> TcpListener::Accept(int timeout_ms) {
  pollfd pfd = {};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  int r;
  do {
    r = ::poll(&pfd, 1, timeout_ms);
  } while (r < 0 && errno == EINTR);
  if (r < 0) return SysError("poll(accept)");
  if (r == 0) {
    return Status::OutOfRange("no connection within the accept timeout");
  }
  int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) return SysError("accept");
  int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<SocketChannel>(new SocketChannel(
      SocketChannel::Kind::kTcp, cfd, LocalPort(cfd)));
}

}  // namespace kc
