#include "net/fault.h"

namespace kc {

bool FaultConfig::InPartition(int64_t tick) const {
  if (!partitions_enabled() || tick < partition_start) return false;
  int64_t offset = tick - partition_start;
  if (partition_every > 0) offset %= partition_every;
  return offset < partition_length;
}

SendFaults FaultInjector::OnSend(Rng& rng) {
  SendFaults faults;
  if (config_.burst_enabled()) {
    // Evolve the chain first so a burst can start on this very message.
    if (in_burst_) {
      if (rng.Bernoulli(config_.burst_exit_prob)) in_burst_ = false;
    } else {
      if (rng.Bernoulli(config_.burst_enter_prob)) in_burst_ = true;
    }
    if (in_burst_ && rng.Bernoulli(config_.burst_loss_prob)) {
      faults.burst_drop = true;
      return faults;  // A dropped message can't be duplicated/reordered.
    }
  }
  if (config_.duplicate_prob > 0.0 &&
      rng.Bernoulli(config_.duplicate_prob)) {
    faults.duplicate = true;
  }
  if (config_.reorder_enabled() && rng.Bernoulli(config_.reorder_prob)) {
    faults.extra_delay = rng.UniformInt(1, config_.reorder_max_ticks);
  }
  return faults;
}

}  // namespace kc
