#include "suppression/ukf_policy.h"

#include <cassert>

namespace kc {

UkfPredictor::UkfPredictor(Config config) : config_(std::move(config)) {
  assert(config_.model.Validate().ok());
  assert(config_.init_state != nullptr);
}

void UkfPredictor::Init(const Reading& first) {
  assert(first.value.size() == config_.model.obs_dim);
  Vector x0 = config_.init_state(first.value);
  assert(x0.size() == config_.model.state_dim);
  Matrix p0 = Matrix::ScalarDiagonal(config_.model.state_dim, config_.init_var);
  shadow_.emplace(config_.model, x0, p0, config_.params);
  private_.emplace(config_.model, x0, p0, config_.params);
  last_observed_ = first;
}

void UkfPredictor::Tick() {
  assert(shadow_.has_value());
  shadow_->Predict();
}

void UkfPredictor::ObserveLocal(const Reading& measured) {
  last_observed_ = measured;
  assert(private_.has_value());
  private_->Predict();
  Status s = private_->Update(measured.value);
  assert(s.ok());
  (void)s;
}

Vector UkfPredictor::Target() const {
  assert(private_.has_value());
  return private_->PredictObservation();
}

Vector UkfPredictor::Predict() const {
  assert(shadow_.has_value());
  return shadow_->PredictObservation();
}

std::vector<double> UkfPredictor::Pack(const UnscentedKalmanFilter& f) const {
  size_t n = config_.model.state_dim;
  std::vector<double> buf;
  buf.reserve(n + n * n);
  buf.insert(buf.end(), f.state().data().begin(), f.state().data().end());
  buf.insert(buf.end(), f.covariance().data().begin(),
             f.covariance().data().end());
  return buf;
}

Status UkfPredictor::Unpack(const std::vector<double>& buf,
                            UnscentedKalmanFilter* f) {
  size_t n = config_.model.state_dim;
  if (buf.size() != n + n * n) {
    return Status::InvalidArgument("UKF state payload has wrong size");
  }
  Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = buf[i];
  Matrix p(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) p(r, c) = buf[n + r * n + c];
  }
  p.Symmetrize();
  f->Reset(std::move(x), std::move(p));
  return Status::Ok();
}

std::vector<double> UkfPredictor::EncodeCorrection(
    const Reading& /*measured*/) const {
  assert(private_.has_value());
  return Pack(*private_);
}

Status UkfPredictor::ApplyCorrection(int64_t /*seq*/, double /*time*/,
                                     const std::vector<double>& payload) {
  if (!shadow_.has_value()) {
    return Status::FailedPrecondition("predictor not initialized");
  }
  return Unpack(payload, &*shadow_);
}

std::vector<double> UkfPredictor::EncodeFullState() const {
  // Shadow = the shared replicated state (see KalmanPredictor note).
  assert(shadow_.has_value());
  return Pack(*shadow_);
}

Status UkfPredictor::ApplyFullState(const std::vector<double>& payload) {
  return ApplyCorrection(0, 0.0, payload);
}

std::unique_ptr<Predictor> UkfPredictor::Clone() const {
  return std::make_unique<UkfPredictor>(config_);
}

const UnscentedKalmanFilter& UkfPredictor::shadow_filter() const {
  assert(shadow_.has_value());
  return *shadow_;
}

const UnscentedKalmanFilter& UkfPredictor::private_filter() const {
  assert(private_.has_value());
  return *private_;
}

}  // namespace kc
