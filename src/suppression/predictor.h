#ifndef KALMANCAST_SUPPRESSION_PREDICTOR_H_
#define KALMANCAST_SUPPRESSION_PREDICTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/vector.h"
#include "streams/reading.h"

namespace kc {

namespace obs {
class MetricRegistry;
}  // namespace obs

/// A deterministic prediction procedure replicated at the stream source and
/// at the server — the paper's "cached dynamic procedure".
///
/// Protocol contract: two Predictor replicas that (1) start from the same
/// Init() reading, (2) receive the same Tick() cadence, and (3) apply the
/// same sequence of ApplyCorrection()/ApplyFullState() payloads MUST
/// produce bit-identical Predict() outputs. Every implementation is pure
/// and deterministic; all randomness lives in the streams, never here.
///
/// Per-tick usage at the source: Tick(); ObserveLocal(measured); if
/// |Target() - Predict()| > delta, ship EncodeCorrection() and apply it
/// locally. At the server: Tick() each tick; apply payloads as they
/// arrive. Predict() is then always within delta of Target() — the value
/// the contract protects — on a lossless channel.
///
/// Target() is the raw measurement for memoryless policies; for the
/// state-sync Kalman policy it is the client's *filtered* estimate, which
/// is the paper's semantics (the client filters noisy data locally and the
/// server predicts that clean signal without the client's involvement).
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Initializes from the stream's first reading (both replicas receive it
  /// via the INIT message).
  virtual void Init(const Reading& first) = 0;

  /// Advances the procedure's clock by one stream tick.
  virtual void Tick() = 0;

  /// Source side only: folds the tick's measurement into private state
  /// (e.g. the client's own filter). Default: remembers the reading so
  /// Target() can return it.
  virtual void ObserveLocal(const Reading& measured) { last_observed_ = measured; }

  /// The value the precision contract protects. Default: the most recent
  /// measurement passed to ObserveLocal().
  virtual Vector Target() const { return last_observed_.value; }

  /// Current prediction of the source's observed value.
  virtual Vector Predict() const = 0;

  /// Builds the correction payload for a violating measurement
  /// (source side). Must not mutate state.
  virtual std::vector<double> EncodeCorrection(const Reading& measured) const = 0;

  /// Applies a correction payload (identical call on both replicas).
  /// `seq`/`time` identify the triggering reading.
  virtual Status ApplyCorrection(int64_t seq, double time,
                                 const std::vector<double>& payload) = 0;

  /// Serializes complete internal state (source side; larger than a
  /// correction). Default: unsupported.
  virtual std::vector<double> EncodeFullState() const { return {}; }

  /// Restores complete internal state. Default: unsupported.
  virtual Status ApplyFullState(const std::vector<double>& /*payload*/) {
    return Status::Unimplemented("full-state sync not supported");
  }

  /// Binds the predictor's internal event counters (outlier gate fires,
  /// filter resets, model switches, ...) to a metric arena. Optional:
  /// implementations that expose no internals ignore it. Must never
  /// change predictive behaviour — metrics observe the protocol, they are
  /// not part of it.
  virtual void BindMetrics(obs::MetricRegistry* /*registry*/) {}

  /// Normalized innovation squared (nu' S^-1 nu) of the most recent
  /// ObserveLocal() reading against the policy's private model, or a
  /// negative value when the policy has no consistency statistic
  /// (memoryless policies, measurement-sync mode, before Init). The
  /// filter-health watchdog feeds on this; like BindMetrics it observes
  /// the protocol without being part of it.
  virtual double LastNis() const { return -1.0; }

  /// Readings rejected by an internal outlier gate so far (0 if the
  /// policy has no gate). Lets the serving path log gate fires without
  /// knowing the concrete policy.
  virtual int64_t OutliersRejected() const { return 0; }

  /// Fresh, un-Init()ed replica with the same configuration. This is how
  /// the server constructs its twin of a source's predictor.
  virtual std::unique_ptr<Predictor> Clone() const = 0;

  /// Policy name for reports ("kalman", "value_cache", ...).
  virtual std::string name() const = 0;

  /// Dimensionality of the predicted observation.
  virtual size_t dims() const = 0;

 protected:
  /// Backing store for the default ObserveLocal()/Target().
  Reading last_observed_;
};

}  // namespace kc

#endif  // KALMANCAST_SUPPRESSION_PREDICTOR_H_
