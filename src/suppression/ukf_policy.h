#ifndef KALMANCAST_SUPPRESSION_UKF_POLICY_H_
#define KALMANCAST_SUPPRESSION_UKF_POLICY_H_

#include <optional>

#include "kalman/ukf.h"
#include "suppression/predictor.h"

namespace kc {

/// Dual *unscented* Kalman filter predictor: like EkfPredictor but with
/// sigma-point moment propagation instead of linearization — preferable
/// when the dynamics or observation are strongly nonlinear at the
/// operating point. State-sync only; corrections carry (x, P) so the two
/// replicas' sigma points coincide exactly.
class UkfPredictor : public Predictor {
 public:
  struct Config {
    NonlinearModel model;
    double init_var = 100.0;
    /// Maps the first observation to an initial state (pure).
    std::function<Vector(const Vector&)> init_state;
    UnscentedKalmanFilter::Params params;
  };

  explicit UkfPredictor(Config config);

  void Init(const Reading& first) override;
  void Tick() override;
  void ObserveLocal(const Reading& measured) override;
  Vector Target() const override;
  Vector Predict() const override;
  std::vector<double> EncodeCorrection(const Reading& measured) const override;
  Status ApplyCorrection(int64_t seq, double time,
                         const std::vector<double>& payload) override;
  std::vector<double> EncodeFullState() const override;
  Status ApplyFullState(const std::vector<double>& payload) override;
  std::unique_ptr<Predictor> Clone() const override;
  std::string name() const override { return "ukf"; }
  size_t dims() const override { return config_.model.obs_dim; }

  const UnscentedKalmanFilter& shadow_filter() const;
  const UnscentedKalmanFilter& private_filter() const;

 private:
  /// (x, P) round trip helpers shared by corrections and full sync.
  std::vector<double> Pack(const UnscentedKalmanFilter& f) const;
  Status Unpack(const std::vector<double>& buf, UnscentedKalmanFilter* f);

  Config config_;
  std::optional<UnscentedKalmanFilter> shadow_;
  std::optional<UnscentedKalmanFilter> private_;
};

}  // namespace kc

#endif  // KALMANCAST_SUPPRESSION_UKF_POLICY_H_
