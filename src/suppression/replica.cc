#include "suppression/replica.h"

#include <cassert>

#include "obs/metrics.h"

namespace kc {

ServerReplica::ServerReplica(int32_t source_id,
                             std::unique_ptr<Predictor> predictor)
    : source_id_(source_id), predictor_(std::move(predictor)) {
  assert(predictor_ != nullptr);
}

void ServerReplica::Tick() {
  if (!initialized_) return;
  predictor_->Tick();
  ++ticks_;
}

void ServerReplica::BindMetrics(obs::MetricRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics();
    predictor_->BindMetrics(nullptr);
    return;
  }
  metrics_.applied = registry->GetCounter("kc.replica.messages_applied");
  metrics_.ignored = registry->GetCounter("kc.replica.messages_ignored");
  metrics_.full_syncs = registry->GetCounter("kc.replica.full_syncs");
  predictor_->BindMetrics(registry);
}

Status ServerReplica::OnMessage(const Message& msg) {
  if (msg.source_id != source_id_) {
    return Status::InvalidArgument("message routed to wrong replica");
  }
  // Sequencing guard: a delayed duplicate or reordered datagram must not
  // roll the replica backwards.
  if (initialized_ && msg.type != MessageType::kInit &&
      msg.seq < last_heard_seq_) {
    ++messages_ignored_;
    if (metrics_.ignored != nullptr) metrics_.ignored->Inc();
    return Status::Ok();
  }
  switch (msg.type) {
    case MessageType::kInit: {
      if (msg.payload.size() < 2) {
        return Status::InvalidArgument("INIT payload too small");
      }
      delta_ = msg.payload[0];
      Reading first;
      first.seq = msg.seq;
      first.time = msg.time;
      first.value = Vector(
          std::vector<double>(msg.payload.begin() + 1, msg.payload.end()));
      if (first.value.size() != predictor_->dims()) {
        return Status::InvalidArgument("INIT dimension mismatch");
      }
      predictor_->Init(first);
      initialized_ = true;
      break;
    }
    case MessageType::kCorrection: {
      if (!initialized_) {
        return Status::FailedPrecondition("CORRECTION before INIT");
      }
      if (msg.payload.empty()) {
        return Status::InvalidArgument("empty CORRECTION payload");
      }
      delta_ = msg.payload[0];
      std::vector<double> body(msg.payload.begin() + 1, msg.payload.end());
      KC_RETURN_IF_ERROR(predictor_->ApplyCorrection(msg.seq, msg.time, body));
      break;
    }
    case MessageType::kFullSync: {
      if (!initialized_) {
        return Status::FailedPrecondition("FULL_SYNC before INIT");
      }
      if (msg.payload.empty()) {
        return Status::InvalidArgument("empty FULL_SYNC payload");
      }
      delta_ = msg.payload[0];
      std::vector<double> body(msg.payload.begin() + 1, msg.payload.end());
      KC_RETURN_IF_ERROR(predictor_->ApplyFullState(body));
      if (metrics_.full_syncs != nullptr) metrics_.full_syncs->Inc();
      break;
    }
    case MessageType::kHeartbeat:
      break;  // Liveness only.
    case MessageType::kSetBound:
      // Downlink-only control; a replica must never receive it.
      return Status::InvalidArgument("SET_BOUND is not an uplink message");
  }
  last_heard_seq_ = msg.seq;
  last_heard_time_ = msg.time;
  tick_at_last_heard_ = ticks_;
  ++messages_applied_;
  if (metrics_.applied != nullptr) metrics_.applied->Inc();
  return Status::Ok();
}

}  // namespace kc
