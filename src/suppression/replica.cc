#include "suppression/replica.h"

#include <algorithm>
#include <cassert>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace kc {

ServerReplica::ServerReplica(int32_t source_id,
                             std::unique_ptr<Predictor> predictor)
    : source_id_(source_id), predictor_(std::move(predictor)) {
  assert(predictor_ != nullptr);
}

void ServerReplica::SetRecovery(const ReplicaRecoveryConfig& config) {
  recovery_ = config;
  recovery_.max_gap_events = std::max<int64_t>(recovery_.max_gap_events, 1);
  recovery_.backoff_initial_ticks =
      std::max<int64_t>(recovery_.backoff_initial_ticks, 1);
  recovery_.backoff_max_ticks = std::max<int64_t>(
      recovery_.backoff_max_ticks, recovery_.backoff_initial_ticks);
  recovery_.quarantine_bound_factor =
      std::max(recovery_.quarantine_bound_factor, 1.0);
  backoff_ = recovery_.backoff_initial_ticks;
}

void ServerReplica::Tick() {
  ++lifetime_ticks_;
  if (initialized_) {
    predictor_->Tick();
    ++ticks_;
  }
  if (!recovery_.enabled) return;
  if (!desynced_ && recovery_.suspect_after_silent_ticks > 0 &&
      lifetime_ticks_ - lifetime_tick_at_heard_ >
          recovery_.suspect_after_silent_ticks) {
    MarkDesynced();
  }
  if (desynced_ && lifetime_ticks_ >= next_resync_tick_) {
    SendResyncRequest();
  }
}

void ServerReplica::MarkDesynced() {
  if (desynced_) return;
  desynced_ = true;
  backoff_ = recovery_.backoff_initial_ticks;
  // Ask on the replica's next Tick (requests always flow from the tick
  // path, never from mid-delivery, which keeps control traffic ordered
  // deterministically within the tick).
  next_resync_tick_ = lifetime_ticks_;
  if (recorder_ != nullptr) {
    recorder_->Record(lifetime_ticks_, obs::RecorderEventKind::kQuarantineEnter,
                      last_wire_seq_);
  }
}

void ServerReplica::ClearDesync() {
  // ClearDesync also runs on every INIT/FULL_SYNC while healthy; only an
  // actual quarantine exit is a recordable transition.
  if (desynced_ && recorder_ != nullptr) {
    recorder_->Record(lifetime_ticks_, obs::RecorderEventKind::kQuarantineExit,
                      last_wire_seq_);
  }
  desynced_ = false;
  gap_events_since_sync_ = 0;
  backoff_ = recovery_.backoff_initial_ticks;
}

void ServerReplica::SendResyncRequest() {
  Message req;
  req.source_id = source_id_;
  req.type = MessageType::kResyncRequest;
  req.seq = last_heard_seq_;
  req.time = static_cast<double>(lifetime_ticks_);
  req.payload = {initialized_ ? 1.0 : 0.0};
  if (control_sender_) control_sender_(req);
  ++resyncs_requested_;
  if (metrics_.resyncs_requested != nullptr) metrics_.resyncs_requested->Inc();
  if (recorder_ != nullptr) {
    recorder_->Record(lifetime_ticks_, obs::RecorderEventKind::kResyncRequest,
                      last_wire_seq_, initialized_ ? 1.0 : 0.0);
  }
  if (health_ != nullptr) health_->OnResync();
  next_resync_tick_ = lifetime_ticks_ + backoff_;
  backoff_ = std::min(backoff_ * 2, recovery_.backoff_max_ticks);
}

void ServerReplica::BindMetrics(obs::MetricRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics();
    predictor_->BindMetrics(nullptr);
    return;
  }
  metrics_.applied = registry->GetCounter("kc.replica.messages_applied");
  metrics_.ignored = registry->GetCounter("kc.replica.messages_ignored");
  metrics_.full_syncs = registry->GetCounter("kc.replica.full_syncs");
  metrics_.gaps = registry->GetCounter("kc.replica.gaps");
  metrics_.resyncs_requested =
      registry->GetCounter("kc.replica.resyncs_requested");
  predictor_->BindMetrics(registry);
}

void ServerReplica::BindObservability(obs::SourceRecorder* recorder,
                                      obs::SourceHealth* health) {
  recorder_ = recorder;
  health_ = health;
}

Status ServerReplica::OnMessage(const Message& msg) {
  if (msg.source_id != source_id_) {
    return Status::InvalidArgument("message routed to wrong replica");
  }
  // The sender stamped its decision span with the same flow id, so this
  // apply span stitches into it in the exported trace.
  KC_TRACE_SCOPE_FLOW("replica.apply", msg.flow_id);
  // Any correctly-routed message proves the link is alive, even one the
  // sequencing guard is about to discard (recovery escalation only).
  lifetime_tick_at_heard_ = lifetime_ticks_;
  // Sequencing guard: a duplicate or reordered datagram must not roll the
  // replica backwards — nor be applied twice. An exact duplicate
  // (seq == last_heard_seq_) used to slip through on `<` and re-apply a
  // CORRECTION, double-updating the filter.
  if (initialized_ && msg.type != MessageType::kInit &&
      msg.seq <= last_heard_seq_) {
    ++messages_ignored_;
    if (metrics_.ignored != nullptr) metrics_.ignored->Inc();
    if (recorder_ != nullptr) {
      recorder_->Record(lifetime_ticks_, obs::RecorderEventKind::kIgnore,
                        msg.wire_seq, static_cast<double>(msg.type));
    }
    return Status::Ok();
  }
  // Wire-sequence gap detection: wire_seq is dense over the agent's sends,
  // so a skip means an uplink message was lost (or is straggling behind a
  // reordering window — a resync is safe either way).
  if (recovery_.enabled && msg.type != MessageType::kInit &&
      last_wire_seq_ >= 0 && msg.wire_seq > last_wire_seq_ + 1) {
    ++gaps_;
    ++gap_events_since_sync_;
    if (metrics_.gaps != nullptr) metrics_.gaps->Inc();
    if (recorder_ != nullptr) {
      // value = how many uplink messages went missing in this gap.
      recorder_->Record(
          lifetime_ticks_, obs::RecorderEventKind::kWireGap, msg.wire_seq,
          static_cast<double>(msg.wire_seq - last_wire_seq_ - 1));
    }
    if (gap_events_since_sync_ >= recovery_.max_gap_events) MarkDesynced();
  }
  // Non-INIT traffic before any INIT means the INIT itself was lost; no
  // wire-seq baseline exists yet, so gap detection can't see it. Only a
  // fresh INIT helps — the resync request advertises uninitialized state
  // and the agent answers with one.
  if (recovery_.enabled && !initialized_ && msg.type != MessageType::kInit) {
    MarkDesynced();
  }
  switch (msg.type) {
    case MessageType::kInit: {
      if (msg.payload.size() < 2) {
        return Status::InvalidArgument("INIT payload too small");
      }
      delta_ = msg.payload[0];
      Reading first;
      first.seq = msg.seq;
      first.time = msg.time;
      first.value = Vector(
          std::vector<double>(msg.payload.begin() + 1, msg.payload.end()));
      if (first.value.size() != predictor_->dims()) {
        return Status::InvalidArgument("INIT dimension mismatch");
      }
      predictor_->Init(first);
      initialized_ = true;
      ClearDesync();  // A (re-)INIT anchors the replica completely.
      break;
    }
    case MessageType::kCorrection: {
      if (!initialized_) {
        return Status::FailedPrecondition("CORRECTION before INIT");
      }
      if (msg.payload.empty()) {
        return Status::InvalidArgument("empty CORRECTION payload");
      }
      delta_ = msg.payload[0];
      std::vector<double> body(msg.payload.begin() + 1, msg.payload.end());
      KC_RETURN_IF_ERROR(predictor_->ApplyCorrection(msg.seq, msg.time, body));
      break;
    }
    case MessageType::kFullSync: {
      if (!initialized_) {
        return Status::FailedPrecondition("FULL_SYNC before INIT");
      }
      if (msg.payload.empty()) {
        return Status::InvalidArgument("empty FULL_SYNC payload");
      }
      delta_ = msg.payload[0];
      std::vector<double> body(msg.payload.begin() + 1, msg.payload.end());
      KC_RETURN_IF_ERROR(predictor_->ApplyFullState(body));
      if (metrics_.full_syncs != nullptr) metrics_.full_syncs->Inc();
      ClearDesync();  // Complete state received: quarantine lifts.
      break;
    }
    case MessageType::kHeartbeat:
      break;  // Liveness only.
    case MessageType::kSetBound:
    case MessageType::kResyncRequest:
      // Downlink-only control; a replica must never receive these.
      return Status::InvalidArgument("control message is not an uplink message");
  }
  last_heard_seq_ = msg.seq;
  last_heard_time_ = msg.time;
  last_wire_seq_ = std::max(last_wire_seq_, msg.wire_seq);
  tick_at_last_heard_ = ticks_;
  ++messages_applied_;
  if (metrics_.applied != nullptr) metrics_.applied->Inc();
  // Heartbeats are liveness noise; the agent side already records the
  // send, so only state-bearing applies earn a black-box entry.
  if (recorder_ != nullptr && msg.type != MessageType::kHeartbeat) {
    recorder_->Record(lifetime_ticks_, obs::RecorderEventKind::kApply,
                      msg.wire_seq, static_cast<double>(msg.type));
  }
  return Status::Ok();
}

}  // namespace kc
