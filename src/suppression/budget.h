#ifndef KALMANCAST_SUPPRESSION_BUDGET_H_
#define KALMANCAST_SUPPRESSION_BUDGET_H_

#include "suppression/agent.h"

namespace kc {

/// Configuration for the resource-constrained mode controller.
struct BudgetConfig {
  /// Target message rate in messages per tick (e.g. 0.02 = one message per
  /// 50 readings).
  double target_rate = 0.05;
  /// Ticks between controller adjustments.
  int64_t window = 200;
  /// Exponent applied to the observed/target rate ratio per adjustment
  /// (lower = gentler).
  double gamma = 0.5;
  /// Per-adjustment clamp on the multiplicative delta change.
  double max_step = 2.0;
  /// Hard bounds on the precision bound.
  double min_delta = 1e-6;
  double max_delta = 1e6;
};

/// Closes the paper's second tradeoff direction: instead of minimizing
/// messages under a fixed precision bound, maximize precision under a
/// message budget. The controller watches an agent's realized message rate
/// and steers its delta multiplicatively toward the budget — tighter when
/// the stream is predictable (spare budget becomes precision), looser when
/// it becomes volatile (precision is spent to stay inside the budget).
class BudgetController {
 public:
  explicit BudgetController(BudgetConfig config = {});

  /// Call once per tick after agent->Offer(). Adjusts agent->set_delta()
  /// every config.window ticks.
  void OnTick(SourceAgent* agent);

  /// Message rate observed in the last completed window.
  double last_window_rate() const { return last_window_rate_; }
  /// Number of adjustments made so far.
  int64_t adjustments() const { return adjustments_; }

  const BudgetConfig& config() const { return config_; }

 private:
  static int64_t MessagesSent(const SourceAgent& agent);

  BudgetConfig config_;
  int64_t ticks_in_window_ = 0;
  int64_t messages_at_window_start_ = 0;
  double last_window_rate_ = 0.0;
  int64_t adjustments_ = 0;
};

}  // namespace kc

#endif  // KALMANCAST_SUPPRESSION_BUDGET_H_
