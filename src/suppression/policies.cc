#include "suppression/policies.h"

#include <cassert>

#include "common/chisq.h"
#include "linalg/decomp.h"
#include "obs/metrics.h"

namespace kc {

namespace {

/// Copies payload doubles into a Vector, validating length. Writes straight
/// into the destination's (usually inline) storage — no intermediate buffer.
Status PayloadToVector(const std::vector<double>& payload, size_t dims,
                       Vector* out) {
  if (payload.size() != dims) {
    return Status::InvalidArgument("correction payload has wrong size");
  }
  out->ResizeUninit(dims);
  for (size_t i = 0; i < dims; ++i) (*out)[i] = payload[i];
  return Status::Ok();
}

}  // namespace

// --------------------------------------------------------------- ValueCache

ValueCachePredictor::ValueCachePredictor(size_t dims)
    : dims_(dims), cached_(dims) {}

void ValueCachePredictor::Init(const Reading& first) {
  assert(first.value.size() == dims_);
  cached_ = first.value;
  last_observed_ = first;
}

std::vector<double> ValueCachePredictor::EncodeCorrection(
    const Reading& measured) const {
  return measured.value.data();
}

Status ValueCachePredictor::ApplyCorrection(int64_t /*seq*/, double /*time*/,
                                            const std::vector<double>& payload) {
  return PayloadToVector(payload, dims_, &cached_);
}

std::unique_ptr<Predictor> ValueCachePredictor::Clone() const {
  return std::make_unique<ValueCachePredictor>(dims_);
}

// ------------------------------------------------------------------- Linear

LinearPredictor::LinearPredictor(size_t dims, double dt)
    : dims_(dims), dt_(dt), base_(dims), slope_(dims) {}

void LinearPredictor::Init(const Reading& first) {
  assert(first.value.size() == dims_);
  base_ = first.value;
  slope_ = Vector(dims_);
  base_time_ = first.time;
  now_ = first.time;
  last_observed_ = first;
}

Vector LinearPredictor::Predict() const {
  return base_ + slope_ * (now_ - base_time_);
}

std::vector<double> LinearPredictor::EncodeCorrection(
    const Reading& measured) const {
  return measured.value.data();
}

Status LinearPredictor::ApplyCorrection(int64_t /*seq*/, double time,
                                        const std::vector<double>& payload) {
  Vector value;
  KC_RETURN_IF_ERROR(PayloadToVector(payload, dims_, &value));
  // Derive the new slope from the previous anchor — both replicas know it,
  // so the slope never has to be transmitted.
  double span = time - base_time_;
  if (span > 0.0) {
    slope_ = (value - base_) / span;
  } else {
    slope_ = Vector(dims_);
  }
  base_ = value;
  base_time_ = time;
  now_ = time;
  return Status::Ok();
}

std::vector<double> LinearPredictor::EncodeFullState() const {
  std::vector<double> buf;
  buf.reserve(2 + 2 * dims_);
  buf.push_back(base_time_);
  buf.push_back(now_);
  buf.insert(buf.end(), base_.data().begin(), base_.data().end());
  buf.insert(buf.end(), slope_.data().begin(), slope_.data().end());
  return buf;
}

Status LinearPredictor::ApplyFullState(const std::vector<double>& payload) {
  if (payload.size() != 2 + 2 * dims_) {
    return Status::InvalidArgument("linear full-state payload has wrong size");
  }
  base_time_ = payload[0];
  now_ = payload[1];
  for (size_t d = 0; d < dims_; ++d) {
    base_[d] = payload[2 + d];
    slope_[d] = payload[2 + dims_ + d];
  }
  return Status::Ok();
}

std::unique_ptr<Predictor> LinearPredictor::Clone() const {
  return std::make_unique<LinearPredictor>(dims_, dt_);
}

// --------------------------------------------------------------------- EWMA

EwmaPredictor::EwmaPredictor(size_t dims, double alpha)
    : dims_(dims), alpha_(alpha), level_(dims), cached_(dims) {}

void EwmaPredictor::Init(const Reading& first) {
  assert(first.value.size() == dims_);
  level_ = first.value;
  cached_ = first.value;
  last_observed_ = first;
}

void EwmaPredictor::ObserveLocal(const Reading& measured) {
  last_observed_ = measured;
  level_ = alpha_ * measured.value + (1.0 - alpha_) * level_;
}

std::vector<double> EwmaPredictor::EncodeCorrection(
    const Reading& /*measured*/) const {
  return level_.data();  // Ship the private smoothed level, not the raw z.
}

Status EwmaPredictor::ApplyCorrection(int64_t /*seq*/, double /*time*/,
                                      const std::vector<double>& payload) {
  return PayloadToVector(payload, dims_, &cached_);
}

std::vector<double> EwmaPredictor::EncodeFullState() const {
  std::vector<double> buf;
  buf.reserve(2 * dims_);
  buf.insert(buf.end(), level_.data().begin(), level_.data().end());
  buf.insert(buf.end(), cached_.data().begin(), cached_.data().end());
  return buf;
}

Status EwmaPredictor::ApplyFullState(const std::vector<double>& payload) {
  if (payload.size() != 2 * dims_) {
    return Status::InvalidArgument("ewma full-state payload has wrong size");
  }
  for (size_t d = 0; d < dims_; ++d) {
    level_[d] = payload[d];
    cached_[d] = payload[dims_ + d];
  }
  return Status::Ok();
}

std::unique_ptr<Predictor> EwmaPredictor::Clone() const {
  return std::make_unique<EwmaPredictor>(dims_, alpha_);
}

// ------------------------------------------------------------------- Kalman

KalmanPredictor::KalmanPredictor(Config config) : config_(std::move(config)) {
  assert(config_.model.Validate().ok());
  if (config_.outlier_gate_prob > 0.0 && config_.outlier_gate_prob < 1.0) {
    gate_threshold_ =
        ChiSquaredQuantile(config_.outlier_gate_prob, config_.model.obs_dim());
  }
}

void KalmanPredictor::Init(const Reading& first) {
  assert(first.value.size() == config_.model.obs_dim());
  // Lift the observation into state space. Our models' H matrices select
  // state components with unit rows, so H^T z places the observed values
  // in the right slots and leaves derivatives at zero.
  size_t n = config_.model.state_dim();
  Vector x0 = config_.model.h.Transposed() * first.value;
  Matrix p0 = Matrix::ScalarDiagonal(n, config_.init_var);
  shadow_.emplace(config_.model, x0, p0, config_.update_form);
  if (config_.sync_mode != SyncMode::kMeasurement) {
    private_.emplace(config_.model, x0, p0, config_.update_form);
  } else {
    private_.reset();
  }
  if (config_.adaptive.has_value()) {
    adaptive_.emplace(*config_.adaptive);
  } else {
    adaptive_.reset();
  }
  consecutive_rejects_ = 0;
  outliers_rejected_ = 0;
  last_nis_ = -1.0;
  last_observed_ = first;
}

void KalmanPredictor::Tick() {
  assert(shadow_.has_value());
  shadow_->Predict();
}

void KalmanPredictor::ObserveLocal(const Reading& measured) {
  last_observed_ = measured;
  if (!private_.has_value()) return;  // Measurement-sync mode.
  private_->Predict();

  if (gate_threshold_ > 0.0) {
    // Innovation gate: a reading wildly inconsistent with the filter's
    // prediction (NIS beyond the configured chi-squared quantile) is a
    // sensor outlier — skip the update so neither the estimate nor the
    // server is polluted by it. A run of rejections means the stream
    // really jumped; accept and let the filter re-converge.
    Vector nu = measured.value - private_->PredictObservation();
    private_->InnovationCovarianceInto(&gate_.s);
    if (Cholesky::FactorInto(gate_.s, &gate_.l)) {
      Cholesky::SolveInto(gate_.l, nu, &gate_.sinv_nu);
      double nis = nu.Dot(gate_.sinv_nu);
      last_nis_ = nis;  // A rejected reading is still a consistency sample.
      if (nis > gate_threshold_) {
        if (consecutive_rejects_ + 1 < config_.outlier_gate_limit) {
          ++consecutive_rejects_;
          ++outliers_rejected_;
          if (metrics_.outliers_rejected) metrics_.outliers_rejected->Inc();
          return;  // Predict-only this tick.
        }
        // The rejection run hit the limit: the stream genuinely jumped.
        if (metrics_.forced_accepts) metrics_.forced_accepts->Inc();
      }
    }
    consecutive_rejects_ = 0;
  }

  // A failed update (singular S) cannot happen with validated PD R; assert
  // in debug, skip the sample in release.
  Status s = private_->Update(measured.value);
  assert(s.ok());
  (void)s;
  last_nis_ = private_->last_nis();
  if (adaptive_.has_value()) adaptive_->AfterUpdate(*private_);
}

Vector KalmanPredictor::Target() const {
  if (private_.has_value()) return private_->PredictObservation();
  return last_observed_.value;
}

Vector KalmanPredictor::Predict() const {
  assert(shadow_.has_value());
  return shadow_->PredictObservation();
}

std::vector<double> KalmanPredictor::EncodeCorrection(
    const Reading& measured) const {
  switch (config_.sync_mode) {
    case SyncMode::kMeasurement:
      return measured.value.data();
    case SyncMode::kState:
      return private_->state().data();
    case SyncMode::kStateAndCov:
      return private_->SerializeState();
  }
  return {};
}

Status KalmanPredictor::ApplyCorrection(int64_t /*seq*/, double /*time*/,
                                        const std::vector<double>& payload) {
  if (!shadow_.has_value()) {
    return Status::FailedPrecondition("predictor not initialized");
  }
  size_t n = config_.model.state_dim();
  switch (config_.sync_mode) {
    case SyncMode::kMeasurement: {
      Vector z;
      KC_RETURN_IF_ERROR(PayloadToVector(payload, config_.model.obs_dim(), &z));
      return shadow_->Update(z);
    }
    case SyncMode::kState: {
      if (payload.size() != n) {
        return Status::InvalidArgument("state payload has wrong size");
      }
      // Overwrite the shadow's state; its covariance is irrelevant to
      // predictions (the server never runs Update in this mode).
      std::vector<double> buf = payload;
      const Matrix& p = shadow_->covariance();
      buf.insert(buf.end(), p.data().begin(), p.data().end());
      return shadow_->DeserializeState(buf);
    }
    case SyncMode::kStateAndCov:
      return shadow_->DeserializeState(payload);
  }
  return Status::Internal("unreachable");
}

std::vector<double> KalmanPredictor::EncodeFullState() const {
  // The shadow is the authoritative *shared* state: on the agent the
  // full-sync path corrects it from the private filter immediately before
  // encoding, and on a server replica it simply IS the replica's view
  // (the private filter there never observes anything).
  assert(shadow_.has_value());
  return shadow_->SerializeState();
}

Status KalmanPredictor::ApplyFullState(const std::vector<double>& payload) {
  if (!shadow_.has_value()) {
    return Status::FailedPrecondition("predictor not initialized");
  }
  if (metrics_.filter_resets) metrics_.filter_resets->Inc();
  return shadow_->DeserializeState(payload);
}

void KalmanPredictor::BindMetrics(obs::MetricRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics();
    return;
  }
  metrics_.outliers_rejected =
      registry->GetCounter("kc.kalman.outliers_rejected");
  metrics_.forced_accepts =
      registry->GetCounter("kc.kalman.gate_forced_accepts");
  metrics_.filter_resets = registry->GetCounter("kc.kalman.filter_resets");
}

std::unique_ptr<Predictor> KalmanPredictor::Clone() const {
  return std::make_unique<KalmanPredictor>(config_);
}

std::string KalmanPredictor::name() const {
  switch (config_.sync_mode) {
    case SyncMode::kState:
      return "kalman";
    case SyncMode::kStateAndCov:
      return "kalman_cov";
    case SyncMode::kMeasurement:
      return "kalman_meas";
  }
  return "kalman";
}

const KalmanFilter& KalmanPredictor::shadow_filter() const {
  assert(shadow_.has_value());
  return *shadow_;
}

const KalmanFilter& KalmanPredictor::private_filter() const {
  assert(private_.has_value());
  return *private_;
}

std::unique_ptr<Predictor> MakeDefaultKalmanPredictor(double process_var,
                                                      double obs_var) {
  KalmanPredictor::Config config;
  config.model = MakeRandomWalkModel(process_var, obs_var);
  config.adaptive = AdaptiveConfig{};
  return std::make_unique<KalmanPredictor>(std::move(config));
}

}  // namespace kc
