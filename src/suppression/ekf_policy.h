#ifndef KALMANCAST_SUPPRESSION_EKF_POLICY_H_
#define KALMANCAST_SUPPRESSION_EKF_POLICY_H_

#include <optional>

#include "kalman/ekf.h"
#include "suppression/predictor.h"

namespace kc {

/// Dual *extended* Kalman filter predictor: the suppression protocol over
/// a nonlinear state-space model (e.g. coordinated-turn vehicle
/// dynamics). State-sync only — the client runs a private EKF over every
/// measurement and ships (x, P) when the server-shadow's prediction
/// drifts beyond delta. Because EKF behaviour depends on the
/// linearization point, corrections always carry the covariance too, so
/// the shadow's next linearizations match the client's exactly.
class EkfPredictor : public Predictor {
 public:
  struct Config {
    NonlinearModel model;
    double init_var = 100.0;
    /// Maps the first observation to an initial state (e.g. put the first
    /// GPS fix into the position slots). Must be pure.
    std::function<Vector(const Vector&)> init_state;
  };

  explicit EkfPredictor(Config config);

  void Init(const Reading& first) override;
  void Tick() override;
  void ObserveLocal(const Reading& measured) override;
  Vector Target() const override;
  Vector Predict() const override;
  std::vector<double> EncodeCorrection(const Reading& measured) const override;
  Status ApplyCorrection(int64_t seq, double time,
                         const std::vector<double>& payload) override;
  std::vector<double> EncodeFullState() const override;
  Status ApplyFullState(const std::vector<double>& payload) override;
  std::unique_ptr<Predictor> Clone() const override;
  std::string name() const override { return "ekf"; }
  size_t dims() const override { return config_.model.obs_dim; }

  const ExtendedKalmanFilter& shadow_filter() const;
  const ExtendedKalmanFilter& private_filter() const;

 private:
  Config config_;
  std::optional<ExtendedKalmanFilter> shadow_;
  std::optional<ExtendedKalmanFilter> private_;
};

/// Convenience: a coordinated-turn EkfPredictor for planar vehicle
/// streams observing [x, y]; initializes position from the first fix with
/// zero speed/heading/turn-rate.
std::unique_ptr<Predictor> MakeCoordinatedTurnPredictor(double dt,
                                                        double obs_var);

}  // namespace kc

#endif  // KALMANCAST_SUPPRESSION_EKF_POLICY_H_
