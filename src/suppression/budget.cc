#include "suppression/budget.h"

#include <algorithm>
#include <cmath>

namespace kc {

BudgetController::BudgetController(BudgetConfig config) : config_(config) {
  config_.window = std::max<int64_t>(config_.window, 1);
}

int64_t BudgetController::MessagesSent(const SourceAgent& agent) {
  const AgentStats& s = agent.stats();
  return s.corrections + s.full_syncs;
}

void BudgetController::OnTick(SourceAgent* agent) {
  ++ticks_in_window_;
  if (ticks_in_window_ < config_.window) return;

  int64_t sent = MessagesSent(*agent);
  double rate = static_cast<double>(sent - messages_at_window_start_) /
                static_cast<double>(config_.window);
  last_window_rate_ = rate;
  messages_at_window_start_ = sent;
  ticks_in_window_ = 0;

  // Multiplicative control in log space: over budget -> grow delta
  // (cheaper, coarser); under budget -> shrink delta (spend the slack on
  // precision). A zero observed rate maps to the maximum shrink step.
  double ratio = rate / config_.target_rate;
  double step;
  if (ratio <= 0.0) {
    step = 1.0 / config_.max_step;
  } else {
    step = std::pow(ratio, config_.gamma);
    step = std::clamp(step, 1.0 / config_.max_step, config_.max_step);
  }
  double new_delta =
      std::clamp(agent->delta() * step, config_.min_delta, config_.max_delta);
  agent->set_delta(new_delta);
  ++adjustments_;
}

}  // namespace kc
