#include "suppression/imm_policy.h"

#include <cassert>

#include "obs/metrics.h"

namespace kc {

ImmPredictor::ImmPredictor(Config config) : config_(std::move(config)) {
  assert(config_.models.size() >= 2);
  for (const auto& m : config_.models) {
    assert(m.Validate().ok());
    assert(m.state_dim() == config_.models.front().state_dim());
    assert(m.obs_dim() == config_.models.front().obs_dim());
    (void)m;
  }
}

Imm ImmPredictor::BuildImm(const Reading& first) const {
  size_t n = config_.models.front().state_dim();
  Vector x0 = config_.models.front().h.Transposed() * first.value;
  Matrix p0 = Matrix::ScalarDiagonal(n, config_.init_var);
  std::vector<KalmanFilter> filters;
  filters.reserve(config_.models.size());
  for (const auto& m : config_.models) {
    filters.emplace_back(m, x0, p0);
  }
  return Imm(std::move(filters), config_.transition, config_.initial_prob);
}

void ImmPredictor::Init(const Reading& first) {
  assert(first.value.size() == dims());
  shadow_.emplace(BuildImm(first));
  private_.emplace(BuildImm(first));
  last_mode_ = DominantMode();
  model_switches_ = 0;
  last_observed_ = first;
}

int ImmPredictor::DominantMode() const {
  const Vector& mu = private_->mode_probabilities();
  int best = 0;
  for (size_t m = 1; m < mu.size(); ++m) {
    if (mu[m] > mu[best]) best = static_cast<int>(m);
  }
  return best;
}

void ImmPredictor::Tick() {
  assert(shadow_.has_value());
  shadow_->Predict();
}

void ImmPredictor::ObserveLocal(const Reading& measured) {
  last_observed_ = measured;
  assert(private_.has_value());
  private_->Predict();
  Status s = private_->Update(measured.value);
  assert(s.ok());
  (void)s;
  int mode = DominantMode();
  if (mode != last_mode_) {
    last_mode_ = mode;
    ++model_switches_;
    if (switch_counter_ != nullptr) switch_counter_->Inc();
  }
}

Vector ImmPredictor::Target() const {
  assert(private_.has_value());
  return private_->PredictObservation();
}

Vector ImmPredictor::Predict() const {
  assert(shadow_.has_value());
  return shadow_->PredictObservation();
}

std::vector<double> ImmPredictor::EncodeCorrection(
    const Reading& /*measured*/) const {
  assert(private_.has_value());
  return private_->SerializeState();
}

Status ImmPredictor::ApplyCorrection(int64_t /*seq*/, double /*time*/,
                                     const std::vector<double>& payload) {
  if (!shadow_.has_value()) {
    return Status::FailedPrecondition("predictor not initialized");
  }
  return shadow_->DeserializeState(payload);
}

std::vector<double> ImmPredictor::EncodeFullState() const {
  // Shadow = the shared replicated state (see KalmanPredictor note).
  assert(shadow_.has_value());
  return shadow_->SerializeState();
}

Status ImmPredictor::ApplyFullState(const std::vector<double>& payload) {
  return ApplyCorrection(0, 0.0, payload);
}

void ImmPredictor::BindMetrics(obs::MetricRegistry* registry) {
  switch_counter_ = registry == nullptr
                        ? nullptr
                        : registry->GetCounter("kc.imm.model_switches");
}

std::unique_ptr<Predictor> ImmPredictor::Clone() const {
  return std::make_unique<ImmPredictor>(config_);
}

const Imm& ImmPredictor::private_imm() const {
  assert(private_.has_value());
  return *private_;
}

const Imm& ImmPredictor::shadow_imm() const {
  assert(shadow_.has_value());
  return *shadow_;
}

std::unique_ptr<Predictor> MakeTwoModeImmPredictor(double quiet_var,
                                                   double loud_var,
                                                   double obs_var,
                                                   double sticky) {
  ImmPredictor::Config config;
  config.models = {MakeRandomWalkModel(quiet_var, obs_var),
                   MakeRandomWalkModel(loud_var, obs_var)};
  config.transition =
      Matrix{{sticky, 1.0 - sticky}, {1.0 - sticky, sticky}};
  config.initial_prob = Vector{0.5, 0.5};
  return std::make_unique<ImmPredictor>(std::move(config));
}

}  // namespace kc
