#include "suppression/agent.h"

#include <cassert>
#include <cmath>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace kc {

namespace {

/// L-infinity distance between measurement and prediction.
double MaxAbsError(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

}  // namespace

SourceAgent::SourceAgent(int32_t source_id, std::unique_ptr<Predictor> predictor,
                         AgentConfig config, Channel* channel)
    : source_id_(source_id),
      predictor_(std::move(predictor)),
      config_(config),
      channel_(channel) {
  assert(predictor_ != nullptr && channel_ != nullptr);
}

void SourceAgent::BindMetrics(obs::MetricRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics();
    predictor_->BindMetrics(nullptr);
    return;
  }
  metrics_.decisions = registry->GetCounter("kc.agent.decisions");
  metrics_.suppressed = registry->GetCounter("kc.agent.suppressed");
  metrics_.corrections = registry->GetCounter("kc.agent.corrections");
  metrics_.full_syncs = registry->GetCounter("kc.agent.full_syncs");
  metrics_.heartbeats = registry->GetCounter("kc.agent.heartbeats");
  metrics_.resyncs_served = registry->GetCounter("kc.agent.resyncs_served");
  // Innovation magnitudes span noise-floor jitter to mode-change jumps;
  // geometric buckets cover that range with constant relative resolution.
  metrics_.innovation = registry->GetHistogram(
      "kc.agent.innovation", obs::Buckets::Exponential(1e-3, 4.0, 12));
  predictor_->BindMetrics(registry);
}

void SourceAgent::BindObservability(obs::SourceRecorder* recorder,
                                    obs::SourceHealth* health) {
  recorder_ = recorder;
  health_ = health;
  seen_outliers_ = predictor_->OutliersRejected();
}

Status SourceAgent::Offer(const Reading& measured) {
  KC_TRACE_SCOPE("agent.offer");
  if (measured.value.size() != predictor_->dims()) {
    return Status::InvalidArgument("reading dimension mismatch");
  }
  // A NaN/Inf reading (sensor fault, corrupt trace) must not poison the
  // replicated procedures — once inside a filter it never washes out.
  for (size_t d = 0; d < measured.value.size(); ++d) {
    if (!std::isfinite(measured.value[d])) {
      return Status::InvalidArgument("non-finite reading rejected");
    }
  }
  ++stats_.ticks;

  if (!initialized_) {
    KC_RETURN_IF_ERROR(SendInit(measured));
    predictor_->Init(measured);
    initialized_ = true;
    // INIT anchors the replica completely; any queued resync is moot.
    resync_pending_ = false;
    reinit_pending_ = false;
    return Status::Ok();
  }

  if (reinit_pending_) {
    // The replica reported it never saw INIT (lost on the wire): restart
    // both predictors from this measurement so the pair re-enters
    // lockstep from a shared anchor.
    reinit_pending_ = false;
    resync_pending_ = false;
    KC_RETURN_IF_ERROR(SendInit(measured));
    predictor_->Init(measured);
    ++stats_.resyncs_served;
    if (metrics_.resyncs_served != nullptr) metrics_.resyncs_served->Inc();
    if (recorder_ != nullptr) {
      recorder_->Record(stats_.ticks, obs::RecorderEventKind::kResyncServed,
                        next_wire_seq_ - 1);
    }
    silent_ticks_ = 0;
    return Status::Ok();
  }

  predictor_->Tick();
  predictor_->ObserveLocal(measured);
  double err = MaxAbsError(predictor_->Target(), predictor_->Predict());
  if (metrics_.decisions != nullptr) {
    metrics_.decisions->Inc();
    metrics_.innovation->Record(err);
  }
  if (health_ != nullptr) {
    health_->OnTick();
    health_->OnNis(predictor_->LastNis());
  }
  if (recorder_ != nullptr) {
    int64_t outliers = predictor_->OutliersRejected();
    if (outliers != seen_outliers_) {
      seen_outliers_ = outliers;
      recorder_->Record(stats_.ticks, obs::RecorderEventKind::kGateOutlier,
                        measured.seq, predictor_->LastNis());
    }
  }
  if (resync_pending_) {
    resync_pending_ = false;
    KC_RETURN_IF_ERROR(ServeResync(measured));
    if (health_ != nullptr) health_->OnDecision(/*suppressed=*/false);
    if (recorder_ != nullptr) {
      recorder_->Record(stats_.ticks, obs::RecorderEventKind::kResyncServed,
                        next_wire_seq_ - 1, err);
    }
    silent_ticks_ = 0;
    return Status::Ok();
  }
  if (err > config_.delta) {
    bool full = config_.always_full_state ||
                (config_.full_sync_every > 0 &&
                 (stats_.corrections + stats_.full_syncs + 1) %
                         config_.full_sync_every ==
                     0);
    KC_RETURN_IF_ERROR(SendCorrection(measured, full));
    if (health_ != nullptr) health_->OnDecision(/*suppressed=*/false);
    if (recorder_ != nullptr) {
      recorder_->Record(stats_.ticks,
                        full ? obs::RecorderEventKind::kFullSync
                             : obs::RecorderEventKind::kCorrection,
                        next_wire_seq_ - 1, err);
    }
    silent_ticks_ = 0;
    return Status::Ok();
  }

  ++stats_.suppressed;
  if (metrics_.suppressed != nullptr) metrics_.suppressed->Inc();
  if (health_ != nullptr) health_->OnDecision(/*suppressed=*/true);
  if (recorder_ != nullptr) {
    recorder_->Record(stats_.ticks, obs::RecorderEventKind::kSuppress,
                      measured.seq, err);
  }
  ++silent_ticks_;
  if (config_.heartbeat_every > 0 && silent_ticks_ >= config_.heartbeat_every) {
    Message hb;
    hb.source_id = source_id_;
    hb.type = MessageType::kHeartbeat;
    hb.seq = measured.seq;
    hb.time = measured.time;
    hb.wire_seq = next_wire_seq_++;
    hb.flow_id = CausalFlowId(source_id_, hb.wire_seq);
    KC_TRACE_SCOPE_FLOW("agent.send", hb.flow_id);
    KC_RETURN_IF_ERROR(channel_->Send(hb));
    ++stats_.heartbeats;
    if (metrics_.heartbeats != nullptr) metrics_.heartbeats->Inc();
    if (recorder_ != nullptr) {
      recorder_->Record(stats_.ticks, obs::RecorderEventKind::kHeartbeat,
                        hb.wire_seq);
    }
    silent_ticks_ = 0;
  }
  return Status::Ok();
}

Status SourceAgent::OnControl(const Message& msg) {
  if (msg.source_id != source_id_) {
    return Status::InvalidArgument("control message routed to wrong agent");
  }
  switch (msg.type) {
    case MessageType::kSetBound: {
      if (msg.payload.empty() || msg.payload[0] <= 0.0) {
        return Status::InvalidArgument("SET_BOUND needs a positive bound");
      }
      config_.delta = msg.payload[0];
      return Status::Ok();
    }
    case MessageType::kResyncRequest: {
      // payload[0] == 0.0 means the replica never saw INIT (it was lost);
      // only a fresh INIT can help it. Anything else gets a FULL_SYNC.
      if (!msg.payload.empty() && msg.payload[0] == 0.0) {
        reinit_pending_ = true;
      } else {
        resync_pending_ = true;
      }
      return Status::Ok();
    }
    default:
      return Status::InvalidArgument("unexpected control message type");
  }
}

Status SourceAgent::SendInit(const Reading& measured) {
  Message msg;
  msg.source_id = source_id_;
  msg.type = MessageType::kInit;
  msg.seq = measured.seq;
  msg.time = measured.time;
  msg.payload.reserve(1 + measured.value.size());
  msg.payload.push_back(config_.delta);
  msg.payload.insert(msg.payload.end(), measured.value.data().begin(),
                     measured.value.data().end());
  msg.wire_seq = next_wire_seq_++;
  msg.flow_id = CausalFlowId(source_id_, msg.wire_seq);
  if (recorder_ != nullptr) {
    recorder_->Record(stats_.ticks, obs::RecorderEventKind::kInit,
                      msg.wire_seq, config_.delta);
  }
  KC_TRACE_SCOPE_FLOW("agent.send", msg.flow_id);
  return channel_->Send(msg);
}

Status SourceAgent::ServeResync(const Reading& measured) {
  // Probe full-state support *before* SendCorrection: the full-sync path
  // folds the measurement into the predictor before it would discover the
  // encoding is unsupported, and a fallback retry would then apply the
  // correction twice.
  bool full = !predictor_->EncodeFullState().empty();
  KC_RETURN_IF_ERROR(SendCorrection(measured, full));
  ++stats_.resyncs_served;
  if (metrics_.resyncs_served != nullptr) metrics_.resyncs_served->Inc();
  return Status::Ok();
}

Status SourceAgent::SendCorrection(const Reading& measured, bool full_state) {
  Message msg;
  msg.source_id = source_id_;
  msg.seq = measured.seq;
  msg.time = measured.time;
  msg.payload.push_back(config_.delta);

  if (full_state) {
    // Fold the measurement in locally first, then ship the resulting
    // complete predictor state; the server overwrites its replica with it.
    KC_RETURN_IF_ERROR(predictor_->ApplyCorrection(
        measured.seq, measured.time, predictor_->EncodeCorrection(measured)));
    std::vector<double> state = predictor_->EncodeFullState();
    if (state.empty()) {
      return Status::Unimplemented("predictor does not support full sync");
    }
    msg.type = MessageType::kFullSync;
    msg.payload.insert(msg.payload.end(), state.begin(), state.end());
    msg.wire_seq = next_wire_seq_++;
    msg.flow_id = CausalFlowId(source_id_, msg.wire_seq);
    KC_TRACE_SCOPE_FLOW("agent.send", msg.flow_id);
    KC_RETURN_IF_ERROR(channel_->Send(msg));
    ++stats_.full_syncs;
    if (metrics_.full_syncs != nullptr) metrics_.full_syncs->Inc();
    return Status::Ok();
  }

  std::vector<double> correction = predictor_->EncodeCorrection(measured);
  msg.type = MessageType::kCorrection;
  msg.payload.insert(msg.payload.end(), correction.begin(), correction.end());
  // Apply locally exactly as the server will; replicas stay in lockstep.
  KC_RETURN_IF_ERROR(
      predictor_->ApplyCorrection(measured.seq, measured.time, correction));
  msg.wire_seq = next_wire_seq_++;
  msg.flow_id = CausalFlowId(source_id_, msg.wire_seq);
  KC_TRACE_SCOPE_FLOW("agent.send", msg.flow_id);
  KC_RETURN_IF_ERROR(channel_->Send(msg));
  ++stats_.corrections;
  if (metrics_.corrections != nullptr) metrics_.corrections->Inc();
  return Status::Ok();
}

}  // namespace kc
