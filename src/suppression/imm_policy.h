#ifndef KALMANCAST_SUPPRESSION_IMM_POLICY_H_
#define KALMANCAST_SUPPRESSION_IMM_POLICY_H_

#include <optional>
#include <vector>

#include "kalman/imm.h"
#include "suppression/predictor.h"

namespace kc {

namespace obs {
class Counter;
}  // namespace obs

/// Dual interacting-multiple-model predictor: the suppression protocol
/// over an IMM bank (e.g. a quiet low-Q mode and a maneuvering high-Q
/// mode of the same state space).
///
/// Where the adaptive single filter re-learns Q over a window, the IMM
/// re-weights pre-built mode hypotheses within a few ticks — faster on
/// streams that flip between behavioural modes. Client side runs a
/// private IMM over every measurement; corrections ship the complete IMM
/// state (mode probabilities + every member filter's moments), making
/// the contract exact against the combined estimate.
class ImmPredictor : public Predictor {
 public:
  struct Config {
    /// Mode models; all must share state and observation dimensions.
    std::vector<StateSpaceModel> models;
    /// Markov mode-transition matrix (rows sum to 1).
    Matrix transition;
    /// Prior mode probabilities (sums to 1).
    Vector initial_prob;
    double init_var = 100.0;
  };

  explicit ImmPredictor(Config config);

  void Init(const Reading& first) override;
  void Tick() override;
  void ObserveLocal(const Reading& measured) override;
  Vector Target() const override;
  Vector Predict() const override;
  std::vector<double> EncodeCorrection(const Reading& measured) const override;
  Status ApplyCorrection(int64_t seq, double time,
                         const std::vector<double>& payload) override;
  std::vector<double> EncodeFullState() const override;
  Status ApplyFullState(const std::vector<double>& payload) override;
  /// Registers kc.imm.model_switches (dominant private-bank mode changes)
  /// on the arena and mirrors the event onto it.
  void BindMetrics(obs::MetricRegistry* registry) override;
  std::unique_ptr<Predictor> Clone() const override;
  std::string name() const override { return "imm"; }
  size_t dims() const override { return config_.models.front().obs_dim(); }

  const Imm& private_imm() const;
  const Imm& shadow_imm() const;

  /// Times the private bank's most-probable mode changed (source side).
  int64_t model_switches() const { return model_switches_; }

 private:
  Imm BuildImm(const Reading& first) const;
  /// Index of the private bank's most probable mode (first wins ties).
  int DominantMode() const;

  Config config_;
  std::optional<Imm> shadow_;
  std::optional<Imm> private_;
  int last_mode_ = -1;
  int64_t model_switches_ = 0;
  obs::Counter* switch_counter_ = nullptr;
};

/// Convenience: a scalar quiet/maneuver two-mode IMM predictor over
/// random-walk dynamics. `quiet_var`/`loud_var` are the two process
/// variances; `obs_var` the shared observation noise; `sticky` the
/// self-transition probability.
std::unique_ptr<Predictor> MakeTwoModeImmPredictor(double quiet_var,
                                                   double loud_var,
                                                   double obs_var,
                                                   double sticky = 0.97);

}  // namespace kc

#endif  // KALMANCAST_SUPPRESSION_IMM_POLICY_H_
