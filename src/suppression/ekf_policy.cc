#include "suppression/ekf_policy.h"

#include <cassert>

namespace kc {

EkfPredictor::EkfPredictor(Config config) : config_(std::move(config)) {
  assert(config_.model.Validate().ok());
  assert(config_.init_state != nullptr);
}

void EkfPredictor::Init(const Reading& first) {
  assert(first.value.size() == config_.model.obs_dim);
  Vector x0 = config_.init_state(first.value);
  assert(x0.size() == config_.model.state_dim);
  Matrix p0 = Matrix::ScalarDiagonal(config_.model.state_dim, config_.init_var);
  shadow_.emplace(config_.model, x0, p0);
  private_.emplace(config_.model, x0, p0);
  last_observed_ = first;
}

void EkfPredictor::Tick() {
  assert(shadow_.has_value());
  shadow_->Predict();
}

void EkfPredictor::ObserveLocal(const Reading& measured) {
  last_observed_ = measured;
  assert(private_.has_value());
  private_->Predict();
  Status s = private_->Update(measured.value);
  assert(s.ok());
  (void)s;
}

Vector EkfPredictor::Target() const {
  assert(private_.has_value());
  return private_->PredictObservation();
}

Vector EkfPredictor::Predict() const {
  assert(shadow_.has_value());
  return shadow_->PredictObservation();
}

std::vector<double> EkfPredictor::EncodeCorrection(
    const Reading& /*measured*/) const {
  assert(private_.has_value());
  return private_->SerializeState();
}

Status EkfPredictor::ApplyCorrection(int64_t /*seq*/, double /*time*/,
                                     const std::vector<double>& payload) {
  if (!shadow_.has_value()) {
    return Status::FailedPrecondition("predictor not initialized");
  }
  return shadow_->DeserializeState(payload);
}

std::vector<double> EkfPredictor::EncodeFullState() const {
  // Shadow = the shared replicated state (see KalmanPredictor note).
  assert(shadow_.has_value());
  return shadow_->SerializeState();
}

Status EkfPredictor::ApplyFullState(const std::vector<double>& payload) {
  return ApplyCorrection(0, 0.0, payload);
}

std::unique_ptr<Predictor> EkfPredictor::Clone() const {
  return std::make_unique<EkfPredictor>(config_);
}

const ExtendedKalmanFilter& EkfPredictor::shadow_filter() const {
  assert(shadow_.has_value());
  return *shadow_;
}

const ExtendedKalmanFilter& EkfPredictor::private_filter() const {
  assert(private_.has_value());
  return *private_;
}

std::unique_ptr<Predictor> MakeCoordinatedTurnPredictor(double dt,
                                                        double obs_var) {
  EkfPredictor::Config config;
  config.model =
      MakeCoordinatedTurnModel(dt, /*q_pos=*/0.01, /*q_speed=*/0.05,
                               /*q_turn=*/1e-4, obs_var);
  config.init_state = [](const Vector& z) {
    Vector x0(5);
    x0[0] = z[0];
    x0[1] = z[1];
    return x0;
  };
  return std::make_unique<EkfPredictor>(std::move(config));
}

}  // namespace kc
