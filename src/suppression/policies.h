#ifndef KALMANCAST_SUPPRESSION_POLICIES_H_
#define KALMANCAST_SUPPRESSION_POLICIES_H_

#include <memory>
#include <optional>

#include "kalman/adaptive.h"
#include "kalman/kalman_filter.h"
#include "suppression/predictor.h"

namespace kc {

namespace obs {
class Counter;
}  // namespace obs

/// Olston-style approximate caching — the paper's principal baseline.
/// The server holds the last shipped value; prediction is constant between
/// corrections. Correction payload: the new value. Contract-exact: after a
/// correction the server holds the measurement itself.
class ValueCachePredictor : public Predictor {
 public:
  explicit ValueCachePredictor(size_t dims = 1);

  void Init(const Reading& first) override;
  void Tick() override {}
  Vector Predict() const override { return cached_; }
  std::vector<double> EncodeCorrection(const Reading& measured) const override;
  Status ApplyCorrection(int64_t seq, double time,
                         const std::vector<double>& payload) override;
  std::vector<double> EncodeFullState() const override { return cached_.data(); }
  Status ApplyFullState(const std::vector<double>& payload) override {
    return ApplyCorrection(0, 0.0, payload);
  }
  std::unique_ptr<Predictor> Clone() const override;
  std::string name() const override { return "value_cache"; }
  size_t dims() const override { return dims_; }

 private:
  size_t dims_;
  Vector cached_;
};

/// Two-point dead reckoning — the fixed linear-prediction baseline.
/// Prediction extrapolates the line through the last two corrections; the
/// slope is derived identically on both replicas from the shipped values,
/// so the payload is no bigger than value caching's. Contract-exact.
class LinearPredictor : public Predictor {
 public:
  /// `dt` must equal the stream's tick spacing.
  explicit LinearPredictor(size_t dims = 1, double dt = 1.0);

  void Init(const Reading& first) override;
  void Tick() override { now_ += dt_; }
  Vector Predict() const override;
  std::vector<double> EncodeCorrection(const Reading& measured) const override;
  Status ApplyCorrection(int64_t seq, double time,
                         const std::vector<double>& payload) override;
  /// [base_time, now, base..., slope...] — the complete extrapolator.
  std::vector<double> EncodeFullState() const override;
  Status ApplyFullState(const std::vector<double>& payload) override;
  std::unique_ptr<Predictor> Clone() const override;
  std::string name() const override { return "linear"; }
  size_t dims() const override { return dims_; }

 private:
  size_t dims_;
  double dt_;
  double now_ = 0.0;
  double base_time_ = 0.0;
  Vector base_;
  Vector slope_;
};

/// Client-side exponential smoothing: the source maintains a private EWMA
/// of its measurements (the protected Target()); the server caches the last
/// shipped level. Resists shipping corrections for pure noise. Corrections
/// carry the private level, so the contract is exact against the smoothed
/// signal.
class EwmaPredictor : public Predictor {
 public:
  explicit EwmaPredictor(size_t dims = 1, double alpha = 0.5);

  void Init(const Reading& first) override;
  void Tick() override {}
  void ObserveLocal(const Reading& measured) override;
  Vector Target() const override { return level_; }
  Vector Predict() const override { return cached_; }
  std::vector<double> EncodeCorrection(const Reading& measured) const override;
  Status ApplyCorrection(int64_t seq, double time,
                         const std::vector<double>& payload) override;
  /// [level..., cached...] — private smoother plus server-visible hold.
  std::vector<double> EncodeFullState() const override;
  Status ApplyFullState(const std::vector<double>& payload) override;
  std::unique_ptr<Predictor> Clone() const override;
  std::string name() const override { return "ewma"; }
  size_t dims() const override { return dims_; }

 private:
  size_t dims_;
  double alpha_;
  Vector level_;   ///< Client-private smoothed signal.
  Vector cached_;  ///< Server-visible shipped level.
};

/// The paper's contribution: a dual Kalman filter.
///
/// State-sync modes (the default, matching the paper's "cache a dynamic
/// procedure" semantics): the source runs a private filter over every
/// measurement; the server replica predicts by pure time-updates of the
/// last shipped state; when the replica's prediction drifts more than
/// delta from the private estimate, the source ships its state and the two
/// coincide again — the contract is exact against the filtered signal.
///
/// Measurement-sync mode (E9 ablation, Olston-adjacent): corrections carry
/// the raw observation and both replicas fold it in with an identical
/// Update(); cheapest payload, but the post-update residual can briefly
/// exceed delta on jumps.
class KalmanPredictor : public Predictor {
 public:
  /// What a correction carries and how replicas resynchronize.
  enum class SyncMode {
    kState,        ///< Ship x only (server ignores covariance). Default.
    kStateAndCov,  ///< Ship x and P (server can report uncertainty).
    kMeasurement,  ///< Ship z; both replicas Update(z).
  };

  struct Config {
    StateSpaceModel model;
    SyncMode sync_mode = SyncMode::kState;
    /// Initial state variance put on every state component at Init.
    double init_var = 100.0;
    /// Innovation-based adaptation of the private filter (client side).
    std::optional<AdaptiveConfig> adaptive;
    KalmanFilter::UpdateForm update_form = KalmanFilter::UpdateForm::kJoseph;
    /// If > 0 (e.g. 0.999), readings whose NIS against the private filter
    /// exceeds this chi-squared quantile are treated as sensor outliers:
    /// skipped by the filter rather than shipped to the server (state-sync
    /// modes only). A run of `outlier_gate_limit` consecutive rejections
    /// is accepted as a genuine jump, so the gate cannot wedge the filter.
    double outlier_gate_prob = 0.0;
    int outlier_gate_limit = 3;
  };

  explicit KalmanPredictor(Config config);

  void Init(const Reading& first) override;
  void Tick() override;
  void ObserveLocal(const Reading& measured) override;
  Vector Target() const override;
  Vector Predict() const override;
  std::vector<double> EncodeCorrection(const Reading& measured) const override;
  Status ApplyCorrection(int64_t seq, double time,
                         const std::vector<double>& payload) override;
  std::vector<double> EncodeFullState() const override;
  Status ApplyFullState(const std::vector<double>& payload) override;
  /// Registers kc.kalman.{outliers_rejected,gate_forced_accepts,
  /// filter_resets} on the arena and mirrors those events onto it.
  void BindMetrics(obs::MetricRegistry* registry) override;
  /// NIS of the last ObserveLocal reading against the private filter —
  /// the gate's statistic when gating ran, the update's otherwise; -1 in
  /// measurement-sync mode (no private filter).
  double LastNis() const override { return last_nis_; }
  int64_t OutliersRejected() const override { return outliers_rejected_; }
  std::unique_ptr<Predictor> Clone() const override;
  std::string name() const override;
  size_t dims() const override { return config_.model.obs_dim(); }

  /// The replicated (server-view) filter.
  const KalmanFilter& shadow_filter() const;
  /// The client's private filter (only meaningful on the source side and
  /// in state-sync modes).
  const KalmanFilter& private_filter() const;

  const Config& config() const { return config_; }
  /// Readings rejected by the innovation gate so far (source side).
  int64_t outliers_rejected() const { return outliers_rejected_; }

 private:
  /// Scratch for the innovation gate in ObserveLocal, reused across ticks
  /// so the gate check performs zero heap allocations.
  struct GateScratch {
    Matrix s;        ///< Innovation covariance.
    Matrix l;        ///< Cholesky factor of s.
    Vector sinv_nu;  ///< S^{-1} nu.
  };

  /// Arena counter handles, cached at bind time; null until BindMetrics.
  struct Metrics {
    obs::Counter* outliers_rejected = nullptr;
    obs::Counter* forced_accepts = nullptr;
    obs::Counter* filter_resets = nullptr;
  };

  Config config_;
  GateScratch gate_;
  Metrics metrics_;
  double gate_threshold_ = 0.0;  ///< Chi-squared NIS cutoff (0 = no gate).
  int consecutive_rejects_ = 0;
  int64_t outliers_rejected_ = 0;
  double last_nis_ = -1.0;  ///< See LastNis().
  /// The server-view procedure: advanced by Tick(), overwritten (or
  /// Update()d in measurement mode) by corrections. Present on both sides.
  std::optional<KalmanFilter> shadow_;
  /// Client-only full filter over every measurement (state-sync modes).
  std::optional<KalmanFilter> private_;
  std::optional<AdaptiveNoiseEstimator> adaptive_;
};

/// Convenience factory: a scalar state-sync dual-KF predictor over a
/// random-walk model with adaptive process noise — the recommended default
/// for unknown scalar streams.
std::unique_ptr<Predictor> MakeDefaultKalmanPredictor(double process_var,
                                                      double obs_var);

}  // namespace kc

#endif  // KALMANCAST_SUPPRESSION_POLICIES_H_
