#ifndef KALMANCAST_SUPPRESSION_REPLICA_H_
#define KALMANCAST_SUPPRESSION_REPLICA_H_

#include <functional>
#include <memory>

#include "common/status.h"
#include "net/message.h"
#include "suppression/predictor.h"

namespace kc {

namespace obs {
class Counter;
class MetricRegistry;
class SourceRecorder;
class SourceHealth;
}  // namespace obs

/// Loss-tolerant recovery knobs for a server replica. Disabled by
/// default, in which case the replica behaves exactly as the lossless
/// protocol assumes (no wire-seq tracking, no resync traffic, no bound
/// widening). All thresholds are in ticks and the whole state machine is
/// RNG-free, so recovery never perturbs the fleet's determinism contract.
struct ReplicaRecoveryConfig {
  bool enabled = false;
  /// Wire-sequence gap events (lost uplink messages) tolerated since the
  /// last sync before the replica suspects desync. 1 = any gap triggers.
  int64_t max_gap_events = 1;
  /// Silence escalation: with no message (of any type) for more than this
  /// many replica ticks, suspect a dead link or partition and request
  /// resync. 0 disables the escalation; deployments should keep it above
  /// the agent's heartbeat_every.
  int64_t suspect_after_silent_ticks = 0;
  /// Resync-request backoff: the first retry fires backoff_initial_ticks
  /// after the initial request, then doubles up to backoff_max_ticks.
  int64_t backoff_initial_ticks = 4;
  int64_t backoff_max_ticks = 256;
  /// While desynced (quarantined) the replica reports bound() widened by
  /// this factor: queries stay answerable but honestly degraded instead
  /// of silently wrong. Must be >= 1.
  double quarantine_bound_factor = 8.0;
};

/// The server half of the suppression protocol: the cached dynamic
/// procedure that answers queries for one source without contacting it.
///
/// Tick() advances the predictor clock once per stream tick; OnMessage()
/// folds in whatever the source ships. Between messages, Value() returns
/// the prediction, which the protocol guarantees is within bound() of the
/// source's measurements on a lossless channel. With recovery enabled
/// (SetRecovery), the replica detects lost uplink messages via wire-seq
/// gaps and silence, quarantines itself (widened bound, desynced() true),
/// and emits RESYNC_REQUEST control messages with exponential backoff
/// until a FULL_SYNC or INIT re-anchors it.
class ServerReplica {
 public:
  /// Outbound control hook (RESYNC_REQUEST). Installed by the server; the
  /// replica never fails on a lost/undeliverable request — backoff simply
  /// retries.
  using ControlSender = std::function<void(const Message&)>;

  /// `predictor` must be a fresh Clone() of the source's predictor.
  ServerReplica(int32_t source_id, std::unique_ptr<Predictor> predictor);

  /// Advances one stream tick (predictor no-op before INIT arrives) and,
  /// with recovery enabled, runs gap/silence escalation and emits due
  /// RESYNC_REQUESTs through the control sender.
  void Tick();

  /// Applies a message from this replica's source. Messages for other
  /// sources are rejected.
  Status OnMessage(const Message& msg);

  /// Enables/updates loss-tolerant recovery for this replica.
  void SetRecovery(const ReplicaRecoveryConfig& config);
  const ReplicaRecoveryConfig& recovery() const { return recovery_; }

  /// Installs the downlink used to emit RESYNC_REQUEST control messages.
  void SetControlSender(ControlSender sender) {
    control_sender_ = std::move(sender);
  }

  bool initialized() const { return initialized_; }
  int32_t source_id() const { return source_id_; }

  /// Current bounded estimate of the source value. Requires initialized().
  Vector Value() const { return predictor_->Predict(); }

  /// Precision bound currently in force: the source's declared bound,
  /// widened by the quarantine factor while desynced.
  double bound() const {
    return desynced_ ? delta_ * recovery_.quarantine_bound_factor : delta_;
  }
  /// The bound the source declared, regardless of quarantine.
  double declared_bound() const { return delta_; }

  /// True while the replica suspects it has diverged from the source
  /// (wire-seq gap or silence escalation) and awaits a resync.
  bool desynced() const { return desynced_; }

  /// Bookkeeping for staleness/liveness monitoring.
  int64_t last_heard_seq() const { return last_heard_seq_; }
  double last_heard_time() const { return last_heard_time_; }
  /// Highest wire sequence number seen from the source (-1 before any).
  int64_t last_wire_seq() const { return last_wire_seq_; }
  int64_t ticks() const { return ticks_; }
  int64_t messages_applied() const { return messages_applied_; }
  /// Duplicate or out-of-order messages dropped by the sequencing guard.
  int64_t messages_ignored() const { return messages_ignored_; }
  /// Wire-sequence gap events observed (recovery enabled only).
  int64_t gaps() const { return gaps_; }
  /// RESYNC_REQUEST control messages emitted.
  int64_t resyncs_requested() const { return resyncs_requested_; }

  /// Replica ticks elapsed since the source was last heard from (any
  /// message type, heartbeats included). Returns a huge value before the
  /// first message.
  int64_t TicksSinceHeard() const {
    return tick_at_last_heard_ < 0 ? (int64_t{1} << 60)
                                   : ticks_ - tick_at_last_heard_;
  }

  const Predictor& predictor() const { return *predictor_; }

  /// Registers kc.replica.{messages_applied,messages_ignored,full_syncs,
  /// gaps,resyncs_requested} on the arena, mirrors message handling onto
  /// them, and forwards the binding to the replicated predictor. Pass
  /// nullptr to unbind.
  void BindMetrics(obs::MetricRegistry* registry);

  /// Attaches the flight recorder ring and/or health watchdog entry for
  /// this source (either may be nullptr). The recorder retains the
  /// receive side of the protocol (applies, ignores, wire gaps,
  /// quarantine transitions, resync requests); the watchdog is fed every
  /// RESYNC_REQUEST for its resync-rate detector. Observation-only:
  /// binding never changes protocol behaviour.
  void BindObservability(obs::SourceRecorder* recorder,
                         obs::SourceHealth* health);

 private:
  /// Arena handles, cached at bind time; null until BindMetrics.
  struct Metrics {
    obs::Counter* applied = nullptr;
    obs::Counter* ignored = nullptr;
    obs::Counter* full_syncs = nullptr;
    obs::Counter* gaps = nullptr;
    obs::Counter* resyncs_requested = nullptr;
  };

  void MarkDesynced();
  void ClearDesync();
  void SendResyncRequest();

  int32_t source_id_;
  std::unique_ptr<Predictor> predictor_;
  Metrics metrics_;
  obs::SourceRecorder* recorder_ = nullptr;  ///< Optional black box.
  obs::SourceHealth* health_ = nullptr;      ///< Optional watchdog feed.
  ReplicaRecoveryConfig recovery_;
  ControlSender control_sender_;
  bool initialized_ = false;
  bool desynced_ = false;
  double delta_ = 0.0;
  int64_t last_heard_seq_ = -1;
  int64_t last_wire_seq_ = -1;
  double last_heard_time_ = 0.0;
  int64_t ticks_ = 0;
  int64_t tick_at_last_heard_ = -1;
  int64_t messages_applied_ = 0;
  int64_t messages_ignored_ = 0;
  int64_t gaps_ = 0;
  int64_t gap_events_since_sync_ = 0;
  int64_t resyncs_requested_ = 0;
  /// Ticks since construction, counted even before INIT so a lost INIT
  /// can escalate (ticks_ starts only after initialization).
  int64_t lifetime_ticks_ = 0;
  /// Liveness for recovery escalation: unlike tick_at_last_heard_, this
  /// refreshes on *any* correctly-routed message, including duplicates
  /// the sequencing guard discards — a duplicate still proves the source
  /// and link are alive.
  int64_t lifetime_tick_at_heard_ = 0;
  int64_t next_resync_tick_ = 0;
  int64_t backoff_ = 0;
};

}  // namespace kc

#endif  // KALMANCAST_SUPPRESSION_REPLICA_H_
