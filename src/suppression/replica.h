#ifndef KALMANCAST_SUPPRESSION_REPLICA_H_
#define KALMANCAST_SUPPRESSION_REPLICA_H_

#include <memory>

#include "common/status.h"
#include "net/message.h"
#include "suppression/predictor.h"

namespace kc {

namespace obs {
class Counter;
class MetricRegistry;
}  // namespace obs

/// The server half of the suppression protocol: the cached dynamic
/// procedure that answers queries for one source without contacting it.
///
/// Tick() advances the predictor clock once per stream tick; OnMessage()
/// folds in whatever the source ships. Between messages, Value() returns
/// the prediction, which the protocol guarantees is within bound() of the
/// source's measurements (lossless channel).
class ServerReplica {
 public:
  /// `predictor` must be a fresh Clone() of the source's predictor.
  ServerReplica(int32_t source_id, std::unique_ptr<Predictor> predictor);

  /// Advances one stream tick (no-op before INIT arrives).
  void Tick();

  /// Applies a message from this replica's source. Messages for other
  /// sources are rejected.
  Status OnMessage(const Message& msg);

  bool initialized() const { return initialized_; }
  int32_t source_id() const { return source_id_; }

  /// Current bounded estimate of the source value. Requires initialized().
  Vector Value() const { return predictor_->Predict(); }

  /// Precision bound the source most recently declared.
  double bound() const { return delta_; }

  /// Bookkeeping for staleness/liveness monitoring.
  int64_t last_heard_seq() const { return last_heard_seq_; }
  double last_heard_time() const { return last_heard_time_; }
  int64_t ticks() const { return ticks_; }
  int64_t messages_applied() const { return messages_applied_; }
  /// Out-of-order messages dropped by the sequencing guard.
  int64_t messages_ignored() const { return messages_ignored_; }

  /// Replica ticks elapsed since the source was last heard from (any
  /// message type, heartbeats included). Returns a huge value before the
  /// first message.
  int64_t TicksSinceHeard() const {
    return tick_at_last_heard_ < 0 ? (int64_t{1} << 60)
                                   : ticks_ - tick_at_last_heard_;
  }

  const Predictor& predictor() const { return *predictor_; }

  /// Registers kc.replica.{messages_applied,messages_ignored,full_syncs}
  /// on the arena, mirrors message handling onto them, and forwards the
  /// binding to the replicated predictor. Pass nullptr to unbind.
  void BindMetrics(obs::MetricRegistry* registry);

 private:
  /// Arena handles, cached at bind time; null until BindMetrics.
  struct Metrics {
    obs::Counter* applied = nullptr;
    obs::Counter* ignored = nullptr;
    obs::Counter* full_syncs = nullptr;
  };

  int32_t source_id_;
  std::unique_ptr<Predictor> predictor_;
  Metrics metrics_;
  bool initialized_ = false;
  double delta_ = 0.0;
  int64_t last_heard_seq_ = -1;
  double last_heard_time_ = 0.0;
  int64_t ticks_ = 0;
  int64_t tick_at_last_heard_ = -1;
  int64_t messages_applied_ = 0;
  int64_t messages_ignored_ = 0;
};

}  // namespace kc

#endif  // KALMANCAST_SUPPRESSION_REPLICA_H_
